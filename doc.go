// Package unap2p is an underlay-aware peer-to-peer framework: a
// reproduction, as a working Go library, of "Underlay Awareness in P2P
// Systems: Techniques and Challenges" (Abboud, Kovacevic, Graffi, Pussep,
// Steinmetz — IPDPS 2009).
//
// The root package carries only documentation; the implementation lives
// under internal/ (see DESIGN.md for the package inventory) and is
// exercised by the binaries in cmd/, the runnable examples in examples/,
// and the benchmark harness in bench_test.go, which regenerates every
// table and figure of the paper.
package unap2p
