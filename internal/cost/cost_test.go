package cost

import (
	"math"
	"testing"
	"testing/quick"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

func TestPercentileNearestRank(t *testing.T) {
	s := make([]float64, 100)
	for i := range s {
		s[i] = float64(i + 1)
	}
	if p := Percentile(s, 0.95); p != 95 {
		t.Fatalf("p95 = %v, want 95", p)
	}
	if p := Percentile(s, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(s, 1); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(nil, 0.95); p != 0 {
		t.Fatalf("empty p95 = %v", p)
	}
	if p := Percentile([]float64{7}, 0.95); p != 7 {
		t.Fatalf("single p95 = %v", p)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	s := []float64{3, 1, 2}
	Percentile(s, 0.5)
	if s[0] != 3 || s[1] != 1 || s[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestTransitBill(t *testing.T) {
	c := TransitContract{PricePerMbps: 10}
	// Peaky series: p95 ignores the single worst spike in 100 samples.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 50
	}
	samples[7] = 10000 // one free spike
	samples[13] = 9000
	samples[29] = 8000
	samples[31] = 7000
	samples[77] = 6000
	if b := c.Bill(samples); b != 500 {
		t.Fatalf("bill = %v, want 500 (5 spikes free at p95)", b)
	}
	// Commit floor.
	c.Commit = 100
	if b := c.Bill([]float64{10}); b != 1000 {
		t.Fatalf("commit bill = %v, want 1000", b)
	}
}

func TestPeeringBillFlat(t *testing.T) {
	c := PeeringContract{MonthlyFee: 2000}
	if c.Bill(nil) != 2000 || c.Bill([]float64{1e9}) != 2000 {
		t.Fatal("peering bill must ignore traffic")
	}
}

// TestFig2CostShapes asserts the Figure 2 relations: transit per-Mbps is
// constant and total ∝ traffic; peering total is constant and per-Mbps
// falls as 1/traffic, crossing below transit at high volume.
func TestFig2CostShapes(t *testing.T) {
	traffic := []float64{10, 50, 100, 500, 1000}
	tcurve := TransitCurve(traffic, TransitContract{PricePerMbps: 12})
	pcurve := PeeringCurve(traffic, PeeringContract{MonthlyFee: 2400})

	for i := 1; i < len(tcurve); i++ {
		if tcurve[i].TotalCost <= tcurve[i-1].TotalCost {
			t.Fatal("transit total cost must rise with traffic")
		}
		if math.Abs(tcurve[i].PerMbps-tcurve[0].PerMbps) > 1e-9 {
			t.Fatal("transit per-Mbps must stay fixed")
		}
		if pcurve[i].TotalCost != pcurve[0].TotalCost {
			t.Fatal("peering total must stay flat")
		}
		if pcurve[i].PerMbps >= pcurve[i-1].PerMbps {
			t.Fatal("peering per-Mbps must fall with traffic")
		}
	}
	// Crossover: cheap at high volume, expensive at low volume.
	if pcurve[0].PerMbps <= tcurve[0].PerMbps {
		t.Fatal("peering should cost more per Mbps at low traffic")
	}
	if pcurve[len(traffic)-1].PerMbps >= tcurve[len(traffic)-1].PerMbps {
		t.Fatal("peering should cost less per Mbps at high traffic")
	}
}

func TestCurveZeroTraffic(t *testing.T) {
	tc := TransitCurve([]float64{0}, TransitContract{PricePerMbps: 5})
	pc := PeeringCurve([]float64{0}, PeeringContract{MonthlyFee: 100})
	if tc[0].PerMbps != 0 || pc[0].PerMbps != 0 {
		t.Fatal("per-Mbps at zero traffic must be 0, not Inf")
	}
}

func TestMeterSampling(t *testing.T) {
	net := underlay.New()
	a := net.AddAS(underlay.LocalISP, 1)
	b := net.AddAS(underlay.TransitISP, 1)
	l := net.ConnectTransit(a, b, 10)
	h1 := net.AddHost(a, 0)
	h2 := net.AddHost(b, 0)

	k := sim.NewKernel()
	m := NewMeter(l, sim.Second)
	cancel := m.Start(k)

	// 1 MB in the first second, nothing after.
	k.Schedule(100, func() { net.Send(h1, h2, 1_000_000) })
	k.Run(3 * sim.Second)
	cancel()

	s := m.Samples()
	if len(s) != 3 {
		t.Fatalf("samples = %v, want 3", s)
	}
	if math.Abs(s[0]-8.0) > 1e-9 { // 1 MB in 1 s = 8 Mbps
		t.Fatalf("first sample = %v Mbps, want 8", s[0])
	}
	if s[1] != 0 || s[2] != 0 {
		t.Fatalf("idle samples = %v, want zeros", s[1:])
	}
}

func TestBillNetwork(t *testing.T) {
	net := underlay.New()
	t0 := net.AddAS(underlay.TransitISP, 1)
	l0 := net.AddAS(underlay.LocalISP, 1)
	l1 := net.AddAS(underlay.LocalISP, 1)
	net.ConnectTransit(l0, t0, 10)
	net.ConnectTransit(l1, t0, 10)
	net.ConnectPeering(l0, l1, 3)
	h0 := net.AddHost(l0, 0)
	h2 := net.AddHost(t0, 0)
	net.Send(h0, h2, 10_000_000) // 10 MB over l0's transit link

	rep := BillNetwork(net, nil,
		TransitContract{PricePerMbps: 10},
		PeeringContract{MonthlyFee: 50},
		10*sim.Second)
	// avg rate = 10MB*8/1e6/10s = 8 Mbps → bill 80 for l0; l1's transit idle → 0.
	if math.Abs(rep.PerAS[l0.ID]-(80+50)) > 1e-9 {
		t.Fatalf("l0 pays %v, want 130", rep.PerAS[l0.ID])
	}
	if math.Abs(rep.PerAS[l1.ID]-50) > 1e-9 {
		t.Fatalf("l1 pays %v, want 50 (peering only)", rep.PerAS[l1.ID])
	}
	if rep.PerAS[t0.ID] != 0 {
		t.Fatalf("provider pays %v, want 0", rep.PerAS[t0.ID])
	}
	if math.Abs(rep.TransitTotal-80) > 1e-9 || rep.PeeringTotal != 100 {
		t.Fatalf("totals = %v", rep)
	}
}

func TestBillNetworkWithMeters(t *testing.T) {
	net := underlay.New()
	t0 := net.AddAS(underlay.TransitISP, 1)
	l0 := net.AddAS(underlay.LocalISP, 1)
	link := net.ConnectTransit(l0, t0, 10)
	h0 := net.AddHost(l0, 0)
	h1 := net.AddHost(t0, 0)

	k := sim.NewKernel()
	m := NewMeter(link, sim.Second)
	m.Start(k)
	// Steady 1 Mbps for 20 s with one 100 Mbps spike: p95 should ignore it.
	for i := 0; i < 20; i++ {
		i := i
		k.Schedule(sim.Duration(i)*sim.Second+1, func() {
			bytes := uint64(125_000) // 1 Mbps over 1 s
			if i == 5 {
				bytes = 12_500_000 // 100 Mbps spike
			}
			net.Send(h0, h1, bytes)
		})
	}
	k.Run(20 * sim.Second)

	rep := BillNetwork(net, map[*underlay.Link]*Meter{link: m},
		TransitContract{PricePerMbps: 10}, PeeringContract{}, 0)
	if rep.TransitTotal != 10 {
		t.Fatalf("metered bill = %v, want 10 (p95 kills the spike)", rep.TransitTotal)
	}
}

// Property: percentile is monotone in q and bounded by min/max.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []uint16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]float64, len(raw))
		mn, mx := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			s[i] = float64(v)
			mn = math.Min(mn, s[i])
			mx = math.Max(mx, s[i])
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		p1, p2 := Percentile(s, q1), Percentile(s, q2)
		return p1 <= p2 && p1 >= mn && p2 <= mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterStartCancel(t *testing.T) {
	net := underlay.New()
	a := net.AddAS(underlay.LocalISP, 1)
	b := net.AddAS(underlay.TransitISP, 1)
	l := net.ConnectTransit(a, b, 10)
	k := sim.NewKernel()
	m := NewMeter(l, sim.Second)
	cancel := m.Start(k)
	k.Run(2 * sim.Second)
	cancel()
	k.Run(10 * sim.Second)
	if len(m.Samples()) != 2 {
		t.Fatalf("samples after cancel = %d, want 2", len(m.Samples()))
	}
}

func TestMeterZeroInterval(t *testing.T) {
	net := underlay.New()
	a := net.AddAS(underlay.LocalISP, 1)
	b := net.AddAS(underlay.TransitISP, 1)
	l := net.ConnectTransit(a, b, 10)
	m := NewMeter(l, 0)
	m.Sample() // must not divide by zero
	if len(m.Samples()) != 0 {
		t.Fatal("zero-interval meter recorded a sample")
	}
}
