// Package cost models ISP economics: paid transit billed at the 95th
// percentile of traffic samples ("charge … based on the peak rate measured
// using samples over a month's time", §2.1 / Norton) and settlement-free
// peering with a flat link-maintenance fee. It reproduces the cost
// relations of Figure 2: transit total cost grows linearly with traffic at
// an almost fixed price per Mbps, while peering's total cost is constant
// so its cost per Mbps is inversely proportional to exchanged traffic.
package cost

import (
	"fmt"
	"sort"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// TransitContract bills the customer at PricePerMbps times the 95th
// percentile of its traffic-rate samples.
type TransitContract struct {
	// PricePerMbps is the monthly charge per Mbps of billable rate.
	PricePerMbps float64
	// Commit is the minimum billable rate in Mbps (common in real
	// contracts; zero means pure usage billing).
	Commit float64
}

// Bill returns the monthly charge for the given per-interval rate samples
// in Mbps.
func (c TransitContract) Bill(samplesMbps []float64) float64 {
	rate := Percentile(samplesMbps, 0.95)
	if rate < c.Commit {
		rate = c.Commit
	}
	return rate * c.PricePerMbps
}

// PeeringContract is a settlement-free interconnect: each party pays a
// flat monthly fee to maintain the port/cross-connect, independent of
// traffic.
type PeeringContract struct {
	// MonthlyFee is the flat cost of keeping the link up.
	MonthlyFee float64
}

// Bill returns the flat monthly fee regardless of traffic.
func (c PeeringContract) Bill(_ []float64) float64 { return c.MonthlyFee }

// Percentile returns the q-quantile of samples by the nearest-rank method
// (the convention transit billing uses: sort the samples, drop the top
// (1−q) share, bill the highest remaining).
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(float64(len(s))*q+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Point is one sample of a cost curve.
type Point struct {
	TrafficMbps float64
	TotalCost   float64
	PerMbps     float64
}

// TransitCurve evaluates the transit cost model over a range of steady
// traffic levels: total cost rises ∝ traffic, per-Mbps cost is flat.
func TransitCurve(trafficMbps []float64, c TransitContract) []Point {
	out := make([]Point, len(trafficMbps))
	for i, tr := range trafficMbps {
		total := c.Bill([]float64{tr})
		per := 0.0
		if tr > 0 {
			per = total / tr
		}
		out[i] = Point{TrafficMbps: tr, TotalCost: total, PerMbps: per}
	}
	return out
}

// PeeringCurve evaluates the peering cost model: total cost is flat, so
// per-Mbps cost falls as 1/traffic.
func PeeringCurve(trafficMbps []float64, c PeeringContract) []Point {
	out := make([]Point, len(trafficMbps))
	for i, tr := range trafficMbps {
		total := c.Bill(nil)
		per := 0.0
		if tr > 0 {
			per = total / tr
		}
		out[i] = Point{TrafficMbps: tr, TotalCost: total, PerMbps: per}
	}
	return out
}

// Meter samples the byte counters of an underlay link at a fixed interval
// and converts each interval's delta to Mbps, producing the sample series
// that transit billing consumes.
type Meter struct {
	Link     *underlay.Link
	Interval sim.Duration
	samples  []float64
	lastAB   uint64
	lastBA   uint64
}

// NewMeter attaches a meter to a link; call Start to begin sampling on a
// kernel, or Sample manually.
func NewMeter(l *underlay.Link, interval sim.Duration) *Meter {
	return &Meter{Link: l, Interval: interval}
}

// Start schedules periodic sampling on k; returns a cancel function.
func (m *Meter) Start(k *sim.Kernel) (cancel func()) {
	return k.Every(m.Interval, m.Sample)
}

// Sample records one interval's traffic rate.
func (m *Meter) Sample() {
	ab, ba := m.Link.BytesAB, m.Link.BytesBA
	delta := (ab - m.lastAB) + (ba - m.lastBA)
	m.lastAB, m.lastBA = ab, ba
	seconds := float64(m.Interval) / 1000
	if seconds <= 0 {
		return
	}
	mbps := float64(delta) * 8 / 1e6 / seconds
	m.samples = append(m.samples, mbps)
}

// Samples returns the recorded Mbps series.
func (m *Meter) Samples() []float64 { return m.samples }

// Report summarizes what every ISP in a network pays, given contracts and
// metered samples. Transit links are paid by the customer (link.A);
// peering links cost each side the flat fee.
type Report struct {
	// PerAS maps AS id → total monthly cost.
	PerAS map[int]float64
	// TransitTotal and PeeringTotal split the network-wide spend.
	TransitTotal, PeeringTotal float64
}

// BillNetwork computes a cost report. meters maps links to their recorded
// samples; transit links without a meter bill their average rate derived
// from total bytes over the elapsed time (elapsedMs).
func BillNetwork(net *underlay.Network, meters map[*underlay.Link]*Meter,
	tc TransitContract, pc PeeringContract, elapsed sim.Duration) Report {
	rep := Report{PerAS: make(map[int]float64)}
	for _, l := range net.Links() {
		switch l.Kind {
		case underlay.Transit:
			var samples []float64
			if m, ok := meters[l]; ok {
				samples = m.Samples()
			} else if elapsed > 0 {
				avg := float64(l.Bytes()) * 8 / 1e6 / (float64(elapsed) / 1000)
				samples = []float64{avg}
			}
			bill := tc.Bill(samples)
			rep.PerAS[l.A.ID] += bill // customer pays
			rep.TransitTotal += bill
		case underlay.Peering:
			fee := pc.Bill(nil)
			rep.PerAS[l.A.ID] += fee
			rep.PerAS[l.B.ID] += fee
			rep.PeeringTotal += 2 * fee
		}
	}
	return rep
}

func (r Report) String() string {
	return fmt.Sprintf("cost transit=%.2f peering=%.2f total=%.2f",
		r.TransitTotal, r.PeeringTotal, r.TransitTotal+r.PeeringTotal)
}
