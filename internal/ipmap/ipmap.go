// Package ipmap implements the IP address plan of the simulated Internet
// and the mapping services of §3.1/§3.3: every AS owns a well-known prefix,
// so mapping a peer's IP to its ISP is a prefix lookup (the IP2Country /
// IP2Location class of services), and mapping an IP to a location returns
// the "rough geographical area" of that ISP with configurable accuracy.
package ipmap

import (
	"fmt"
	"math/rand"
	"sort"

	"unap2p/internal/geo"
	"unap2p/internal/underlay"
)

// IP is an IPv4 address in host byte order.
type IP = uint32

// FormatIP renders an IP in dotted-quad form.
func FormatIP(ip IP) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Prefix is a CIDR block.
type Prefix struct {
	Base IP
	Bits int // prefix length
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	if p.Bits <= 0 {
		return true
	}
	mask := ^IP(0) << (32 - p.Bits)
	return ip&mask == p.Base&mask
}

// Size returns the number of addresses in the prefix.
func (p Prefix) Size() uint64 { return 1 << (32 - p.Bits) }

func (p Prefix) String() string { return fmt.Sprintf("%s/%d", FormatIP(p.Base), p.Bits) }

// Plan is the address plan: one /16 per AS out of 10.0.0.0/8-style space.
type Plan struct {
	prefixes map[int]Prefix // AS id → prefix
	next     map[int]IP     // AS id → next free host address
}

// NewPlan allocates a /16 for every AS in the network: AS i receives
// 10.(i).0.0/16 (wrapping into 11.x for i > 255, which simulated networks
// never reach in practice).
func NewPlan(net *underlay.Network) *Plan {
	p := &Plan{prefixes: make(map[int]Prefix), next: make(map[int]IP)}
	for _, as := range net.ASes() {
		base := IP(10)<<24 | IP(as.ID)<<16
		p.prefixes[as.ID] = Prefix{Base: base, Bits: 16}
		p.next[as.ID] = base + 1
	}
	return p
}

// PrefixOf returns the prefix owned by an AS.
func (p *Plan) PrefixOf(asID int) (Prefix, bool) {
	pf, ok := p.prefixes[asID]
	return pf, ok
}

// Allocate returns the next free address in an AS's prefix.
func (p *Plan) Allocate(asID int) IP {
	pf, ok := p.prefixes[asID]
	if !ok {
		panic(fmt.Sprintf("ipmap: AS %d has no prefix", asID))
	}
	ip := p.next[asID]
	if !pf.Contains(ip) {
		panic(fmt.Sprintf("ipmap: prefix %v exhausted", pf))
	}
	p.next[asID] = ip + 1
	return ip
}

// AssignAll allocates an address for every host in the network, storing it
// in Host.IP, and returns the plan for later lookups.
func AssignAll(net *underlay.Network) *Plan {
	p := NewPlan(net)
	for _, h := range net.Hosts() {
		h.IP = p.Allocate(h.AS.ID)
	}
	return p
}

// ISPMapper resolves an IP to the AS/ISP that owns it.
type ISPMapper interface {
	// ASOf returns the AS id owning ip, or ok=false when the service has
	// no answer.
	ASOf(ip IP) (asID int, ok bool)
}

// LocationMapper resolves an IP to an approximate geolocation.
type LocationMapper interface {
	// LocationOf returns an estimated coordinate for ip and ok=false when
	// unknown.
	LocationOf(ip IP) (geo.Coord, bool)
}

// Registry is a mapping service built from the address plan — the
// simulated equivalent of the commercial IP-to-ISP databases. Accuracy
// knobs reproduce the paper's caveat that such services are "less
// accurate" than ISP-provided data.
type Registry struct {
	// MissRate is the probability a lookup returns no answer (stale or
	// missing database entry).
	MissRate float64
	// Rand supplies the error draws; nil means a perfect registry.
	Rand *rand.Rand
	// LocationNoiseKm scatters returned locations around the AS centroid.
	LocationNoiseKm float64

	entries   []registryEntry // sorted by Base for binary search
	centroids map[int]geo.Coord
}

type registryEntry struct {
	prefix Prefix
	asID   int
}

// NewRegistry builds a registry over the plan. Centroids for location
// lookups are derived from the mean position of each AS's hosts.
func NewRegistry(net *underlay.Network, plan *Plan) *Registry {
	r := &Registry{centroids: make(map[int]geo.Coord)}
	for asID, pf := range plan.prefixes {
		r.entries = append(r.entries, registryEntry{prefix: pf, asID: asID})
	}
	sort.Slice(r.entries, func(i, j int) bool {
		return r.entries[i].prefix.Base < r.entries[j].prefix.Base
	})
	counts := make(map[int]int)
	sums := make(map[int]geo.Coord)
	for _, h := range net.Hosts() {
		s := sums[h.AS.ID]
		s.Lat += h.Lat
		s.Lon += h.Lon
		sums[h.AS.ID] = s
		counts[h.AS.ID]++
	}
	for asID, c := range counts {
		r.centroids[asID] = geo.Coord{
			Lat: sums[asID].Lat / float64(c),
			Lon: sums[asID].Lon / float64(c),
		}
	}
	return r
}

// ASOf maps ip to its owning AS by longest(-only) prefix match.
func (r *Registry) ASOf(ip IP) (int, bool) {
	if r.Rand != nil && r.MissRate > 0 && r.Rand.Float64() < r.MissRate {
		return 0, false
	}
	i := sort.Search(len(r.entries), func(i int) bool {
		return r.entries[i].prefix.Base > ip
	}) - 1
	if i < 0 {
		return 0, false
	}
	if r.entries[i].prefix.Contains(ip) {
		return r.entries[i].asID, true
	}
	return 0, false
}

// LocationOf returns the (noisy) centroid of the owning AS — a "rough
// geographical area in which a peer is (most probably) located" (§3.3).
func (r *Registry) LocationOf(ip IP) (geo.Coord, bool) {
	asID, ok := r.ASOf(ip)
	if !ok {
		return geo.Coord{}, false
	}
	c, ok := r.centroids[asID]
	if !ok {
		return geo.Coord{}, false
	}
	if r.Rand != nil && r.LocationNoiseKm > 0 {
		c.Lat += r.Rand.NormFloat64() * r.LocationNoiseKm / 111.32
		c.Lon += r.Rand.NormFloat64() * r.LocationNoiseKm / 111.32
		if c.Lat > 90 {
			c.Lat = 90
		}
		if c.Lat < -90 {
			c.Lat = -90
		}
	}
	return c, true
}

// ISPProvided is the ISP's own authoritative mapper (§3.3: "each ISP knows
// the addresses and exact locations of all of its customers"). It answers
// only for hosts of its own AS and returns exact host locations.
type ISPProvided struct {
	ASID  int
	hosts map[IP]geo.Coord
}

// NewISPProvided indexes the hosts of one AS.
func NewISPProvided(net *underlay.Network, asID int) *ISPProvided {
	m := &ISPProvided{ASID: asID, hosts: make(map[IP]geo.Coord)}
	for _, h := range net.HostsInAS(asID) {
		m.hosts[h.IP] = geo.Coord{Lat: h.Lat, Lon: h.Lon}
	}
	return m
}

// ASOf answers only for the ISP's own customers.
func (m *ISPProvided) ASOf(ip IP) (int, bool) {
	if _, ok := m.hosts[ip]; ok {
		return m.ASID, true
	}
	return 0, false
}

// LocationOf returns the exact customer location the ISP has on file.
func (m *ISPProvided) LocationOf(ip IP) (geo.Coord, bool) {
	c, ok := m.hosts[ip]
	return c, ok
}
