package ipmap

import (
	"testing"
	"testing/quick"

	"unap2p/internal/geo"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/underlay"
)

func testNet(t *testing.T) *underlay.Network {
	t.Helper()
	net := topology.Star(4, topology.DefaultConfig())
	r := sim.NewSource(1).Stream("ipmap-place")
	topology.PlaceHosts(net, 5, false, 1, 5, r)
	return net
}

func TestFormatIP(t *testing.T) {
	if s := FormatIP(10<<24 | 3<<16 | 0<<8 | 7); s != "10.3.0.7" {
		t.Fatalf("FormatIP = %q", s)
	}
	if s := FormatIP(0xFFFFFFFF); s != "255.255.255.255" {
		t.Fatalf("FormatIP = %q", s)
	}
}

func TestPrefix(t *testing.T) {
	p := Prefix{Base: 10<<24 | 5<<16, Bits: 16}
	if !p.Contains(10<<24 | 5<<16 | 42) {
		t.Fatal("prefix should contain inside address")
	}
	if p.Contains(10<<24 | 6<<16) {
		t.Fatal("prefix should not contain outside address")
	}
	if p.Size() != 65536 {
		t.Fatalf("size = %d", p.Size())
	}
	if p.String() != "10.5.0.0/16" {
		t.Fatalf("String = %q", p.String())
	}
	all := Prefix{Bits: 0}
	if !all.Contains(12345) {
		t.Fatal("/0 contains everything")
	}
}

func TestPlanAllocation(t *testing.T) {
	net := testNet(t)
	plan := AssignAll(net)
	seen := map[IP]bool{}
	for _, h := range net.Hosts() {
		if h.IP == 0 {
			t.Fatalf("host %d has no IP", h.ID)
		}
		if seen[h.IP] {
			t.Fatalf("duplicate IP %s", FormatIP(h.IP))
		}
		seen[h.IP] = true
		pf, ok := plan.PrefixOf(h.AS.ID)
		if !ok || !pf.Contains(h.IP) {
			t.Fatalf("host %d IP %s outside AS%d prefix %v", h.ID, FormatIP(h.IP), h.AS.ID, pf)
		}
	}
}

func TestPlanAllocatePanicsOnUnknownAS(t *testing.T) {
	net := testNet(t)
	plan := NewPlan(net)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	plan.Allocate(999)
}

func TestRegistryASOf(t *testing.T) {
	net := testNet(t)
	plan := AssignAll(net)
	reg := NewRegistry(net, plan)
	for _, h := range net.Hosts() {
		as, ok := reg.ASOf(h.IP)
		if !ok || as != h.AS.ID {
			t.Fatalf("ASOf(%s) = %d,%v; want %d", FormatIP(h.IP), as, ok, h.AS.ID)
		}
	}
	// Address outside every prefix.
	if _, ok := reg.ASOf(192 << 24); ok {
		t.Fatal("unknown address should miss")
	}
	if _, ok := reg.ASOf(1); ok {
		t.Fatal("address below all prefixes should miss")
	}
}

func TestRegistryMissRate(t *testing.T) {
	net := testNet(t)
	plan := AssignAll(net)
	reg := NewRegistry(net, plan)
	reg.MissRate = 0.5
	reg.Rand = sim.NewSource(2).Stream("miss")
	h := net.Hosts()[0]
	misses := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, ok := reg.ASOf(h.IP); !ok {
			misses++
		}
	}
	if misses < n/3 || misses > 2*n/3 {
		t.Fatalf("misses = %d/%d, want ≈ half", misses, n)
	}
}

func TestRegistryLocationOf(t *testing.T) {
	net := testNet(t)
	plan := AssignAll(net)
	reg := NewRegistry(net, plan)
	h := net.Hosts()[0]
	loc, ok := reg.LocationOf(h.IP)
	if !ok {
		t.Fatal("no location for valid host")
	}
	// Registry returns the AS centroid — close to (host dispersion σ=1.5°)
	// but generally not equal to the host's true position.
	d := geo.Haversine(loc, geo.Coord{Lat: h.Lat, Lon: h.Lon})
	if d > 2000 {
		t.Fatalf("centroid %v is %.0f km from host — dispersion should be small", loc, d)
	}
	if _, ok := reg.LocationOf(192 << 24); ok {
		t.Fatal("unknown IP should have no location")
	}
}

func TestRegistryLocationNoise(t *testing.T) {
	net := testNet(t)
	plan := AssignAll(net)
	reg := NewRegistry(net, plan)
	base, _ := reg.LocationOf(net.Hosts()[0].IP)
	reg.LocationNoiseKm = 50
	reg.Rand = sim.NewSource(3).Stream("noise")
	moved := false
	for i := 0; i < 10; i++ {
		loc, ok := reg.LocationOf(net.Hosts()[0].IP)
		if !ok {
			t.Fatal("lookup failed")
		}
		if geo.Haversine(base, loc) > 1 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("noise never displaced the location")
	}
}

func TestISPProvided(t *testing.T) {
	net := testNet(t)
	AssignAll(net)
	asID := net.Hosts()[0].AS.ID
	m := NewISPProvided(net, asID)
	for _, h := range net.HostsInAS(asID) {
		got, ok := m.ASOf(h.IP)
		if !ok || got != asID {
			t.Fatalf("ISP mapper missed own customer %s", FormatIP(h.IP))
		}
		loc, ok := m.LocationOf(h.IP)
		if !ok || loc.Lat != h.Lat || loc.Lon != h.Lon {
			t.Fatal("ISP mapper must return exact customer location")
		}
	}
	// Customers of other ISPs are unknown.
	for _, h := range net.Hosts() {
		if h.AS.ID != asID {
			if _, ok := m.ASOf(h.IP); ok {
				t.Fatal("ISP mapper answered for foreign customer")
			}
			break
		}
	}
}

// Property: ASOf is consistent with prefix containment for arbitrary IPs.
func TestQuickRegistryConsistency(t *testing.T) {
	net := testNet(t)
	plan := AssignAll(net)
	reg := NewRegistry(net, plan)
	f := func(ip IP) bool {
		as, ok := reg.ASOf(ip)
		if ok {
			pf, exists := plan.PrefixOf(as)
			return exists && pf.Contains(ip)
		}
		// A miss must mean no prefix contains ip.
		for _, a := range net.ASes() {
			pf, _ := plan.PrefixOf(a.ID)
			if pf.Contains(ip) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
