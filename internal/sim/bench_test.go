package sim

import "testing"

// BenchmarkKernelThroughput measures raw event processing: schedule-and-
// fire chains, the hot loop under every overlay simulation.
func BenchmarkKernelThroughput(b *testing.B) {
	k := NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.Schedule(1, tick)
		}
	}
	b.ResetTimer()
	k.Schedule(1, tick)
	k.Drain()
	if n != b.N {
		b.Fatalf("processed %d of %d", n, b.N)
	}
}

// BenchmarkKernelFanout measures heap behaviour with many pending events.
func BenchmarkKernelFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 1000; j++ {
			k.Schedule(Duration(j%97), func() {})
		}
		k.Drain()
	}
}

// BenchmarkStreamDerivation measures named-substream creation.
func BenchmarkStreamDerivation(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		_ = s.Stream("component")
	}
}
