package sim

import "testing"

// BenchmarkKernelThroughput measures raw event processing: schedule-and-
// fire chains, the hot loop under every overlay simulation.
func BenchmarkKernelThroughput(b *testing.B) {
	k := NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.Schedule(1, tick)
		}
	}
	b.ResetTimer()
	k.Schedule(1, tick)
	k.Drain()
	if n != b.N {
		b.Fatalf("processed %d of %d", n, b.N)
	}
}

// BenchmarkKernelFanout measures heap behaviour with many pending events.
func BenchmarkKernelFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 1000; j++ {
			k.Schedule(Duration(j%97), func() {})
		}
		k.Drain()
	}
}

// BenchmarkStreamDerivation measures named-substream creation.
func BenchmarkStreamDerivation(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		_ = s.Stream("component")
	}
}

// BenchmarkKernelSchedule measures the schedule/fire round trip in
// steady state, where every schedule reuses a pooled event struct. The
// kernel hot loop must not allocate: see TestKernelScheduleZeroAlloc for
// the hard assertion.
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	// Warm the pool so the timed region is pure steady state.
	for j := 0; j < 64; j++ {
		k.Schedule(Duration(j), func() {})
	}
	k.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.Schedule(1, tick)
		}
	}
	k.Schedule(1, tick)
	k.Drain()
	if n != b.N {
		b.Fatalf("processed %d of %d", n, b.N)
	}
}

// TestKernelScheduleZeroAlloc pins the satellite requirement directly:
// steady-state schedule+fire performs zero allocations per event.
func TestKernelScheduleZeroAlloc(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	for j := 0; j < 64; j++ {
		k.Schedule(Duration(j%7), fn)
	}
	k.Drain()
	allocs := testing.AllocsPerRun(1000, func() {
		for j := 0; j < 32; j++ {
			k.Schedule(Duration(j%11), fn)
		}
		k.Drain()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+drain allocates %.1f/run, want 0", allocs)
	}
}
