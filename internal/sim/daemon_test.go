package sim

import "testing"

// Daemon events (AtDaemon/EveryDaemon) back the telemetry probe's
// recurring sampling tick. The contract under test: they fire in time
// order like any other event, but never keep an unbounded run alive —
// Drain over a kernel with a periodic daemon still terminates, at the
// same simulated time it would have without one.

func TestDrainNotKeptAliveByDaemons(t *testing.T) {
	k := NewKernel()
	var ticks int
	k.EveryDaemon(10, func() { ticks++ })
	var fired []Time
	k.At(5, func() { fired = append(fired, k.Now()) })
	k.At(25, func() { fired = append(fired, k.Now()) })

	end := k.Drain()
	if end != 25 {
		t.Fatalf("Drain ended at %v, want 25 (the last real event)", end)
	}
	if ticks != 2 {
		t.Fatalf("daemon ticked %d times, want 2 (at 10 and 20)", ticks)
	}
	if k.Pending() == 0 {
		t.Fatal("the recurring daemon should stay queued after Drain")
	}
	if len(fired) != 2 {
		t.Fatalf("real events fired %d times, want 2", len(fired))
	}
}

func TestDrainTimeUnchangedByDaemon(t *testing.T) {
	run := func(withDaemon bool) Time {
		k := NewKernel()
		if withDaemon {
			k.EveryDaemon(7, func() {})
		}
		for _, at := range []Time{3, 18, 42} {
			k.At(at, func() {})
		}
		return k.Drain()
	}
	bare, probed := run(false), run(true)
	if bare != probed {
		t.Fatalf("daemon changed Drain's end time: %v vs %v", bare, probed)
	}
}

func TestDaemonsFireThroughBoundedRun(t *testing.T) {
	k := NewKernel()
	var ticks int
	k.EveryDaemon(10, func() { ticks++ })
	if end := k.Run(100); end != 100 {
		t.Fatalf("Run(100) ended at %v", end)
	}
	if ticks != 10 {
		t.Fatalf("daemon ticked %d times in a 100ms horizon, want 10", ticks)
	}
}

func TestDaemonOrderedAmongRealEvents(t *testing.T) {
	k := NewKernel()
	var order []string
	k.At(10, func() { order = append(order, "real@10") })
	k.AtDaemon(10, func() { order = append(order, "daemon@10") })
	k.At(20, func() { order = append(order, "real@20") })
	k.AtDaemon(15, func() { order = append(order, "daemon@15") })
	k.Drain()
	want := []string{"real@10", "daemon@10", "daemon@15", "real@20"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestDaemonCancel(t *testing.T) {
	k := NewKernel()
	var ticks int
	cancel := k.EveryDaemon(10, func() { ticks++ })
	k.At(35, func() {})
	k.Run(22) // ticks at 10 and 20
	cancel()
	k.Drain()
	if ticks != 2 {
		t.Fatalf("cancelled daemon ticked %d times, want 2", ticks)
	}

	// Timer.Cancel on a pending daemon keeps the bookkeeping consistent:
	// a later Drain with a real event must still terminate promptly.
	tm := k.AtDaemon(1000, func() { t.Fatal("cancelled daemon fired") })
	if !tm.Cancel() {
		t.Fatal("Cancel reported the daemon already fired")
	}
	if k.daemons != 0 {
		t.Fatalf("daemons counter = %d after cancel, want 0", k.daemons)
	}
	k.At(40, func() {})
	if end := k.Drain(); end != 40 {
		t.Fatalf("Drain after daemon cancel ended at %v, want 40", end)
	}
}

func TestEveryDaemonRejectsNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EveryDaemon(0, ...) did not panic")
		}
	}()
	NewKernel().EveryDaemon(0, func() {})
}
