package sim

import (
	"reflect"
	"testing"
	"testing/quick"
)

// propEvent is one observed callback execution in a property-test run.
type propEvent struct {
	At  Time
	Tag uint64
}

const (
	propPeers     = 12
	propLookahead = Duration(5)
)

// runPropSchedule executes a pseudo-random event workload derived from
// seed on a K-shard kernel and returns the per-peer execution log. The
// workload respects the conservative-simulation contract the kernel's
// K-independence depends on: every cross-peer deferral is delayed by at
// least the lookahead (= the epoch window), and all timestamps carry 53
// random bits so ties are (measure-zero) impossible. Under that contract
// each peer must observe the identical (time, tag) sequence for any K.
func runPropSchedule(seed uint64, K int) [propPeers][]propEvent {
	sk := NewSharded(K, propLookahead)
	shardOf := func(p int) int { return p % K }
	// logs[p] is written only by peer p's owning shard: race-free.
	var logs [propPeers][]propEvent

	u01 := func(h uint64) float64 { return float64(h>>11) / (1 << 53) }
	var hop func(p int, chain uint64, depth int) func()
	hop = func(p int, chain uint64, depth int) func() {
		return func() {
			s := sk.Shard(shardOf(p))
			logs[p] = append(logs[p], propEvent{At: s.Now(), Tag: chain<<8 | uint64(depth)})
			if depth >= 4 {
				return
			}
			h := splitmix64(seed ^ chain<<20 ^ uint64(depth)<<12 ^ uint64(p))
			q := int(h % propPeers)
			delay := propLookahead * Duration(1+u01(splitmix64(h)))
			s.DeferTo(shardOf(q), delay, 16, hop(q, chain, depth+1))
		}
	}
	for p := 0; p < propPeers; p++ {
		for c := 0; c < 3; c++ {
			chain := uint64(p)*3 + uint64(c) + 1
			t0 := Duration(100 * u01(splitmix64(seed^0xa5a5a5a5^chain)))
			sk.Shard(shardOf(p)).At(t0, hop(p, chain, 0))
		}
	}
	sk.Drain()
	return logs
}

// TestShardedKIndependenceQuick is the satellite property test: K=1 and
// K=4 runs of the same random schedule produce identical event execution
// order and timestamps at every peer.
func TestShardedKIndependenceQuick(t *testing.T) {
	prop := func(seed uint64) bool {
		return reflect.DeepEqual(runPropSchedule(seed, 1), runPropSchedule(seed, 4))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// legacyTrace runs a schedule builder on a plain Kernel and on a 1-shard
// ShardedKernel and returns both global traces plus kernel stats, for the
// bit-for-bit K=1 equivalence tests.
type traceEntry struct {
	At  Time
	Tag int
}

func buildMixedSchedule(seed uint64, schedule func(delay Duration, fn func()), atDaemon func(t Time, fn func()), now func() Time, log *[]traceEntry) {
	// A braid of chained events, fan-out bursts, and a daemon ticker —
	// enough to exercise heap order, daemon accounting, and pooling.
	tag := 0
	var chain func(depth int) func()
	chain = func(depth int) func() {
		id := tag
		tag++
		return func() {
			*log = append(*log, traceEntry{At: now(), Tag: id})
			if depth < 6 {
				h := splitmix64(seed ^ uint64(id)<<16 ^ uint64(depth))
				schedule(Duration(float64(h>>11)/(1<<50)), chain(depth+1))
				if h%3 == 0 {
					schedule(Duration(float64(splitmix64(h)>>11)/(1<<50)), chain(depth+2))
				}
			}
		}
	}
	for c := 0; c < 8; c++ {
		h := splitmix64(seed ^ 0xdead ^ uint64(c))
		schedule(Duration(float64(h>>11)/(1<<50)), chain(0))
	}
	atDaemon(3, func() { *log = append(*log, traceEntry{At: now(), Tag: -1}) })
}

// TestShardedK1MatchesKernel pins K=1 ≡ legacy Kernel bit-for-bit: same
// global execution trace, same end time, same processed/max-queue stats.
func TestShardedK1MatchesKernel(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		var legacyLog []traceEntry
		k := NewKernel()
		buildMixedSchedule(seed, func(d Duration, fn func()) { k.Schedule(d, fn) },
			func(at Time, fn func()) { k.AtDaemon(at, fn) }, k.Clock(), &legacyLog)
		legacyEnd := k.Run(Forever)

		var shardLog []traceEntry
		sk := NewSharded(1, 7)
		s := sk.Shard(0)
		buildMixedSchedule(seed, func(d Duration, fn func()) { s.Schedule(d, fn) },
			func(at Time, fn func()) { s.AtDaemon(at, fn) }, s.Clock(), &shardLog)
		shardEnd := sk.Run(Forever)

		if !reflect.DeepEqual(legacyLog, shardLog) {
			t.Fatalf("seed %d: traces diverge (legacy %d events, sharded %d)",
				seed, len(legacyLog), len(shardLog))
		}
		if legacyEnd != shardEnd {
			t.Fatalf("seed %d: end time %v vs %v", seed, legacyEnd, shardEnd)
		}
		ks, ss := k.Stats(), sk.Stats()
		if ks.Processed != ss.Processed || ks.MaxQueue != ss.Shards[0].MaxQueue {
			t.Fatalf("seed %d: stats diverge: %+v vs %+v", seed, ks, ss)
		}
	}
}

// TestShardedK1BoundedHorizon checks the horizon-jump semantics match the
// legacy kernel for bounded runs.
func TestShardedK1BoundedHorizon(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {})
	k.Run(100)

	sk := NewSharded(1, 7)
	sk.Shard(0).Schedule(10, func() {})
	end := sk.Run(100)
	if end != k.Now() || sk.Now() != k.Now() || end != 100 {
		t.Fatalf("bounded run ended at %v (legacy %v), want 100", end, k.Now())
	}
	// Events exactly at the horizon still fire (legacy processes at == until).
	fired := false
	sk.Shard(0).At(200, func() { fired = true })
	sk.Run(200)
	if !fired {
		t.Fatal("event at horizon did not fire")
	}
}

// TestShardedLateClamp checks that a window wider than the workload's
// lookahead degrades deterministically: late cross-shard events are
// clamped to the destination's current time and counted, and two
// identical runs still produce identical logs.
func TestShardedLateClamp(t *testing.T) {
	run := func() ([propPeers][]propEvent, ShardedStats) {
		sk := NewSharded(4, 1000) // window ≫ 5ms lookahead: guaranteed late arrivals
		var logs [propPeers][]propEvent
		for p := 0; p < propPeers; p++ {
			p := p
			// Each hop of the chain runs on a different shard; the closure
			// carries its current shard so it only ever reads the clock of
			// the shard executing it.
			var loop func(cur int) func()
			loop = func(cur int) func() {
				return func() {
					s := sk.Shard(cur)
					logs[p] = append(logs[p], propEvent{At: s.Now(), Tag: uint64(len(logs[p]))})
					if len(logs[p]) < 20 {
						nxt := (cur + 1) % 4
						s.DeferTo(nxt, 5, 8, loop(nxt))
					}
				}
			}
			sk.Shard(p%4).At(Duration(p), loop(p%4))
		}
		sk.Drain()
		return logs, sk.Stats()
	}
	l1, s1 := run()
	l2, s2 := run()
	if !reflect.DeepEqual(l1, l2) {
		t.Fatal("late-clamped runs diverge")
	}
	if s1.LateEvents == 0 {
		t.Fatal("expected late events with window ≫ lookahead")
	}
	if s1.LateEvents != s2.LateEvents || s1.Epochs != s2.Epochs {
		t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
	}
	if s1.CrossEvents == 0 || s1.CrossBatches == 0 {
		t.Fatalf("cross-shard counters empty: %+v", s1)
	}
}

// TestShardedStopAtBarrier checks Stop halts at the next epoch barrier.
func TestShardedStopAtBarrier(t *testing.T) {
	sk := NewSharded(2, 10)
	var perShard [2]int // shard-owned counters; shared state would race
	n := func() int { return perShard[0] + perShard[1] }
	for i := 0; i < 100; i++ {
		s := i % 2
		sk.Shard(s).At(Duration(i), func() { perShard[s]++ })
	}
	sk.OnBarrier = func(now Time) {
		if now >= 30 {
			sk.Stop()
		}
	}
	sk.Run(Forever)
	if n() == 0 || n() == 100 {
		t.Fatalf("Stop did not halt mid-run: %d events", n())
	}
	// Resuming finishes the rest.
	sk.OnBarrier = nil
	sk.Drain()
	if n() != 100 {
		t.Fatalf("resume processed %d of 100", n())
	}
}
