// Package sim provides a deterministic discrete-event simulation kernel.
//
// All unap2p experiments run on this kernel: a single goroutine drains a
// time-ordered event heap, so a run is reproducible bit-for-bit given the
// same seed. Parallelism in unap2p happens *across* simulator instances
// (parameter sweeps), never inside one.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in milliseconds since the start of the run.
type Time float64

// Duration is a span of simulated time in milliseconds.
type Duration = Time

// Common durations, in milliseconds.
const (
	Millisecond Duration = 1
	Second      Duration = 1000
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// Forever is a time later than any event a simulation will schedule.
const Forever Time = Time(math.MaxFloat64)

// Seconds reports t as seconds.
func (t Time) Seconds() float64 { return float64(t) / 1000 }

func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)) }

// Event is a pending callback in the kernel's queue. Events are pooled:
// once fired or cancelled, the struct returns to the kernel's free list
// and is reused by the next schedule, so the steady-state hot loop
// allocates nothing. gen counts reuses; an outstanding Timer remembers
// the generation it was issued for and goes inert when they diverge.
type event struct {
	at  Time
	seq uint64 // tie-break so equal-time events fire in schedule order
	fn  func()
	idx int
	gen uint32
	// daemon marks housekeeping events (telemetry probe ticks) that must
	// not keep an unbounded Run alive on their own: when only daemon
	// events remain and the horizon is Forever, Run returns instead of
	// ticking forever. See Kernel.AtDaemon.
	daemon bool
	// next links the kernel's free list while the event is recycled.
	next *event
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event scheduler. The zero value is ready to use.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	// processed counts events executed, for diagnostics and run limits.
	processed uint64
	// maxQueue tracks the high-water mark of the pending-event queue, a
	// cheap load statistic telemetry exports per run.
	maxQueue int
	// daemons counts pending daemon events, so Run can tell when the
	// queue holds nothing but housekeeping.
	daemons int
	// free heads the recycled-event list; its length is bounded by the
	// queue's high-water mark.
	free *event
	// MaxEvents, when non-zero, aborts Run after that many events as a
	// runaway-simulation backstop.
	MaxEvents uint64
}

// NewKernel returns an empty kernel at time 0.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Processed reports how many events have executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending reports how many events are queued.
func (k *Kernel) Pending() int { return len(k.queue) }

// NextAt reports the time of the earliest pending event, or false when
// the queue is empty. It lets a wall-clock pacer (internal/nettransport)
// sleep exactly until the next deadline instead of polling the kernel.
func (k *Kernel) NextAt() (Time, bool) {
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// MaxQueue reports the high-water mark of the pending-event queue — how
// deep the schedule ever got.
func (k *Kernel) MaxQueue() int { return k.maxQueue }

// Clock returns a closure over the kernel's current time, the read-only
// view span tracers and recorders stamp events with.
func (k *Kernel) Clock() func() Time {
	return func() Time { return k.now }
}

// Stats is a frozen snapshot of the kernel's run statistics.
type Stats struct {
	Now       Time
	Processed uint64
	Pending   int
	MaxQueue  int
}

// Stats snapshots the kernel's diagnostics counters.
func (k *Kernel) Stats() Stats {
	return Stats{Now: k.now, Processed: k.processed, Pending: len(k.queue), MaxQueue: k.maxQueue}
}

// Timer identifies a scheduled event so it can be cancelled.
type Timer struct {
	k   *Kernel
	e   *event
	gen uint32
}

// Cancel removes the event if it has not fired yet. It reports whether the
// event was still pending. Cancelling twice, or after the event fired, is
// a harmless no-op — even when the pooled event struct has since been
// reused for a different schedule (the generation check below), so a
// stale Timer can never cancel someone else's event or underflow the
// daemons counter.
func (t Timer) Cancel() bool {
	if t.e == nil || t.e.gen != t.gen || t.e.idx < 0 {
		return false
	}
	heap.Remove(&t.k.queue, t.e.idx)
	if t.e.daemon {
		t.k.daemons--
	}
	t.k.recycle(t.e)
	return true
}

// alloc takes an event from the free list, or allocates one.
func (k *Kernel) alloc() *event {
	if e := k.free; e != nil {
		k.free = e.next
		e.next = nil
		return e
	}
	return &event{}
}

// recycle retires an event to the free list, bumping its generation so
// outstanding Timers for it go inert.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.idx = -1
	e.daemon = false
	e.next = k.free
	k.free = e
}

// Schedule runs fn after delay (clamped to >= 0) of simulated time.
func (k *Kernel) Schedule(delay Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, fn)
}

// At runs fn at absolute time t. Times in the past fire "now".
func (k *Kernel) At(t Time, fn func()) Timer {
	return k.at(t, fn, false)
}

// AtDaemon schedules fn at absolute time t as a daemon event: it fires in
// time order like any other event, but pending daemons alone do not keep
// Run(Forever) alive — when only daemons remain in an unbounded run, the
// kernel stops as if the queue were empty. Within a bounded Run(until),
// daemons due before the horizon still fire, so periodic samplers see the
// whole window. Daemon callbacks must be pure observers: scheduling
// non-daemon work from one would change what "drained" means.
func (k *Kernel) AtDaemon(t Time, fn func()) Timer {
	return k.at(t, fn, true)
}

func (k *Kernel) at(t Time, fn func(), daemon bool) Timer {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if t < k.now {
		t = k.now
	}
	e := k.alloc()
	e.at, e.seq, e.fn, e.daemon = t, k.seq, fn, daemon
	k.seq++
	heap.Push(&k.queue, e)
	if daemon {
		k.daemons++
	}
	if len(k.queue) > k.maxQueue {
		k.maxQueue = len(k.queue)
	}
	return Timer{k: k, e: e, gen: e.gen}
}

// Every schedules fn at now+period, then every period thereafter, until the
// returned cancel function is called or the run ends.
func (k *Kernel) Every(period Duration, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			k.Schedule(period, tick)
		}
	}
	k.Schedule(period, tick)
	return func() { stopped = true }
}

// EveryDaemon is Every with daemon scheduling (see AtDaemon): fn fires at
// now+period and every period thereafter, but the recurring tick never
// keeps an unbounded Run alive by itself. This is how the telemetry probe
// samples a kernel at a fixed sim-time interval without turning Drain
// into an infinite loop.
func (k *Kernel) EveryDaemon(period Duration, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: non-positive period")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			k.AtDaemon(k.now+period, tick)
		}
	}
	k.AtDaemon(k.now+period, tick)
	return func() { stopped = true }
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in time order until the queue empties (or holds
// only daemon events in an unbounded run, see AtDaemon), Stop is called,
// simulated time would exceed until, or MaxEvents is hit.
// It returns the simulated time at which the run ended.
func (k *Kernel) Run(until Time) Time {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		if k.daemons == len(k.queue) && until >= Forever {
			// Only housekeeping left and no horizon to fill: stop here,
			// leaving the daemons queued, exactly as if the queue were
			// empty. Time stays at the last real event.
			break
		}
		next := k.queue[0]
		if next.at > until {
			k.now = until
			return k.now
		}
		heap.Pop(&k.queue)
		if next.daemon {
			k.daemons--
		}
		k.now = next.at
		k.processed++
		// Recycle before running: the callback's own schedules may reuse
		// the struct immediately, and its Timer (if any) must already be
		// inert.
		fn := next.fn
		k.recycle(next)
		fn()
		if k.MaxEvents != 0 && k.processed >= k.MaxEvents {
			break
		}
	}
	if k.now < until && until < Forever && len(k.queue) == 0 {
		// Queue drained before a finite horizon: time jumps to the horizon
		// so repeated Run calls remain monotone.
		k.now = until
	}
	return k.now
}

// Drain runs until the queue is empty (daemon events excepted, see
// AtDaemon) with no time horizon.
func (k *Kernel) Drain() Time { return k.Run(Forever) }
