package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ShardedKernel is a deterministic lock-step parallel event kernel: peers
// are partitioned into K shards, each shard drains its own event heap on
// its own goroutine inside a fixed epoch window, and cross-shard events
// are buffered into per-(src,dst) batches that merge at the epoch barrier
// in canonical (time, source shard, source sequence) order.
//
// Determinism contract:
//
//   - A run is bit-identical per (workload, K): shards share no mutable
//     state during an epoch (each writes only its own heap, its own
//     outboxes, and state it owns), and the barrier merge is sequential
//     and canonically ordered.
//   - K=1 reproduces the plain Kernel bit-for-bit: a single shard has no
//     cross-shard events, runs on the calling goroutine, and executes the
//     same (time, seq) order as Kernel.Run.
//   - Runs are additionally K-independent when the epoch window does not
//     exceed the minimum cross-shard event delay (the classic conservative
//     lookahead bound) and cross-shard timestamps are distinct: every
//     event then executes at the same simulated time for any K. A
//     cross-shard event that arrives with a timestamp its target shard has
//     already passed is clamped to the shard's current time (the Kernel's
//     ordinary past-event rule) and counted in Stats().LateEvents — a
//     nonzero count means the window was larger than the workload's
//     lookahead.
//
// Shard callbacks must touch only state owned by their shard; anything
// destined for another shard's state crosses via Shard.DeferTo. Daemon
// events stay shard-local.
type ShardedKernel struct {
	shards []*Shard
	window Duration

	epochs       uint64
	crossEvents  uint64
	crossBatches uint64
	late         uint64

	stopped atomic.Bool
	scratch []mergeEv

	// OnBarrier, when non-nil, runs after every epoch barrier (merge
	// complete, all shard goroutines quiescent) with the kernel's current
	// time. This is the deterministic hook telemetry probes sample from:
	// it is the only point during a run where reading cross-shard state
	// is safe. The hook must be a pure observer or call Stop.
	OnBarrier func(now Time)

	// MaxEvents, when non-zero, stops Run at the first barrier at which
	// the total processed count reaches it — a runaway backstop with
	// epoch granularity.
	MaxEvents uint64
}

// Shard is one partition of a ShardedKernel: a private event heap plus
// outboxes toward every other shard. All methods except DeferTo mirror
// the plain Kernel. A shard's events run on its own goroutine during an
// epoch; the scheduling methods must only be called from that shard's own
// callbacks or while the kernel is not running (setup).
type Shard struct {
	id int
	sk *ShardedKernel
	k  *Kernel

	xseq        uint64
	out         [][]xevent
	crossEvents uint64
	crossBytes  uint64
}

// xevent is one buffered cross-shard event.
type xevent struct {
	at  Time
	seq uint64
	fn  func()
}

// mergeEv tags an xevent with its source shard for the canonical sort.
type mergeEv struct {
	x   xevent
	src int32
}

// NewSharded returns a sharded kernel with k shards and the given epoch
// window. The window is the lock-step granularity: each epoch processes
// [T, T+window) where T is the earliest pending event anywhere. Choose
// window ≤ the minimum cross-shard delay (see
// underlay.MinCrossShardLatency) for K-independent results.
func NewSharded(k int, window Duration) *ShardedKernel {
	if k < 1 {
		panic("sim: NewSharded needs ≥ 1 shard")
	}
	if window <= 0 {
		panic("sim: NewSharded needs a positive epoch window")
	}
	sk := &ShardedKernel{window: window, shards: make([]*Shard, k)}
	for i := range sk.shards {
		sk.shards[i] = &Shard{id: i, sk: sk, k: NewKernel(), out: make([][]xevent, k)}
	}
	return sk
}

// NumShards reports the shard count K.
func (sk *ShardedKernel) NumShards() int { return len(sk.shards) }

// Window reports the epoch window.
func (sk *ShardedKernel) Window() Duration { return sk.window }

// Shard returns shard i.
func (sk *ShardedKernel) Shard(i int) *Shard { return sk.shards[i] }

// Now returns the latest simulated time across shards. During a run it is
// only meaningful at epoch barriers.
func (sk *ShardedKernel) Now() Time {
	var now Time
	for _, s := range sk.shards {
		if s.k.now > now {
			now = s.k.now
		}
	}
	return now
}

// Processed reports the total events executed across shards.
func (sk *ShardedKernel) Processed() uint64 {
	var n uint64
	for _, s := range sk.shards {
		n += s.k.processed
	}
	return n
}

// Pending reports the total queued events across shards (buffered
// cross-shard events included).
func (sk *ShardedKernel) Pending() int {
	n := 0
	for _, s := range sk.shards {
		n += len(s.k.queue)
		for _, o := range s.out {
			n += len(o)
		}
	}
	return n
}

// Stop makes Run return at the next epoch barrier. Safe to call from any
// shard's callback or from the barrier hook.
func (sk *ShardedKernel) Stop() { sk.stopped.Store(true) }

// ShardStat is one shard's frozen statistics.
type ShardStat struct {
	Shard     int
	Now       Time
	Processed uint64
	Pending   int
	MaxQueue  int
	// CrossEvents and CrossBytes count events (and their payload bytes,
	// as reported by DeferTo callers) this shard sent to other shards.
	CrossEvents uint64
	CrossBytes  uint64
}

// ShardedStats is the kernel-wide snapshot.
type ShardedStats struct {
	Now          Time
	Epochs       uint64
	Processed    uint64
	CrossEvents  uint64
	CrossBatches uint64
	// LateEvents counts cross-shard events that arrived with a timestamp
	// their target shard had already passed (clamped forward). Nonzero
	// means the epoch window exceeded the workload's lookahead.
	LateEvents uint64
	Shards     []ShardStat
}

// Stats snapshots the kernel. Call at a barrier or after Run.
func (sk *ShardedKernel) Stats() ShardedStats {
	st := ShardedStats{
		Now:          sk.Now(),
		Epochs:       sk.epochs,
		CrossEvents:  sk.crossEvents,
		CrossBatches: sk.crossBatches,
		LateEvents:   sk.late,
	}
	for _, s := range sk.shards {
		ks := s.k.Stats()
		st.Processed += ks.Processed
		st.Shards = append(st.Shards, ShardStat{
			Shard: s.id, Now: ks.Now, Processed: ks.Processed,
			Pending: ks.Pending, MaxQueue: ks.MaxQueue,
			CrossEvents: s.crossEvents, CrossBytes: s.crossBytes,
		})
	}
	return st
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Now returns the shard's current simulated time.
func (s *Shard) Now() Time { return s.k.now }

// Clock returns a closure over the shard's current time.
func (s *Shard) Clock() func() Time { return s.k.Clock() }

// Schedule runs fn on this shard after delay.
func (s *Shard) Schedule(delay Duration, fn func()) Timer { return s.k.Schedule(delay, fn) }

// At runs fn on this shard at absolute time t.
func (s *Shard) At(t Time, fn func()) Timer { return s.k.At(t, fn) }

// AtDaemon schedules a shard-local daemon event (see Kernel.AtDaemon).
func (s *Shard) AtDaemon(t Time, fn func()) Timer { return s.k.AtDaemon(t, fn) }

// Every schedules fn on this shard at now+period and every period after.
func (s *Shard) Every(period Duration, fn func()) (cancel func()) { return s.k.Every(period, fn) }

// EveryDaemon is Every with daemon scheduling.
func (s *Shard) EveryDaemon(period Duration, fn func()) (cancel func()) {
	return s.k.EveryDaemon(period, fn)
}

// DeferTo schedules fn on shard dst after delay of this shard's time.
// Same-shard deferrals go straight into the local heap; cross-shard ones
// are buffered and merge into dst's heap at the epoch barrier in
// canonical (time, source shard, sequence) order. bytes is an accounting
// hint (message payload size) folded into the shard's CrossBytes
// statistic; pass 0 when there is no payload.
func (s *Shard) DeferTo(dst int, delay Duration, bytes uint64, fn func()) {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if delay < 0 {
		delay = 0
	}
	if dst == s.id {
		s.k.Schedule(delay, fn)
		return
	}
	if dst < 0 || dst >= len(s.out) {
		panic(fmt.Sprintf("sim: DeferTo shard %d of %d", dst, len(s.out)))
	}
	s.out[dst] = append(s.out[dst], xevent{at: s.k.now + delay, seq: s.xseq, fn: fn})
	s.xseq++
	s.crossEvents++
	s.crossBytes += bytes
}

// runEpoch executes this kernel's events with at < end (at ≤ end when
// inclusive), leaving now at the last executed event — the per-shard body
// of one lock-step epoch. When unbounded, a queue holding only daemon
// events stops early, exactly like Run(Forever).
func (k *Kernel) runEpoch(end Time, inclusive, unbounded bool) {
	for len(k.queue) > 0 {
		if unbounded && k.daemons == len(k.queue) {
			return
		}
		next := k.queue[0]
		if next.at > end || (next.at == end && !inclusive) {
			return
		}
		heap.Pop(&k.queue)
		if next.daemon {
			k.daemons--
		}
		k.now = next.at
		k.processed++
		fn := next.fn
		k.recycle(next)
		fn()
	}
}

// merge delivers every buffered cross-shard batch into its destination
// heap in canonical order. Sequential; runs at the barrier only.
func (sk *ShardedKernel) merge() {
	for dst, d := range sk.shards {
		buf := sk.scratch[:0]
		for src, s := range sk.shards {
			evs := s.out[dst]
			if len(evs) == 0 {
				continue
			}
			sk.crossBatches++
			for i := range evs {
				buf = append(buf, mergeEv{x: evs[i], src: int32(src)})
			}
			s.out[dst] = evs[:0]
		}
		if len(buf) == 0 {
			sk.scratch = buf
			continue
		}
		sort.Slice(buf, func(i, j int) bool {
			a, b := &buf[i], &buf[j]
			if a.x.at != b.x.at {
				return a.x.at < b.x.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.x.seq < b.x.seq
		})
		for i := range buf {
			if buf[i].x.at < d.k.now {
				sk.late++
			}
			d.k.At(buf[i].x.at, buf[i].x.fn)
		}
		sk.crossEvents += uint64(len(buf))
		sk.scratch = buf[:0]
	}
}

// Run executes events across all shards in lock-step epochs until every
// queue empties (or holds only daemons in an unbounded run), simulated
// time would exceed until, Stop is called, or MaxEvents is reached. It
// returns the simulated end time, with the same horizon-jump semantics as
// Kernel.Run.
func (sk *ShardedKernel) Run(until Time) Time {
	sk.stopped.Store(false)
	unbounded := until >= Forever
	clamp := true
	for {
		if sk.stopped.Load() {
			clamp = false
			break
		}
		next := Forever
		pending, daemons := 0, 0
		for _, s := range sk.shards {
			if n := len(s.k.queue); n > 0 {
				pending += n
				daemons += s.k.daemons
				if s.k.queue[0].at < next {
					next = s.k.queue[0].at
				}
			}
		}
		if pending == 0 || next >= Forever {
			break
		}
		if unbounded && daemons == pending {
			break
		}
		if next > until {
			break
		}
		end, inclusive := next+sk.window, false
		if end >= until {
			end, inclusive = until, true
		}
		if len(sk.shards) == 1 {
			sk.shards[0].k.runEpoch(end, inclusive, unbounded)
		} else {
			var wg sync.WaitGroup
			for _, s := range sk.shards {
				wg.Add(1)
				go func(s *Shard) {
					defer wg.Done()
					s.k.runEpoch(end, inclusive, unbounded)
				}(s)
			}
			wg.Wait()
		}
		sk.merge()
		sk.epochs++
		if sk.OnBarrier != nil {
			sk.OnBarrier(sk.Now())
		}
		if sk.MaxEvents != 0 && sk.Processed() >= sk.MaxEvents {
			clamp = false
			break
		}
	}
	if !unbounded && clamp {
		for _, s := range sk.shards {
			if s.k.now < until {
				s.k.now = until
			}
		}
		return until
	}
	return sk.Now()
}

// Drain runs until every shard's queue is empty (daemons excepted), with
// no time horizon.
func (sk *ShardedKernel) Drain() Time { return sk.Run(Forever) }
