package sim

import "testing"

// Satellite regression tests for Timer.Cancel edge cases under event
// pooling: double-cancel, cancel-after-fire (including after the pooled
// struct has been reused by a later schedule), and cancelling daemon
// events without underflowing the daemons counter.

func TestTimerDoubleCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.Schedule(5, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("first Cancel should report pending")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should be a no-op")
	}
	k.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

// TestTimerCancelAfterReuse is the nasty pooled-event case: the struct
// behind a fired Timer gets reused by a later schedule; a stale Cancel
// must not kill the new event.
func TestTimerCancelAfterReuse(t *testing.T) {
	k := NewKernel()
	tm1 := k.Schedule(1, func() {})
	k.Drain()

	// The free list now holds tm1's struct; this schedule reuses it.
	fired2 := false
	tm2 := k.Schedule(1, func() { fired2 = true })
	if tm2.e != tm1.e {
		t.Fatal("expected pooled struct reuse (free-list regression)")
	}
	if tm1.Cancel() {
		t.Fatal("stale Cancel claimed to cancel a reused event")
	}
	k.Drain()
	if !fired2 {
		t.Fatal("stale Cancel killed the reused event")
	}
	// And the live handle still works on a fresh pending event.
	tm3 := k.Schedule(1, func() { t.Fatal("cancelled event fired") })
	if !tm3.Cancel() {
		t.Fatal("live Cancel failed")
	}
	k.Drain()
}

// TestTimerCancelZeroValue checks the zero Timer is safely inert.
func TestTimerCancelZeroValue(t *testing.T) {
	var tm Timer
	if tm.Cancel() {
		t.Fatal("zero Timer Cancel reported success")
	}
}

// TestDaemonCancelNoUnderflow cancels daemon events every way at once and
// checks the daemons counter lands at exactly zero — an underflow would
// make Run(Forever) spin on daemon ticks forever.
func TestDaemonCancelNoUnderflow(t *testing.T) {
	k := NewKernel()
	d1 := k.AtDaemon(5, func() {})
	d2 := k.AtDaemon(6, func() {})
	if k.daemons != 2 {
		t.Fatalf("daemons = %d, want 2", k.daemons)
	}
	if !d1.Cancel() {
		t.Fatal("cancel pending daemon failed")
	}
	if d1.Cancel() {
		t.Fatal("double-cancel daemon succeeded")
	}
	if k.daemons != 1 {
		t.Fatalf("daemons = %d after cancel, want 1", k.daemons)
	}
	// Fire d2 by running with a real event alongside, then stale-cancel it.
	k.Schedule(10, func() {})
	k.Drain()
	if k.daemons != 0 {
		t.Fatalf("daemons = %d after drain, want 0", k.daemons)
	}
	if d2.Cancel() {
		t.Fatal("cancel after daemon fired succeeded")
	}
	if k.daemons != 0 {
		t.Fatalf("daemons = %d underflowed via stale cancel", k.daemons)
	}
	// Reuse the pooled structs as non-daemon events; stale daemon Timers
	// must not decrement.
	k.Schedule(1, func() {})
	k.Schedule(1, func() {})
	d1.Cancel()
	d2.Cancel()
	if k.daemons != 0 {
		t.Fatalf("daemons = %d after stale cancels on reused structs, want 0", k.daemons)
	}
	k.Drain()
}

// TestRunForeverTerminatesAfterDaemonCancel checks Run(Forever) still
// stops once only daemons remain, across cancels and re-arms.
func TestRunForeverTerminatesAfterDaemonCancel(t *testing.T) {
	k := NewKernel()
	ticks := 0
	cancel := k.EveryDaemon(10, func() { ticks++ })
	k.Schedule(35, func() {})
	end := k.Run(Forever)
	if end != 35 {
		t.Fatalf("ended at %v, want 35", end)
	}
	if ticks != 3 {
		t.Fatalf("daemon ticked %d times, want 3", ticks)
	}
	cancel()
	k.Schedule(5, func() {})
	if end := k.Run(Forever); end != 40 {
		t.Fatalf("second run ended at %v, want 40", end)
	}
}
