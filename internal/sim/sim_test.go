package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.Drain()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %v, want 30", k.Now())
	}
}

func TestKernelTieBreakFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	k.Drain()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events fired out of schedule order at %d: %v", i, got[:i+1])
		}
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(10, func() { fired++ })
	k.Schedule(50, func() { fired++ })
	end := k.Run(25)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if end != 25 {
		t.Fatalf("end = %v, want 25", end)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Drain()
	if fired != 2 {
		t.Fatalf("after drain fired = %d, want 2", fired)
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Schedule(10, func() {
		times = append(times, k.Now())
		k.Schedule(5, func() { times = append(times, k.Now()) })
	})
	k.Drain()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestKernelPastEventsFireNow(t *testing.T) {
	k := NewKernel()
	var at Time = -1
	k.Schedule(10, func() {
		k.At(3, func() { at = k.Now() }) // in the past
	})
	k.Drain()
	if at != 10 {
		t.Fatalf("past event fired at %v, want 10", at)
	}
}

func TestKernelNegativeDelayClamped(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Schedule(-5, func() { ran = true })
	k.Drain()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	tm := k.Schedule(10, func() { ran = true })
	if !tm.Cancel() {
		t.Fatal("first Cancel returned false")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	k.Drain()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	k := NewKernel()
	tm := k.Schedule(1, func() {})
	k.Drain()
	if tm.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestEvery(t *testing.T) {
	k := NewKernel()
	n := 0
	var cancel func()
	cancel = k.Every(10, func() {
		n++
		if n == 5 {
			cancel()
		}
	})
	k.Run(1000)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	if k.Now() != 1000 {
		t.Fatalf("Now = %v, want horizon 1000", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Schedule(1, func() { n++; k.Stop() })
	k.Schedule(2, func() { n++ })
	k.Run(100)
	if n != 1 {
		t.Fatalf("events after Stop ran: n=%d", n)
	}
}

func TestMaxEvents(t *testing.T) {
	k := NewKernel()
	k.MaxEvents = 10
	k.Every(1, func() {})
	k.Run(Forever)
	if k.Processed() != 10 {
		t.Fatalf("processed = %d, want 10", k.Processed())
	}
}

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42).Stream("overlay")
	b := NewSource(42).Stream("overlay")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed+name streams diverged")
		}
	}
}

func TestSourceStreamIndependence(t *testing.T) {
	s := NewSource(42)
	a := s.Stream("a")
	b := s.Stream("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 'a' and 'b' collide %d/100 times", same)
	}
}

func TestSourceForkIndependence(t *testing.T) {
	s := NewSource(7)
	a := s.Stream("x")
	b := s.Fork("child").Stream("x")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork stream collides with parent %d/100 times", same)
	}
}

func TestExpMean(t *testing.T) {
	r := NewSource(1).Stream("exp")
	var sum Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += Exp(r, 100)
	}
	mean := float64(sum) / n
	if math.Abs(mean-100) > 5 {
		t.Fatalf("exp mean = %.2f, want ~100", mean)
	}
	if Exp(r, 0) != 0 || Exp(r, -3) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestWeibullPositive(t *testing.T) {
	r := NewSource(1).Stream("weibull")
	for i := 0; i < 1000; i++ {
		if v := Weibull(r, 0.5, 100); v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("weibull draw %v out of range", v)
		}
	}
}

func TestZipfRange(t *testing.T) {
	r := NewSource(1).Stream("zipf")
	z := NewZipf(r, 1.0, 50)
	counts := make([]int, 50)
	for i := 0; i < 50000; i++ {
		k := z.Next()
		if k < 0 || k >= 50 {
			t.Fatalf("zipf rank %d out of [0,50)", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[49] {
		t.Fatalf("zipf not skewed: rank0=%d rank49=%d", counts[0], counts[49])
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := NewSource(1).Stream("zipf1")
	z := NewZipf(r, 1.2, 1)
	for i := 0; i < 100; i++ {
		if z.Next() != 0 {
			t.Fatal("single-item zipf must always return 0")
		}
	}
}

// Property: for any batch of non-negative delays, Drain fires them all in
// nondecreasing time order and ends at the max delay.
func TestQuickKernelMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var fired []Time
		var maxT Time
		for _, d := range delays {
			dt := Time(d)
			if dt > maxT {
				maxT = dt
			}
			k.Schedule(dt, func() { fired = append(fired, k.Now()) })
		}
		k.Drain()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || k.Now() == maxT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: splitmix64 is injective on any sample we draw (it is a
// bijection), so distinct stream names should essentially never collide.
func TestQuickSplitmixNoTrivialCollisions(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return splitmix64(a) != splitmix64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// NextAt peeks the earliest pending deadline without disturbing the
// queue — the wall-clock pacer's sleep target.
func TestKernelNextAt(t *testing.T) {
	k := NewKernel()
	if _, ok := k.NextAt(); ok {
		t.Fatal("NextAt on empty kernel reported an event")
	}
	k.At(30, func() {})
	k.At(10, func() {})
	tm := k.AtDaemon(5, func() {})
	if at, ok := k.NextAt(); !ok || at != 5 {
		t.Fatalf("NextAt = %v,%v want 5,true", at, ok)
	}
	tm.Cancel()
	if at, ok := k.NextAt(); !ok || at != 10 {
		t.Fatalf("NextAt after cancel = %v,%v want 10,true", at, ok)
	}
	k.Drain()
	if _, ok := k.NextAt(); ok {
		t.Fatal("NextAt after drain reported an event")
	}
}
