package sim_test

import (
	"fmt"

	"unap2p/internal/sim"
)

// A kernel runs events in simulated-time order; nested scheduling and
// periodic timers compose naturally.
func ExampleKernel() {
	k := sim.NewKernel()
	k.Schedule(20, func() { fmt.Println("second at", k.Now()) })
	k.Schedule(10, func() {
		fmt.Println("first at", k.Now())
		k.Schedule(25, func() { fmt.Println("nested at", k.Now()) })
	})
	k.Drain()
	// Output:
	// first at 10.000ms
	// second at 20.000ms
	// nested at 35.000ms
}

// Named streams decouple components: adding draws to one stream never
// perturbs another, so simulations stay reproducible as they grow.
func ExampleSource() {
	a := sim.NewSource(42).Stream("overlay")
	b := sim.NewSource(42).Stream("overlay")
	fmt.Println(a.Intn(1000) == b.Intn(1000))
	// Output:
	// true
}
