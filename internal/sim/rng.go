package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random source for a simulation run. Components
// derive independent substreams by name so that adding randomness to one
// component does not perturb another (a classic reproducibility trap in
// simulation studies).
type Source struct {
	seed uint64
}

// NewSource returns a Source rooted at seed.
func NewSource(seed int64) *Source { return &Source{seed: uint64(seed)} }

// Stream returns a *rand.Rand whose sequence depends only on the root seed
// and the stream name.
func (s *Source) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	mixed := splitmix64(s.seed ^ h.Sum64())
	return rand.New(rand.NewSource(int64(mixed)))
}

// Fork returns a child Source for a named subcomponent; its streams are
// independent of the parent's streams of the same name.
func (s *Source) Fork(name string) *Source {
	h := fnv.New64a()
	h.Write([]byte("fork/"))
	h.Write([]byte(name))
	return &Source{seed: splitmix64(s.seed ^ h.Sum64())}
}

// splitmix64 is the finalizer of the SplitMix64 generator; it decorrelates
// nearby seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Exp draws an exponentially distributed duration with the given mean,
// a convenience wrapper used by churn and workload generators.
func Exp(r *rand.Rand, mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	return Duration(r.ExpFloat64() * float64(mean))
}

// Weibull draws from a Weibull distribution with shape k and scale lambda.
// Shape < 1 yields the heavy-tailed session lengths observed in P2P churn
// studies.
func Weibull(r *rand.Rand, shape, scale float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Zipf returns a rank in [0, n) drawn from a Zipf distribution with
// exponent s >= 1 (s=1 gives the classic harmonic popularity curve used for
// P2P content popularity).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over n items with exponent s (>1 required
// by math/rand; callers pass ~1.0+eps for classic popularity).
func NewZipf(r *rand.Rand, s float64, n int) *Zipf {
	if s <= 1 {
		s = 1.0000001
	}
	if n < 1 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(r, s, 1, uint64(n-1))}
}

// Next draws the next rank.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }
