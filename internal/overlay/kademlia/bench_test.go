package kademlia

import (
	"testing"

	"unap2p/internal/core"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
)

func benchDHT(b *testing.B, pns bool) *DHT {
	b.Helper()
	src := sim.NewSource(1)
	net := topology.TransitStub(topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 25, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 8,
	})
	topology.PlaceHosts(net, 15, false, 1, 5, src.Stream("place"))
	cfg := DefaultConfig()
	var sel core.Selector
	if pns {
		sel = core.RTTSelector(net)
	}
	d := New(transport.Over(net), sel, cfg, src.Stream("dht"))
	for _, h := range net.Hosts() {
		d.AddNode(h)
	}
	d.Bootstrap(4)
	return d
}

// BenchmarkLookup measures an iterative FIND_NODE on a warm 120-node DHT.
func BenchmarkLookup(b *testing.B) {
	d := benchDHT(b, false)
	probe := sim.NewSource(2).Stream("probe")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := d.Nodes()[probe.Intn(len(d.Nodes()))].Host
		d.Lookup(from, NodeID(probe.Uint64()))
	}
}

// BenchmarkLookupPNS is the same workload with proximity-filled buckets.
func BenchmarkLookupPNS(b *testing.B) {
	d := benchDHT(b, true)
	probe := sim.NewSource(2).Stream("probe")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := d.Nodes()[probe.Intn(len(d.Nodes()))].Host
		d.Lookup(from, NodeID(probe.Uint64()))
	}
}

// BenchmarkObserve measures routing-table insertion with PNS replacement.
func BenchmarkObserve(b *testing.B) {
	d := benchDHT(b, true)
	n := d.Nodes()[0]
	contacts := make([]Contact, 0, len(d.Nodes()))
	for _, other := range d.Nodes() {
		contacts = append(contacts, other.Contact)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.observe(contacts[i%len(contacts)])
	}
}
