package kademlia

import (
	"sort"

	"unap2p/internal/resilience"
	"unap2p/internal/underlay"
)

// This file implements the resilience.Healer Suspect/Evict/Replace
// contract for Kademlia: eviction removes the dead peer from every
// routing table, and each freed slot is refilled by promoting the best
// live entry of that bucket's replacement cache — proximity-ranked when
// the DHT runs PNS, so repairs stay underlay-aware.

var _ resilience.Healer = (*DHT)(nil)

// Suspect records an advisory verdict. Suspected contacts stay in the
// routing tables (suspicion can be recanted) but are visible to
// introspection; lookups already route around unresponsive peers.
func (d *DHT) Suspect(id underlay.HostID) {
	if d.suspected == nil {
		d.suspected = make(map[underlay.HostID]bool)
	}
	d.suspected[id] = true
}

// Evict removes the peer from every node's routing table and promotes
// replacement-cache entries into the freed slots. Idempotent.
func (d *DHT) Evict(id underlay.HostID) {
	if d.evicted[id] {
		return
	}
	if d.evicted == nil {
		d.evicted = make(map[underlay.HostID]bool)
	}
	d.evicted[id] = true
	delete(d.suspected, id)
	dead := d.nodes[id]
	if dead == nil {
		return
	}
	for _, n := range d.sorted {
		if n != dead {
			n.dropContact(dead.Contact)
		}
	}
}

// Evicted returns the peers evicted so far, sorted.
func (d *DHT) Evicted() []underlay.HostID { return sortedHostIDs(d.evicted) }

// Refs returns every peer referenced by any routing table (deduped,
// sorted) — the reference set chaos invariants sweep for dead peers.
func (d *DHT) Refs() []underlay.HostID {
	set := make(map[underlay.HostID]bool)
	for _, n := range d.sorted {
		for _, c := range n.Contacts() {
			set[c.Host] = true
		}
	}
	return sortedHostIDs(set)
}

func sortedHostIDs(set map[underlay.HostID]bool) []underlay.HostID {
	out := make([]underlay.HostID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stash parks a contact in the bucket's replacement cache (newest last,
// oldest displaced, no duplicates).
func (n *Node) stash(idx int, c Contact) {
	if n.spares == nil {
		n.spares = make([][]Contact, len(n.buckets))
	}
	s := n.spares[idx]
	for _, have := range s {
		if have.ID == c.ID {
			return
		}
	}
	if len(s) >= n.cfg.K {
		s = s[1:]
	}
	n.spares[idx] = append(s, c)
}

// dropContact removes c from the bucket holding it and promotes a
// replacement from the cache.
func (n *Node) dropContact(c Contact) {
	idx := bucketIndex(Distance(n.ID, c.ID))
	if idx < 0 {
		return
	}
	for i, have := range n.buckets[idx] {
		if have.ID == c.ID {
			n.buckets[idx] = append(n.buckets[idx][:i], n.buckets[idx][i+1:]...)
			n.promote(idx)
			return
		}
	}
}

// promote moves the best live spare of a bucket into the table: the
// proximity-closest one under PNS, else the longest-waiting one — the
// replacement-cache policy of Kademlia's original design, made
// underlay-aware through the selector.
func (n *Node) promote(idx int) {
	if n.spares == nil {
		return
	}
	d := n.dht
	best := -1
	bestLat := 0.0
	for i, c := range n.spares[idx] {
		h := d.U.Host(c.Host)
		if !h.Up || d.evicted[c.Host] {
			continue
		}
		if d.sel == nil {
			best = i // FIFO: first live spare wins
			break
		}
		lat := d.proximity(n.host, h)
		if best < 0 || lat < bestLat {
			best, bestLat = i, lat
		}
	}
	if best < 0 {
		return
	}
	c := n.spares[idx][best]
	n.spares[idx] = append(n.spares[idx][:best], n.spares[idx][best+1:]...)
	n.buckets[idx] = append(n.buckets[idx], c)
}

// SpareCount reports the replacement-cache population (introspection).
func (n *Node) SpareCount() int {
	total := 0
	for _, s := range n.spares {
		total += len(s)
	}
	return total
}
