package kademlia

import (
	"math/bits"
	"sort"

	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// CompactConfig parameterizes a CompactDHT.
type CompactConfig struct {
	// K is the bucket width (entries per bucket).
	K int
	// Buckets caps the routing-table depth: the top Buckets distance
	// bands get a bucket each, and any distance below that resolution
	// collapses into slot 0 (the nearest band). With n peers the nearest
	// neighbor sits at XOR distance ~2^64/n, so Buckets ≳ log2(n)+4
	// leaves the collapsed band essentially empty while keeping the flat
	// array small.
	Buckets int
	// Alpha is the lookup parallelism.
	Alpha int
	// RPCBytes is the size charged per request or reply message.
	RPCBytes uint64
	// Aware, when true, fills spare bucket capacity preferring same-AS
	// contacts — the paper's proximity neighbor selection applied to the
	// compact table (lower latency per hop at equal correctness).
	Aware bool
}

// DefaultCompactConfig mirrors DefaultConfig at megascale-friendly size.
func DefaultCompactConfig() CompactConfig {
	return CompactConfig{K: 8, Buckets: 24, Alpha: 3, RPCBytes: 100}
}

// CompactDHT is a struct-of-arrays Kademlia over PeerTable peers for
// sharded megascale runs. Per-peer state is two flat slices — a routing
// table of n×Buckets×K contact slots and a fill count per bucket — with
// no per-peer structs, maps, or interior pointers. All lookup logic runs
// on the origin peer's shard; each hop's request executes on the target
// peer's shard (where its liveness may be read) and replies through the
// sharded transport, so the overlay obeys the kernel's shard-ownership
// rules by construction.
type CompactDHT struct {
	cfg CompactConfig
	net *transport.ShardedNet

	ids    []NodeID // ids[p] is peer p's node id
	sorted []NodeID // ids ascending, for exact closest-peer ground truth
	rt     []uint32 // routing table slots, peer p at rt[p*Buckets*K:]
	cnt    []uint8  // bucket fill counts, peer p at cnt[p*Buckets:]

	// reqClass/repClass are the transport class indices for RPCs.
	reqClass, repClass int

	// Per-shard lookup counters, owned by each shard.
	started, done, ok []uint64
	hops              []uint64
}

// NewCompact builds a compact DHT over every peer in the net's table.
// Node ids are a deterministic hash of (seed, peer) — collisions are
// re-hashed so ids are unique. reqClass and repClass are the transport
// message classes for request and reply traffic.
func NewCompact(net *transport.ShardedNet, cfg CompactConfig, seed uint64, reqClass, repClass int) *CompactDHT {
	n := net.Peers().Len()
	if cfg.K <= 0 || cfg.Buckets <= 0 || cfg.Alpha <= 0 {
		panic("kademlia: bad CompactConfig")
	}
	d := &CompactDHT{
		cfg: cfg, net: net,
		ids:      make([]NodeID, n),
		rt:       make([]uint32, n*cfg.Buckets*cfg.K),
		cnt:      make([]uint8, n*cfg.Buckets),
		reqClass: reqClass, repClass: repClass,
		started: make([]uint64, net.Kernel().NumShards()),
		done:    make([]uint64, net.Kernel().NumShards()),
		ok:      make([]uint64, net.Kernel().NumShards()),
		hops:    make([]uint64, net.Kernel().NumShards()),
	}
	seen := make(map[NodeID]bool, n)
	for p := 0; p < n; p++ {
		id := NodeID(mix64(seed ^ uint64(p)*0x9e3779b97f4a7c15))
		for seen[id] {
			id = NodeID(mix64(uint64(id)))
		}
		seen[id] = true
		d.ids[p] = id
	}
	d.sorted = append(d.sorted, d.ids...)
	sort.Slice(d.sorted, func(i, j int) bool { return d.sorted[i] < d.sorted[j] })
	return d
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ID returns peer p's node id.
func (d *CompactDHT) ID(p underlay.PeerID) NodeID { return d.ids[p] }

// bucketOf maps an XOR distance to a bucket slot: the top cfg.Buckets
// distance bands in order, with everything nearer collapsed into slot 0.
func (d *CompactDHT) bucketOf(dist uint64) int {
	b := 63 - bits.LeadingZeros64(dist) // 0..63, highest set bit
	if over := 64 - d.cfg.Buckets; b >= over {
		return b - over
	}
	return 0
}

// Observe records contact q in peer p's routing table. Full buckets keep
// their existing entries (classic Kademlia's preference for old, stable
// contacts) — unless Aware is set and q is in p's AS while the bucket
// holds a cross-AS entry, in which case the farthest-AS entry is
// replaced: proximity neighbor selection at equal bucket correctness.
func (d *CompactDHT) Observe(p, q underlay.PeerID) {
	if p == q {
		return
	}
	dist := Distance(d.ids[p], d.ids[q])
	b := d.bucketOf(dist)
	base := (int(p)*d.cfg.Buckets + b) * d.cfg.K
	c := &d.cnt[int(p)*d.cfg.Buckets+b]
	for i := 0; i < int(*c); i++ {
		if d.rt[base+i] == uint32(q) {
			return
		}
	}
	if int(*c) < d.cfg.K {
		d.rt[base+int(*c)] = uint32(q)
		*c++
		return
	}
	if !d.cfg.Aware {
		return
	}
	pt := d.net.Peers()
	if pt.AS(q) != pt.AS(p) {
		return
	}
	for i := 0; i < d.cfg.K; i++ {
		if pt.AS(underlay.PeerID(d.rt[base+i])) != pt.AS(p) {
			d.rt[base+i] = uint32(q)
			return
		}
	}
}

// Seed populates every peer's table deterministically with contacts at
// every distance scale: `fanout` pseudo-random peers, the `near`
// successors AND predecessors on the sorted id ring, and finger links
// at geometric rank offsets (±1, ±2, ±4, …). The geometry matters at
// scale. Random contacts alone leave the best candidate ~n/table-size
// ranks from any target, and a local-only ring cannot bridge that gap,
// so lookups at 10⁵⁺ peers wander and stall far from the closest id;
// geometric fingers put a contact in every XOR bucket band, restoring
// O(log n) convergence. Ring links are bidirectional because the
// XOR-closest peer is findable only through peers that know it. Call
// during single-threaded setup.
func (d *CompactDHT) Seed(seed uint64, fanout, near int) {
	n := len(d.ids)
	// idx[i] is the peer whose id is sorted[i].
	idx := d.peersByID()
	rank := make([]int, n)
	for i, p := range idx {
		rank[p] = i
	}
	for p := 0; p < n; p++ {
		for f := 0; f < fanout; f++ {
			q := int(mix64(seed^uint64(p)<<20^uint64(f)) % uint64(n))
			d.Observe(underlay.PeerID(p), underlay.PeerID(q))
		}
		for s := 1; s <= near; s++ {
			d.Observe(underlay.PeerID(p), idx[(rank[p]+s)%n])
			d.Observe(underlay.PeerID(p), idx[(rank[p]-s+n)%n])
		}
		for j := 0; 1<<j < n; j++ {
			d.Observe(underlay.PeerID(p), idx[(rank[p]+1<<j)%n])
			d.Observe(underlay.PeerID(p), idx[(rank[p]-1<<j%n+n)%n])
		}
	}
}

// peersByID returns peer ids ordered by ascending node id.
func (d *CompactDHT) peersByID() []underlay.PeerID {
	n := len(d.ids)
	idx := make([]underlay.PeerID, n)
	for p := 0; p < n; p++ {
		idx[p] = underlay.PeerID(p)
	}
	sort.Slice(idx, func(i, j int) bool { return d.ids[idx[i]] < d.ids[idx[j]] })
	return idx
}

// closest gathers up to k contacts from p's table nearest to target,
// deterministically (scan buckets outward from the target's, stable
// insertion by XOR distance).
func (d *CompactDHT) closest(p underlay.PeerID, target NodeID, k int, out []underlay.PeerID) []underlay.PeerID {
	out = out[:0]
	self := d.ids[p]
	start := d.bucketOf(Distance(self, target) | 1)
	consider := func(b int) {
		if b < 0 || b >= d.cfg.Buckets {
			return
		}
		base := (int(p)*d.cfg.Buckets + b) * d.cfg.K
		for i := 0; i < int(d.cnt[int(p)*d.cfg.Buckets+b]); i++ {
			out = append(out, underlay.PeerID(d.rt[base+i]))
		}
	}
	consider(start)
	for off := 1; off < d.cfg.Buckets && len(out) < 4*k; off++ {
		consider(start - off)
		consider(start + off)
	}
	sort.Slice(out, func(i, j int) bool {
		di := Distance(d.ids[out[i]], target)
		dj := Distance(d.ids[out[j]], target)
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ClosestGlobal returns the peer id globally XOR-closest to target —
// exact ground truth, computed by descending the implicit binary trie
// over the sorted id list: at each bit, follow the branch matching the
// target's bit if any id lives there, else the other branch. O(64 log n)
// per query, no per-peer state.
func (d *CompactDHT) ClosestGlobal(target NodeID) NodeID {
	s := d.sorted
	lo, hi := 0, len(s)
	for bit := 63; bit >= 0 && hi-lo > 1; bit-- {
		mask := uint64(1) << uint(bit)
		// Ids in [lo,hi) share all bits above bit; mid splits the
		// 0-branch [lo,mid) from the 1-branch [mid,hi).
		mid := lo + sort.Search(hi-lo, func(i int) bool { return uint64(s[lo+i])&mask != 0 })
		if uint64(target)&mask == 0 {
			if mid > lo {
				hi = mid
			} else {
				lo = mid
			}
		} else {
			if mid < hi {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	return s[lo]
}

// CompactResult reports one completed lookup.
type CompactResult struct {
	Origin underlay.PeerID
	Target NodeID
	// Best is the closest node id found.
	Best NodeID
	// Exact reports whether Best is the globally XOR-closest id.
	Exact bool
	// Hops is the number of request/reply round trips used.
	Hops int
}

// lookupState is one in-flight iterative lookup; it lives on the origin
// peer's shard and every mutation of it happens there.
type lookupState struct {
	d       *CompactDHT
	origin  underlay.PeerID
	target  NodeID
	cand    []underlay.PeerID // candidates sorted by distance
	queried map[underlay.PeerID]bool
	inFly   int
	hops    int
	done    bool
	onDone  func(CompactResult)
}

// Lookup starts an iterative α-parallel lookup for target from peer
// origin. It must be invoked on origin's owning shard (schedule it
// there). onDone, which may be nil, runs on origin's shard when the
// lookup converges.
func (d *CompactDHT) Lookup(origin underlay.PeerID, target NodeID, onDone func(CompactResult)) {
	oshard := d.net.ShardOf(origin)
	d.started[oshard]++
	st := &lookupState{
		d: d, origin: origin, target: target,
		queried: make(map[underlay.PeerID]bool, 3*d.cfg.K),
		onDone:  onDone,
	}
	st.cand = d.closest(origin, target, d.cfg.K, nil)
	st.step()
}

// step issues requests to the nearest unqueried candidates, up to Alpha
// in flight. Runs on the origin's shard.
func (st *lookupState) step() {
	if st.done {
		return
	}
	d := st.d
	issued := false
	for _, q := range st.cand {
		if st.inFly >= d.cfg.Alpha {
			break
		}
		if st.queried[q] {
			continue
		}
		st.queried[q] = true
		st.inFly++
		st.hops++
		issued = true
		st.request(q)
	}
	if !issued && st.inFly == 0 {
		st.finish()
	}
}

// request sends one FIND_NODE to peer q: the request executes on q's
// shard (the only place q's liveness and table may be read) and the
// reply returns to the origin's shard through the transport.
func (st *lookupState) request(q underlay.PeerID) {
	d := st.d
	origin, target := st.origin, st.target
	d.net.Send(origin, q, d.reqClass, d.cfg.RPCBytes, func() {
		// On q's shard now.
		var found []underlay.PeerID
		alive := d.net.Peers().Up(q)
		if alive {
			found = d.closest(q, target, d.cfg.K, nil)
		}
		// Reply (or a zero-byte "timeout" nack after the same RTT when q
		// is down — a dead peer costs the lookup one round trip).
		bytes := d.cfg.RPCBytes
		if !alive {
			bytes = 0
		}
		d.net.Send(q, origin, d.repClass, bytes, func() {
			// Back on origin's shard.
			st.inFly--
			if alive {
				for _, c := range found {
					d.Observe(origin, c)
					st.insert(c)
				}
			}
			st.step()
		})
	})
}

// insert merges candidate c into the sorted working set, keeping the
// nearest K.
func (st *lookupState) insert(c underlay.PeerID) {
	d := st.d
	dc := Distance(d.ids[c], st.target)
	for _, e := range st.cand {
		if e == c {
			return
		}
	}
	i := sort.Search(len(st.cand), func(i int) bool {
		de := Distance(d.ids[st.cand[i]], st.target)
		if de != dc {
			return de > dc
		}
		return st.cand[i] >= c
	})
	st.cand = append(st.cand, 0)
	copy(st.cand[i+1:], st.cand[i:])
	st.cand[i] = c
	if len(st.cand) > 3*d.cfg.K {
		st.cand = st.cand[:3*d.cfg.K]
	}
}

// finish completes the lookup on the origin's shard.
func (st *lookupState) finish() {
	st.done = true
	d := st.d
	oshard := d.net.ShardOf(st.origin)
	d.done[oshard]++
	d.hops[oshard] += uint64(st.hops)
	best := d.ids[st.origin]
	if len(st.cand) > 0 {
		best = d.ids[st.cand[0]]
	}
	res := CompactResult{
		Origin: st.origin, Target: st.target, Best: best,
		Exact: best == d.ClosestGlobal(st.target), Hops: st.hops,
	}
	if res.Exact {
		d.ok[oshard]++
	}
	if st.onDone != nil {
		st.onDone(res)
	}
}

// CompactStats aggregates lookup counters across shards. Safe at barriers
// or after a run.
type CompactStats struct {
	Started, Done, Exact uint64
	Hops                 uint64
}

// SuccessRate is the fraction of completed lookups that found the exact
// globally closest id.
func (s CompactStats) SuccessRate() float64 {
	if s.Done == 0 {
		return 0
	}
	return float64(s.Exact) / float64(s.Done)
}

// MeanHops is the average round trips per completed lookup.
func (s CompactStats) MeanHops() float64 {
	if s.Done == 0 {
		return 0
	}
	return float64(s.Hops) / float64(s.Done)
}

// Stats aggregates the per-shard lookup counters.
func (d *CompactDHT) Stats() CompactStats {
	var s CompactStats
	for i := range d.started {
		s.Started += d.started[i]
		s.Done += d.done[i]
		s.Exact += d.ok[i]
		s.Hops += d.hops[i]
	}
	return s
}

// HealthStats exposes lookup health for telemetry sampling at barriers.
func (d *CompactDHT) HealthStats() map[string]float64 {
	s := d.Stats()
	return map[string]float64{
		"lookups_started": float64(s.Started),
		"lookups_done":    float64(s.Done),
		"success_rate":    s.SuccessRate(),
		"mean_hops":       s.MeanHops(),
	}
}
