package kademlia

import (
	"math/bits"
	"sort"

	"unap2p/internal/megascale"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// CompactConfig parameterizes a CompactDHT.
type CompactConfig struct {
	// K is the bucket width (entries per bucket).
	K int
	// Buckets caps the routing-table depth: the top Buckets distance
	// bands get a bucket each, and any distance below that resolution
	// collapses into slot 0 (the nearest band). With n peers the nearest
	// neighbor sits at XOR distance ~2^64/n, so Buckets ≳ log2(n)+4
	// leaves the collapsed band essentially empty while keeping the flat
	// array small.
	Buckets int
	// Alpha is the lookup parallelism.
	Alpha int
	// RPCBytes is the size charged per request or reply message.
	RPCBytes uint64
	// Aware, when true, fills spare bucket capacity preferring same-AS
	// contacts — the paper's proximity neighbor selection applied to the
	// compact table (lower latency per hop at equal correctness).
	Aware bool
}

// DefaultCompactConfig mirrors DefaultConfig at megascale-friendly size.
func DefaultCompactConfig() CompactConfig {
	return CompactConfig{K: 8, Buckets: 24, Alpha: 3, RPCBytes: 100}
}

// CompactDHT is a struct-of-arrays Kademlia over PeerTable peers for
// sharded megascale runs, built on the megascale runtime: node ids and
// ground truth come from a megascale.IDSpace, the iterative α-parallel
// lookup runs on the shared megascale.Iter state-machine driver, and
// request accounting lives in per-shard megascale.Counters. What stays
// Kademlia-specific is the routing geometry — the XOR metric, the flat
// n×Buckets×K bucket table, and the outward bucket scan below.
type CompactDHT struct {
	cfg CompactConfig
	net *transport.ShardedNet

	space *megascale.IDSpace
	ids   []NodeID // ids[p] is peer p's node id — flat view of space
	rt    []uint32 // routing table slots, peer p at rt[p*Buckets*K:]
	cnt   []uint8  // bucket fill counts, peer p at cnt[p*Buckets:]

	ctr  *megascale.Counters
	iter megascale.Iter
}

// NewCompact builds a compact DHT over every peer in the net's table.
// Node ids are a deterministic hash of (seed, peer) — collisions are
// re-hashed so ids are unique. reqClass and repClass are the transport
// message classes for request and reply traffic.
func NewCompact(net *transport.ShardedNet, cfg CompactConfig, seed uint64, reqClass, repClass int) *CompactDHT {
	n := net.Peers().Len()
	if cfg.K <= 0 || cfg.Buckets <= 0 || cfg.Alpha <= 0 {
		panic("kademlia: bad CompactConfig")
	}
	d := &CompactDHT{
		cfg: cfg, net: net,
		space: megascale.NewIDSpace(n, seed),
		rt:    make([]uint32, n*cfg.Buckets*cfg.K),
		cnt:   make([]uint8, n*cfg.Buckets),
		ctr:   megascale.NewCounters(net.Kernel().NumShards()),
	}
	d.ids = make([]NodeID, n)
	for p := 0; p < n; p++ {
		d.ids[p] = NodeID(d.space.ID(underlay.PeerID(p)))
	}
	d.iter = megascale.Iter{
		Net: net, ReqClass: reqClass, RepClass: repClass, RPCBytes: cfg.RPCBytes,
		Alpha: cfg.Alpha, Width: 3 * cfg.K, Ctr: d.ctr,
		Dist: func(q underlay.PeerID, target uint64) uint64 {
			return uint64(d.ids[q]) ^ target
		},
		Candidates: func(q underlay.PeerID, target uint64) []underlay.PeerID {
			return d.closest(q, NodeID(target), d.cfg.K, nil)
		},
		Learn: d.Observe,
		OK: func(best underlay.PeerID, target uint64) bool {
			return uint64(d.ids[best]) == d.space.ClosestXOR(target)
		},
	}
	return d
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 { return megascale.Mix64(x) }

// ID returns peer p's node id.
func (d *CompactDHT) ID(p underlay.PeerID) NodeID { return d.ids[p] }

// Name identifies the overlay (megascale.CompactOverlay).
func (d *CompactDHT) Name() string { return "kademlia" }

// bucketOf maps an XOR distance to a bucket slot: the top cfg.Buckets
// distance bands in order, with everything nearer collapsed into slot 0.
func (d *CompactDHT) bucketOf(dist uint64) int {
	b := 63 - bits.LeadingZeros64(dist) // 0..63, highest set bit
	if over := 64 - d.cfg.Buckets; b >= over {
		return b - over
	}
	return 0
}

// Observe records contact q in peer p's routing table. Full buckets keep
// their existing entries (classic Kademlia's preference for old, stable
// contacts) — unless Aware is set and q is in p's AS while the bucket
// holds a cross-AS entry, in which case the farthest-AS entry is
// replaced (megascale.ReplaceCrossAS): proximity neighbor selection at
// equal bucket correctness.
func (d *CompactDHT) Observe(p, q underlay.PeerID) {
	if p == q {
		return
	}
	b := d.bucketOf(Distance(d.ids[p], d.ids[q]))
	base := (int(p)*d.cfg.Buckets + b) * d.cfg.K
	c := &d.cnt[int(p)*d.cfg.Buckets+b]
	for i := 0; i < int(*c); i++ {
		if d.rt[base+i] == uint32(q) {
			return
		}
	}
	if int(*c) < d.cfg.K {
		d.rt[base+int(*c)] = uint32(q)
		*c++
		return
	}
	if !d.cfg.Aware {
		return
	}
	if i := megascale.ReplaceCrossAS(d.net.Peers(), p, q, d.rt[base:base+d.cfg.K]); i >= 0 {
		d.rt[base+i] = uint32(q)
	}
}

// Seed populates every peer's table deterministically with contacts at
// every distance scale — megascale.IDSpace.SeedContacts (random fanout +
// bidirectional ring links + geometric fingers) feeding Observe. Call
// during single-threaded setup.
func (d *CompactDHT) Seed(seed uint64, fanout, near int) {
	d.space.SeedContacts(seed, fanout, near, d.Observe)
}

// Bootstrap implements megascale.CompactOverlay with the standard
// megascale contact mix (fanout 20, ring ±4).
func (d *CompactDHT) Bootstrap(seed uint64) { d.Seed(seed, 20, 4) }

// closest gathers up to k contacts from p's table nearest to target,
// deterministically (scan buckets outward from the target's, stable
// insertion by XOR distance).
func (d *CompactDHT) closest(p underlay.PeerID, target NodeID, k int, out []underlay.PeerID) []underlay.PeerID {
	out = out[:0]
	self := d.ids[p]
	start := d.bucketOf(Distance(self, target) | 1)
	consider := func(b int) {
		if b < 0 || b >= d.cfg.Buckets {
			return
		}
		base := (int(p)*d.cfg.Buckets + b) * d.cfg.K
		for i := 0; i < int(d.cnt[int(p)*d.cfg.Buckets+b]); i++ {
			out = append(out, underlay.PeerID(d.rt[base+i]))
		}
	}
	consider(start)
	for off := 1; off < d.cfg.Buckets && len(out) < 4*k; off++ {
		consider(start - off)
		consider(start + off)
	}
	sort.Slice(out, func(i, j int) bool {
		di := Distance(d.ids[out[i]], target)
		dj := Distance(d.ids[out[j]], target)
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ClosestGlobal returns the peer id globally XOR-closest to target —
// exact ground truth via the id space's binary-trie descent.
func (d *CompactDHT) ClosestGlobal(target NodeID) NodeID {
	return NodeID(d.space.ClosestXOR(uint64(target)))
}

// CompactResult reports one completed lookup.
type CompactResult struct {
	Origin underlay.PeerID
	Target NodeID
	// Best is the closest node id found.
	Best NodeID
	// Exact reports whether Best is the globally XOR-closest id.
	Exact bool
	// Hops is the number of request/reply round trips used.
	Hops int
}

// Lookup starts an iterative α-parallel lookup for target from peer
// origin. It must be invoked on origin's owning shard (schedule it
// there). onDone, which may be nil, runs on origin's shard when the
// lookup converges.
func (d *CompactDHT) Lookup(origin underlay.PeerID, target NodeID, onDone func(CompactResult)) {
	var wrap func(megascale.Result)
	if onDone != nil {
		wrap = func(r megascale.Result) {
			onDone(CompactResult{
				Origin: r.Origin, Target: target,
				Best: d.ids[r.Best], Exact: r.OK, Hops: r.Hops,
			})
		}
	}
	d.iter.Start(origin, uint64(target), wrap)
}

// Query implements megascale.CompactOverlay: one lookup for a
// pseudo-random target derived from the per-request seed.
func (d *CompactDHT) Query(origin underlay.PeerID, seed uint64, onDone func(megascale.Result)) {
	d.iter.Start(origin, megascale.Mix64(seed), onDone)
}

// CompactStats aggregates lookup counters across shards. Safe at barriers
// or after a run.
type CompactStats struct {
	Started, Done, Exact uint64
	Hops                 uint64
}

// SuccessRate is the fraction of completed lookups that found the exact
// globally closest id.
func (s CompactStats) SuccessRate() float64 {
	if s.Done == 0 {
		return 0
	}
	return float64(s.Exact) / float64(s.Done)
}

// MeanHops is the average round trips per completed lookup.
func (s CompactStats) MeanHops() float64 {
	if s.Done == 0 {
		return 0
	}
	return float64(s.Hops) / float64(s.Done)
}

// Stats aggregates the per-shard lookup counters.
func (d *CompactDHT) Stats() CompactStats {
	s := d.ctr.Stats()
	return CompactStats{Started: s.Started, Done: s.Done, Exact: s.OK, Hops: s.Hops}
}

// MegaStats aggregates the shared runtime counters
// (megascale.CompactOverlay).
func (d *CompactDHT) MegaStats() megascale.Stats { return d.ctr.Stats() }

// HealthStats exposes lookup health for telemetry sampling at barriers.
func (d *CompactDHT) HealthStats() map[string]float64 { return d.ctr.Health() }
