// Package kademlia implements a Kademlia DHT over the simulated underlay:
// XOR metric, k-buckets, iterative α-parallel lookups, and STORE/FIND —
// plus the proximity neighbor selection (PNS) of Kaune et al. ("Embracing
// the peer next door: Proximity in Kademlia", IEEE P2P 2008 — [17] in the
// paper), which fills k-buckets with underlay-close contacts to cut
// inter-AS DHT traffic without hurting hop counts.
//
// IDs are 64-bit (a documented down-scaling of Kademlia's 160-bit space;
// the metric's properties are bit-width independent and 64 bits are ample
// for simulated populations).
package kademlia

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"unap2p/internal/core"
	"unap2p/internal/metrics"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// NodeID is a position in the 64-bit XOR keyspace.
type NodeID uint64

// Key is a content key in the same space.
type Key = NodeID

// Distance returns the XOR distance between two IDs.
func Distance(a, b NodeID) uint64 { return uint64(a ^ b) }

// bucketIndex returns the k-bucket index for a contact at the given XOR
// distance: the position of the highest set bit (0 = closest half-space
// ... 63 = farthest). Distance 0 (self) has no bucket and returns -1.
func bucketIndex(d uint64) int {
	if d == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(d)
}

// Contact pairs a DHT identifier with its underlay attachment.
type Contact struct {
	ID   NodeID
	Host underlay.HostID
}

// Config tunes the DHT.
type Config struct {
	// K is the bucket size / replication factor.
	K int
	// Alpha is the lookup parallelism.
	Alpha int
	// RPCBytes is the size of one request or response message.
	RPCBytes uint64
}

// DefaultConfig uses the classic k=8 (scaled from 20), α=3.
func DefaultConfig() Config { return Config{K: 8, Alpha: 3, RPCBytes: 100} }

// Node is one DHT participant.
type Node struct {
	Contact
	host    *underlay.Host
	buckets [][]Contact // index by bucketIndex
	// spares is the per-bucket replacement cache: contacts that lost the
	// insertion contest wait here (newest last) and are promoted when an
	// eviction frees a slot. Nil until the first stash, so tables built
	// before any bucket overflows carry no extra state.
	spares [][]Contact
	store  map[Key][]byte
	cfg    Config
	dht    *DHT
}

// DHT is a Kademlia instance bound to an underlay via a transport.
type DHT struct {
	// T carries every RPC; U serves topology queries (proximity
	// estimates) without charging traffic.
	T   transport.Messenger
	U   *underlay.Network
	Cfg Config
	// Msgs counts RPCs ("find_node", "find_value", "store", "response")
	// — a view of the transport's per-type counters.
	Msgs *metrics.CounterSet
	// LookupTraffic accounts RPC bytes by AS pair, recorded by the
	// transport across all RPC message types.
	LookupTraffic *metrics.TrafficMatrix

	nodes  map[underlay.HostID]*Node
	byID   map[NodeID]*Node
	sorted []*Node // by NodeID, for deterministic iteration
	r      *rand.Rand
	sel    core.Selector
	// suspected and evicted track failure-detector verdicts (see
	// heal.go); nil until the resilience layer delivers one.
	suspected, evicted map[underlay.HostID]bool
}

// New creates an empty DHT sending through tr. A non-nil selector turns
// on proximity neighbor selection with the selector's Proximity verb as
// the distance estimate: core.RTTSelector for explicit measurement, or a
// Vivaldi/landmark predictor wrapped with core.FuncSelector to study
// prediction-driven PNS (the §3.2 collection techniques plugged into §4
// usage). A nil selector runs classic Kademlia.
func New(tr transport.Messenger, sel core.Selector, cfg Config, r *rand.Rand) *DHT {
	if cfg.K < 1 || cfg.Alpha < 1 {
		panic("kademlia: K and Alpha must be ≥ 1")
	}
	return &DHT{
		T:             tr,
		U:             tr.Underlay(),
		Cfg:           cfg,
		Msgs:          tr.Counters(),
		LookupTraffic: tr.MatrixFor("find_node", "find_value", "response", "store"),
		nodes:         make(map[underlay.HostID]*Node),
		byID:          make(map[NodeID]*Node),
		r:             r,
		sel:           sel,
	}
}

// proximity is the PNS distance estimate; contacts the selector has no
// answer for are never preferred.
func (d *DHT) proximity(a, b *underlay.Host) float64 {
	if v, ok := d.sel.Proximity(a, b); ok {
		return v
	}
	return math.MaxFloat64
}

// AddNode joins a host with a random (collision-free) node ID.
func (d *DHT) AddNode(h *underlay.Host) *Node {
	if _, dup := d.nodes[h.ID]; dup {
		panic(fmt.Sprintf("kademlia: host %d already joined", h.ID))
	}
	id := NodeID(d.r.Uint64())
	for _, taken := d.byID[id]; taken; _, taken = d.byID[id] {
		id = NodeID(d.r.Uint64())
	}
	n := &Node{
		Contact: Contact{ID: id, Host: h.ID},
		host:    h,
		buckets: make([][]Contact, 64),
		store:   make(map[Key][]byte),
		cfg:     d.Cfg,
		dht:     d,
	}
	d.nodes[h.ID] = n
	d.byID[id] = n
	d.sorted = append(d.sorted, n)
	sort.Slice(d.sorted, func(i, j int) bool { return d.sorted[i].ID < d.sorted[j].ID })
	return n
}

// Node returns the participant on a host (nil if absent).
func (d *DHT) Node(h underlay.HostID) *Node { return d.nodes[h] }

// Nodes returns all participants in NodeID order.
func (d *DHT) Nodes() []*Node { return d.sorted }

// observe inserts a learned contact into n's routing table.
func (n *Node) observe(c Contact) {
	if c.ID == n.ID {
		return
	}
	idx := bucketIndex(Distance(n.ID, c.ID))
	b := n.buckets[idx]
	for _, have := range b {
		if have.ID == c.ID {
			return // already known
		}
	}
	if len(b) < n.cfg.K {
		n.buckets[idx] = append(b, c)
		return
	}
	if n.dht.sel == nil {
		// Classic Kademlia drops the newcomer; we park it in the
		// replacement cache instead (a passive stash — routing behaviour
		// is unchanged until an eviction promotes it).
		n.stash(idx, c)
		return
	}
	// PNS: keep the K proximity-closest contacts for this bucket; the
	// loser of the contest goes to the replacement cache.
	prox := n.dht.proximity
	worst, worstLat := -1, -1.0
	for i, have := range b {
		lat := prox(n.host, n.dht.U.Host(have.Host))
		if lat > worstLat {
			worst, worstLat = i, lat
		}
	}
	newLat := prox(n.host, n.dht.U.Host(c.Host))
	if worst >= 0 && newLat < worstLat {
		n.stash(idx, n.buckets[idx][worst])
		n.buckets[idx][worst] = c
		return
	}
	n.stash(idx, c)
}

// closest returns up to k contacts from n's table nearest to target,
// including n itself as a candidate the caller may use.
func (n *Node) closest(target NodeID, k int) []Contact {
	var all []Contact
	for _, b := range n.buckets {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool {
		di, dj := Distance(all[i].ID, target), Distance(all[j].ID, target)
		if di != dj {
			return di < dj
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// BucketFill reports the total number of routing-table entries (test and
// experiment introspection).
func (n *Node) BucketFill() int {
	total := 0
	for _, b := range n.buckets {
		total += len(b)
	}
	return total
}

// Contacts returns every contact in the routing table.
func (n *Node) Contacts() []Contact {
	var all []Contact
	for _, b := range n.buckets {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

// Bootstrap populates routing tables: every node observes `seeds` random
// peers, then performs a self-lookup (the standard Kademlia join), which
// both fills its own table and advertises it to the nodes it traverses.
func (d *DHT) Bootstrap(seeds int) {
	for _, n := range d.sorted {
		for s := 0; s < seeds; s++ {
			peer := d.sorted[d.r.Intn(len(d.sorted))]
			if peer != n {
				n.observe(peer.Contact)
			}
		}
	}
	for _, n := range d.sorted {
		d.Lookup(n.Host, n.ID)
	}
}

// HealthStats implements the telemetry HealthReporter hook: structural
// gauges the probe plane samples over simulated time. All values come
// from pure reads in deterministic order (d.sorted, sorted contacts),
// so sampling never perturbs a run.
//
//   - nodes: joined population
//   - bucket_fill_mean: mean routing-table size per node
//   - rt_as_hops_mean: mean AS-path length from a node to its
//     routing-table entries — the locality PNS is supposed to buy
//   - rt_intra_as_fraction: share of routing-table entries inside the
//     owner's own AS
func (d *DHT) HealthStats() map[string]float64 {
	var fill, hops, intra, entries float64
	for _, n := range d.sorted {
		fill += float64(n.BucketFill())
		for _, c := range n.Contacts() {
			h := d.U.ASHops(n.host.AS.ID, d.U.Host(c.Host).AS.ID)
			if h < 0 {
				continue // unreachable: no defined distance
			}
			entries++
			hops += float64(h)
			if h == 0 {
				intra++
			}
		}
	}
	out := map[string]float64{"nodes": float64(len(d.sorted))}
	if len(d.sorted) > 0 {
		out["bucket_fill_mean"] = fill / float64(len(d.sorted))
	}
	if entries > 0 {
		out["rt_as_hops_mean"] = hops / entries
		out["rt_intra_as_fraction"] = intra / entries
	}
	return out
}
