package kademlia

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"unap2p/internal/core"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

func buildDHT(t *testing.T, nHosts int, pns bool, seed int64) (*underlay.Network, *DHT) {
	t.Helper()
	src := sim.NewSource(seed)
	tcfg := topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 25, Rand: src.Stream("topo")},
		Transits: 2,
		Stubs:    8,
	}
	net := topology.TransitStub(tcfg)
	topology.PlaceHosts(net, (nHosts+7)/8, false, 1, 5, src.Stream("place"))
	cfg := DefaultConfig()
	var sel core.Selector
	if pns {
		sel = core.RTTSelector(net)
	}
	d := New(transport.Over(net), sel, cfg, src.Stream("dht"))
	for i, h := range net.Hosts() {
		if i >= nHosts {
			break
		}
		d.AddNode(h)
	}
	d.Bootstrap(4)
	return net, d
}

func TestDistanceMetricProperties(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := NodeID(a), NodeID(b), NodeID(c)
		if Distance(x, x) != 0 {
			return false
		}
		if Distance(x, y) != Distance(y, x) {
			return false
		}
		// XOR triangle: d(x,z) ≤ d(x,y) + d(y,z) because
		// xor(a,c) = xor(xor(a,b), xor(b,c)) and xor(u,v) ≤ u+v.
		// Guard the uint64 sum against wrap-around: if it overflows, the
		// bound trivially holds.
		dxy, dyz := Distance(x, y), Distance(y, z)
		sum := dxy + dyz
		if sum < dxy { // overflow
			return true
		}
		return Distance(x, z) <= sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketIndex(t *testing.T) {
	if bucketIndex(0) != -1 {
		t.Fatal("self distance must have no bucket")
	}
	if bucketIndex(1) != 0 {
		t.Fatalf("bucketIndex(1) = %d", bucketIndex(1))
	}
	if bucketIndex(1<<63) != 63 {
		t.Fatalf("bucketIndex(msb) = %d", bucketIndex(1<<63))
	}
	if bucketIndex(0b1010) != 3 {
		t.Fatalf("bucketIndex(0b1010) = %d", bucketIndex(0b1010))
	}
}

func TestBucketCapacityInvariant(t *testing.T) {
	_, d := buildDHT(t, 60, false, 1)
	for _, n := range d.Nodes() {
		for i, b := range n.buckets {
			if len(b) > d.Cfg.K {
				t.Fatalf("node %x bucket %d has %d > K entries", n.ID, i, len(b))
			}
			for _, c := range b {
				if got := bucketIndex(Distance(n.ID, c.ID)); got != i {
					t.Fatalf("contact in wrong bucket: %d vs %d", got, i)
				}
			}
		}
	}
}

func TestLookupConvergesToGlobalClosest(t *testing.T) {
	_, d := buildDHT(t, 60, false, 2)
	target := NodeID(0x123456789abcdef0)
	res := d.Lookup(d.Nodes()[0].Host, target)
	if len(res.Closest) == 0 {
		t.Fatal("no result")
	}
	// Ground truth: globally closest node.
	best := d.Nodes()[0].ID
	for _, n := range d.Nodes() {
		if Distance(n.ID, target) < Distance(best, target) {
			best = n.ID
		}
	}
	if res.Closest[0].ID != best {
		t.Fatalf("lookup found %x, global closest is %x", res.Closest[0].ID, best)
	}
	if res.Hops == 0 || res.Msgs == 0 || res.Latency <= 0 {
		t.Fatalf("implausible lookup stats %+v", res)
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	_, d := buildDHT(t, 120, false, 3)
	var totalHops int
	const probes = 40
	for i := 0; i < probes; i++ {
		target := NodeID(d.r.Uint64())
		res := d.Lookup(d.Nodes()[i%len(d.Nodes())].Host, target)
		totalHops += res.Hops
	}
	mean := float64(totalHops) / probes
	// log2(120)/... iterative with α=3 over k-buckets: a handful of hops.
	if mean > 8 {
		t.Fatalf("mean hops %.1f too high for 120 nodes", mean)
	}
}

func TestPutGet(t *testing.T) {
	_, d := buildDHT(t, 60, false, 4)
	key := NodeID(0xfeedface12345678)
	val := []byte("item-7")
	d.Put(d.Nodes()[3].Host, key, val)
	res := d.Get(d.Nodes()[40].Host, key)
	if !res.Found || string(res.Value) != "item-7" {
		t.Fatalf("get failed: %+v", res)
	}
	if d.Msgs.Value("store") == 0 {
		t.Fatal("no store RPCs counted")
	}
}

func TestGetMissingKey(t *testing.T) {
	_, d := buildDHT(t, 40, false, 5)
	res := d.Get(d.Nodes()[0].Host, NodeID(0xdeadbeef))
	if res.Found {
		t.Fatal("found a never-stored key")
	}
}

func TestPNSReducesLookupLatencyAndInterAS(t *testing.T) {
	// Same seed → same topology and IDs; only bucket policy differs.
	_, plain := buildDHT(t, 100, false, 6)
	_, pns := buildDHT(t, 100, true, 6)

	probe := func(d *DHT) (lat float64, interAS float64) {
		var latSum sim.Duration
		r := sim.NewSource(99).Stream("probe")
		for i := 0; i < 60; i++ {
			from := d.Nodes()[r.Intn(len(d.Nodes()))].Host
			target := NodeID(r.Uint64())
			res := d.Lookup(from, target)
			latSum += res.Latency
		}
		frac := 1 - d.LookupTraffic.IntraFraction()
		return float64(latSum), frac
	}
	latPlain, interPlain := probe(plain)
	latPNS, interPNS := probe(pns)
	if latPNS >= latPlain {
		t.Fatalf("PNS latency %v not below plain %v", latPNS, latPlain)
	}
	if interPNS >= interPlain {
		t.Fatalf("PNS inter-AS fraction %.3f not below plain %.3f", interPNS, interPlain)
	}
}

func TestPNSKeepsLookupCorrect(t *testing.T) {
	_, d := buildDHT(t, 80, true, 7)
	for i := 0; i < 20; i++ {
		target := NodeID(d.r.Uint64())
		res := d.Lookup(d.Nodes()[i%80].Host, target)
		best := d.Nodes()[0].ID
		for _, n := range d.Nodes() {
			if Distance(n.ID, target) < Distance(best, target) {
				best = n.ID
			}
		}
		if len(res.Closest) == 0 || res.Closest[0].ID != best {
			t.Fatalf("PNS lookup %d missed global closest", i)
		}
	}
}

func TestLookupSurvivesDeadNodes(t *testing.T) {
	net, d := buildDHT(t, 80, false, 8)
	// Kill 25% of hosts.
	for i, h := range net.Hosts() {
		if i%4 == 0 {
			h.Up = false
		}
	}
	alive := 0
	var from underlay.HostID
	for _, n := range d.Nodes() {
		if n.host.Up {
			from = n.Host
			alive++
		}
	}
	if alive == 0 {
		t.Skip("all dead")
	}
	res := d.Lookup(from, NodeID(0xabcdef))
	if len(res.Closest) == 0 {
		t.Fatal("lookup returned nothing amid churn")
	}
}

func TestAddNodePanicsOnDuplicateHost(t *testing.T) {
	net, d := buildDHT(t, 10, false, 9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.AddNode(net.Hosts()[0])
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil, nil, Config{K: 0, Alpha: 1}, nil)
}

func TestDeterministicLookups(t *testing.T) {
	run := func() string {
		_, d := buildDHT(t, 60, true, 10)
		var out string
		for i := 0; i < 10; i++ {
			res := d.Lookup(d.Nodes()[i].Host, NodeID(uint64(i)*0x9e3779b97f4a7c15))
			out += fmt.Sprintf("%x:%d:%d;", res.Closest[0].ID, res.Hops, res.Msgs)
		}
		return out
	}
	if run() != run() {
		t.Fatal("lookups not deterministic")
	}
}

// Property: closest() returns contacts sorted by XOR distance.
func TestQuickClosestSorted(t *testing.T) {
	_, d := buildDHT(t, 50, false, 11)
	f := func(targetRaw uint64, nodeIdx uint8) bool {
		n := d.Nodes()[int(nodeIdx)%len(d.Nodes())]
		target := NodeID(targetRaw)
		cs := n.closest(target, d.Cfg.K)
		dists := make([]uint64, len(cs))
		for i, c := range cs {
			dists[i] = Distance(c.ID, target)
		}
		return sort.SliceIsSorted(dists, func(i, j int) bool { return dists[i] < dists[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPutOverwritesValue(t *testing.T) {
	_, d := buildDHT(t, 40, false, 20)
	key := NodeID(0x1234)
	d.Put(d.Nodes()[0].Host, key, []byte("v1"))
	d.Put(d.Nodes()[1].Host, key, []byte("v2"))
	res := d.Get(d.Nodes()[20].Host, key)
	if !res.Found || string(res.Value) != "v2" {
		t.Fatalf("get after overwrite = %q found=%v", res.Value, res.Found)
	}
}

func TestLookupFromUnknownHost(t *testing.T) {
	_, d := buildDHT(t, 10, false, 21)
	res := d.Lookup(underlay.HostID(9999), NodeID(1))
	if len(res.Closest) != 0 || res.Hops != 0 {
		t.Fatalf("unknown-host lookup returned %+v", res)
	}
}
