package kademlia

import (
	"reflect"
	"testing"

	"unap2p/internal/churn"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// buildCompact wires a small sharded stack: star underlay, peer table,
// partition, kernel, transport, DHT.
func buildCompact(t *testing.T, perAS, K int, seed uint64) (*CompactDHT, *transport.ShardedNet) {
	t.Helper()
	u := underlay.New()
	transit := u.AddAS(underlay.TransitISP, 2)
	for i := 0; i < 4; i++ {
		stub := u.AddAS(underlay.LocalISP, 4)
		u.ConnectTransit(stub, transit, 10)
	}
	u.ComputeRoutes()
	pt := underlay.NewPeerTable(u, 4*perAS)
	for as := 1; as <= 4; as++ {
		for j := 0; j < perAS; j++ {
			pt.AddPeer(as, sim.Duration(2+j%4))
		}
	}
	part := underlay.PartitionASes(u.NumASes(),
		func(as int) int { return pt.PeersPerAS()[int32(as)] }, K)
	window := underlay.MinCrossShardLatency(pt, part)
	if window <= 0 {
		window = 5
	}
	sk := sim.NewSharded(K, window)
	net := transport.NewShardedNet(u, pt, part, sk, []string{"req", "rep"})
	cfg := DefaultCompactConfig()
	cfg.Buckets = 16
	d := NewCompact(net, cfg, seed, 0, 1)
	d.Seed(seed^0x5eed, 20, 4)
	return d, net
}

func TestCompactIDsUniqueDeterministic(t *testing.T) {
	d1, _ := buildCompact(t, 32, 1, 9)
	d2, _ := buildCompact(t, 32, 2, 9)
	seen := map[NodeID]bool{}
	for p := 0; p < 128; p++ {
		id := d1.ID(underlay.PeerID(p))
		if seen[id] {
			t.Fatalf("duplicate id %x", id)
		}
		seen[id] = true
		if id != d2.ID(underlay.PeerID(p)) {
			t.Fatal("ids depend on shard count")
		}
	}
}

func TestCompactClosestGlobalExact(t *testing.T) {
	d, _ := buildCompact(t, 16, 1, 3)
	// Brute force ground truth for a spread of targets.
	for i := 0; i < 200; i++ {
		target := NodeID(mix64(uint64(i) ^ 0xfeed))
		var best NodeID
		bd := ^uint64(0)
		for p := range d.ids {
			if dd := Distance(d.ids[p], target); dd < bd {
				best, bd = d.ids[p], dd
			}
		}
		if got := d.ClosestGlobal(target); got != best {
			t.Fatalf("target %x: ClosestGlobal %x, brute force %x", target, got, best)
		}
	}
}

// TestCompactLookupConverges runs self-lookups from every peer on a
// static (no churn) network and expects near-perfect exact results.
func TestCompactLookupConverges(t *testing.T) {
	d, net := buildCompact(t, 32, 2, 11)
	pt := net.Peers()
	for p := 0; p < pt.Len(); p++ {
		p := underlay.PeerID(p)
		target := NodeID(mix64(uint64(p) ^ 0xabcd))
		net.Kernel().Shard(net.ShardOf(p)).Schedule(sim.Duration(p)/16, func() {
			d.Lookup(p, target, nil)
		})
	}
	net.Kernel().Drain()
	st := d.Stats()
	if st.Done != uint64(pt.Len()) {
		t.Fatalf("completed %d of %d lookups", st.Done, pt.Len())
	}
	if rate := st.SuccessRate(); rate < 0.95 {
		t.Fatalf("success rate %.3f < 0.95 on a static network", rate)
	}
	if st.MeanHops() <= 0 {
		t.Fatal("no hops recorded")
	}
	if net.Stats().Msgs == 0 {
		t.Fatal("no transport traffic recorded")
	}
}

// TestCompactLookupDeterministicPerK pins that two identical runs (same
// seed, same K) produce identical lookup stats and traffic totals.
func TestCompactLookupDeterministicPerK(t *testing.T) {
	run := func() (CompactStats, transport.NetStats, sim.Time) {
		d, net := buildCompact(t, 24, 4, 21)
		pt := net.Peers()
		drv := &churn.ShardDriver{
			Seed: 77, Table: pt, Part: net.Partition(), Sk: net.Kernel(),
			MeanOn: 400, MeanOff: 150,
			Churns: func(p underlay.PeerID) bool { return p%5 == 0 },
		}
		drv.Start()
		for p := 0; p < pt.Len(); p += 3 {
			p := underlay.PeerID(p)
			target := NodeID(mix64(uint64(p) ^ 0x777))
			net.Kernel().Shard(net.ShardOf(p)).Schedule(sim.Duration(p), func() {
				d.Lookup(p, target, nil)
			})
		}
		end := net.Kernel().Run(2000)
		return d.Stats(), net.Stats(), end
	}
	s1, n1, e1 := run()
	s2, n2, e2 := run()
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(n1, n2) || e1 != e2 {
		t.Fatalf("runs diverge:\n%+v vs %+v\n%+v vs %+v\nend %v vs %v", s1, s2, n1, n2, e1, e2)
	}
	if s1.Done == 0 {
		t.Fatal("no lookups completed under churn")
	}
}

// TestCompactObserveAware checks the Aware replacement policy prefers
// same-AS contacts once a bucket is full.
func TestCompactObserveAware(t *testing.T) {
	base, net := buildCompact(t, 64, 1, 5)
	pt := net.Peers()
	cfgPlain := base.cfg
	cfgAware := base.cfg
	cfgAware.Aware = true
	// Fresh unseeded tables so the comparison sees only this test's
	// observations.
	d := NewCompact(net, cfgPlain, 5, 0, 1)
	da := NewCompact(net, cfgAware, 5, 0, 1)
	// Fill peer 0's buckets from a stream of cross-AS peers, then offer
	// same-AS ones; the aware table must pick some up, the plain one not.
	sameAS := func(dht *CompactDHT) int {
		p0 := underlay.PeerID(0)
		for q := 0; q < pt.Len(); q++ {
			if pt.AS(underlay.PeerID(q)) != pt.AS(p0) {
				dht.Observe(p0, underlay.PeerID(q))
			}
		}
		for q := 0; q < pt.Len(); q++ {
			if pt.AS(underlay.PeerID(q)) == pt.AS(p0) && q != 0 {
				dht.Observe(p0, underlay.PeerID(q))
			}
		}
		cnt := 0
		for b := 0; b < dht.cfg.Buckets; b++ {
			base := b * dht.cfg.K
			for i := 0; i < int(dht.cnt[b]); i++ {
				if pt.AS(underlay.PeerID(dht.rt[base+i])) == pt.AS(p0) {
					cnt++
				}
			}
		}
		return cnt
	}
	plain := sameAS(d)
	aware := sameAS(da)
	if aware <= plain {
		t.Fatalf("aware table holds %d same-AS contacts, plain %d", aware, plain)
	}
}
