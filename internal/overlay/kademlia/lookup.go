package kademlia

import (
	"sort"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// LookupResult summarizes one iterative lookup.
type LookupResult struct {
	// Closest are the K nearest contacts found, nearest first.
	Closest []Contact
	// Hops is the number of lookup rounds.
	Hops int
	// Msgs is the number of RPC messages (requests + responses).
	Msgs int
	// Latency is the wall-clock cost: per round, the α requests run in
	// parallel, so the round costs the slowest RTT of the batch.
	Latency sim.Duration
	// Value is the payload when the lookup was a Get and a holder was
	// found.
	Value []byte
	// Found reports whether a Get located the value.
	Found bool
}

// Lookup performs an iterative FIND_NODE from the given host toward
// target, updating routing tables along the way (every response teaches
// the querier new contacts, and every queried node observes the querier).
func (d *DHT) Lookup(from underlay.HostID, target NodeID) LookupResult {
	return d.lookup(from, target, nil)
}

// Get performs FIND_VALUE: like Lookup but terminates early when a
// traversed node holds key.
func (d *DHT) Get(from underlay.HostID, key Key) LookupResult {
	return d.lookup(from, key, &key)
}

func (d *DHT) lookup(from underlay.HostID, target NodeID, valueKey *Key) LookupResult {
	origin := d.nodes[from]
	if origin == nil {
		return LookupResult{}
	}
	kind := "find_node"
	if valueKey != nil {
		kind = "find_value"
	}

	var res LookupResult
	queried := map[NodeID]bool{origin.ID: true}

	type cand struct {
		c Contact
		d uint64
	}
	var shortlist []cand
	addCand := func(c Contact) {
		for _, have := range shortlist {
			if have.c.ID == c.ID {
				return
			}
		}
		shortlist = append(shortlist, cand{c: c, d: Distance(c.ID, target)})
	}
	for _, c := range origin.closest(target, d.Cfg.K) {
		addCand(c)
	}

	sortShort := func() {
		sort.Slice(shortlist, func(i, j int) bool {
			if shortlist[i].d != shortlist[j].d {
				return shortlist[i].d < shortlist[j].d
			}
			return shortlist[i].c.ID < shortlist[j].c.ID
		})
	}
	topContacts := func() []Contact {
		out := make([]Contact, 0, d.Cfg.K)
		for i := 0; i < len(shortlist) && i < d.Cfg.K; i++ {
			out = append(out, shortlist[i].c)
		}
		return out
	}

	for {
		sortShort()
		// Pick up to α unqueried candidates among the K best.
		var batch []Contact
		limit := len(shortlist)
		if limit > d.Cfg.K {
			limit = d.Cfg.K
		}
		for i := 0; i < limit && len(batch) < d.Cfg.Alpha; i++ {
			if !queried[shortlist[i].c.ID] {
				batch = append(batch, shortlist[i].c)
			}
		}
		if len(batch) == 0 {
			break
		}
		res.Hops++
		var roundLatency sim.Duration
		for _, c := range batch {
			queried[c.ID] = true
			peer := d.byID[c.ID]
			if peer == nil || !peer.host.Up {
				continue // dead contact: RPC times out, contributes nothing
			}
			// Request and response through the transport (which counts
			// both messages, charges the underlay, and records the
			// AS-pair traffic).
			rt := d.T.RoundTrip(origin.host, peer.host,
				d.Cfg.RPCBytes, d.Cfg.RPCBytes, kind, "response")
			res.Msgs += 2
			if !rt.OK {
				continue // RPC lost: times out, contributes nothing
			}
			if rt.Latency > roundLatency {
				roundLatency = rt.Latency
			}
			// The queried node learns about the querier; the querier
			// learns the peer's K closest to the target.
			peer.observe(origin.Contact)
			if valueKey != nil {
				if v, ok := peer.store[*valueKey]; ok {
					res.Latency += roundLatency
					res.Value = v
					res.Found = true
					sortShort()
					res.Closest = topContacts()
					return res
				}
			}
			for _, learned := range peer.closest(target, d.Cfg.K) {
				origin.observe(learned)
				addCand(learned)
			}
		}
		res.Latency += roundLatency
	}

	sortShort()
	res.Closest = topContacts()
	return res
}

// Put stores value under key on the K closest nodes found by a lookup
// from the given host, counting one STORE RPC per replica.
func (d *DHT) Put(from underlay.HostID, key Key, value []byte) LookupResult {
	res := d.Lookup(from, key)
	origin := d.nodes[from]
	for _, c := range res.Closest {
		peer := d.byID[c.ID]
		if peer == nil || !peer.host.Up {
			continue
		}
		sr := d.T.Send(origin.host, peer.host, d.Cfg.RPCBytes+uint64(len(value)), "store")
		res.Msgs++
		if !sr.OK {
			continue // STORE lost: this replica is not written
		}
		peer.store[key] = value
	}
	// The origin may itself be among the K closest.
	if origin != nil && withinKClosest(d, key, origin.ID) {
		origin.store[key] = value
	}
	return res
}

// withinKClosest reports whether id is among the true K closest node IDs
// to key (global knowledge used only for the origin's self-store check).
func withinKClosest(d *DHT, key Key, id NodeID) bool {
	type nd struct {
		id NodeID
		d  uint64
	}
	all := make([]nd, 0, len(d.sorted))
	for _, n := range d.sorted {
		all = append(all, nd{id: n.ID, d: Distance(n.ID, key)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	for i := 0; i < len(all) && i < d.Cfg.K; i++ {
		if all[i].id == id {
			return true
		}
	}
	return false
}
