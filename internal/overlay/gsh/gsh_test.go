package gsh

import (
	"testing"
	"testing/quick"

	"unap2p/internal/core"
	"unap2p/internal/geo"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

func buildGSH(t *testing.T) (*underlay.Network, *Overlay) {
	t.Helper()
	src := sim.NewSource(1)
	net := topology.Star(6, topology.DefaultConfig())
	topology.PlaceHosts(net, 25, false, 1, 5, src.Stream("place"))
	o := New(transport.Over(net), core.GeoSelector{}, DefaultConfig())
	for _, h := range net.Hosts() {
		o.Join(h)
	}
	return net, o
}

func TestZoneOfHierarchy(t *testing.T) {
	c := geo.Coord{Lat: 45, Lon: 90} // NE quadrant
	if z := zoneOf(c, 1); z != 3 {
		t.Fatalf("level-1 zone = %b, want 11", z)
	}
	if z := zoneOf(c, 0); z != 0 {
		t.Fatalf("level-0 zone = %v, want 0 (world)", z)
	}
	// Prefix property: level-l code is a prefix of level-(l+1).
	for l := 1; l < 6; l++ {
		parent := zoneOf(c, l)
		child := zoneOf(c, l+1)
		if child>>2 != parent {
			t.Fatalf("level %d code %b not prefix of %b", l, parent, child)
		}
	}
}

func TestQuickZonePrefixProperty(t *testing.T) {
	f := func(latRaw, lonRaw uint16, lRaw uint8) bool {
		c := geo.Coord{
			Lat: float64(latRaw)/65535*180 - 90,
			Lon: float64(lonRaw)/65535*360 - 180,
		}
		l := int(lRaw%8) + 1
		return zoneOf(c, l+1)>>2 == zoneOf(c, l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublishLookupRoundTrip(t *testing.T) {
	net, o := buildGSH(t)
	holder := net.Hosts()[3]
	k := HashKey("song.mp3")
	pst := o.Publish(holder, k)
	if pst.Msgs == 0 {
		t.Fatal("publish sent no messages")
	}
	// Lookup from anywhere finds it (worst case via the root).
	for _, req := range []*underlay.Host{net.Hosts()[3], net.Hosts()[50], net.Hosts()[120]} {
		holders, st := o.Lookup(req, k)
		if len(holders) != 1 || holders[0] != holder.ID {
			t.Fatalf("lookup from %d = %v", req.ID, holders)
		}
		if st.Level < 0 {
			t.Fatal("level not reported")
		}
	}
}

func TestLookupMiss(t *testing.T) {
	net, o := buildGSH(t)
	holders, st := o.Lookup(net.Hosts()[0], HashKey("never-published"))
	if holders != nil || st.Level != -1 {
		t.Fatalf("miss returned %v at level %d", holders, st.Level)
	}
}

func TestScopedResolutionStaysLocal(t *testing.T) {
	net, o := buildGSH(t)
	// Two hosts in the same leaf zone: publisher and requester.
	var pub, req *underlay.Host
	for _, a := range net.Hosts() {
		for _, b := range net.Hosts() {
			if a.ID != b.ID &&
				zoneOf(geo.Coord{Lat: a.Lat, Lon: a.Lon}, o.Cfg.MaxLevel) ==
					zoneOf(geo.Coord{Lat: b.Lat, Lon: b.Lon}, o.Cfg.MaxLevel) {
				pub, req = a, b
				break
			}
		}
		if pub != nil {
			break
		}
	}
	if pub == nil {
		t.Skip("no co-zoned pair in topology")
	}
	k := HashKey("local-item")
	o.Publish(pub, k)
	_, st := o.Lookup(req, k)
	if st.Level != o.Cfg.MaxLevel {
		t.Fatalf("co-zoned lookup resolved at level %d, want leaf level %d",
			st.Level, o.Cfg.MaxLevel)
	}
}

func TestGlobalLookupAlwaysRoot(t *testing.T) {
	net, o := buildGSH(t)
	k := HashKey("item-x")
	o.Publish(net.Hosts()[7], k)
	holders, st := o.GlobalLookup(net.Hosts()[40], k)
	if len(holders) != 1 || st.Level != 0 {
		t.Fatalf("global lookup = %v at level %d", holders, st.Level)
	}
}

func TestNoHotSpotVsGlobal(t *testing.T) {
	net, o := buildGSH(t)
	// Publish one popular item from many holders, then issue many
	// lookups for it from co-located requesters.
	k := HashKey("blockbuster")
	for i := 0; i < 30; i++ {
		o.Publish(net.Hosts()[i*4], k)
	}
	o.ResetLoad()
	for i := 0; i < 200; i++ {
		o.Lookup(net.Hosts()[i%len(net.Hosts())], k)
	}
	maxScoped, meanScoped := o.MaxLoad()
	o.ResetLoad()
	for i := 0; i < 200; i++ {
		o.GlobalLookup(net.Hosts()[i%len(net.Hosts())], k)
	}
	maxGlobal, meanGlobal := o.MaxLoad()
	// Global funnels every request to one node; scoped spreads them.
	if maxScoped >= maxGlobal {
		t.Fatalf("no hot-spot relief: scoped max %d vs global max %d", maxScoped, maxGlobal)
	}
	if meanScoped <= 0 || meanGlobal <= 0 {
		t.Fatal("loads not recorded")
	}
	if float64(maxGlobal) < 10*meanGlobal {
		t.Fatalf("global rendezvous should be a hot spot: max %d mean %.1f", maxGlobal, meanGlobal)
	}
}

func TestPublishDeduplicatesHolder(t *testing.T) {
	net, o := buildGSH(t)
	h := net.Hosts()[0]
	k := HashKey("dup")
	o.Publish(h, k)
	o.Publish(h, k)
	holders, _ := o.Lookup(net.Hosts()[1], k)
	if len(holders) != 1 {
		t.Fatalf("duplicate registration: %v", holders)
	}
}

func TestJoinPanicsOnDuplicate(t *testing.T) {
	net, o := buildGSH(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.Join(net.Hosts()[0])
}

func TestNewValidatesConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(transport.Over(underlay.New()), nil, Config{MaxLevel: 0})
}

func TestRendezvousStability(t *testing.T) {
	net, o := buildGSH(t)
	k := HashKey("stable")
	z := zoneOf(geo.Coord{Lat: net.Hosts()[0].Lat, Lon: net.Hosts()[0].Lon}, 1)
	a, ok1 := o.responsible(1, z, k)
	b, ok2 := o.responsible(1, z, k)
	if !ok1 || !ok2 || a != b {
		t.Fatal("rendezvous not deterministic")
	}
}
