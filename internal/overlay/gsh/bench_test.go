package gsh

import (
	"fmt"
	"testing"

	"unap2p/internal/core"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
)

func benchOverlay(b *testing.B) *Overlay {
	b.Helper()
	src := sim.NewSource(1)
	net := topology.Star(6, topology.DefaultConfig())
	topology.PlaceHosts(net, 40, false, 1, 5, src.Stream("place"))
	o := New(transport.Over(net), core.GeoSelector{}, DefaultConfig())
	for _, h := range net.Hosts() {
		o.Join(h)
	}
	for i, h := range net.Hosts() {
		o.Publish(h, HashKey(fmt.Sprintf("item-%d", i)))
	}
	return o
}

// BenchmarkScopedLookup measures a GSH lookup with zone widening.
func BenchmarkScopedLookup(b *testing.B) {
	o := benchOverlay(b)
	hosts := o.T.Underlay().Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Lookup(hosts[i%len(hosts)], HashKey(fmt.Sprintf("item-%d", (i*7)%len(hosts))))
	}
}

// BenchmarkPublish measures scoped registration across all levels.
func BenchmarkPublish(b *testing.B) {
	o := benchOverlay(b)
	hosts := o.T.Underlay().Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Publish(hosts[i%len(hosts)], HashKey(fmt.Sprintf("bench-%d", i)))
	}
}
