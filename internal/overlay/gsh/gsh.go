// Package gsh implements a Leopard-style locality-aware structured
// overlay (Yu, Lee, Zhang: "Leopard: A locality aware peer-to-peer system
// with no hot spot", NETWORKING 2005 — [33] in the paper): content and
// peer identifiers are produced by Geographically Scoped Hashing, a
// "special hashing function" that combines a location prefix with a
// content hash. Content registers in the publisher's geographic zone and
// its ancestors; queries resolve in the requester's zone first and widen
// scope only on miss — so lookups for nearby content stay local and no
// single global rendezvous node becomes a hot spot.
package gsh

import (
	"fmt"
	"hash/fnv"
	"sort"

	"unap2p/internal/core"
	"unap2p/internal/geo"
	"unap2p/internal/metrics"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// ZoneCode encodes a geographic zone at some level: 2 bits per level
// (quadrant splits of the lat/lon space), most-significant first.
type ZoneCode uint64

// zoneOf computes the zone code of a coordinate at the given level.
func zoneOf(c geo.Coord, level int) ZoneCode {
	minLat, maxLat := -90.0, 90.0
	minLon, maxLon := -180.0, 180.0
	var code ZoneCode
	for l := 0; l < level; l++ {
		code <<= 2
		midLat := (minLat + maxLat) / 2
		midLon := (minLon + maxLon) / 2
		if c.Lat >= midLat {
			code |= 2
			minLat = midLat
		} else {
			maxLat = midLat
		}
		if c.Lon >= midLon {
			code |= 1
			minLon = midLon
		} else {
			maxLon = midLon
		}
	}
	return code
}

// Config tunes the overlay.
type Config struct {
	// MaxLevel is the deepest zone level (2·MaxLevel bits of location
	// prefix); level 0 is the whole world.
	MaxLevel int
	// MsgBytes is the size of one registry/lookup message.
	MsgBytes uint64
}

// DefaultConfig uses 4 levels (up to 256 leaf zones).
func DefaultConfig() Config { return Config{MaxLevel: 4, MsgBytes: 96} }

// Key identifies a content item.
type Key uint64

// HashKey derives a key from a content name.
func HashKey(name string) Key {
	h := fnv.New64a()
	h.Write([]byte(name))
	return Key(h.Sum64())
}

// node is one overlay participant.
type node struct {
	host   *underlay.Host
	suffix uint64 // random-ish hash component of the GSH identifier
	// registry[level] holds key → holders for entries this node is
	// responsible for at that scope.
	registry []map[Key][]underlay.HostID
	// Load counts registry operations served (the hot-spot measure).
	load uint64
}

// Overlay is a GSH instance.
type Overlay struct {
	// T carries every registry/lookup message; GSH needs no other view of
	// the underlay.
	T   transport.Messenger
	Cfg Config
	// Msgs counts "register", "lookup", "response" messages (a view of
	// the transport's per-type counters).
	Msgs *metrics.CounterSet

	nodes map[underlay.HostID]*node
	// members[level][zone] lists member hosts of a zone, sorted for
	// deterministic rendezvous.
	members []map[ZoneCode][]underlay.HostID
	sel     core.Selector
	// suspected and evicted track failure-detector verdicts (see
	// heal.go); nil until the resilience layer delivers one.
	suspected, evicted map[underlay.HostID]bool
}

// New creates an empty overlay sending through tr. The selector's
// Position verb supplies the coordinates GSH hashes into zone prefixes
// (a core.GeoSelector for perfect GPS fixes); a nil selector — or one
// with no position answer — falls back to ground truth.
func New(tr transport.Messenger, sel core.Selector, cfg Config) *Overlay {
	if cfg.MaxLevel < 1 || cfg.MaxLevel > 16 {
		panic("gsh: MaxLevel must be in [1,16]")
	}
	o := &Overlay{
		T:       tr,
		Cfg:     cfg,
		Msgs:    tr.Counters(),
		nodes:   make(map[underlay.HostID]*node),
		members: make([]map[ZoneCode][]underlay.HostID, cfg.MaxLevel+1),
		sel:     sel,
	}
	for l := range o.members {
		o.members[l] = make(map[ZoneCode][]underlay.HostID)
	}
	return o
}

// pos returns h's position as the selector believes it, falling back to
// ground truth when no selector answers.
func (o *Overlay) pos(h *underlay.Host) geo.Coord {
	if o.sel != nil {
		if c, ok := o.sel.Position(h); ok {
			return c
		}
	}
	return geo.Coord{Lat: h.Lat, Lon: h.Lon}
}

// Join registers a host in every zone level containing its position. The
// GSH identifier is (zone prefix, hash of the host id).
func (o *Overlay) Join(h *underlay.Host) {
	if _, dup := o.nodes[h.ID]; dup {
		panic(fmt.Sprintf("gsh: host %d already joined", h.ID))
	}
	hh := fnv.New64a()
	fmt.Fprintf(hh, "gsh-node-%d", h.ID)
	n := &node{
		host:     h,
		suffix:   hh.Sum64(),
		registry: make([]map[Key][]underlay.HostID, o.Cfg.MaxLevel+1),
	}
	for l := range n.registry {
		n.registry[l] = make(map[Key][]underlay.HostID)
	}
	o.nodes[h.ID] = n
	pos := o.pos(h)
	for l := 0; l <= o.Cfg.MaxLevel; l++ {
		z := zoneOf(pos, l)
		ids := append(o.members[l][z], h.ID)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		o.members[l][z] = ids
	}
}

// Size returns the number of joined peers.
func (o *Overlay) Size() int { return len(o.nodes) }

// responsible returns the zone member owning a key at a level via
// rendezvous (highest-random-weight) hashing over member suffixes —
// deterministic and membership-change-local.
func (o *Overlay) responsible(level int, z ZoneCode, k Key) (underlay.HostID, bool) {
	ids := o.members[level][z]
	if len(ids) == 0 {
		return 0, false
	}
	best := ids[0]
	bestW := rendezvousWeight(o.nodes[ids[0]].suffix, uint64(k))
	for _, id := range ids[1:] {
		if w := rendezvousWeight(o.nodes[id].suffix, uint64(k)); w > bestW {
			best, bestW = id, w
		}
	}
	return best, true
}

func rendezvousWeight(suffix, key uint64) uint64 {
	x := suffix ^ key
	// splitmix-style mix for a uniform weight.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PublishStats reports the cost of a Publish.
type PublishStats struct {
	Msgs    int
	Latency sim.Duration
}

// Publish registers holder as a source for key in the holder's zone at
// every level (leaf zone up to the world root) — GSH's scoped
// registration.
func (o *Overlay) Publish(holder *underlay.Host, k Key) PublishStats {
	var st PublishStats
	pos := o.pos(holder)
	for l := o.Cfg.MaxLevel; l >= 0; l-- {
		z := zoneOf(pos, l)
		resp, ok := o.responsible(l, z, k)
		if !ok {
			continue
		}
		rn := o.nodes[resp]
		if resp != holder.ID {
			st.Msgs++
			res := o.T.Send(holder, rn.host, o.Cfg.MsgBytes, "register")
			if !res.OK {
				continue // registration lost at this level (fault injection)
			}
			st.Latency += res.Latency
		}
		rn.load++
		// Deduplicate holders per key.
		hs := rn.registry[l]
		found := false
		for _, have := range hs[k] {
			if have == holder.ID {
				found = true
				break
			}
		}
		if !found {
			hs[k] = append(hs[k], holder.ID)
		}
	}
	return st
}

// LookupStats reports the cost and outcome of a Lookup.
type LookupStats struct {
	// Level is the zone level the answer came from (MaxLevel = own leaf
	// zone, 0 = world root); -1 on miss.
	Level int
	// Msgs and Latency account the probes (request+response per level).
	Msgs    int
	Latency sim.Duration
}

// Lookup resolves key from the requester's position: it asks the
// responsible node of its own leaf zone first and widens scope one level
// at a time — queries for locally available content never leave the
// neighborhood.
func (o *Overlay) Lookup(requester *underlay.Host, k Key) ([]underlay.HostID, LookupStats) {
	st := LookupStats{Level: -1}
	pos := o.pos(requester)
	for l := o.Cfg.MaxLevel; l >= 0; l-- {
		z := zoneOf(pos, l)
		resp, ok := o.responsible(l, z, k)
		if !ok {
			continue
		}
		rn := o.nodes[resp]
		if resp != requester.ID {
			st.Msgs += 2
			res := o.T.RoundTrip(requester, rn.host,
				o.Cfg.MsgBytes, o.Cfg.MsgBytes, "lookup", "response")
			if !res.OK {
				continue // query timed out at this level; widen scope
			}
			st.Latency += res.Latency
		}
		rn.load++
		if holders := rn.registry[l][k]; len(holders) > 0 {
			st.Level = l
			out := append([]underlay.HostID(nil), holders...)
			return out, st
		}
	}
	return nil, st
}

// MaxLoad returns the highest registry load across nodes and the mean —
// the hot-spot metric ("no hot spot" means max stays near the mean).
func (o *Overlay) MaxLoad() (max uint64, mean float64) {
	var sum uint64
	for _, n := range o.nodes {
		sum += n.load
		if n.load > max {
			max = n.load
		}
	}
	if len(o.nodes) > 0 {
		mean = float64(sum) / float64(len(o.nodes))
	}
	return max, mean
}

// GlobalLookup resolves key through the world-root zone only — the plain
// single-rendezvous DHT behaviour GSH is compared against.
func (o *Overlay) GlobalLookup(requester *underlay.Host, k Key) ([]underlay.HostID, LookupStats) {
	st := LookupStats{Level: -1}
	resp, ok := o.responsible(0, 0, k)
	if !ok {
		return nil, st
	}
	rn := o.nodes[resp]
	if resp != requester.ID {
		st.Msgs = 2
		r := o.T.RoundTrip(requester, rn.host,
			o.Cfg.MsgBytes, o.Cfg.MsgBytes, "lookup", "response")
		if !r.OK {
			return nil, st // the single rendezvous timed out
		}
		st.Latency = r.Latency
	}
	rn.load++
	if holders := rn.registry[0][k]; len(holders) > 0 {
		st.Level = 0
		return append([]underlay.HostID(nil), holders...), st
	}
	return nil, st
}

// ResetLoad clears per-node load counters (between experiment phases).
func (o *Overlay) ResetLoad() {
	for _, n := range o.nodes {
		n.load = 0
	}
}

// HealthStats implements the telemetry HealthReporter hook: registry
// load balance across the hierarchy (pure reads, deterministic).
//
//   - peers: joined population
//   - load_max / load_mean: registry load distribution
//   - load_hotspot_ratio: max/mean — 1.0 is perfectly balanced, large
//     values mean a node (typically the top of the hierarchy) is a
//     hot spot
func (o *Overlay) HealthStats() map[string]float64 {
	max, mean := o.MaxLoad()
	out := map[string]float64{
		"peers":     float64(o.Size()),
		"load_max":  float64(max),
		"load_mean": mean,
	}
	if mean > 0 {
		out["load_hotspot_ratio"] = float64(max) / mean
	}
	return out
}
