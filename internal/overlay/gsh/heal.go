package gsh

import (
	"sort"

	"unap2p/internal/resilience"
	"unap2p/internal/underlay"
)

// This file implements the resilience.Healer Suspect/Evict/Replace
// contract for GSH: eviction removes the dead peer from the zone
// membership at every level (shifting rendezvous responsibility to the
// survivors), purges it from holder lists, and lets surviving holders
// re-publish the registry entries that died with it — Leopard's scoped
// registration replayed over the repaired membership, with the
// re-register messages charged to the transport like any other publish.

var _ resilience.Healer = (*Overlay)(nil)

// Suspect records an advisory verdict; membership is untouched until
// eviction because suspicion can be recanted.
func (o *Overlay) Suspect(id underlay.HostID) {
	if o.suspected == nil {
		o.suspected = make(map[underlay.HostID]bool)
	}
	o.suspected[id] = true
}

// Evict removes the dead peer from the hierarchy and re-homes the
// registry entries it was responsible for. Idempotent.
func (o *Overlay) Evict(id underlay.HostID) {
	if o.evicted[id] {
		return
	}
	if o.evicted == nil {
		o.evicted = make(map[underlay.HostID]bool)
	}
	o.evicted[id] = true
	delete(o.suspected, id)
	dead, ok := o.nodes[id]
	if !ok {
		return
	}
	// Membership repair first: rendezvous hashing re-routes every key the
	// dead node owned to a surviving member the moment it leaves the list.
	for l := range o.members {
		for z, ids := range o.members[l] {
			for i, m := range ids {
				if m == id {
					o.members[l][z] = append(ids[:i], ids[i+1:]...)
					break
				}
			}
			if len(o.members[l][z]) == 0 {
				delete(o.members[l], z)
			}
		}
	}
	delete(o.nodes, id)
	// The dead host can no longer serve content: purge it from every
	// surviving holder list (pure filtering, order-independent).
	for _, n := range o.nodes {
		for l := range n.registry {
			for k, hs := range n.registry[l] {
				for i, h := range hs {
					if h == id {
						n.registry[l][k] = append(hs[:i], hs[i+1:]...)
						break
					}
				}
				if len(n.registry[l][k]) == 0 {
					delete(n.registry[l], k)
				}
			}
		}
	}
	// Registry entries stored ON the dead node died with it: surviving
	// live holders re-publish them to the new responsible member. Levels
	// ascending and keys sorted keep the message order deterministic.
	for l := 0; l < len(dead.registry); l++ {
		keys := make([]Key, 0, len(dead.registry[l]))
		for k := range dead.registry[l] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			for _, holder := range dead.registry[l][k] {
				h := o.T.Underlay().Host(holder)
				if !h.Up || o.evicted[holder] {
					continue
				}
				o.reRegister(l, h, k)
			}
		}
	}
}

// reRegister replays one level of a Publish for holder/k against the
// repaired membership (a lost re-register leaves the entry missing at
// that level, like any other faulted publish).
func (o *Overlay) reRegister(level int, holder *underlay.Host, k Key) {
	z := zoneOf(o.pos(holder), level)
	resp, ok := o.responsible(level, z, k)
	if !ok {
		return
	}
	rn := o.nodes[resp]
	if resp != holder.ID {
		if res := o.T.Send(holder, rn.host, o.Cfg.MsgBytes, "register"); !res.OK {
			return
		}
	}
	rn.load++
	for _, have := range rn.registry[level][k] {
		if have == holder.ID {
			return
		}
	}
	rn.registry[level][k] = append(rn.registry[level][k], holder.ID)
}

// Evicted returns the peers evicted so far, sorted.
func (o *Overlay) Evicted() []underlay.HostID {
	out := make([]underlay.HostID, 0, len(o.evicted))
	for id := range o.evicted {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Refs returns every peer referenced by zone membership or a holder
// list (deduped, sorted) — the reference set chaos invariants sweep
// for dead peers.
func (o *Overlay) Refs() []underlay.HostID {
	set := make(map[underlay.HostID]bool)
	for l := range o.members {
		for _, ids := range o.members[l] {
			for _, id := range ids {
				set[id] = true
			}
		}
	}
	for _, n := range o.nodes {
		for l := range n.registry {
			for _, hs := range n.registry[l] {
				for _, id := range hs {
					set[id] = true
				}
			}
		}
	}
	out := make([]underlay.HostID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
