package bittorrent

import (
	"sort"

	"unap2p/internal/resilience"
	"unap2p/internal/underlay"
)

// This file implements the resilience.Healer Suspect/Evict/Replace
// contract for BitTorrent: evicting a peer strips it from every
// neighbor set, then the tracker refills each shrunken set back toward
// PeerSet — same-ISP-first when biased selection is on, so the repaired
// swarm keeps the traffic locality of Bindal et al.

var _ resilience.Healer = (*Swarm)(nil)

// Suspect records an advisory verdict; the peer keeps its connections
// until eviction because suspicion can be recanted (Round already
// skips offline peers).
func (s *Swarm) Suspect(id underlay.HostID) {
	if s.suspected == nil {
		s.suspected = make(map[underlay.HostID]bool)
	}
	s.suspected[id] = true
}

// Evict removes the dead peer from every neighbor set and refills the
// affected peers' sets. Idempotent.
func (s *Swarm) Evict(id underlay.HostID) {
	if s.evicted[id] {
		return
	}
	if s.evicted == nil {
		s.evicted = make(map[underlay.HostID]bool)
	}
	s.evicted[id] = true
	delete(s.suspected, id)
	var victim *Peer
	var affected []*Peer
	for _, p := range s.peers {
		if p.Host.ID == id {
			victim = p
			continue
		}
		for i, q := range p.neighbors {
			if q.Host.ID == id {
				p.neighbors = append(p.neighbors[:i], p.neighbors[i+1:]...)
				affected = append(affected, p)
				break
			}
		}
	}
	if victim != nil {
		victim.neighbors = nil
	}
	// Choke-set refill: peers that lost the neighbor ask the tracker
	// for replacements (join order — the order `affected` was built in
	// — keeps the repair deterministic).
	for _, p := range affected {
		if p.Host.Up && !s.evicted[p.Host.ID] {
			s.refill(p)
		}
	}
}

// refill tops p's neighbor set back up to PeerSet from live, unevicted
// candidates: selector-biased (internal AS first, like AssignNeighbors)
// when a selector is wired, uniformly random otherwise.
func (s *Swarm) refill(p *Peer) {
	connect := func(q *Peer) {
		for _, have := range p.neighbors {
			if have.Host.ID == q.Host.ID {
				return
			}
		}
		p.neighbors = append(p.neighbors, q)
		q.neighbors = append(q.neighbors, p)
	}
	var candidates []*Peer
	for _, q := range s.peers {
		if q == p || !q.Host.Up || s.evicted[q.Host.ID] {
			continue
		}
		candidates = append(candidates, q)
	}
	if s.sel == nil {
		s.shuffle(candidates)
		for _, q := range candidates {
			if len(p.neighbors) >= s.Cfg.PeerSet {
				return
			}
			connect(q)
		}
		return
	}
	var internal, external []*Peer
	for _, q := range candidates {
		if cost, ok := s.sel.Proximity(p.Host, q.Host); ok && cost == 0 {
			internal = append(internal, q)
		} else {
			external = append(external, q)
		}
	}
	s.shuffle(internal)
	s.shuffle(external)
	for _, q := range append(internal, external...) {
		if len(p.neighbors) >= s.Cfg.PeerSet {
			return
		}
		connect(q)
	}
}

// Evicted returns the peers evicted so far, sorted.
func (s *Swarm) Evicted() []underlay.HostID {
	out := make([]underlay.HostID, 0, len(s.evicted))
	for id := range s.evicted {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Refs returns every peer referenced by a neighbor set (deduped,
// sorted) — the reference set chaos invariants sweep for dead peers.
func (s *Swarm) Refs() []underlay.HostID {
	set := make(map[underlay.HostID]bool)
	for _, p := range s.peers {
		for _, q := range p.neighbors {
			set[q.Host.ID] = true
		}
	}
	out := make([]underlay.HostID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeighborCount reports p's current neighbor-set size (introspection
// for the chaos size-bound invariant).
func (p *Peer) NeighborCount() int { return len(p.neighbors) }
