package bittorrent

import (
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
)

// BenchmarkSwarmRound measures one scheduling round of an 84-peer swarm.
func BenchmarkSwarmRound(b *testing.B) {
	src := sim.NewSource(1)
	net := topology.TransitStub(topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 6,
	})
	topology.PlaceHosts(net, 14, false, 1, 5, src.Stream("place"))
	cfg := DefaultConfig()
	s := NewSwarm(transport.Over(net), nil, cfg, src.Stream("swarm"))
	for i, h := range net.Hosts() {
		if i == 0 {
			s.AddSeed(h)
		} else {
			s.AddLeecher(h)
		}
	}
	s.AssignNeighbors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Round()
	}
}

// BenchmarkFullSwarm measures a complete small distribution.
func BenchmarkFullSwarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src := sim.NewSource(2)
		net := topology.TransitStub(topology.TransitStubConfig{
			Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
			Transits: 2, Stubs: 4,
		})
		topology.PlaceHosts(net, 8, false, 1, 5, src.Stream("place"))
		cfg := DefaultConfig()
		cfg.Pieces = 16
		s := NewSwarm(transport.Over(net), nil, cfg, src.Stream("swarm"))
		for j, h := range net.Hosts() {
			if j == 0 {
				s.AddSeed(h)
			} else {
				s.AddLeecher(h)
			}
		}
		s.AssignNeighbors()
		s.Run(10000)
	}
}
