// Package bittorrent implements a BitTorrent-style swarm on the simulated
// underlay: a tracker, piece exchange with rarest-first selection, and
// round-based upload scheduling — plus the biased neighbor selection of
// Bindal et al. ("Improving traffic locality in BitTorrent via biased
// neighbor selection", ICDCS 2006 — [3] in the paper): the tracker hands
// each peer mostly same-ISP neighbors and only k external ones, cutting
// inter-AS traffic while keeping download times close to unbiased.
package bittorrent

import (
	"fmt"
	"math/rand"

	"unap2p/internal/core"
	"unap2p/internal/metrics"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Config tunes the swarm.
type Config struct {
	// Pieces is the number of pieces in the shared file.
	Pieces int
	// PieceSize is bytes per piece.
	PieceSize uint64
	// PeerSet is how many neighbors the tracker returns per announce.
	PeerSet int
	// UploadSlots is how many pieces a peer can upload per round (the
	// unchoked-connections abstraction).
	UploadSlots int
	// External is the number of out-of-AS neighbors a biased peer keeps
	// (Bindal et al. use k = 1; 35-k internal).
	External int
}

// DefaultConfig scales the Bindal et al. setup down for simulation.
func DefaultConfig() Config {
	return Config{
		Pieces:      64,
		PieceSize:   256 << 10,
		PeerSet:     12,
		UploadSlots: 4,
		External:    1,
	}
}

// Peer is one swarm participant.
type Peer struct {
	Host *underlay.Host
	// have[i] reports possession of piece i.
	have []bool
	// remaining counts missing pieces (0 = seed/complete).
	remaining int
	// neighbors is the tracker-assigned peer set.
	neighbors []*Peer
	// CompletedRound records when the peer finished (-1 while leeching).
	CompletedRound int
	// next round-robin cursor over neighbors for fairness.
	cursor int
}

// Complete reports whether the peer holds every piece.
func (p *Peer) Complete() bool { return p.remaining == 0 }

// Has reports possession of a piece.
func (p *Peer) Has(i int) bool { return p.have[i] }

// Swarm is a torrent instance.
type Swarm struct {
	// T carries piece transfers; U serves topology queries.
	T   transport.Messenger
	U   *underlay.Network
	Cfg Config
	// PieceTraffic accounts piece bytes by AS pair, recorded by the
	// transport under the "piece" message type.
	PieceTraffic *metrics.TrafficMatrix
	// Rounds counts scheduling rounds executed.
	Rounds int
	// OnRound, when non-nil, runs after every Run round — a pure
	// observer hook the telemetry probe plane uses to sample per-round
	// swarm health. It must not mutate the swarm.
	OnRound func()

	peers []*Peer
	r     *rand.Rand
	sel   core.Selector
	// suspected and evicted track failure-detector verdicts (see
	// heal.go); nil until the resilience layer delivers one.
	suspected, evicted map[underlay.HostID]bool
}

// NewSwarm creates an empty swarm sending through tr. A non-nil selector
// turns on Bindal-style biased neighbor selection at the tracker: peers
// the selector's Proximity verb puts at cost 0 (same ISP) are preferred,
// with Cfg.External random out-of-ISP links as the connectivity
// safeguard. A nil selector runs the classic random tracker.
func NewSwarm(tr transport.Messenger, sel core.Selector, cfg Config, r *rand.Rand) *Swarm {
	if cfg.Pieces < 1 || cfg.PeerSet < 1 || cfg.UploadSlots < 1 {
		panic("bittorrent: invalid config")
	}
	return &Swarm{T: tr, U: tr.Underlay(), Cfg: cfg, PieceTraffic: tr.MatrixFor("piece"), r: r, sel: sel}
}

// AddSeed joins a host holding the full file.
func (s *Swarm) AddSeed(h *underlay.Host) *Peer {
	p := s.addPeer(h)
	for i := range p.have {
		p.have[i] = true
	}
	p.remaining = 0
	p.CompletedRound = 0
	return p
}

// AddLeecher joins a host with no pieces.
func (s *Swarm) AddLeecher(h *underlay.Host) *Peer { return s.addPeer(h) }

func (s *Swarm) addPeer(h *underlay.Host) *Peer {
	for _, q := range s.peers {
		if q.Host.ID == h.ID {
			panic(fmt.Sprintf("bittorrent: host %d already in swarm", h.ID))
		}
	}
	p := &Peer{
		Host:           h,
		have:           make([]bool, s.Cfg.Pieces),
		remaining:      s.Cfg.Pieces,
		CompletedRound: -1,
	}
	s.peers = append(s.peers, p)
	return p
}

// Peers returns the swarm membership in join order.
func (s *Swarm) Peers() []*Peer { return s.peers }

// AssignNeighbors runs the tracker: every peer receives a peer set —
// uniformly random when unbiased; same-AS-first plus Cfg.External random
// external peers when biased. Connections are symmetric.
func (s *Swarm) AssignNeighbors() {
	adj := make(map[[2]int]bool)
	connect := func(a, b *Peer) {
		ia, ib := int(a.Host.ID), int(b.Host.ID)
		if ia == ib {
			return
		}
		if ia > ib {
			ia, ib = ib, ia
		}
		if adj[[2]int{ia, ib}] {
			return
		}
		adj[[2]int{ia, ib}] = true
		a.neighbors = append(a.neighbors, b)
		b.neighbors = append(b.neighbors, a)
	}
	for _, p := range s.peers {
		if s.sel == nil {
			perm := s.r.Perm(len(s.peers))
			for _, idx := range perm {
				if len(p.neighbors) >= s.Cfg.PeerSet {
					break
				}
				connect(p, s.peers[idx])
			}
			continue
		}
		// Biased: internal (selector proximity cost 0 — same ISP) first.
		var internal, external []*Peer
		for _, q := range s.peers {
			if q == p {
				continue
			}
			if cost, ok := s.sel.Proximity(p.Host, q.Host); ok && cost == 0 {
				internal = append(internal, q)
			} else {
				external = append(external, q)
			}
		}
		s.shuffle(internal)
		s.shuffle(external)
		budget := s.Cfg.PeerSet - s.Cfg.External
		for _, q := range internal {
			if len(p.neighbors) >= budget {
				break
			}
			connect(p, q)
		}
		for i := 0; i < s.Cfg.External && i < len(external); i++ {
			connect(p, external[i])
		}
		// Top up from external if the AS is too small to fill the set.
		for _, q := range external {
			if len(p.neighbors) >= s.Cfg.PeerSet {
				break
			}
			connect(p, q)
		}
	}
}

func (s *Swarm) shuffle(ps []*Peer) {
	s.r.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
}

// Round executes one scheduling round: every peer uploads up to
// UploadSlots pieces to neighbors that need them; receivers pick the
// rarest piece (within their neighborhood) the uploader can provide.
// It returns the number of piece transfers performed.
func (s *Swarm) Round() int {
	s.Rounds++
	type transfer struct {
		from, to *Peer
		piece    int
	}
	var plan []transfer
	// Pieces granted this round are only usable next round (store-and-
	// forward); plan first, apply after.
	for _, up := range s.peers {
		if !up.Host.Up {
			continue
		}
		slots := s.Cfg.UploadSlots
		tried := 0
		for slots > 0 && tried < len(up.neighbors) {
			q := up.neighbors[up.cursor%len(up.neighbors)]
			up.cursor++
			tried++
			if !q.Host.Up || q.Complete() {
				continue
			}
			piece := s.pickRarest(up, q)
			if piece < 0 {
				continue
			}
			plan = append(plan, transfer{from: up, to: q, piece: piece})
			slots--
		}
	}
	for _, t := range plan {
		if t.to.have[t.piece] {
			continue // granted by someone else in the same round
		}
		if sr := s.T.Send(t.from.Host, t.to.Host, s.Cfg.PieceSize, "piece"); !sr.OK {
			continue // piece lost in transit: re-requested a later round
		}
		t.to.have[t.piece] = true
		t.to.remaining--
		if t.to.remaining == 0 {
			t.to.CompletedRound = s.Rounds
		}
	}
	return len(plan)
}

// pickRarest returns the rarest piece (in q's neighborhood) that up has
// and q lacks, or -1. Ties break on the lowest index for determinism.
func (s *Swarm) pickRarest(up, q *Peer) int {
	freq := make([]int, s.Cfg.Pieces)
	for _, nb := range q.neighbors {
		for i, h := range nb.have {
			if h {
				freq[i]++
			}
		}
	}
	best, bestFreq := -1, 1<<30
	for i := 0; i < s.Cfg.Pieces; i++ {
		if up.have[i] && !q.have[i] && freq[i] < bestFreq {
			best, bestFreq = i, freq[i]
		}
	}
	return best
}

// Run rounds until every online peer completes or maxRounds elapses; it
// returns the number of rounds used.
func (s *Swarm) Run(maxRounds int) int {
	for r := 0; r < maxRounds; r++ {
		done := true
		for _, p := range s.peers {
			if p.Host.Up && !p.Complete() {
				done = false
				break
			}
		}
		if done {
			return s.Rounds
		}
		s.Round()
		if s.OnRound != nil {
			s.OnRound()
		}
	}
	return s.Rounds
}

// Stats summarizes a finished swarm.
type Stats struct {
	// MeanCompletionRound averages leecher finish times.
	MeanCompletionRound float64
	// MaxCompletionRound is the slowest leecher.
	MaxCompletionRound int
	// Unfinished counts peers that never completed.
	Unfinished int
	// IntraASFraction is the share of piece bytes that stayed in-AS.
	IntraASFraction float64
	// InterASBytes is the absolute cross-ISP volume — the number the ISP
	// pays for.
	InterASBytes uint64
}

// Stats computes summary statistics.
func (s *Swarm) Stats() Stats {
	var st Stats
	var sum, n float64
	for _, p := range s.peers {
		if p.CompletedRound < 0 {
			st.Unfinished++
			continue
		}
		if p.CompletedRound == 0 {
			continue // seeds
		}
		sum += float64(p.CompletedRound)
		n++
		if p.CompletedRound > st.MaxCompletionRound {
			st.MaxCompletionRound = p.CompletedRound
		}
	}
	if n > 0 {
		st.MeanCompletionRound = sum / n
	}
	st.IntraASFraction = s.PieceTraffic.IntraFraction()
	st.InterASBytes = s.PieceTraffic.Inter()
	return st
}

// NeighborASMix returns, for diagnostics, the fraction of neighbor links
// that are intra-AS.
func (s *Swarm) NeighborASMix() float64 {
	intra, total := 0, 0
	for _, p := range s.peers {
		for _, q := range p.neighbors {
			total++
			if p.Host.AS.ID == q.Host.AS.ID {
				intra++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(intra) / float64(total)
}

// HealthStats implements the telemetry HealthReporter hook: swarm
// progress and locality gauges sampled per round by the probe plane
// (pure reads over the peer slice, deterministic).
//
//   - peers: swarm size
//   - completion_mean: mean fraction of pieces held across peers — the
//     download-progress curve
//   - complete_fraction: share of peers holding every piece
//   - rounds: upload rounds driven so far
//   - intra_as_neighbor_fraction: locality of the tracker-assigned
//     neighbor sets (NeighborASMix)
func (s *Swarm) HealthStats() map[string]float64 {
	var done, frac float64
	for _, p := range s.peers {
		frac += float64(s.Cfg.Pieces-p.remaining) / float64(s.Cfg.Pieces)
		if p.remaining == 0 {
			done++
		}
	}
	out := map[string]float64{
		"peers":                      float64(len(s.peers)),
		"rounds":                     float64(s.Rounds),
		"intra_as_neighbor_fraction": s.NeighborASMix(),
	}
	if len(s.peers) > 0 {
		out["completion_mean"] = frac / float64(len(s.peers))
		out["complete_fraction"] = done / float64(len(s.peers))
	}
	return out
}
