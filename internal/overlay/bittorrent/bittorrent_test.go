package bittorrent

import (
	"testing"

	"unap2p/internal/core"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// buildSwarm: 6 stub ASes, hostsPerAS hosts each, one seed in AS of
// host 0, rest leechers. biased installs an AS-hop selector at the
// tracker (Bindal-style biased neighbor selection).
func buildSwarm(t *testing.T, hostsPerAS int, biased bool, cfg Config, seed int64) (*underlay.Network, *Swarm) {
	t.Helper()
	src := sim.NewSource(seed)
	tcfg := topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2,
		Stubs:    6,
	}
	net := topology.TransitStub(tcfg)
	topology.PlaceHosts(net, hostsPerAS, false, 1, 5, src.Stream("place"))
	var sel core.Selector
	if biased {
		sel = core.ASHopSelector(net)
	}
	s := NewSwarm(transport.Over(net), sel, cfg, src.Stream("swarm"))
	for i, h := range net.Hosts() {
		if i == 0 {
			s.AddSeed(h)
		} else {
			s.AddLeecher(h)
		}
	}
	s.AssignNeighbors()
	return net, s
}

func TestSeedAndLeecherState(t *testing.T) {
	_, s := buildSwarm(t, 5, false, DefaultConfig(), 1)
	seed := s.Peers()[0]
	if !seed.Complete() || seed.CompletedRound != 0 {
		t.Fatal("seed not complete")
	}
	leecher := s.Peers()[1]
	if leecher.Complete() || leecher.CompletedRound != -1 {
		t.Fatal("leecher should start empty")
	}
	if leecher.Has(0) {
		t.Fatal("leecher has piece 0")
	}
}

func TestSwarmCompletes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pieces = 32
	_, s := buildSwarm(t, 5, false, cfg, 2)
	rounds := s.Run(10000)
	st := s.Stats()
	if st.Unfinished != 0 {
		t.Fatalf("%d peers unfinished after %d rounds", st.Unfinished, rounds)
	}
	if st.MeanCompletionRound <= 0 || st.MaxCompletionRound < int(st.MeanCompletionRound) {
		t.Fatalf("implausible stats %+v", st)
	}
	// Conservation: every leecher downloaded exactly Pieces pieces.
	wantBytes := uint64(len(s.Peers())-1) * uint64(cfg.Pieces) * cfg.PieceSize
	if s.PieceTraffic.Total() != wantBytes {
		t.Fatalf("piece traffic %d, want %d", s.PieceTraffic.Total(), wantBytes)
	}
}

func TestBiasedTrackerRaisesNeighborLocality(t *testing.T) {
	// ASes large enough (15 hosts) that the internal budget (PeerSet −
	// External = 11) can actually be met.
	cfgU := DefaultConfig()
	_, su := buildSwarm(t, 15, false, cfgU, 3)
	cfgB := DefaultConfig()
	_, sb := buildSwarm(t, 15, true, cfgB, 3)
	mu, mb := su.NeighborASMix(), sb.NeighborASMix()
	if mb <= mu {
		t.Fatalf("biased neighbor locality %.3f not above unbiased %.3f", mb, mu)
	}
	if mb < 0.6 {
		t.Fatalf("biased locality %.3f too low", mb)
	}
}

// TestBindalShape reproduces the headline claim of Bindal et al.: biased
// neighbor selection slashes inter-AS piece traffic while download times
// stay comparable (within 2× here; the paper reports near-parity).
func TestBindalShape(t *testing.T) {
	run := func(biased bool) Stats {
		cfg := DefaultConfig()
		cfg.Pieces = 32
		_, s := buildSwarm(t, 6, biased, cfg, 4)
		s.Run(10000)
		return s.Stats()
	}
	u, b := run(false), run(true)
	if u.Unfinished != 0 || b.Unfinished != 0 {
		t.Fatalf("unfinished peers: %d/%d", u.Unfinished, b.Unfinished)
	}
	if b.InterASBytes >= u.InterASBytes {
		t.Fatalf("biased inter-AS bytes %d not below unbiased %d", b.InterASBytes, u.InterASBytes)
	}
	if b.IntraASFraction <= u.IntraASFraction {
		t.Fatal("biased intra-AS fraction should rise")
	}
	if b.MeanCompletionRound > 2*u.MeanCompletionRound {
		t.Fatalf("biased completion %.1f much slower than unbiased %.1f",
			b.MeanCompletionRound, u.MeanCompletionRound)
	}
}

func TestPeerSetSizeRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PeerSet = 6
	_, s := buildSwarm(t, 5, false, cfg, 5)
	for _, p := range s.Peers() {
		// Symmetric connections can push a peer modestly above its own
		// budget (it accepts inbound), but the graph stays bounded.
		if len(p.neighbors) > 4*cfg.PeerSet {
			t.Fatalf("peer %d has %d neighbors", p.Host.ID, len(p.neighbors))
		}
		if len(p.neighbors) == 0 {
			t.Fatalf("peer %d isolated", p.Host.ID)
		}
	}
}

func TestRarestFirstSpreadsPieces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pieces = 16
	_, s := buildSwarm(t, 4, false, cfg, 6)
	// After a few rounds, distinct pieces should be in flight, not just
	// piece 0 (rarest-first de-correlates).
	for i := 0; i < 6; i++ {
		s.Round()
	}
	distinct := map[int]bool{}
	for _, p := range s.Peers()[1:] {
		for i := range p.have {
			if p.have[i] {
				distinct[i] = true
			}
		}
	}
	if len(distinct) < 4 {
		t.Fatalf("only %d distinct pieces circulating", len(distinct))
	}
}

func TestOfflinePeersSkipped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pieces = 16
	net, s := buildSwarm(t, 4, false, cfg, 7)
	// Kill a third of the leechers.
	for i, h := range net.Hosts() {
		if i > 0 && i%3 == 0 {
			h.Up = false
		}
	}
	s.Run(10000)
	for _, p := range s.Peers() {
		if !p.Host.Up && p.Complete() {
			t.Fatal("offline peer completed")
		}
		if p.Host.Up && !p.Complete() {
			t.Fatal("online peer starved by offline ones")
		}
	}
}

func TestDeterministicSwarm(t *testing.T) {
	run := func() (float64, uint64) {
		cfg := DefaultConfig()
		cfg.Pieces = 24
		_, s := buildSwarm(t, 5, true, cfg, 8)
		s.Run(10000)
		st := s.Stats()
		return st.MeanCompletionRound, st.InterASBytes
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Fatalf("swarm runs diverged: (%v,%d) vs (%v,%d)", m1, b1, m2, b2)
	}
}

func TestAddPeerPanicsOnDuplicate(t *testing.T) {
	net, s := buildSwarm(t, 4, false, DefaultConfig(), 9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AddLeecher(net.Hosts()[0])
}

func TestNewSwarmPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSwarm(nil, nil, Config{}, nil)
}
