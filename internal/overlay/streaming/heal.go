package streaming

import (
	"sort"

	"unap2p/internal/resilience"
	"unap2p/internal/underlay"
)

// This file implements the resilience.Healer Suspect/Evict/Replace
// contract for the streaming mesh: evicting a parent strips it from
// every child's parent set and re-attaches each orphaned child to a
// replacement drawn with the same capacity-weighted policy
// AssignParents uses — so repairs preserve the bandwidth-aware shape
// of the mesh. Eviction of the source is recorded but not repaired:
// a live stream has no substitute origin.

var _ resilience.Healer = (*Mesh)(nil)

// Suspect records an advisory verdict; the mesh is untouched until
// eviction because suspicion can be recanted (Tick already skips
// offline parents).
func (m *Mesh) Suspect(id underlay.HostID) {
	if m.suspected == nil {
		m.suspected = make(map[underlay.HostID]bool)
	}
	m.suspected[id] = true
}

// Evict removes the dead peer as a parent everywhere and re-attaches
// the orphaned children. Idempotent.
func (m *Mesh) Evict(id underlay.HostID) {
	if m.evicted[id] {
		return
	}
	if m.evicted == nil {
		m.evicted = make(map[underlay.HostID]bool)
	}
	m.evicted[id] = true
	delete(m.suspected, id)
	var orphans []*Peer
	for _, p := range m.peers {
		for i, parent := range p.parents {
			if parent.Host.ID == id {
				p.parents = append(p.parents[:i], p.parents[i+1:]...)
				orphans = append(orphans, p)
				break
			}
		}
	}
	if m.source.Host.ID == id {
		return // no substitute origin: children keep remaining parents only
	}
	// Parent re-attach in join order (the order orphans was built in)
	// keeps the RNG draw sequence deterministic.
	for _, p := range orphans {
		if p.Host.Up && !m.evicted[p.Host.ID] {
			m.reattach(p)
		}
	}
}

// reattach tops p's parent set back up to Cfg.Parents from live,
// unevicted candidates, capacity-weighted exactly like AssignParents.
func (m *Mesh) reattach(p *Peer) {
	seen := map[underlay.HostID]bool{p.Host.ID: true}
	for _, parent := range p.parents {
		seen[parent.Host.ID] = true
	}
	var candidates []*Peer
	var weights []float64
	var total float64
	for _, c := range append([]*Peer{m.source}, m.peers...) {
		if seen[c.Host.ID] || !c.Host.Up || m.evicted[c.Host.ID] {
			continue
		}
		w := 1.0
		if kbps, ok := m.sel.Weight(c.Host); ok {
			w = kbps / m.Cfg.BitrateKbps
			if c.isSource {
				w = 2
			}
		}
		candidates = append(candidates, c)
		weights = append(weights, w)
		total += w
	}
	for tries := 0; len(p.parents) < m.Cfg.Parents && tries < 200 && len(candidates) > 0; tries++ {
		x := m.r.Float64() * total
		pick := len(candidates) - 1
		for i, w := range weights {
			x -= w
			if x <= 0 {
				pick = i
				break
			}
		}
		c := candidates[pick]
		if seen[c.Host.ID] {
			continue
		}
		seen[c.Host.ID] = true
		p.parents = append(p.parents, c)
	}
}

// Evicted returns the peers evicted so far, sorted.
func (m *Mesh) Evicted() []underlay.HostID {
	out := make([]underlay.HostID, 0, len(m.evicted))
	for id := range m.evicted {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Refs returns every peer referenced as a parent (deduped, sorted) —
// the reference set chaos invariants sweep for dead peers.
func (m *Mesh) Refs() []underlay.HostID {
	set := make(map[underlay.HostID]bool)
	for _, p := range m.peers {
		for _, parent := range p.parents {
			set[parent.Host.ID] = true
		}
	}
	out := make([]underlay.HostID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParentCount reports p's current parent-set size (introspection for
// the chaos size-bound invariant).
func (p *Peer) ParentCount() int { return len(p.parents) }
