// Package streaming implements a mesh-pull P2P live-streaming overlay
// with the bandwidth-aware scheduling of da Silva, Leonardi, Mellia and
// Meo ("A bandwidth-aware scheduling strategy for P2P-TV systems", IEEE
// P2P 2008 — [6] in the paper, Table 1's peer-resources row): a source
// emits a chunk per tick; peers pull missing chunks from mesh neighbors
// before their playout deadline; choosing *high-upload* parents (peer-
// resources awareness) raises playback continuity over random meshes.
package streaming

import (
	"fmt"
	"math/rand"

	"unap2p/internal/core"
	"unap2p/internal/metrics"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Config tunes the stream.
type Config struct {
	// BitrateKbps is the stream rate; a peer's chunk-per-tick upload
	// budget is UpKbps/BitrateKbps (one tick carries one chunk).
	BitrateKbps float64
	// ChunkBytes is the size of one chunk on the wire.
	ChunkBytes uint64
	// Window is how many chunks ahead of the playhead a peer will pull.
	Window int
	// StartupDelay is the playout offset in ticks: at tick t every peer
	// must play chunk t−StartupDelay.
	StartupDelay int
	// Parents is the number of mesh parents per peer.
	Parents int
	// SourceFanout guarantees the source directly parents this many
	// viewers; without it the whole stream can bottleneck through a
	// single lucky child.
	SourceFanout int
}

// DefaultConfig streams at 400 kbps with a 10-chunk window.
func DefaultConfig() Config {
	return Config{
		BitrateKbps:  400,
		ChunkBytes:   50 << 10,
		Window:       10,
		StartupDelay: 12,
		Parents:      4,
		SourceFanout: 6,
	}
}

// Peer is one viewer.
type Peer struct {
	Host *underlay.Host
	// have marks received chunks.
	have map[int]bool
	// parents are the neighbors this peer pulls from.
	parents []*Peer
	// budget accumulates fractional upload capacity across ticks.
	budget float64
	// upPerTick is the chunks/tick this peer can upload.
	upPerTick float64
	// Played and Missed count playout outcomes.
	Played, Missed int
	isSource       bool
}

// Has reports chunk possession.
func (p *Peer) Has(chunk int) bool { return p.isSource || p.have[chunk] }

// Mesh is a streaming session.
type Mesh struct {
	// T carries chunk transfers; U serves topology queries.
	T   transport.Messenger
	U   *underlay.Network
	Cfg Config
	// ChunkTraffic accounts chunk bytes by AS pair, recorded by the
	// transport under the "chunk" message type.
	ChunkTraffic *metrics.TrafficMatrix

	source *Peer
	peers  []*Peer
	tick   int
	r      *rand.Rand
	sel    core.Selector
	// suspected and evicted track failure-detector verdicts (see
	// heal.go); nil until the resilience layer delivers one.
	suspected, evicted map[underlay.HostID]bool
}

// NewMesh creates a session rooted at the source host, sending through
// tr. The selector supplies peer upload capacities via its Bandwidth
// verb (required — a core.ResourceSelector over the resource table);
// when its Weight verb answers, parent assignment becomes bandwidth-
// aware (capacity-weighted instead of uniform — ResourceSelector with
// WeightParents set).
func NewMesh(tr transport.Messenger, sel core.Selector, source *underlay.Host,
	cfg Config, r *rand.Rand) *Mesh {
	if cfg.Parents < 1 || cfg.Window < 1 || cfg.BitrateKbps <= 0 {
		panic("streaming: invalid config")
	}
	if sel == nil {
		panic("streaming: selector required for peer capacities")
	}
	m := &Mesh{
		T: tr, U: tr.Underlay(), Cfg: cfg,
		ChunkTraffic: tr.MatrixFor("chunk"),
		r:            r,
		sel:          sel,
	}
	m.source = &Peer{Host: source, have: map[int]bool{}, isSource: true, upPerTick: 1e9}
	return m
}

// AddViewer joins a host as a viewer.
func (m *Mesh) AddViewer(h *underlay.Host) *Peer {
	if h.ID == m.source.Host.ID {
		panic("streaming: source cannot also view")
	}
	for _, p := range m.peers {
		if p.Host.ID == h.ID {
			panic(fmt.Sprintf("streaming: host %d already viewing", h.ID))
		}
	}
	up, _ := m.sel.Bandwidth(h)
	p := &Peer{
		Host:      h,
		have:      map[int]bool{},
		upPerTick: up / m.Cfg.BitrateKbps,
	}
	m.peers = append(m.peers, p)
	return p
}

// Peers returns the viewers in join order.
func (m *Mesh) Peers() []*Peer { return m.peers }

// AssignParents wires the mesh: every viewer gets Cfg.Parents parents
// from {source} ∪ viewers. When the selector's Weight verb declines,
// picks are uniform; when it answers, picks are capacity-weighted
// (high-upload peers parent many children — the bandwidth-aware strategy).
func (m *Mesh) AssignParents() {
	candidates := append([]*Peer{m.source}, m.peers...)
	weights := make([]float64, len(candidates))
	var total float64
	for i, c := range candidates {
		w := 1.0
		if kbps, ok := m.sel.Weight(c.Host); ok {
			w = kbps / m.Cfg.BitrateKbps
			if c.isSource {
				w = 2 // the source is one peer, not infinite capacity
			}
		}
		weights[i] = w
		total += w
	}
	pickWeighted := func() *Peer {
		x := m.r.Float64() * total
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return candidates[i]
			}
		}
		return candidates[len(candidates)-1]
	}
	for _, p := range m.peers {
		seen := map[underlay.HostID]bool{p.Host.ID: true}
		for tries := 0; len(p.parents) < m.Cfg.Parents && tries < 200; tries++ {
			c := pickWeighted()
			if seen[c.Host.ID] {
				continue
			}
			seen[c.Host.ID] = true
			p.parents = append(p.parents, c)
		}
	}
	// Guaranteed source fan-out: the first SourceFanout viewers (spread
	// by a shuffle) get the source as an extra parent unless they have
	// it already.
	fan := m.Cfg.SourceFanout
	if fan > len(m.peers) {
		fan = len(m.peers)
	}
	order := m.r.Perm(len(m.peers))
	for _, idx := range order {
		if fan == 0 {
			break
		}
		p := m.peers[idx]
		hasSource := false
		for _, par := range p.parents {
			if par.isSource {
				hasSource = true
				break
			}
		}
		if !hasSource {
			p.parents = append(p.parents, m.source)
		}
		fan--
	}
}

// Tick advances the stream one chunk: the source originates chunk
// m.tick, every peer pulls its most urgent missing chunks from parents
// that have them (parents serve within their upload budgets), and every
// peer whose playout deadline passed scores the chunk played or missed.
func (m *Mesh) Tick() {
	chunk := m.tick
	m.source.have[chunk] = true
	// Refill budgets.
	m.source.budget = 1e9
	for _, p := range m.peers {
		p.budget += p.upPerTick
		if p.budget > 4*p.upPerTick+1 {
			p.budget = 4*p.upPerTick + 1 // cap hoarding
		}
	}
	// Pull phase: peers in deterministic order request their most urgent
	// window chunks. A request succeeds if some parent has the chunk and
	// upload budget left.
	playhead := m.tick - m.Cfg.StartupDelay
	for _, p := range m.peers {
		if !p.Host.Up {
			continue
		}
		low := playhead
		if low < 0 {
			low = 0
		}
		for c := low; c <= chunk && c < low+m.Cfg.Window; c++ {
			if p.have[c] {
				continue
			}
			for _, parent := range p.parents {
				if !parent.Host.Up || !parent.Has(c) || parent.budget < 1 {
					continue
				}
				parent.budget--
				// The parent's budget is spent even when the chunk is
				// lost; the peer retries the chunk next tick.
				if sr := m.T.Send(parent.Host, p.Host, m.Cfg.ChunkBytes, "chunk"); sr.OK {
					p.have[c] = true
				}
				break
			}
		}
	}
	// Playout phase.
	if playhead >= 0 {
		for _, p := range m.peers {
			if !p.Host.Up {
				continue
			}
			if p.have[playhead] {
				p.Played++
				delete(p.have, playhead) // played chunks leave the buffer
			} else {
				p.Missed++
			}
		}
	}
	m.tick++
}

// Run advances the stream n ticks.
func (m *Mesh) Run(n int) {
	for i := 0; i < n; i++ {
		m.Tick()
	}
}

// Continuity returns the fraction of playout deadlines met across all
// viewers — the P2P-TV quality metric.
func (m *Mesh) Continuity() float64 {
	var played, total int
	for _, p := range m.peers {
		played += p.Played
		total += p.Played + p.Missed
	}
	if total == 0 {
		return 0
	}
	return float64(played) / float64(total)
}

// WorstContinuity returns the worst single viewer's continuity — aware
// scheduling should lift the tail, not just the mean.
func (m *Mesh) WorstContinuity() float64 {
	worst := 1.0
	for _, p := range m.peers {
		t := p.Played + p.Missed
		if t == 0 {
			continue
		}
		if c := float64(p.Played) / float64(t); c < worst {
			worst = c
		}
	}
	return worst
}

// ParentCapacityMean reports the mean upload capacity (chunks/tick) over
// all parent slots — the knob awareness turns.
func (m *Mesh) ParentCapacityMean() float64 {
	var sum float64
	n := 0
	for _, p := range m.peers {
		for _, parent := range p.parents {
			if parent.isSource {
				continue
			}
			sum += parent.upPerTick
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// HealthStats implements the telemetry HealthReporter hook: playout
// quality gauges the probe plane samples per tick batch (pure reads over
// the peer slice, deterministic).
//
//   - peers: viewer population
//   - ticks: stream ticks driven so far
//   - continuity / worst_continuity: mean and minimum played fraction
//   - buffered_mean: mean chunks buffered per viewer
func (m *Mesh) HealthStats() map[string]float64 {
	out := map[string]float64{
		"peers":            float64(len(m.peers)),
		"ticks":            float64(m.tick),
		"continuity":       m.Continuity(),
		"worst_continuity": m.WorstContinuity(),
	}
	if len(m.peers) > 0 {
		var buffered float64
		for _, p := range m.peers {
			buffered += float64(len(p.have))
		}
		out["buffered_mean"] = buffered / float64(len(m.peers))
	}
	return out
}
