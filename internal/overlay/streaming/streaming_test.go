package streaming

import (
	"testing"

	"unap2p/internal/core"
	"unap2p/internal/resources"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

func buildMesh(t testing.TB, aware bool, seed int64) (*underlay.Network, *Mesh) {
	t.Helper()
	src := sim.NewSource(seed)
	net := topology.TransitStub(topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 6,
	})
	topology.PlaceHosts(net, 12, false, 1, 5, src.Stream("place"))
	table := resources.GenerateAll(net, src.Stream("res"))
	cfg := DefaultConfig()
	sel := &core.ResourceSelector{Table: table, WeightParents: aware}
	m := NewMesh(transport.Over(net), sel, net.Hosts()[0], cfg, src.Stream("mesh"))
	for _, h := range net.Hosts()[1:] {
		m.AddViewer(h)
	}
	m.AssignParents()
	return net, m
}

func TestStreamDelivers(t *testing.T) {
	_, m := buildMesh(t, false, 1)
	m.Run(200)
	c := m.Continuity()
	if c <= 0.3 {
		t.Fatalf("continuity %.3f too low — stream never flowed", c)
	}
	if m.ChunkTraffic.Total() == 0 {
		t.Fatal("no chunk traffic accounted")
	}
}

func TestAwareParentsImproveContinuity(t *testing.T) {
	_, random := buildMesh(t, false, 2)
	_, aware := buildMesh(t, true, 2)
	random.Run(250)
	aware.Run(250)
	if aware.ParentCapacityMean() <= random.ParentCapacityMean() {
		t.Fatal("aware assignment did not raise parent capacity")
	}
	if aware.Continuity() <= random.Continuity() {
		t.Fatalf("aware continuity %.3f not above random %.3f",
			aware.Continuity(), random.Continuity())
	}
}

func TestPlayoutAccounting(t *testing.T) {
	_, m := buildMesh(t, true, 3)
	m.Run(100)
	for _, p := range m.Peers() {
		total := p.Played + p.Missed
		want := 100 - m.Cfg.StartupDelay
		if total != want {
			t.Fatalf("peer %d scored %d playouts, want %d", p.Host.ID, total, want)
		}
	}
}

func TestOfflineViewersSkipPlayout(t *testing.T) {
	net, m := buildMesh(t, false, 4)
	dead := net.Hosts()[5]
	dead.Up = false
	m.Run(100)
	for _, p := range m.Peers() {
		if p.Host.ID == dead.ID && p.Played+p.Missed != 0 {
			t.Fatal("offline viewer scored playouts")
		}
	}
}

func TestValidation(t *testing.T) {
	net, m := buildMesh(t, false, 5)
	cases := []func(){
		func() { m.AddViewer(net.Hosts()[0]) },           // source
		func() { m.AddViewer(net.Hosts()[1]) },           // duplicate
		func() { NewMesh(nil, nil, nil, Config{}, nil) }, // bad config
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestWorstContinuityBounded(t *testing.T) {
	_, m := buildMesh(t, true, 6)
	m.Run(200)
	w := m.WorstContinuity()
	c := m.Continuity()
	if w > c+1e-9 {
		t.Fatalf("worst %.3f above mean %.3f", w, c)
	}
	if w < 0 || w > 1 {
		t.Fatalf("worst continuity out of range: %v", w)
	}
}

// BenchmarkStreamTick measures one pull/playout round for 71 viewers.
func BenchmarkStreamTick(b *testing.B) {
	_, m := buildMesh(b, true, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick()
	}
}
