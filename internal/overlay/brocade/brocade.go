// Package brocade implements Brocade-style landmark routing on overlay
// networks (Zhao, Duan, Huang, Joseph, Kubiatowicz — IPTPS 2002, [36] in
// the paper): each autonomous system elects a well-provisioned supernode;
// supernodes form a fully-connected secondary overlay. A cross-domain
// message travels peer → local supernode → remote supernode → destination
// peer, crossing the wide area exactly once instead of the O(log N)
// inter-AS hops a flat DHT walk takes.
package brocade

import (
	"fmt"
	"sort"

	"unap2p/internal/metrics"
	"unap2p/internal/resources"
	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// Overlay is a Brocade layer over a peer population.
type Overlay struct {
	U *underlay.Network
	// MsgBytes is the size of one routed message.
	MsgBytes uint64
	// Msgs counts "hop" messages.
	Msgs *metrics.CounterSet

	// supernodes maps AS id → elected supernode host.
	supernodes map[int]underlay.HostID
	members    map[underlay.HostID]bool
}

// Build elects one supernode per AS that has members: the member with the
// highest capacity score (Brocade chooses "supernodes with significant
// processing power and network bandwidth" near the wide-area access
// point). Ties break on host id for determinism.
func Build(net *underlay.Network, table *resources.Table, members []*underlay.Host) *Overlay {
	if len(members) == 0 {
		panic("brocade: no members")
	}
	o := &Overlay{
		U:          net,
		MsgBytes:   120,
		Msgs:       metrics.NewCounterSet(),
		supernodes: make(map[int]underlay.HostID),
		members:    make(map[underlay.HostID]bool),
	}
	best := map[int]underlay.HostID{}
	bestScore := map[int]float64{}
	sorted := append([]*underlay.Host(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for _, h := range sorted {
		o.members[h.ID] = true
		score := table.Get(h.ID).Score()
		if cur, ok := best[h.AS.ID]; !ok || score > bestScore[h.AS.ID] {
			_ = cur
			best[h.AS.ID] = h.ID
			bestScore[h.AS.ID] = score
		}
	}
	o.supernodes = best
	return o
}

// Supernode returns the supernode elected for an AS.
func (o *Overlay) Supernode(asID int) (underlay.HostID, bool) {
	id, ok := o.supernodes[asID]
	return id, ok
}

// Supernodes returns the number of elected supernodes.
func (o *Overlay) Supernodes() int { return len(o.supernodes) }

// RouteStats reports one routed message's cost.
type RouteStats struct {
	// Hops is the number of overlay legs traversed.
	Hops int
	// Latency is the end-to-end one-way delay.
	Latency sim.Duration
	// InterASCrossings counts legs whose endpoints are in different ASes
	// — each is wide-area traffic.
	InterASCrossings int
}

// Route delivers a message from src to dst through the landmark overlay:
// same-AS destinations go direct; cross-domain ones take the three-leg
// supernode path (legs collapse when src or dst *is* a supernode).
func (o *Overlay) Route(src, dst underlay.HostID) RouteStats {
	if !o.members[src] || !o.members[dst] {
		panic(fmt.Sprintf("brocade: %d→%d not members", src, dst))
	}
	from := o.U.Host(src)
	to := o.U.Host(dst)
	var st RouteStats
	if src == dst {
		return st
	}
	leg := func(a, b *underlay.Host) {
		if a.ID == b.ID {
			return
		}
		o.Msgs.Get("hop").Inc()
		o.U.Send(a, b, o.MsgBytes)
		st.Hops++
		st.Latency += o.U.Latency(a, b)
		if a.AS.ID != b.AS.ID {
			st.InterASCrossings++
		}
	}
	if from.AS.ID == to.AS.ID {
		leg(from, to)
		return st
	}
	sn1 := o.U.Host(o.supernodes[from.AS.ID])
	sn2 := o.U.Host(o.supernodes[to.AS.ID])
	leg(from, sn1)
	leg(sn1, sn2)
	leg(sn2, to)
	return st
}
