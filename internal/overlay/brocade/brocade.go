// Package brocade implements Brocade-style landmark routing on overlay
// networks (Zhao, Duan, Huang, Joseph, Kubiatowicz — IPTPS 2002, [36] in
// the paper): each autonomous system elects a well-provisioned supernode;
// supernodes form a fully-connected secondary overlay. A cross-domain
// message travels peer → local supernode → remote supernode → destination
// peer, crossing the wide area exactly once instead of the O(log N)
// inter-AS hops a flat DHT walk takes.
package brocade

import (
	"fmt"
	"sort"

	"unap2p/internal/core"
	"unap2p/internal/metrics"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Overlay is a Brocade layer over a peer population.
type Overlay struct {
	// T carries routed messages; U serves topology queries.
	T transport.Messenger
	U *underlay.Network
	// MsgBytes is the size of one routed message.
	MsgBytes uint64
	// Msgs counts "hop" messages — a view of the transport's counters.
	Msgs *metrics.CounterSet

	// supernodes maps AS id → elected supernode host.
	supernodes map[int]underlay.HostID
	members    map[underlay.HostID]bool
	// groups keeps the per-AS member lists (id-sorted) so heal.go can
	// re-elect a supernode when one is evicted; sel is the election
	// policy Build ran with.
	groups map[int][]*underlay.Host
	sel    core.Selector
	// suspected and evicted track failure-detector verdicts (see
	// heal.go); nil until the resilience layer delivers one.
	suspected, evicted map[underlay.HostID]bool
}

// Build elects one supernode per AS that has members via the selector's
// ElectSuperPeer verb — the member with the highest capacity score
// (Brocade chooses "supernodes with significant processing power and
// network bandwidth" near the wide-area access point). Ties break on
// host id for determinism. A nil selector (or one with no election
// preference) takes the lowest-id member of each AS.
func Build(tr transport.Messenger, sel core.Selector, members []*underlay.Host) *Overlay {
	if len(members) == 0 {
		panic("brocade: no members")
	}
	o := &Overlay{
		T:          tr,
		U:          tr.Underlay(),
		MsgBytes:   120,
		Msgs:       tr.Counters(),
		supernodes: make(map[int]underlay.HostID),
		members:    make(map[underlay.HostID]bool),
		sel:        sel,
	}
	sorted := append([]*underlay.Host(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	groups := map[int][]*underlay.Host{}
	var asOrder []int
	for _, h := range sorted {
		o.members[h.ID] = true
		if _, ok := groups[h.AS.ID]; !ok {
			asOrder = append(asOrder, h.AS.ID)
		}
		groups[h.AS.ID] = append(groups[h.AS.ID], h)
	}
	for _, asID := range asOrder {
		group := groups[asID]
		super := group[0]
		if sel != nil {
			if h, ok := sel.ElectSuperPeer(group); ok {
				super = h
			}
		}
		o.supernodes[asID] = super.ID
	}
	o.groups = groups
	return o
}

// Supernode returns the supernode elected for an AS.
func (o *Overlay) Supernode(asID int) (underlay.HostID, bool) {
	id, ok := o.supernodes[asID]
	return id, ok
}

// Supernodes returns the number of elected supernodes.
func (o *Overlay) Supernodes() int { return len(o.supernodes) }

// RouteStats reports one routed message's cost.
type RouteStats struct {
	// Hops is the number of overlay legs traversed.
	Hops int
	// Latency is the end-to-end one-way delay.
	Latency sim.Duration
	// InterASCrossings counts legs whose endpoints are in different ASes
	// — each is wide-area traffic.
	InterASCrossings int
}

// Route delivers a message from src to dst through the landmark overlay:
// same-AS destinations go direct; cross-domain ones take the three-leg
// supernode path (legs collapse when src or dst *is* a supernode).
func (o *Overlay) Route(src, dst underlay.HostID) RouteStats {
	if !o.members[src] || !o.members[dst] {
		panic(fmt.Sprintf("brocade: %d→%d not members", src, dst))
	}
	from := o.U.Host(src)
	to := o.U.Host(dst)
	var st RouteStats
	if src == dst {
		return st
	}
	// leg sends one overlay hop; it reports false when the message was
	// lost, which aborts the remaining legs of the route.
	leg := func(a, b *underlay.Host) bool {
		if a.ID == b.ID {
			return true
		}
		sr := o.T.Send(a, b, o.MsgBytes, "hop")
		st.Hops++
		if !sr.OK {
			return false
		}
		st.Latency += sr.Latency
		if a.AS.ID != b.AS.ID {
			st.InterASCrossings++
		}
		return true
	}
	if from.AS.ID == to.AS.ID {
		leg(from, to)
		return st
	}
	// An AS whose supernode was evicted and could not be replaced (no
	// live members left) degrades to a direct wide-area leg.
	sn1ID, ok1 := o.supernodes[from.AS.ID]
	sn2ID, ok2 := o.supernodes[to.AS.ID]
	if !ok1 || !ok2 {
		leg(from, to)
		return st
	}
	sn1 := o.U.Host(sn1ID)
	sn2 := o.U.Host(sn2ID)
	if leg(from, sn1) && leg(sn1, sn2) {
		leg(sn2, to)
	}
	return st
}

// HealthStats implements the telemetry HealthReporter hook: the state of
// the secondary overlay (pure reads, deterministic).
//
//   - supernodes: elected AS landmarks
//   - members: primary-overlay population
//   - members_per_supernode_mean: delegation fan-in per landmark
func (o *Overlay) HealthStats() map[string]float64 {
	out := map[string]float64{
		"supernodes": float64(len(o.supernodes)),
		"members":    float64(len(o.members)),
	}
	if len(o.supernodes) > 0 {
		out["members_per_supernode_mean"] = float64(len(o.members)) / float64(len(o.supernodes))
	}
	return out
}
