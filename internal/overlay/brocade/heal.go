package brocade

import (
	"sort"

	"unap2p/internal/resilience"
	"unap2p/internal/underlay"
)

// This file implements the resilience.Healer Suspect/Evict/Replace
// contract for Brocade: evicting a supernode triggers a fresh election
// in its AS over the surviving members — through the same
// ElectSuperPeer policy Build used — so the landmark overlay keeps one
// well-provisioned representative per domain. An AS left with no live
// members loses its landmark and Route degrades to direct legs.

var _ resilience.Healer = (*Overlay)(nil)

// Suspect records an advisory verdict; the landmark overlay is
// untouched until eviction because suspicion can be recanted.
func (o *Overlay) Suspect(id underlay.HostID) {
	if o.suspected == nil {
		o.suspected = make(map[underlay.HostID]bool)
	}
	o.suspected[id] = true
}

// Evict removes the dead peer from membership and, if it was an AS
// landmark, re-elects. Idempotent.
func (o *Overlay) Evict(id underlay.HostID) {
	if o.evicted[id] {
		return
	}
	if o.evicted == nil {
		o.evicted = make(map[underlay.HostID]bool)
	}
	o.evicted[id] = true
	delete(o.suspected, id)
	if !o.members[id] {
		return
	}
	delete(o.members, id)
	asID := o.U.Host(id).AS.ID
	group := o.groups[asID]
	for i, h := range group {
		if h.ID == id {
			o.groups[asID] = append(group[:i], group[i+1:]...)
			break
		}
	}
	if o.supernodes[asID] != id {
		return
	}
	o.reelect(asID)
}

// reelect picks a new supernode for asID from its live, unevicted
// members (groups are id-sorted, so the nil-selector default remains
// "lowest id"); an empty field deletes the landmark.
func (o *Overlay) reelect(asID int) {
	var alive []*underlay.Host
	for _, h := range o.groups[asID] {
		if h.Up && !o.evicted[h.ID] {
			alive = append(alive, h)
		}
	}
	if len(alive) == 0 {
		delete(o.supernodes, asID)
		return
	}
	super := alive[0]
	if o.sel != nil {
		if h, ok := o.sel.ElectSuperPeer(alive); ok {
			super = h
		}
	}
	o.supernodes[asID] = super.ID
}

// Evicted returns the peers evicted so far, sorted.
func (o *Overlay) Evicted() []underlay.HostID {
	out := make([]underlay.HostID, 0, len(o.evicted))
	for id := range o.evicted {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Refs returns every peer the landmark overlay routes through — the
// elected supernodes — deduped and sorted: the reference set chaos
// invariants sweep for dead peers.
func (o *Overlay) Refs() []underlay.HostID {
	set := make(map[underlay.HostID]bool)
	for _, id := range o.supernodes {
		set[id] = true
	}
	out := make([]underlay.HostID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
