package brocade

import (
	"testing"

	"unap2p/internal/core"
	"unap2p/internal/resources"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

func buildBrocade(t testing.TB, seed int64) (*underlay.Network, *resources.Table, *Overlay) {
	t.Helper()
	src := sim.NewSource(seed)
	net := topology.TransitStub(topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 8,
	})
	topology.PlaceHosts(net, 10, false, 1, 5, src.Stream("place"))
	table := resources.GenerateAll(net, src.Stream("res"))
	o := Build(transport.Over(net), &core.ResourceSelector{Table: table}, net.Hosts())
	return net, table, o
}

func TestElectsOneSupernodePerAS(t *testing.T) {
	net, table, o := buildBrocade(t, 1)
	withHosts := map[int]bool{}
	for _, h := range net.Hosts() {
		withHosts[h.AS.ID] = true
	}
	if o.Supernodes() != len(withHosts) {
		t.Fatalf("elected %d supernodes for %d populated ASes", o.Supernodes(), len(withHosts))
	}
	// The supernode must be its AS's top scorer.
	for asID := range withHosts {
		sn, ok := o.Supernode(asID)
		if !ok {
			t.Fatalf("AS %d has no supernode", asID)
		}
		for _, h := range net.HostsInAS(asID) {
			if table.Get(h.ID).Score() > table.Get(sn).Score() {
				t.Fatalf("AS %d supernode outscored by host %d", asID, h.ID)
			}
		}
	}
}

func TestRouteIntraASDirect(t *testing.T) {
	net, _, o := buildBrocade(t, 2)
	as := net.Hosts()[0].AS.ID
	hosts := net.HostsInAS(as)
	st := o.Route(hosts[0].ID, hosts[1].ID)
	if st.Hops != 1 || st.InterASCrossings != 0 {
		t.Fatalf("intra-AS route %+v, want 1 local hop", st)
	}
	self := o.Route(hosts[0].ID, hosts[0].ID)
	if self.Hops != 0 {
		t.Fatal("self route should be free")
	}
}

func TestRouteCrossesWideAreaOnce(t *testing.T) {
	net, _, o := buildBrocade(t, 3)
	var a, b *underlay.Host
	for _, h := range net.Hosts() {
		if a == nil {
			a = h
			continue
		}
		if h.AS.ID != a.AS.ID {
			b = h
			break
		}
	}
	st := o.Route(a.ID, b.ID)
	if st.InterASCrossings != 1 {
		t.Fatalf("cross-domain route crossed %d times, want exactly 1", st.InterASCrossings)
	}
	if st.Hops < 1 || st.Hops > 3 {
		t.Fatalf("hops = %d, want 1..3", st.Hops)
	}
	if st.Latency <= 0 {
		t.Fatal("no latency accounted")
	}
	if o.Msgs.Value("hop") == 0 {
		t.Fatal("no messages counted")
	}
}

func TestRouteFromSupernodeCollapsesLeg(t *testing.T) {
	net, _, o := buildBrocade(t, 4)
	// Pick a supernode and a destination in another AS.
	var snHost underlay.HostID
	var snAS int
	for as, id := range o.supernodes {
		snHost, snAS = id, as
		break
	}
	var dst *underlay.Host
	for _, h := range net.Hosts() {
		if h.AS.ID != snAS {
			dst = h
			break
		}
	}
	st := o.Route(snHost, dst.ID)
	if st.Hops > 2 {
		t.Fatalf("supernode origin should skip the first leg: %d hops", st.Hops)
	}
}

func TestRoutePanicsOnNonMember(t *testing.T) {
	net, _, o := buildBrocade(t, 5)
	outsider := net.AddHost(net.AS(2), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.Route(net.Hosts()[0].ID, outsider.ID)
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	net, table, _ := buildBrocade(t, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(transport.Over(net), &core.ResourceSelector{Table: table}, nil)
}

// BenchmarkRoute measures one landmark-routed delivery.
func BenchmarkRoute(b *testing.B) {
	net, _, o := buildBrocade(b, 7)
	hosts := net.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Route(hosts[i%len(hosts)].ID, hosts[(i*13+1)%len(hosts)].ID)
	}
}
