package gnutella

import (
	"unap2p/internal/megascale"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// CompactConfig parameterizes a CompactFlood.
type CompactConfig struct {
	// UltraShare elects one peer in UltraShare as an ultrapeer (hashed,
	// deterministic, K-independent).
	UltraShare int
	// UltraDegree is the target ultra↔ultra links initiated per
	// ultrapeer; accepted links can double a node's degree.
	UltraDegree int
	// LeafParents is how many ultrapeers each leaf attaches to.
	LeafParents int
	// QueryTTL bounds the flood depth over the ultrapeer graph.
	QueryTTL int
	// Replicas is how many peers own each key (the QRP-style shared-file
	// placement).
	Replicas int
	// QueryBytes and HitBytes are the per-message sizes charged.
	QueryBytes, HitBytes uint64
	// Timeout is the simulated deadline after which a query is scored:
	// a hit that arrived by then counts, silence is a miss.
	Timeout sim.Duration
	// Aware, when true, biases ultra neighbor and leaf parent choices
	// toward same-AS candidates (Aggarwal et al.'s biased neighbor
	// selection, the paper's central Gnutella evidence) while keeping
	// the hashed fallback links that hold the graph together.
	Aware bool
	// AwareProbe is how many extra hash draws an aware pick spends
	// looking for a same-AS candidate before falling back.
	AwareProbe int
}

// DefaultCompactConfig sizes the overlay for megascale runs.
func DefaultCompactConfig() CompactConfig {
	return CompactConfig{
		UltraShare: 8, UltraDegree: 6, LeafParents: 2,
		QueryTTL: 3, Replicas: 3,
		QueryBytes: queryBytes, HitBytes: queryHitBytes,
		Timeout: 3000, AwareProbe: 8,
	}
}

// CompactFlood is a struct-of-arrays Gnutella over PeerTable peers for
// sharded megascale runs — the unstructured port onto the megascale
// runtime, which is what turns the million-peer study into the
// structured-vs-unstructured comparison the 2009 paper could only
// sketch. Ids come from a megascale.IDSpace (unused for routing, but
// they key the shared workload targets), accounting lives in
// megascale.Counters, and the topology is flat arrays: a hashed
// ultrapeer election, an ultra↔ultra neighbor table, per-leaf parent
// slots, and a CSR leaf list per ultrapeer.
//
// A query is a TTL-bounded flood over the ultrapeer graph with
// QRP-style last-hop routing: an ultrapeer knows which of its leaves
// share a key (statically, from the deterministic replica placement)
// and forwards the query only to those, which answer with a QueryHit
// straight to the origin. Flood dedup state is per-shard, keyed by
// (query id, peer), so every mutation stays on the owning shard.
type CompactFlood struct {
	cfg CompactConfig
	net *transport.ShardedNet

	space *megascale.IDSpace
	uidx  []int32  // dense ultra index per peer, -1 for leaves
	ultra []uint32 // ultra peer ids, election order
	nbr   []uint32 // U×maxDeg ultra neighbors
	ncnt  []uint8  // neighbor fill per ultra
	par   []uint32 // n×LeafParents parent ultras (leaf rows only)
	pcnt  []uint8  // parent fill per peer
	lhead []int32  // U+1 CSR offsets into llist
	llist []uint32 // leaves per ultra, CSR

	qryClass, hitClass int

	ctr *megascale.Counters
	// seen holds per-shard flood dedup sets keyed qid<<32|peer; each
	// shard touches only its own map.
	seen []map[uint64]struct{}
	// qseq allocates per-shard query ids; potential counts queries whose
	// key was statically reachable (the ground-truth denominator).
	qseq      []uint32
	potential []uint64
}

// maxDeg is the accepted-degree cap (initiated + accepted links).
func (cfg CompactConfig) maxDeg() int { return 2 * cfg.UltraDegree }

// NewCompactFlood builds a compact Gnutella over every peer in the
// net's table. qryClass and hitClass are the transport classes for
// query and query-hit traffic. Call Bootstrap before the kernel runs.
func NewCompactFlood(net *transport.ShardedNet, cfg CompactConfig, seed uint64, qryClass, hitClass int) *CompactFlood {
	n := net.Peers().Len()
	if cfg.UltraShare <= 0 || cfg.UltraDegree <= 0 || cfg.LeafParents <= 0 ||
		cfg.QueryTTL <= 0 || cfg.Replicas <= 0 || cfg.Timeout <= 0 {
		panic("gnutella: bad CompactConfig")
	}
	if cfg.AwareProbe <= 0 {
		cfg.AwareProbe = 8
	}
	shards := net.Kernel().NumShards()
	g := &CompactFlood{
		cfg: cfg, net: net,
		space:    megascale.NewIDSpace(n, seed),
		uidx:     make([]int32, n),
		qryClass: qryClass, hitClass: hitClass,
		ctr:       megascale.NewCounters(shards),
		seen:      make([]map[uint64]struct{}, shards),
		qseq:      make([]uint32, shards),
		potential: make([]uint64, shards),
	}
	for i := range g.seen {
		g.seen[i] = make(map[uint64]struct{})
	}
	return g
}

// Name identifies the overlay (megascale.CompactOverlay).
func (g *CompactFlood) Name() string { return "gnutella" }

// IsUltra reports whether peer p was elected ultrapeer.
func (g *CompactFlood) IsUltra(p underlay.PeerID) bool { return g.uidx[p] >= 0 }

// Ultras reports the ultrapeer count.
func (g *CompactFlood) Ultras() int { return len(g.ultra) }

// Bootstrap elects ultrapeers and builds the whole flat topology
// deterministically from the seed. Single-threaded setup only.
func (g *CompactFlood) Bootstrap(seed uint64) {
	n := g.space.Len()
	pt := g.net.Peers()
	// Hashed ultrapeer election; a tiny network promotes everyone so the
	// graph exists.
	for p := range g.uidx {
		g.uidx[p] = -1
	}
	g.ultra = g.ultra[:0]
	for p := 0; p < n; p++ {
		if megascale.Mix64(seed^0xa17a^uint64(p))%uint64(g.cfg.UltraShare) == 0 {
			g.uidx[p] = int32(len(g.ultra))
			g.ultra = append(g.ultra, uint32(p))
		}
	}
	if len(g.ultra) < 2 {
		g.ultra = g.ultra[:0]
		for p := 0; p < n; p++ {
			g.uidx[p] = int32(p)
			g.ultra = append(g.ultra, uint32(p))
		}
	}
	u := len(g.ultra)
	maxDeg := g.cfg.maxDeg()
	g.nbr = make([]uint32, u*maxDeg)
	g.ncnt = make([]uint8, u)
	// pickUltra draws a pseudo-random ultra, preferring a same-AS one
	// within AwareProbe extra draws when Aware is set.
	pickUltra := func(key uint64, as int) int {
		pick := int(megascale.Mix64(key) % uint64(u))
		if !g.cfg.Aware {
			return pick
		}
		for t := 0; t < g.cfg.AwareProbe; t++ {
			c := int(megascale.Mix64(key^uint64(t+1)*0x9e3779b97f4a7c15) % uint64(u))
			if pt.AS(underlay.PeerID(g.ultra[c])) == as {
				return c
			}
		}
		return pick
	}
	linked := func(a, b int) bool {
		base := a * maxDeg
		for i := 0; i < int(g.ncnt[a]); i++ {
			if g.nbr[base+i] == g.ultra[b] {
				return true
			}
		}
		return false
	}
	link := func(a, b int) {
		if a == b || linked(a, b) ||
			int(g.ncnt[a]) >= maxDeg || int(g.ncnt[b]) >= maxDeg {
			return
		}
		g.nbr[a*maxDeg+int(g.ncnt[a])] = g.ultra[b]
		g.ncnt[a]++
		g.nbr[b*maxDeg+int(g.ncnt[b])] = g.ultra[a]
		g.ncnt[b]++
	}
	for i := 0; i < u; i++ {
		as := pt.AS(underlay.PeerID(g.ultra[i]))
		for d := 0; d < g.cfg.UltraDegree; d++ {
			// The paper's k-external rule: even aware nodes keep their
			// first link unbiased so the graph stays connected across
			// ASes.
			if g.cfg.Aware && d == 0 {
				link(i, int(megascale.Mix64(seed^0x11b8^uint64(i)<<20)%uint64(u)))
				continue
			}
			link(i, pickUltra(seed^0x0b61^uint64(i)<<20^uint64(d), as))
		}
	}
	// Leaves attach to LeafParents distinct ultras; CSR-invert for the
	// per-ultra leaf lists QRP forwarding walks.
	g.par = make([]uint32, n*g.cfg.LeafParents)
	g.pcnt = make([]uint8, n)
	leafCnt := make([]int32, u)
	for p := 0; p < n; p++ {
		if g.uidx[p] >= 0 {
			continue
		}
		as := pt.AS(underlay.PeerID(p))
		base := p * g.cfg.LeafParents
		for s := 0; s < g.cfg.LeafParents; s++ {
			c := pickUltra(seed^0x1eaf^uint64(p)<<8^uint64(s), as)
			dup := false
			for i := 0; i < int(g.pcnt[p]); i++ {
				if g.par[base+i] == g.ultra[c] {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			g.par[base+int(g.pcnt[p])] = g.ultra[c]
			g.pcnt[p]++
			leafCnt[c]++
		}
	}
	g.lhead = make([]int32, u+1)
	for i := 0; i < u; i++ {
		g.lhead[i+1] = g.lhead[i] + leafCnt[i]
	}
	g.llist = make([]uint32, g.lhead[u])
	fill := make([]int32, u)
	for p := 0; p < n; p++ {
		if g.uidx[p] >= 0 {
			continue
		}
		base := p * g.cfg.LeafParents
		for i := 0; i < int(g.pcnt[p]); i++ {
			ui := g.uidx[g.par[base+i]]
			g.llist[g.lhead[ui]+fill[ui]] = uint32(p)
			fill[ui]++
		}
	}
}

// owners derives the Replicas peers sharing the key drawn from a query
// seed — the deterministic replica placement both the flood's QRP check
// and the ground truth read.
func (g *CompactFlood) owners(key uint64, out []underlay.PeerID) []underlay.PeerID {
	n := uint64(g.space.Len())
	out = out[:0]
	for r := 0; r < g.cfg.Replicas; r++ {
		out = append(out, underlay.PeerID(megascale.Mix64(key^uint64(r+1)*0xbf58476d1ce4e5b9)%n))
	}
	return out
}

// attachedTo reports whether owner o is peer u itself or a leaf attached
// to ultrapeer u (a static read of the parent rows).
func (g *CompactFlood) attachedTo(o, u underlay.PeerID) bool {
	if o == u {
		return true
	}
	if g.uidx[u] < 0 || g.uidx[o] >= 0 {
		return false
	}
	base := int(o) * g.cfg.LeafParents
	for i := 0; i < int(g.pcnt[o]); i++ {
		if g.par[base+i] == uint32(u) {
			return true
		}
	}
	return false
}

// floodQuery is one in-flight query's origin-shard state.
type floodQuery struct {
	hits     int
	firstHop int
	best     underlay.PeerID
}

// Query implements megascale.CompactOverlay: one keyword query for a
// key derived from the per-request seed, flooded TTL-bounded from the
// origin's ultrapeers. Must be invoked on origin's owning shard; onDone
// (which may be nil) runs there at the query deadline. Result.OK
// reports a hit; Result.Hops is the first hit's hop count.
func (g *CompactFlood) Query(origin underlay.PeerID, seed uint64, onDone func(megascale.Result)) {
	key := megascale.Mix64(seed ^ 0x6e7e11a)
	owners := g.owners(key, nil)
	oshard := g.net.ShardOf(origin)
	g.ctr.Start(oshard)
	qid := uint64(g.qseq[oshard])<<8 | uint64(oshard)
	g.qseq[oshard]++
	st := &floodQuery{best: origin}
	if g.uidx[origin] >= 0 {
		// Ultra origin processes the query locally, no self-message.
		g.deliver(origin, origin, qid, owners, g.cfg.QueryTTL, 0, st)
	} else {
		base := int(origin) * g.cfg.LeafParents
		for i := 0; i < int(g.pcnt[origin]); i++ {
			up := underlay.PeerID(g.par[base+i])
			g.net.Send(origin, up, g.qryClass, g.cfg.QueryBytes, func() {
				g.deliver(origin, up, qid, owners, g.cfg.QueryTTL, 1, st)
			})
		}
	}
	g.net.Kernel().Shard(oshard).Schedule(g.cfg.Timeout, func() {
		ok := st.hits > 0
		g.ctr.Finish(oshard, ok, st.firstHop)
		if g.PotentialHit(origin, key) {
			g.potential[oshard]++
		}
		if onDone != nil {
			onDone(megascale.Result{Origin: origin, Best: st.best, OK: ok, Hops: st.firstHop})
		}
	})
}

// deliver processes the query at ultrapeer u, on u's shard: liveness
// gate, per-shard dedup, QRP hit check against u and its leaves, then a
// TTL-bounded forward to u's neighbors.
func (g *CompactFlood) deliver(origin, u underlay.PeerID, qid uint64,
	owners []underlay.PeerID, ttl, hops int, st *floodQuery) {
	if !g.net.Peers().Up(u) {
		return
	}
	shard := g.net.ShardOf(u)
	dk := qid<<32 | uint64(u)
	if _, dup := g.seen[shard][dk]; dup {
		return
	}
	g.seen[shard][dk] = struct{}{}
	for _, o := range owners {
		o := o
		if !g.attachedTo(o, u) {
			continue
		}
		if o == u {
			g.reply(origin, u, hops, st)
			continue
		}
		// QRP last hop: only the owning leaf gets the query; it answers
		// the origin directly if alive.
		hop := hops + 1
		g.net.Send(u, o, g.qryClass, g.cfg.QueryBytes, func() {
			if !g.net.Peers().Up(o) {
				return
			}
			lk := qid<<32 | uint64(o)
			ls := g.net.ShardOf(o)
			if _, dup := g.seen[ls][lk]; dup {
				return
			}
			g.seen[ls][lk] = struct{}{}
			g.reply(origin, o, hop, st)
		})
	}
	if ttl <= 1 {
		return
	}
	ui := int(g.uidx[u])
	base := ui * g.cfg.maxDeg()
	for i := 0; i < int(g.ncnt[ui]); i++ {
		v := underlay.PeerID(g.nbr[base+i])
		g.net.Send(u, v, g.qryClass, g.cfg.QueryBytes, func() {
			g.deliver(origin, v, qid, owners, ttl-1, hops+1, st)
		})
	}
}

// reply sends a QueryHit from peer h back to the origin's shard.
func (g *CompactFlood) reply(origin, h underlay.PeerID, hops int, st *floodQuery) {
	g.net.Send(h, origin, g.hitClass, g.cfg.HitBytes, func() {
		if st.hits == 0 {
			st.firstHop = hops
			st.best = h
		}
		st.hits++
	})
}

// PotentialHit is the ground-truth checker: whether any replica of the
// key is reachable from origin within QueryTTL over the static
// ultrapeer graph, ignoring liveness (stale QRP tables answer for dead
// peers in deployed Gnutella too). An actual hit implies a potential
// hit; the gap between the two rates is exactly the churn's toll on the
// flood. Pure read of immutable topology — safe from any shard.
func (g *CompactFlood) PotentialHit(origin underlay.PeerID, key uint64) bool {
	owners := g.owners(key, nil)
	type qe struct {
		u   underlay.PeerID
		ttl int
	}
	var frontier []qe
	visited := map[underlay.PeerID]bool{}
	if g.uidx[origin] >= 0 {
		frontier = append(frontier, qe{origin, g.cfg.QueryTTL})
		visited[origin] = true
	} else {
		base := int(origin) * g.cfg.LeafParents
		for i := 0; i < int(g.pcnt[origin]); i++ {
			up := underlay.PeerID(g.par[base+i])
			if !visited[up] {
				visited[up] = true
				frontier = append(frontier, qe{up, g.cfg.QueryTTL})
			}
		}
	}
	for len(frontier) > 0 {
		e := frontier[0]
		frontier = frontier[1:]
		for _, o := range owners {
			if g.attachedTo(o, e.u) {
				return true
			}
		}
		if e.ttl <= 1 {
			continue
		}
		ui := int(g.uidx[e.u])
		base := ui * g.cfg.maxDeg()
		for i := 0; i < int(g.ncnt[ui]); i++ {
			v := underlay.PeerID(g.nbr[base+i])
			if !visited[v] {
				visited[v] = true
				frontier = append(frontier, qe{v, e.ttl - 1})
			}
		}
	}
	return false
}

// Potential reports how many scored queries were statically reachable.
// Barrier-safe.
func (g *CompactFlood) Potential() uint64 {
	var n uint64
	for _, p := range g.potential {
		n += p
	}
	return n
}

// Stats aggregates the per-shard query counters. Barrier-safe.
func (g *CompactFlood) Stats() megascale.Stats { return g.ctr.Stats() }

// MegaStats implements megascale.CompactOverlay.
func (g *CompactFlood) MegaStats() megascale.Stats { return g.ctr.Stats() }

// HealthStats exposes query health plus the ground-truth coverage — the
// fraction of statically-reachable keys the churned flood actually hit.
func (g *CompactFlood) HealthStats() map[string]float64 {
	h := g.ctr.Health()
	s := g.ctr.Stats()
	pot := g.Potential()
	h["potential_rate"] = 0
	h["coverage"] = 0
	if s.Done > 0 {
		h["potential_rate"] = float64(pot) / float64(s.Done)
	}
	if pot > 0 {
		h["coverage"] = float64(s.OK) / float64(pot)
	}
	return h
}
