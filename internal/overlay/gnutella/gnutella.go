// Package gnutella implements an unstructured Gnutella-style overlay on
// the simulated underlay: ultrapeer/leaf roles, Hostcache-driven
// bootstrapping, TTL-limited Ping/Pong discovery and Query flooding with
// reverse-path QueryHit routing, and an HTTP-like file-exchange stage.
//
// It is the workhorse of the paper's central evidence (Aggarwal et al.):
// with an ISP oracle ranking the Hostcache at join time ("biased neighbor
// selection") the overlay clusters along AS boundaries (Figures 5/6),
// message counts drop (their Table 1), and consulting the oracle again at
// the file-exchange stage drives intra-AS transfers from ~6.5% to ~40%.
package gnutella

import (
	"fmt"
	"math/rand"
	"sort"

	"unap2p/internal/core"
	"unap2p/internal/metrics"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
	"unap2p/internal/workload"
)

// Message sizes in bytes (representative Gnutella 0.6 frame sizes; only
// relative magnitudes matter for traffic accounting).
const (
	pingBytes     = 23
	pongBytes     = 37
	queryBytes    = 64
	queryHitBytes = 120
)

// Config tunes the overlay.
type Config struct {
	// UltraDegree is the target number of ultrapeer↔ultrapeer neighbors.
	UltraDegree int
	// MaxUltraDegree caps accepted connections (refusals beyond it).
	MaxUltraDegree int
	// MaxLeaves caps how many leaves one ultrapeer accepts.
	MaxLeaves int
	// LeafParents is how many ultrapeers each leaf connects to.
	LeafParents int
	// HostcacheSize is the random subset of known addresses each joining
	// node holds — the list it sends to the oracle in biased mode (the
	// "cache 100 / cache 1000" knob of Aggarwal et al.'s Table 1).
	HostcacheSize int
	// PingTTL and QueryTTL limit flooding scope.
	PingTTL  int
	QueryTTL int
	// FileSize is the bytes transferred per download.
	FileSize uint64
	// ExternalPerNode reserves this many of a biased node's connections
	// for peers *outside* its AS — "a minimal number of inter-AS
	// connections necessary to keep the network connected" (§4, and the
	// k-external rule of Bindal et al.'s biased neighbor selection).
	ExternalPerNode int
	// PongCache enables Gnutella 0.6 pong caching: pings travel a single
	// hop and the receiving ultrapeer answers from its cache of known
	// hosts instead of re-flooding — the protocol optimization that tamed
	// Ping/Pong traffic in deployed Gnutella.
	PongCache bool
	// PongCacheSize caps the pongs returned per cached reply.
	PongCacheSize int
}

// DefaultConfig mirrors common GTK-Gnutella settings scaled for
// simulation.
func DefaultConfig() Config {
	return Config{
		UltraDegree:     5,
		MaxUltraDegree:  8,
		MaxLeaves:       30,
		LeafParents:     1,
		HostcacheSize:   100,
		PingTTL:         2,
		QueryTTL:        3,
		FileSize:        4 << 20, // 4 MB
		ExternalPerNode: 1,
	}
}

// Node is one Gnutella servent.
type Node struct {
	Host  *underlay.Host
	Ultra bool
	// neighbors are ultrapeer↔ultrapeer connections (only for ultras).
	neighbors map[underlay.HostID]bool
	// leaves are attached leaf nodes (only for ultras).
	leaves map[underlay.HostID]bool
	// parents are the leaf's ultrapeers (only for leaves).
	parents map[underlay.HostID]bool
	// hostcache is the node's known-address list.
	hostcache []underlay.HostID
	// seen de-duplicates flooded GUIDs → the neighbor we first heard it
	// from (the reverse-path backpointer).
	seen map[uint64]underlay.HostID
}

// Degree returns the node's ultrapeer connection count.
func (n *Node) Degree() int { return len(n.neighbors) }

// Hostcache returns the node's known-address list (a copy).
func (n *Node) Hostcache() []underlay.HostID {
	return append([]underlay.HostID(nil), n.hostcache...)
}

// LeafCount returns how many leaves are attached (0 for leaf nodes).
func (n *Node) LeafCount() int { return len(n.leaves) }

// Overlay is a Gnutella network instance bound to an underlay and kernel
// through a transport.
type Overlay struct {
	// T carries every protocol message; U and K are views of the
	// transport's underlay (topology queries) and kernel (scheduling).
	T   transport.Messenger
	U   *underlay.Network
	K   *sim.Kernel
	Cfg Config
	// Sel, when non-nil, biases decisions: a selector answering Rank
	// biases neighbor selection at join time (with the ExternalPerNode
	// safeguard), one answering SelectSource biases the file-exchange
	// stage. A nil selector — or one with no preference — keeps the
	// unaware protocol.
	Sel core.Selector
	// Catalog holds the shared content.
	Catalog *workload.Catalog
	// Msgs counts protocol messages by type: "ping", "pong", "query",
	// "queryhit".
	Msgs *metrics.CounterSet
	// FileTraffic accounts file-exchange bytes by AS pair, separately
	// from signalling.
	FileTraffic *metrics.TrafficMatrix
	// Downloads counts completed transfers; IntraASDownloads those whose
	// endpoints shared an AS.
	Downloads, IntraASDownloads uint64
	// SettleTime, when positive, bounds how long RunSearch advances the
	// kernel; required when the kernel carries recurring non-search
	// events (churn, mobility) that keep its queue non-empty forever.
	SettleTime sim.Duration

	nodes       map[underlay.HostID]*Node
	order       []underlay.HostID // join order for deterministic iteration
	r           *rand.Rand
	guid        uint64
	pendingHits map[uint64]*SearchResult
	// suspected and evicted track failure-detector verdicts (see
	// heal.go); nil until the resilience layer delivers one.
	suspected, evicted map[underlay.HostID]bool
}

// New creates an empty overlay sending through tr (which must carry a
// kernel for delivery scheduling) and selecting through sel (nil for the
// unaware protocol).
func New(tr transport.Messenger, sel core.Selector, cfg Config, r *rand.Rand) *Overlay {
	return &Overlay{
		T:           tr,
		U:           tr.Underlay(),
		K:           tr.Kernel(),
		Cfg:         cfg,
		Sel:         sel,
		Catalog:     workload.NewCatalog(0),
		Msgs:        tr.Counters(),
		FileTraffic: tr.MatrixFor("file"),
		nodes:       make(map[underlay.HostID]*Node),
		r:           r,
		pendingHits: make(map[uint64]*SearchResult),
	}
}

// Node returns the servent on a host (nil if absent).
func (o *Overlay) Node(id underlay.HostID) *Node { return o.nodes[id] }

// Nodes returns all servents in join order.
func (o *Overlay) Nodes() []*Node {
	out := make([]*Node, 0, len(o.order))
	for _, id := range o.order {
		out = append(out, o.nodes[id])
	}
	return out
}

// AddNode registers a servent for a host with the given role. It does not
// connect it; call Join (or JoinAll).
func (o *Overlay) AddNode(h *underlay.Host, ultra bool) *Node {
	if _, dup := o.nodes[h.ID]; dup {
		panic(fmt.Sprintf("gnutella: host %d already has a node", h.ID))
	}
	n := &Node{
		Host:      h,
		Ultra:     ultra,
		neighbors: make(map[underlay.HostID]bool),
		leaves:    make(map[underlay.HostID]bool),
		parents:   make(map[underlay.HostID]bool),
		seen:      make(map[uint64]underlay.HostID),
	}
	o.nodes[h.ID] = n
	o.order = append(o.order, h.ID)
	return n
}

// fillHostcache gives n a random sample of other nodes' addresses.
func (o *Overlay) fillHostcache(n *Node) {
	n.hostcache = n.hostcache[:0]
	perm := o.r.Perm(len(o.order))
	for _, idx := range perm {
		id := o.order[idx]
		if id == n.Host.ID {
			continue
		}
		n.hostcache = append(n.hostcache, id)
		if o.Cfg.HostcacheSize > 0 && len(n.hostcache) >= o.Cfg.HostcacheSize {
			break
		}
	}
}

// Join connects a node: leaves attach to ultrapeers; ultrapeers open
// UltraDegree connections. In biased mode the node sends its Hostcache to
// the oracle and walks the ranked list ("joins another node within its AS
// if such a node is present in its Hostcache, else … the nearest AS").
func (o *Overlay) Join(n *Node) {
	o.fillHostcache(n)
	candidates := make([]underlay.HostID, 0, len(n.hostcache))
	for _, id := range n.hostcache {
		c := o.nodes[id]
		if c != nil && c.Ultra && c.Host.Up {
			candidates = append(candidates, id)
		}
	}
	// unranked keeps the Hostcache's random order: external (inter-AS)
	// links are drawn from it so that the few long-range edges are random
	// rather than all funnelling into the nearest AS — randomness is what
	// keeps the clustered overlay one connected component.
	unranked := candidates
	biased := false
	if o.Sel != nil {
		if ranked, ok := o.Sel.Rank(n.Host, candidates); ok {
			candidates = ranked
			biased = true
		}
	}
	if n.Ultra {
		connect := func(id underlay.HostID, force bool) bool {
			c := o.nodes[id]
			if n.neighbors[id] || id == n.Host.ID {
				return false
			}
			if !force && c.Degree() >= o.Cfg.MaxUltraDegree {
				return false
			}
			n.neighbors[id] = true
			c.neighbors[n.Host.ID] = true
			return true
		}
		// In biased mode, reserve ExternalPerNode slots for out-of-AS
		// peers so AS clusters stay mutually connected.
		external := 0
		if biased {
			external = o.Cfg.ExternalPerNode
		}
		budget := o.Cfg.UltraDegree - external
		for _, id := range candidates {
			if n.Degree() >= budget {
				break
			}
			connect(id, false)
		}
		if external > 0 {
			made := 0
			for _, id := range unranked {
				if made >= external {
					break
				}
				if o.nodes[id].Host.AS.ID != n.Host.AS.ID && connect(id, false) {
					made++
				}
			}
			// If every random pick was full, force one inter-AS link
			// rather than risk partition.
			if made == 0 {
				for _, id := range unranked {
					if o.nodes[id].Host.AS.ID != n.Host.AS.ID && connect(id, true) {
						break
					}
				}
			}
		}
		// Connectivity fallback: a node that found no open slot connects
		// to its best candidate regardless of caps.
		if n.Degree() == 0 && len(candidates) > 0 {
			connect(candidates[0], true)
		}
		return
	}
	for _, id := range candidates {
		if len(n.parents) >= o.Cfg.LeafParents {
			break
		}
		c := o.nodes[id]
		if len(c.leaves) >= o.Cfg.MaxLeaves {
			continue
		}
		n.parents[id] = true
		c.leaves[n.Host.ID] = true
	}
}

// JoinAll joins every node in join order (ultrapeers first so leaves find
// parents).
func (o *Overlay) JoinAll() {
	ids := append([]underlay.HostID(nil), o.order...)
	sort.SliceStable(ids, func(i, j int) bool {
		ni, nj := o.nodes[ids[i]], o.nodes[ids[j]]
		if ni.Ultra != nj.Ultra {
			return ni.Ultra
		}
		return false
	})
	for _, id := range ids {
		o.Join(o.nodes[id])
	}
}

// Leave disconnects a node from the overlay (churn hook).
func (o *Overlay) Leave(n *Node) {
	for id := range n.neighbors {
		delete(o.nodes[id].neighbors, n.Host.ID)
	}
	n.neighbors = make(map[underlay.HostID]bool)
	for id := range n.leaves {
		delete(o.nodes[id].parents, n.Host.ID)
	}
	n.leaves = make(map[underlay.HostID]bool)
	for id := range n.parents {
		delete(o.nodes[id].leaves, n.Host.ID)
	}
	n.parents = make(map[underlay.HostID]bool)
}

// Edges returns the ultrapeer overlay edges (each once) plus leaf
// attachments, for clustering analysis.
func (o *Overlay) Edges() []metrics.Edge {
	var edges []metrics.Edge
	for _, id := range o.order {
		n := o.nodes[id]
		for nb := range n.neighbors {
			if id < nb {
				edges = append(edges, metrics.Edge{A: int(id), B: int(nb)})
			}
		}
		for p := range n.parents {
			edges = append(edges, metrics.Edge{A: int(id), B: int(p)})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	return edges
}

// ASLabels returns the host→AS labelling aligned with host IDs, sized to
// the underlay's host table (for metrics helpers).
func (o *Overlay) ASLabels() []int {
	labels := make([]int, o.U.NumHosts())
	for _, h := range o.U.Hosts() {
		labels[h.ID] = h.AS.ID
	}
	return labels
}

func (o *Overlay) nextGUID() uint64 {
	o.guid++
	return o.guid
}

// send routes one protocol message through the transport, which counts it
// under kind and charges the underlay; the result carries the delivery
// latency and whether the message survived fault injection.
func (o *Overlay) send(kind string, from, to *underlay.Host, bytes uint64) transport.Result {
	return o.T.Send(from, to, bytes, kind)
}

// sortedIDs returns a set's members in ascending order. Protocol fan-out
// iterates over these so that event sequencing — and therefore the whole
// simulation — is deterministic despite Go's randomized map iteration.
func sortedIDs(set map[underlay.HostID]bool) []underlay.HostID {
	out := make([]underlay.HostID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HealthStats implements the telemetry HealthReporter hook: live gauges
// over the two-tier topology, computed by pure reads in join order so
// sampling never perturbs a run.
//
//   - ultras / leaves: current role split of the joined population
//   - online_fraction: share of joined hosts currently up (moves under
//     churn as ultrapeer elections re-fill the backbone)
//   - ultra_degree_mean: mean ultrapeer fan-out
//   - leaves_per_ultra_mean: mean leaves attached per ultrapeer
//   - intra_as_neighbor_fraction: share of ultrapeer↔ultrapeer edges
//     inside one AS — the locality biased selection is supposed to buy
//   - downloads / intra_as_download_fraction: file-exchange outcomes
func (o *Overlay) HealthStats() map[string]float64 {
	var ultras, leaves, up, degree, attached float64
	var edges, intraEdges float64
	for _, id := range o.order {
		n := o.nodes[id]
		if n.Host.Up {
			up++
		}
		if !n.Ultra {
			leaves++
			continue
		}
		ultras++
		degree += float64(len(n.neighbors))
		attached += float64(len(n.leaves))
		for nb := range n.neighbors {
			if id < nb { // count each undirected edge once
				edges++
				if o.U.Host(nb).AS.ID == n.Host.AS.ID {
					intraEdges++
				}
			}
		}
	}
	out := map[string]float64{
		"ultras":    ultras,
		"leaves":    leaves,
		"downloads": float64(o.Downloads),
	}
	if n := ultras + leaves; n > 0 {
		out["online_fraction"] = up / n
	}
	if ultras > 0 {
		out["ultra_degree_mean"] = degree / ultras
		out["leaves_per_ultra_mean"] = attached / ultras
	}
	if edges > 0 {
		out["intra_as_neighbor_fraction"] = intraEdges / edges
	}
	if o.Downloads > 0 {
		out["intra_as_download_fraction"] = float64(o.IntraASDownloads) / float64(o.Downloads)
	}
	return out
}
