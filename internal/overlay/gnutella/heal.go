package gnutella

import (
	"unap2p/internal/resilience"
	"unap2p/internal/underlay"
)

// This file implements the resilience.Healer Suspect/Evict/Replace
// contract for Gnutella: evicting an ultrapeer detaches it, re-elects a
// replacement ultrapeer when its AS lost the last one (through the
// selector's ElectSuperPeer verb, so the promoted peer is the
// best-provisioned candidate), re-attaches its orphaned leaves, and
// tops the surviving backbone's degree back up.

var _ resilience.Healer = (*Overlay)(nil)

// Suspect records an advisory verdict; the node keeps its connections
// until eviction because suspicion can be recanted.
func (o *Overlay) Suspect(id underlay.HostID) {
	if o.suspected == nil {
		o.suspected = make(map[underlay.HostID]bool)
	}
	o.suspected[id] = true
}

// Evict disconnects the dead peer and repairs the two-tier topology.
// Idempotent.
func (o *Overlay) Evict(id underlay.HostID) {
	if o.evicted[id] {
		return
	}
	if o.evicted == nil {
		o.evicted = make(map[underlay.HostID]bool)
	}
	o.evicted[id] = true
	delete(o.suspected, id)
	n := o.nodes[id]
	if n == nil {
		return
	}
	wasUltra := n.Ultra
	orphans := sortedIDs(n.leaves)
	backbone := sortedIDs(n.neighbors)
	o.Leave(n)
	if !wasUltra {
		return
	}
	// Re-election: an AS whose last ultrapeer died promotes a leaf, so
	// biased joins keep finding a same-AS attachment point.
	if !o.hasLiveUltra(n.Host.AS.ID) {
		if cand := o.electUltra(n.Host.AS.ID); cand != nil {
			o.Leave(cand) // drop its leaf attachments before the role flip
			cand.Ultra = true
			o.Join(cand)
		}
	}
	// Orphaned leaves re-run the join protocol (biased when a selector
	// is wired) to find new parents.
	for _, lid := range orphans {
		leaf := o.nodes[lid]
		if leaf != nil && leaf.Host.Up && !o.evicted[lid] && !leaf.Ultra {
			o.Join(leaf)
		}
	}
	// Backbone repair: surviving neighbors that dropped below target
	// degree re-join to refill their connection budget.
	for _, nb := range backbone {
		m := o.nodes[nb]
		if m != nil && m.Host.Up && !o.evicted[nb] && m.Ultra && m.Degree() < o.Cfg.UltraDegree {
			o.Join(m)
		}
	}
}

// hasLiveUltra reports whether an AS still has an online, non-evicted
// ultrapeer.
func (o *Overlay) hasLiveUltra(asID int) bool {
	for _, id := range o.order {
		n := o.nodes[id]
		if n.Ultra && n.Host.Up && !o.evicted[id] && n.Host.AS.ID == asID {
			return true
		}
	}
	return false
}

// electUltra picks the leaf to promote in an AS: the selector's
// ElectSuperPeer verb when available (capacity-ranked), else the
// lowest-id live leaf.
func (o *Overlay) electUltra(asID int) *Node {
	var candidates []*underlay.Host
	for _, id := range o.order {
		n := o.nodes[id]
		if !n.Ultra && n.Host.Up && !o.evicted[id] && n.Host.AS.ID == asID {
			candidates = append(candidates, n.Host)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	best := candidates[0]
	for _, h := range candidates[1:] {
		if h.ID < best.ID {
			best = h
		}
	}
	if o.Sel != nil {
		if h, ok := o.Sel.ElectSuperPeer(candidates); ok {
			best = h
		}
	}
	return o.nodes[best.ID]
}

// Evicted returns the peers evicted so far, sorted.
func (o *Overlay) Evicted() []underlay.HostID {
	return sortedIDs(o.evicted)
}

// Refs returns every peer referenced by a connection set — ultrapeer
// neighbors, leaf attachments, leaf parents — deduped and sorted: the
// reference set chaos invariants sweep for dead peers.
func (o *Overlay) Refs() []underlay.HostID {
	set := make(map[underlay.HostID]bool)
	for _, id := range o.order {
		n := o.nodes[id]
		for nb := range n.neighbors {
			set[nb] = true
		}
		for l := range n.leaves {
			set[l] = true
		}
		for p := range n.parents {
			set[p] = true
		}
	}
	return sortedIDs(set)
}
