package gnutella

import (
	"reflect"
	"testing"

	"unap2p/internal/megascale"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// buildCompactFlood wires a small sharded stack: star underlay, peer
// table, partition, kernel, transport, flood overlay.
func buildCompactFlood(t *testing.T, perAS, K int, seed uint64, aware bool) (*CompactFlood, *transport.ShardedNet) {
	t.Helper()
	u := underlay.New()
	transit := u.AddAS(underlay.TransitISP, 2)
	for i := 0; i < 4; i++ {
		stub := u.AddAS(underlay.LocalISP, 4)
		u.ConnectTransit(stub, transit, 10)
	}
	u.ComputeRoutes()
	pt := underlay.NewPeerTable(u, 4*perAS)
	for as := 1; as <= 4; as++ {
		for j := 0; j < perAS; j++ {
			pt.AddPeer(as, sim.Duration(2+j%4))
		}
	}
	part := underlay.PartitionASes(u.NumASes(),
		func(as int) int { return pt.PeersPerAS()[int32(as)] }, K)
	window := underlay.MinCrossShardLatency(pt, part)
	if window <= 0 {
		window = 5
	}
	sk := sim.NewSharded(K, window)
	net := transport.NewShardedNet(u, pt, part, sk, []string{"qry", "hit"})
	cfg := DefaultCompactConfig()
	cfg.Aware = aware
	g := NewCompactFlood(net, cfg, seed, 0, 1)
	g.Bootstrap(seed ^ 0x5eed)
	return g, net
}

// TestCompactFloodTopology checks the deterministic election and the
// structural invariants of the flat topology arrays.
func TestCompactFloodTopology(t *testing.T) {
	g, net := buildCompactFlood(t, 32, 1, 9, false)
	g2, _ := buildCompactFlood(t, 32, 2, 9, false)
	pt := net.Peers()
	n := pt.Len()
	if g.Ultras() == 0 || g.Ultras() == n {
		t.Fatalf("degenerate election: %d ultras of %d peers", g.Ultras(), n)
	}
	maxDeg := g.cfg.maxDeg()
	for p := 0; p < n; p++ {
		if g.IsUltra(underlay.PeerID(p)) != g2.IsUltra(underlay.PeerID(p)) {
			t.Fatal("election depends on shard count")
		}
		if g.IsUltra(underlay.PeerID(p)) {
			ui := int(g.uidx[p])
			deg := int(g.ncnt[ui])
			if deg == 0 || deg > maxDeg {
				t.Fatalf("ultra %d degree %d out of range", p, deg)
			}
			// Neighbor symmetry.
			for i := 0; i < deg; i++ {
				v := g.nbr[ui*maxDeg+i]
				vi := int(g.uidx[v])
				found := false
				for j := 0; j < int(g.ncnt[vi]); j++ {
					if g.nbr[vi*maxDeg+j] == uint32(p) {
						found = true
					}
				}
				if !found {
					t.Fatalf("link %d→%d not symmetric", p, v)
				}
			}
			continue
		}
		// Leaves hold ≥1 parent, all ultras, mirrored in the CSR list.
		if g.pcnt[p] == 0 {
			t.Fatalf("leaf %d has no parents", p)
		}
		for i := 0; i < int(g.pcnt[p]); i++ {
			u := g.par[p*g.cfg.LeafParents+i]
			ui := g.uidx[u]
			if ui < 0 {
				t.Fatalf("leaf %d parent %d is not an ultra", p, u)
			}
			found := false
			for k := g.lhead[ui]; k < g.lhead[ui+1]; k++ {
				if g.llist[k] == uint32(p) {
					found = true
				}
			}
			if !found {
				t.Fatalf("leaf %d missing from parent %d's CSR list", p, u)
			}
		}
	}
}

// TestCompactFloodQueryStatic floods queries on a static (no churn)
// network: every hit must be statically potential, and coverage of the
// potential set must be high.
func TestCompactFloodQueryStatic(t *testing.T) {
	g, net := buildCompactFlood(t, 32, 2, 11, false)
	pt := net.Peers()
	for p := 0; p < pt.Len(); p++ {
		p := underlay.PeerID(p)
		qseed := uint64(p) ^ 0xabcd
		net.Kernel().Shard(net.ShardOf(p)).Schedule(sim.Duration(int(p)%16), func() {
			g.Query(p, qseed, func(r megascale.Result) {
				if r.OK && !g.PotentialHit(r.Origin, megascale.Mix64(qseed^0x6e7e11a)) {
					t.Errorf("peer %d: actual hit without potential hit", r.Origin)
				}
				if r.OK && r.Hops <= 0 {
					t.Errorf("peer %d: hit with no hops", r.Origin)
				}
			})
		})
	}
	net.Kernel().Drain()
	st := g.Stats()
	if st.Done != uint64(pt.Len()) {
		t.Fatalf("scored %d of %d queries", st.Done, pt.Len())
	}
	pot := g.Potential()
	if st.OK > pot {
		t.Fatalf("hits %d exceed potential %d — ground-truth invariant broken", st.OK, pot)
	}
	if pot == 0 {
		t.Fatal("no statically reachable keys — topology too sparse for the test")
	}
	cov := float64(st.OK) / float64(pot)
	if cov < 0.9 {
		t.Fatalf("static coverage %.3f < 0.9 (hits %d, potential %d)", cov, st.OK, pot)
	}
	h := g.HealthStats()
	if h["coverage"] != cov {
		t.Fatalf("health coverage %.3f != %.3f", h["coverage"], cov)
	}
}

// TestCompactFloodDeterministicAcrossK pins per-K reproducibility and
// K-independence of the workload outcomes under churn.
func TestCompactFloodDeterministicAcrossK(t *testing.T) {
	run := func(K int) (megascale.Stats, uint64, transport.NetStats, sim.Time) {
		g, net := buildCompactFlood(t, 24, K, 21, false)
		pt := net.Peers()
		megascale.AttachChurn(net, 77, megascale.ChurnConfig{
			Frac: 5, MeanOn: 400, MeanOff: 150,
		})
		for p := 0; p < pt.Len(); p += 3 {
			p := underlay.PeerID(p)
			net.Kernel().Shard(net.ShardOf(p)).Schedule(sim.Duration(int(p)), func() {
				g.Query(p, 0x777^uint64(p), nil)
			})
		}
		end := net.Kernel().Run(8000)
		return g.Stats(), g.Potential(), net.Stats(), end
	}
	s1, p1, n1, e1 := run(1)
	s1b, p1b, n1b, e1b := run(1)
	if s1 != s1b || p1 != p1b || !reflect.DeepEqual(n1, n1b) || e1 != e1b {
		t.Fatalf("K=1 not reproducible: %+v vs %+v", s1, s1b)
	}
	s4, p4, n4, e4 := run(4)
	s4b, p4b, n4b, e4b := run(4)
	if s4 != s4b || p4 != p4b || !reflect.DeepEqual(n4, n4b) || e4 != e4b {
		t.Fatalf("K=4 not reproducible: %+v vs %+v", s4, s4b)
	}
	if s1.Done == 0 || s1.OK == 0 {
		t.Fatalf("no query activity under churn: %+v", s1)
	}
	if s4.Done != s1.Done || s4.Started != s1.Started || p4 != p1 {
		t.Fatalf("query counts depend on K: %+v/%d vs %+v/%d", s1, p1, s4, p4)
	}
	dOK := int64(s4.OK) - int64(s1.OK)
	if dOK < -2 || dOK > 2 {
		t.Fatalf("hit count drifts across K: %d vs %d", s1.OK, s4.OK)
	}
}

// TestCompactFloodAware checks biased neighbor selection raises the
// same-AS fraction of ultra links while keeping the k-external escape
// links that span ASes.
func TestCompactFloodAware(t *testing.T) {
	stats := func(g *CompactFlood, net *transport.ShardedNet) (sameFrac float64, crossLinks int) {
		pt := net.Peers()
		maxDeg := g.cfg.maxDeg()
		same, total := 0, 0
		for ui, up := range g.ultra {
			for i := 0; i < int(g.ncnt[ui]); i++ {
				v := g.nbr[ui*maxDeg+i]
				total++
				if pt.AS(underlay.PeerID(up)) == pt.AS(underlay.PeerID(v)) {
					same++
				} else {
					crossLinks++
				}
			}
		}
		return float64(same) / float64(total), crossLinks
	}
	plain, pnet := buildCompactFlood(t, 48, 1, 5, false)
	aware, anet := buildCompactFlood(t, 48, 1, 5, true)
	fp, _ := stats(plain, pnet)
	fa, cross := stats(aware, anet)
	if fa <= fp {
		t.Fatalf("aware same-AS link fraction %.3f not above plain %.3f", fa, fp)
	}
	if cross == 0 {
		t.Fatal("aware graph lost every cross-AS link — k-external rule broken")
	}
}
