package gnutella

import (
	"unap2p/internal/underlay"
	"unap2p/internal/workload"
)

// Ping floods a discovery ping from node id with the configured TTL.
// Every node reached replies with a Pong routed hop-by-hop back along the
// reverse path — the Gnutella 0.4 semantics whose Pong traffic dwarfs Ping
// traffic (75.5M Pongs vs 7.6M Pings in Aggarwal et al.'s Table 1).
func (o *Overlay) Ping(from underlay.HostID) {
	n := o.nodes[from]
	if n == nil || !n.Host.Up {
		return
	}
	if o.Cfg.PongCache {
		o.cachedPing(n)
		return
	}
	guid := o.nextGUID()
	n.seen[guid] = from // origin marks itself
	for _, nb := range sortedIDs(n.neighbors) {
		o.forwardPing(guid, from, nb, o.Cfg.PingTTL)
	}
}

// cachedPing implements Gnutella 0.6 pong caching: one Ping per neighbor,
// each answered directly with up to PongCacheSize pongs drawn from the
// neighbor's own contact cache (its neighbors plus learned hosts). The
// pinging node learns the returned addresses into its Hostcache — same
// discovery result, a fraction of the 0.4 flooding traffic.
func (o *Overlay) cachedPing(n *Node) {
	limit := o.Cfg.PongCacheSize
	if limit <= 0 {
		limit = 10
	}
	for _, nb := range sortedIDs(n.neighbors) {
		recv := o.nodes[nb]
		if recv == nil || !recv.Host.Up {
			continue
		}
		nbID := nb
		r := o.send("ping", n.Host, recv.Host, pingBytes)
		if !r.OK {
			continue // ping lost: this neighbor never answers
		}
		o.K.Schedule(r.Latency, func() {
			sent := 0
			reply := func(id underlay.HostID) {
				if sent >= limit || id == n.Host.ID {
					return
				}
				back := o.send("pong", recv.Host, n.Host, pongBytes)
				sent++ // the cache slot is spent even if the pong is lost
				if back.OK {
					o.K.Schedule(back.Latency, func() { o.learn(n, id) })
				}
			}
			for _, id := range sortedIDs(recv.neighbors) {
				if sent >= limit {
					break
				}
				reply(id)
			}
			for _, id := range recv.hostcache {
				if sent >= limit {
					break
				}
				if !o.nodes[nbID].neighbors[id] {
					reply(id)
				}
			}
		})
	}
}

// learn adds an address to a node's Hostcache (deduplicated, capped).
func (o *Overlay) learn(n *Node, id underlay.HostID) {
	if id == n.Host.ID {
		return
	}
	for _, have := range n.hostcache {
		if have == id {
			return
		}
	}
	if o.Cfg.HostcacheSize > 0 && len(n.hostcache) >= o.Cfg.HostcacheSize {
		return
	}
	n.hostcache = append(n.hostcache, id)
}

func (o *Overlay) forwardPing(guid uint64, from, to underlay.HostID, ttl int) {
	if ttl <= 0 {
		return
	}
	sender, recv := o.nodes[from], o.nodes[to]
	if sender == nil || recv == nil || !recv.Host.Up {
		return
	}
	r := o.send("ping", sender.Host, recv.Host, pingBytes)
	if !r.OK {
		return // lost ping prunes this branch of the flood
	}
	o.K.Schedule(r.Latency, func() {
		if _, dup := recv.seen[guid]; dup {
			return
		}
		recv.seen[guid] = from
		// Reply with a Pong routed back along the reverse path.
		o.routeBack("pong", guid, to, pongBytes)
		// Forward to all other neighbors.
		for _, nb := range sortedIDs(recv.neighbors) {
			if nb != from {
				o.forwardPing(guid, to, nb, ttl-1)
			}
		}
	})
}

// routeBack relays a response from node at back to the GUID's origin,
// one overlay hop at a time, counting a message per hop.
func (o *Overlay) routeBack(kind string, guid uint64, at underlay.HostID, bytes uint64) {
	n := o.nodes[at]
	if n == nil {
		return
	}
	prev, ok := n.seen[guid]
	if !ok || prev == at {
		return // origin reached (or unknown GUID)
	}
	next := o.nodes[prev]
	if next == nil || !next.Host.Up {
		return
	}
	r := o.send(kind, n.Host, next.Host, bytes)
	if !r.OK {
		return // response lost mid-route: the origin never hears it
	}
	o.K.Schedule(r.Latency, func() { o.routeBack(kind, guid, prev, bytes) })
}

// SearchResult accumulates the hits of one query.
type SearchResult struct {
	From underlay.HostID
	Item workload.ItemID
	// Hits are the hosts that reported having the item (in arrival
	// order; deterministic given the kernel).
	Hits []underlay.HostID
	// Done is set when the flood has quiesced (kernel drained).
	Done bool

	guid uint64
}

// Search floods a query for item from the given node. Hits accumulate in
// the returned result as the kernel processes the flood; run the kernel
// (or RunSearch) to completion before reading Hits.
//
// Leaves do not flood: they hand the query to their ultrapeers, which
// answer for their own leaves' shared files (the ultrapeer indexes its
// leaves, Gnutella 0.6-style).
func (o *Overlay) Search(from underlay.HostID, item workload.ItemID) *SearchResult {
	res := &SearchResult{From: from, Item: item}
	n := o.nodes[from]
	if n == nil || !n.Host.Up {
		res.Done = true
		return res
	}
	guid := o.nextGUID()
	res.guid = guid
	n.seen[guid] = from
	o.pendingHits[guid] = res

	if n.Ultra {
		o.answerLocal(guid, n, item)
		for _, nb := range sortedIDs(n.neighbors) {
			o.forwardQuery(guid, item, from, nb, o.Cfg.QueryTTL)
		}
		return res
	}
	for _, p := range sortedIDs(n.parents) {
		o.forwardQuery(guid, item, from, p, o.Cfg.QueryTTL)
	}
	return res
}

// answerLocal reports hits among the ultrapeer's own shared files and its
// leaves' files; hits route back toward the query's origin (the routing
// recognizes when the answering node *is* the origin and delivers
// directly without messages).
func (o *Overlay) answerLocal(guid uint64, up *Node, item workload.ItemID) {
	if o.Catalog.Has(up.Host.ID, item) {
		o.sendHitBack(guid, up.Host.ID, up.Host.ID)
	}
	for _, leaf := range sortedIDs(up.leaves) {
		if o.nodes[leaf].Host.Up && o.Catalog.Has(leaf, item) {
			o.sendHitBack(guid, up.Host.ID, leaf)
		}
	}
}

// sendHitBack starts a QueryHit at node 'at' carrying 'holder' and routes
// it to the origin along the reverse path, delivering into the pending
// result when it arrives.
func (o *Overlay) sendHitBack(guid uint64, at, holder underlay.HostID) {
	n := o.nodes[at]
	if n == nil {
		return
	}
	prev, ok := n.seen[guid]
	if !ok {
		return
	}
	if prev == at {
		// We are the origin.
		if res := o.pendingHits[guid]; res != nil {
			res.Hits = append(res.Hits, holder)
		}
		return
	}
	next := o.nodes[prev]
	if next == nil || !next.Host.Up {
		return
	}
	r := o.send("queryhit", n.Host, next.Host, queryHitBytes)
	if !r.OK {
		return // hit lost mid-route
	}
	o.K.Schedule(r.Latency, func() { o.sendHitBack(guid, prev, holder) })
}

func (o *Overlay) forwardQuery(guid uint64, item workload.ItemID, from, to underlay.HostID, ttl int) {
	if ttl <= 0 {
		return
	}
	sender, recv := o.nodes[from], o.nodes[to]
	if sender == nil || recv == nil || !recv.Host.Up {
		return
	}
	r := o.send("query", sender.Host, recv.Host, queryBytes)
	if !r.OK {
		return // lost query prunes this branch of the flood
	}
	o.K.Schedule(r.Latency, func() {
		if _, dup := recv.seen[guid]; dup {
			return
		}
		recv.seen[guid] = from
		o.answerLocal(guid, recv, item)
		for _, nb := range sortedIDs(recv.neighbors) {
			if nb != from {
				o.forwardQuery(guid, item, to, nb, ttl-1)
			}
		}
	})
}

// RunSearch floods the query and runs the kernel until the flood settles,
// returning the completed result — the synchronous convenience the
// experiments use. With no other event sources it drains the kernel; when
// recurring activity (churn, mobility, meters) shares the kernel, set
// SettleTime on the overlay and RunSearch advances simulated time by that
// bound instead.
func (o *Overlay) RunSearch(from underlay.HostID, item workload.ItemID) *SearchResult {
	res := o.Search(from, item)
	if o.SettleTime > 0 {
		o.K.Run(o.K.Now() + o.SettleTime)
	} else {
		o.K.Drain()
	}
	res.Done = true
	delete(o.pendingHits, res.guid)
	return res
}

// Download picks a source among the result's hits — selector-preferred
// when the selector answers SelectSource (the biased file-exchange
// stage), uniformly at random otherwise — and transfers the file. It
// reports whether a transfer happened and whether it stayed inside one
// AS.
func (o *Overlay) Download(res *SearchResult) (ok, intraAS bool) {
	// Exclude ourselves as a source.
	var hits []underlay.HostID
	for _, h := range res.Hits {
		if h != res.From && o.U.Host(h).Up {
			hits = append(hits, h)
		}
	}
	if len(hits) == 0 {
		return false, false
	}
	requester := o.U.Host(res.From)
	var src underlay.HostID
	picked := false
	if o.Sel != nil {
		src, picked = o.Sel.SelectSource(requester, hits)
	}
	if !picked {
		src = hits[o.r.Intn(len(hits))]
	}
	source := o.U.Host(src)
	if r := o.T.Send(source, requester, o.Cfg.FileSize, "file"); !r.OK {
		return false, false // transfer lost: no download recorded
	}
	o.Downloads++
	intra := source.AS.ID == requester.AS.ID
	if intra {
		o.IntraASDownloads++
	}
	return true, intra
}

// IntraASDownloadFraction returns the share of downloads that stayed
// within one AS — the headline locality number.
func (o *Overlay) IntraASDownloadFraction() float64 {
	if o.Downloads == 0 {
		return 0
	}
	return float64(o.IntraASDownloads) / float64(o.Downloads)
}
