package gnutella

import (
	"testing"

	"unap2p/internal/core"
	"unap2p/internal/metrics"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
	"unap2p/internal/workload"
)

// build creates a 10-AS transit-stub network with hostsPerAS hosts and a
// Gnutella overlay of all-ultrapeer nodes.
func build(t *testing.T, hostsPerAS int, cfg Config, seed int64) (*underlay.Network, *Overlay) {
	t.Helper()
	src := sim.NewSource(seed)
	tcfg := topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2,
		Stubs:    10,
	}
	net := topology.TransitStub(tcfg)
	topology.PlaceHosts(net, hostsPerAS, false, 1, 5, src.Stream("place"))
	k := sim.NewKernel()
	o := New(transport.New(net, k), nil, cfg, src.Stream("overlay"))
	for _, h := range net.Hosts() {
		o.AddNode(h, true)
	}
	o.JoinAll()
	return net, o
}

func TestJoinProducesConnectedOverlay(t *testing.T) {
	net, o := build(t, 8, DefaultConfig(), 1)
	edges := o.Edges()
	if len(edges) == 0 {
		t.Fatal("no overlay edges")
	}
	comps := metrics.ComponentCount(net.NumHosts(), edges)
	if comps != 1 {
		t.Fatalf("overlay has %d components, want 1", comps)
	}
	for _, n := range o.Nodes() {
		if n.Degree() == 0 {
			t.Fatalf("node %d isolated", n.Host.ID)
		}
		if n.Degree() > o.Cfg.MaxUltraDegree+1 { // +1 for the fallback path
			t.Fatalf("node %d degree %d exceeds cap", n.Host.ID, n.Degree())
		}
	}
}

func TestBiasedJoinClustersOverlay(t *testing.T) {
	cfgU := DefaultConfig()
	netU, ovU := build(t, 8, cfgU, 2)

	cfgB := DefaultConfig()
	src := sim.NewSource(2)
	tcfg := topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 10,
	}
	netB := topology.TransitStub(tcfg)
	topology.PlaceHosts(netB, 8, false, 1, 5, src.Stream("place"))
	k := sim.NewKernel()
	ovB := New(transport.New(netB, k), core.NewOracleSelector(netB, true, false),
		cfgB, src.Stream("overlay"))
	for _, h := range netB.Hosts() {
		ovB.AddNode(h, true)
	}
	ovB.JoinAll()

	fu := metrics.IntraASEdgeFraction(ovU.Edges(), ovU.ASLabels())
	fb := metrics.IntraASEdgeFraction(ovB.Edges(), ovB.ASLabels())
	if fb <= fu {
		t.Fatalf("biased intra-AS edge fraction %.3f not above unbiased %.3f", fb, fu)
	}
	if fb < 0.5 {
		t.Fatalf("biased fraction %.3f unexpectedly low", fb)
	}
	// The caveat of §4: clustering must not disconnect the overlay.
	if c := metrics.ComponentCount(netB.NumHosts(), ovB.Edges()); c != 1 {
		t.Fatalf("biased overlay has %d components", c)
	}
	_ = netU
}

func TestPingPongCountsAndShape(t *testing.T) {
	_, o := build(t, 6, DefaultConfig(), 3)
	for _, n := range o.Nodes() {
		o.Ping(n.Host.ID)
	}
	o.K.Drain()
	ping := o.Msgs.Value("ping")
	pong := o.Msgs.Value("pong")
	if ping == 0 || pong == 0 {
		t.Fatalf("ping=%d pong=%d", ping, pong)
	}
	// Reverse-path pongs traverse ≥1 hop per reached node: pong ≥ reached
	// count and typically well above ping count at TTL 2.
	if pong <= ping {
		t.Fatalf("pong (%d) should exceed ping (%d) — reverse-path semantics", pong, ping)
	}
}

func TestSearchFindsPlacedContent(t *testing.T) {
	net, o := build(t, 6, DefaultConfig(), 4)
	// Place item 7 on three specific hosts.
	holders := []underlay.HostID{net.Hosts()[10].ID, net.Hosts()[20].ID, net.Hosts()[30].ID}
	for _, h := range holders {
		o.Catalog.Place(7, h)
	}
	res := o.RunSearch(net.Hosts()[0].ID, 7)
	if !res.Done {
		t.Fatal("search not done")
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits for flooded search")
	}
	want := map[underlay.HostID]bool{}
	for _, h := range holders {
		want[h] = true
	}
	for _, h := range res.Hits {
		if !want[h] {
			t.Fatalf("hit %d is not a holder", h)
		}
	}
	if o.Msgs.Value("query") == 0 || o.Msgs.Value("queryhit") == 0 {
		t.Fatal("no query/queryhit messages counted")
	}
}

func TestSearchSelfHolderNoMessages(t *testing.T) {
	net, o := build(t, 4, DefaultConfig(), 5)
	me := net.Hosts()[0].ID
	o.Catalog.Place(3, me)
	res := o.RunSearch(me, 3)
	found := false
	for _, h := range res.Hits {
		if h == me {
			found = true
		}
	}
	if !found {
		t.Fatal("own item not found")
	}
	// Downloading from own hit set must fail (no other source).
	if ok, _ := o.Download(res); ok {
		// Only fails if nobody else had item 3 — ensured by placement.
		t.Fatal("download from self should not happen")
	}
}

func TestDownloadBiasedPrefersSameAS(t *testing.T) {
	net, o := build(t, 6, DefaultConfig(), 6)
	o.Sel = core.NewOracleSelector(net, false, true)
	requester := net.Hosts()[0]
	sameAS := net.HostsInAS(requester.AS.ID)[1]
	other := net.Hosts()[len(net.Hosts())-1]
	res := &SearchResult{From: requester.ID, Hits: []underlay.HostID{other.ID, sameAS.ID}}
	ok, intra := o.Download(res)
	if !ok || !intra {
		t.Fatalf("biased download ok=%v intra=%v, want true,true", ok, intra)
	}
	if o.IntraASDownloadFraction() != 1 {
		t.Fatalf("intra fraction = %v", o.IntraASDownloadFraction())
	}
	if o.FileTraffic.Total() != uint64(o.Cfg.FileSize) {
		t.Fatal("file traffic not accounted")
	}
}

func TestDownloadUnbiasedUsesRandomSource(t *testing.T) {
	net, o := build(t, 6, DefaultConfig(), 7)
	requester := net.Hosts()[0]
	other1 := net.Hosts()[30]
	other2 := net.Hosts()[40]
	res := &SearchResult{From: requester.ID, Hits: []underlay.HostID{other1.ID, other2.ID}}
	for i := 0; i < 10; i++ {
		if ok, _ := o.Download(res); !ok {
			t.Fatal("download failed")
		}
	}
	if o.Downloads != 10 {
		t.Fatalf("downloads = %d", o.Downloads)
	}
}

func TestLeafRoles(t *testing.T) {
	src := sim.NewSource(8)
	net := topology.Star(4, topology.DefaultConfig())
	topology.PlaceHosts(net, 6, false, 1, 2, src.Stream("place"))
	k := sim.NewKernel()
	cfg := DefaultConfig()
	cfg.LeafParents = 1
	o := New(transport.New(net, k), nil, cfg, src.Stream("ov"))
	// First 6 hosts are ultrapeers, the rest leaves.
	for i, h := range net.Hosts() {
		o.AddNode(h, i < 6)
	}
	o.JoinAll()
	for i, n := range o.Nodes() {
		if i < 6 {
			continue
		}
		if len(n.parents) != 1 {
			t.Fatalf("leaf %d has %d parents", n.Host.ID, len(n.parents))
		}
	}
	// A leaf's content must be findable via its ultrapeer.
	leaf := o.Nodes()[10]
	o.Catalog.Place(1, leaf.Host.ID)
	searcher := o.Nodes()[11] // another leaf
	res := o.RunSearch(searcher.Host.ID, 1)
	found := false
	for _, h := range res.Hits {
		if h == leaf.Host.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("leaf content not found: hits=%v", res.Hits)
	}
}

func TestLeaveDisconnects(t *testing.T) {
	net, o := build(t, 4, DefaultConfig(), 9)
	n := o.Node(net.Hosts()[0].ID)
	nb := sortedIDs(n.neighbors)
	o.Leave(n)
	if n.Degree() != 0 {
		t.Fatal("left node keeps neighbors")
	}
	for _, id := range nb {
		if o.Node(id).neighbors[n.Host.ID] {
			t.Fatal("neighbor still points at left node")
		}
	}
}

func TestSearchFromOfflineHost(t *testing.T) {
	net, o := build(t, 4, DefaultConfig(), 10)
	h := net.Hosts()[0]
	h.Up = false
	res := o.RunSearch(h.ID, 1)
	if len(res.Hits) != 0 || !res.Done {
		t.Fatal("offline host should not search")
	}
}

func TestOfflineNodesDoNotRelay(t *testing.T) {
	net, o := build(t, 6, DefaultConfig(), 11)
	// Take half the hosts offline; searches must still terminate and only
	// report online holders.
	for i, h := range net.Hosts() {
		if i%2 == 1 {
			h.Up = false
		}
	}
	o.Catalog.Place(5, net.Hosts()[2].ID) // online holder
	o.Catalog.Place(5, net.Hosts()[3].ID) // offline holder
	res := o.RunSearch(net.Hosts()[0].ID, 5)
	for _, h := range res.Hits {
		if !net.Host(h).Up {
			t.Fatalf("offline holder %d reported", h)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		net, o := build(t, 6, DefaultConfig(), 42)
		gen := workload.NewCatalog(50)
		hosts := net.Hosts()
		r := sim.NewSource(43).Stream("content")
		workload.PopulateZipf(gen, hosts, 3, 1.0, r)
		o.Catalog = gen
		for i := 0; i < 30; i++ {
			res := o.RunSearch(hosts[i%len(hosts)].ID, workload.ItemID(i%50))
			o.Download(res)
		}
		return o.Msgs.Value("query"), o.Msgs.Value("queryhit"), o.IntraASDownloadFraction()
	}
	q1, h1, f1 := run()
	q2, h2, f2 := run()
	if q1 != q2 || h1 != h2 || f1 != f2 {
		t.Fatalf("runs diverged: (%d,%d,%v) vs (%d,%d,%v)", q1, h1, f1, q2, h2, f2)
	}
	if q1 == 0 {
		t.Fatal("no queries flowed")
	}
}

func TestAddNodePanicsOnDuplicate(t *testing.T) {
	net, o := build(t, 4, DefaultConfig(), 12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.AddNode(net.Hosts()[0], true)
}

func TestPongCachingReducesTraffic(t *testing.T) {
	flood := func(cache bool) (ping, pong uint64, learned int) {
		cfg := DefaultConfig()
		cfg.PingTTL = 3 // deployed 0.4-era TTL; caching ignores TTL by design
		cfg.PongCache = cache
		cfg.PongCacheSize = 10
		net, o := build(t, 6, cfg, 20)
		for _, n := range o.Nodes() {
			o.Ping(n.Host.ID)
		}
		o.K.Drain()
		_ = net
		learned = len(o.Nodes()[0].hostcache)
		return o.Msgs.Value("ping"), o.Msgs.Value("pong"), learned
	}
	fPing, fPong, _ := flood(false)
	cPing, cPong, cLearned := flood(true)
	if cPing >= fPing {
		t.Fatalf("cached ping count %d not below flooded %d", cPing, fPing)
	}
	if cPong >= fPong {
		t.Fatalf("cached pong count %d not below flooded %d", cPong, fPong)
	}
	if cLearned == 0 {
		t.Fatal("pong caching taught no addresses")
	}
}

func TestPongCacheRespectsLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PongCache = true
	cfg.PongCacheSize = 2
	_, o := build(t, 6, cfg, 21)
	n := o.Nodes()[0]
	o.Ping(n.Host.ID)
	o.K.Drain()
	// At most 2 pongs per neighbor.
	if got, max := o.Msgs.Value("pong"), uint64(2*n.Degree()); got > max {
		t.Fatalf("pongs %d exceed limit %d", got, max)
	}
}

func TestLearnDeduplicatesAndCaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostcacheSize = 3
	net, o := build(t, 4, cfg, 22)
	n := o.Nodes()[0]
	n.hostcache = nil
	o.learn(n, net.Hosts()[1].ID)
	o.learn(n, net.Hosts()[1].ID) // duplicate
	o.learn(n, n.Host.ID)         // self
	if len(n.hostcache) != 1 {
		t.Fatalf("hostcache = %v", n.hostcache)
	}
	o.learn(n, net.Hosts()[2].ID)
	o.learn(n, net.Hosts()[3].ID)
	o.learn(n, net.Hosts()[4].ID) // over cap
	if len(n.hostcache) != 3 {
		t.Fatalf("hostcache size = %d, want cap 3", len(n.hostcache))
	}
}

func TestAdaptRoundImprovesMatching(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostcacheSize = 200
	net, o := build(t, 8, cfg, 30)
	before := o.MeanNeighborRTT()
	totalRewires := 0
	for i := 0; i < 8; i++ {
		totalRewires += o.AdaptRound(DefaultAdaptConfig())
	}
	after := o.MeanNeighborRTT()
	if totalRewires == 0 {
		t.Fatal("no rewires happened")
	}
	if after >= before {
		t.Fatalf("mean neighbor RTT did not improve: %.1f → %.1f", before, after)
	}
	// Connectivity preserved and degrees respected.
	if c := metrics.ComponentCount(net.NumHosts(), o.Edges()); c != 1 {
		t.Fatalf("adaptation fragmented the overlay into %d components", c)
	}
	for _, n := range o.Nodes() {
		if n.Degree() < 1 {
			t.Fatalf("node %d isolated after adaptation", n.Host.ID)
		}
	}
	if o.Msgs.Value("probe") == 0 {
		t.Fatal("no probe overhead recorded")
	}
}

func TestAdaptRoundConverges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostcacheSize = 200
	_, o := build(t, 6, cfg, 31)
	acfg := DefaultAdaptConfig()
	// Run until quiescent; rewires must reach zero (hysteresis works).
	for i := 0; i < 40; i++ {
		if o.AdaptRound(acfg) == 0 {
			return
		}
	}
	t.Fatal("adaptation never converged")
}

func TestAdaptRespectsMinDegree(t *testing.T) {
	cfg := DefaultConfig()
	_, o := build(t, 4, cfg, 32)
	acfg := DefaultAdaptConfig()
	acfg.MinDegree = 3
	for i := 0; i < 10; i++ {
		o.AdaptRound(acfg)
	}
	for _, n := range o.Nodes() {
		if n.Host.Up && n.Degree() < 2 {
			t.Fatalf("node %d degree %d below protection", n.Host.ID, n.Degree())
		}
	}
}
