package gnutella

import (
	"unap2p/internal/underlay"
)

// Location-aware topology matching (Liu et al., INFOCOM 2004 — "LTM",
// [21] in the paper — and the measurement-based construction of Zhang et
// al. [35], "MBC"): instead of biasing the overlay at join time, nodes
// continuously *measure* their neighbors, cut the worst-matched (slowest)
// connection, and reconnect to a measured-closer peer. The overlay
// converges toward the underlay without any ISP cooperation.

// probeBytes is the size of one measurement probe.
const probeBytes = 40

// AdaptConfig tunes topology matching.
type AdaptConfig struct {
	// Candidates is how many Hostcache entries a node probes per round.
	Candidates int
	// Improvement is the minimum relative RTT gain (e.g. 0.2 = 20%)
	// before a node cuts its worst link — hysteresis against flapping.
	Improvement float64
	// MinDegree protects connectivity: no cut may drop either endpoint
	// below this degree.
	MinDegree int
}

// DefaultAdaptConfig mirrors LTM's conservative settings.
func DefaultAdaptConfig() AdaptConfig {
	return AdaptConfig{Candidates: 5, Improvement: 0.2, MinDegree: 2}
}

// AdaptRound performs one topology-matching round over every online
// ultrapeer (in deterministic order): measure all neighbors, probe a few
// Hostcache candidates, and replace the worst neighbor with a clearly
// closer candidate. It returns the number of rewires performed. Probes
// are real messages: they are counted under "probe" and charged to the
// underlay — the measurement overhead §3.2 warns about.
func (o *Overlay) AdaptRound(cfg AdaptConfig) int {
	rewires := 0
	for _, id := range o.order {
		n := o.nodes[id]
		if !n.Ultra || !n.Host.Up || n.Degree() == 0 {
			continue
		}
		// Measure current neighbors (one probe pair each).
		var worst underlay.HostID
		worstRTT := -1.0
		for _, nb := range sortedIDs(n.neighbors) {
			peer := o.nodes[nb]
			if !peer.Host.Up {
				continue
			}
			rtt, ok := o.probe(n, peer)
			if !ok {
				continue // probe lost: this neighbor goes unmeasured this round
			}
			if rtt > worstRTT {
				worst, worstRTT = nb, rtt
			}
		}
		if worstRTT < 0 || n.Degree() <= cfg.MinDegree {
			continue
		}
		if o.nodes[worst].Degree() <= cfg.MinDegree {
			continue
		}
		// Probe a few candidates from the Hostcache.
		var best underlay.HostID
		bestRTT := worstRTT
		probed := 0
		for _, cand := range n.hostcache {
			if probed >= cfg.Candidates {
				break
			}
			c := o.nodes[cand]
			if c == nil || !c.Ultra || !c.Host.Up || n.neighbors[cand] || cand == n.Host.ID {
				continue
			}
			if c.Degree() >= o.Cfg.MaxUltraDegree {
				continue
			}
			probed++ // the probe budget is spent even if the probe is lost
			if rtt, ok := o.probe(n, c); ok && rtt < bestRTT {
				best, bestRTT = cand, rtt
			}
		}
		if best == 0 && bestRTT == worstRTT {
			continue
		}
		if worstRTT-bestRTT < cfg.Improvement*worstRTT {
			continue // not enough gain to justify a rewire
		}
		// Rewire: cut the worst link, adopt the better candidate.
		delete(n.neighbors, worst)
		delete(o.nodes[worst].neighbors, n.Host.ID)
		n.neighbors[best] = true
		o.nodes[best].neighbors[n.Host.ID] = true
		rewires++
	}
	return rewires
}

// probe measures the RTT between two nodes with a real probe/response
// pair through the transport; ok is false when either leg was lost.
func (o *Overlay) probe(a, b *Node) (float64, bool) {
	r := o.T.Probe(a.Host, b.Host, probeBytes)
	return float64(r.Latency), r.OK
}

// MeanNeighborRTT reports the average RTT across live overlay links —
// the topology-mismatch metric LTM optimizes.
func (o *Overlay) MeanNeighborRTT() float64 {
	var sum float64
	n := 0
	for _, id := range o.order {
		node := o.nodes[id]
		for nb := range node.neighbors {
			if id < nb { // each edge once
				sum += float64(o.U.RTT(node.Host, o.nodes[nb].Host))
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
