package gnutella

import (
	"testing"

	"unap2p/internal/core"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/workload"
)

func benchOverlay(b *testing.B, biased bool) *Overlay {
	b.Helper()
	src := sim.NewSource(1)
	net := topology.TransitStub(topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 10,
	})
	hosts := topology.PlaceHosts(net, 10, false, 1, 5, src.Stream("place"))
	k := sim.NewKernel()
	cfg := DefaultConfig()
	var sel core.Selector
	if biased {
		sel = core.NewOracleSelector(net, true, false)
	}
	o := New(transport.New(net, k), sel, cfg, src.Stream("overlay"))
	for _, h := range hosts {
		o.AddNode(h, true)
	}
	o.JoinAll()
	c := workload.NewCatalog(50)
	workload.PopulateZipf(c, hosts, 3, 1.0, src.Stream("content"))
	o.Catalog = c
	return o
}

// BenchmarkSearchFlood measures one TTL-limited query flood + hit routing
// over a 100-node ultrapeer mesh.
func BenchmarkSearchFlood(b *testing.B) {
	o := benchOverlay(b, false)
	nodes := o.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.RunSearch(nodes[i%len(nodes)].Host.ID, workload.ItemID(i%50))
	}
}

// BenchmarkPingFlood measures a discovery flood with reverse-path pongs.
func BenchmarkPingFlood(b *testing.B) {
	o := benchOverlay(b, false)
	nodes := o.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Ping(nodes[i%len(nodes)].Host.ID)
		o.K.Drain()
	}
}

// BenchmarkJoinAll measures overlay construction (hostcache sampling +
// neighbor selection) for 100 nodes.
func BenchmarkJoinAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchOverlay(b, true)
	}
}
