package geotree

import (
	"testing"

	"unap2p/internal/core"
	"unap2p/internal/geo"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
)

func benchTree(b *testing.B) (*Tree, geo.Coord) {
	b.Helper()
	src := sim.NewSource(1)
	net := topology.Star(8, topology.DefaultConfig())
	topology.PlaceHosts(net, 40, false, 1, 5, src.Stream("place"))
	tr := New(transport.Over(net), core.GeoSelector{}, DefaultConfig())
	for _, h := range net.Hosts() {
		tr.Insert(h)
	}
	h0 := net.Hosts()[0]
	return tr, geo.Coord{Lat: h0.Lat, Lon: h0.Lon}
}

// BenchmarkSearchBox measures a 200 km area query over 280 peers.
func BenchmarkSearchBox(b *testing.B) {
	tr, center := benchTree(b)
	from := tr.U.Hosts()[0]
	box := geo.BoxAround(center, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SearchBox(from, box)
	}
}

// BenchmarkInsertRemove measures registration churn.
func BenchmarkInsertRemove(b *testing.B) {
	tr, _ := benchTree(b)
	h := tr.U.Hosts()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Remove(h)
		tr.Insert(h)
	}
}
