// Package geotree implements a Globase.KOM-style hierarchical, tree-based
// geolocation overlay (Kovacevic et al., IEEE P2P 2007 — [19] in the
// paper): the world is divided into rectangular zones arranged in a tree;
// each zone has a supervisor peer; peers register in the leaf zone
// containing their position; location-constrained search ("fully
// retrievable location-based search") descends only into zones that
// intersect the query area.
package geotree

import (
	"fmt"

	"unap2p/internal/core"
	"unap2p/internal/geo"
	"unap2p/internal/metrics"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Config tunes the tree.
type Config struct {
	// SplitThreshold is the zone population that triggers a 4-way split.
	SplitThreshold int
	// MaxDepth bounds splitting (a zone at MaxDepth grows unbounded).
	MaxDepth int
	// MsgBytes is the size of one control message.
	MsgBytes uint64
}

// DefaultConfig uses small zones suitable for simulated populations.
func DefaultConfig() Config {
	return Config{SplitThreshold: 8, MaxDepth: 8, MsgBytes: 80}
}

// zone is one node of the area tree.
type zone struct {
	box        geo.Box
	depth      int
	supervisor underlay.HostID
	hasSuper   bool
	members    []underlay.HostID // leaf only
	children   []*zone           // nil for leaf
}

// Tree is the overlay instance.
type Tree struct {
	// T carries control messages; U serves topology queries.
	T   transport.Messenger
	U   *underlay.Network
	Cfg Config
	// Msgs counts control messages ("register", "search", "result",
	// "geocast") — a view of the transport's counters.
	Msgs *metrics.CounterSet

	root  *zone
	where map[underlay.HostID]*zone
	sel   core.Selector
	// suspected and evicted track failure-detector verdicts (see
	// heal.go); nil until the resilience layer delivers one.
	suspected, evicted map[underlay.HostID]bool
}

// New creates a tree covering the whole globe, sending through tr. The
// selector's Position verb supplies peer coordinates (a core.GeoSelector
// for perfect GPS fixes; wrap it to model mapping error); a nil selector
// — or one with no position answer — falls back to ground truth.
func New(tr transport.Messenger, sel core.Selector, cfg Config) *Tree {
	if cfg.SplitThreshold < 2 {
		panic("geotree: SplitThreshold must be ≥ 2")
	}
	return &Tree{
		T:    tr,
		U:    tr.Underlay(),
		Cfg:  cfg,
		Msgs: tr.Counters(),
		root: &zone{
			box: geo.Box{MinLat: -90, MaxLat: 90, MinLon: -180, MaxLon: 180},
		},
		where: make(map[underlay.HostID]*zone),
		sel:   sel,
	}
}

// pos returns h's position as the selector believes it, falling back to
// ground truth when no selector answers.
func (t *Tree) pos(h *underlay.Host) geo.Coord {
	if t.sel != nil {
		if c, ok := t.sel.Position(h); ok {
			return c
		}
	}
	return geo.Coord{Lat: h.Lat, Lon: h.Lon}
}

// Size returns the number of registered peers.
func (t *Tree) Size() int { return len(t.where) }

// Insert registers a host at its ground-truth position, counting the
// registration messages along the supervisor chain from the root to the
// responsible leaf.
func (t *Tree) Insert(h *underlay.Host) {
	if _, dup := t.where[h.ID]; dup {
		panic(fmt.Sprintf("geotree: host %d already registered", h.ID))
	}
	pos := t.pos(h)
	z := t.root
	for {
		// One register-hop message per level (client → zone supervisor).
		if z.hasSuper && z.supervisor != h.ID {
			// Best effort: a lost register-hop is simply not re-sent.
			t.T.Send(h, t.U.Host(z.supervisor), t.Cfg.MsgBytes, "register")
		}
		if z.children == nil {
			break
		}
		z = z.childFor(pos)
	}
	z.members = append(z.members, h.ID)
	t.where[h.ID] = z
	if !z.hasSuper {
		z.supervisor = h.ID
		z.hasSuper = true
	}
	if len(z.members) > t.Cfg.SplitThreshold && z.depth < t.Cfg.MaxDepth {
		t.split(z)
	}
}

// Remove deregisters a host (churn). Supervisors of emptied zones are
// reassigned from remaining members when possible.
func (t *Tree) Remove(h *underlay.Host) {
	z, ok := t.where[h.ID]
	if !ok {
		return
	}
	delete(t.where, h.ID)
	for i, id := range z.members {
		if id == h.ID {
			z.members = append(z.members[:i], z.members[i+1:]...)
			break
		}
	}
	if z.hasSuper && z.supervisor == h.ID {
		if len(z.members) > 0 {
			z.supervisor = z.members[0]
		} else {
			z.hasSuper = false
		}
	}
}

func (t *Tree) split(z *zone) {
	midLat := (z.box.MinLat + z.box.MaxLat) / 2
	midLon := (z.box.MinLon + z.box.MaxLon) / 2
	boxes := []geo.Box{
		{MinLat: z.box.MinLat, MaxLat: midLat, MinLon: z.box.MinLon, MaxLon: midLon},
		{MinLat: z.box.MinLat, MaxLat: midLat, MinLon: midLon, MaxLon: z.box.MaxLon},
		{MinLat: midLat, MaxLat: z.box.MaxLat, MinLon: z.box.MinLon, MaxLon: midLon},
		{MinLat: midLat, MaxLat: z.box.MaxLat, MinLon: midLon, MaxLon: z.box.MaxLon},
	}
	z.children = make([]*zone, 4)
	for i, b := range boxes {
		z.children[i] = &zone{box: b, depth: z.depth + 1}
	}
	members := z.members
	z.members = nil
	for _, id := range members {
		h := t.U.Host(id)
		c := z.childFor(t.pos(h))
		c.members = append(c.members, id)
		t.where[id] = c
		if !c.hasSuper {
			c.supervisor = id
			c.hasSuper = true
		}
	}
}

// childFor returns the child zone containing pos (boundary points go to
// the higher-index child deterministically).
func (z *zone) childFor(pos geo.Coord) *zone {
	midLat := (z.box.MinLat + z.box.MaxLat) / 2
	midLon := (z.box.MinLon + z.box.MaxLon) / 2
	idx := 0
	if pos.Lat >= midLat {
		idx += 2
	}
	if pos.Lon >= midLon {
		idx++
	}
	return z.children[idx]
}

// SearchStats reports the cost of one area search.
type SearchStats struct {
	// Msgs is the number of overlay messages exchanged.
	Msgs int
	// Latency approximates the search time: the longest root-to-leaf
	// message chain plus result return.
	Latency sim.Duration
	// ZonesVisited counts tree nodes touched.
	ZonesVisited int
}

// SearchBox returns every registered peer inside the box, by descending
// from the root only into intersecting zones — the pruning that makes
// location-constrained queries cheap.
func (t *Tree) SearchBox(from *underlay.Host, box geo.Box) ([]underlay.HostID, SearchStats) {
	var out []underlay.HostID
	var st SearchStats
	var walk func(z *zone, chain sim.Duration)
	walk = func(z *zone, chain sim.Duration) {
		st.ZonesVisited++
		if !boxesIntersect(z.box, box) {
			return
		}
		hop := chain
		if z.hasSuper {
			st.Msgs++
			sr := t.T.Send(from, t.U.Host(z.supervisor), t.Cfg.MsgBytes, "search")
			if !sr.OK {
				return // lost search prunes this subtree from the query
			}
			hop = chain + sr.Latency
			if hop > st.Latency {
				st.Latency = hop
			}
		}
		if z.children == nil {
			for _, id := range z.members {
				h := t.U.Host(id)
				if h.Up && box.Contains(t.pos(h)) {
					st.Msgs++
					if rr := t.T.Send(h, from, t.Cfg.MsgBytes, "result"); rr.OK {
						out = append(out, id)
					}
				}
			}
			return
		}
		for _, c := range z.children {
			walk(c, hop)
		}
	}
	walk(t.root, 0)
	return out, st
}

// NearestPeer finds the registered peer geographically closest to pos by
// expanding-ring box searches — the point-of-interest primitive of §2.4.
func (t *Tree) NearestPeer(from *underlay.Host, pos geo.Coord) (underlay.HostID, SearchStats, bool) {
	var total SearchStats
	for radius := 50.0; radius <= 25600; radius *= 2 {
		hits, st := t.SearchBox(from, geo.BoxAround(pos, radius))
		total.Msgs += st.Msgs
		total.ZonesVisited += st.ZonesVisited
		total.Latency += st.Latency
		if len(hits) > 0 {
			best := hits[0]
			bestD := 1e18
			for _, id := range hits {
				h := t.U.Host(id)
				if d := geo.Haversine(pos, t.pos(h)); d < bestD {
					best, bestD = id, d
				}
			}
			return best, total, true
		}
	}
	return 0, total, false
}

// Depth returns the current tree depth (diagnostics).
func (t *Tree) Depth() int {
	var walk func(z *zone) int
	walk = func(z *zone) int {
		if z.children == nil {
			return z.depth
		}
		max := z.depth
		for _, c := range z.children {
			if d := walk(c); d > max {
				max = d
			}
		}
		return max
	}
	return walk(t.root)
}

func boxesIntersect(a, b geo.Box) bool {
	return a.MinLat <= b.MaxLat && b.MinLat <= a.MaxLat &&
		a.MinLon <= b.MaxLon && b.MinLon <= a.MaxLon
}

// Geocast delivers a message to every online peer inside the box — the
// "information dissemination based on geographical information" of
// GeoPeer (Araujo & Rodrigues, [2] in the paper). Routing descends the
// zone tree like SearchBox, but the payload fans out supervisor→member
// instead of members replying to the querier.
func (t *Tree) Geocast(from *underlay.Host, box geo.Box, payloadBytes uint64) (int, SearchStats) {
	var st SearchStats
	reached := 0
	var walk func(z *zone, chain sim.Duration)
	walk = func(z *zone, chain sim.Duration) {
		st.ZonesVisited++
		if !boxesIntersect(z.box, box) {
			return
		}
		hop := chain
		if z.hasSuper && z.supervisor != from.ID {
			st.Msgs++
			sr := t.T.Send(from, t.U.Host(z.supervisor), payloadBytes, "geocast")
			if !sr.OK {
				return // payload lost: this subtree goes unreached
			}
			hop = chain + sr.Latency
		}
		if z.children == nil {
			sup := t.U.Host(z.supervisor)
			for _, id := range z.members {
				h := t.U.Host(id)
				if !h.Up || !box.Contains(t.pos(h)) {
					continue
				}
				if id == z.supervisor || id == from.ID {
					reached++ // already holds the payload
					continue
				}
				st.Msgs++
				sr := t.T.Send(sup, h, payloadBytes, "geocast")
				if !sr.OK {
					continue // member missed the fan-out
				}
				reached++
				if d := hop + sr.Latency; d > st.Latency {
					st.Latency = d
				}
			}
			return
		}
		for _, c := range z.children {
			walk(c, hop)
		}
	}
	walk(t.root, 0)
	return reached, st
}

// HealthStats implements the telemetry HealthReporter hook: shape gauges
// of the zone tree (pure reads via a deterministic pre-order walk).
//
//   - peers: registered population
//   - zones / leaf_zones: tree size and its frontier
//   - max_depth: deepest split so far
//   - members_per_leaf_mean: mean occupancy of populated leaf zones
func (t *Tree) HealthStats() map[string]float64 {
	var zones, leaves, populated, members float64
	maxDepth := 0
	var walk func(z *zone)
	walk = func(z *zone) {
		zones++
		if z.depth > maxDepth {
			maxDepth = z.depth
		}
		if z.children == nil {
			leaves++
			if len(z.members) > 0 {
				populated++
				members += float64(len(z.members))
			}
			return
		}
		for _, c := range z.children {
			walk(c)
		}
	}
	walk(t.root)
	out := map[string]float64{
		"peers":      float64(t.Size()),
		"zones":      zones,
		"leaf_zones": leaves,
		"max_depth":  float64(maxDepth),
	}
	if populated > 0 {
		out["members_per_leaf_mean"] = members / populated
	}
	return out
}
