package geotree

import (
	"testing"

	"unap2p/internal/core"
	"unap2p/internal/geo"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

func buildTree(t *testing.T, hostsPerAS int) (*underlay.Network, *Tree) {
	t.Helper()
	src := sim.NewSource(1)
	net := topology.Star(6, topology.DefaultConfig())
	topology.PlaceHosts(net, hostsPerAS, false, 1, 3, src.Stream("place"))
	tr := New(transport.Over(net), core.GeoSelector{}, DefaultConfig())
	for _, h := range net.Hosts() {
		tr.Insert(h)
	}
	return net, tr
}

func TestInsertAndSize(t *testing.T) {
	net, tr := buildTree(t, 10)
	if tr.Size() != net.NumHosts() {
		t.Fatalf("size = %d, want %d", tr.Size(), net.NumHosts())
	}
	if tr.Msgs.Value("register") == 0 {
		t.Fatal("no registration messages counted")
	}
}

func TestInsertPanicsOnDuplicate(t *testing.T) {
	net, tr := buildTree(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert(net.Hosts()[0])
}

func TestTreeSplits(t *testing.T) {
	_, tr := buildTree(t, 10) // 50 hosts ≫ SplitThreshold 8
	if tr.Depth() == 0 {
		t.Fatal("tree never split")
	}
}

func TestSearchBoxExactness(t *testing.T) {
	net, tr := buildTree(t, 10)
	from := net.Hosts()[0]
	box := geo.Box{MinLat: -30, MaxLat: 30, MinLon: -60, MaxLon: 60}
	hits, st := tr.SearchBox(from, box)
	// Ground truth by linear scan.
	want := map[underlay.HostID]bool{}
	for _, h := range net.Hosts() {
		if h.Up && box.Contains(geo.Coord{Lat: h.Lat, Lon: h.Lon}) {
			want[h.ID] = true
		}
	}
	if len(hits) != len(want) {
		t.Fatalf("search found %d, want %d", len(hits), len(want))
	}
	for _, id := range hits {
		if !want[id] {
			t.Fatalf("false positive %d", id)
		}
	}
	if st.Msgs == 0 || st.ZonesVisited == 0 {
		t.Fatalf("no cost recorded: %+v", st)
	}
}

func TestSearchPrunesZones(t *testing.T) {
	net, tr := buildTree(t, 20)
	from := net.Hosts()[0]
	// A tiny box must visit far fewer zones than the whole world.
	_, small := tr.SearchBox(from, geo.BoxAround(geo.Coord{Lat: 0, Lon: 0}, 100))
	_, world := tr.SearchBox(from, geo.Box{MinLat: -90, MaxLat: 90, MinLon: -180, MaxLon: 180})
	if small.ZonesVisited >= world.ZonesVisited {
		t.Fatalf("no pruning: %d vs %d zones", small.ZonesVisited, world.ZonesVisited)
	}
}

func TestSearchSkipsOfflinePeers(t *testing.T) {
	net, tr := buildTree(t, 6)
	for _, h := range net.Hosts() {
		h.Up = false
	}
	hits, _ := tr.SearchBox(net.Hosts()[0], geo.Box{MinLat: -90, MaxLat: 90, MinLon: -180, MaxLon: 180})
	if len(hits) != 0 {
		t.Fatalf("found %d offline peers", len(hits))
	}
}

func TestRemoveAndSupervisorHandoff(t *testing.T) {
	net, tr := buildTree(t, 6)
	h := net.Hosts()[0]
	tr.Remove(h)
	if tr.Size() != net.NumHosts()-1 {
		t.Fatalf("size after remove = %d", tr.Size())
	}
	// Removed peer must no longer be findable.
	hits, _ := tr.SearchBox(net.Hosts()[1], geo.Box{MinLat: -90, MaxLat: 90, MinLon: -180, MaxLon: 180})
	for _, id := range hits {
		if id == h.ID {
			t.Fatal("removed peer still found")
		}
	}
	// Removing again is a no-op.
	tr.Remove(h)
}

func TestNearestPeer(t *testing.T) {
	net, tr := buildTree(t, 10)
	target := geo.Coord{Lat: net.Hosts()[7].Lat, Lon: net.Hosts()[7].Lon}
	id, st, ok := tr.NearestPeer(net.Hosts()[0], target)
	if !ok {
		t.Fatal("nearest peer not found")
	}
	got := net.Host(id)
	gotD := geo.Haversine(target, geo.Coord{Lat: got.Lat, Lon: got.Lon})
	// The true nearest is host 7 itself (distance 0) — but any peer at
	// distance 0..(first ring) is acceptable only if no closer exists.
	for _, h := range net.Hosts() {
		d := geo.Haversine(target, geo.Coord{Lat: h.Lat, Lon: h.Lon})
		if d < gotD-1e-9 {
			t.Fatalf("peer %d at %.1f km closer than returned %.1f km", h.ID, d, gotD)
		}
	}
	if st.Msgs == 0 {
		t.Fatal("no search cost recorded")
	}
}

func TestNearestPeerEmptyTree(t *testing.T) {
	src := sim.NewSource(2)
	net := topology.Star(3, topology.DefaultConfig())
	topology.PlaceHosts(net, 2, false, 1, 2, src.Stream("p"))
	tr := New(transport.Over(net), core.GeoSelector{}, DefaultConfig())
	_, _, ok := tr.NearestPeer(net.Hosts()[0], geo.Coord{})
	if ok {
		t.Fatal("found a peer in an empty tree")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil, nil, Config{SplitThreshold: 1})
}

func TestGeocastReachesAreaPeers(t *testing.T) {
	net, tr := buildTree(t, 10)
	from := net.Hosts()[0]
	box := geo.Box{MinLat: -40, MaxLat: 40, MinLon: -80, MaxLon: 80}
	reached, st := tr.Geocast(from, box, 512)
	// Ground truth.
	want := 0
	for _, h := range net.Hosts() {
		if h.Up && box.Contains(geo.Coord{Lat: h.Lat, Lon: h.Lon}) {
			want++
		}
	}
	if reached != want {
		t.Fatalf("geocast reached %d, want %d", reached, want)
	}
	if st.Msgs == 0 || st.Latency <= 0 {
		t.Fatalf("no cost recorded: %+v", st)
	}
	// Message count stays near the recipient count (tree overhead only),
	// far below a naive unicast-to-everyone broadcast.
	if st.Msgs > want+3*st.ZonesVisited {
		t.Fatalf("geocast used %d messages for %d recipients", st.Msgs, want)
	}
}

func TestGeocastSkipsOffline(t *testing.T) {
	net, tr := buildTree(t, 6)
	for _, h := range net.Hosts() {
		h.Up = false
	}
	reached, _ := tr.Geocast(net.Hosts()[0], geo.Box{MinLat: -90, MaxLat: 90, MinLon: -180, MaxLon: 180}, 100)
	if reached != 0 {
		t.Fatalf("geocast reached %d offline peers", reached)
	}
}
