package geotree

import (
	"sort"

	"unap2p/internal/resilience"
	"unap2p/internal/underlay"
)

// This file implements the resilience.Healer Suspect/Evict/Replace
// contract for the Globase.KOM-style tree: eviction deregisters the
// dead peer and re-attaches a live supervisor to every zone — leaf or
// internal — the dead peer supervised, elected through the selector's
// ElectSuperPeer verb when one is wired. Internal zones matter: splits
// leave ancestor zones supervised by hosts that migrated into children,
// so a crash can orphan several levels at once.

var _ resilience.Healer = (*Tree)(nil)

// Suspect records an advisory verdict; the tree is untouched until
// eviction because suspicion can be recanted.
func (t *Tree) Suspect(id underlay.HostID) {
	if t.suspected == nil {
		t.suspected = make(map[underlay.HostID]bool)
	}
	t.suspected[id] = true
}

// Evict deregisters the dead peer and repairs every zone it
// supervised. Idempotent.
func (t *Tree) Evict(id underlay.HostID) {
	if t.evicted[id] {
		return
	}
	if t.evicted == nil {
		t.evicted = make(map[underlay.HostID]bool)
	}
	t.evicted[id] = true
	delete(t.suspected, id)
	t.Remove(t.U.Host(id))
	var walk func(z *zone)
	walk = func(z *zone) {
		if z.hasSuper && z.supervisor == id {
			t.reassign(z)
		}
		for _, c := range z.children {
			walk(c)
		}
	}
	walk(t.root)
}

// reassign elects a new supervisor for z from the live members of its
// subtree (pre-order, so leaf members serve their own zone first); an
// empty subtree leaves the zone unsupervised until the next Insert.
func (t *Tree) reassign(z *zone) {
	var hosts []*underlay.Host
	var collect func(z *zone)
	collect = func(z *zone) {
		for _, id := range z.members {
			h := t.U.Host(id)
			if h.Up && !t.evicted[id] {
				hosts = append(hosts, h)
			}
		}
		for _, c := range z.children {
			collect(c)
		}
	}
	collect(z)
	if len(hosts) == 0 {
		z.hasSuper = false
		return
	}
	super := hosts[0]
	if t.sel != nil {
		if h, ok := t.sel.ElectSuperPeer(hosts); ok {
			super = h
		}
	}
	z.supervisor = super.ID
	z.hasSuper = true
}

// Evicted returns the peers evicted so far, sorted.
func (t *Tree) Evicted() []underlay.HostID {
	out := make([]underlay.HostID, 0, len(t.evicted))
	for id := range t.evicted {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Refs returns every peer referenced by the tree — zone members and
// supervisors at every level — deduped and sorted: the reference set
// chaos invariants sweep for dead peers.
func (t *Tree) Refs() []underlay.HostID {
	set := make(map[underlay.HostID]bool)
	var walk func(z *zone)
	walk = func(z *zone) {
		if z.hasSuper {
			set[z.supervisor] = true
		}
		for _, id := range z.members {
			set[id] = true
		}
		for _, c := range z.children {
			walk(c)
		}
	}
	walk(t.root)
	out := make([]underlay.HostID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
