package chord

import (
	"reflect"
	"testing"

	"unap2p/internal/megascale"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// buildCompactRing wires a small sharded stack: star underlay, peer
// table, partition, kernel, transport, ring.
func buildCompactRing(t *testing.T, perAS, K int, seed uint64, aware bool) (*CompactRing, *transport.ShardedNet) {
	t.Helper()
	u := underlay.New()
	transit := u.AddAS(underlay.TransitISP, 2)
	for i := 0; i < 4; i++ {
		stub := u.AddAS(underlay.LocalISP, 4)
		u.ConnectTransit(stub, transit, 10)
	}
	u.ComputeRoutes()
	pt := underlay.NewPeerTable(u, 4*perAS)
	for as := 1; as <= 4; as++ {
		for j := 0; j < perAS; j++ {
			pt.AddPeer(as, sim.Duration(2+j%4))
		}
	}
	part := underlay.PartitionASes(u.NumASes(),
		func(as int) int { return pt.PeersPerAS()[int32(as)] }, K)
	window := underlay.MinCrossShardLatency(pt, part)
	if window <= 0 {
		window = 5
	}
	sk := sim.NewSharded(K, window)
	net := transport.NewShardedNet(u, pt, part, sk, []string{"req", "rep"})
	cfg := DefaultCompactConfig()
	cfg.Aware = aware
	c := NewCompactRing(net, cfg, seed, 0, 1)
	c.Bootstrap(seed ^ 0x5eed)
	return c, net
}

// TestCompactRingGroundTruth brute-forces the ring predecessor and
// successor for a spread of targets.
func TestCompactRingGroundTruth(t *testing.T) {
	c, net := buildCompactRing(t, 16, 1, 3, false)
	n := net.Peers().Len()
	ids := make([]uint64, n)
	for p := 0; p < n; p++ {
		ids[p] = uint64(c.ID(underlay.PeerID(p)))
	}
	for i := 0; i < 200; i++ {
		target := megascale.Mix64(uint64(i) ^ 0xfeed)
		var pred, succ uint64
		pd, sd := ^uint64(0), ^uint64(0)
		for _, id := range ids {
			if d := megascale.CWDist(id, target-1); d < pd {
				pred, pd = id, d
			}
			if d := megascale.CWDist(target, id); d < sd {
				succ, sd = id, d
			}
		}
		if got := uint64(c.PredecessorGlobal(ID(target))); got != pred {
			t.Fatalf("target %x: PredecessorGlobal %x, brute %x", target, got, pred)
		}
		if got := uint64(c.SuccessorGlobal(ID(target))); got != succ {
			t.Fatalf("target %x: SuccessorGlobal %x, brute %x", target, got, succ)
		}
	}
}

// TestCompactRingLookupExact runs lookups from every peer on a static
// (no churn) ring and requires every one to converge on the exact ring
// predecessor — the acceptance bar for the Chord port.
func TestCompactRingLookupExact(t *testing.T) {
	c, net := buildCompactRing(t, 32, 2, 11, false)
	pt := net.Peers()
	for p := 0; p < pt.Len(); p++ {
		p := underlay.PeerID(p)
		target := ID(megascale.Mix64(uint64(p) ^ 0xabcd))
		net.Kernel().Shard(net.ShardOf(p)).Schedule(sim.Duration(int(p)%16), func() {
			c.Lookup(p, target, func(r megascale.Result) {
				if uint64(c.ID(r.Best)) != uint64(c.PredecessorGlobal(target)) != !r.OK {
					t.Errorf("peer %d: OK=%v disagrees with ground truth", r.Origin, r.OK)
				}
			})
		})
	}
	net.Kernel().Drain()
	st := c.Stats()
	if st.Done != uint64(pt.Len()) {
		t.Fatalf("completed %d of %d lookups", st.Done, pt.Len())
	}
	if rate := st.SuccessRate(); rate != 1 {
		t.Fatalf("exact rate %.4f != 1.0 on a static ring", rate)
	}
	if st.MeanHops() <= 0 {
		t.Fatal("no hops recorded")
	}
	if net.Stats().Msgs == 0 {
		t.Fatal("no transport traffic recorded")
	}
}

// TestCompactRingDeterministicAcrossK pins both halves of the kernel
// contract: each K reproduces itself bit-for-bit, and the workload-level
// outcomes (lookups done, exactness) agree between K=1 (the legacy
// single-kernel schedule) and K=4.
func TestCompactRingDeterministicAcrossK(t *testing.T) {
	run := func(K int) (megascale.Stats, transport.NetStats, sim.Time) {
		c, net := buildCompactRing(t, 24, K, 21, false)
		pt := net.Peers()
		megascale.AttachChurn(net, 77, megascale.ChurnConfig{
			Frac: 5, MeanOn: 400, MeanOff: 150,
		})
		for p := 0; p < pt.Len(); p += 3 {
			p := underlay.PeerID(p)
			net.Kernel().Shard(net.ShardOf(p)).Schedule(sim.Duration(int(p)), func() {
				c.Query(p, 0x777^uint64(p), nil)
			})
		}
		end := net.Kernel().Run(2000)
		return c.Stats(), net.Stats(), end
	}
	s1, n1, e1 := run(1)
	s1b, n1b, e1b := run(1)
	if s1 != s1b || !reflect.DeepEqual(n1, n1b) || e1 != e1b {
		t.Fatalf("K=1 not reproducible: %+v vs %+v", s1, s1b)
	}
	s4, n4, e4 := run(4)
	s4b, n4b, e4b := run(4)
	if s4 != s4b || !reflect.DeepEqual(n4, n4b) || e4 != e4b {
		t.Fatalf("K=4 not reproducible: %+v vs %+v", s4, s4b)
	}
	if s1.Done == 0 {
		t.Fatal("no lookups completed under churn")
	}
	// K is a performance knob, not a semantic one: identical workload
	// completion, exactness within timestamp-tie tolerance.
	if s4.Done != s1.Done || s4.Started != s1.Started {
		t.Fatalf("lookup counts depend on K: %+v vs %+v", s1, s4)
	}
	dOK := int64(s4.OK) - int64(s1.OK)
	if dOK < -2 || dOK > 2 {
		t.Fatalf("exactness drifts across K: %d vs %d", s1.OK, s4.OK)
	}
}

// TestCompactRingAwareFingers checks the Aware finger fill lifts the
// fraction of same-AS fingers without hurting exactness.
func TestCompactRingAwareFingers(t *testing.T) {
	sameASFrac := func(c *CompactRing, net *transport.ShardedNet) float64 {
		pt := net.Peers()
		same, total := 0, 0
		for p := 0; p < pt.Len(); p++ {
			for j := 0; j < c.nFing; j++ {
				q := underlay.PeerID(c.fing[p*c.nFing+j])
				total++
				if pt.AS(q) == pt.AS(underlay.PeerID(p)) {
					same++
				}
			}
		}
		return float64(same) / float64(total)
	}
	plain, pnet := buildCompactRing(t, 32, 1, 5, false)
	aware, anet := buildCompactRing(t, 32, 1, 5, true)
	fp, fa := sameASFrac(plain, pnet), sameASFrac(aware, anet)
	if fa <= fp {
		t.Fatalf("aware same-AS finger fraction %.3f not above plain %.3f", fa, fp)
	}
	// Aware fingers stay inside their correctness band, so a static run
	// must still be exact.
	pt := anet.Peers()
	for p := 0; p < pt.Len(); p++ {
		p := underlay.PeerID(p)
		net := anet
		net.Kernel().Shard(net.ShardOf(p)).Schedule(0, func() {
			aware.Query(p, uint64(p)^0xbeef, nil)
		})
	}
	anet.Kernel().Drain()
	if rate := aware.Stats().SuccessRate(); rate != 1 {
		t.Fatalf("aware ring exact rate %.4f != 1.0 on a static ring", rate)
	}
}
