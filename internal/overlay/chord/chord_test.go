package chord

import (
	"testing"
	"testing/quick"

	"unap2p/internal/core"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

func buildRing(t testing.TB, nHosts int, pns bool, seed int64) (*underlay.Network, *Ring) {
	t.Helper()
	src := sim.NewSource(seed)
	net := topology.TransitStub(topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 25, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 8,
	})
	topology.PlaceHosts(net, (nHosts+7)/8, false, 1, 5, src.Stream("place"))
	cfg := DefaultConfig()
	var sel core.Selector
	if pns {
		sel = core.RTTSelector(net)
	}
	ring := New(transport.Over(net), sel, cfg, src.Stream("ring"))
	for i, h := range net.Hosts() {
		if i >= nHosts {
			break
		}
		ring.AddNode(h)
	}
	ring.Build()
	return net, ring
}

func TestLookupFindsOwner(t *testing.T) {
	_, ring := buildRing(t, 64, false, 1)
	probe := sim.NewSource(2).Stream("probe")
	for i := 0; i < 50; i++ {
		key := ID(probe.Uint64())
		from := ring.Nodes()[probe.Intn(len(ring.Nodes()))].Host.ID
		res := ring.Lookup(from, key)
		want := ring.successorOf(key)
		if res.Owner != want {
			t.Fatalf("lookup %x found %x, owner is %x", key, res.Owner.ID, want.ID)
		}
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	_, ring := buildRing(t, 96, false, 3)
	probe := sim.NewSource(4).Stream("probe")
	total := 0
	const lookups = 60
	for i := 0; i < lookups; i++ {
		res := ring.Lookup(ring.Nodes()[probe.Intn(96)].Host.ID, ID(probe.Uint64()))
		total += res.Hops
	}
	mean := float64(total) / lookups
	// log2(96) ≈ 6.6; greedy Chord averages ~½ log2 N.
	if mean > 8 {
		t.Fatalf("mean hops %.1f too high for 96 nodes", mean)
	}
	if mean == 0 {
		t.Fatal("lookups never routed")
	}
}

func TestPNSCutsLatencyNotHops(t *testing.T) {
	probeLatency := func(pns bool) (lat float64, hops float64) {
		_, ring := buildRing(t, 96, pns, 5)
		probe := sim.NewSource(6).Stream("probe")
		const lookups = 80
		for i := 0; i < lookups; i++ {
			res := ring.Lookup(ring.Nodes()[probe.Intn(96)].Host.ID, ID(probe.Uint64()))
			lat += float64(res.Latency)
			hops += float64(res.Hops)
		}
		return lat / lookups, hops / lookups
	}
	plainLat, plainHops := probeLatency(false)
	pnsLat, pnsHops := probeLatency(true)
	if pnsLat >= plainLat {
		t.Fatalf("PNS latency %.1f not below plain %.1f", pnsLat, plainLat)
	}
	if pnsHops > plainHops*1.35 {
		t.Fatalf("PNS inflated hops: %.2f vs %.2f", pnsHops, plainHops)
	}
}

func TestPNSLookupStillCorrect(t *testing.T) {
	_, ring := buildRing(t, 64, true, 7)
	probe := sim.NewSource(8).Stream("probe")
	for i := 0; i < 50; i++ {
		key := ID(probe.Uint64())
		res := ring.Lookup(ring.Nodes()[probe.Intn(64)].Host.ID, key)
		if res.Owner != ring.successorOf(key) {
			t.Fatalf("PNS lookup %d found wrong owner", i)
		}
	}
}

func TestFingerIntervals(t *testing.T) {
	_, ring := buildRing(t, 48, true, 9)
	for _, n := range ring.Nodes() {
		for i := 0; i < 64; i++ {
			f := n.fingers[i]
			if f == nil {
				continue
			}
			start := n.ID + (ID(1) << uint(i))
			if offset := f.ID - start; offset >= (ID(1) << uint(i)) {
				t.Fatalf("finger %d of %x outside interval: %x", i, n.ID, f.ID)
			}
		}
	}
}

func TestSuccessorsOrdered(t *testing.T) {
	_, ring := buildRing(t, 32, false, 10)
	for idx, n := range ring.Nodes() {
		for s, succ := range n.successors {
			want := ring.Nodes()[(idx+s+1)%len(ring.Nodes())]
			if succ != want {
				t.Fatalf("successor %d of node %d wrong", s, idx)
			}
		}
	}
}

func TestBetween(t *testing.T) {
	if !between(10, 20, 30) || between(10, 5, 30) {
		t.Fatal("plain interval broken")
	}
	// Wrapping interval (a > b).
	if !between(^ID(0)-5, 2, 10) || between(^ID(0)-5, ^ID(0)-7, 10) {
		t.Fatal("wrapped interval broken")
	}
	if !between(10, 30, 30) {
		t.Fatal("inclusive upper bound broken")
	}
}

func TestQuickLookupAlwaysOwner(t *testing.T) {
	_, ring := buildRing(t, 40, true, 11)
	f := func(keyRaw uint64, fromIdx uint8) bool {
		key := ID(keyRaw)
		from := ring.Nodes()[int(fromIdx)%40].Host.ID
		return ring.Lookup(from, key).Owner == ring.successorOf(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	net, ring := buildRing(t, 8, false, 12)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on duplicate host")
			}
		}()
		ring.AddNode(net.Hosts()[0])
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on bad config")
			}
		}()
		New(nil, nil, Config{}, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on empty Build")
			}
		}()
		New(transport.Over(net), nil, DefaultConfig(), sim.NewSource(1).Stream("x")).Build()
	}()
}

// BenchmarkChordLookup measures greedy routing on a 96-node ring.
func BenchmarkChordLookup(b *testing.B) {
	_, ring := buildRing(b, 96, true, 13)
	probe := sim.NewSource(14).Stream("probe")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Lookup(ring.Nodes()[probe.Intn(96)].Host.ID, ID(probe.Uint64()))
	}
}
