package chord

import (
	"sort"

	"unap2p/internal/resilience"
	"unap2p/internal/underlay"
)

// This file implements the resilience.Healer Suspect/Evict/Replace
// contract for Chord: eviction removes the dead node from the ring,
// rebuilds every successor list over the survivors (the repair Chord's
// stabilize protocol performs incrementally), and re-fills exactly the
// finger slots that pointed at the dead node — proximity-selected when
// the ring runs PNS, so repairs stay underlay-aware.

var _ resilience.Healer = (*Ring)(nil)

// Suspect records an advisory verdict; ring state is untouched until
// eviction because suspicion can be recanted.
func (c *Ring) Suspect(id underlay.HostID) {
	if c.suspected == nil {
		c.suspected = make(map[underlay.HostID]bool)
	}
	c.suspected[id] = true
}

// Evict removes the dead node and repairs successors and fingers.
// Idempotent.
func (c *Ring) Evict(id underlay.HostID) {
	if c.evicted[id] {
		return
	}
	if c.evicted == nil {
		c.evicted = make(map[underlay.HostID]bool)
	}
	c.evicted[id] = true
	delete(c.suspected, id)
	idx := -1
	var dead *Node
	for i, n := range c.nodes {
		if n.Host.ID == id {
			idx, dead = i, n
			break
		}
	}
	if idx < 0 {
		return
	}
	c.nodes = append(c.nodes[:idx], c.nodes[idx+1:]...)
	n := len(c.nodes)
	if n == 0 {
		return
	}
	for i, node := range c.nodes {
		// Successor-list repair: the lists are positional, so rebuild
		// them over the surviving ring.
		node.successors = node.successors[:0]
		for s := 1; s <= c.Cfg.SuccessorList && s < n; s++ {
			node.successors = append(node.successors, c.nodes[(i+s)%n])
		}
		// Finger repair: only slots that referenced the dead node are
		// recomputed; every other finger keeps its (possibly
		// proximity-picked) entry.
		for fi := 0; fi < 64; fi++ {
			if node.fingers[fi] != dead {
				continue
			}
			start := node.ID + (ID(1) << uint(fi))
			if c.sel != nil {
				node.fingers[fi] = c.closestInInterval(node, start, ID(1)<<uint(fi))
			} else {
				f := c.successorOf(start)
				if f == node {
					f = nil
				}
				node.fingers[fi] = f
			}
		}
	}
}

// Evicted returns the nodes evicted so far, sorted by host id.
func (c *Ring) Evicted() []underlay.HostID {
	out := make([]underlay.HostID, 0, len(c.evicted))
	for id := range c.evicted {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Refs returns every peer referenced by a successor list or finger
// table (deduped, sorted) — the reference set chaos invariants sweep
// for dead peers.
func (c *Ring) Refs() []underlay.HostID {
	set := make(map[underlay.HostID]bool)
	for _, n := range c.nodes {
		for _, s := range n.successors {
			set[s.Host.ID] = true
		}
		for _, f := range n.fingers {
			if f != nil {
				set[f.Host.ID] = true
			}
		}
	}
	out := make([]underlay.HostID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
