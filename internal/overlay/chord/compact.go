package chord

import (
	"sort"

	"unap2p/internal/megascale"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// CompactConfig parameterizes a CompactRing.
type CompactConfig struct {
	// Successors is the successor-list length (fault tolerance and the
	// last-mile contacts of every lookup).
	Successors int
	// Alpha is the lookup parallelism. 1 is the classic sequential
	// find_successor walk; 2 keeps a spare in flight so a dead hop does
	// not stall the lookup for a full round trip.
	Alpha int
	// RPCBytes is the size charged per request or reply message.
	RPCBytes uint64
	// Aware, when true, fills each finger slot with a same-AS node from
	// the slot's candidate band when one exists — Castro et al.'s
	// proximity neighbor selection: any node in [2^j, 2^(j+1)) ranks
	// ahead keeps the O(log n) bound, so the choice is free and the
	// per-hop latency drops.
	Aware bool
	// AwareProbe caps how many band candidates the aware finger fill
	// scans (bounds Bootstrap cost at megascale).
	AwareProbe int
}

// DefaultCompactConfig sizes the ring for megascale runs.
func DefaultCompactConfig() CompactConfig {
	return CompactConfig{Successors: 8, Alpha: 2, RPCBytes: 100, AwareProbe: 16}
}

// CompactRing is a struct-of-arrays Chord ring over PeerTable peers for
// sharded megascale runs, the second port onto the megascale runtime:
// ids and ring ground truth come from a megascale.IDSpace, the iterative
// find-predecessor walk runs on the shared megascale.Iter driver, and
// accounting lives in megascale.Counters. Chord-specific is only the
// geometry — flat successor and finger arrays in ring-rank space, and
// the clockwise predecessor metric.
//
// Per-peer state is two flat slices: Successors entries of successor
// list and ~log2(n) rank-doubling fingers (finger j sits 2^j ranks
// ahead, or anywhere in [2^j, 2^(j+1)) under Aware). Tables are built
// once at Bootstrap with global knowledge (the standard simulation
// shortcut — join/stabilize is not the object of study) and stay
// immutable during the run, so any shard may read any row.
type CompactRing struct {
	cfg CompactConfig
	net *transport.ShardedNet

	space *megascale.IDSpace
	succ  []uint32 // n×S successor peers, rank order
	fing  []uint32 // n×F finger peers, finger j ≥ 2^j ranks ahead
	nSucc int      // entries per succ row (min(S, n-1))
	nFing int      // entries per finger row

	ctr  *megascale.Counters
	iter megascale.Iter
}

// NewCompactRing builds a compact ring over every peer in the net's
// table. Node ids are hashed from (seed, peer) like every megascale
// overlay; reqClass and repClass are the transport classes for routing
// traffic. Call Bootstrap before the kernel runs.
func NewCompactRing(net *transport.ShardedNet, cfg CompactConfig, seed uint64, reqClass, repClass int) *CompactRing {
	n := net.Peers().Len()
	if cfg.Successors <= 0 || cfg.Alpha <= 0 {
		panic("chord: bad CompactConfig")
	}
	if cfg.AwareProbe <= 0 {
		cfg.AwareProbe = 16
	}
	c := &CompactRing{
		cfg: cfg, net: net,
		space: megascale.NewIDSpace(n, seed),
		ctr:   megascale.NewCounters(net.Kernel().NumShards()),
	}
	c.nSucc = cfg.Successors
	if c.nSucc > n-1 {
		c.nSucc = n - 1
	}
	if c.nSucc < 0 {
		c.nSucc = 0
	}
	c.nFing = 0
	for 1<<c.nFing < n {
		c.nFing++
	}
	c.iter = megascale.Iter{
		Net: net, ReqClass: reqClass, RepClass: repClass, RPCBytes: cfg.RPCBytes,
		Alpha: cfg.Alpha, Width: 3 * (cfg.Successors + 1), Ctr: c.ctr,
		Dist:       c.predDist,
		Candidates: c.candidates,
		OK: func(best underlay.PeerID, target uint64) bool {
			return c.space.ID(best) == c.space.PredecessorID(target)
		},
	}
	return c
}

// Name identifies the overlay (megascale.CompactOverlay).
func (c *CompactRing) Name() string { return "chord" }

// ID returns peer p's ring position.
func (c *CompactRing) ID(p underlay.PeerID) ID { return ID(c.space.ID(p)) }

// predDist is the lookup metric: how far target's predecessor slot is
// ahead of q going clockwise. The global minimum over all peers is the
// ring predecessor of target; nodes at or past target wrap to huge
// distances and sort last, so the walk never overshoots.
func (c *CompactRing) predDist(q underlay.PeerID, target uint64) uint64 {
	return megascale.CWDist(c.space.ID(q), target-1)
}

// Bootstrap builds every successor list and finger table. Fingers live
// in rank space: finger j of a peer at rank r is the peer 2^j ranks
// ahead — with uniformly hashed ids that is the classic successor(p+2^j)
// table, and it guarantees gap-halving convergence for the predecessor
// walk. Under Aware, slot j instead takes the first same-AS peer among
// the band's first AwareProbe ranks (all of [2^j, 2^(j+1)) is correct).
// Single-threaded setup only. The seed only matters for id assignment,
// which already happened in NewCompactRing; topology is a pure function
// of the rank order.
func (c *CompactRing) Bootstrap(seed uint64) {
	n := c.space.Len()
	c.succ = make([]uint32, n*c.nSucc)
	c.fing = make([]uint32, n*c.nFing)
	pt := c.net.Peers()
	for p := 0; p < n; p++ {
		r := c.space.Rank(underlay.PeerID(p))
		for s := 0; s < c.nSucc; s++ {
			c.succ[p*c.nSucc+s] = uint32(c.space.ByRank((r + 1 + s) % n))
		}
		for j := 0; j < c.nFing; j++ {
			off := 1 << j
			pick := c.space.ByRank((r + off) % n)
			if c.cfg.Aware {
				// Band [2^j, 2^(j+1)) ∩ [.., n): probe a bounded prefix
				// for a same-AS node.
				limit := off
				if off > n-off {
					limit = n - off
				}
				if limit > c.cfg.AwareProbe {
					limit = c.cfg.AwareProbe
				}
				for b := 0; b < limit; b++ {
					q := c.space.ByRank((r + off + b) % n)
					if pt.AS(q) == pt.AS(underlay.PeerID(p)) {
						pick = q
						break
					}
				}
			}
			c.fing[p*c.nFing+j] = uint32(pick)
		}
	}
}

// candidates returns q's best contacts toward target — its successor
// list and fingers ranked by the predecessor metric, the compact
// closest_preceding_node. Executes on q's shard; the rows are immutable
// after Bootstrap so the read is safe from anywhere.
func (c *CompactRing) candidates(q underlay.PeerID, target uint64) []underlay.PeerID {
	out := make([]underlay.PeerID, 0, c.nSucc+c.nFing)
	seen := func(p underlay.PeerID) bool {
		for _, e := range out {
			if e == p {
				return true
			}
		}
		return false
	}
	for s := 0; s < c.nSucc; s++ {
		p := underlay.PeerID(c.succ[int(q)*c.nSucc+s])
		if !seen(p) {
			out = append(out, p)
		}
	}
	for j := 0; j < c.nFing; j++ {
		p := underlay.PeerID(c.fing[int(q)*c.nFing+j])
		if !seen(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := c.predDist(out[i], target), c.predDist(out[j], target)
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	k := c.cfg.Successors
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// PredecessorGlobal returns the id of target's exact ring predecessor —
// the ground truth every lookup is checked against.
func (c *CompactRing) PredecessorGlobal(target ID) ID {
	return ID(c.space.PredecessorID(uint64(target)))
}

// SuccessorGlobal returns the id owning target (the first node clockwise
// from target, inclusive).
func (c *CompactRing) SuccessorGlobal(target ID) ID {
	return ID(c.space.ID(c.space.ByRank(c.space.SuccessorRank(uint64(target)))))
}

// Lookup starts an iterative find-predecessor walk for target from peer
// origin. It must be invoked on origin's owning shard; onDone (which may
// be nil) runs on origin's shard when the walk converges. Result.OK
// reports whether the exact ring predecessor was found — equivalently,
// whether its successor list resolves target's owner.
func (c *CompactRing) Lookup(origin underlay.PeerID, target ID, onDone func(megascale.Result)) {
	c.iter.Start(origin, uint64(target), onDone)
}

// Query implements megascale.CompactOverlay: one lookup for a
// pseudo-random ring target derived from the per-request seed.
func (c *CompactRing) Query(origin underlay.PeerID, seed uint64, onDone func(megascale.Result)) {
	c.iter.Start(origin, megascale.Mix64(seed), onDone)
}

// Stats aggregates the per-shard lookup counters. Barrier-safe.
func (c *CompactRing) Stats() megascale.Stats { return c.ctr.Stats() }

// MegaStats implements megascale.CompactOverlay.
func (c *CompactRing) MegaStats() megascale.Stats { return c.ctr.Stats() }

// HealthStats exposes lookup health for telemetry sampling at barriers.
func (c *CompactRing) HealthStats() map[string]float64 { return c.ctr.Health() }
