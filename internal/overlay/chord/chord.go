// Package chord implements a Chord ring over the simulated underlay with
// the proximity techniques of Castro, Druschel, Hu and Rowstron
// ("Exploiting network proximity in peer-to-peer overlay networks",
// MSR-TR-2002-82 — [4] in the paper): structured overlays have freedom in
// *which* node fills each routing-table slot, and filling fingers with
// the underlay-closest valid candidate (proximity neighbor selection)
// cuts per-hop latency without changing the O(log N) hop bound.
//
// IDs are 64-bit; ring construction uses global knowledge (the standard
// simulation shortcut — join/stabilize protocols are not the object of
// study here, routing cost is).
package chord

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"unap2p/internal/core"
	"unap2p/internal/metrics"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// ID is a position on the 2^64 ring.
type ID uint64

// Config tunes the ring.
type Config struct {
	// SuccessorList is the number of immediate successors kept (fault
	// tolerance and final-hop candidates).
	SuccessorList int
	// RPCBytes is the size of one routing message.
	RPCBytes uint64
}

// DefaultConfig keeps 4 successors.
func DefaultConfig() Config { return Config{SuccessorList: 4, RPCBytes: 100} }

// Node is one ring member.
type Node struct {
	ID   ID
	Host *underlay.Host
	// fingers[i] is a node in [ID+2^i, ID+2^(i+1)) — the classic table,
	// possibly proximity-optimized.
	fingers [64]*Node
	// successors are the next nodes clockwise.
	successors []*Node
}

// Ring is a Chord instance.
type Ring struct {
	// T carries routing messages; U serves proximity queries (finger
	// selection RTT estimates) without charging traffic.
	T   transport.Messenger
	U   *underlay.Network
	Cfg Config
	// Msgs counts "route" messages — a view of the transport's counters.
	Msgs *metrics.CounterSet

	nodes []*Node // sorted by ID
	r     *rand.Rand
	sel   core.Selector
	// suspected and evicted track failure-detector verdicts (see
	// heal.go); nil until the resilience layer delivers one.
	suspected, evicted map[underlay.HostID]bool
}

// New creates an empty ring sending through tr. A non-nil selector turns
// on proximity-selected fingers: each finger slot keeps the candidate the
// selector's Proximity verb calls closest (core.RTTSelector for Castro et
// al.'s RTT-based PNS). A nil selector builds the classic table.
func New(tr transport.Messenger, sel core.Selector, cfg Config, r *rand.Rand) *Ring {
	if cfg.SuccessorList < 1 {
		panic("chord: SuccessorList must be ≥ 1")
	}
	return &Ring{T: tr, U: tr.Underlay(), Cfg: cfg, Msgs: tr.Counters(), r: r, sel: sel}
}

// AddNode places a host on the ring with a random collision-free ID.
// Call Build after all nodes are added.
func (c *Ring) AddNode(h *underlay.Host) *Node {
	for _, n := range c.nodes {
		if n.Host.ID == h.ID {
			panic(fmt.Sprintf("chord: host %d already on ring", h.ID))
		}
	}
	id := ID(c.r.Uint64())
	for c.byID(id) != nil {
		id = ID(c.r.Uint64())
	}
	n := &Node{ID: id, Host: h}
	c.nodes = append(c.nodes, n)
	sort.Slice(c.nodes, func(i, j int) bool { return c.nodes[i].ID < c.nodes[j].ID })
	return n
}

func (c *Ring) byID(id ID) *Node {
	i := sort.Search(len(c.nodes), func(i int) bool { return c.nodes[i].ID >= id })
	if i < len(c.nodes) && c.nodes[i].ID == id {
		return c.nodes[i]
	}
	return nil
}

// Nodes returns the ring membership in ID order.
func (c *Ring) Nodes() []*Node { return c.nodes }

// successorOf returns the first node clockwise from id (inclusive).
func (c *Ring) successorOf(id ID) *Node {
	i := sort.Search(len(c.nodes), func(i int) bool { return c.nodes[i].ID >= id })
	if i == len(c.nodes) {
		i = 0
	}
	return c.nodes[i]
}

// Build constructs successor lists and finger tables. With PNS, each
// finger slot considers every node of its interval and keeps the
// RTT-closest — Castro et al.'s observation that constrained table slots
// still leave O(N/2^i) candidates to pick proximally from.
func (c *Ring) Build() {
	n := len(c.nodes)
	if n == 0 {
		panic("chord: Build on empty ring")
	}
	for idx, node := range c.nodes {
		node.successors = node.successors[:0]
		for s := 1; s <= c.Cfg.SuccessorList && s < n; s++ {
			node.successors = append(node.successors, c.nodes[(idx+s)%n])
		}
		for i := 0; i < 64; i++ {
			start := node.ID + (ID(1) << uint(i))
			if c.sel != nil {
				node.fingers[i] = c.closestInInterval(node, start, ID(1)<<uint(i))
			} else {
				f := c.successorOf(start)
				if f == node {
					f = nil
				}
				node.fingers[i] = f
			}
		}
	}
}

// closestInInterval returns the proximity-closest node whose ID lies in
// [start, start+span) on the ring, or nil when the interval is empty of
// other nodes.
func (c *Ring) closestInInterval(from *Node, start, span ID) *Node {
	var best *Node
	bestCost := math.MaxFloat64
	// Iterate candidates clockwise from start while inside the interval.
	cur := c.successorOf(start)
	for i := 0; i < len(c.nodes); i++ {
		offset := cur.ID - start // ring arithmetic wraps naturally
		if offset >= span {
			break
		}
		if cur != from {
			if cost, ok := c.sel.Proximity(from.Host, cur.Host); ok && cost < bestCost {
				best, bestCost = cur, cost
			}
		}
		next := c.successorOf(cur.ID + 1)
		if next == cur {
			break
		}
		cur = next
	}
	return best
}

// between reports whether x ∈ (a, b] on the ring.
func between(a, x, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b
}

// LookupResult summarizes one routed lookup.
type LookupResult struct {
	// Owner is the node responsible for the key (its successor).
	Owner *Node
	// Hops is the overlay path length.
	Hops int
	// Latency sums per-hop one-way delays (greedy forwarding).
	Latency sim.Duration
	// Msgs counts routing messages.
	Msgs int
}

// Lookup routes greedily from the node on `from` toward key: at each
// step, the current node forwards to its farthest finger that does not
// overshoot the key (classic Chord routing), falling back to successors.
func (c *Ring) Lookup(from underlay.HostID, key ID) LookupResult {
	var cur *Node
	for _, n := range c.nodes {
		if n.Host.ID == from {
			cur = n
			break
		}
	}
	if cur == nil {
		return LookupResult{}
	}
	var res LookupResult
	owner := c.successorOf(key)
	for cur != owner {
		next := c.nextHop(cur, key)
		if next == nil || next == cur {
			break
		}
		res.Hops++
		res.Msgs++
		sr := c.T.Send(cur.Host, next.Host, c.Cfg.RPCBytes, "route")
		if !sr.OK {
			break // route message lost: the lookup dies at this hop
		}
		res.Latency += sr.Latency
		cur = next
		if res.Hops > len(c.nodes) {
			break // routing failure guard; cannot happen on a built ring
		}
	}
	res.Owner = cur
	return res
}

// nextHop picks the forwarding target: the farthest finger in (cur, key],
// else the first successor in (cur, key], else the owner directly.
func (c *Ring) nextHop(cur *Node, key ID) *Node {
	for i := 63; i >= 0; i-- {
		f := cur.fingers[i]
		if f != nil && between(cur.ID, f.ID, key) {
			return f
		}
	}
	for _, s := range cur.successors {
		if between(cur.ID, s.ID, key) {
			return s
		}
	}
	// Final hop: the immediate successor owns the key.
	if len(cur.successors) > 0 {
		return cur.successors[0]
	}
	return nil
}

// HealthStats implements the telemetry HealthReporter hook: finger-table
// fill and locality gauges (pure reads over the sorted node slice,
// deterministic).
//
//   - nodes: ring population
//   - finger_fill_mean: mean populated finger slots per node
//   - finger_as_hops_mean: mean AS-path length from a node to its
//     fingers — what proximity finger selection optimizes
//   - finger_intra_as_fraction: share of fingers inside the owner's AS
func (c *Ring) HealthStats() map[string]float64 {
	var fill, hops, intra, entries float64
	for _, n := range c.nodes {
		for _, f := range n.fingers {
			if f == nil {
				continue
			}
			fill++
			h := c.U.ASHops(n.Host.AS.ID, f.Host.AS.ID)
			if h < 0 {
				continue
			}
			entries++
			hops += float64(h)
			if h == 0 {
				intra++
			}
		}
	}
	out := map[string]float64{"nodes": float64(len(c.nodes))}
	if len(c.nodes) > 0 {
		out["finger_fill_mean"] = fill / float64(len(c.nodes))
	}
	if entries > 0 {
		out["finger_as_hops_mean"] = hops / entries
		out["finger_intra_as_fraction"] = intra / entries
	}
	return out
}
