package integration

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// requireSockets skips the test with a reason when the environment
// forbids binding localhost UDP sockets, instead of failing every
// multi-process test with an opaque bind error from a child process.
func requireSockets(t *testing.T) {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("environment forbids UDP sockets: %v", err)
	}
	c.Close()
}

// waitBudget derives a polling deadline from the test's own -timeout
// budget (minus teardown grace), capped at def — bounded waits that
// never race the harness into a panic-dump timeout.
func waitBudget(t *testing.T, def time.Duration) time.Time {
	t.Helper()
	if d, ok := t.Deadline(); ok {
		if budget := time.Until(d) - 10*time.Second; budget > 0 && budget < def {
			return time.Now().Add(budget)
		}
	}
	return time.Now().Add(def)
}

// buildUnapnode compiles cmd/unapnode once per test into a temp dir and
// returns the binary path.
func buildUnapnode(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "unapnode")
	build := exec.Command("go", "build", "-o", bin, "unap2p/cmd/unapnode")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build unapnode: %v\n%s", err, out)
	}
	return bin
}

// TestNetSmoke is the live-cluster acceptance test: it builds the
// unapnode binary and boots a real multi-process cluster on localhost
// UDP ports for each overlay — separate OS processes, real datagrams,
// nothing shared but the wire protocol. Every process runs verified
// lookups and must clear the 95% success floor; the run ends with a
// clean SIGTERM shutdown of the whole cluster.
//
// Tunables (the `make net-smoke` target raises them to the ISSUE
// acceptance shape — three overlays, 100 lookups per process):
//
//	UNAP_NETSMOKE_OVERLAYS   comma list (default "kademlia,chord")
//	UNAP_NETSMOKE_NODES      cluster size          (default 5)
//	UNAP_NETSMOKE_LOOKUPS    lookups per process   (default 20)
func TestNetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster: skipped in -short mode")
	}
	requireSockets(t)
	overlays := strings.Split(envOr("UNAP_NETSMOKE_OVERLAYS", "kademlia,chord"), ",")
	nodes := envInt(t, "UNAP_NETSMOKE_NODES", 5)
	lookups := envInt(t, "UNAP_NETSMOKE_LOOKUPS", 20)
	bin := buildUnapnode(t)

	for _, overlay := range overlays {
		overlay = strings.TrimSpace(overlay)
		t.Run(overlay, func(t *testing.T) {
			runSmokeCluster(t, bin, overlay, nodes, lookups)
		})
	}
}

var lookupsRe = regexp.MustCompile(`lookups ok=(\d+)/(\d+)`)

func runSmokeCluster(t *testing.T, bin, overlay string, nodes, lookups int) {
	// The bootstrap (id 0) binds an ephemeral port and prints it; the
	// rest of the cluster is pointed at that address.
	procs := make([]*exec.Cmd, nodes)
	outputs := make([]*strings.Builder, nodes)
	var outMu sync.Mutex
	lines := make(chan string, 64)

	startNode := func(i int, bootstrap string) {
		args := []string{
			"-id", strconv.Itoa(i),
			"-listen", "127.0.0.1:0",
			"-overlay", overlay,
			"-ping", "100ms",
			"-timeout", "150ms",
			"-expect", strconv.Itoa(nodes),
			"-lookups", strconv.Itoa(lookups),
		}
		if bootstrap != "" {
			args = append(args, "-bootstrap", bootstrap)
		}
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		procs[i] = cmd
		outputs[i] = &strings.Builder{}
		go func(i int) {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				outMu.Lock()
				fmt.Fprintln(outputs[i], line)
				outMu.Unlock()
				lines <- line
			}
		}(i)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()

	startNode(0, "")
	bootstrap := awaitLine(t, lines, regexp.MustCompile(`listening on (\S+)`), 10*time.Second)
	for i := 1; i < nodes; i++ {
		startNode(i, bootstrap)
	}

	// Every process prints its lookup result once the cluster converges.
	okTotal, total := 0, 0
	deadline := time.After(time.Until(waitBudget(t, 60*time.Second)))
	for got := 0; got < nodes; {
		select {
		case line := <-lines:
			if m := lookupsRe.FindStringSubmatch(line); m != nil {
				ok, _ := strconv.Atoi(m[1])
				n, _ := strconv.Atoi(m[2])
				okTotal += ok
				total += n
				got++
			}
		case <-deadline:
			t.Fatalf("%s: only %d/%d processes reported lookups; outputs:\n%s",
				overlay, countReports(&outMu, outputs), nodes, dumpOutputs(&outMu, outputs))
		}
	}
	if floor := total * 95 / 100; okTotal < floor {
		t.Fatalf("%s: %d/%d lookups verified across the cluster, floor %d",
			overlay, okTotal, total, floor)
	}
	t.Logf("%s: %d/%d lookups verified across %d processes", overlay, okTotal, total, nodes)

	// Clean shutdown: SIGTERM everyone and require a zero-ish exit (the
	// daemon prints "shutting down" and returns from main).
	for _, p := range procs {
		p.Process.Signal(syscall.SIGTERM)
	}
	for i, p := range procs {
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("node %d did not exit cleanly on SIGTERM: %v\n%s",
					i, err, dumpOutputs(&outMu, outputs[i:i+1]))
			}
		case <-time.After(10 * time.Second):
			p.Process.Kill()
			t.Errorf("node %d ignored SIGTERM", i)
		}
		procs[i] = nil
	}
}

func awaitLine(t *testing.T, lines <-chan string, re *regexp.Regexp, timeout time.Duration) string {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case line := <-lines:
			if m := re.FindStringSubmatch(line); m != nil {
				return m[1]
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %v", re)
		}
	}
}

func countReports(mu *sync.Mutex, outputs []*strings.Builder) int {
	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, o := range outputs {
		if o != nil && lookupsRe.MatchString(o.String()) {
			n++
		}
	}
	return n
}

func dumpOutputs(mu *sync.Mutex, outputs []*strings.Builder) string {
	mu.Lock()
	defer mu.Unlock()
	var b strings.Builder
	for i, o := range outputs {
		if o == nil {
			continue
		}
		fmt.Fprintf(&b, "--- node %d ---\n%s", i, o.String())
	}
	return b.String()
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func envInt(t *testing.T, key string, def int) int {
	t.Helper()
	v := os.Getenv(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("%s=%q is not an integer", key, v)
	}
	return n
}
