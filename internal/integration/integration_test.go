// Package integration holds cross-module end-to-end tests: overlays under
// churn and mobility, billing driven by overlay traffic, the framework
// engine wired into a real overlay, and failure injection (oracle outage,
// corrupted beacons) — the robustness questions §5.4 leaves open.
package integration

import (
	"testing"

	"unap2p/internal/churn"
	"unap2p/internal/coords"
	"unap2p/internal/core"
	"unap2p/internal/cost"
	"unap2p/internal/ipmap"
	"unap2p/internal/linalg"
	"unap2p/internal/metrics"
	"unap2p/internal/mobility"
	"unap2p/internal/oracle"
	"unap2p/internal/overlay/bittorrent"
	"unap2p/internal/overlay/gnutella"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
	"unap2p/internal/workload"
)

func buildWorld(seed int64, hostsPerAS int) (*underlay.Network, []*underlay.Host, *sim.Source) {
	src := sim.NewSource(seed)
	net := topology.TransitStub(topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 8,
	})
	hosts := topology.PlaceHosts(net, hostsPerAS, false, 1, 5, src.Stream("place"))
	return net, hosts, src
}

// TestGnutellaUnderChurn runs the unstructured overlay with a live churn
// driver: leaving nodes detach, rejoining nodes re-run the join protocol.
// Searches issued throughout must keep finding online content.
func TestGnutellaUnderChurn(t *testing.T) {
	net, hosts, src := buildWorld(1, 10)
	k := sim.NewKernel()
	cfg := gnutella.DefaultConfig()
	ov := gnutella.New(transport.New(net, k), nil, cfg, src.Stream("overlay"))
	// The churn driver keeps the kernel's queue non-empty forever, so
	// searches must settle on a time bound rather than drain.
	ov.SettleTime = 2 * sim.Second
	for _, h := range hosts {
		ov.AddNode(h, true)
	}
	ov.JoinAll()

	catalog := workload.NewCatalog(40)
	workload.PopulateZipf(catalog, hosts, 6, 1.0, src.Stream("content"))
	ov.Catalog = catalog

	drv := &churn.Driver{
		Kernel: k,
		Model:  churn.Exponential{MeanOn: 5 * sim.Second, MeanOff: 2 * sim.Second},
		Rand:   src.Stream("churn"),
		OnLeave: func(h *underlay.Host) {
			ov.Leave(ov.Node(h.ID))
		},
		OnJoin: func(h *underlay.Host) {
			ov.Join(ov.Node(h.ID))
		},
	}
	drv.Start(hosts)

	success, attempts, staleHits, totalHits := 0, 0, 0, 0
	q := src.Stream("queries")
	for round := 0; round < 30; round++ {
		k.Run(k.Now() + sim.Second)
		from := hosts[q.Intn(len(hosts))]
		if !from.Up {
			continue
		}
		attempts++
		res := ov.RunSearch(from.ID, workload.ItemID(q.Intn(40)))
		for _, hit := range res.Hits {
			totalHits++
			// A holder may leave while its QueryHit is in flight — a
			// stale hit. Download() filters these; they must stay rare.
			if !net.Host(hit).Up {
				staleHits++
			}
		}
		if len(res.Hits) > 0 {
			success++
		}
	}
	if totalHits > 0 && float64(staleHits)/float64(totalHits) > 0.5 {
		t.Fatalf("stale hits dominate: %d/%d", staleHits, totalHits)
	}
	if drv.Joins == 0 || drv.Leaves == 0 {
		t.Fatal("no churn occurred")
	}
	if attempts == 0 || float64(success)/float64(attempts) < 0.5 {
		t.Fatalf("search success collapsed under churn: %d/%d", success, attempts)
	}
}

// TestChurnRejoinRestoresDegree verifies the rejoin path rebuilds
// connectivity after a leave.
func TestChurnRejoinRestoresDegree(t *testing.T) {
	net, hosts, src := buildWorld(2, 8)
	k := sim.NewKernel()
	ov := gnutella.New(transport.New(net, k), nil, gnutella.DefaultConfig(), src.Stream("overlay"))
	for _, h := range hosts {
		ov.AddNode(h, true)
	}
	ov.JoinAll()
	n := ov.Node(hosts[0].ID)
	ov.Leave(n)
	if n.Degree() != 0 {
		t.Fatal("leave kept connections")
	}
	ov.Join(n)
	if n.Degree() == 0 {
		t.Fatal("rejoin built no connections")
	}
	_ = net
}

// TestOracleOutageMidRun flips the oracle down between two join waves:
// the overlay must degrade to unbiased behaviour, never fail.
func TestOracleOutageMidRun(t *testing.T) {
	net, hosts, src := buildWorld(3, 8)
	k := sim.NewKernel()
	cfg := gnutella.DefaultConfig()
	sel := core.NewOracleSelector(net, true, false)
	orc := sel.O
	ov := gnutella.New(transport.New(net, k), sel, cfg, src.Stream("overlay"))
	for _, h := range hosts {
		ov.AddNode(h, true)
	}
	// First half joins with a live oracle.
	nodes := ov.Nodes()
	for _, n := range nodes[:len(nodes)/2] {
		ov.Join(n)
	}
	intraBefore := metrics.IntraASEdgeFraction(ov.Edges(), ov.ASLabels())
	orc.Down = true
	for _, n := range nodes[len(nodes)/2:] {
		ov.Join(n)
	}
	edges := ov.Edges()
	if metrics.ComponentCount(net.NumHosts(), edges) != 1 {
		t.Fatal("overlay fragmented across the outage")
	}
	intraAfter := metrics.IntraASEdgeFraction(edges, ov.ASLabels())
	if intraAfter >= intraBefore {
		t.Fatalf("outage half should dilute locality: %.3f → %.3f", intraBefore, intraAfter)
	}
}

// TestBillingFollowsBias wires overlay traffic through to ISP bills: the
// biased overlay's local ISPs must pay less transit than the unbiased one.
func TestBillingFollowsBias(t *testing.T) {
	run := func(bias bool) float64 {
		net, hosts, src := buildWorld(4, 10)
		k := sim.NewKernel()
		cfg := gnutella.DefaultConfig()
		var sel core.Selector
		if bias {
			sel = core.NewOracleSelector(net, true, true)
		}
		ov := gnutella.New(transport.New(net, k), sel, cfg, src.Stream("overlay"))
		for _, h := range hosts {
			ov.AddNode(h, true)
		}
		ov.JoinAll()
		catalog := workload.NewCatalog(60)
		workload.PopulateLocal(catalog, net, hosts, 6, 0.7, src.Stream("content"))
		ov.Catalog = catalog
		gen := workload.NewQueryGen(net, catalog, hosts, 0.6, 1.0, src.Stream("q"))
		for i := 0; i < 150; i++ {
			q, ok := gen.Next(k.Now())
			if !ok {
				break
			}
			res := ov.RunSearch(q.From, q.Item)
			ov.Download(res)
		}
		rep := cost.BillNetwork(net, nil,
			cost.TransitContract{PricePerMbps: 10},
			cost.PeeringContract{MonthlyFee: 100},
			60*sim.Second)
		return rep.TransitTotal
	}
	unbiased := run(false)
	biased := run(true)
	if biased >= unbiased {
		t.Fatalf("biased transit bill %.2f not below unbiased %.2f", biased, unbiased)
	}
}

// TestEngineDrivesSwarmTracker plugs the framework engine in as a
// BitTorrent tracker policy: neighbors picked by the engine must localize
// piece traffic versus the random tracker.
func TestEngineDrivesSwarmTracker(t *testing.T) {
	net, hosts, src := buildWorld(5, 12)
	plan := ipmap.AssignAll(net)
	reg := ipmap.NewRegistry(net, plan)
	engine := core.NewEngine().Add(&core.IPMapEstimator{Reg: reg}, 1)
	hostOf := func(id underlay.HostID) *underlay.Host { return net.Host(id) }

	cfg := bittorrent.DefaultConfig()
	cfg.Pieces = 24
	s := bittorrent.NewSwarm(transport.Over(net), core.ASHopSelector(net), cfg, src.Stream("swarm"))
	for i, h := range hosts {
		if i == 0 {
			s.AddSeed(h)
		} else {
			s.AddLeecher(h)
		}
	}
	// Engine-selected neighbor sets instead of the built-in tracker:
	// replicate AssignNeighbors' symmetric-connection behaviour through
	// the public Peer API is not exposed, so use the biased tracker as
	// reference and the engine for a parallel selection-quality check.
	r := src.Stream("sel")
	var ids []underlay.HostID
	for _, h := range hosts {
		ids = append(ids, h.ID)
	}
	intra, total := 0, 0
	for _, h := range hosts {
		var cands []underlay.HostID
		for _, id := range ids {
			if id != h.ID {
				cands = append(cands, id)
			}
		}
		for _, nb := range engine.SelectNeighbors(h, cands, 8, 1, hostOf, r) {
			total++
			if net.Host(nb).AS.ID == h.AS.ID {
				intra++
			}
		}
	}
	frac := float64(intra) / float64(total)
	if frac < 0.5 {
		t.Fatalf("engine neighbor locality %.3f too low", frac)
	}
	// And the selector-driven tracker agrees directionally.
	s.AssignNeighbors()
	if mix := s.NeighborASMix(); mix < 0.3 {
		t.Fatalf("tracker locality %.3f too low", mix)
	}
}

// TestICSWithCorruptedBeacon injects a faulty beacon (reporting 10× its
// real delays) and verifies calibration degrades measurably but the
// system still produces usable coordinates — beacon failure robustness.
func TestICSWithCorruptedBeacon(t *testing.T) {
	net, hosts, _ := buildWorld(6, 8)
	const m = 8
	clean := linalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j {
				clean.Set(i, j, float64(net.RTT(hosts[i*5], hosts[j*5])))
			}
		}
	}
	corrupt := clean.Clone()
	for j := 0; j < m; j++ {
		if j != 2 {
			corrupt.Set(2, j, clean.At(2, j)*10)
			corrupt.Set(j, 2, clean.At(j, 2)*10)
		}
	}
	icsClean, err := coords.BuildICS(clean, coords.ICSOptions{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	icsBad, err := coords.BuildICS(corrupt, coords.ICSOptions{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if icsBad.FitError() <= icsClean.FitError() {
		t.Fatalf("corruption did not raise fit error: %.2f vs %.2f",
			icsBad.FitError(), icsClean.FitError())
	}
	// Still usable: host coordinates remain finite and order-preserving
	// for hosts far from the bad beacon.
	delays := make([]float64, m)
	for b := 0; b < m; b++ {
		delays[b] = float64(net.RTT(hosts[1], hosts[b*5]))
	}
	xc, err := icsBad.HostCoord(delays)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range xc {
		if v != v || v > 1e12 || v < -1e12 {
			t.Fatalf("corrupted calibration produced unusable coordinate %v", xc)
		}
	}
}

// TestMobilityInvalidatesOracleRanking moves a client to another ISP and
// checks that a stale oracle consultation (made before the move) now
// points at the wrong "local" peers, while a fresh consultation recovers.
func TestMobilityInvalidatesOracleRanking(t *testing.T) {
	net, hosts, src := buildWorld(7, 8)
	k := sim.NewKernel()
	orc := oracle.New(net)

	var points []mobility.AttachmentPoint
	for _, as := range net.ASes() {
		if as.Kind == underlay.LocalISP {
			points = append(points, mobility.AttachmentPoint{AS: as, AccessDelay: 2})
		}
	}
	model := mobility.NewModel(k, src.Stream("mob"), points, 10*sim.Second)
	client := hosts[0]
	model.Attach(client, 0)

	var cands []underlay.HostID
	for _, h := range hosts[1:] {
		cands = append(cands, h.ID)
	}
	staleTop := orc.Rank(client, cands)[0]
	if net.Host(staleTop).AS.ID != client.AS.ID {
		t.Fatal("pre-move ranking should be local")
	}
	// Move to a different ISP.
	model.Attach(client, 3)
	if net.Host(staleTop).AS.ID == client.AS.ID {
		t.Skip("move landed in same AS population; topology degenerate")
	}
	freshTop := orc.Rank(client, cands)[0]
	if net.Host(freshTop).AS.ID != client.AS.ID {
		t.Fatal("fresh ranking should re-localize after the move")
	}
	if freshTop == staleTop {
		t.Fatal("ranking did not change despite ISP change")
	}
}

// TestMobilityRefreshesOverlay wires the mobility OnMove hook to overlay
// maintenance: a moving peer leaves, re-registers, and rejoins, so its
// neighbors track its *current* ISP.
func TestMobilityRefreshesOverlay(t *testing.T) {
	net, hosts, src := buildWorld(8, 8)
	k := sim.NewKernel()
	cfg := gnutella.DefaultConfig()
	ov := gnutella.New(transport.New(net, k), core.NewOracleSelector(net, true, false),
		cfg, src.Stream("overlay"))
	for _, h := range hosts {
		ov.AddNode(h, true)
	}
	ov.JoinAll()

	var points []mobility.AttachmentPoint
	for _, as := range net.ASes() {
		if as.Kind == underlay.LocalISP {
			points = append(points, mobility.AttachmentPoint{AS: as, AccessDelay: 2})
		}
	}
	model := mobility.NewModel(k, src.Stream("mob"), points, 2*sim.Second)
	model.OnMove = func(h *underlay.Host, _, _ mobility.AttachmentPoint) {
		n := ov.Node(h.ID)
		ov.Leave(n)
		ov.Join(n)
	}
	mobile := hosts[:10]
	for i, h := range mobile {
		model.Attach(h, i%len(points))
		model.Track(h)
	}
	k.Run(20 * sim.Second)
	if model.Moves == 0 {
		t.Fatal("no mobility happened")
	}
	// Every mobile peer's neighbor majority should match its CURRENT AS
	// (the hook kept locality fresh despite the moves).
	for _, h := range mobile {
		n := ov.Node(h.ID)
		if n.Degree() == 0 {
			t.Fatalf("mobile peer %d lost all connections", h.ID)
		}
	}
	// The overlay as a whole stays connected.
	if c := metrics.ComponentCount(net.NumHosts(), ov.Edges()); c != 1 {
		t.Fatalf("mobility fragmented the overlay into %d components", c)
	}
}
