package integration

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"unap2p/internal/chaos"
	"unap2p/internal/core"
	"unap2p/internal/geo"
	"unap2p/internal/overlay/bittorrent"
	"unap2p/internal/overlay/brocade"
	"unap2p/internal/overlay/chord"
	"unap2p/internal/overlay/geotree"
	"unap2p/internal/overlay/gnutella"
	"unap2p/internal/overlay/gsh"
	"unap2p/internal/overlay/kademlia"
	"unap2p/internal/overlay/streaming"
	"unap2p/internal/resilience"
	"unap2p/internal/resources"
	"unap2p/internal/sim"
	"unap2p/internal/telemetry"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
	"unap2p/internal/workload"
)

// The chaos suite: every overlay runs the same seeded fault campaign —
// a correlated loss burst at [500, 1500) ms and a three-peer crash wave
// at 2 s — under a live failure detector wired to the overlay's healer.
// After the post-fault window each test asserts the chaos invariants
// (no routing to evicted peers, set-size bounds, workload success
// floor) and that the whole run — telemetry run file included — is
// byte-identical when repeated with the same seed.
//
// `make chaos` runs exactly these tests race-enabled.

// chaosSeeds are the pinned campaign seeds.
var chaosSeeds = []int64{11, 23, 47}

// chaosHorizon is the sim time every campaign runs for: the crash wave
// lands at 2 s, detector eviction completes by ~4.5 s, and the rest is
// the post-fault window overlays must re-converge in.
const chaosHorizon = 20 * sim.Second

// chaosEnv is the per-run world: topology, kernel, instrumented
// transport, failure detector, and a telemetry recorder streaming the
// run file into memory for the byte-identity comparison.
type chaosEnv struct {
	t     *testing.T
	net   *underlay.Network
	hosts []*underlay.Host
	k     *sim.Kernel
	tr    *transport.Transport
	src   *sim.Source
	rec   *telemetry.Recorder
	det   *resilience.Detector
	inj   *chaos.Injector
	buf   *bytes.Buffer
}

func newChaosEnv(t *testing.T, name string, seed int64) *chaosEnv {
	net, hosts, src := buildWorld(seed, 5)
	k := sim.NewKernel()
	tr := transport.New(net, k)
	// Caller-supplied retry budget with deterministic (zero-jitter)
	// exponential backoff — the RoundTrip policy under test.
	tr.Retry = resilience.Backoff{Base: 50, Max: 400, Factor: 2}.Policy(2)
	buf := &bytes.Buffer{}
	rec := telemetry.NewRecorder(telemetry.Config{
		Sink:     telemetry.NewRunWriter(buf),
		Manifest: telemetry.Manifest{Name: "chaos-" + name, Seed: seed},
	})
	rec.ObserveTransport(tr)
	rec.ObserveKernel(k)
	dcfg := resilience.DefaultConfig()
	dcfg.Backoff.Rand = src.Stream("fd-backoff")
	det := resilience.New(tr, dcfg)
	rec.Registry().RegisterCounters("resilience", det.Counters())
	return &chaosEnv{
		t: t, net: net, hosts: hosts, k: k, tr: tr, src: src,
		rec: rec, det: det, buf: buf,
	}
}

// watchFrom probes every other host from the vantage (which the crash
// wave must not be allowed to take down).
func (e *chaosEnv) watchFrom(vantage *underlay.Host) {
	for _, h := range e.hosts {
		if h.ID != vantage.ID {
			e.det.Watch(vantage, h)
		}
	}
}

// arm installs the standard campaign. eligible is the crash pool —
// exclude the detector vantage (and any peer the overlay cannot lose,
// like a stream source or the only torrent seed).
func (e *chaosEnv) arm(eligible []*underlay.Host) {
	sched, err := chaos.Parse("loss 500 1500 rate=0.3\ncrash 2000 n=3\n")
	if err != nil {
		e.t.Fatalf("campaign schedule: %v", err)
	}
	inj := chaos.NewInjector(e.k, e.tr, sched, e.src.Stream("chaos"))
	inj.Eligible = eligible
	if err := inj.Arm(); err != nil {
		e.t.Fatalf("arm: %v", err)
	}
	e.inj = inj
}

// finish asserts the campaign's universal postconditions — the wave
// crashed 3 peers, the detector evicted exactly those, the overlay
// invariants hold, resilience:* counters made it into the run file —
// and returns the run-file bytes for the byte-identity comparison.
func (e *chaosEnv) finish(report *chaos.Report) []byte {
	e.t.Helper()
	crashed := e.inj.Crashed()
	if len(crashed) != 3 {
		e.t.Fatalf("crash wave took down %v, want 3 peers", crashed)
	}
	if got := e.det.Evicted(); !reflect.DeepEqual(got, crashed) {
		e.t.Fatalf("detector evicted %v, crashed %v", got, crashed)
	}
	if err := report.Err(); err != nil {
		e.t.Fatal(err)
	}
	if err := e.rec.Close(); err != nil {
		e.t.Fatalf("recorder close: %v", err)
	}
	run, err := telemetry.ReadRun(bytes.NewReader(e.buf.Bytes()))
	if err != nil {
		e.t.Fatalf("run file: %v", err)
	}
	ctr := run.Summary.Metrics.Counters
	if ctr["resilience:evict"] != 3 {
		e.t.Fatalf("run file resilience:evict = %d, want 3", ctr["resilience:evict"])
	}
	if ctr["resilience:ping"] == 0 || ctr["resilience:ping_fail"] == 0 {
		e.t.Fatalf("run file missing resilience ping counters: %v", ctr)
	}
	return append([]byte(nil), e.buf.Bytes()...)
}

// evictedSet indexes the detector verdicts for workload-level checks.
func (e *chaosEnv) evictedSet() map[underlay.HostID]bool {
	out := make(map[underlay.HostID]bool)
	for _, id := range e.det.Evicted() {
		out[id] = true
	}
	return out
}

// host resolves an id against the world's host list.
func (e *chaosEnv) host(id underlay.HostID) *underlay.Host {
	for _, h := range e.hosts {
		if h.ID == id {
			return h
		}
	}
	e.t.Fatalf("unknown host id %d", id)
	return nil
}

// chaosCompare runs one scenario twice per pinned seed and requires
// bit-identical run files.
func chaosCompare(t *testing.T, scenario func(t *testing.T, seed int64) []byte) {
	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			a := scenario(t, seed)
			b := scenario(t, seed)
			if !bytes.Equal(a, b) {
				t.Fatalf("run files differ across identical runs (%d vs %d bytes)",
					len(a), len(b))
			}
		})
	}
}

func TestChaosKademlia(t *testing.T) {
	chaosCompare(t, func(t *testing.T, seed int64) []byte {
		e := newChaosEnv(t, "kademlia", seed)
		d := kademlia.New(e.tr, nil, kademlia.DefaultConfig(), e.src.Stream("dht"))
		for _, h := range e.hosts {
			d.AddNode(h)
		}
		d.Bootstrap(4)
		e.det.Heal(d)
		e.watchFrom(e.hosts[0])
		e.arm(e.hosts[1:])
		e.k.Run(chaosHorizon)

		report := chaos.Check("kademlia", d)
		evicted := e.evictedSet()
		nodes := d.Nodes()
		ok, total := 0, 0
		for i := 0; i < len(nodes) && total < 24; i++ {
			n := nodes[i]
			if evicted[n.Host] {
				continue
			}
			total++
			res := d.Lookup(n.Host, nodes[(i*13+5)%len(nodes)].ID)
			if res.Hops > 0 && len(res.Closest) > 0 {
				ok++
			}
			for _, c := range res.Closest {
				if evicted[c.Host] {
					report.Add("dead-refs", "lookup returned evicted contact %d", c.Host)
				}
			}
		}
		report.SuccessFloor("post-fault lookups", ok, total, 0.8)
		var sizes []int
		for _, n := range nodes {
			if !evicted[n.Host] {
				sizes = append(sizes, len(n.Contacts()))
			}
		}
		report.SizeBounds("contacts", sizes, 1, 64*d.Cfg.K)
		return e.finish(report)
	})
}

func TestChaosGnutella(t *testing.T) {
	chaosCompare(t, func(t *testing.T, seed int64) []byte {
		e := newChaosEnv(t, "gnutella", seed)
		ov := gnutella.New(e.tr, nil, gnutella.DefaultConfig(), e.src.Stream("overlay"))
		for i, h := range e.hosts {
			ov.AddNode(h, i%4 == 0)
		}
		ov.JoinAll()
		catalog := workload.NewCatalog(20)
		workload.PopulateZipf(catalog, e.hosts, 8, 1.0, e.src.Stream("content"))
		ov.Catalog = catalog
		e.det.Heal(ov)
		e.watchFrom(e.hosts[0])
		e.arm(e.hosts[1:])
		e.k.Run(chaosHorizon)

		report := chaos.Check("gnutella", ov)
		ok, total := 0, 0
		for i := 0; i < len(e.hosts) && total < 30; i++ {
			h := e.hosts[i]
			if !h.Up {
				continue
			}
			total++
			res := ov.RunSearch(h.ID, workload.ItemID(i%20))
			if !res.Done {
				t.Fatal("post-fault search did not terminate")
			}
			if len(res.Hits) > 0 {
				ok++
			}
		}
		report.SuccessFloor("post-fault searches", ok, total, 0.5)
		return e.finish(report)
	})
}

func TestChaosChord(t *testing.T) {
	chaosCompare(t, func(t *testing.T, seed int64) []byte {
		e := newChaosEnv(t, "chord", seed)
		ring := chord.New(e.tr, nil, chord.DefaultConfig(), e.src.Stream("ring"))
		for _, h := range e.hosts {
			ring.AddNode(h)
		}
		ring.Build()
		e.det.Heal(ring)
		e.watchFrom(e.hosts[0])
		e.arm(e.hosts[1:])
		e.k.Run(chaosHorizon)

		report := chaos.Check("chord", ring)
		keys := e.src.Stream("keys")
		ok, total := 0, 0
		for _, n := range ring.Nodes() {
			if total >= 24 {
				break
			}
			if !n.Host.Up {
				continue
			}
			total++
			res := ring.Lookup(n.Host.ID, chord.ID(keys.Uint64()))
			if res.Owner != nil && res.Owner.Host.Up {
				ok++
			}
		}
		report.SuccessFloor("post-fault lookups", ok, total, 0.8)
		return e.finish(report)
	})
}

func TestChaosBitTorrent(t *testing.T) {
	chaosCompare(t, func(t *testing.T, seed int64) []byte {
		e := newChaosEnv(t, "bittorrent", seed)
		cfg := bittorrent.DefaultConfig()
		s := bittorrent.NewSwarm(e.tr, nil, cfg, e.src.Stream("swarm"))
		s.AddSeed(e.hosts[1])
		for i, h := range e.hosts {
			if i != 1 {
				s.AddLeecher(h)
			}
		}
		s.AssignNeighbors()
		// One upload round every 50 ms, interleaved with the campaign
		// and the detector on the shared kernel.
		for i := 0; i < 380; i++ {
			e.k.At(sim.Time(50*(i+1)), func() { s.Round() })
		}
		e.det.Heal(s)
		e.watchFrom(e.hosts[0])
		// Protect the vantage and the only seed from the wave.
		e.arm(e.hosts[2:])
		e.k.Run(chaosHorizon)

		report := chaos.Check("bittorrent", s)
		evicted := e.evictedSet()
		done, live := 0, 0
		var sizes []int
		for _, p := range s.Peers() {
			if evicted[p.Host.ID] || !p.Host.Up {
				continue
			}
			live++
			if p.Complete() {
				done++
			}
			sizes = append(sizes, p.NeighborCount())
		}
		report.SuccessFloor("live-peer completion", done, live, 0.9)
		report.SizeBounds("neighbor set", sizes, 1, 3*cfg.PeerSet)
		return e.finish(report)
	})
}

func TestChaosGeotree(t *testing.T) {
	chaosCompare(t, func(t *testing.T, seed int64) []byte {
		e := newChaosEnv(t, "geotree", seed)
		gt := geotree.New(e.tr, core.GeoSelector{}, geotree.DefaultConfig())
		for _, h := range e.hosts {
			gt.Insert(h)
		}
		e.det.Heal(gt)
		e.watchFrom(e.hosts[0])
		e.arm(e.hosts[1:])
		e.k.Run(chaosHorizon)

		report := chaos.Check("geotree", gt)
		evicted := e.evictedSet()
		ok, total := 0, 0
		for i := 0; i < len(e.hosts) && total < 20; i++ {
			h := e.hosts[i]
			if !h.Up {
				continue
			}
			total++
			id, _, found := gt.NearestPeer(h, geo.Coord{Lat: h.Lat, Lon: h.Lon})
			if found && !evicted[id] && e.host(id).Up {
				ok++
			}
		}
		report.SuccessFloor("post-fault nearest-peer", ok, total, 0.9)
		return e.finish(report)
	})
}

func TestChaosGSH(t *testing.T) {
	chaosCompare(t, func(t *testing.T, seed int64) []byte {
		e := newChaosEnv(t, "gsh", seed)
		o := gsh.New(e.tr, core.GeoSelector{}, gsh.DefaultConfig())
		for _, h := range e.hosts {
			o.Join(h)
		}
		// Pre-fault content: every key has two holders, published before
		// the loss burst opens.
		n := len(e.hosts)
		for i := 0; i < 20; i++ {
			k := gsh.HashKey(fmt.Sprintf("item-%d", i))
			o.Publish(e.hosts[(i*3)%n], k)
			o.Publish(e.hosts[(i*7+1)%n], k)
		}
		e.det.Heal(o)
		e.watchFrom(e.hosts[0])
		e.arm(e.hosts[1:])
		e.k.Run(chaosHorizon)

		report := chaos.Check("gsh", o)
		evicted := e.evictedSet()
		ok, total := 0, 0
		for i := 0; i < 20; i++ {
			k := gsh.HashKey(fmt.Sprintf("item-%d", i))
			req := e.hosts[(i*11+2)%n]
			if !req.Up {
				continue
			}
			total++
			holders, _ := o.Lookup(req, k)
			live := false
			for _, id := range holders {
				if evicted[id] {
					report.Add("dead-refs", "lookup returned evicted holder %d", id)
				}
				if e.host(id).Up {
					live = true
				}
			}
			if live {
				ok++
			}
		}
		report.SuccessFloor("post-fault lookups", ok, total, 0.6)
		return e.finish(report)
	})
}

func TestChaosBrocade(t *testing.T) {
	chaosCompare(t, func(t *testing.T, seed int64) []byte {
		e := newChaosEnv(t, "brocade", seed)
		b := brocade.Build(e.tr, nil, e.hosts)
		e.det.Heal(b)
		e.watchFrom(e.hosts[0])
		e.arm(e.hosts[1:])
		e.k.Run(chaosHorizon)

		report := chaos.Check("brocade", b)
		// Post-fault routes between live pairs must traverse only live
		// re-elected supernodes; the transport is loss-free again, so
		// every leg delivers.
		ok, total := 0, 0
		n := len(e.hosts)
		for i := 0; i < n && total < 30; i++ {
			src, dst := e.hosts[i], e.hosts[(i*17+9)%n]
			if !src.Up || !dst.Up || src.ID == dst.ID {
				continue
			}
			total++
			st := b.Route(src.ID, dst.ID)
			if st.Hops > 0 && st.Latency > 0 {
				ok++
			}
		}
		report.SuccessFloor("post-fault routes", ok, total, 0.9)
		return e.finish(report)
	})
}

func TestChaosStreaming(t *testing.T) {
	chaosCompare(t, func(t *testing.T, seed int64) []byte {
		e := newChaosEnv(t, "streaming", seed)
		table := resources.GenerateAll(e.net, e.src.Stream("res"))
		sel := &core.ResourceSelector{Table: table, WeightParents: true}
		scfg := streaming.DefaultConfig()
		m := streaming.NewMesh(e.tr, sel, e.hosts[1], scfg, e.src.Stream("mesh"))
		for i, h := range e.hosts {
			if i != 1 {
				m.AddViewer(h)
			}
		}
		m.AssignParents()
		// One stream tick every 100 ms on the shared kernel.
		for i := 0; i < 195; i++ {
			e.k.At(sim.Time(100*(i+1)), func() { m.Tick() })
		}
		e.det.Heal(m)
		e.watchFrom(e.hosts[0])
		// Protect the vantage and the stream source from the wave.
		e.arm(e.hosts[2:])
		e.k.Run(chaosHorizon)

		report := chaos.Check("streaming", m)
		evicted := e.evictedSet()
		var sizes []int
		for _, p := range m.Peers() {
			if !evicted[p.Host.ID] && p.Host.Up {
				sizes = append(sizes, p.ParentCount())
			}
		}
		report.SizeBounds("parent set", sizes, 1, scfg.Parents+2)
		if c := m.Continuity(); c < 0.5 {
			report.Add("success-floor", "continuity %.3f below 0.5", c)
		}
		return e.finish(report)
	})
}
