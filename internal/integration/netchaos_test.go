package integration

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"unap2p/internal/chaos"
	"unap2p/internal/livenode"
	"unap2p/internal/overlay/kademlia"
	"unap2p/internal/underlay"
)

// confSchedule is the shared schedule shape of the sim-vs-live
// conformance check: a correlated loss burst, then a two-peer crash
// wave. Both injectors interpret this exact text — the sim Injector in
// sim time against the simulated underlay, the LiveInjector in wall
// time against real sockets — and both clusters must recover to the
// same invariant floor.
const (
	confSchedule = "loss 400 1000 rate=0.25\ncrash 1400 n=2\n"
	confFloor    = 0.9
)

// TestSimLiveConformance is the tentpole's closing claim: the chaos
// plane means the same thing in both worlds. One schedule shape, two
// injectors; in each world the detector must evict exactly the crash
// wave's victims and post-fault lookups must clear confFloor.
func TestSimLiveConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("live half needs wall-clock fault windows")
	}
	t.Run("sim", func(t *testing.T) { conformanceSim(t) })
	t.Run("live", func(t *testing.T) { conformanceLive(t) })
}

// conformanceSim runs the shared schedule under the deterministic sim
// injector: the same world/detector wiring as the chaos suite, with the
// conformance schedule in place of the standard campaign.
func conformanceSim(t *testing.T) {
	e := newChaosEnv(t, "conformance", 11)
	d := kademlia.New(e.tr, nil, kademlia.DefaultConfig(), e.src.Stream("dht"))
	for _, h := range e.hosts {
		d.AddNode(h)
	}
	d.Bootstrap(4)
	e.det.Heal(d)
	e.watchFrom(e.hosts[0])

	sched, err := chaos.Parse(confSchedule)
	if err != nil {
		t.Fatal(err)
	}
	inj := chaos.NewInjector(e.k, e.tr, sched, e.src.Stream("chaos"))
	inj.Eligible = e.hosts[1:]
	if err := inj.Arm(); err != nil {
		t.Fatal(err)
	}
	e.inj = inj
	e.k.Run(chaosHorizon)

	crashed := inj.Crashed()
	if len(crashed) != 2 {
		t.Fatalf("sim: crash wave took down %v, want 2 peers", crashed)
	}
	if got := e.det.Evicted(); !reflect.DeepEqual(got, crashed) {
		t.Fatalf("sim: detector evicted %v, crashed %v", got, crashed)
	}

	report := chaos.Check("conformance/sim", d)
	evicted := e.evictedSet()
	nodes := d.Nodes()
	ok, total := 0, 0
	for i := 0; i < len(nodes) && total < 24; i++ {
		n := nodes[i]
		if evicted[n.Host] {
			continue
		}
		total++
		res := d.Lookup(n.Host, nodes[(i*13+5)%len(nodes)].ID)
		if res.Hops > 0 && len(res.Closest) > 0 {
			ok++
		}
		for _, c := range res.Closest {
			if evicted[c.Host] {
				report.Add("dead-refs", "lookup returned evicted contact %d", c.Host)
			}
		}
	}
	report.SuccessFloor("post-fault lookups", ok, total, confFloor)
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
	if err := e.rec.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("sim: evicted %v, lookups %d/%d", crashed, ok, total)
}

// conformanceLive runs the same schedule text under the wall-clock
// injector on an in-process socket cluster.
func conformanceLive(t *testing.T) {
	requireSockets(t)
	const n = 6
	members := make([]*livenode.Member, n)
	var bootstrap string
	for i := 0; i < n; i++ {
		node, err := livenode.StartRetry(livenode.Config{
			ID:           underlay.HostID(i),
			Overlay:      "kademlia",
			PingInterval: 100 * time.Millisecond,
			Timeout:      150 * time.Millisecond,
			SuspectAfter: 2,
			EvictAfter:   8,
			Logf:         t.Logf,
		}, 5)
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		if i == 0 {
			bootstrap = node.Net().LocalAddr().String()
			members[i] = livenode.NewMember(node, "")
		} else {
			if err := node.Join(bootstrap); err != nil {
				t.Fatalf("join node %d: %v", i, err)
			}
			members[i] = livenode.NewMember(node, bootstrap)
		}
		m := members[i]
		t.Cleanup(func() { m.Kill() })
	}
	awaitNet(t, "full address books", func() bool {
		for _, m := range members {
			if m.Node().Peers() != n {
				return false
			}
		}
		return true
	})

	sched, err := chaos.Parse(confSchedule)
	if err != nil {
		t.Fatal(err)
	}
	lm := make([]chaos.LiveMember, n)
	for i, m := range members {
		lm[i] = m
	}
	inj, err := chaos.NewLiveInjector(sched, lm, chaos.LiveConfig{
		Seed:    7,
		ASOf:    livenode.ASPlacement(3),
		Protect: []underlay.HostID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	victims := inj.Victims()[0]
	isVictim := map[underlay.HostID]bool{}
	for _, id := range victims {
		isVictim[id] = true
	}
	if err := inj.Start(time.Now()); err != nil {
		t.Fatal(err)
	}
	defer inj.Stop()
	inj.Wait()
	if err := inj.Err(); err != nil {
		t.Fatal(err)
	}
	if got := inj.Crashed(); !reflect.DeepEqual(got, victims) {
		t.Fatalf("live: Crashed() = %v, planned %v", got, victims)
	}

	awaitNet(t, "survivors evict exactly the victims", func() bool {
		for _, m := range members {
			if isVictim[m.ID()] {
				continue
			}
			if !reflect.DeepEqual(m.Node().Evicted(), victims) {
				return false
			}
		}
		return true
	})

	report := &chaos.Report{Name: "conformance/live"}
	ok, total := 0, 0
	for _, m := range members {
		if isVictim[m.ID()] {
			continue
		}
		if err := chaos.Check("conformance/live", m.Node().ChaosSubject()).Err(); err != nil {
			t.Error(err)
		}
		ok += m.Node().RunLookups(20)
		total += 20
	}
	report.SuccessFloor("post-fault lookups", ok, total, confFloor)
	if err := report.Err(); err != nil {
		t.Fatal(err)
	}
	t.Logf("live: evicted %v, lookups %d/%d", victims, ok, total)
}

// awaitNet is the integration-package poll helper (livenode's
// awaitCluster lives in its own test package).
func awaitNet(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := waitBudget(t, 30*time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// --- multi-process live campaign ---

// netChaosSchedule leaves the first seconds fault-free so the cluster
// converges and reports a healthy baseline round before the burst, then
// crashes two nodes. Loss 3.0–3.8 s (8 missed intervals would need
// 800 ms of total loss — rate 0.25 cannot sustain it), crash at 4.5 s.
const netChaosSchedule = "loss 3000 3800 rate=0.25\ncrash 4500 n=2\n"

// procMember adapts an unapnode OS process to chaos.LiveMember: Kill is
// SIGKILL — no deferred shutdown, no goodbye, exactly what a crash
// means. OS processes do not revive (the schedule has no revive
// windows) and arm their own drop filters from the -chaos flags.
type procMember struct {
	id  underlay.HostID
	cmd *exec.Cmd
}

func (p *procMember) ID() underlay.HostID { return p.id }
func (p *procMember) Kill() error         { return p.cmd.Process.Kill() }
func (p *procMember) Revive() error {
	return fmt.Errorf("integration: OS-process members do not revive")
}

var (
	metricsRe  = regexp.MustCompile(`unapnode id=(\d+) metrics on http://(\S+)/metrics`)
	idLookupRe = regexp.MustCompile(`unapnode id=(\d+) lookups ok=(\d+)/(\d+)`)
)

// TestNetChaos is the OS-process tier of the live campaign: real
// unapnode daemons, real datagrams, SIGKILL crash waves, verification
// through each survivor's /metrics endpoint — the distributed-harness
// shape D-P2P-Sim+ argues for. `make live-chaos` runs it for all three
// overlays.
//
// Tunables:
//
//	UNAP_NETCHAOS_OVERLAYS  comma list            (default "kademlia")
//	UNAP_NETCHAOS_NODES     cluster size          (default 6)
//	UNAP_NETCHAOS_LOOKUPS   lookups per round     (default 25)
func TestNetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos campaign: skipped in -short mode")
	}
	requireSockets(t)
	overlays := strings.Split(envOr("UNAP_NETCHAOS_OVERLAYS", "kademlia"), ",")
	nodes := envInt(t, "UNAP_NETCHAOS_NODES", 6)
	lookups := envInt(t, "UNAP_NETCHAOS_LOOKUPS", 25)
	bin := buildUnapnode(t)

	schedFile := filepath.Join(t.TempDir(), "campaign.sched")
	if err := os.WriteFile(schedFile, []byte(netChaosSchedule), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, overlay := range overlays {
		overlay = strings.TrimSpace(overlay)
		t.Run(overlay, func(t *testing.T) {
			runNetChaos(t, bin, schedFile, overlay, nodes, lookups)
		})
	}
}

func runNetChaos(t *testing.T, bin, schedFile, overlay string, nodes, lookups int) {
	sched, err := chaos.Parse(netChaosSchedule)
	if err != nil {
		t.Fatal(err)
	}
	// One epoch for everything: the daemons' drop filters (via flag) and
	// the injector's crash timers interpret the schedule against it.
	epoch := time.Now()

	procs := make([]*exec.Cmd, nodes)
	outputs := make([]*strings.Builder, nodes)
	var outMu sync.Mutex
	lines := make(chan string, 256)

	startNode := func(i int, bootstrap string) {
		args := []string{
			"-id", strconv.Itoa(i),
			"-listen", "127.0.0.1:0",
			"-overlay", overlay,
			"-ping", "100ms",
			"-timeout", "150ms",
			"-suspect-after", "2",
			"-evict-after", "8",
			"-expect", strconv.Itoa(nodes),
			"-lookups", strconv.Itoa(lookups),
			"-relookup", "400ms",
			"-metrics", "127.0.0.1:0",
			"-chaos", schedFile,
			"-chaos-epoch", strconv.FormatInt(epoch.UnixMilli(), 10),
			"-chaos-ases", "3",
			"-chaos-seed", "7",
		}
		if bootstrap != "" {
			args = append(args, "-bootstrap", bootstrap)
		}
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		procs[i] = cmd
		outputs[i] = &strings.Builder{}
		go func(i int) {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				outMu.Lock()
				fmt.Fprintln(outputs[i], line)
				outMu.Unlock()
				lines <- line
			}
		}(i)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()

	startNode(0, "")
	bootstrap := awaitLine(t, lines, regexp.MustCompile(`listening on (\S+)`), 10*time.Second)
	for i := 1; i < nodes; i++ {
		startNode(i, bootstrap)
	}

	// Collect each node's metrics address and its first (baseline)
	// lookup report: once every process has reported, the cluster is
	// converged and routing — before the schedule's first window opens.
	metricsAddr := make(map[underlay.HostID]string, nodes)
	baseline := make(map[underlay.HostID]bool, nodes)
	deadline := time.After(time.Until(waitBudget(t, 60*time.Second)))
	for len(baseline) < nodes {
		select {
		case line := <-lines:
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				id, _ := strconv.Atoi(m[1])
				metricsAddr[underlay.HostID(id)] = m[2]
			}
			if m := idLookupRe.FindStringSubmatch(line); m != nil {
				id, _ := strconv.Atoi(m[1])
				baseline[underlay.HostID(id)] = true
			}
		case <-deadline:
			t.Fatalf("%s: only %d/%d processes reported a baseline round; outputs:\n%s",
				overlay, len(baseline), nodes, dumpOutputs(&outMu, outputs))
		}
	}
	if len(metricsAddr) != nodes {
		t.Fatalf("%s: metrics addresses for %d/%d nodes", overlay, len(metricsAddr), nodes)
	}
	t.Logf("%s: cluster converged %v after epoch", overlay, time.Since(epoch).Round(time.Millisecond))

	// The injector owns only the crash waves here — the daemons armed
	// their own drop filters from the flags. Same epoch, same seed, same
	// victim-selection discipline as the in-process tier.
	lm := make([]chaos.LiveMember, nodes)
	for i := range procs {
		lm[i] = &procMember{id: underlay.HostID(i), cmd: procs[i]}
	}
	inj, err := chaos.NewLiveInjector(sched, lm, chaos.LiveConfig{
		Seed:    7,
		ASOf:    livenode.ASPlacement(3),
		Protect: []underlay.HostID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	victims := inj.Victims()[0]
	isVictim := map[underlay.HostID]bool{}
	for _, id := range victims {
		isVictim[id] = true
	}
	if err := inj.Start(epoch); err != nil {
		t.Fatal(err)
	}
	defer inj.Stop()
	inj.Wait()
	if err := inj.Err(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: SIGKILLed %v", overlay, victims)

	// Every survivor's /metrics must show exactly the victims evicted —
	// evict_total == wave size (no spurious evictions from the loss
	// burst) and the peers gauge shrunk by exactly the wave.
	awaitNet(t, "survivor metrics show exact evictions", func() bool {
		for id, addr := range metricsAddr {
			if isVictim[id] {
				continue
			}
			m, err := chaos.ScrapeProm("http://" + addr + "/metrics")
			if err != nil {
				return false
			}
			if m["unap2p_resilience_evict_total"] != float64(len(victims)) {
				return false
			}
			if m["unap2p_peers"] != float64(nodes-len(victims)) {
				return false
			}
		}
		return true
	})
	ttr := time.Since(inj.WaveTimes()[0])
	t.Logf("%s: all survivors evicted exactly %v, time-to-recover %v",
		overlay, victims, ttr.Round(time.Millisecond))

	// Reconvergence: drain the stale reports, then require every
	// survivor to print a post-eviction round clearing the 95% floor.
	for {
		select {
		case <-lines:
			continue
		default:
		}
		break
	}
	passed := make(map[underlay.HostID]bool, nodes)
	last := make(map[underlay.HostID]string)
	deadline = time.After(time.Until(waitBudget(t, 90*time.Second)))
	for len(passed) < nodes-len(victims) {
		select {
		case line := <-lines:
			m := idLookupRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			id, _ := strconv.Atoi(m[1])
			hid := underlay.HostID(id)
			if isVictim[hid] {
				continue
			}
			ok, _ := strconv.Atoi(m[2])
			total, _ := strconv.Atoi(m[3])
			last[hid] = fmt.Sprintf("%d/%d", ok, total)
			if total > 0 && ok*100 >= total*95 {
				passed[hid] = true
			}
		case <-deadline:
			t.Fatalf("%s: only %d/%d survivors cleared the 95%% floor; last rounds %v; outputs:\n%s",
				overlay, len(passed), nodes-len(victims), last, dumpOutputs(&outMu, outputs))
		}
	}
	t.Logf("%s: every survivor reconverged to ≥95%% verified lookups (%v)", overlay, last)

	// Clean shutdown of the survivors; the victims were SIGKILLed and
	// just get reaped.
	for i, p := range procs {
		if isVictim[underlay.HostID(i)] {
			p.Wait()
			procs[i] = nil
			continue
		}
		p.Process.Signal(syscall.SIGTERM)
	}
	for i, p := range procs {
		if p == nil {
			continue
		}
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("node %d did not exit cleanly on SIGTERM: %v\n%s",
					i, err, dumpOutputs(&outMu, outputs[i:i+1]))
			}
		case <-time.After(10 * time.Second):
			p.Process.Kill()
			t.Errorf("node %d ignored SIGTERM", i)
		}
		procs[i] = nil
	}
}
