package integration

import (
	"testing"

	"unap2p/internal/overlay/bittorrent"
	"unap2p/internal/overlay/gnutella"
	"unap2p/internal/overlay/kademlia"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
	"unap2p/internal/workload"
)

// lossy returns a transport dropping 10% of messages, deterministically
// per seed.
func lossy(net *underlay.Network, k *sim.Kernel, src *sim.Source) *transport.Transport {
	tr := transport.New(net, k)
	tr.Faults = transport.Faults{LossRate: 0.1, Rand: src.Stream("faults")}
	return tr
}

// TestGnutellaUnderLoss floods searches through a 10%-lossy transport:
// the overlay must not panic, floods must still terminate, and most
// searches must still find well-replicated content (lost branches shrink
// result sets; they must not wedge the protocol).
func TestGnutellaUnderLoss(t *testing.T) {
	net, hosts, src := buildWorld(3, 10)
	k := sim.NewKernel()
	tr := lossy(net, k, src)
	ov := gnutella.New(tr, nil, gnutella.DefaultConfig(), src.Stream("overlay"))
	for _, h := range hosts {
		ov.AddNode(h, true)
	}
	ov.JoinAll()
	catalog := workload.NewCatalog(20)
	workload.PopulateZipf(catalog, hosts, 8, 1.0, src.Stream("content"))
	ov.Catalog = catalog

	found := 0
	for i := 0; i < 40; i++ {
		res := ov.RunSearch(hosts[i%len(hosts)].ID, workload.ItemID(i%20))
		if !res.Done {
			t.Fatal("search did not terminate under loss")
		}
		if len(res.Hits) > 0 {
			found++
			ov.Download(res)
		}
	}
	if found < 20 {
		t.Fatalf("only %d/40 searches succeeded under 10%% loss", found)
	}
	if tr.StatsFor("query").Dropped == 0 && tr.StatsFor("ping").Dropped == 0 {
		t.Fatal("fault injection never dropped anything")
	}
}

// TestKademliaUnderLoss runs iterative lookups over a lossy transport
// with RoundTrip retries enabled: lookups must complete with bounded
// message counts (retries are capped) and mostly still converge.
func TestKademliaUnderLoss(t *testing.T) {
	net, hosts, src := buildWorld(4, 8)
	tr := lossy(net, nil, src)
	tr.Retry = transport.RetryPolicy{Budget: 2}
	d := kademlia.New(tr, nil, kademlia.DefaultConfig(), src.Stream("dht"))
	for _, h := range hosts {
		d.AddNode(h)
	}
	d.Bootstrap(4)

	nodes := d.Nodes()
	for i := 0; i < 30; i++ {
		target := nodes[(i*13+5)%len(nodes)].ID
		res := d.Lookup(nodes[i%len(nodes)].Host, target)
		if res.Hops == 0 {
			t.Fatal("lookup made no progress")
		}
		// Bounded recovery: with α=3, K=8 and ≤2 retries per RPC the
		// message count cannot explode past a small multiple of the
		// loss-free worst case.
		if res.Msgs > 6*(res.Hops+1)*d.Cfg.Alpha*(tr.Retry.Budget+1) {
			t.Fatalf("unbounded retry traffic: %d msgs in %d hops", res.Msgs, res.Hops)
		}
	}
	if tr.StatsFor("find_node").Dropped == 0 {
		t.Fatal("fault injection never dropped an RPC")
	}
}

// TestBitTorrentUnderLoss completes a swarm over a lossy transport: lost
// pieces are re-requested in later rounds, so every peer still finishes —
// just in more rounds than the loss-free run.
func TestBitTorrentUnderLoss(t *testing.T) {
	net, hosts, src := buildWorld(5, 6)
	tr := lossy(net, nil, src)
	cfg := bittorrent.DefaultConfig()
	cfg.Pieces = 32
	s := bittorrent.NewSwarm(tr, nil, cfg, src.Stream("swarm"))
	s.AddSeed(hosts[0])
	for _, h := range hosts[1:] {
		s.AddLeecher(h)
	}
	s.AssignNeighbors()
	s.Run(600)
	st := s.Stats()
	if st.Unfinished != 0 {
		t.Fatalf("%d peers never completed under 10%% loss", st.Unfinished)
	}
	if tr.StatsFor("piece").Dropped == 0 {
		t.Fatal("fault injection never dropped a piece")
	}
}

// fakeMessenger wraps a real transport but records every send — the
// injection seam the constructor-based wiring exists for: protocol tests
// can observe or manipulate traffic without touching the underlay code.
type fakeMessenger struct {
	*transport.Transport
	sends []string
}

func (f *fakeMessenger) Send(from, to *underlay.Host, bytes uint64, msgType string) transport.Result {
	f.sends = append(f.sends, msgType)
	return f.Transport.Send(from, to, bytes, msgType)
}

func (f *fakeMessenger) RoundTrip(from, to *underlay.Host, reqBytes, respBytes uint64,
	reqType, respType string) transport.Result {
	f.sends = append(f.sends, reqType, respType)
	return f.Transport.RoundTrip(from, to, reqBytes, respBytes, reqType, respType)
}

// TestFakeTransportInjection demonstrates satellite 6: a test double
// implementing transport.Messenger slots into an overlay constructor and
// observes the protocol's traffic.
func TestFakeTransportInjection(t *testing.T) {
	net, hosts, src := buildWorld(6, 6)
	fake := &fakeMessenger{Transport: transport.Over(net)}
	d := kademlia.New(fake, nil, kademlia.DefaultConfig(), src.Stream("dht"))
	for _, h := range hosts[:20] {
		d.AddNode(h)
	}
	d.Bootstrap(3)
	before := len(fake.sends)
	if before == 0 {
		t.Fatal("fake transport saw no bootstrap traffic")
	}
	d.Lookup(d.Nodes()[0].Host, d.Nodes()[5].ID)
	if len(fake.sends) == before {
		t.Fatal("fake transport saw no lookup traffic")
	}
	for _, kind := range fake.sends {
		switch kind {
		case "find_node", "find_value", "response", "store":
		default:
			t.Fatalf("unexpected message type %q", kind)
		}
	}
}
