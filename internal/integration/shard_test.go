package integration

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"unap2p/internal/experiments"
	"unap2p/internal/telemetry"
)

// recordMegascale runs exp-megascale for one overlay with a telemetry
// probe attached — the same wiring as `unapctl record -probe` — and
// returns the full run file bytes plus the rendered result table.
func recordMegascale(t *testing.T, seed int64, peers, shards int, overlay string) ([]byte, *experiments.Result) {
	t.Helper()
	params := map[string]string{
		"peers":   strconv.Itoa(peers),
		"shards":  strconv.Itoa(shards),
		"overlay": overlay,
	}
	var buf bytes.Buffer
	rec := telemetry.NewRecorder(telemetry.Config{
		Capacity: 1 << 14,
		Sink:     telemetry.NewRunWriter(&buf),
		Manifest: telemetry.Manifest{
			Name: "exp-megascale", Experiment: "exp-megascale",
			Seed: seed, Scale: 1, Params: params,
		},
	})
	probe := telemetry.NewProbe(rec, telemetry.ProbeConfig{})
	res, err := experiments.Run("exp-megascale", experiments.RunConfig{
		Seed: seed, Scale: 1, Obs: probe, Params: params,
	})
	if err != nil {
		t.Fatalf("exp-megascale: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("close recorder: %v", err)
	}
	return buf.Bytes(), &res
}

// TestMegascaleRunFilesByteIdentical pins the reproducibility contract
// of the megascale runtime: for a fixed (seed, shard count, overlay) the
// entire run file — manifest, barrier samples, closing metrics snapshot
// — and the rendered table are byte-for-byte identical across runs, for
// every compact overlay port. Three seeds, single-shard and four-shard,
// each overlay.
func TestMegascaleRunFilesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated megascale runs skipped in -short")
	}
	for _, overlay := range []string{"kademlia", "chord", "gnutella"} {
		for _, seed := range []int64{1, 2, 3} {
			for _, shards := range []int{1, 4} {
				fileA, resA := recordMegascale(t, seed, 2000, shards, overlay)
				fileB, resB := recordMegascale(t, seed, 2000, shards, overlay)
				if !bytes.Equal(fileA, fileB) {
					t.Fatalf("%s seed %d K=%d: run files differ (%d vs %d bytes)",
						overlay, seed, shards, len(fileA), len(fileB))
				}
				if resA.Render() != resB.Render() {
					t.Fatalf("%s seed %d K=%d: rendered tables differ", overlay, seed, shards)
				}
				if len(fileA) == 0 {
					t.Fatalf("%s seed %d K=%d: empty run file", overlay, seed, shards)
				}
				// The run file must carry the sharded kernel's gauges and the
				// barrier-sampled health sources, or 'series' has nothing to plot.
				for _, want := range []string{"kernel:sharded", "megascale", "megachurn"} {
					if !bytes.Contains(fileA, []byte(want)) {
						t.Fatalf("%s seed %d K=%d: run file lacks %q", overlay, seed, shards, want)
					}
				}
			}
		}
	}
}

// megasmokeRow asserts one overlay's largest sweep point completed
// cleanly: full population, no late cross-shard events, ground-truth
// success above the overlay's floor.
func megasmokeRow(t *testing.T, res *experiments.Result, overlay string, peers int, floor float64) {
	t.Helper()
	var last []string
	for _, row := range res.Rows {
		if row[0] == overlay {
			last = row
		}
	}
	if last == nil {
		t.Fatalf("no rows for overlay %s", overlay)
	}
	if last[1] != fmt.Sprint(peers) {
		t.Fatalf("%s largest point ran %s peers, want %d", overlay, last[1], peers)
	}
	if late := last[5]; late != "0" {
		t.Fatalf("%s late cross-shard events: %s — window exceeded lookahead", overlay, late)
	}
	exact, err := strconv.ParseFloat(strings.TrimSuffix(last[7], "%"), 64)
	if err != nil {
		t.Fatalf("%s exact cell %q: %v", overlay, last[7], err)
	}
	if exact < floor {
		t.Fatalf("%s ground-truth success %.1f%% < %.0f%% at %d peers", overlay, exact, floor, peers)
	}
}

// TestMegascaleSmoke is the CI smoke gate (`make megascale-smoke`): one
// mid-size sharded run per compact overlay under race, sized by
// UNAP_MEGASMOKE_PEERS. The default stays small enough for the ordinary
// test run.
func TestMegascaleSmoke(t *testing.T) {
	peers := 6000
	if v := os.Getenv("UNAP_MEGASMOKE_PEERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 100 {
			t.Fatalf("UNAP_MEGASMOKE_PEERS=%q: %v", v, err)
		}
		peers = n
	}
	for _, shards := range []int{1, 4} {
		file, res := recordMegascale(t, 7, peers, shards, "all")
		if len(file) == 0 {
			t.Fatalf("K=%d: empty run file", shards)
		}
		if len(res.Rows) != 9 {
			t.Fatalf("K=%d: want 3 overlays × 3 sweep points, got %d rows", shards, len(res.Rows))
		}
		megasmokeRow(t, res, "kademlia", peers, 80)
		megasmokeRow(t, res, "chord", peers, 80)
		// A TTL-bounded flood reaches a roughly constant neighborhood,
		// so gnutella's hit rate falls ~1/peers as the haystack grows
		// (~60% at 6k, ~14% at 50k, ~1% at 1M). Scale the floor with
		// size instead of pinning the 6k-peer figure.
		gnutellaFloor := math.Min(50, 150_000/float64(peers))
		megasmokeRow(t, res, "gnutella", peers, gnutellaFloor)
	}
}
