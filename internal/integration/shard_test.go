package integration

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"unap2p/internal/experiments"
	"unap2p/internal/telemetry"
)

// recordMegascale runs exp-megascale with a telemetry probe attached —
// the same wiring as `unapctl record -probe` — and returns the full run
// file bytes plus the rendered result table.
func recordMegascale(t *testing.T, seed int64, peers, shards int) ([]byte, *experiments.Result) {
	t.Helper()
	params := map[string]string{
		"peers":  strconv.Itoa(peers),
		"shards": strconv.Itoa(shards),
	}
	var buf bytes.Buffer
	rec := telemetry.NewRecorder(telemetry.Config{
		Capacity: 1 << 14,
		Sink:     telemetry.NewRunWriter(&buf),
		Manifest: telemetry.Manifest{
			Name: "exp-megascale", Experiment: "exp-megascale",
			Seed: seed, Scale: 1, Params: params,
		},
	})
	probe := telemetry.NewProbe(rec, telemetry.ProbeConfig{})
	res, err := experiments.Run("exp-megascale", experiments.RunConfig{
		Seed: seed, Scale: 1, Obs: probe, Params: params,
	})
	if err != nil {
		t.Fatalf("exp-megascale: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("close recorder: %v", err)
	}
	return buf.Bytes(), &res
}

// TestMegascaleRunFilesByteIdentical pins the reproducibility contract
// from the sharded-kernel refactor: for a fixed (seed, shard count) the
// entire run file — manifest, barrier samples, closing metrics snapshot
// — and the rendered table are byte-for-byte identical across runs.
// Three seeds, single-shard and four-shard each.
func TestMegascaleRunFilesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated megascale runs skipped in -short")
	}
	for _, seed := range []int64{1, 2, 3} {
		for _, shards := range []int{1, 4} {
			fileA, resA := recordMegascale(t, seed, 2000, shards)
			fileB, resB := recordMegascale(t, seed, 2000, shards)
			if !bytes.Equal(fileA, fileB) {
				t.Fatalf("seed %d K=%d: run files differ (%d vs %d bytes)",
					seed, shards, len(fileA), len(fileB))
			}
			if resA.Render() != resB.Render() {
				t.Fatalf("seed %d K=%d: rendered tables differ", seed, shards)
			}
			if len(fileA) == 0 {
				t.Fatalf("seed %d K=%d: empty run file", seed, shards)
			}
			// The run file must carry the sharded kernel's gauges and the
			// barrier-sampled health sources, or 'series' has nothing to plot.
			for _, want := range []string{"kernel:sharded", "megascale", "megachurn"} {
				if !bytes.Contains(fileA, []byte(want)) {
					t.Fatalf("seed %d K=%d: run file lacks %q", seed, shards, want)
				}
			}
		}
	}
}

// TestMegascaleSmoke is the CI smoke gate (`make megascale-smoke`): one
// mid-size sharded run under race, sized by UNAP_MEGASMOKE_PEERS. The
// default stays small enough for the ordinary test run.
func TestMegascaleSmoke(t *testing.T) {
	peers := 6000
	if v := os.Getenv("UNAP_MEGASMOKE_PEERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 100 {
			t.Fatalf("UNAP_MEGASMOKE_PEERS=%q: %v", v, err)
		}
		peers = n
	}
	file, res := recordMegascale(t, 7, peers, 4)
	if len(file) == 0 {
		t.Fatal("empty run file")
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 sweep points, got %d", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last[0] != fmt.Sprint(peers) {
		t.Fatalf("largest point ran %s peers, want %d", last[0], peers)
	}
	if late := last[4]; late != "0" {
		t.Fatalf("late cross-shard events: %s — window exceeded lookahead", late)
	}
	exact, err := strconv.ParseFloat(strings.TrimSuffix(last[6], "%"), 64)
	if err != nil {
		t.Fatalf("exact cell %q: %v", last[6], err)
	}
	if exact < 80 {
		t.Fatalf("exact lookup rate %.1f%% < 80%% at %d peers", exact, peers)
	}
}
