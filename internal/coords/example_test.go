package coords_test

import (
	"fmt"

	"unap2p/internal/coords"
	"unap2p/internal/linalg"
)

// The worked example of Lim et al.: four beacons in two ASes (intra-AS
// delay 1, inter-AS delay 3) calibrate a 2-dimensional coordinate system
// with scaling factor α = 0.6; a host measuring delays (1,1,4,4) lands at
// (−3, 1.8) — exactly the numbers published in their paper.
func ExampleBuildICS() {
	d := linalg.FromRows([][]float64{
		{0, 1, 3, 3},
		{1, 0, 3, 3},
		{3, 3, 0, 1},
		{3, 3, 1, 0},
	})
	ics, err := coords.BuildICS(d, coords.ICSOptions{Dim: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("alpha = %.1f\n", ics.Alpha)
	xa, _ := ics.HostCoord([]float64{1, 1, 4, 4})
	fmt.Printf("host A = [%.1f, %.1f]\n", xa[0], xa[1])
	fmt.Printf("predicted delay to beacon 3 = %.2f\n",
		ics.Predict(ics.BeaconCoords[2], xa))
	// Output:
	// alpha = 0.6
	// host A = [-3.0, 1.8]
	// predicted delay to beacon 3 = 3.42
}
