// Package coords implements the latency-prediction techniques of §3.2:
// the decentralized Vivaldi network coordinate system (Dabek et al.), the
// landmark/PCA Internet Coordinate System of Lim et al. (Figure 4), and
// landmark-ordering bins (Ratnasamy et al.). Prediction lets every peer
// estimate the latency to any other peer from a handful of measurements,
// avoiding the O(N²) probing overhead of explicit measurement.
package coords

import (
	"math"
	"math/rand"
	"sort"
)

// VivaldiConfig tunes the spring-relaxation update.
type VivaldiConfig struct {
	// Dim is the Euclidean dimensionality of the coordinate space.
	Dim int
	// CE is the error-averaging weight c_e (typically 0.25).
	CE float64
	// CC is the timestep weight c_c (typically 0.25).
	CC float64
	// UseHeight enables the height-vector model: predicted latency is the
	// Euclidean part plus both nodes' heights, capturing access-link delay
	// that no Euclidean embedding can express.
	UseHeight bool
	// MinHeight floors the height component (metres of "access delay").
	MinHeight float64
}

// DefaultVivaldiConfig returns the parameters from the Vivaldi paper:
// 2 dimensions + height, c_e = c_c = 0.25.
func DefaultVivaldiConfig() VivaldiConfig {
	return VivaldiConfig{Dim: 2, CE: 0.25, CC: 0.25, UseHeight: true, MinHeight: 0.1}
}

// VivaldiNode is one participant's coordinate state.
type VivaldiNode struct {
	cfg VivaldiConfig
	// Pos is the Euclidean component.
	Pos []float64
	// Height is the non-Euclidean height component (0 when disabled).
	Height float64
	// Err is the node's confidence-weighted relative error estimate,
	// starting at 1 (no confidence).
	Err float64
	// Samples counts observations applied.
	Samples int
}

// NewVivaldiNode returns a node at the origin with error 1.
func NewVivaldiNode(cfg VivaldiConfig) *VivaldiNode {
	if cfg.Dim <= 0 {
		panic("coords: vivaldi dimension must be positive")
	}
	n := &VivaldiNode{cfg: cfg, Pos: make([]float64, cfg.Dim), Err: 1}
	if cfg.UseHeight {
		n.Height = cfg.MinHeight
	}
	return n
}

// Distance predicts the latency between two coordinate states.
func (n *VivaldiNode) Distance(o *VivaldiNode) float64 {
	var s float64
	for i := range n.Pos {
		d := n.Pos[i] - o.Pos[i]
		s += d * d
	}
	d := math.Sqrt(s)
	if n.cfg.UseHeight {
		d += n.Height + o.Height
	}
	return d
}

// Update applies one RTT observation against a remote node's coordinate.
// rtt must be positive; r supplies the random direction used when the two
// coordinates coincide.
func (n *VivaldiNode) Update(remote *VivaldiNode, rtt float64, r *rand.Rand) {
	if rtt <= 0 {
		return
	}
	n.Samples++

	// Sample weight balances local and remote confidence.
	w := 0.5
	if n.Err+remote.Err > 0 {
		w = n.Err / (n.Err + remote.Err)
	}

	dist := n.Distance(remote)
	relErr := math.Abs(dist-rtt) / rtt

	// Exponentially weighted moving average of the relative error.
	ce := n.cfg.CE
	n.Err = relErr*ce*w + n.Err*(1-ce*w)
	if n.Err > 2.0 {
		n.Err = 2.0
	}
	if n.Err < 0.001 {
		n.Err = 0.001
	}

	// Unit vector from remote toward us (the spring's push direction).
	unit := make([]float64, len(n.Pos))
	var norm float64
	for i := range unit {
		unit[i] = n.Pos[i] - remote.Pos[i]
		norm += unit[i] * unit[i]
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		// Coincident coordinates: pick a random direction.
		for i := range unit {
			unit[i] = r.NormFloat64()
		}
		norm = 0
		for _, v := range unit {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			unit[0], norm = 1, 1
		}
	}
	for i := range unit {
		unit[i] /= norm
	}

	// Displacement along the spring: δ·(rtt − dist).
	delta := n.cfg.CC * w
	force := delta * (rtt - dist)
	for i := range n.Pos {
		n.Pos[i] += force * unit[i]
	}
	if n.cfg.UseHeight {
		// Heights absorb a proportional share of the force (Dabek §5.4):
		// stretching the spring raises both heights.
		denom := norm
		if denom < 1e-9 {
			denom = 1e-9
		}
		n.Height += force * n.Height / denom
		if n.Height < n.cfg.MinHeight {
			n.Height = n.cfg.MinHeight
		}
	}
}

// Clone returns a copy of the node's coordinate state (used to exchange
// coordinates in messages without aliasing).
func (n *VivaldiNode) Clone() *VivaldiNode {
	c := &VivaldiNode{cfg: n.cfg, Height: n.Height, Err: n.Err, Samples: n.Samples}
	c.Pos = append([]float64(nil), n.Pos...)
	return c
}

// VivaldiSystem runs Vivaldi over a set of nodes against a ground-truth
// RTT function, in rounds where every node probes a few random neighbors.
// It is the driver experiments use to converge a coordinate system.
type VivaldiSystem struct {
	Nodes []*VivaldiNode
	// RTT returns the true round-trip time between node indices.
	RTT func(i, j int) float64
	// NeighborsPerRound is how many random probes each node sends per
	// round (Vivaldi's steady-state gossip).
	NeighborsPerRound int
	// Probes counts total measurements issued, for overhead accounting.
	Probes uint64

	r *rand.Rand
}

// NewVivaldiSystem creates n nodes with the given config.
func NewVivaldiSystem(n int, cfg VivaldiConfig, rtt func(i, j int) float64, r *rand.Rand) *VivaldiSystem {
	s := &VivaldiSystem{RTT: rtt, NeighborsPerRound: 4, r: r}
	for i := 0; i < n; i++ {
		s.Nodes = append(s.Nodes, NewVivaldiNode(cfg))
	}
	return s
}

// Round performs one gossip round.
func (s *VivaldiSystem) Round() {
	n := len(s.Nodes)
	if n < 2 {
		return
	}
	for i := 0; i < n; i++ {
		for k := 0; k < s.NeighborsPerRound; k++ {
			j := s.r.Intn(n)
			for j == i {
				j = s.r.Intn(n)
			}
			s.Probes++
			s.Nodes[i].Update(s.Nodes[j].Clone(), s.RTT(i, j), s.r)
		}
	}
}

// Run performs the given number of rounds.
func (s *VivaldiSystem) Run(rounds int) {
	for i := 0; i < rounds; i++ {
		s.Round()
	}
}

// Predict returns the embedded distance between nodes i and j.
func (s *VivaldiSystem) Predict(i, j int) float64 {
	return s.Nodes[i].Distance(s.Nodes[j])
}

// MedianRelativeError evaluates embedding quality over all pairs:
// median of |predicted − actual| / actual. Vivaldi typically converges to
// ≈ 0.1–0.3 on internet-like latency matrices.
func (s *VivaldiSystem) MedianRelativeError() float64 {
	var errs []float64
	n := len(s.Nodes)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			actual := s.RTT(i, j)
			if actual <= 0 {
				continue
			}
			errs = append(errs, math.Abs(s.Predict(i, j)-actual)/actual)
		}
	}
	if len(errs) == 0 {
		return 0
	}
	return median(errs)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}

// HealthStats implements the telemetry HealthReporter hook: embedding
// quality over time — the convergence curve Dabek et al. judge Vivaldi
// by. MedianRelativeError is an O(n²) all-pairs evaluation, fine at
// simulated populations; sample accordingly.
//
//   - nodes: embedded population
//   - median_rel_error: median |predicted-actual|/actual RTT error
//   - probes: cumulative measurements issued (the collection cost)
func (s *VivaldiSystem) HealthStats() map[string]float64 {
	return map[string]float64{
		"nodes":            float64(len(s.Nodes)),
		"median_rel_error": s.MedianRelativeError(),
		"probes":           float64(s.Probes),
	}
}
