package coords

import (
	"fmt"
	"math"

	"unap2p/internal/linalg"
)

// ICS is the landmark-based Internet Coordinate System of Lim, Hou and
// Choi (IEEE/ACM ToN 2005), the architecture reproduced in Figure 4 of the
// paper: a small set of beacon nodes measures mutual round-trip times; an
// administrative node applies PCA to the beacon distance matrix to obtain
// a linear transformation; any host then obtains an n-dimensional
// coordinate by measuring its delay to the beacons and multiplying by the
// transformation matrix ("GPS-like triangulation" with beacons as
// satellites).
type ICS struct {
	// D is the m×m beacon distance matrix (step S2).
	D *linalg.Matrix
	// Dim is the coordinate dimension n chosen in step S4.
	Dim int
	// Alpha is the scaling factor of their Eq. (11), fitted so embedded
	// distances match measured delays in a least-squares sense.
	Alpha float64
	// U is the unscaled m×n principal-component matrix (Eq. 8).
	U *linalg.Matrix
	// UBar is the scaled transformation matrix Ū = α·U (Eq. 12)
	// distributed to hosts in step H1.
	UBar *linalg.Matrix
	// BeaconCoords holds c̄_i = Ūᵀ d_i for each beacon i.
	BeaconCoords [][]float64
	// Sigma are the singular values of D, exposed for dimension studies.
	Sigma []float64
}

// ICSOptions configures calibration.
type ICSOptions struct {
	// Dim fixes the coordinate dimension; 0 means choose the smallest
	// dimension whose cumulative variation reaches VarThreshold (Eq. 9).
	Dim int
	// VarThreshold is the cumulative-variation cutoff when Dim is 0
	// (defaults to 0.95).
	VarThreshold float64
}

// BuildICS calibrates the system from the beacon distance matrix (the
// administrative node's steps S2–S5). The matrix must be square,
// symmetric and hollow (zero diagonal).
func BuildICS(d *linalg.Matrix, opts ICSOptions) (*ICS, error) {
	if d.Rows != d.Cols {
		return nil, fmt.Errorf("ics: distance matrix must be square, got %dx%d", d.Rows, d.Cols)
	}
	if !d.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("ics: distance matrix must be symmetric")
	}
	for i := 0; i < d.Rows; i++ {
		if d.At(i, i) != 0 {
			return nil, fmt.Errorf("ics: nonzero self-delay at beacon %d", i)
		}
	}
	m := d.Rows
	_, sigma, _ := linalg.SVD(d)

	dim := opts.Dim
	if dim <= 0 {
		th := opts.VarThreshold
		if th <= 0 {
			th = 0.95
		}
		dim = linalg.ChooseDimension(sigma, th)
	}
	if dim > m {
		dim = m
	}

	u := linalg.PrincipalComponents(d, dim)

	// Unscaled beacon coordinates c_i = Uᵀ d_i.
	raw := make([][]float64, m)
	ut := u.T()
	for i := 0; i < m; i++ {
		raw[i] = ut.MulVec(d.Col(i))
	}

	// α minimizes Σ (α·l_ij − d_ij)² over beacon pairs: α = Σ l·d / Σ l².
	var num, den float64
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			l := linalg.L2(raw[i], raw[j])
			num += l * d.At(i, j)
			den += l * l
		}
	}
	alpha := 1.0
	if den > 0 {
		alpha = num / den
	}

	ubar := u.Scale(alpha)
	ubarT := ubar.T()
	coords := make([][]float64, m)
	for i := 0; i < m; i++ {
		coords[i] = ubarT.MulVec(d.Col(i))
	}

	return &ICS{
		D:            d,
		Dim:          dim,
		Alpha:        alpha,
		U:            u,
		UBar:         ubar,
		BeaconCoords: coords,
		Sigma:        sigma,
	}, nil
}

// HostCoord computes a host's coordinate from its measured delay vector to
// every beacon (steps H2–H3: x_a = Ūᵀ · l_a).
func (s *ICS) HostCoord(delays []float64) ([]float64, error) {
	if len(delays) != s.D.Rows {
		return nil, fmt.Errorf("ics: need %d beacon delays, got %d", s.D.Rows, len(delays))
	}
	return s.UBar.T().MulVec(delays), nil
}

// Predict returns the estimated delay between two coordinates.
func (s *ICS) Predict(a, b []float64) float64 { return linalg.L2(a, b) }

// BeaconPredict returns the embedded distance between beacons i and j.
func (s *ICS) BeaconPredict(i, j int) float64 {
	return linalg.L2(s.BeaconCoords[i], s.BeaconCoords[j])
}

// FitError returns the root-mean-square error between embedded and
// measured beacon distances — the calibration quality metric.
func (s *ICS) FitError() float64 {
	m := s.D.Rows
	var ss float64
	n := 0
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			e := s.BeaconPredict(i, j) - s.D.At(i, j)
			ss += e * e
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(ss / float64(n))
}
