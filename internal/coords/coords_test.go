package coords

import (
	"math"
	"testing"
	"testing/quick"

	"unap2p/internal/linalg"
	"unap2p/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// limD is the beacon delay matrix of Lim et al. Examples 1/4: beacons 1,2
// in one AS and 3,4 in another, intra-AS delay 1, inter-AS delay 3.
func limD() *linalg.Matrix {
	return linalg.FromRows([][]float64{
		{0, 1, 3, 3},
		{1, 0, 3, 3},
		{3, 3, 0, 1},
		{3, 3, 1, 0},
	})
}

// TestICSLimExample4 asserts the exact published numbers of Example 4 in
// Lim et al. (reprinted in Figure 4's source): α = 0.6, the transformation
// matrix Ū₂, and the scaled beacon coordinates.
func TestICSLimExample4(t *testing.T) {
	ics, err := BuildICS(limD(), ICSOptions{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ics.Alpha, 0.6, 1e-9) {
		t.Fatalf("alpha = %v, want 0.6", ics.Alpha)
	}
	wantUBar := linalg.FromRows([][]float64{
		{-0.3, -0.3},
		{-0.3, -0.3},
		{-0.3, 0.3},
		{-0.3, 0.3},
	})
	if ics.UBar.Sub(wantUBar).FrobeniusNorm() > 1e-9 {
		t.Fatalf("UBar =\n%v\nwant\n%v", ics.UBar, wantUBar)
	}
	wantCoords := [][]float64{
		{-2.1, 1.5}, {-2.1, 1.5}, {-2.1, -1.5}, {-2.1, -1.5},
	}
	for i, want := range wantCoords {
		for d := 0; d < 2; d++ {
			if !almost(ics.BeaconCoords[i][d], want[d], 1e-9) {
				t.Fatalf("beacon %d coord = %v, want %v", i, ics.BeaconCoords[i], want)
			}
		}
	}
	// "The distances between two hosts in different ASs is exactly 3."
	if !almost(ics.BeaconPredict(0, 2), 3, 1e-9) {
		t.Fatalf("inter-AS beacon distance = %v, want 3", ics.BeaconPredict(0, 2))
	}
}

// TestICSLimExample4FullDim asserts the n=4 variant: α = 0.5927,
// L2(c̄1,c̄2) = 0.8383 and L2(c̄1,c̄3) = 3.0224.
func TestICSLimExample4FullDim(t *testing.T) {
	ics, err := BuildICS(limD(), ICSOptions{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ics.Alpha, 0.5927, 5e-5) {
		t.Fatalf("alpha = %v, want 0.5927", ics.Alpha)
	}
	if !almost(ics.BeaconPredict(0, 1), 0.8383, 5e-5) {
		t.Fatalf("L2(c1,c2) = %v, want 0.8383", ics.BeaconPredict(0, 1))
	}
	for _, pair := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}} {
		if !almost(ics.BeaconPredict(pair[0], pair[1]), 3.0224, 5e-5) {
			t.Fatalf("L2(c%d,c%d) = %v, want 3.0224", pair[0]+1, pair[1]+1,
				ics.BeaconPredict(pair[0], pair[1]))
		}
	}
}

// TestICSLimExample5 asserts the host-coordinate numbers of Example 5:
// host A with delays (1,1,4,4) lands at (−3, 1.8) with beacon distances
// 0.94 / 3.42; host B with delays (10,10,10,10) lands at (−12, 0) with all
// beacon distances 10.01.
func TestICSLimExample5(t *testing.T) {
	ics, err := BuildICS(limD(), ICSOptions{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	xa, err := ics.HostCoord([]float64{1, 1, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(xa[0], -3, 1e-9) || !almost(xa[1], 1.8, 1e-9) {
		t.Fatalf("xa = %v, want [-3, 1.8]", xa)
	}
	if d := ics.Predict(ics.BeaconCoords[0], xa); !almost(d, 0.94, 0.01) {
		t.Fatalf("d(c1,xa) = %v, want ≈0.94", d)
	}
	if d := ics.Predict(ics.BeaconCoords[2], xa); !almost(d, 3.42, 0.01) {
		t.Fatalf("d(c3,xa) = %v, want ≈3.42", d)
	}

	xb, err := ics.HostCoord([]float64{10, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(xb[0], -12, 1e-9) || !almost(xb[1], 0, 1e-9) {
		t.Fatalf("xb = %v, want [-12, 0]", xb)
	}
	for i := 0; i < 4; i++ {
		if d := ics.Predict(ics.BeaconCoords[i], xb); !almost(d, 10.01, 0.01) {
			t.Fatalf("d(c%d,xb) = %v, want ≈10.01", i+1, d)
		}
	}
}

func TestICSDimensionSelection(t *testing.T) {
	// σ = (7,5,1,1): cumulative variation 49/76, 74/76, 75/76, 1.
	ics, err := BuildICS(limD(), ICSOptions{VarThreshold: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if ics.Dim != 2 {
		t.Fatalf("chosen dim = %d, want 2 at threshold 0.95", ics.Dim)
	}
	ics2, _ := BuildICS(limD(), ICSOptions{}) // default threshold 0.95
	if ics2.Dim != 2 {
		t.Fatalf("default-threshold dim = %d, want 2", ics2.Dim)
	}
}

func TestICSValidation(t *testing.T) {
	if _, err := BuildICS(linalg.NewMatrix(2, 3), ICSOptions{}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	asym := linalg.FromRows([][]float64{{0, 1}, {2, 0}})
	if _, err := BuildICS(asym, ICSOptions{}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	selfDelay := linalg.FromRows([][]float64{{1, 2}, {2, 0}})
	if _, err := BuildICS(selfDelay, ICSOptions{}); err == nil {
		t.Fatal("nonzero diagonal accepted")
	}
	ics, _ := BuildICS(limD(), ICSOptions{Dim: 2})
	if _, err := ics.HostCoord([]float64{1, 2}); err == nil {
		t.Fatal("short delay vector accepted")
	}
	// Dim beyond matrix size is clamped.
	big, err := BuildICS(limD(), ICSOptions{Dim: 10})
	if err != nil || big.Dim != 4 {
		t.Fatalf("dim clamp: %v dim=%d", err, big.Dim)
	}
}

func TestICSFitErrorImprovesWithDim(t *testing.T) {
	d1, _ := BuildICS(limD(), ICSOptions{Dim: 1})
	d2, _ := BuildICS(limD(), ICSOptions{Dim: 2})
	if d2.FitError() > d1.FitError()+1e-12 {
		t.Fatalf("fit error rose with dimension: %v → %v", d1.FitError(), d2.FitError())
	}
}

// gridRTT places n nodes on a √n×√n grid with Euclidean RTTs — a latency
// space Vivaldi can embed almost perfectly.
func gridRTT(n int) func(i, j int) float64 {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	return func(i, j int) float64 {
		xi, yi := float64(i%side)*10, float64(i/side)*10
		xj, yj := float64(j%side)*10, float64(j/side)*10
		return math.Hypot(xi-xj, yi-yj) + 2 // +2 keeps RTT positive
	}
}

func TestVivaldiConvergesOnEuclideanSpace(t *testing.T) {
	r := sim.NewSource(1).Stream("vivaldi")
	cfg := VivaldiConfig{Dim: 2, CE: 0.25, CC: 0.25}
	s := NewVivaldiSystem(36, cfg, gridRTT(36), r)
	s.Run(200)
	if mre := s.MedianRelativeError(); mre > 0.12 {
		t.Fatalf("median relative error = %v, want < 0.12", mre)
	}
	if s.Probes != 36*4*200 {
		t.Fatalf("probes = %d, want %d", s.Probes, 36*4*200)
	}
}

func TestVivaldiErrorDecreases(t *testing.T) {
	r := sim.NewSource(2).Stream("vivaldi2")
	cfg := DefaultVivaldiConfig()
	s := NewVivaldiSystem(25, cfg, gridRTT(25), r)
	s.Run(5)
	early := s.MedianRelativeError()
	s.Run(195)
	late := s.MedianRelativeError()
	if late >= early {
		t.Fatalf("error did not decrease: %v → %v", early, late)
	}
}

func TestVivaldiHeightModel(t *testing.T) {
	// Access-delay-dominated space: constant 50 ms access at both ends,
	// tiny Euclidean part. Height model should fit it well.
	rtt := func(i, j int) float64 { return 100 + float64((i+j)%3) }
	r := sim.NewSource(3).Stream("vivaldi3")
	s := NewVivaldiSystem(20, DefaultVivaldiConfig(), rtt, r)
	s.Run(300)
	if mre := s.MedianRelativeError(); mre > 0.25 {
		t.Fatalf("height-model error = %v", mre)
	}
	for _, n := range s.Nodes {
		if n.Height < n.cfg.MinHeight {
			t.Fatal("height fell below floor")
		}
	}
}

func TestVivaldiIgnoresNonPositiveRTT(t *testing.T) {
	r := sim.NewSource(4).Stream("vivaldi4")
	n := NewVivaldiNode(VivaldiConfig{Dim: 2, CE: 0.25, CC: 0.25})
	o := NewVivaldiNode(VivaldiConfig{Dim: 2, CE: 0.25, CC: 0.25})
	n.Update(o, 0, r)
	n.Update(o, -5, r)
	if n.Samples != 0 {
		t.Fatal("non-positive RTT must be ignored")
	}
}

func TestVivaldiCoincidentNodesSeparate(t *testing.T) {
	r := sim.NewSource(5).Stream("vivaldi5")
	cfg := VivaldiConfig{Dim: 3, CE: 0.25, CC: 0.25}
	a, b := NewVivaldiNode(cfg), NewVivaldiNode(cfg)
	a.Update(b.Clone(), 50, r) // both at origin: needs random direction
	if linalg.Norm2(a.Pos) == 0 {
		t.Fatal("node did not move off the origin")
	}
}

func TestVivaldiClone(t *testing.T) {
	cfg := DefaultVivaldiConfig()
	a := NewVivaldiNode(cfg)
	a.Pos[0] = 7
	c := a.Clone()
	c.Pos[0] = 9
	if a.Pos[0] != 7 {
		t.Fatal("Clone aliases position")
	}
}

func TestVivaldiPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVivaldiNode(VivaldiConfig{Dim: 0})
}

func TestComputeBinOrdering(t *testing.T) {
	cfg := DefaultBinConfig()
	b := ComputeBin([]float64{150, 10, 60}, cfg)
	// Sorted by RTT: landmark 1 (10ms, class 0), 2 (60ms, class 1), 0 (150ms, class 2).
	if b.Order[0] != 1 || b.Order[1] != 2 || b.Order[2] != 0 {
		t.Fatalf("order = %v", b.Order)
	}
	if b.Level[0] != 0 || b.Level[1] != 1 || b.Level[2] != 2 {
		t.Fatalf("levels = %v", b.Level)
	}
	if b.Key() != "B0|C1|A2|" {
		t.Fatalf("key = %q", b.Key())
	}
}

func TestBinSimilarity(t *testing.T) {
	cfg := DefaultBinConfig()
	a := ComputeBin([]float64{10, 50, 200}, cfg)
	b := ComputeBin([]float64{12, 55, 190}, cfg)
	c := ComputeBin([]float64{200, 50, 10}, cfg)
	if s := a.Similarity(b); s != 1 {
		t.Fatalf("identical ordering similarity = %v", s)
	}
	if s := a.Similarity(c); s != 0 {
		t.Fatalf("reversed ordering similarity = %v", s)
	}
	var empty Bin
	if empty.Similarity(a) != 0 {
		t.Fatal("empty bin similarity should be 0")
	}
}

func TestBinsClusterSameASNodes(t *testing.T) {
	// Nodes in the same "AS" share landmark RTT shape; bins must agree.
	lmRTT := func(as int) []float64 {
		base := []float64{10, 80, 150}
		out := make([]float64, 3)
		for i := range out {
			out[i] = base[(i+as)%3]
		}
		return out
	}
	cfg := DefaultBinConfig()
	a1 := ComputeBin(lmRTT(0), cfg)
	a2 := ComputeBin(lmRTT(0), cfg)
	b1 := ComputeBin(lmRTT(1), cfg)
	if a1.Key() != a2.Key() {
		t.Fatal("same-AS nodes got different bins")
	}
	if a1.Key() == b1.Key() {
		t.Fatal("different-AS nodes got identical bins")
	}
}

// Property: Vivaldi distance is symmetric and non-negative for any pair of
// coordinate states.
func TestQuickVivaldiDistanceSymmetric(t *testing.T) {
	cfg := VivaldiConfig{Dim: 3, CE: 0.25, CC: 0.25, UseHeight: true, MinHeight: 0.1}
	f := func(p1, p2 [3]int8, h1, h2 uint8) bool {
		a, b := NewVivaldiNode(cfg), NewVivaldiNode(cfg)
		for i := 0; i < 3; i++ {
			a.Pos[i], b.Pos[i] = float64(p1[i]), float64(p2[i])
		}
		a.Height, b.Height = float64(h1)+0.1, float64(h2)+0.1
		return a.Distance(b) == b.Distance(a) && a.Distance(b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the bin key is a function of the RTT vector (deterministic)
// and bins of permuted-identical vectors differ when the ordering differs.
func TestQuickBinDeterministic(t *testing.T) {
	cfg := DefaultBinConfig()
	f := func(rtts [4]uint16) bool {
		v := []float64{float64(rtts[0]), float64(rtts[1]), float64(rtts[2]), float64(rtts[3])}
		return ComputeBin(v, cfg).Key() == ComputeBin(v, cfg).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
