package coords

import (
	"testing"

	"unap2p/internal/linalg"
	"unap2p/internal/sim"
)

// BenchmarkVivaldiUpdate measures one coordinate update — the per-probe
// cost of running Vivaldi.
func BenchmarkVivaldiUpdate(b *testing.B) {
	r := sim.NewSource(1).Stream("bench")
	cfg := DefaultVivaldiConfig()
	a := NewVivaldiNode(cfg)
	o := NewVivaldiNode(cfg)
	o.Pos[0] = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Update(o, 42, r)
	}
}

// BenchmarkVivaldiRound measures one gossip round over 100 nodes.
func BenchmarkVivaldiRound(b *testing.B) {
	r := sim.NewSource(2).Stream("bench")
	s := NewVivaldiSystem(100, DefaultVivaldiConfig(), gridRTT(100), r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Round()
	}
}

// BenchmarkBuildICS measures full beacon calibration (SVD + PCA + α fit)
// for 16 beacons.
func BenchmarkBuildICS(b *testing.B) {
	const m = 16
	d := linalg.NewMatrix(m, m)
	rtt := gridRTT(m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j {
				d.Set(i, j, rtt(i, j))
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildICS(d, ICSOptions{VarThreshold: 0.95}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostCoord measures the per-host coordinate computation (H3).
func BenchmarkHostCoord(b *testing.B) {
	const m = 16
	d := linalg.NewMatrix(m, m)
	rtt := gridRTT(m)
	delays := make([]float64, m)
	for i := 0; i < m; i++ {
		delays[i] = rtt(i, 0) + 1
		for j := 0; j < m; j++ {
			if i != j {
				d.Set(i, j, rtt(i, j))
			}
		}
	}
	ics, err := BuildICS(d, ICSOptions{Dim: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ics.HostCoord(delays); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeBin measures landmark-bin derivation.
func BenchmarkComputeBin(b *testing.B) {
	rtts := []float64{12, 88, 45, 190, 7, 33, 140, 61}
	cfg := DefaultBinConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeBin(rtts, cfg)
	}
}
