package coords

import (
	"sort"
)

// Landmark-ordering bins (Ratnasamy et al., "Topologically-aware overlay
// construction and server selection", INFOCOM 2002 — [26] in the paper):
// each node measures its RTT to a fixed set of landmarks and sorts the
// landmarks by proximity; nodes with the same landmark ordering are likely
// topologically close. A coarser variant also buckets each RTT into
// distance classes.

// Bin is a node's landmark signature.
type Bin struct {
	// Order is the landmark permutation sorted by increasing RTT.
	Order []int
	// Level holds each landmark's RTT bucket, aligned with Order.
	Level []int
}

// BinConfig controls bucket boundaries.
type BinConfig struct {
	// Boundaries are the RTT thresholds (ms) separating distance classes;
	// e.g. [20, 100] yields classes <20, 20–100, ≥100.
	Boundaries []float64
}

// DefaultBinConfig uses the three-class split common in the literature.
func DefaultBinConfig() BinConfig { return BinConfig{Boundaries: []float64{20, 100}} }

// ComputeBin builds a node's bin from its landmark RTT vector.
func ComputeBin(rtts []float64, cfg BinConfig) Bin {
	order := make([]int, len(rtts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rtts[order[a]] < rtts[order[b]] })
	level := make([]int, len(rtts))
	for i, lm := range order {
		level[i] = bucket(rtts[lm], cfg.Boundaries)
	}
	return Bin{Order: order, Level: level}
}

func bucket(v float64, bounds []float64) int {
	for i, b := range bounds {
		if v < b {
			return i
		}
	}
	return len(bounds)
}

// Key returns a comparable string form of the bin — nodes sharing a key
// are placed in the same proximity cluster.
func (b Bin) Key() string {
	buf := make([]byte, 0, 3*len(b.Order))
	for i, lm := range b.Order {
		buf = append(buf, byte('A'+lm), byte('0'+b.Level[i]), '|')
	}
	return string(buf)
}

// Similarity scores how alike two bins are: the length of the common
// prefix of their landmark orderings, normalized to [0,1]. Higher means
// likelier proximity.
func (b Bin) Similarity(o Bin) float64 {
	n := len(b.Order)
	if len(o.Order) < n {
		n = len(o.Order)
	}
	if n == 0 {
		return 0
	}
	common := 0
	for i := 0; i < n; i++ {
		if b.Order[i] != o.Order[i] {
			break
		}
		common++
	}
	return float64(common) / float64(n)
}
