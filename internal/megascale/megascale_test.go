package megascale

import (
	"reflect"
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// buildStack wires a minimal sharded stack: star underlay with four stub
// ASes, perAS peers each, partitioned over K shards.
func buildStack(t *testing.T, perAS, K int) *transport.ShardedNet {
	t.Helper()
	u := underlay.New()
	transit := u.AddAS(underlay.TransitISP, 2)
	for i := 0; i < 4; i++ {
		stub := u.AddAS(underlay.LocalISP, 4)
		u.ConnectTransit(stub, transit, 10)
	}
	u.ComputeRoutes()
	pt := underlay.NewPeerTable(u, 4*perAS)
	for as := 1; as <= 4; as++ {
		for j := 0; j < perAS; j++ {
			pt.AddPeer(as, sim.Duration(2+j%4))
		}
	}
	part := underlay.PartitionASes(u.NumASes(),
		func(as int) int { return pt.PeersPerAS()[int32(as)] }, K)
	window := underlay.MinCrossShardLatency(pt, part)
	if window <= 0 {
		window = 5
	}
	sk := sim.NewSharded(K, window)
	return transport.NewShardedNet(u, pt, part, sk, []string{"req", "rep"})
}

func TestIDSpaceUniqueDeterministic(t *testing.T) {
	s1 := NewIDSpace(300, 7)
	s2 := NewIDSpace(300, 7)
	seen := map[uint64]bool{}
	for p := 0; p < s1.Len(); p++ {
		id := s1.ID(underlay.PeerID(p))
		if seen[id] {
			t.Fatalf("duplicate id %x", id)
		}
		seen[id] = true
		if id != s2.ID(underlay.PeerID(p)) {
			t.Fatal("ids not deterministic")
		}
		if s1.ByRank(s1.Rank(underlay.PeerID(p))) != underlay.PeerID(p) {
			t.Fatalf("rank/byRank disagree for peer %d", p)
		}
	}
}

// TestIDSpaceGroundTruth brute-forces the three ground-truth queries —
// XOR-closest, ring successor, ring predecessor — against the trie and
// binary-search implementations.
func TestIDSpaceGroundTruth(t *testing.T) {
	s := NewIDSpace(257, 42)
	ids := make([]uint64, s.Len())
	for p := range ids {
		ids[p] = s.ID(underlay.PeerID(p))
	}
	for i := 0; i < 400; i++ {
		target := Mix64(uint64(i) ^ 0xfeed)
		if i == 0 {
			target = ids[17] // exercise the exact-match edge
		}
		bestXOR, bd := uint64(0), ^uint64(0)
		var succ, pred uint64
		sd, pd := ^uint64(0), ^uint64(0)
		for _, id := range ids {
			if d := id ^ target; d < bd {
				bestXOR, bd = id, d
			}
			if d := CWDist(target, id); d < sd {
				succ, sd = id, d
			}
			if d := CWDist(id, target-1); d < pd {
				pred, pd = id, d
			}
		}
		if got := s.ClosestXOR(target); got != bestXOR {
			t.Fatalf("target %x: ClosestXOR %x, brute %x", target, got, bestXOR)
		}
		if got := s.ID(s.ByRank(s.SuccessorRank(target))); got != succ {
			t.Fatalf("target %x: successor %x, brute %x", target, got, succ)
		}
		if got := s.PredecessorID(target); got != pred {
			t.Fatalf("target %x: predecessor %x, brute %x", target, got, pred)
		}
	}
}

func TestSeedContactsDeterministic(t *testing.T) {
	record := func() [][2]underlay.PeerID {
		s := NewIDSpace(128, 9)
		var pairs [][2]underlay.PeerID
		s.SeedContacts(0x5eed, 6, 2, func(p, q underlay.PeerID) {
			pairs = append(pairs, [2]underlay.PeerID{p, q})
		})
		return pairs
	}
	a, b := record(), record()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SeedContacts order not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("no contacts emitted")
	}
}

func TestCountersAggregate(t *testing.T) {
	c := NewCounters(3)
	c.Start(0)
	c.Start(2)
	c.Start(2)
	c.Finish(0, true, 4)
	c.Finish(2, false, 6)
	s := c.Stats()
	want := Stats{Started: 3, Done: 2, OK: 1, Hops: 10}
	if s != want {
		t.Fatalf("stats %+v, want %+v", s, want)
	}
	if s.SuccessRate() != 0.5 || s.MeanHops() != 5 {
		t.Fatalf("rates %v %v", s.SuccessRate(), s.MeanHops())
	}
	h := c.Health()
	if h["lookups_done"] != 2 || h["success_rate"] != 0.5 {
		t.Fatalf("health %v", h)
	}
}

func TestReplaceCrossAS(t *testing.T) {
	net := buildStack(t, 4, 1)
	pt := net.Peers()
	// Peers 0..3 share AS 1; peers 4..7 are AS 2 (cross-AS from peer 0).
	self := underlay.PeerID(0)
	cross := []uint32{4, 5}
	same := []uint32{1, 2}
	if i := ReplaceCrossAS(pt, self, 3, cross); i != 0 {
		t.Fatalf("same-AS candidate over cross-AS slots: got %d, want 0", i)
	}
	if i := ReplaceCrossAS(pt, self, 5, cross); i != -1 {
		t.Fatalf("cross-AS candidate must not replace: got %d", i)
	}
	if i := ReplaceCrossAS(pt, self, 3, same); i != -1 {
		t.Fatalf("all-same-AS slots must not be replaced: got %d", i)
	}
}

// TestIterConverges drives the generic iterative state machine with a
// trivial overlay (every peer's candidates are the globally XOR-nearest
// peers) and checks requests converge exactly and deterministically.
func TestIterConverges(t *testing.T) {
	run := func(K int) (Stats, transport.NetStats) {
		net := buildStack(t, 16, K)
		n := net.Peers().Len()
		space := NewIDSpace(n, 3)
		ctr := NewCounters(net.Kernel().NumShards())
		it := &Iter{
			Net: net, ReqClass: 0, RepClass: 1, RPCBytes: 64,
			Alpha: 2, Width: 8, Ctr: ctr,
			Dist: func(q underlay.PeerID, target uint64) uint64 {
				return space.ID(q) ^ target
			},
			Candidates: func(q underlay.PeerID, target uint64) []underlay.PeerID {
				// Omniscient routing: a linear scan for the XOR-nearest
				// peer plus the target's ring neighborhood as filler.
				best, bd := underlay.PeerID(0), ^uint64(0)
				for p := 0; p < n; p++ {
					if d := space.ID(underlay.PeerID(p)) ^ target; d < bd {
						best, bd = underlay.PeerID(p), d
					}
				}
				out := []underlay.PeerID{best}
				r := space.SuccessorRank(target)
				for off := -2; off <= 2; off++ {
					out = append(out, space.ByRank(((r+off)%n+n)%n))
				}
				return out
			},
			OK: func(best underlay.PeerID, target uint64) bool {
				return space.ID(best) == space.ClosestXOR(target)
			},
		}
		for p := 0; p < n; p++ {
			p := underlay.PeerID(p)
			target := Mix64(uint64(p) ^ 0xabc)
			// The driver never answers with the origin itself, so steer
			// targets away from the origin-is-closest edge.
			for space.ClosestXOR(target) == space.ID(p) {
				target = Mix64(target)
			}
			net.Kernel().Shard(net.ShardOf(p)).Schedule(sim.Duration(p%7), func() {
				it.Start(p, target, nil)
			})
		}
		net.Kernel().Drain()
		return ctr.Stats(), net.Stats()
	}
	s1, n1 := run(1)
	s2, n2 := run(1)
	if s1 != s2 || !reflect.DeepEqual(n1, n2) {
		t.Fatalf("same-K runs diverge: %+v vs %+v", s1, s2)
	}
	if s1.Done != s1.Started || s1.Done == 0 {
		t.Fatalf("requests lost: %+v", s1)
	}
	if s1.SuccessRate() != 1 {
		t.Fatalf("omniscient candidates must converge exactly, rate %v", s1.SuccessRate())
	}
	s4, _ := run(4)
	if s4.Done != s1.Done || s4.OK != s1.OK {
		t.Fatalf("K=4 outcomes differ from K=1: %+v vs %+v", s4, s1)
	}
}

// TestAttachChurn pins the megascale churn wiring: the hashed Frac
// selection flips only its subset and the flip schedule is identical
// across shard counts.
func TestAttachChurn(t *testing.T) {
	run := func(K int) (int, uint64, uint64) {
		net := buildStack(t, 32, K)
		drv := AttachChurn(net, 99, ChurnConfig{Frac: 4, MeanOn: 40, MeanOff: 20})
		net.Kernel().Run(500)
		return net.Peers().UpCount(), drv.Joins(), drv.Leaves()
	}
	up1, j1, l1 := run(1)
	up2, j2, l2 := run(2)
	if up1 != up2 || j1 != j2 || l1 != l2 {
		t.Fatalf("churn depends on shard count: (%d,%d,%d) vs (%d,%d,%d)",
			up1, j1, l1, up2, j2, l2)
	}
	if l1 == 0 {
		t.Fatal("no churn activity")
	}
	if up1 == 0 {
		t.Fatal("everything churned off — Frac selection not applied")
	}
}
