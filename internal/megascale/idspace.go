package megascale

import (
	"sort"

	"unap2p/internal/underlay"
)

// IDSpace is the flat-array node-id layer every compact overlay shares:
// one unique 64-bit id per PeerTable peer, hashed deterministically from
// (seed, peer), plus the sorted view and rank maps that exact
// ground-truth checks and geometric bootstrap contacts are built from.
// Everything is immutable after construction, so any shard may read it.
type IDSpace struct {
	ids    []uint64 // ids[p] is peer p's node id
	sorted []uint64 // ids ascending
	rank   []int32  // rank[p] is peer p's index in sorted order
	byRank []underlay.PeerID
}

// NewIDSpace assigns n unique ids hashed from the seed. Collisions are
// re-hashed, so ids are unique and still a pure function of (seed, n).
func NewIDSpace(n int, seed uint64) *IDSpace {
	ids := make([]uint64, n)
	seen := make(map[uint64]bool, n)
	for p := 0; p < n; p++ {
		id := Mix64(seed ^ uint64(p)*0x9e3779b97f4a7c15)
		for seen[id] {
			id = Mix64(id)
		}
		seen[id] = true
		ids[p] = id
	}
	return NewIDSpaceFrom(ids)
}

// NewIDSpaceFrom builds the space over explicit ids (they must be
// unique). Ports with an external id assignment — and the fuzz harness —
// use this; most callers want NewIDSpace.
func NewIDSpaceFrom(ids []uint64) *IDSpace {
	n := len(ids)
	s := &IDSpace{
		ids:    ids,
		byRank: make([]underlay.PeerID, n),
		rank:   make([]int32, n),
	}
	for p := 0; p < n; p++ {
		s.byRank[p] = underlay.PeerID(p)
	}
	sort.Slice(s.byRank, func(i, j int) bool { return ids[s.byRank[i]] < ids[s.byRank[j]] })
	s.sorted = make([]uint64, n)
	for r, p := range s.byRank {
		s.sorted[r] = ids[p]
		s.rank[p] = int32(r)
	}
	return s
}

// Len reports the peer count.
func (s *IDSpace) Len() int { return len(s.ids) }

// ID returns peer p's node id.
func (s *IDSpace) ID(p underlay.PeerID) uint64 { return s.ids[p] }

// Rank returns peer p's index in ascending-id order.
func (s *IDSpace) Rank(p underlay.PeerID) int { return int(s.rank[p]) }

// ByRank returns the peer holding ascending-id rank r.
func (s *IDSpace) ByRank(r int) underlay.PeerID { return s.byRank[r] }

// ClosestXOR returns the node id globally XOR-closest to target — exact
// ground truth for Kademlia-style overlays, computed by descending the
// implicit binary trie over the sorted id list: at each bit, follow the
// branch matching the target's bit if any id lives there, else the other
// branch. O(64 log n) per query, no per-peer state.
func (s *IDSpace) ClosestXOR(target uint64) uint64 {
	ids := s.sorted
	lo, hi := 0, len(ids)
	for bit := 63; bit >= 0 && hi-lo > 1; bit-- {
		mask := uint64(1) << uint(bit)
		// Ids in [lo,hi) share all bits above bit; mid splits the
		// 0-branch [lo,mid) from the 1-branch [mid,hi).
		mid := lo + sort.Search(hi-lo, func(i int) bool { return ids[lo+i]&mask != 0 })
		if target&mask == 0 {
			if mid > lo {
				hi = mid
			} else {
				lo = mid
			}
		} else {
			if mid < hi {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	return ids[lo]
}

// SuccessorRank returns the rank of the first id clockwise from target
// (inclusive) — ring ground truth for Chord-style overlays.
func (s *IDSpace) SuccessorRank(target uint64) int {
	ids := s.sorted
	r := sort.Search(len(ids), func(i int) bool { return ids[i] >= target })
	if r == len(ids) {
		r = 0
	}
	return r
}

// PredecessorID returns the id of the last node strictly counterclockwise
// from target — the node whose successor owns target on the ring.
func (s *IDSpace) PredecessorID(target uint64) uint64 {
	n := len(s.sorted)
	return s.sorted[(s.SuccessorRank(target)+n-1)%n]
}

// CWDist is the clockwise ring distance from id a to id b (how far b is
// ahead of a on the 2^64 ring).
func CWDist(a, b uint64) uint64 { return b - a }

// SeedContacts feeds every peer a deterministic bootstrap contact set
// covering every distance scale: `fanout` pseudo-random peers, the
// `near` successors AND predecessors on the sorted id ring, and finger
// links at geometric rank offsets (±1, ±2, ±4, …). The geometry matters
// at scale. Random contacts alone leave the best candidate ~n/table-size
// ranks from any target, and a local-only ring cannot bridge that gap,
// so requests at 10⁵⁺ peers wander and stall far from the answer;
// geometric fingers put a contact in every distance band, restoring
// O(log n) convergence. Ring links are bidirectional because the closest
// peer is findable only through peers that know it. Call during
// single-threaded setup; observe receives each (peer, contact) pair in a
// fixed order.
func (s *IDSpace) SeedContacts(seed uint64, fanout, near int, observe func(p, q underlay.PeerID)) {
	n := len(s.ids)
	for p := 0; p < n; p++ {
		r := int(s.rank[p])
		for f := 0; f < fanout; f++ {
			q := int(Mix64(seed^uint64(p)<<20^uint64(f)) % uint64(n))
			observe(underlay.PeerID(p), underlay.PeerID(q))
		}
		for step := 1; step <= near; step++ {
			observe(underlay.PeerID(p), s.byRank[(r+step)%n])
			observe(underlay.PeerID(p), s.byRank[(r-step+n)%n])
		}
		for j := 0; 1<<j < n; j++ {
			observe(underlay.PeerID(p), s.byRank[(r+1<<j)%n])
			observe(underlay.PeerID(p), s.byRank[(r-1<<j%n+n)%n])
		}
	}
}
