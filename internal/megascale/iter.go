package megascale

import (
	"sort"

	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Iter is the generic shard-resident α-parallel iterative request driver
// — the state machine extracted from the compact Kademlia's lookup and
// shared with every structured port. A request keeps a working set of
// candidates ordered by the overlay's distance metric, keeps up to Alpha
// requests in flight, executes each hop on the target peer's shard (the
// only place its liveness may be read), and returns replies to the
// origin's shard through the sharded transport — so every port obeys the
// kernel's shard-ownership rules by construction.
type Iter struct {
	// Net carries every RPC; ReqClass/RepClass are the transport classes
	// for request and reply traffic, RPCBytes the size charged per
	// message.
	Net                *transport.ShardedNet
	ReqClass, RepClass int
	RPCBytes           uint64

	// Alpha is the request parallelism; Width caps the candidate working
	// set (3×K in Kademlia terms).
	Alpha, Width int

	// Ctr receives start/finish accounting on the origin's shard.
	Ctr *Counters

	// Dist returns peer q's distance to target under the overlay's
	// metric; lower is closer. Must be a pure read of immutable state.
	Dist func(q underlay.PeerID, target uint64) uint64
	// Candidates returns q's best known contacts toward target. It
	// executes on q's owning shard and may read q's shard-owned table
	// row.
	Candidates func(q underlay.PeerID, target uint64) []underlay.PeerID
	// Learn, when non-nil, records a discovered contact at the origin
	// (routing-table maintenance); it runs on the origin's shard.
	Learn func(origin, c underlay.PeerID)
	// OK reports whether the converged best peer is the exact
	// ground-truth answer; it runs on the origin's shard at completion.
	OK func(best underlay.PeerID, target uint64) bool
}

// iterState is one in-flight request; it lives on the origin peer's
// shard and every mutation of it happens there.
type iterState struct {
	it      *Iter
	origin  underlay.PeerID
	target  uint64
	cand    []underlay.PeerID // candidates sorted by distance
	queried map[underlay.PeerID]bool
	inFly   int
	hops    int
	done    bool
	onDone  func(Result)
}

// Start begins an iterative request for target from peer origin. It must
// be invoked on origin's owning shard (schedule it there). onDone, which
// may be nil, runs on origin's shard when the request converges.
func (it *Iter) Start(origin underlay.PeerID, target uint64, onDone func(Result)) {
	it.Ctr.Start(it.Net.ShardOf(origin))
	st := &iterState{
		it: it, origin: origin, target: target,
		queried: make(map[underlay.PeerID]bool, it.Width),
		onDone:  onDone,
	}
	for _, c := range it.Candidates(origin, target) {
		st.insert(c)
	}
	st.step()
}

// step issues requests to the nearest unqueried candidates, up to Alpha
// in flight. Runs on the origin's shard.
func (st *iterState) step() {
	if st.done {
		return
	}
	it := st.it
	issued := false
	for _, q := range st.cand {
		if st.inFly >= it.Alpha {
			break
		}
		if st.queried[q] {
			continue
		}
		st.queried[q] = true
		st.inFly++
		st.hops++
		issued = true
		st.request(q)
	}
	if !issued && st.inFly == 0 {
		st.finish()
	}
}

// request sends one routing RPC to peer q: the request executes on q's
// shard (the only place q's liveness and table may be read) and the
// reply returns to the origin's shard through the transport.
func (st *iterState) request(q underlay.PeerID) {
	it := st.it
	origin, target := st.origin, st.target
	it.Net.Send(origin, q, it.ReqClass, it.RPCBytes, func() {
		// On q's shard now.
		var found []underlay.PeerID
		alive := it.Net.Peers().Up(q)
		if alive {
			found = it.Candidates(q, target)
		}
		// Reply (or a zero-byte "timeout" nack after the same RTT when q
		// is down — a dead peer costs the request one round trip).
		bytes := it.RPCBytes
		if !alive {
			bytes = 0
		}
		it.Net.Send(q, origin, it.RepClass, bytes, func() {
			// Back on origin's shard.
			st.inFly--
			if alive {
				for _, c := range found {
					if it.Learn != nil {
						it.Learn(origin, c)
					}
					st.insert(c)
				}
			}
			st.step()
		})
	})
}

// insert merges candidate c into the sorted working set, keeping the
// nearest Width entries.
func (st *iterState) insert(c underlay.PeerID) {
	if c == st.origin {
		return
	}
	it := st.it
	dc := it.Dist(c, st.target)
	for _, e := range st.cand {
		if e == c {
			return
		}
	}
	i := sort.Search(len(st.cand), func(i int) bool {
		de := it.Dist(st.cand[i], st.target)
		if de != dc {
			return de > dc
		}
		return st.cand[i] >= c
	})
	st.cand = append(st.cand, 0)
	copy(st.cand[i+1:], st.cand[i:])
	st.cand[i] = c
	if len(st.cand) > it.Width {
		st.cand = st.cand[:it.Width]
	}
}

// finish completes the request on the origin's shard.
func (st *iterState) finish() {
	st.done = true
	it := st.it
	best := st.origin
	if len(st.cand) > 0 {
		best = st.cand[0]
	}
	res := Result{
		Origin: st.origin, Best: best,
		OK: it.OK(best, st.target), Hops: st.hops,
	}
	it.Ctr.Finish(it.Net.ShardOf(st.origin), res.OK, st.hops)
	if st.onDone != nil {
		st.onDone(res)
	}
}
