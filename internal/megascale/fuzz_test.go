package megascale

import (
	"encoding/binary"
	"testing"
)

// FuzzClosestGlobal cross-checks the binary-trie XOR ground truth
// (IDSpace.ClosestXOR, the checker every megascale exactness figure
// rests on) against a naive linear scan over arbitrary id sets and
// targets.
func FuzzClosestGlobal(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	seed := make([]byte, 8+8*5)
	for i := range seed {
		seed[i] = byte(Mix64(uint64(i)) >> 56)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 16 {
			return
		}
		target := binary.LittleEndian.Uint64(data[:8])
		rest := data[8:]
		seen := map[uint64]bool{}
		var ids []uint64
		for len(rest) >= 8 && len(ids) < 256 {
			id := binary.LittleEndian.Uint64(rest[:8])
			rest = rest[8:]
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return
		}
		s := NewIDSpaceFrom(ids)
		got := s.ClosestXOR(target)
		best, bd := uint64(0), ^uint64(0)
		for _, id := range ids {
			if d := id ^ target; d < bd {
				best, bd = id, d
			}
		}
		if got != best {
			t.Fatalf("target %x over %d ids: trie %x (dist %x), naive %x (dist %x)",
				target, len(ids), got, got^target, best, bd)
		}
	})
}
