// Package megascale is the overlay-independent runtime for million-peer
// sharded simulations. PR 6 proved the paper's underlay-aware techniques
// survive at 10^6 peers, but the machinery that made it possible — flat
// struct-of-arrays node state over underlay.PeerTable, shard-resident
// request state machines, stateless hashed bootstrap, per-shard result
// counters — lived inside the compact Kademlia as a one-off. The paper's
// central claim is that underlay awareness is an overlay-independent
// layer, so the megascale machinery must be too: this package holds the
// shared pieces, and each overlay port (kademlia.CompactDHT,
// chord.CompactRing, gnutella.CompactFlood) provides only its routing
// geometry on top of them.
//
// Determinism rules every port must obey:
//
//   - Setup (construction, Bootstrap) is single-threaded and happens
//     before ShardedKernel.Run; tables built there are immutable during
//     the run unless a row is mutated exclusively by its owning shard.
//   - A peer's mutable state (routing-table row, liveness, dedup sets)
//     is touched only from the peer's owning shard. Anything crossing
//     shards goes through transport.ShardedNet.Send.
//   - No shared RNG streams: every random draw is a stateless hash of
//     (seed, peer, counter) so schedules are independent of the shard
//     count K.
//   - Aggregation (Stats, HealthStats) reads per-shard counters and is
//     safe only at epoch barriers or after the run.
package megascale

import (
	"unap2p/internal/churn"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Result reports one completed request (lookup, find-predecessor, flood
// query) to its onDone callback, which runs on the origin's shard.
type Result struct {
	Origin underlay.PeerID
	// Best is the peer the request converged on (the XOR-closest
	// candidate, the ring predecessor, the first responding hit — the
	// overlay defines it). Equal to Origin when nothing was found.
	Best underlay.PeerID
	// OK reports the overlay's ground-truth check: the exact global
	// answer was found (structured overlays) or a hit came back
	// (unstructured ones).
	OK bool
	// Hops is the number of request round trips (or the hop count of the
	// first hit for flood overlays).
	Hops int
}

// CompactOverlay is the contract a megascale overlay port provides. All
// three compact overlays (Kademlia, Chord, Gnutella) implement it, which
// is what lets one experiment sweep structured vs unstructured overlays
// under identical million-peer churn.
type CompactOverlay interface {
	// Name identifies the overlay in tables and run files.
	Name() string
	// Bootstrap deterministically populates every peer's contacts from
	// the given seed. Single-threaded setup only, before the kernel runs.
	Bootstrap(seed uint64)
	// Query starts one request from origin with a per-request seed (the
	// target key/id is derived from it overlay-specifically). It must be
	// invoked on origin's owning shard; onDone (which may be nil) runs on
	// origin's shard when the request completes.
	Query(origin underlay.PeerID, seed uint64, onDone func(Result))
	// MegaStats aggregates the shared per-shard request counters.
	// Barrier-safe. (Named MegaStats so ports keep their own richer
	// Stats methods.)
	MegaStats() Stats
	// HealthStats exposes overlay health for telemetry sampling at epoch
	// barriers.
	HealthStats() map[string]float64
}

// Stats aggregates request counters across shards.
type Stats struct {
	Started, Done, OK uint64
	Hops              uint64
}

// SuccessRate is the fraction of completed requests that passed the
// overlay's ground-truth check.
func (s Stats) SuccessRate() float64 {
	if s.Done == 0 {
		return 0
	}
	return float64(s.OK) / float64(s.Done)
}

// MeanHops is the average round trips per completed request.
func (s Stats) MeanHops() float64 {
	if s.Done == 0 {
		return 0
	}
	return float64(s.Hops) / float64(s.Done)
}

// Counters is the per-shard request accounting every port shares. Each
// shard increments only its own row, so counting is race-free during a
// run and aggregation is barrier-safe.
type Counters struct {
	started, done, ok, hops []uint64
}

// NewCounters sizes the counters for a kernel with the given shard count.
func NewCounters(shards int) *Counters {
	return &Counters{
		started: make([]uint64, shards),
		done:    make([]uint64, shards),
		ok:      make([]uint64, shards),
		hops:    make([]uint64, shards),
	}
}

// Start counts one request started on shard s.
func (c *Counters) Start(s int) { c.started[s]++ }

// Finish counts one request completed on shard s.
func (c *Counters) Finish(s int, ok bool, hops int) {
	c.done[s]++
	c.hops[s] += uint64(hops)
	if ok {
		c.ok[s]++
	}
}

// Stats aggregates all shards. Barrier-safe.
func (c *Counters) Stats() Stats {
	var s Stats
	for i := range c.started {
		s.Started += c.started[i]
		s.Done += c.done[i]
		s.OK += c.ok[i]
		s.Hops += c.hops[i]
	}
	return s
}

// Health renders the aggregate counters as the standard overlay health
// map ports return from HealthStats.
func (c *Counters) Health() map[string]float64 {
	s := c.Stats()
	return map[string]float64{
		"lookups_started": float64(s.Started),
		"lookups_done":    float64(s.Done),
		"success_rate":    s.SuccessRate(),
		"mean_hops":       s.MeanHops(),
	}
}

// ChurnConfig parameterizes AttachChurn.
type ChurnConfig struct {
	// Frac is the churning fraction denominator: one peer in Frac cycles
	// (hash-selected, K-independent). Frac <= 0 means every peer churns.
	Frac int
	// MeanOn and MeanOff are the exponential session and absence means.
	MeanOn, MeanOff sim.Duration
}

// AttachChurn wires the standard megascale churn model over a sharded
// net: a stateless-hash-driven churn.ShardDriver whose flip schedule is
// identical for every shard count. Call during setup; the returned
// driver is started.
func AttachChurn(net *transport.ShardedNet, seed uint64, cfg ChurnConfig) *churn.ShardDriver {
	drv := &churn.ShardDriver{
		Seed: seed, Table: net.Peers(), Part: net.Partition(), Sk: net.Kernel(),
		MeanOn: cfg.MeanOn, MeanOff: cfg.MeanOff,
	}
	if cfg.Frac > 0 {
		frac := uint64(cfg.Frac)
		drv.Churns = func(p underlay.PeerID) bool {
			return Mix64(seed^0xcc^uint64(p))%frac == 0
		}
	}
	drv.Start()
	return drv
}

// Mix64 is the splitmix64 finalizer — the stateless hash every megascale
// draw (ids, bootstrap contacts, churn flips, workload targets) derives
// from.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ReplaceCrossAS is the compact AS-aware neighbor-replacement hook (the
// paper's proximity neighbor selection applied to a full slot list):
// when candidate q shares self's AS, it returns the index of a cross-AS
// entry in slots to replace, or -1 when q is cross-AS or every entry
// already shares self's AS. Replacement at equal slot correctness lowers
// per-hop latency without changing routing behavior.
func ReplaceCrossAS(pt *underlay.PeerTable, self, q underlay.PeerID, slots []uint32) int {
	as := pt.AS(self)
	if pt.AS(q) != as {
		return -1
	}
	for i, s := range slots {
		if pt.AS(underlay.PeerID(s)) != as {
			return i
		}
	}
	return -1
}
