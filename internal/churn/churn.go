// Package churn drives peer session dynamics: hosts alternate between
// online and offline periods drawn from exponential or heavy-tailed
// Weibull distributions. The paper flags "robustness especially against
// churn" as the open evaluation question for underlay-aware systems
// (§5.4); experiments inject churn through this package.
package churn

import (
	"math/rand"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// Model draws session and absence durations.
type Model interface {
	// SessionLength returns how long a peer stays online.
	SessionLength(r *rand.Rand) sim.Duration
	// OffTime returns how long a peer stays offline before rejoining.
	OffTime(r *rand.Rand) sim.Duration
}

// Exponential is the classical memoryless churn model.
type Exponential struct {
	MeanOn, MeanOff sim.Duration
}

// SessionLength draws an exponential online period.
func (m Exponential) SessionLength(r *rand.Rand) sim.Duration {
	return sim.Exp(r, m.MeanOn)
}

// OffTime draws an exponential offline period.
func (m Exponential) OffTime(r *rand.Rand) sim.Duration {
	return sim.Exp(r, m.MeanOff)
}

// Weibull matches measured P2P session lengths (shape < 1 gives the
// heavy tail: many short sessions, a few very long ones).
type Weibull struct {
	ShapeOn  float64
	ScaleOn  sim.Duration
	ShapeOff float64
	ScaleOff sim.Duration
}

// SessionLength draws a Weibull online period.
func (m Weibull) SessionLength(r *rand.Rand) sim.Duration {
	return sim.Duration(sim.Weibull(r, m.ShapeOn, float64(m.ScaleOn)))
}

// OffTime draws a Weibull offline period.
func (m Weibull) OffTime(r *rand.Rand) sim.Duration {
	return sim.Duration(sim.Weibull(r, m.ShapeOff, float64(m.ScaleOff)))
}

// Driver schedules join/leave events for a set of hosts on a kernel.
type Driver struct {
	Kernel *sim.Kernel
	Model  Model
	// ModelFor, when non-nil, overrides Model per host — e.g. sessions
	// drawn from each peer's own resource profile (capable peers tend to
	// be the stable ones, the premise of super-peer election).
	ModelFor func(*underlay.Host) Model
	Rand     *rand.Rand
	// OnJoin and OnLeave are invoked after the host's Up flag flips;
	// either may be nil.
	OnJoin  func(*underlay.Host)
	OnLeave func(*underlay.Host)
	// Trace, when non-nil, observes every session transition (after Up
	// flips, before OnJoin/OnLeave) — the telemetry layer's event source.
	// up reports the host's new state.
	Trace func(h *underlay.Host, up bool)
	// Joins and Leaves count events for reporting.
	Joins, Leaves uint64

	// hosts remembers every population handed to Start, so Online can
	// report the live population mid-run (the telemetry probe samples
	// it as a health gauge).
	hosts []*underlay.Host
}

// Start begins the online/offline cycle for each host. Hosts currently up
// get a session expiry; hosts down get a rejoin time.
func (d *Driver) Start(hosts []*underlay.Host) {
	d.hosts = append(d.hosts, hosts...)
	for _, h := range hosts {
		h := h
		if h.Up {
			d.scheduleLeave(h)
		} else {
			d.scheduleJoin(h)
		}
	}
}

// Online reports how many driven hosts are currently up — the live
// population under churn.
func (d *Driver) Online() int {
	n := 0
	for _, h := range d.hosts {
		if h.Up {
			n++
		}
	}
	return n
}

// Population reports how many hosts the driver cycles.
func (d *Driver) Population() int { return len(d.hosts) }

func (d *Driver) modelFor(h *underlay.Host) Model {
	if d.ModelFor != nil {
		return d.ModelFor(h)
	}
	return d.Model
}

func (d *Driver) scheduleLeave(h *underlay.Host) {
	d.Kernel.Schedule(d.modelFor(h).SessionLength(d.Rand), func() {
		if !h.Up {
			return
		}
		h.Up = false
		d.Leaves++
		if d.Trace != nil {
			d.Trace(h, false)
		}
		if d.OnLeave != nil {
			d.OnLeave(h)
		}
		d.scheduleJoin(h)
	})
}

func (d *Driver) scheduleJoin(h *underlay.Host) {
	d.Kernel.Schedule(d.modelFor(h).OffTime(d.Rand), func() {
		if h.Up {
			return
		}
		h.Up = true
		d.Joins++
		if d.Trace != nil {
			d.Trace(h, true)
		}
		if d.OnJoin != nil {
			d.OnJoin(h)
		}
		d.scheduleLeave(h)
	})
}
