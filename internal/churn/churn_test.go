package churn

import (
	"math"
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/underlay"
)

func buildHosts() (*underlay.Network, []*underlay.Host) {
	net := topology.Star(4, topology.DefaultConfig())
	hosts := topology.PlaceHosts(net, 20, false, 1, 2, sim.NewSource(1).Stream("churn-place"))
	return net, hosts
}

func TestExponentialModel(t *testing.T) {
	m := Exponential{MeanOn: 100, MeanOff: 50}
	r := sim.NewSource(2).Stream("exp")
	var onSum, offSum sim.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		onSum += m.SessionLength(r)
		offSum += m.OffTime(r)
	}
	if math.Abs(float64(onSum)/n-100) > 5 {
		t.Fatalf("mean on = %v", float64(onSum)/n)
	}
	if math.Abs(float64(offSum)/n-50) > 3 {
		t.Fatalf("mean off = %v", float64(offSum)/n)
	}
}

func TestWeibullModelHeavyTail(t *testing.T) {
	m := Weibull{ShapeOn: 0.5, ScaleOn: 100, ShapeOff: 1, ScaleOff: 50}
	r := sim.NewSource(3).Stream("weib")
	var max sim.Duration
	var sum sim.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		d := m.SessionLength(r)
		if d <= 0 {
			t.Fatal("non-positive session")
		}
		sum += d
		if d > max {
			max = d
		}
	}
	if float64(max) < 10*float64(sum)/n {
		t.Fatalf("no heavy tail: max %v vs mean %v", max, float64(sum)/n)
	}
}

func TestDriverCyclesHosts(t *testing.T) {
	_, hosts := buildHosts()
	k := sim.NewKernel()
	var joins, leaves int
	d := &Driver{
		Kernel:  k,
		Model:   Exponential{MeanOn: 100, MeanOff: 100},
		Rand:    sim.NewSource(4).Stream("drv"),
		OnJoin:  func(*underlay.Host) { joins++ },
		OnLeave: func(*underlay.Host) { leaves++ },
	}
	d.Start(hosts)
	k.Run(10 * sim.Second)
	if leaves == 0 || joins == 0 {
		t.Fatalf("no churn: joins=%d leaves=%d", joins, leaves)
	}
	if uint64(joins) != d.Joins || uint64(leaves) != d.Leaves {
		t.Fatal("driver counters disagree with callbacks")
	}
	// Every leave precedes its host's next join: counts may differ by at
	// most the population size.
	if leaves < joins-len(hosts) || leaves > joins+len(hosts) {
		t.Fatalf("implausible join/leave balance: %d/%d", joins, leaves)
	}
}

func TestDriverHalfOnlineEquilibrium(t *testing.T) {
	_, hosts := buildHosts()
	k := sim.NewKernel()
	d := &Driver{
		Kernel: k,
		Model:  Exponential{MeanOn: 200, MeanOff: 200},
		Rand:   sim.NewSource(5).Stream("drv2"),
	}
	d.Start(hosts)
	k.Run(20 * sim.Second)
	up := 0
	for _, h := range hosts {
		if h.Up {
			up++
		}
	}
	// Equal on/off means ≈50% online; allow wide slack for 60 hosts.
	if up < len(hosts)/5 || up > 4*len(hosts)/5 {
		t.Fatalf("online = %d of %d, want ≈ half", up, len(hosts))
	}
}

func TestDriverStartsOfflineHosts(t *testing.T) {
	_, hosts := buildHosts()
	for _, h := range hosts {
		h.Up = false
	}
	k := sim.NewKernel()
	d := &Driver{
		Kernel: k,
		Model:  Exponential{MeanOn: 1000, MeanOff: 10},
		Rand:   sim.NewSource(6).Stream("drv3"),
	}
	d.Start(hosts)
	k.Run(sim.Second)
	up := 0
	for _, h := range hosts {
		if h.Up {
			up++
		}
	}
	if up < len(hosts)*9/10 {
		t.Fatalf("offline hosts did not rejoin: %d/%d up", up, len(hosts))
	}
}
