package churn

import (
	"reflect"
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

func buildTable(t *testing.T, perAS, K int) (*underlay.PeerTable, *underlay.Partition, *sim.ShardedKernel) {
	t.Helper()
	u := underlay.New()
	transit := u.AddAS(underlay.TransitISP, 2)
	for i := 0; i < 4; i++ {
		stub := u.AddAS(underlay.LocalISP, 4)
		u.ConnectTransit(stub, transit, 10)
	}
	u.ComputeRoutes()
	pt := underlay.NewPeerTable(u, 4*perAS)
	for as := 1; as <= 4; as++ {
		for j := 0; j < perAS; j++ {
			pt.AddPeer(as, 3)
		}
	}
	part := underlay.PartitionASes(u.NumASes(),
		func(as int) int { return pt.PeersPerAS()[int32(as)] }, K)
	return pt, part, sim.NewSharded(K, 10)
}

// TestShardDriverKIndependent pins that the full churn schedule — which
// peer flips, in which direction, at what simulated time — is identical
// for K=1 and K=4, because draws are stateless hashes of
// (seed, peer, counter) rather than a shared RNG stream.
func TestShardDriverKIndependent(t *testing.T) {
	type flip struct {
		At sim.Time
		Up bool
	}
	run := func(K int) ([][]flip, uint64, uint64) {
		pt, part, sk := buildTable(t, 8, K)
		logs := make([][]flip, pt.Len()) // logs[p] owned by p's shard
		d := &ShardDriver{
			Seed: 42, Table: pt, Part: part, Sk: sk,
			MeanOn: 50, MeanOff: 20,
			Churns:  func(p underlay.PeerID) bool { return p%2 == 0 },
			OnJoin:  func(p underlay.PeerID) { logs[p] = append(logs[p], flip{sk.Shard(part.ShardOf(pt, p)).Now(), true}) },
			OnLeave: func(p underlay.PeerID) { logs[p] = append(logs[p], flip{sk.Shard(part.ShardOf(pt, p)).Now(), false}) },
		}
		d.Start()
		sk.Run(500)
		return logs, d.Joins(), d.Leaves()
	}
	l1, j1, v1 := run(1)
	l4, j4, v4 := run(4)
	if j1 != j4 || v1 != v4 {
		t.Fatalf("counters diverge: joins %d/%d leaves %d/%d", j1, j4, v1, v4)
	}
	if v1 == 0 {
		t.Fatal("no churn happened in 500ms with MeanOn=50")
	}
	if !reflect.DeepEqual(l1, l4) {
		t.Fatal("churn schedules diverge between K=1 and K=4")
	}
	// Non-churners never flip.
	for p, l := range l1 {
		if p%2 == 1 && len(l) != 0 {
			t.Fatalf("non-churner %d flipped", p)
		}
	}
}

// TestShardDriverLivenessConsistent checks flips alternate down/up and
// the table's liveness matches the last flip after the run.
func TestShardDriverLivenessConsistent(t *testing.T) {
	pt, part, sk := buildTable(t, 4, 2)
	last := make([]int8, pt.Len()) // -1 down, +1 up; owned per shard
	d := &ShardDriver{
		Seed: 7, Table: pt, Part: part, Sk: sk,
		MeanOn: 30, MeanOff: 30,
		OnJoin:  func(p underlay.PeerID) { last[p] = 1 },
		OnLeave: func(p underlay.PeerID) { last[p] = -1 },
	}
	d.Start()
	sk.Run(300)
	for p := 0; p < pt.Len(); p++ {
		up := pt.Up(underlay.PeerID(p))
		switch last[p] {
		case 0:
			if !up {
				t.Fatalf("peer %d never flipped but is down", p)
			}
		case 1:
			if !up {
				t.Fatalf("peer %d last joined but is down", p)
			}
		case -1:
			if up {
				t.Fatalf("peer %d last left but is up", p)
			}
		}
	}
	if d.Leaves() < d.Joins() {
		t.Fatalf("joins %d exceed leaves %d", d.Joins(), d.Leaves())
	}
}
