package churn

import (
	"math"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// ShardDriver drives join/leave dynamics for PeerTable peers on a
// sharded kernel. Each peer's events are scheduled on its owning shard,
// so liveness flips stay shard-local, and every session/off-time draw is
// a stateless hash of (seed, peer, draw counter) — no shared RNG stream —
// which makes the whole churn schedule independent of the shard count K:
// the same seed produces the same joins and leaves at the same simulated
// times for any partition.
type ShardDriver struct {
	Seed  uint64
	Table *underlay.PeerTable
	Part  *underlay.Partition
	Sk    *sim.ShardedKernel

	// MeanOn and MeanOff parameterize exponential session and absence
	// durations (the classical memoryless churn model).
	MeanOn, MeanOff sim.Duration

	// Churns selects which peers churn at all; nil means every peer. A
	// deterministic predicate (hash of the peer id) keeps the choice
	// K-independent too.
	Churns func(p underlay.PeerID) bool

	// OnJoin and OnLeave run on the peer's owning shard right after its
	// liveness flips. They must only touch shard-owned state.
	OnJoin  func(p underlay.PeerID)
	OnLeave func(p underlay.PeerID)

	// joins/leaves are per-shard counters, owned by each shard.
	joins, leaves []uint64
}

// draw maps (seed, peer, counter) to an exponential duration with the
// given mean via a splitmix-style hash — stateless, so identical for any
// shard count.
func (d *ShardDriver) draw(p underlay.PeerID, ctr uint64, mean sim.Duration) sim.Duration {
	x := d.Seed ^ (uint64(p)+1)*0x9e3779b97f4a7c15 ^ ctr*0xbf58476d1ce4e5b9
	// splitmix64 finalizer
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := (float64(x>>11) + 0.5) / (1 << 53) // in (0,1)
	return sim.Duration(-math.Log(u) * float64(mean))
}

// Start schedules the first departure for every (churning) peer. Call
// during single-threaded setup, before ShardedKernel.Run.
func (d *ShardDriver) Start() {
	if d.MeanOn <= 0 || d.MeanOff <= 0 {
		panic("churn: ShardDriver needs positive MeanOn and MeanOff")
	}
	d.joins = make([]uint64, d.Sk.NumShards())
	d.leaves = make([]uint64, d.Sk.NumShards())
	for i := 0; i < d.Table.Len(); i++ {
		p := underlay.PeerID(i)
		if d.Churns != nil && !d.Churns(p) {
			continue
		}
		d.scheduleLeave(p, 0)
	}
}

func (d *ShardDriver) scheduleLeave(p underlay.PeerID, ctr uint64) {
	shard := d.Part.ShardOf(d.Table, p)
	d.Sk.Shard(shard).Schedule(d.draw(p, ctr, d.MeanOn), func() {
		d.Table.SetUp(p, false)
		d.leaves[shard]++
		if d.OnLeave != nil {
			d.OnLeave(p)
		}
		d.scheduleJoin(p, ctr+1)
	})
}

func (d *ShardDriver) scheduleJoin(p underlay.PeerID, ctr uint64) {
	shard := d.Part.ShardOf(d.Table, p)
	d.Sk.Shard(shard).Schedule(d.draw(p, ctr, d.MeanOff), func() {
		d.Table.SetUp(p, true)
		d.joins[shard]++
		if d.OnJoin != nil {
			d.OnJoin(p)
		}
		d.scheduleLeave(p, ctr+1)
	})
}

// Joins reports total rejoin events so far. Safe at barriers.
func (d *ShardDriver) Joins() uint64 { return sum(d.joins) }

// Leaves reports total departure events so far. Safe at barriers.
func (d *ShardDriver) Leaves() uint64 { return sum(d.leaves) }

func sum(xs []uint64) uint64 {
	var n uint64
	for _, x := range xs {
		n += x
	}
	return n
}
