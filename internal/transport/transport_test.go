package transport

import (
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/underlay"
)

// testNet builds a small hierarchy with hosts placed on every stub AS.
func testNet() *underlay.Network {
	src := sim.NewSource(1)
	net := topology.Star(6, topology.DefaultConfig())
	topology.PlaceHosts(net, 20, false, 1, 5, src.Stream("place"))
	return net
}

func TestSendMatchesUnderlay(t *testing.T) {
	net := testNet()
	tr := Over(net)
	hosts := net.Hosts()
	a, b := hosts[0], hosts[len(hosts)/2]
	res := tr.Send(a, b, 500, "data")
	if !res.OK {
		t.Fatal("faultless send reported not OK")
	}
	if want := net.Latency(a, b); res.Latency != want {
		t.Fatalf("latency %v, want underlay latency %v", res.Latency, want)
	}
	if got := tr.Counters().Value("data"); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
	st := tr.StatsFor("data")
	if st.Msgs != 1 || st.Dropped != 0 || st.Bytes != 500 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRoundTripSumsBothLegs(t *testing.T) {
	net := testNet()
	tr := Over(net)
	hosts := net.Hosts()
	a, b := hosts[1], hosts[7]
	res := tr.RoundTrip(a, b, 100, 200, "req", "resp")
	if !res.OK {
		t.Fatal("round trip failed without faults")
	}
	if want := net.RTT(a, b); res.Latency != want {
		t.Fatalf("round trip latency %v, want RTT %v", res.Latency, want)
	}
	if tr.Counters().Value("req") != 1 || tr.Counters().Value("resp") != 1 {
		t.Fatal("round trip did not count one request and one response")
	}
}

func TestProbeMatchesRTT(t *testing.T) {
	net := testNet()
	tr := Over(net)
	hosts := net.Hosts()
	res := tr.Probe(hosts[0], hosts[9], 40)
	if !res.OK || res.Latency != net.RTT(hosts[0], hosts[9]) {
		t.Fatalf("probe = %+v, want RTT %v", res, net.RTT(hosts[0], hosts[9]))
	}
	if tr.Counters().Value("probe") != 2 {
		t.Fatal("probe should count two messages")
	}
}

// TestDeterminism runs the same traffic twice under the same seed —
// including fault injection — and requires identical outcomes.
func TestDeterminism(t *testing.T) {
	run := func() (drops uint64, total sim.Duration) {
		net := testNet()
		tr := Over(net)
		tr.Faults = Faults{
			LossRate:  0.2,
			JitterMax: 5,
			Rand:      sim.NewSource(42).Stream("faults"),
		}
		hosts := net.Hosts()
		for i := 0; i < 500; i++ {
			res := tr.Send(hosts[i%len(hosts)], hosts[(i*7+3)%len(hosts)], 100, "x")
			total += res.Latency
		}
		return tr.StatsFor("x").Dropped, total
	}
	d1, l1 := run()
	d2, l2 := run()
	if d1 != d2 || l1 != l2 {
		t.Fatalf("same seed diverged: drops %d vs %d, latency %v vs %v", d1, d2, l1, l2)
	}
	if d1 == 0 {
		t.Fatal("20% loss dropped nothing in 500 sends")
	}
}

func TestLossInjection(t *testing.T) {
	net := testNet()
	tr := Over(net)
	tr.Faults = Faults{LossRate: 0.5, Rand: sim.NewSource(7).Stream("faults")}
	hosts := net.Hosts()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i*11+1)%len(hosts)], 100, "x")
	}
	st := tr.StatsFor("x")
	if st.Msgs != n {
		t.Fatalf("attempts = %d, want %d", st.Msgs, n)
	}
	frac := float64(st.Dropped) / float64(st.Msgs)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("drop fraction %.3f far from configured 0.5", frac)
	}
	// Dropped messages charge nothing.
	if st.Bytes != (st.Msgs-st.Dropped)*100 {
		t.Fatalf("bytes %d, want %d", st.Bytes, (st.Msgs-st.Dropped)*100)
	}
}

func TestExtraDelayInjection(t *testing.T) {
	net := testNet()
	hosts := net.Hosts()
	a, b := hosts[0], hosts[3]
	base := Over(net).Send(a, b, 100, "x").Latency

	tr := Over(net)
	tr.Faults = Faults{ExtraDelay: 17}
	res := tr.Send(a, b, 100, "x")
	if res.Latency != base+17 {
		t.Fatalf("delayed latency %v, want %v", res.Latency, base+17)
	}
}

func TestZeroFaultsDrawNoRandomness(t *testing.T) {
	// The zero Faults value must never touch an RNG (there is none), so
	// transport-routed traffic is bit-identical to direct underlay sends.
	net := testNet()
	tr := Over(net)
	hosts := net.Hosts()
	for i := 0; i < 100; i++ {
		if res := tr.Send(hosts[i%len(hosts)], hosts[(i+5)%len(hosts)], 50, "x"); !res.OK {
			t.Fatal("zero-fault transport dropped a message")
		}
	}
}

func TestPerTypeCounters(t *testing.T) {
	net := testNet()
	tr := Over(net)
	hosts := net.Hosts()
	sends := map[string]int{"ping": 7, "pong": 11, "query": 3}
	for kind, n := range sends {
		for i := 0; i < n; i++ {
			tr.Send(hosts[0], hosts[1], 10, kind)
		}
	}
	for kind, n := range sends {
		if got := tr.Counters().Value(kind); got != uint64(n) {
			t.Fatalf("%s = %d, want %d", kind, got, n)
		}
		if st := tr.StatsFor(kind); st.Msgs != uint64(n) || st.Bytes != uint64(n*10) {
			t.Fatalf("%s stats = %+v", kind, st)
		}
	}
	want := []string{"ping", "pong", "query"}
	names := tr.TypeNames()
	if len(names) != len(want) {
		t.Fatalf("type names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("type names = %v, want %v", names, want)
		}
	}
}

func TestMatrixForSharedAcrossTypes(t *testing.T) {
	net := testNet()
	tr := Over(net)
	hosts := net.Hosts()
	m := tr.MatrixFor("req", "resp")
	if tr.MatrixFor("req") != m {
		t.Fatal("MatrixFor not idempotent")
	}
	tr.RoundTrip(hosts[0], hosts[9], 100, 200, "req", "resp")
	if got := m.Total(); got != 300 {
		t.Fatalf("matrix total = %d, want 300", got)
	}
	// Unregistered types do not touch the matrix.
	tr.Send(hosts[0], hosts[9], 999, "other")
	if got := m.Total(); got != 300 {
		t.Fatalf("matrix total after unrelated send = %d, want 300", got)
	}
}

func TestIntraByteAccounting(t *testing.T) {
	net := testNet()
	tr := Over(net)
	hosts := net.Hosts()
	var intra, inter *underlay.Host
	for _, h := range hosts[1:] {
		if h.AS.ID == hosts[0].AS.ID && intra == nil {
			intra = h
		}
		if h.AS.ID != hosts[0].AS.ID && inter == nil {
			inter = h
		}
	}
	if intra == nil || inter == nil {
		t.Skip("topology lacks an intra/inter pair")
	}
	tr.Send(hosts[0], intra, 100, "x")
	tr.Send(hosts[0], inter, 300, "x")
	st := tr.StatsFor("x")
	if st.IntraBytes != 100 || st.InterBytes() != 300 {
		t.Fatalf("intra %d inter %d, want 100/300", st.IntraBytes, st.InterBytes())
	}
	if f := tr.IntraFraction(); f != 0.25 {
		t.Fatalf("intra fraction %.3f, want 0.25", f)
	}
}

func TestRoundTripRetries(t *testing.T) {
	net := testNet()
	tr := Over(net)
	// Drop everything: with N retries the transport makes exactly N+1
	// request attempts and then gives up.
	tr.Faults = Faults{LossRate: 1, Rand: sim.NewSource(3).Stream("faults")}
	tr.Retry = RetryPolicy{Budget: 2}
	hosts := net.Hosts()
	res := tr.RoundTrip(hosts[0], hosts[5], 100, 100, "req", "resp")
	if res.OK {
		t.Fatal("round trip succeeded under total loss")
	}
	if got := tr.Counters().Value("req"); got != 3 {
		t.Fatalf("request attempts = %d, want 3 (1 + 2 retries)", got)
	}
	if tr.Counters().Value("resp") != 0 {
		t.Fatal("responses sent despite lost requests")
	}
}

func TestDeliverSchedulesOnKernel(t *testing.T) {
	net := testNet()
	k := sim.NewKernel()
	tr := New(net, k)
	hosts := net.Hosts()
	fired := false
	if !tr.Deliver(hosts[0], hosts[4], 100, "msg", func() { fired = true }) {
		t.Fatal("faultless Deliver reported drop")
	}
	if fired {
		t.Fatal("callback ran before the kernel")
	}
	k.Drain()
	if !fired {
		t.Fatal("callback never delivered")
	}
	// A dropped message never fires its callback.
	tr.Faults = Faults{LossRate: 1, Rand: sim.NewSource(9).Stream("faults")}
	if tr.Deliver(hosts[0], hosts[4], 100, "msg", func() { t.Fatal("dropped message delivered") }) {
		t.Fatal("Deliver reported scheduling under total loss")
	}
	k.Drain()
}

func TestTraceSeesDropsAndDeliveries(t *testing.T) {
	net := testNet()
	tr := Over(net)
	tr.Faults = Faults{LossRate: 0.5, Rand: sim.NewSource(5).Stream("faults")}
	var events, drops int
	tr.Trace = func(e Event) {
		events++
		if e.Dropped {
			drops++
			if e.Latency != 0 {
				t.Fatal("dropped event carries a latency")
			}
		}
	}
	hosts := net.Hosts()
	for i := 0; i < 200; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i+3)%len(hosts)], 10, "x")
	}
	if events != 200 {
		t.Fatalf("trace saw %d events, want 200", events)
	}
	if uint64(drops) != tr.StatsFor("x").Dropped {
		t.Fatalf("trace drops %d != stats drops %d", drops, tr.StatsFor("x").Dropped)
	}
}

func TestLatencyHistogramRecorded(t *testing.T) {
	net := testNet()
	tr := Over(net)
	hosts := net.Hosts()
	for i := 0; i < 50; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i*3+1)%len(hosts)], 10, "x")
	}
	h := tr.StatsFor("x").Latency
	if h == nil || h.N() != 50 {
		t.Fatalf("histogram missing or wrong count: %v", h)
	}
	if h.Mean() <= 0 {
		t.Fatal("histogram mean not positive")
	}
	if tr.Report() == "" {
		t.Fatal("empty report")
	}
}

func TestNewPanicsOnNilUnderlay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil, nil)
}
