// Package transport is the unified message layer between every overlay and
// the simulated underlay. The paper's conclusion (§7) calls for "a general
// architecture for underlay awareness in which different underlay
// information can be collected and used"; in unap2p that architecture is a
// single instrumented send path:
//
//	sim.Kernel ── schedules deliveries
//	underlay.Network ── routes bytes, charges links, computes latency
//	transport.Transport ── THIS LAYER: counts, traces, injects faults
//	overlays (gnutella, kademlia, chord, …) ── protocol logic only
//	metrics ── counters, histograms, AS-pair traffic matrices
//	telemetry ── observes it all: run recording, span tracing, exports
//
// Every overlay message — one-way sends, request/reply round trips, and
// latency probes — goes through a Transport, which provides:
//
//   - per-message-type counters (Counters) and latency histograms,
//   - centralized intra-AS vs cross-ISP byte accounting (StatsFor,
//     IntraFraction) plus optional per-type traffic matrices (MatrixFor),
//   - deterministic fault injection (Faults): per-seed packet loss and
//     extra delay, for the churn/failure robustness studies of §6,
//   - tracing (Trace) of every message for debugging and analysis,
//   - kernel-integrated delivery scheduling (Deliver).
//
// With fault injection disabled the layer is a pure observer: latencies
// and byte accounting are bit-identical to calling underlay.Network.Send
// directly, so fixed-seed experiment results are unchanged by routing
// traffic through it.
package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"unap2p/internal/metrics"
	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// Result reports the outcome of one transport operation.
type Result struct {
	// Latency is the one-way delivery latency for Send, or the full
	// round-trip latency for RoundTrip and Probe. Zero when the message
	// was dropped.
	Latency sim.Duration
	// OK reports whether the message (and, for round trips, its reply)
	// was delivered. Only fault injection makes it false.
	OK bool
}

// Event describes one message for tracing.
type Event struct {
	From, To *underlay.Host
	Type     string
	Bytes    uint64
	// Latency is the one-way delivery latency (0 when dropped).
	Latency sim.Duration
	// Dropped reports that fault injection discarded the message.
	Dropped bool
	// At is the simulated send time, stamped from the transport's kernel
	// (0 for kernel-less transports, whose sends are not on a timeline).
	At sim.Time
}

// Faults configures deterministic fault injection. The zero value injects
// nothing and adds no per-message RNG draws, preserving bit-identical
// results for existing seeds.
type Faults struct {
	// LossRate is the probability in [0,1] that a message is dropped
	// before reaching the underlay. Requires Rand.
	LossRate float64
	// ExtraDelay is added to every delivered message's one-way latency.
	ExtraDelay sim.Duration
	// JitterMax, when positive, adds a uniform random extra delay in
	// [0, JitterMax) per delivered message. Requires Rand.
	JitterMax sim.Duration
	// Rand is the dedicated RNG stream for loss and jitter draws; use a
	// sim.Source stream so faults are reproducible per seed.
	Rand *rand.Rand
	// Drop, when non-nil, is consulted per message before the LossRate
	// draw; returning true discards the message. It is the hook scenario
	// harnesses (internal/chaos) use for endpoint-aware faults — AS
	// partitions, correlated per-AS loss bursts — that a flat loss rate
	// cannot express. Any randomness inside Drop must come from its own
	// seeded stream to keep runs reproducible.
	Drop func(from, to *underlay.Host) bool
}

func (f Faults) active() bool { return f.LossRate > 0 || f.ExtraDelay > 0 || f.JitterMax > 0 }

// Messenger is the interface overlays send through. *Transport is the
// production implementation; tests inject fakes to observe protocol
// behaviour without a real underlay charge.
type Messenger interface {
	// Underlay returns the network used for topology queries (host
	// lookup, latency estimates); overlays must not call its Send.
	Underlay() *underlay.Network
	// Kernel returns the event kernel for scheduling, or nil when the
	// transport was built without one.
	Kernel() *sim.Kernel
	// Send delivers one message of the given type and size.
	Send(from, to *underlay.Host, bytes uint64, msgType string) Result
	// RoundTrip sends a request and its reply, returning the summed
	// round-trip latency — the request/reply idiom every RPC-style
	// overlay shares. Dropped legs are retried under the transport's
	// default RetryPolicy.
	RoundTrip(from, to *underlay.Host, reqBytes, respBytes uint64, reqType, respType string) Result
	// RoundTripWith is RoundTrip under a caller-supplied retry policy —
	// per-peer budgets and backoff schedules (internal/resilience) ride
	// the same instrumented path.
	RoundTripWith(p RetryPolicy, from, to *underlay.Host, reqBytes, respBytes uint64, reqType, respType string) Result
	// Probe measures the RTT between two hosts with a real probe/response
	// message pair (type "probe"), charging the measurement traffic §3.2
	// warns about.
	Probe(from, to *underlay.Host, bytes uint64) Result
	// Counters exposes the per-message-type counters.
	Counters() *metrics.CounterSet
	// MatrixFor returns a traffic matrix recording every message of the
	// given types (shared across them), creating it on first use.
	MatrixFor(msgTypes ...string) *metrics.TrafficMatrix
}

// typeStats accumulates per-message-type accounting.
type typeStats struct {
	msgs, dropped     uint64
	bytes, intraBytes uint64
	latency           *metrics.Histogram
	// id is the dense index of this type in Transport.typeNames, used as
	// the pointer-free type tag in event log entries.
	id uint32
}

// Stats is a read-only snapshot of one message type's accounting.
type Stats struct {
	Type string
	// Msgs counts send attempts; Dropped counts those lost to fault
	// injection.
	Msgs, Dropped uint64
	// Bytes is delivered payload; IntraBytes the share whose endpoints
	// lay in the same AS. Inter-ISP bytes are Bytes - IntraBytes.
	Bytes, IntraBytes uint64
	// Latency is the one-way delivery latency histogram (live view).
	Latency *metrics.Histogram
}

// InterBytes returns the delivered bytes that crossed an AS boundary —
// the traffic ISPs pay transit for.
func (s Stats) InterBytes() uint64 { return s.Bytes - s.IntraBytes }

// Transport is the production Messenger over a real underlay.
type Transport struct {
	u *underlay.Network
	k *sim.Kernel

	// Faults configures deterministic loss and delay injection.
	Faults Faults
	// Retry is the default policy RoundTrip applies when either leg is
	// dropped; retries are real (counted, charged) messages, so overlay
	// recovery traffic stays bounded and visible. The zero value retries
	// nothing. Callers with per-peer policies (internal/resilience) pass
	// their own via RoundTripWith instead.
	Retry RetryPolicy
	// Trace, when non-nil, observes every message (including drops).
	Trace func(Event)
	// log, when non-nil, receives every message event in place — see
	// EventLog and SetEventLog.
	log *EventLog

	msgs     *metrics.CounterSet
	types    map[string]*typeStats
	matrices map[string]*metrics.TrafficMatrix
	// typeNames maps typeStats.id back to the message type string.
	typeNames []string
}

var _ Messenger = (*Transport)(nil)

// New returns a Transport over the given underlay. k may be nil for
// overlays that never schedule deliveries on a kernel.
func New(u *underlay.Network, k *sim.Kernel) *Transport {
	if u == nil {
		panic("transport: nil underlay")
	}
	return &Transport{
		u:        u,
		k:        k,
		msgs:     metrics.NewCounterSet(),
		types:    make(map[string]*typeStats),
		matrices: make(map[string]*metrics.TrafficMatrix),
	}
}

// Over is shorthand for New(u, nil) — a transport for kernel-less overlays.
func Over(u *underlay.Network) *Transport { return New(u, nil) }

// Underlay returns the wrapped network.
func (t *Transport) Underlay() *underlay.Network { return t.u }

// Kernel returns the event kernel (nil when built without one).
func (t *Transport) Kernel() *sim.Kernel { return t.k }

// Counters exposes the per-message-type counters.
func (t *Transport) Counters() *metrics.CounterSet { return t.msgs }

// MatrixFor returns the traffic matrix shared by the given message types,
// creating and registering one on first use. Subsequent Sends of any of
// the types update it.
func (t *Transport) MatrixFor(msgTypes ...string) *metrics.TrafficMatrix {
	if len(msgTypes) == 0 {
		panic("transport: MatrixFor needs at least one message type")
	}
	var m *metrics.TrafficMatrix
	for _, ty := range msgTypes {
		if ex := t.matrices[ty]; ex != nil {
			m = ex
			break
		}
	}
	if m == nil {
		m = metrics.NewTrafficMatrix()
	}
	for _, ty := range msgTypes {
		t.matrices[ty] = m
	}
	return m
}

// now returns the kernel's simulated time for event stamping (0 when the
// transport is kernel-less).
func (t *Transport) now() sim.Time {
	if t.k == nil {
		return 0
	}
	return t.k.Now()
}

// AddTrace chains fn after any already-installed Trace observer, so
// several consumers (a debug printer, a telemetry recorder) can watch the
// same transport without clobbering each other.
func (t *Transport) AddTrace(fn func(Event)) {
	if fn == nil {
		return
	}
	if prev := t.Trace; prev != nil {
		t.Trace = func(e Event) { prev(e); fn(e) }
		return
	}
	t.Trace = fn
}

// LogEntry is the on-ring representation of one message event. It is
// deliberately pointer-free — host IDs instead of *Host, a dense type
// tag (see Transport.TypeByID) instead of the type string — so the
// in-place fill in Send compiles to a handful of plain stores with no
// GC write barrier and no stack temporary.
type LogEntry struct {
	// At is the simulated send time (0 for kernel-less transports).
	At sim.Time
	// Latency is the one-way delivery latency (0 when dropped).
	Latency sim.Duration
	// Bytes is the message payload size.
	Bytes uint64
	// From and To are the endpoint host IDs.
	From, To int32
	// Type is the message type tag; resolve with Transport.TypeByID.
	Type uint32
	// Dropped reports that fault injection discarded the message.
	Dropped bool
}

// EventLog is a fixed-size ring of message events that Send fills in
// place, keeping the last capacity events — the near-zero-cost
// alternative to a Trace callback for high-rate consumers (the telemetry
// recorder's staging buffer). Unlike Trace, whose indirect call and
// argument copy cost tens of nanoseconds per message, the log append
// inlines into Send as a single in-place struct store: older events are
// overwritten implicitly by the masked write, so the hot path carries no
// overflow branch; Drain reconstructs the overwrite count afterwards. A
// log is written by the one goroutine driving its transport and must
// only be drained after that goroutine is quiescent.
type EventLog struct {
	buf  []LogEntry // power-of-two length; the next slot is buf[w&(len-1)]
	w    uint64     // events written so far
	done uint64     // events already consumed by Drain
}

// NewEventLog returns a log holding up to capacity events (rounded up to
// a power of two; minimum 1).
func NewEventLog(capacity int) *EventLog {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &EventLog{buf: make([]LogEntry, size)}
}

// slot claims the ring slot for the next event; Send constructs the
// event directly into it. Kept trivial so it inlines into the send
// path; the len-1 masking idiom also lets the compiler drop the bounds
// check.
func (l *EventLog) slot() *LogEntry {
	p := &l.buf[l.w&uint64(len(l.buf)-1)]
	l.w++
	return p
}

// Written reports the total events appended so far.
func (l *EventLog) Written() uint64 { return l.w }

// Drain invokes fn on every retained event in arrival order, empties the
// log, and returns how many events were overwritten (lost) since the
// previous drain.
func (l *EventLog) Drain(fn func(*LogEntry)) (lost uint64) {
	lo := l.done
	if l.w-lo > uint64(len(l.buf)) {
		lost = l.w - lo - uint64(len(l.buf))
		lo = l.w - uint64(len(l.buf))
	}
	for i := lo; i < l.w; i++ {
		fn(&l.buf[i&uint64(len(l.buf)-1)])
	}
	l.done = l.w
	return lost
}

// SetEventLog attaches (or, with nil, detaches) the transport's event
// log. A transport has at most one log — attaching replaces any previous
// one; use AddTrace for additional lower-rate observers.
func (t *Transport) SetEventLog(l *EventLog) { t.log = l }

func (t *Transport) stats(msgType string) *typeStats {
	st, ok := t.types[msgType]
	if !ok {
		st = &typeStats{latency: metrics.NewLatencyHistogram(), id: uint32(len(t.typeNames))}
		t.types[msgType] = st
		t.typeNames = append(t.typeNames, msgType)
	}
	return st
}

// TypeByID resolves an event log entry's type tag back to the message
// type string.
func (t *Transport) TypeByID(id uint32) string { return t.typeNames[id] }

// dropped draws the loss decision for one message. The endpoint-aware
// Drop hook is consulted first so a chaos schedule can partition or
// degrade specific AS pairs without perturbing the flat LossRate stream.
func (t *Transport) dropped(from, to *underlay.Host) bool {
	if d := t.Faults.Drop; d != nil && d(from, to) {
		return true
	}
	if t.Faults.LossRate <= 0 {
		return false
	}
	if t.Faults.Rand == nil {
		panic("transport: Faults.LossRate requires Faults.Rand")
	}
	return t.Faults.Rand.Float64() < t.Faults.LossRate
}

// extraDelay draws the injected delay for one delivered message.
func (t *Transport) extraDelay() sim.Duration {
	d := t.Faults.ExtraDelay
	if t.Faults.JitterMax > 0 {
		if t.Faults.Rand == nil {
			panic("transport: Faults.JitterMax requires Faults.Rand")
		}
		d += sim.Duration(t.Faults.Rand.Float64() * float64(t.Faults.JitterMax))
	}
	return d
}

// Send delivers one message: the type counter is incremented, the bytes
// are charged to the underlay path, and the one-way latency (plus any
// injected delay) is returned. A message dropped by fault injection is
// counted but charges nothing.
func (t *Transport) Send(from, to *underlay.Host, bytes uint64, msgType string) Result {
	st := t.stats(msgType)
	t.msgs.Get(msgType).Inc()
	st.msgs++
	if t.dropped(from, to) {
		st.dropped++
		if l := t.log; l != nil {
			*l.slot() = LogEntry{At: t.now(), Bytes: bytes,
				From: int32(from.ID), To: int32(to.ID), Type: st.id, Dropped: true}
		}
		if t.Trace != nil {
			t.Trace(Event{From: from, To: to, Type: msgType, Bytes: bytes, Dropped: true, At: t.now()})
		}
		return Result{}
	}
	lat := t.u.Send(from, to, bytes)
	if t.Faults.active() {
		lat += t.extraDelay()
	}
	st.bytes += bytes
	if from.AS.ID == to.AS.ID {
		st.intraBytes += bytes
	}
	st.latency.Observe(float64(lat))
	if m := t.matrices[msgType]; m != nil {
		m.Add(from.AS.ID, to.AS.ID, bytes)
	}
	if l := t.log; l != nil {
		*l.slot() = LogEntry{At: t.now(), Latency: lat, Bytes: bytes,
			From: int32(from.ID), To: int32(to.ID), Type: st.id}
	}
	if t.Trace != nil {
		t.Trace(Event{From: from, To: to, Type: msgType, Bytes: bytes, Latency: lat, At: t.now()})
	}
	return Result{Latency: lat, OK: true}
}

// RetryPolicy governs how RoundTrip reacts to a dropped leg. The zero
// value makes a single attempt and gives up — identical to the seed
// behaviour, so existing fixed-seed results are unchanged.
type RetryPolicy struct {
	// Budget is the number of extra attempts after the first; each retry
	// re-sends the full request (and, on delivery, the reply), so every
	// attempt is a real counted, charged message.
	Budget int
	// Backoff, when non-nil, returns the wait inserted before retry
	// attempt n (1-based: Backoff(1) precedes the first re-send). Waits
	// are charged into the successful Result.Latency so recovery time is
	// visible to the caller; they draw no transport RNG, keeping the
	// fault stream stable. A resilience layer supplies a jittered
	// exponential backoff here from its own seeded stream.
	Backoff func(attempt int) sim.Duration
}

// RoundTrip performs a request/reply exchange under the transport's
// default Retry policy. It returns the summed round-trip latency of the
// successful attempt plus any backoff waits spent reaching it.
func (t *Transport) RoundTrip(from, to *underlay.Host, reqBytes, respBytes uint64,
	reqType, respType string) Result {
	return t.RoundTripWith(t.Retry, from, to, reqBytes, respBytes, reqType, respType)
}

// RoundTripWith is RoundTrip with a caller-supplied retry policy — the
// seam that lets per-peer policies (failure detectors, backoff schedules)
// drive the shared send path without mutating transport-wide state.
func (t *Transport) RoundTripWith(p RetryPolicy, from, to *underlay.Host,
	reqBytes, respBytes uint64, reqType, respType string) Result {
	var waited sim.Duration
	for attempt := 0; ; attempt++ {
		req := t.Send(from, to, reqBytes, reqType)
		if req.OK {
			resp := t.Send(to, from, respBytes, respType)
			if resp.OK {
				return Result{Latency: waited + req.Latency + resp.Latency, OK: true}
			}
		}
		if attempt >= p.Budget {
			return Result{}
		}
		if p.Backoff != nil {
			waited += p.Backoff(attempt + 1)
		}
	}
}

// Probe measures the RTT between two hosts with a probe/response pair of
// the given size, counted under type "probe".
func (t *Transport) Probe(from, to *underlay.Host, bytes uint64) Result {
	return t.RoundTrip(from, to, bytes, bytes, "probe", "probe")
}

// Deliver sends a message and schedules fn on the kernel at its delivery
// time. A dropped message never runs fn. It reports whether delivery was
// scheduled.
func (t *Transport) Deliver(from, to *underlay.Host, bytes uint64, msgType string, fn func()) bool {
	if t.k == nil {
		panic("transport: Deliver requires a kernel")
	}
	res := t.Send(from, to, bytes, msgType)
	if !res.OK {
		return false
	}
	t.k.Schedule(res.Latency, fn)
	return true
}

// TrafficMatrices returns each registered matrix exactly once, keyed by
// the sorted "+"-joined message types that share it — the enumeration the
// telemetry exporter snapshots.
func (t *Transport) TrafficMatrices() map[string]*metrics.TrafficMatrix {
	byMatrix := make(map[*metrics.TrafficMatrix][]string)
	for ty, m := range t.matrices {
		byMatrix[m] = append(byMatrix[m], ty)
	}
	out := make(map[string]*metrics.TrafficMatrix, len(byMatrix))
	for m, tys := range byMatrix {
		sort.Strings(tys)
		out[strings.Join(tys, "+")] = m
	}
	return out
}

// TypeNames returns every message type seen so far, sorted.
func (t *Transport) TypeNames() []string {
	names := make([]string, 0, len(t.types))
	for n := range t.types {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StatsFor returns the accounting snapshot for one message type (zero
// Stats with a nil histogram when the type was never sent).
func (t *Transport) StatsFor(msgType string) Stats {
	st, ok := t.types[msgType]
	if !ok {
		return Stats{Type: msgType}
	}
	return Stats{
		Type: msgType, Msgs: st.msgs, Dropped: st.dropped,
		Bytes: st.bytes, IntraBytes: st.intraBytes, Latency: st.latency,
	}
}

// AllStats returns snapshots for every message type, sorted by type.
func (t *Transport) AllStats() []Stats {
	out := make([]Stats, 0, len(t.types))
	for _, n := range t.TypeNames() {
		out = append(out, t.StatsFor(n))
	}
	return out
}

// TotalBytes returns delivered bytes across all message types.
func (t *Transport) TotalBytes() uint64 {
	var sum uint64
	for _, st := range t.types {
		sum += st.bytes
	}
	return sum
}

// IntraFraction returns the intra-AS share of all delivered bytes in
// [0,1] — the locality headline, computed once here instead of per
// experiment.
func (t *Transport) IntraFraction() float64 {
	var intra, total uint64
	for _, st := range t.types {
		intra += st.intraBytes
		total += st.bytes
	}
	if total == 0 {
		return 0
	}
	return float64(intra) / float64(total)
}

// Report formats the per-type accounting as an aligned text table.
func (t *Transport) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %8s %12s %8s %10s %10s\n",
		"type", "msgs", "dropped", "bytes", "intra%", "lat p50", "lat p95")
	for _, s := range t.AllStats() {
		intra := 0.0
		if s.Bytes > 0 {
			intra = 100 * float64(s.IntraBytes) / float64(s.Bytes)
		}
		fmt.Fprintf(&b, "%-12s %10d %8d %12d %7.1f%% %10.1f %10.1f\n",
			s.Type, s.Msgs, s.Dropped, s.Bytes, intra,
			s.Latency.Quantile(0.5), s.Latency.Quantile(0.95))
	}
	return b.String()
}
