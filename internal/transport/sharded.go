package transport

import (
	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// ShardedNet is the transport seam for sharded megascale runs: it routes
// messages between PeerTable peers across a sim.ShardedKernel. Same-shard
// deliveries schedule directly on the sender's shard; deliveries whose
// destination peer lives on another shard go through the kernel's
// cross-shard batch path (Shard.DeferTo) and are counted per lane.
//
// Unlike Transport, a ShardedNet does not charge underlay links or the
// AS-pair traffic matrix — those are process-wide mutable structures a
// parallel run would race on. Accounting is per-shard (Lane) instead:
// per-class message/byte counters plus intra-AS and cross-shard splits,
// each lane owned by exactly one shard and aggregated only at barriers.
type ShardedNet struct {
	u     *underlay.Network
	pt    *underlay.PeerTable
	part  *underlay.Partition
	sk    *sim.ShardedKernel
	names []string
	lanes []*Lane
}

// Lane is one shard's private traffic accounting. All slices are indexed
// by message class.
type Lane struct {
	Msgs         []uint64
	Bytes        []uint64
	IntraASBytes []uint64
	// CrossMsgs and CrossBytes count messages handed to the cross-shard
	// batch path (destination peer owned by another shard).
	CrossMsgs  uint64
	CrossBytes uint64
}

// NewShardedNet builds a sharded transport over the given peer table and
// kernel. classes names the message classes (request, reply, probe, …);
// Send takes the class index. The network's routes must already be
// computed (Network.ComputeRoutes) — lazy route building inside a shard
// callback would race.
func NewShardedNet(u *underlay.Network, pt *underlay.PeerTable, part *underlay.Partition,
	sk *sim.ShardedKernel, classes []string) *ShardedNet {
	n := &ShardedNet{u: u, pt: pt, part: part, sk: sk, names: append([]string(nil), classes...)}
	for i := 0; i < sk.NumShards(); i++ {
		n.lanes = append(n.lanes, &Lane{
			Msgs:         make([]uint64, len(classes)),
			Bytes:        make([]uint64, len(classes)),
			IntraASBytes: make([]uint64, len(classes)),
		})
	}
	return n
}

// RegisterClass appends a message class (e.g. "kad:req") and returns its
// index for Send. Each overlay port registers its own classes so a
// multi-overlay run keeps per-overlay traffic accounting. Call during
// single-threaded setup only — it grows every shard's lane.
func (n *ShardedNet) RegisterClass(name string) int {
	for i, have := range n.names {
		if have == name {
			return i
		}
	}
	n.names = append(n.names, name)
	for _, l := range n.lanes {
		l.Msgs = append(l.Msgs, 0)
		l.Bytes = append(l.Bytes, 0)
		l.IntraASBytes = append(l.IntraASBytes, 0)
	}
	return len(n.names) - 1
}

// Peers returns the peer table the net routes between.
func (n *ShardedNet) Peers() *underlay.PeerTable { return n.pt }

// Partition returns the AS→shard partition.
func (n *ShardedNet) Partition() *underlay.Partition { return n.part }

// Kernel returns the sharded kernel.
func (n *ShardedNet) Kernel() *sim.ShardedKernel { return n.sk }

// ShardOf returns the shard owning peer p.
func (n *ShardedNet) ShardOf(p underlay.PeerID) int { return n.part.ShardOf(n.pt, p) }

// Lane returns shard i's accounting lane. Mutate only from shard i.
func (n *ShardedNet) Lane(i int) *Lane { return n.lanes[i] }

// Latency returns the one-way delay between two peers.
func (n *ShardedNet) Latency(a, b underlay.PeerID) sim.Duration { return n.pt.Latency(a, b) }

// Send delivers bytes from peer from to peer to, invoking fn on the
// destination peer's owning shard after the one-way latency. It must be
// called from the sending peer's owning shard (or during single-threaded
// setup). Liveness checks belong inside fn: only the destination's shard
// may read the destination's up flag, and only at delivery time.
func (n *ShardedNet) Send(from, to underlay.PeerID, class int, bytes uint64, fn func()) sim.Duration {
	src := n.part.ShardOf(n.pt, from)
	dst := n.part.ShardOf(n.pt, to)
	lane := n.lanes[src]
	lane.Msgs[class]++
	lane.Bytes[class] += bytes
	if n.pt.AS(from) == n.pt.AS(to) {
		lane.IntraASBytes[class] += bytes
	}
	lat := n.pt.Latency(from, to)
	s := n.sk.Shard(src)
	if dst == src {
		s.Schedule(lat, fn)
		return lat
	}
	lane.CrossMsgs++
	lane.CrossBytes += bytes
	s.DeferTo(dst, lat, bytes, fn)
	return lat
}

// ClassStats is the aggregated accounting of one message class.
type ClassStats struct {
	Class        string
	Msgs         uint64
	Bytes        uint64
	IntraASBytes uint64
}

// NetStats aggregates every lane. Safe at barriers or after a run.
type NetStats struct {
	PerClass   []ClassStats
	Msgs       uint64
	Bytes      uint64
	IntraBytes uint64
	CrossMsgs  uint64
	CrossBytes uint64
}

// IntraFraction reports the fraction of bytes that stayed inside one AS —
// the locality headline the paper's underlay-awareness techniques move.
func (s NetStats) IntraFraction() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.IntraBytes) / float64(s.Bytes)
}

// Stats aggregates all lanes into totals.
func (n *ShardedNet) Stats() NetStats {
	st := NetStats{PerClass: make([]ClassStats, len(n.names))}
	for i, name := range n.names {
		st.PerClass[i].Class = name
	}
	for _, l := range n.lanes {
		for c := range n.names {
			st.PerClass[c].Msgs += l.Msgs[c]
			st.PerClass[c].Bytes += l.Bytes[c]
			st.PerClass[c].IntraASBytes += l.IntraASBytes[c]
			st.Msgs += l.Msgs[c]
			st.Bytes += l.Bytes[c]
			st.IntraBytes += l.IntraASBytes[c]
		}
		st.CrossMsgs += l.CrossMsgs
		st.CrossBytes += l.CrossBytes
	}
	return st
}

// HealthStats exposes the aggregate counters for telemetry health
// sampling at epoch barriers.
func (n *ShardedNet) HealthStats() map[string]float64 {
	st := n.Stats()
	return map[string]float64{
		"msgs":           float64(st.Msgs),
		"bytes":          float64(st.Bytes),
		"intra_fraction": st.IntraFraction(),
		"cross_msgs":     float64(st.CrossMsgs),
		"cross_bytes":    float64(st.CrossBytes),
	}
}
