package transport

import (
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// benchNet mirrors internal/underlay's benchmark topology (3 transit /
// 40 stub ASes) so BenchmarkTransportSend is directly comparable with
// underlay.BenchmarkSend: the difference between the two is the
// transport layer's accounting overhead.
func benchNet() *underlay.Network {
	n := underlay.New()
	var transits []*underlay.AS
	for i := 0; i < 3; i++ {
		transits = append(transits, n.AddAS(underlay.TransitISP, 3))
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			n.ConnectPeering(transits[i], transits[j], 10)
		}
	}
	for i := 0; i < 40; i++ {
		s := n.AddAS(underlay.LocalISP, 2)
		n.ConnectTransit(s, transits[i%3], sim.Duration(10+i%7))
		n.AddHost(s, 3)
	}
	n.ComputeRoutes()
	return n
}

// BenchmarkTransportSend measures one instrumented message — counter,
// histogram, byte accounting — on top of the underlay charge that
// underlay.BenchmarkSend measures alone.
func BenchmarkTransportSend(b *testing.B) {
	n := benchNet()
	tr := Over(n)
	hosts := n.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i*11+3)%len(hosts)], 1000, "bench")
	}
}

// BenchmarkTransportSendWithFaults adds an active fault plan (loss +
// jitter), measuring the RNG-draw cost on the hot path.
func BenchmarkTransportSendWithFaults(b *testing.B) {
	n := benchNet()
	tr := Over(n)
	tr.Faults = Faults{LossRate: 0.01, JitterMax: 3, Rand: sim.NewSource(1).Stream("faults")}
	hosts := n.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i*11+3)%len(hosts)], 1000, "bench")
	}
}

// BenchmarkRoundTrip measures the request/reply fast path every RPC-style
// overlay now uses.
func BenchmarkRoundTrip(b *testing.B) {
	n := benchNet()
	tr := Over(n)
	hosts := n.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RoundTrip(hosts[i%len(hosts)], hosts[(i*7+1)%len(hosts)], 100, 100, "req", "resp")
	}
}
