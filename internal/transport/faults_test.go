package transport

import (
	"testing"

	"unap2p/internal/sim"
)

// Edge tests for fault injection and the accounting identities that the
// telemetry layer snapshots rely on.

func TestJitterMaxBoundsExtraLatency(t *testing.T) {
	net := testNet()
	hosts := net.Hosts()
	a, b := hosts[0], hosts[3]
	base := net.Latency(a, b)

	tr := Over(net)
	tr.Faults = Faults{
		ExtraDelay: 10,
		JitterMax:  7,
		Rand:       sim.NewSource(9).Stream("faults"),
	}
	for i := 0; i < 200; i++ {
		res := tr.Send(a, b, 10, "j")
		if !res.OK {
			t.Fatal("jitter-only faults must not drop")
		}
		extra := res.Latency - base
		if extra < 10 || extra >= 17 {
			t.Fatalf("send %d: extra delay %v outside [ExtraDelay, ExtraDelay+JitterMax)", i, extra)
		}
	}
}

func TestJitterMaxWithoutRandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("JitterMax without Rand must panic, not silently skip jitter")
		}
	}()
	tr := Over(testNet())
	tr.Faults = Faults{JitterMax: 5}
	hosts := tr.Underlay().Hosts()
	tr.Send(hosts[0], hosts[1], 10, "j")
}

func TestLossRateWithoutRandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LossRate without Rand must panic, not silently deliver")
		}
	}()
	tr := Over(testNet())
	tr.Faults = Faults{LossRate: 0.5}
	hosts := tr.Underlay().Hosts()
	tr.Send(hosts[0], hosts[1], 10, "l")
}

// TestRoundTripRetryAccounting pins the retry bookkeeping identities
// under heavy loss: every attempt (including retried legs) is a real,
// counted message; replies are only ever attempted after a delivered
// request; and reported successes equal delivered replies.
func TestRoundTripRetryAccounting(t *testing.T) {
	net := testNet()
	tr := Over(net)
	tr.Retries = 3
	tr.Faults = Faults{
		LossRate: 0.3,
		Rand:     sim.NewSource(7).Stream("faults"),
	}
	hosts := net.Hosts()
	successes := uint64(0)
	const trips = 300
	for i := 0; i < trips; i++ {
		if tr.RoundTrip(hosts[i%len(hosts)], hosts[(i*5+1)%len(hosts)], 80, 40, "req", "resp").OK {
			successes++
		}
	}
	req, resp := tr.StatsFor("req"), tr.StatsFor("resp")
	if req.Msgs < trips {
		t.Fatalf("req attempts %d < %d trips — retries not counted as real messages", req.Msgs, trips)
	}
	if req.Dropped == 0 || resp.Dropped == 0 {
		t.Fatal("30% loss dropped nothing; test is vacuous")
	}
	deliveredReq := req.Msgs - req.Dropped
	if resp.Msgs != deliveredReq {
		t.Fatalf("resp attempts %d, want one per delivered request %d", resp.Msgs, deliveredReq)
	}
	if got := resp.Msgs - resp.Dropped; got != successes {
		t.Fatalf("delivered replies %d, want %d reported successes", got, successes)
	}
	if successes == 0 || successes == trips {
		t.Fatalf("successes = %d of %d; loss+retry should yield a strict mix", successes, trips)
	}
}

// TestInterBytesAfterDrops pins the byte-accounting identity under loss:
// dropped messages charge nothing, so delivered bytes (and their
// intra/inter split) cover exactly the messages that got through.
func TestInterBytesAfterDrops(t *testing.T) {
	net := testNet()
	tr := Over(net)
	tr.Faults = Faults{
		LossRate: 0.4,
		Rand:     sim.NewSource(3).Stream("faults"),
	}
	hosts := net.Hosts()
	const size = 64
	for i := 0; i < 400; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i*3+2)%len(hosts)], size, "d")
	}
	st := tr.StatsFor("d")
	if st.Dropped == 0 {
		t.Fatal("40% loss dropped nothing; test is vacuous")
	}
	if want := (st.Msgs - st.Dropped) * size; st.Bytes != want {
		t.Fatalf("delivered bytes %d, want %d (drops must charge nothing)", st.Bytes, want)
	}
	if st.IntraBytes > st.Bytes {
		t.Fatalf("intra bytes %d exceed delivered bytes %d", st.IntraBytes, st.Bytes)
	}
	if got := st.InterBytes(); got != st.Bytes-st.IntraBytes {
		t.Fatalf("InterBytes = %d, want Bytes-IntraBytes = %d", got, st.Bytes-st.IntraBytes)
	}
	if st.IntraBytes%size != 0 {
		t.Fatalf("intra bytes %d is not a whole number of messages", st.IntraBytes)
	}
}

// TestEventLogKeepsLastN exercises the in-place event log: implicit
// overwrite of the oldest entries, loss accounting at drain time, and
// type-tag resolution.
func TestEventLogKeepsLastN(t *testing.T) {
	net := testNet()
	tr := Over(net)
	l := NewEventLog(4)
	tr.SetEventLog(l)
	hosts := net.Hosts()
	for i := 0; i < 10; i++ {
		tr.Send(hosts[0], hosts[1], uint64(100+i), "e")
	}
	if l.Written() != 10 {
		t.Fatalf("written = %d, want 10", l.Written())
	}
	var got []uint64
	lost := l.Drain(func(e *LogEntry) {
		got = append(got, e.Bytes)
		if tr.TypeByID(e.Type) != "e" {
			t.Fatalf("type tag %d resolves to %q, want \"e\"", e.Type, tr.TypeByID(e.Type))
		}
		if e.From != int32(hosts[0].ID) || e.To != int32(hosts[1].ID) {
			t.Fatalf("bad endpoints: %+v", e)
		}
	})
	if lost != 6 {
		t.Fatalf("lost = %d, want 6", lost)
	}
	if len(got) != 4 || got[0] != 106 || got[3] != 109 {
		t.Fatalf("retained = %v, want [106 107 108 109]", got)
	}
	// A drained log is empty and resumes cleanly.
	if lost := l.Drain(func(*LogEntry) { t.Fatal("drained twice") }); lost != 0 {
		t.Fatalf("second drain lost %d", lost)
	}
	tr.Send(hosts[0], hosts[1], 500, "e")
	var after []uint64
	if lost := l.Drain(func(e *LogEntry) { after = append(after, e.Bytes) }); lost != 0 {
		t.Fatal("no overwrite expected after resume")
	}
	if len(after) != 1 || after[0] != 500 {
		t.Fatalf("after resume = %v, want [500]", after)
	}
}

// TestEventLogSeesDrops mirrors TestTraceSeesDropsAndDeliveries for the
// log path: dropped messages appear with Dropped set and zero latency.
func TestEventLogSeesDrops(t *testing.T) {
	net := testNet()
	tr := Over(net)
	tr.Faults = Faults{LossRate: 0.5, Rand: sim.NewSource(5).Stream("faults")}
	l := NewEventLog(256)
	tr.SetEventLog(l)
	hosts := net.Hosts()
	for i := 0; i < 100; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i+1)%len(hosts)], 10, "d")
	}
	drops := uint64(0)
	l.Drain(func(e *LogEntry) {
		if e.Dropped {
			drops++
			if e.Latency != 0 {
				t.Fatalf("dropped event has latency %v", e.Latency)
			}
		} else if e.Latency <= 0 {
			t.Fatalf("delivered event has latency %v", e.Latency)
		}
	})
	if want := tr.StatsFor("d").Dropped; drops != want {
		t.Fatalf("log saw %d drops, stats say %d", drops, want)
	}
}
