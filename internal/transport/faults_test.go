package transport

import (
	"math"
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// Edge tests for fault injection and the accounting identities that the
// telemetry layer snapshots rely on.

func TestJitterMaxBoundsExtraLatency(t *testing.T) {
	net := testNet()
	hosts := net.Hosts()
	a, b := hosts[0], hosts[3]
	base := net.Latency(a, b)

	tr := Over(net)
	tr.Faults = Faults{
		ExtraDelay: 10,
		JitterMax:  7,
		Rand:       sim.NewSource(9).Stream("faults"),
	}
	for i := 0; i < 200; i++ {
		res := tr.Send(a, b, 10, "j")
		if !res.OK {
			t.Fatal("jitter-only faults must not drop")
		}
		extra := res.Latency - base
		if extra < 10 || extra >= 17 {
			t.Fatalf("send %d: extra delay %v outside [ExtraDelay, ExtraDelay+JitterMax)", i, extra)
		}
	}
}

func TestJitterMaxWithoutRandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("JitterMax without Rand must panic, not silently skip jitter")
		}
	}()
	tr := Over(testNet())
	tr.Faults = Faults{JitterMax: 5}
	hosts := tr.Underlay().Hosts()
	tr.Send(hosts[0], hosts[1], 10, "j")
}

func TestLossRateWithoutRandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LossRate without Rand must panic, not silently deliver")
		}
	}()
	tr := Over(testNet())
	tr.Faults = Faults{LossRate: 0.5}
	hosts := tr.Underlay().Hosts()
	tr.Send(hosts[0], hosts[1], 10, "l")
}

// TestRoundTripRetryAccounting pins the retry bookkeeping identities
// under heavy loss: every attempt (including retried legs) is a real,
// counted message; replies are only ever attempted after a delivered
// request; and reported successes equal delivered replies.
func TestRoundTripRetryAccounting(t *testing.T) {
	net := testNet()
	tr := Over(net)
	tr.Retry = RetryPolicy{Budget: 3}
	tr.Faults = Faults{
		LossRate: 0.3,
		Rand:     sim.NewSource(7).Stream("faults"),
	}
	hosts := net.Hosts()
	successes := uint64(0)
	const trips = 300
	for i := 0; i < trips; i++ {
		if tr.RoundTrip(hosts[i%len(hosts)], hosts[(i*5+1)%len(hosts)], 80, 40, "req", "resp").OK {
			successes++
		}
	}
	req, resp := tr.StatsFor("req"), tr.StatsFor("resp")
	if req.Msgs < trips {
		t.Fatalf("req attempts %d < %d trips — retries not counted as real messages", req.Msgs, trips)
	}
	if req.Dropped == 0 || resp.Dropped == 0 {
		t.Fatal("30% loss dropped nothing; test is vacuous")
	}
	deliveredReq := req.Msgs - req.Dropped
	if resp.Msgs != deliveredReq {
		t.Fatalf("resp attempts %d, want one per delivered request %d", resp.Msgs, deliveredReq)
	}
	if got := resp.Msgs - resp.Dropped; got != successes {
		t.Fatalf("delivered replies %d, want %d reported successes", got, successes)
	}
	if successes == 0 || successes == trips {
		t.Fatalf("successes = %d of %d; loss+retry should yield a strict mix", successes, trips)
	}
}

// TestRoundTripBackoffLatency pins the backoff accounting identity: the
// successful round trip's latency equals the raw leg latencies plus the
// sum of Backoff(1..n) for the n waits spent before the winning attempt,
// and the backoff draws never touch the transport's fault RNG stream.
func TestRoundTripBackoffLatency(t *testing.T) {
	net := testNet()
	hosts := net.Hosts()
	a, b := hosts[0], hosts[5]
	rtt := net.Latency(a, b) + net.Latency(b, a)

	// Deterministic loss pattern via the Drop hook: fail the first two
	// request legs, deliver everything after.
	tr := Over(net)
	sends := 0
	tr.Faults = Faults{Drop: func(from, to *underlay.Host) bool {
		sends++
		return sends <= 2
	}}
	var waits []int
	tr.Retry = RetryPolicy{
		Budget: 5,
		Backoff: func(attempt int) sim.Duration {
			waits = append(waits, attempt)
			return sim.Duration(100 * attempt)
		},
	}
	res := tr.RoundTrip(a, b, 80, 40, "req", "resp")
	if !res.OK {
		t.Fatal("round trip failed with budget 5 and 2 forced drops")
	}
	// Two failed attempts → Backoff(1) + Backoff(2) = 300 on top of the
	// real round-trip latency (tolerance for float summation order).
	if want := rtt + 300; math.Abs(float64(res.Latency-want)) > 1e-9 {
		t.Fatalf("latency %v, want rtt %v + 300 backoff", res.Latency, want)
	}
	if len(waits) != 2 || waits[0] != 1 || waits[1] != 2 {
		t.Fatalf("backoff attempts %v, want [1 2] (1-based, one per failed attempt)", waits)
	}
	// Accounting: 3 request attempts (2 dropped), 1 reply.
	req, resp := tr.StatsFor("req"), tr.StatsFor("resp")
	if req.Msgs != 3 || req.Dropped != 2 {
		t.Fatalf("req msgs/dropped = %d/%d, want 3/2", req.Msgs, req.Dropped)
	}
	if resp.Msgs != 1 || resp.Dropped != 0 {
		t.Fatalf("resp msgs/dropped = %d/%d, want 1/0", resp.Msgs, resp.Dropped)
	}
}

// TestRoundTripWithOverridesDefault pins the per-call policy seam: a
// caller-supplied policy is used instead of the transport default, and a
// zero-value policy makes exactly one attempt.
func TestRoundTripWithOverridesDefault(t *testing.T) {
	net := testNet()
	tr := Over(net)
	tr.Faults = Faults{LossRate: 1, Rand: sim.NewSource(11).Stream("faults")}
	tr.Retry = RetryPolicy{Budget: 9} // default would burn 10 attempts
	hosts := net.Hosts()
	if tr.RoundTripWith(RetryPolicy{}, hosts[0], hosts[3], 10, 10, "req", "resp").OK {
		t.Fatal("round trip succeeded under total loss")
	}
	if got := tr.StatsFor("req").Msgs; got != 1 {
		t.Fatalf("zero policy made %d attempts, want exactly 1", got)
	}
	if tr.RoundTripWith(RetryPolicy{Budget: 4}, hosts[0], hosts[3], 10, 10, "req", "resp").OK {
		t.Fatal("round trip succeeded under total loss")
	}
	if got := tr.StatsFor("req").Msgs; got != 1+5 {
		t.Fatalf("budget-4 policy: req attempts now %d, want 6 (1 + 1+4)", got)
	}
}

// TestFaultsDropHook pins the endpoint-aware drop seam chaos scenarios
// build on: the hook sees real endpoints, a true verdict discards the
// message before any underlay charge, and a nil hook changes nothing.
func TestFaultsDropHook(t *testing.T) {
	net := testNet()
	hosts := net.Hosts()
	victim := -1
	for _, h := range hosts {
		if h.AS.ID != hosts[0].AS.ID {
			victim = h.AS.ID
			break
		}
	}
	if victim < 0 {
		t.Skip("topology has a single AS")
	}
	tr := Over(net)
	tr.Faults = Faults{Drop: func(from, to *underlay.Host) bool {
		return from.AS.ID == victim || to.AS.ID == victim
	}}
	delivered, dropped := 0, 0
	for i := 0; i < len(hosts); i++ {
		res := tr.Send(hosts[0], hosts[i%len(hosts)], 50, "part")
		if res.OK {
			delivered++
		} else {
			dropped++
		}
		touches := hosts[0].AS.ID == victim || hosts[i%len(hosts)].AS.ID == victim
		if res.OK == touches {
			t.Fatalf("send %d: OK=%v but touches partitioned AS=%v", i, res.OK, touches)
		}
	}
	if delivered == 0 || dropped == 0 {
		t.Fatalf("vacuous partition: delivered=%d dropped=%d", delivered, dropped)
	}
	st := tr.StatsFor("part")
	if st.Dropped != uint64(dropped) {
		t.Fatalf("stats dropped %d, want %d", st.Dropped, dropped)
	}
	if st.Bytes != uint64(delivered)*50 {
		t.Fatalf("partitioned messages charged bytes: %d, want %d", st.Bytes, delivered*50)
	}
}

// TestInterBytesAfterDrops pins the byte-accounting identity under loss:
// dropped messages charge nothing, so delivered bytes (and their
// intra/inter split) cover exactly the messages that got through.
func TestInterBytesAfterDrops(t *testing.T) {
	net := testNet()
	tr := Over(net)
	tr.Faults = Faults{
		LossRate: 0.4,
		Rand:     sim.NewSource(3).Stream("faults"),
	}
	hosts := net.Hosts()
	const size = 64
	for i := 0; i < 400; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i*3+2)%len(hosts)], size, "d")
	}
	st := tr.StatsFor("d")
	if st.Dropped == 0 {
		t.Fatal("40% loss dropped nothing; test is vacuous")
	}
	if want := (st.Msgs - st.Dropped) * size; st.Bytes != want {
		t.Fatalf("delivered bytes %d, want %d (drops must charge nothing)", st.Bytes, want)
	}
	if st.IntraBytes > st.Bytes {
		t.Fatalf("intra bytes %d exceed delivered bytes %d", st.IntraBytes, st.Bytes)
	}
	if got := st.InterBytes(); got != st.Bytes-st.IntraBytes {
		t.Fatalf("InterBytes = %d, want Bytes-IntraBytes = %d", got, st.Bytes-st.IntraBytes)
	}
	if st.IntraBytes%size != 0 {
		t.Fatalf("intra bytes %d is not a whole number of messages", st.IntraBytes)
	}
}

// TestEventLogKeepsLastN exercises the in-place event log: implicit
// overwrite of the oldest entries, loss accounting at drain time, and
// type-tag resolution.
func TestEventLogKeepsLastN(t *testing.T) {
	net := testNet()
	tr := Over(net)
	l := NewEventLog(4)
	tr.SetEventLog(l)
	hosts := net.Hosts()
	for i := 0; i < 10; i++ {
		tr.Send(hosts[0], hosts[1], uint64(100+i), "e")
	}
	if l.Written() != 10 {
		t.Fatalf("written = %d, want 10", l.Written())
	}
	var got []uint64
	lost := l.Drain(func(e *LogEntry) {
		got = append(got, e.Bytes)
		if tr.TypeByID(e.Type) != "e" {
			t.Fatalf("type tag %d resolves to %q, want \"e\"", e.Type, tr.TypeByID(e.Type))
		}
		if e.From != int32(hosts[0].ID) || e.To != int32(hosts[1].ID) {
			t.Fatalf("bad endpoints: %+v", e)
		}
	})
	if lost != 6 {
		t.Fatalf("lost = %d, want 6", lost)
	}
	if len(got) != 4 || got[0] != 106 || got[3] != 109 {
		t.Fatalf("retained = %v, want [106 107 108 109]", got)
	}
	// A drained log is empty and resumes cleanly.
	if lost := l.Drain(func(*LogEntry) { t.Fatal("drained twice") }); lost != 0 {
		t.Fatalf("second drain lost %d", lost)
	}
	tr.Send(hosts[0], hosts[1], 500, "e")
	var after []uint64
	if lost := l.Drain(func(e *LogEntry) { after = append(after, e.Bytes) }); lost != 0 {
		t.Fatal("no overwrite expected after resume")
	}
	if len(after) != 1 || after[0] != 500 {
		t.Fatalf("after resume = %v, want [500]", after)
	}
}

// TestEventLogSeesDrops mirrors TestTraceSeesDropsAndDeliveries for the
// log path: dropped messages appear with Dropped set and zero latency.
func TestEventLogSeesDrops(t *testing.T) {
	net := testNet()
	tr := Over(net)
	tr.Faults = Faults{LossRate: 0.5, Rand: sim.NewSource(5).Stream("faults")}
	l := NewEventLog(256)
	tr.SetEventLog(l)
	hosts := net.Hosts()
	for i := 0; i < 100; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i+1)%len(hosts)], 10, "d")
	}
	drops := uint64(0)
	l.Drain(func(e *LogEntry) {
		if e.Dropped {
			drops++
			if e.Latency != 0 {
				t.Fatalf("dropped event has latency %v", e.Latency)
			}
		} else if e.Latency <= 0 {
			t.Fatalf("delivered event has latency %v", e.Latency)
		}
	})
	if want := tr.StatsFor("d").Dropped; drops != want {
		t.Fatalf("log saw %d drops, stats say %d", drops, want)
	}
}
