package transport

import (
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// buildShardedNet builds a 1-transit/3-stub underlay with p peers per
// stub AS, partitioned over K shards.
func buildShardedNet(t *testing.T, perAS, K int) *ShardedNet {
	t.Helper()
	u := underlay.New()
	transit := u.AddAS(underlay.TransitISP, 2)
	for i := 0; i < 3; i++ {
		stub := u.AddAS(underlay.LocalISP, 4)
		u.ConnectTransit(stub, transit, 12)
	}
	u.ComputeRoutes()
	pt := underlay.NewPeerTable(u, 3*perAS)
	for as := 1; as <= 3; as++ {
		for j := 0; j < perAS; j++ {
			pt.AddPeer(as, sim.Duration(3+j%5))
		}
	}
	part := underlay.PartitionASes(u.NumASes(),
		func(as int) int { return pt.PeersPerAS()[int32(as)] }, K)
	window := underlay.MinCrossShardLatency(pt, part)
	if window <= 0 {
		window = 1
	}
	sk := sim.NewSharded(K, window)
	return NewShardedNet(u, pt, part, sk, []string{"req", "rep"})
}

func TestShardedNetAccounting(t *testing.T) {
	n := buildShardedNet(t, 4, 2)
	pt := n.Peers()
	// One intra-AS send, one cross-AS (and with K=2, cross-shard) send.
	var delivered [2]int
	deliver := func(to underlay.PeerID) func() {
		s := n.ShardOf(to)
		return func() { delivered[s]++ }
	}
	lat1 := n.Send(0, 1, 0, 100, deliver(1)) // same AS (both in AS1)
	if pt.AS(0) != pt.AS(1) {
		t.Fatal("peers 0,1 should share an AS")
	}
	var far underlay.PeerID
	for p := 0; p < pt.Len(); p++ {
		if n.ShardOf(underlay.PeerID(p)) != n.ShardOf(0) {
			far = underlay.PeerID(p)
			break
		}
	}
	lat2 := n.Send(0, far, 1, 200, deliver(far))
	if lat1 != pt.Latency(0, 1) || lat2 != pt.Latency(0, far) {
		t.Fatal("Send latency mismatch")
	}
	n.Kernel().Drain()
	if delivered[0]+delivered[1] != 2 {
		t.Fatalf("delivered %v, want 2 total", delivered)
	}
	st := n.Stats()
	if st.Msgs != 2 || st.Bytes != 300 {
		t.Fatalf("totals %+v", st)
	}
	if st.PerClass[0].Msgs != 1 || st.PerClass[0].IntraASBytes != 100 ||
		st.PerClass[1].Msgs != 1 || st.PerClass[1].IntraASBytes != 0 {
		t.Fatalf("per-class %+v", st.PerClass)
	}
	if st.CrossMsgs != 1 || st.CrossBytes != 200 {
		t.Fatalf("cross counters %+v", st)
	}
	if f := st.IntraFraction(); f != 100.0/300.0 {
		t.Fatalf("IntraFraction = %v", f)
	}
	hs := n.HealthStats()
	if hs["msgs"] != 2 || hs["cross_bytes"] != 200 {
		t.Fatalf("health stats %v", hs)
	}
}

// TestShardedNetDeliveryTimesKIndependent pins that a fixed message
// workload delivers at identical simulated times for K=1 and K=2.
func TestShardedNetDeliveryTimesKIndependent(t *testing.T) {
	run := func(K int) map[underlay.PeerID][]sim.Time {
		n := buildShardedNet(t, 4, K)
		pt := n.Peers()
		// Deterministic per-destination logs: each written only by the
		// destination's owning shard.
		logs := make([]([]sim.Time), pt.Len())
		var ping func(from, to underlay.PeerID, hops int) func()
		ping = func(from, to underlay.PeerID, hops int) func() {
			return func() {
				s := n.Kernel().Shard(n.ShardOf(to))
				logs[to] = append(logs[to], s.Now())
				if hops > 0 {
					next := underlay.PeerID((int(to) + 5) % pt.Len())
					n.Send(to, next, 0, 64, ping(to, next, hops-1))
				}
			}
		}
		for p := 0; p < pt.Len(); p++ {
			from := underlay.PeerID(p)
			to := underlay.PeerID((p + 7) % pt.Len())
			n.Kernel().Shard(n.ShardOf(from)).At(sim.Duration(p)/8, func() {
				n.Send(from, to, 0, 64, ping(from, to, 3))
			})
		}
		n.Kernel().Drain()
		out := make(map[underlay.PeerID][]sim.Time)
		for p, l := range logs {
			if len(l) > 0 {
				out[underlay.PeerID(p)] = l
			}
		}
		return out
	}
	l1, l2 := run(1), run(2)
	if len(l1) == 0 {
		t.Fatal("no deliveries")
	}
	if len(l1) != len(l2) {
		t.Fatalf("peer coverage differs: %d vs %d", len(l1), len(l2))
	}
	for p, a := range l1 {
		b := l2[p]
		if len(a) != len(b) {
			t.Fatalf("peer %d: %d vs %d deliveries", p, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("peer %d delivery %d: %v vs %v", p, i, a[i], b[i])
			}
		}
	}
}
