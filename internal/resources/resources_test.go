package resources

import (
	"testing"
	"testing/quick"

	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/underlay"
)

func TestScoreOrdering(t *testing.T) {
	weak := Resources{UpKbps: 128, DownKbps: 1024, CPU: 0.5, DiskGB: 5, MemMB: 256, MeanOnlineH: 0.5}
	strong := Resources{UpKbps: 10000, DownKbps: 50000, CPU: 2, DiskGB: 200, MemMB: 4096, MeanOnlineH: 24}
	if weak.Score() >= strong.Score() {
		t.Fatalf("weak %v ≥ strong %v", weak.Score(), strong.Score())
	}
}

func TestScoreZeroDimension(t *testing.T) {
	r := Resources{UpKbps: 10000, CPU: 1, DiskGB: 10, MemMB: 512, MeanOnlineH: 0}
	if r.Score() != 0 {
		t.Fatal("zero uptime must zero the score (geometric mean)")
	}
}

func TestScorePunishesImbalance(t *testing.T) {
	// Fast-but-flaky vs balanced with the same "total": geometric mean
	// prefers balance.
	flaky := Resources{UpKbps: 100000, DownKbps: 1, CPU: 1, DiskGB: 10, MemMB: 512, MeanOnlineH: 0.01}
	balanced := Resources{UpKbps: 1000, DownKbps: 4000, CPU: 1, DiskGB: 10, MemMB: 512, MeanOnlineH: 2}
	if flaky.Score() >= balanced.Score() {
		t.Fatalf("flaky %v ≥ balanced %v", flaky.Score(), balanced.Score())
	}
}

func TestGenerateDistribution(t *testing.T) {
	r := sim.NewSource(1).Stream("res")
	var sumUp float64
	maxUp := 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		res := Generate(r)
		if res.UpKbps <= 0 || res.DownKbps < res.UpKbps || res.MeanOnlineH <= 0 {
			t.Fatalf("implausible resources %+v", res)
		}
		sumUp += res.UpKbps
		if res.UpKbps > maxUp {
			maxUp = res.UpKbps
		}
	}
	mean := sumUp / n
	// Heavy tail: max should dwarf the mean.
	if maxUp < 5*mean {
		t.Fatalf("no heavy tail: max %v vs mean %v", maxUp, mean)
	}
}

func buildNet() *underlay.Network {
	net := topology.Star(5, topology.DefaultConfig())
	topology.PlaceHosts(net, 10, false, 1, 2, sim.NewSource(2).Stream("res-place"))
	return net
}

func TestGenerateAllAndTable(t *testing.T) {
	net := buildNet()
	tab := GenerateAll(net, sim.NewSource(3).Stream("res-gen"))
	for _, h := range net.Hosts() {
		if tab.Get(h.ID).UpKbps <= 0 {
			t.Fatalf("host %d missing resources", h.ID)
		}
	}
	if tab.Get(9999).UpKbps != 0 {
		t.Fatal("unknown host should have zero resources")
	}
}

func TestElectSuperPeersFraction(t *testing.T) {
	net := buildNet()
	tab := GenerateAll(net, sim.NewSource(4).Stream("res-gen2"))
	sp := ElectSuperPeers(net, tab, 0.1, 0)
	if len(sp) != 4 { // 40 hosts × 10%
		t.Fatalf("elected %d, want 4", len(sp))
	}
	// Elected peers must dominate the score distribution: every elected
	// score ≥ every non-elected score.
	elected := map[underlay.HostID]bool{}
	minElected := 1e18
	for _, id := range sp {
		elected[id] = true
		if s := tab.Get(id).Score(); s < minElected {
			minElected = s
		}
	}
	for _, h := range net.Hosts() {
		if !elected[h.ID] && tab.Get(h.ID).Score() > minElected {
			t.Fatalf("non-elected host %d outscores an elected one", h.ID)
		}
	}
}

func TestElectSuperPeersMinPerAS(t *testing.T) {
	net := buildNet()
	tab := GenerateAll(net, sim.NewSource(5).Stream("res-gen3"))
	sp := ElectSuperPeers(net, tab, 0.05, 1)
	perAS := map[int]int{}
	for _, id := range sp {
		perAS[net.Host(id).AS.ID]++
	}
	for _, as := range net.ASes() {
		if as.Kind == underlay.LocalISP && perAS[as.ID] < 1 {
			t.Fatalf("AS%d has no super-peer despite minPerAS=1", as.ID)
		}
	}
}

func TestElectSuperPeersAtLeastOne(t *testing.T) {
	net := buildNet()
	tab := GenerateAll(net, sim.NewSource(6).Stream("res-gen4"))
	sp := ElectSuperPeers(net, tab, 0.000001, 0)
	if len(sp) != 1 {
		t.Fatalf("tiny fraction elected %d, want 1", len(sp))
	}
}

// Property: scaling every dimension up never lowers the score.
func TestQuickScoreMonotone(t *testing.T) {
	f := func(up, on uint16, scale uint8) bool {
		base := Resources{
			UpKbps: float64(up) + 1, DownKbps: 1, CPU: 1, DiskGB: 1, MemMB: 1,
			MeanOnlineH: float64(on)/100 + 0.01,
		}
		k := 1 + float64(scale%10)
		bigger := Resources{
			UpKbps: base.UpKbps * k, DownKbps: base.DownKbps * k, CPU: base.CPU * k,
			DiskGB: base.DiskGB * k, MemMB: base.MemMB * k, MeanOnlineH: base.MeanOnlineH * k,
		}
		return bigger.Score() >= base.Score()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
