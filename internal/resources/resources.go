// Package resources models peer capabilities (§2.3): bandwidth, processing
// power, storage, memory, and expected online time. A resource-aware P2P
// system arranges its overlay "in such a way that different roles in the
// network are taken by appropriate nodes" — concretely, super-peer
// election picks the most capable, most stable nodes.
package resources

import (
	"math"
	"math/rand"
	"sort"

	"unap2p/internal/underlay"
)

// Resources is a peer's capability vector.
type Resources struct {
	// UpKbps and DownKbps are the access bandwidths.
	UpKbps, DownKbps float64
	// CPU is a normalized processing-power score (1.0 ≈ median desktop).
	CPU float64
	// DiskGB is shareable storage.
	DiskGB float64
	// MemMB is available memory.
	MemMB float64
	// MeanOnlineH is the peer's expected session length in hours; long
	// uptime is the strongest super-peer signal.
	MeanOnlineH float64
}

// Score condenses the vector into a super-peer suitability score: a
// weighted geometric mean, so a deficiency in any dimension (e.g. a fast
// but flaky node) drags the score down.
func (r Resources) Score() float64 {
	terms := []struct {
		v, norm, w float64
	}{
		{r.UpKbps, 1000, 0.35},
		{r.CPU, 1, 0.15},
		{r.MemMB, 512, 0.10},
		{r.DiskGB, 10, 0.05},
		{r.MeanOnlineH, 2, 0.35},
	}
	score := 1.0
	for _, t := range terms {
		x := t.v / t.norm
		if x <= 0 {
			return 0
		}
		score *= math.Pow(x, t.w)
	}
	return score
}

// Generate draws a realistic heavy-tailed resource vector: most peers are
// modest DSL nodes, a few are university/server-class machines.
func Generate(r *rand.Rand) Resources {
	// Log-normal upstream around 700 kbps with heavy tail.
	up := math.Exp(r.NormFloat64()*1.1 + math.Log(700))
	return Resources{
		UpKbps:      up,
		DownKbps:    up * (4 + 4*r.Float64()),
		CPU:         math.Exp(r.NormFloat64() * 0.5),
		DiskGB:      math.Exp(r.NormFloat64()*1.0 + math.Log(20)),
		MemMB:       256 * math.Exp(r.NormFloat64()*0.8),
		MeanOnlineH: math.Exp(r.NormFloat64()*1.0 + math.Log(1.5)),
	}
}

// Table stores resources per host.
type Table struct {
	byHost map[underlay.HostID]Resources
}

// NewTable returns an empty resource table.
func NewTable() *Table { return &Table{byHost: make(map[underlay.HostID]Resources)} }

// Set stores a host's resources.
func (t *Table) Set(id underlay.HostID, r Resources) { t.byHost[id] = r }

// Get returns a host's resources (zero value if unknown).
func (t *Table) Get(id underlay.HostID) Resources { return t.byHost[id] }

// GenerateAll assigns generated resources to every host in the network.
func GenerateAll(net *underlay.Network, r *rand.Rand) *Table {
	t := NewTable()
	for _, h := range net.Hosts() {
		t.Set(h.ID, Generate(r))
	}
	return t
}

// ElectSuperPeers returns the top fraction of hosts by score, with at
// least minPerAS chosen from every AS that has hosts — the "more accurate
// super-peer selection process" of §2.3 combined with locality so each
// ISP's leaf peers find a nearby ultrapeer.
func ElectSuperPeers(net *underlay.Network, t *Table, fraction float64, minPerAS int) []underlay.HostID {
	type scored struct {
		id    underlay.HostID
		as    int
		score float64
	}
	all := make([]scored, 0, net.NumHosts())
	for _, h := range net.Hosts() {
		all = append(all, scored{id: h.ID, as: h.AS.ID, score: t.Get(h.ID).Score()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	target := int(math.Ceil(fraction * float64(len(all))))
	if target < 1 && len(all) > 0 {
		target = 1
	}
	chosen := make(map[underlay.HostID]bool)
	perAS := make(map[int]int)
	var out []underlay.HostID
	add := func(s scored) {
		if !chosen[s.id] {
			chosen[s.id] = true
			perAS[s.as]++
			out = append(out, s.id)
		}
	}
	// Global top slots first.
	for _, s := range all {
		if len(out) >= target {
			break
		}
		add(s)
	}
	// Locality guarantee: best nodes of under-served ASes.
	if minPerAS > 0 {
		for _, s := range all {
			if perAS[s.as] < minPerAS {
				add(s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
