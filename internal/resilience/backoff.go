// Package resilience is the self-healing layer between the overlays and
// the transport. The paper's Section 5 challenges single out dynamics —
// churn, mobility, underlay failures — as the force that invalidates
// collected underlay information; this package supplies the machinery an
// overlay needs to survive them:
//
//   - Backoff: jittered exponential retry spacing driven by the seeded
//     RNG, pluggable into transport.RetryPolicy,
//   - Detector: a sim-time ping/timeout failure detector that watches
//     peers over the shared transport and drives the
//     Suspect/Evict/Replace contract,
//   - Healer: the callback contract every overlay implements to repair
//     its structures when a peer is declared dead (bucket eviction,
//     ultrapeer re-election, successor repair, choke-set refill, parent
//     re-attach).
//
// Everything here is deterministic: ping traffic rides the instrumented
// transport (counted, charged, traceable), timers live on the sim
// kernel, and every random draw comes from a caller-supplied seeded
// stream — so runs stay bit-identical per seed with resilience enabled.
package resilience

import (
	"math/rand"

	"unap2p/internal/sim"
	"unap2p/internal/transport"
)

// Backoff computes jittered exponential retry delays. The zero value is
// unusable; construct with explicit Base/Max (Factor defaults to 2 at
// use). Delay(n) for attempt n (1-based) is Base·Factor^(n-1) capped at
// Max, then jittered by ±Jitter fraction using Rand.
type Backoff struct {
	// Base is the nominal delay before the first retry.
	Base sim.Duration
	// Max caps the nominal delay (pre-jitter). Zero means no cap.
	Max sim.Duration
	// Factor is the per-attempt growth multiplier; values < 1 (including
	// the zero value) are treated as 2.
	Factor float64
	// Jitter is the symmetric jitter fraction in [0,1): the delay is
	// scaled by a uniform factor in [1-Jitter, 1+Jitter). Requires Rand
	// when positive.
	Jitter float64
	// Rand supplies jitter draws; use a sim.Source stream so retry
	// timing is reproducible per seed.
	Rand *rand.Rand
}

func (b Backoff) factor() float64 {
	if b.Factor < 1 {
		return 2
	}
	return b.Factor
}

// Nominal returns the un-jittered delay for attempt n (1-based):
// Base·Factor^(n-1), capped at Max. It is monotone non-decreasing in n.
func (b Backoff) Nominal(attempt int) sim.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Base)
	f := b.factor()
	for i := 1; i < attempt; i++ {
		d *= f
		if b.Max > 0 && d >= float64(b.Max) {
			return b.Max
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		return b.Max
	}
	return sim.Duration(d)
}

// Bounds returns the interval [lo, hi] that Delay(attempt) is guaranteed
// to fall in — the contract the property tests pin.
func (b Backoff) Bounds(attempt int) (lo, hi sim.Duration) {
	n := float64(b.Nominal(attempt))
	return sim.Duration(n * (1 - b.Jitter)), sim.Duration(n * (1 + b.Jitter))
}

// Delay returns the jittered delay for attempt n (1-based). With Jitter
// zero no RNG is drawn and Delay equals Nominal exactly.
func (b Backoff) Delay(attempt int) sim.Duration {
	d := float64(b.Nominal(attempt))
	if b.Jitter > 0 {
		if b.Rand == nil {
			panic("resilience: Backoff.Jitter requires Rand")
		}
		d *= 1 + b.Jitter*(2*b.Rand.Float64()-1)
	}
	return sim.Duration(d)
}

// Policy adapts the backoff into a transport retry policy with the given
// extra-attempt budget — the caller-supplied budget/backoff pair that
// transport.RoundTripWith consumes.
func (b Backoff) Policy(budget int) transport.RetryPolicy {
	return transport.RetryPolicy{Budget: budget, Backoff: b.Delay}
}
