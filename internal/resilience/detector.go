package resilience

import (
	"fmt"
	"sort"

	"unap2p/internal/metrics"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Healer is the Suspect/Evict/Replace contract an overlay implements to
// stay consistent when the failure detector declares a peer dead. Every
// overlay in this repo provides one (see each package's heal.go):
//
//	Suspect(id) — advisory: the peer missed enough pings to be doubted.
//	  The overlay may deprioritize it (skip it as a lookup candidate,
//	  prefer other parents) but must not drop state yet: suspicion can
//	  be recanted.
//	Evict(id) — terminal: remove the peer from every overlay structure
//	  AND replace it (the "Replace" half of the contract) — promote a
//	  replacement-cache entry, re-elect an ultrapeer, repair the
//	  successor list, refill the choke set, re-attach children —
//	  selecting replacements through core.Selector so the repaired
//	  overlay stays underlay-aware.
type Healer interface {
	Suspect(id underlay.HostID)
	Evict(id underlay.HostID)
}

// Config tunes a Detector.
type Config struct {
	// PingInterval is the healthy-peer probe period.
	PingInterval sim.Duration
	// PingBytes sizes each fd_ping / fd_ack message.
	PingBytes uint64
	// SuspectAfter is the consecutive-failure streak that triggers
	// Suspect (must be ≥ 1).
	SuspectAfter int
	// EvictAfter is the consecutive-failure streak that triggers Evict
	// (must be ≥ SuspectAfter).
	EvictAfter int
	// Backoff spaces the probes after a failure: the n-th consecutive
	// failure delays the next ping by Backoff.Delay(n) instead of
	// PingInterval, so a struggling peer is probed on a widening,
	// jittered schedule rather than hammered. A zero-Base backoff keeps
	// the flat PingInterval.
	Backoff Backoff
}

// DefaultConfig probes every 500 ms of sim time, suspects after 2 missed
// acks, evicts after 4, and backs off exponentially (250 ms → 2 s, 10%
// jitter — set Backoff.Rand before use or zero the jitter).
func DefaultConfig() Config {
	return Config{
		PingInterval: 500,
		PingBytes:    32,
		SuspectAfter: 2,
		EvictAfter:   4,
		Backoff:      Backoff{Base: 250, Max: 2000, Factor: 2, Jitter: 0.1},
	}
}

type watchKey struct {
	vantage, target underlay.HostID
}

type watch struct {
	vantage, target *underlay.Host
	fails           int
	timer           sim.Timer
	stopped         bool
}

// Detector is a sim-time ping/timeout failure detector. Each Watch
// probes a target from a vantage host with real fd_ping/fd_ack round
// trips over the shared transport (counted, charged, fault-injectable);
// deadline events live on the sim kernel as daemon timers so pending
// pings never keep an unbounded Run alive. Consecutive missed acks
// escalate Suspect → Evict through the registered callbacks; a late ack
// recants suspicion (Recover).
//
// A Detector is driven by the single kernel goroutine and is not
// goroutine-safe, like everything else in the simulation.
type Detector struct {
	T   transport.Messenger
	K   *sim.Kernel
	Cfg Config

	// OnSuspect, OnEvict and OnRecover observe verdicts; Heal chains an
	// overlay's Healer onto the first two.
	OnSuspect func(id underlay.HostID)
	OnEvict   func(id underlay.HostID)
	OnRecover func(id underlay.HostID)

	watches   map[watchKey]*watch
	suspected map[underlay.HostID]bool
	evicted   map[underlay.HostID]bool
	msgs      *metrics.CounterSet
}

// New builds a detector over tr, which must carry a kernel — deadlines
// are sim-time events.
func New(tr transport.Messenger, cfg Config) *Detector {
	if tr.Kernel() == nil {
		panic("resilience: Detector requires a transport with a kernel")
	}
	if cfg.PingInterval <= 0 {
		panic("resilience: Config.PingInterval must be positive")
	}
	if cfg.SuspectAfter < 1 || cfg.EvictAfter < cfg.SuspectAfter {
		panic(fmt.Sprintf("resilience: need 1 ≤ SuspectAfter (%d) ≤ EvictAfter (%d)",
			cfg.SuspectAfter, cfg.EvictAfter))
	}
	return &Detector{
		T:         tr,
		K:         tr.Kernel(),
		Cfg:       cfg,
		watches:   make(map[watchKey]*watch),
		suspected: make(map[underlay.HostID]bool),
		evicted:   make(map[underlay.HostID]bool),
		msgs:      metrics.NewCounterSet(),
	}
}

// Heal chains a Healer's Suspect/Evict after any already-registered
// callbacks, so telemetry observers and the overlay repair path can
// share one detector.
func (d *Detector) Heal(h Healer) {
	prevS, prevE := d.OnSuspect, d.OnEvict
	d.OnSuspect = func(id underlay.HostID) {
		if prevS != nil {
			prevS(id)
		}
		h.Suspect(id)
	}
	d.OnEvict = func(id underlay.HostID) {
		if prevE != nil {
			prevE(id)
		}
		h.Evict(id)
	}
}

// Counters exposes the detector's verdict counters — register them with
// a telemetry registry under the name "resilience" so run files carry
// resilience:ping, resilience:suspect, resilience:evict, … series.
func (d *Detector) Counters() *metrics.CounterSet { return d.msgs }

// Watch starts probing target from vantage. Watching an already-watched
// pair or an evicted target is a no-op.
func (d *Detector) Watch(vantage, target *underlay.Host) {
	key := watchKey{vantage.ID, target.ID}
	if _, dup := d.watches[key]; dup || d.evicted[target.ID] || vantage.ID == target.ID {
		return
	}
	w := &watch{vantage: vantage, target: target}
	d.watches[key] = w
	d.schedule(w, d.Cfg.PingInterval)
}

// Unwatch stops every watch probing target (e.g. after the overlay
// removed the peer for its own reasons).
func (d *Detector) Unwatch(target underlay.HostID) {
	for key, w := range d.watches {
		if key.target == target {
			w.stopped = true
			w.timer.Cancel()
			delete(d.watches, key)
		}
	}
}

// Watching returns the number of live watches.
func (d *Detector) Watching() int { return len(d.watches) }

// Suspected returns the currently suspected (not yet evicted) peers,
// sorted.
func (d *Detector) Suspected() []underlay.HostID { return sortedSet(d.suspected) }

// Evicted returns every peer the detector has declared dead, sorted.
func (d *Detector) Evicted() []underlay.HostID { return sortedSet(d.evicted) }

func sortedSet(m map[underlay.HostID]bool) []underlay.HostID {
	out := make([]underlay.HostID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *Detector) schedule(w *watch, delay sim.Duration) {
	w.timer = d.K.AtDaemon(d.K.Now()+delay, func() { d.tick(w) })
}

// tick runs one probe round for a watch.
func (d *Detector) tick(w *watch) {
	if w.stopped {
		return
	}
	if !w.vantage.Up {
		// The vantage itself is offline: no verdict either way; resume
		// probing when (if) it returns.
		d.schedule(w, d.Cfg.PingInterval)
		return
	}
	d.msgs.Get("ping").Inc()
	res := d.T.RoundTripWith(transport.RetryPolicy{}, w.vantage, w.target,
		d.Cfg.PingBytes, d.Cfg.PingBytes, "fd_ping", "fd_ack")
	// A crashed peer never acks: the request may reach the host, but no
	// fd_ack comes back. The underlay charges the request leg either
	// way — failure detection traffic is real traffic.
	if res.OK && w.target.Up {
		d.ack(w)
		d.schedule(w, d.Cfg.PingInterval)
		return
	}
	d.msgs.Get("ping_fail").Inc()
	w.fails++
	if w.fails == d.Cfg.SuspectAfter {
		d.msgs.Get("suspect").Inc()
		d.suspected[w.target.ID] = true
		if d.OnSuspect != nil {
			d.OnSuspect(w.target.ID)
		}
	}
	if w.fails >= d.Cfg.EvictAfter {
		d.evict(w)
		return
	}
	delay := d.Cfg.PingInterval
	if d.Cfg.Backoff.Base > 0 {
		delay = d.Cfg.Backoff.Delay(w.fails)
	}
	d.schedule(w, delay)
}

// ack handles a delivered fd_ack: a suspected peer is recanted.
func (d *Detector) ack(w *watch) {
	if w.fails == 0 {
		return
	}
	w.fails = 0
	if d.suspected[w.target.ID] {
		delete(d.suspected, w.target.ID)
		d.msgs.Get("recover").Inc()
		if d.OnRecover != nil {
			d.OnRecover(w.target.ID)
		}
	}
}

// evict declares w's target dead: every watch on it stops, and OnEvict
// (the overlay's repair hook) fires exactly once per target.
func (d *Detector) evict(w *watch) {
	id := w.target.ID
	d.Unwatch(id)
	if d.evicted[id] {
		return
	}
	d.evicted[id] = true
	delete(d.suspected, id)
	d.msgs.Get("evict").Inc()
	if d.OnEvict != nil {
		d.OnEvict(id)
	}
}

// HealthStats implements the telemetry HealthReporter hook: the
// detector's live state as probe-visible gauges, so `unapctl series`
// renders suspicion/eviction waves and time-to-recover curves.
//
//   - watched: live watch count
//   - suspected / evicted: current verdict set sizes
//   - pings / ping_fails / recoveries: cumulative probe outcomes
func (d *Detector) HealthStats() map[string]float64 {
	return map[string]float64{
		"watched":    float64(len(d.watches)),
		"suspected":  float64(len(d.suspected)),
		"evicted":    float64(len(d.evicted)),
		"pings":      float64(d.msgs.Value("ping")),
		"ping_fails": float64(d.msgs.Value("ping_fail")),
		"recoveries": float64(d.msgs.Value("recover")),
	}
}
