package resilience

import (
	"math"
	"testing"
	"testing/quick"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// Property tests for the failure detector and its backoff, run through
// testing/quick over randomized configurations. Each table entry is one
// property; quick drives it with arbitrary inputs that the property
// normalizes into a valid configuration, so shrinking stays meaningful.

// normBackoff maps arbitrary ints/floats into a valid Backoff.
func normBackoff(seed int64, base, max uint16, factor, jitter float64) Backoff {
	b := Backoff{
		Base:   sim.Duration(1 + base%5000),
		Factor: 1 + math.Abs(math.Mod(factor, 3)),     // [1,4)
		Jitter: math.Abs(math.Mod(jitter, 0.95)),      // [0,0.95)
		Rand:   sim.NewSource(seed).Stream("backoff"), // jitter draws
	}
	if max%3 != 0 { // a third of configs run uncapped
		b.Max = b.Base + sim.Duration(max%10000)
	}
	return b
}

func TestBackoffProperties(t *testing.T) {
	cases := []struct {
		name string
		prop interface{}
	}{
		{
			// Nominal delays never shrink as the failure streak grows, and
			// never exceed the cap.
			name: "nominal monotone and capped",
			prop: func(seed int64, base, max uint16, factor, jitter float64) bool {
				b := normBackoff(seed, base, max, factor, jitter)
				prev := sim.Duration(0)
				for n := 1; n <= 24; n++ {
					d := b.Nominal(n)
					if d < prev {
						return false
					}
					if b.Max > 0 && d > b.Max {
						return false
					}
					prev = d
				}
				return true
			},
		},
		{
			// Every jittered draw falls inside the advertised Bounds, and
			// the bounds themselves are ordered around the nominal value.
			name: "jittered delay within bounds",
			prop: func(seed int64, base, max uint16, factor, jitter float64) bool {
				b := normBackoff(seed, base, max, factor, jitter)
				for n := 1; n <= 16; n++ {
					lo, hi := b.Bounds(n)
					nom := b.Nominal(n)
					if lo > nom || hi < nom {
						return false
					}
					for draw := 0; draw < 8; draw++ {
						if d := b.Delay(n); d < lo || d > hi {
							return false
						}
					}
				}
				return true
			},
		},
		{
			// A jitter-free backoff is exactly its nominal schedule — no
			// hidden RNG draws.
			name: "zero jitter is deterministic",
			prop: func(base, max uint16, factor float64) bool {
				b := normBackoff(1, base, max, factor, 0)
				b.Jitter = 0
				b.Rand = nil // Delay must not touch it
				for n := 1; n <= 16; n++ {
					if b.Delay(n) != b.Nominal(n) {
						return false
					}
				}
				return true
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if err := quick.Check(tc.prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// detCase is one randomized detector scenario: a small world, a single
// watch, a normalized config.
func detScenario(seed int64, suspectAfter, evictAfter uint8, partition bool) (*Detector, *sim.Kernel, *underlay.Host) {
	_, hosts, src, k, tr := testWorld(seed)
	if partition {
		// Total partition: no fd traffic crosses, in either direction.
		tr.Faults.Drop = func(from, to *underlay.Host) bool { return true }
	}
	cfg := DefaultConfig()
	cfg.SuspectAfter = 1 + int(suspectAfter%4)
	cfg.EvictAfter = cfg.SuspectAfter + int(evictAfter%4)
	cfg.Backoff.Rand = src.Stream("det-backoff")
	d := New(tr, cfg)
	target := hosts[1+int(((seed%10)+10)%10)]
	d.Watch(hosts[0], target)
	return d, k, target
}

func TestDetectorProperties(t *testing.T) {
	cases := []struct {
		name string
		prop interface{}
	}{
		{
			// With zero loss and every host up, the detector never issues
			// a verdict no matter how trigger-happy the config is.
			name: "no false suspicion at zero loss",
			prop: func(seed int64, suspectAfter, evictAfter uint8) bool {
				d, k, _ := detScenario(seed, suspectAfter, evictAfter, false)
				k.Run(60 * sim.Second)
				return len(d.Suspected()) == 0 && len(d.Evicted()) == 0 &&
					d.Counters().Value("ping_fail") == 0 &&
					d.Counters().Value("ping") > 0
			},
		},
		{
			// Under a total partition the watched peer is eventually
			// suspected and then evicted, for every config.
			name: "eventual suspicion and eviction under total partition",
			prop: func(seed int64, suspectAfter, evictAfter uint8) bool {
				d, k, target := detScenario(seed, suspectAfter, evictAfter, true)
				k.Run(10 * 60 * sim.Second)
				ev := d.Evicted()
				return d.Counters().Value("suspect") == 1 &&
					len(ev) == 1 && ev[0] == target.ID &&
					d.Watching() == 0
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if err := quick.Check(tc.prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
