package resilience

import (
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

func testWorld(seed int64) (*underlay.Network, []*underlay.Host, *sim.Source, *sim.Kernel, *transport.Transport) {
	src := sim.NewSource(seed)
	net := topology.TransitStub(topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 6,
	})
	hosts := topology.PlaceHosts(net, 4, false, 1, 5, src.Stream("place"))
	k := sim.NewKernel()
	return net, hosts, src, k, transport.New(net, k)
}

// recorder captures verdicts in arrival order.
type recorder struct {
	suspects, evicts, recovers []underlay.HostID
}

func (r *recorder) wire(d *Detector) {
	d.OnSuspect = func(id underlay.HostID) { r.suspects = append(r.suspects, id) }
	d.OnEvict = func(id underlay.HostID) { r.evicts = append(r.evicts, id) }
	d.OnRecover = func(id underlay.HostID) { r.recovers = append(r.recovers, id) }
}

// TestDetectorEvictsCrashedPeer walks the full escalation: a crashed
// peer misses SuspectAfter pings → Suspect, then EvictAfter → Evict
// exactly once, the watch dies with the verdict, and the counters and
// ping traffic account for every step.
func TestDetectorEvictsCrashedPeer(t *testing.T) {
	_, hosts, _, k, tr := testWorld(1)
	cfg := DefaultConfig()
	cfg.Backoff.Jitter = 0 // flat, predictable schedule for this test
	d := New(tr, cfg)
	var rec recorder
	rec.wire(d)

	vantage, target := hosts[0], hosts[5]
	d.Watch(vantage, target)
	target.Up = false

	k.Run(30 * sim.Second)
	if len(rec.suspects) != 1 || rec.suspects[0] != target.ID {
		t.Fatalf("suspects = %v, want exactly [%d]", rec.suspects, target.ID)
	}
	if len(rec.evicts) != 1 || rec.evicts[0] != target.ID {
		t.Fatalf("evicts = %v, want exactly [%d]", rec.evicts, target.ID)
	}
	if d.Watching() != 0 {
		t.Fatalf("watch survived eviction: %d live", d.Watching())
	}
	if got := d.Evicted(); len(got) != 1 || got[0] != target.ID {
		t.Fatalf("Evicted() = %v", got)
	}
	if d.Counters().Value("ping") != uint64(cfg.EvictAfter) {
		t.Fatalf("pings = %d, want %d (detector must stop at eviction)",
			d.Counters().Value("ping"), cfg.EvictAfter)
	}
	// Failure-detection traffic is real: the request legs were charged.
	if st := tr.StatsFor("fd_ping"); st.Msgs != uint64(cfg.EvictAfter) {
		t.Fatalf("fd_ping msgs = %d, want %d", st.Msgs, cfg.EvictAfter)
	}
}

// TestDetectorRecantsSuspicion crashes a peer long enough to be
// suspected but not evicted, then revives it: the detector must recover
// the peer and never evict.
func TestDetectorRecantsSuspicion(t *testing.T) {
	_, hosts, _, k, tr := testWorld(2)
	cfg := DefaultConfig()
	cfg.Backoff.Jitter = 0
	d := New(tr, cfg)
	var rec recorder
	rec.wire(d)

	vantage, target := hosts[0], hosts[7]
	d.Watch(vantage, target)
	// Crash at t=0; the peer misses pings at 500 and 500+250 (backoff),
	// is suspected at the second miss, and revives before the third.
	target.Up = false
	k.Schedule(900, func() { target.Up = true })

	k.Run(30 * sim.Second)
	if len(rec.suspects) != 1 {
		t.Fatalf("suspects = %v, want one suspicion", rec.suspects)
	}
	if len(rec.evicts) != 0 {
		t.Fatalf("revived peer evicted: %v", rec.evicts)
	}
	if len(rec.recovers) != 1 || rec.recovers[0] != target.ID {
		t.Fatalf("recovers = %v, want [%d]", rec.recovers, target.ID)
	}
	if len(d.Suspected()) != 0 {
		t.Fatalf("suspicion not cleared: %v", d.Suspected())
	}
	if d.Watching() != 1 {
		t.Fatalf("watch lost after recovery: %d live", d.Watching())
	}
	if d.Counters().Value("recover") != 1 {
		t.Fatalf("recover counter = %d, want 1", d.Counters().Value("recover"))
	}
}

// TestDetectorOfflineVantage pins the no-verdict rule: a watch whose
// vantage is down neither pings nor accumulates failures.
func TestDetectorOfflineVantage(t *testing.T) {
	_, hosts, _, k, tr := testWorld(3)
	d := New(tr, DefaultConfig())
	var rec recorder
	rec.wire(d)
	vantage, target := hosts[1], hosts[9]
	vantage.Up = false
	d.Watch(vantage, target)
	k.Run(20 * sim.Second)
	if got := d.Counters().Value("ping"); got != 0 {
		t.Fatalf("offline vantage sent %d pings", got)
	}
	if len(rec.suspects)+len(rec.evicts) != 0 {
		t.Fatalf("offline vantage produced verdicts: s=%v e=%v", rec.suspects, rec.evicts)
	}
}

// TestDetectorUnwatchStopsPings verifies Unwatch cancels the timer chain.
func TestDetectorUnwatchStopsPings(t *testing.T) {
	_, hosts, _, k, tr := testWorld(4)
	d := New(tr, DefaultConfig())
	d.Watch(hosts[0], hosts[3])
	k.Run(2 * sim.Second)
	before := d.Counters().Value("ping")
	if before == 0 {
		t.Fatal("watch never pinged")
	}
	d.Unwatch(hosts[3].ID)
	k.Run(10 * sim.Second)
	if got := d.Counters().Value("ping"); got != before {
		t.Fatalf("pings after Unwatch: %d → %d", before, got)
	}
}

// TestDetectorDrainTerminates pins the daemon-timer contract: a detector
// with live watches must not keep an unbounded Drain alive.
func TestDetectorDrainTerminates(t *testing.T) {
	_, hosts, _, k, tr := testWorld(5)
	d := New(tr, DefaultConfig())
	for _, h := range hosts[1:6] {
		d.Watch(hosts[0], h)
	}
	k.Drain() // would hang forever if pings were non-daemon events
	if d.Watching() != 5 {
		t.Fatalf("watches = %d, want 5", d.Watching())
	}
}

// TestHealChains verifies Heal composes with pre-registered observers.
type fakeHealer struct {
	suspected, evicted []underlay.HostID
}

func (f *fakeHealer) Suspect(id underlay.HostID) { f.suspected = append(f.suspected, id) }
func (f *fakeHealer) Evict(id underlay.HostID)   { f.evicted = append(f.evicted, id) }

func TestHealChains(t *testing.T) {
	_, hosts, _, k, tr := testWorld(6)
	cfg := DefaultConfig()
	cfg.Backoff.Jitter = 0
	d := New(tr, cfg)
	var rec recorder
	rec.wire(d)
	h := &fakeHealer{}
	d.Heal(h)

	target := hosts[4]
	target.Up = false
	d.Watch(hosts[0], target)
	k.Run(30 * sim.Second)
	if len(rec.evicts) != 1 || len(h.evicted) != 1 {
		t.Fatalf("observer evicts %v, healer evicts %v — both must fire", rec.evicts, h.evicted)
	}
	if len(h.suspected) != 1 {
		t.Fatalf("healer suspicion not delivered: %v", h.suspected)
	}
}
