// Package skyeye implements an information-management over-overlay in the
// style of SkyEye.KOM (Graffi et al., ICPADS 2008 — [11] in the paper): an
// aggregation tree laid over the peer population in which every peer
// periodically pushes its statistics toward coordinators; the root obtains
// the "oracle view on structured P2P systems", and capability queries
// ("find k peers with capacity ≥ x") descend only into subtrees whose
// aggregate maximum can satisfy them. This is the collection method for
// Peer Resources information in Figure 3.
package skyeye

import (
	"fmt"
	"sort"

	"unap2p/internal/metrics"
	"unap2p/internal/resources"
	"unap2p/internal/underlay"
)

// Config tunes the over-overlay.
type Config struct {
	// Arity is the aggregation-tree fan-in.
	Arity int
	// MsgBytes is the size of one statistics update message.
	MsgBytes uint64
}

// DefaultConfig uses the β=4 fan-in of the SkyEye evaluation.
func DefaultConfig() Config { return Config{Arity: 4, MsgBytes: 120} }

// Aggregate summarizes a subtree.
type Aggregate struct {
	// Peers is the number of peers covered.
	Peers int
	// MeanScore and MaxScore summarize super-peer suitability.
	MeanScore, MaxScore float64
	// TotalUpKbps sums upstream capacity.
	TotalUpKbps float64
	// OnlinePeers counts currently-up peers.
	OnlinePeers int
}

type treeNode struct {
	coordinator underlay.HostID
	children    []*treeNode
	leafPeers   []underlay.HostID
	agg         Aggregate
	fresh       bool
}

// SkyEye is the over-overlay instance.
type SkyEye struct {
	U     *underlay.Network
	Table *resources.Table
	Cfg   Config
	// Msgs counts "update" and "query" messages.
	Msgs *metrics.CounterSet

	root  *treeNode
	peers []underlay.HostID
}

// Build constructs the aggregation tree over the given hosts: peers are
// sorted by ID, grouped into leaves of Arity, and leaf/inner coordinators
// are the first peer of each group (deterministic, as the DHT-position
// derivation in SkyEye is).
func Build(u *underlay.Network, table *resources.Table, hosts []*underlay.Host, cfg Config) *SkyEye {
	if cfg.Arity < 2 {
		panic("skyeye: arity must be ≥ 2")
	}
	s := &SkyEye{U: u, Table: table, Cfg: cfg, Msgs: metrics.NewCounterSet()}
	for _, h := range hosts {
		s.peers = append(s.peers, h.ID)
	}
	sort.Slice(s.peers, func(i, j int) bool { return s.peers[i] < s.peers[j] })
	if len(s.peers) == 0 {
		panic("skyeye: no peers")
	}

	// Leaves.
	var level []*treeNode
	for i := 0; i < len(s.peers); i += cfg.Arity {
		end := i + cfg.Arity
		if end > len(s.peers) {
			end = len(s.peers)
		}
		leaf := &treeNode{coordinator: s.peers[i], leafPeers: s.peers[i:end]}
		level = append(level, leaf)
	}
	// Inner levels.
	for len(level) > 1 {
		var next []*treeNode
		for i := 0; i < len(level); i += cfg.Arity {
			end := i + cfg.Arity
			if end > len(level) {
				end = len(level)
			}
			inner := &treeNode{coordinator: level[i].coordinator, children: level[i:end]}
			next = append(next, inner)
		}
		level = next
	}
	s.root = level[0]
	return s
}

// UpdateRound performs one reporting epoch: every peer sends its current
// statistics to its leaf coordinator, and every coordinator pushes its
// aggregate one level up. Message counts and traffic reflect the
// tree structure (SkyEye's O(N) messages per epoch, O(log N) per peer
// path length).
func (s *SkyEye) UpdateRound() Aggregate {
	var up func(n *treeNode) Aggregate
	up = func(n *treeNode) Aggregate {
		var agg Aggregate
		coord := s.U.Host(n.coordinator)
		if n.children == nil {
			for _, id := range n.leafPeers {
				h := s.U.Host(id)
				res := s.Table.Get(id)
				if id != n.coordinator {
					s.Msgs.Get("update").Inc()
					s.U.Send(h, coord, s.Cfg.MsgBytes)
				}
				agg.Peers++
				if h.Up {
					agg.OnlinePeers++
				}
				sc := res.Score()
				agg.MeanScore += sc // sum for now
				if sc > agg.MaxScore {
					agg.MaxScore = sc
				}
				agg.TotalUpKbps += res.UpKbps
			}
		} else {
			for _, c := range n.children {
				ca := up(c)
				if c.coordinator != n.coordinator {
					s.Msgs.Get("update").Inc()
					s.U.Send(s.U.Host(c.coordinator), coord, s.Cfg.MsgBytes)
				}
				agg.Peers += ca.Peers
				agg.OnlinePeers += ca.OnlinePeers
				agg.MeanScore += ca.MeanScore // still sums
				if ca.MaxScore > agg.MaxScore {
					agg.MaxScore = ca.MaxScore
				}
				agg.TotalUpKbps += ca.TotalUpKbps
			}
		}
		n.agg = agg
		n.fresh = true
		return agg
	}
	total := up(s.root)
	if total.Peers > 0 {
		total.MeanScore /= float64(total.Peers)
	}
	// Store the normalized mean at the root for Stats().
	s.root.agg = total
	return total
}

// Stats returns the root's latest aggregate — the "oracle view". It
// panics if no UpdateRound has run (coordinators have no data yet).
func (s *SkyEye) Stats() Aggregate {
	if !s.root.fresh {
		panic("skyeye: Stats before any UpdateRound")
	}
	return s.root.agg
}

// FindCapable returns up to k peer IDs whose resource score is at least
// minScore, descending only into subtrees whose aggregated MaxScore can
// satisfy the query (the capacity-based peer search of §3.4). It counts
// one query message per tree edge traversed and returns peers in
// ascending-ID order.
func (s *SkyEye) FindCapable(from *underlay.Host, minScore float64, k int) []underlay.HostID {
	if !s.root.fresh {
		panic("skyeye: FindCapable before any UpdateRound")
	}
	var out []underlay.HostID
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if len(out) >= k || n.agg.MaxScore < minScore {
			return
		}
		s.Msgs.Get("query").Inc()
		s.U.Send(from, s.U.Host(n.coordinator), s.Cfg.MsgBytes)
		if n.children == nil {
			for _, id := range n.leafPeers {
				if len(out) >= k {
					return
				}
				if s.U.Host(id).Up && s.Table.Get(id).Score() >= minScore {
					out = append(out, id)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(s.root)
	return out
}

// PathLength returns the number of levels in the tree (per-peer update
// path length, O(log_β N)).
func (s *SkyEye) PathLength() int {
	depth := 1
	n := s.root
	for n.children != nil {
		depth++
		n = n.children[0]
	}
	return depth
}

func (a Aggregate) String() string {
	return fmt.Sprintf("peers=%d online=%d meanScore=%.3f maxScore=%.3f upKbps=%.0f",
		a.Peers, a.OnlinePeers, a.MeanScore, a.MaxScore, a.TotalUpKbps)
}
