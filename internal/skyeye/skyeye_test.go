package skyeye

import (
	"math"
	"testing"

	"unap2p/internal/resources"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/underlay"
)

func buildSkyEye(t *testing.T, hostsPerAS int) (*underlay.Network, *resources.Table, *SkyEye) {
	t.Helper()
	src := sim.NewSource(1)
	net := topology.Star(5, topology.DefaultConfig())
	topology.PlaceHosts(net, hostsPerAS, false, 1, 3, src.Stream("place"))
	tab := resources.GenerateAll(net, src.Stream("res"))
	s := Build(net, tab, net.Hosts(), DefaultConfig())
	return net, tab, s
}

func TestUpdateRoundAggregates(t *testing.T) {
	net, tab, s := buildSkyEye(t, 10)
	agg := s.UpdateRound()
	if agg.Peers != net.NumHosts() {
		t.Fatalf("peers = %d, want %d", agg.Peers, net.NumHosts())
	}
	if agg.OnlinePeers != net.NumHosts() {
		t.Fatalf("online = %d", agg.OnlinePeers)
	}
	// Cross-check against direct computation.
	var sum, max, up float64
	for _, h := range net.Hosts() {
		sc := tab.Get(h.ID).Score()
		sum += sc
		if sc > max {
			max = sc
		}
		up += tab.Get(h.ID).UpKbps
	}
	if math.Abs(agg.MeanScore-sum/float64(net.NumHosts())) > 1e-9 {
		t.Fatalf("mean = %v, want %v", agg.MeanScore, sum/float64(net.NumHosts()))
	}
	if math.Abs(agg.MaxScore-max) > 1e-12 || math.Abs(agg.TotalUpKbps-up) > 1e-6 {
		t.Fatal("max/up aggregate wrong")
	}
	if s.Msgs.Value("update") == 0 {
		t.Fatal("no update messages")
	}
}

func TestUpdateMessageCountLinear(t *testing.T) {
	net, _, s := buildSkyEye(t, 10)
	s.UpdateRound()
	msgs := s.Msgs.Value("update")
	// One message per non-coordinator peer per level edge: bounded by
	// ~N + N/β + ... < N·β/(β−1) ≈ 1.34N.
	n := uint64(net.NumHosts())
	if msgs >= 2*n {
		t.Fatalf("update messages %d not O(N) for N=%d", msgs, n)
	}
	if msgs < n/2 {
		t.Fatalf("update messages %d suspiciously few for N=%d", msgs, n)
	}
}

func TestStatsPanicsBeforeUpdate(t *testing.T) {
	_, _, s := buildSkyEye(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Stats()
}

func TestFindCapable(t *testing.T) {
	net, tab, s := buildSkyEye(t, 10)
	s.UpdateRound()
	// Pick a threshold that ~25% of peers meet.
	var scores []float64
	for _, h := range net.Hosts() {
		scores = append(scores, tab.Get(h.ID).Score())
	}
	// quartile by simple selection
	th := quantile(scores, 0.75)
	found := s.FindCapable(net.Hosts()[0], th, 5)
	if len(found) == 0 {
		t.Fatal("found nobody above 75th percentile")
	}
	if len(found) > 5 {
		t.Fatalf("found %d > k", len(found))
	}
	for _, id := range found {
		if tab.Get(id).Score() < th {
			t.Fatalf("peer %d below threshold", id)
		}
	}
	if s.Msgs.Value("query") == 0 {
		t.Fatal("no query messages")
	}
}

func TestFindCapablePrunes(t *testing.T) {
	net, tab, s := buildSkyEye(t, 10)
	s.UpdateRound()
	// Impossible threshold: only the root is queried before pruning.
	var max float64
	for _, h := range net.Hosts() {
		if sc := tab.Get(h.ID).Score(); sc > max {
			max = sc
		}
	}
	before := s.Msgs.Value("query")
	got := s.FindCapable(net.Hosts()[0], max*10, 3)
	if len(got) != 0 {
		t.Fatal("impossible threshold matched peers")
	}
	if s.Msgs.Value("query") != before {
		t.Fatalf("pruning failed: %d query messages for impossible threshold",
			s.Msgs.Value("query")-before)
	}
}

func TestFindCapableSkipsOffline(t *testing.T) {
	net, _, s := buildSkyEye(t, 6)
	s.UpdateRound()
	for _, h := range net.Hosts() {
		h.Up = false
	}
	if got := s.FindCapable(net.Hosts()[0], 0, 10); len(got) != 0 {
		t.Fatalf("found %d offline peers", len(got))
	}
}

func TestPathLengthLogarithmic(t *testing.T) {
	net, _, s := buildSkyEye(t, 20) // 100 peers, arity 4
	pl := s.PathLength()
	// ceil(log4(25 leaves)) + 1 ≈ 4.
	if pl < 2 || pl > 6 {
		t.Fatalf("path length %d implausible for %d peers", pl, net.NumHosts())
	}
}

func TestBuildPanics(t *testing.T) {
	cases := []func(){
		func() { Build(nil, nil, nil, Config{Arity: 1}) },
		func() { Build(underlay.New(), resources.NewTable(), nil, DefaultConfig()) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

func TestUpdateRoundTracksChurn(t *testing.T) {
	net, _, s := buildSkyEye(t, 6)
	first := s.UpdateRound()
	if first.OnlinePeers != net.NumHosts() {
		t.Fatalf("initial online = %d", first.OnlinePeers)
	}
	for i, h := range net.Hosts() {
		if i%2 == 0 {
			h.Up = false
		}
	}
	second := s.UpdateRound()
	if second.OnlinePeers >= first.OnlinePeers {
		t.Fatal("aggregate did not track offline peers")
	}
	if second.Peers != first.Peers {
		t.Fatal("population count should be stable")
	}
}
