// Package topology generates underlay networks: the four 5-AS testlab
// shapes of Aggarwal et al. (ring, star, tree, random mesh), the
// transit–stub hierarchy of Figure 1, and standard AS-graph models
// (Barabási–Albert preferential attachment, Waxman random geometric).
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// Config holds the delay parameters shared by all generators.
type Config struct {
	// IntraDelay is the host-to-host delay inside one AS.
	IntraDelay sim.Duration
	// LinkDelay is the base inter-AS link delay.
	LinkDelay sim.Duration
	// LinkJitter, when > 0, adds uniform jitter in [0, LinkJitter) to each
	// link delay, drawn from Rand.
	LinkJitter sim.Duration
	// Rand supplies the generator's randomness; required when any
	// stochastic feature is enabled.
	Rand *rand.Rand
}

// DefaultConfig returns the parameters used throughout the experiments:
// 5 ms intra-AS delay and 20 ms inter-AS links, no jitter.
func DefaultConfig() Config {
	return Config{IntraDelay: 5, LinkDelay: 20}
}

func (c Config) linkDelay() sim.Duration {
	d := c.LinkDelay
	if c.LinkJitter > 0 {
		if c.Rand == nil {
			panic("topology: LinkJitter requires Rand")
		}
		d += sim.Duration(c.Rand.Float64() * float64(c.LinkJitter))
	}
	return d
}

// Ring builds n local ISPs connected in a cycle. Router-style topologies
// model the testlab's plain IP routing, so the network uses the
// ShortestDelay policy.
func Ring(n int, cfg Config) *underlay.Network {
	if n < 3 {
		panic("topology: ring needs ≥3 ASes")
	}
	net := underlay.New()
	net.Policy = underlay.ShortestDelay
	ases := addLocals(net, n, cfg)
	for i := 0; i < n; i++ {
		net.ConnectPeering(ases[i], ases[(i+1)%n], cfg.linkDelay())
	}
	return net
}

// Star builds one hub AS with n-1 leaves. The hub is a transit ISP; the
// policy is ShortestDelay for testlab parity.
func Star(n int, cfg Config) *underlay.Network {
	if n < 2 {
		panic("topology: star needs ≥2 ASes")
	}
	net := underlay.New()
	net.Policy = underlay.ShortestDelay
	hub := net.AddAS(underlay.TransitISP, cfg.IntraDelay)
	for i := 1; i < n; i++ {
		leaf := net.AddAS(underlay.LocalISP, cfg.IntraDelay)
		net.ConnectTransit(leaf, hub, cfg.linkDelay())
	}
	return net
}

// Tree builds a rooted tree of n ASes with the given branching factor
// (breadth-first filling). Policy is ShortestDelay.
func Tree(n, branching int, cfg Config) *underlay.Network {
	if n < 1 || branching < 1 {
		panic("topology: tree needs n ≥ 1, branching ≥ 1")
	}
	net := underlay.New()
	net.Policy = underlay.ShortestDelay
	ases := make([]*underlay.AS, n)
	for i := 0; i < n; i++ {
		kind := underlay.LocalISP
		// Interior vertices act as transit.
		if i*branching+1 < n {
			kind = underlay.TransitISP
		}
		ases[i] = net.AddAS(kind, cfg.IntraDelay)
	}
	for i := 1; i < n; i++ {
		parent := (i - 1) / branching
		net.ConnectTransit(ases[i], ases[parent], cfg.linkDelay())
	}
	return net
}

// Mesh builds a connected random mesh over n ASes: a random spanning tree
// plus extra random edges until the target mean degree is reached. This is
// the testlab's "random mesh" topology. Policy is ShortestDelay.
func Mesh(n int, meanDegree float64, cfg Config) *underlay.Network {
	if n < 2 {
		panic("topology: mesh needs ≥2 ASes")
	}
	if cfg.Rand == nil {
		panic("topology: Mesh requires Rand")
	}
	net := underlay.New()
	net.Policy = underlay.ShortestDelay
	ases := addLocals(net, n, cfg)
	have := make(map[[2]int]bool)
	addEdge := func(i, j int) bool {
		if i == j {
			return false
		}
		if i > j {
			i, j = j, i
		}
		if have[[2]int{i, j}] {
			return false
		}
		have[[2]int{i, j}] = true
		net.ConnectPeering(ases[i], ases[j], cfg.linkDelay())
		return true
	}
	// Random spanning tree: attach each node to a random earlier node.
	for i := 1; i < n; i++ {
		addEdge(i, cfg.Rand.Intn(i))
	}
	target := int(meanDegree * float64(n) / 2)
	for len(have) < target {
		addEdge(cfg.Rand.Intn(n), cfg.Rand.Intn(n))
	}
	return net
}

// TransitStubConfig parameterizes the Figure 1 hierarchy generator.
type TransitStubConfig struct {
	Config
	// Transits is the number of transit-core ISPs (fully peered clique).
	Transits int
	// Stubs is the number of local ISPs.
	Stubs int
	// MultihomeProb is the probability a stub buys transit from a second
	// provider.
	MultihomeProb float64
	// StubPeeringProb is the probability that two stubs sharing a provider
	// establish a peering link — the "peering agreements between closely
	// located ISPs" of §2.1.
	StubPeeringProb float64
	// TransitDelay is the delay of transit-core peering links (defaults to
	// 2×LinkDelay when zero).
	TransitDelay sim.Duration
}

// TransitStub builds a two-tier Internet: a clique of transit ISPs and
// stub ISPs buying transit from random providers, with optional
// multihoming and stub peering. Routing is valley-free. The returned
// network is always fully reachable.
func TransitStub(cfg TransitStubConfig) *underlay.Network {
	if cfg.Transits < 1 || cfg.Stubs < 1 {
		panic("topology: TransitStub needs ≥1 transit and ≥1 stub")
	}
	if cfg.Rand == nil {
		panic("topology: TransitStub requires Rand")
	}
	td := cfg.TransitDelay
	if td == 0 {
		td = 2 * cfg.LinkDelay
	}
	net := underlay.New()
	transits := make([]*underlay.AS, cfg.Transits)
	for i := range transits {
		transits[i] = net.AddAS(underlay.TransitISP, cfg.IntraDelay)
	}
	for i := 0; i < cfg.Transits; i++ {
		for j := i + 1; j < cfg.Transits; j++ {
			net.ConnectPeering(transits[i], transits[j], td)
		}
	}
	providerOf := make([]int, cfg.Stubs)
	stubs := make([]*underlay.AS, cfg.Stubs)
	for i := 0; i < cfg.Stubs; i++ {
		s := net.AddAS(underlay.LocalISP, cfg.IntraDelay)
		stubs[i] = s
		p := cfg.Rand.Intn(cfg.Transits)
		providerOf[i] = p
		net.ConnectTransit(s, transits[p], cfg.linkDelay())
		if cfg.MultihomeProb > 0 && cfg.Rand.Float64() < cfg.MultihomeProb && cfg.Transits > 1 {
			q := cfg.Rand.Intn(cfg.Transits)
			for q == p {
				q = cfg.Rand.Intn(cfg.Transits)
			}
			net.ConnectTransit(s, transits[q], cfg.linkDelay())
		}
	}
	if cfg.StubPeeringProb > 0 {
		for i := 0; i < cfg.Stubs; i++ {
			for j := i + 1; j < cfg.Stubs; j++ {
				if providerOf[i] == providerOf[j] && cfg.Rand.Float64() < cfg.StubPeeringProb {
					net.ConnectPeering(stubs[i], stubs[j], cfg.LinkDelay/2)
				}
			}
		}
	}
	return net
}

// BarabasiAlbert builds a scale-free AS graph: each new AS attaches to m
// existing ASes with probability proportional to their degree. Links are
// peering and the policy ShortestDelay (the model captures AS-graph shape,
// not economics).
func BarabasiAlbert(n, m int, cfg Config) *underlay.Network {
	if n < m+1 || m < 1 {
		panic("topology: BarabasiAlbert needs n ≥ m+1, m ≥ 1")
	}
	if cfg.Rand == nil {
		panic("topology: BarabasiAlbert requires Rand")
	}
	net := underlay.New()
	net.Policy = underlay.ShortestDelay
	ases := addLocals(net, n, cfg)
	// Repeated-node list for preferential attachment.
	var targets []int
	// Seed: clique over the first m+1 nodes.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			net.ConnectPeering(ases[i], ases[j], cfg.linkDelay())
			targets = append(targets, i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			t := targets[cfg.Rand.Intn(len(targets))]
			if t != v {
				chosen[t] = true
			}
		}
		for t := range chosen {
			net.ConnectPeering(ases[v], ases[t], cfg.linkDelay())
		}
		// Update the attachment list deterministically (sorted keys).
		for t := 0; t < n; t++ {
			if chosen[t] {
				targets = append(targets, v, t)
			}
		}
	}
	return net
}

// Waxman builds a random geometric AS graph on the unit square: ASes at
// uniform positions, edge probability alpha·exp(−d/(beta·L)) with L=√2,
// and link delay proportional to distance. Connectivity is guaranteed by
// adding a nearest-neighbor chain over any disconnected components.
func Waxman(n int, alpha, beta float64, cfg Config) *underlay.Network {
	if n < 2 {
		panic("topology: Waxman needs ≥2 ASes")
	}
	if cfg.Rand == nil {
		panic("topology: Waxman requires Rand")
	}
	net := underlay.New()
	net.Policy = underlay.ShortestDelay
	ases := addLocals(net, n, cfg)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = cfg.Rand.Float64()
		ys[i] = cfg.Rand.Float64()
	}
	l := math.Sqrt2
	dist := func(i, j int) float64 {
		return math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
	}
	delayFor := func(d float64) sim.Duration {
		return cfg.LinkDelay*sim.Duration(d) + 1
	}
	connected := make(map[[2]int]bool)
	addEdge := func(i, j int) {
		if i > j {
			i, j = j, i
		}
		if i == j || connected[[2]int{i, j}] {
			return
		}
		connected[[2]int{i, j}] = true
		net.ConnectPeering(ases[i], ases[j], delayFor(dist(i, j)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cfg.Rand.Float64() < alpha*math.Exp(-dist(i, j)/(beta*l)) {
				addEdge(i, j)
			}
		}
	}
	// Connectivity fix-up: union-find, then join each component to its
	// nearest outside neighbor.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for e := range connected {
		parent[find(e[0])] = find(e[1])
	}
	for {
		// Find two components' closest pair.
		bestI, bestJ, bestD := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if find(i) != find(j) && dist(i, j) < bestD {
					bestI, bestJ, bestD = i, j, dist(i, j)
				}
			}
		}
		if bestI < 0 {
			break
		}
		addEdge(bestI, bestJ)
		parent[find(bestI)] = find(bestJ)
	}
	return net
}

func addLocals(net *underlay.Network, n int, cfg Config) []*underlay.AS {
	ases := make([]*underlay.AS, n)
	for i := 0; i < n; i++ {
		ases[i] = net.AddAS(underlay.LocalISP, cfg.IntraDelay)
	}
	return ases
}

// PlaceHosts attaches hostsPerAS hosts to every local ISP (and to transit
// ISPs when includeTransit is set), assigns access delays uniform in
// [minAccess, maxAccess), and scatters ground-truth geolocations: each AS
// gets a random center on the globe and its hosts a small dispersion
// around it, so geographic proximity correlates with (but does not equal)
// AS membership — the caveat of §2.4.
func PlaceHosts(net *underlay.Network, hostsPerAS int, includeTransit bool,
	minAccess, maxAccess sim.Duration, r *rand.Rand) []*underlay.Host {
	if r == nil {
		panic("topology: PlaceHosts requires rand")
	}
	var out []*underlay.Host
	for _, as := range net.ASes() {
		if as.Kind == underlay.TransitISP && !includeTransit {
			continue
		}
		// AS center: latitude in [-60,60], longitude in [-180,180).
		lat := r.Float64()*120 - 60
		lon := r.Float64()*360 - 180
		for i := 0; i < hostsPerAS; i++ {
			acc := minAccess
			if maxAccess > minAccess {
				acc += sim.Duration(r.Float64() * float64(maxAccess-minAccess))
			}
			h := net.AddHost(as, acc)
			h.Lat = clampLat(lat + r.NormFloat64()*1.5)
			h.Lon = wrapLon(lon + r.NormFloat64()*1.5)
			out = append(out, h)
		}
	}
	return out
}

func clampLat(lat float64) float64 {
	if lat > 89.9 {
		return 89.9
	}
	if lat < -89.9 {
		return -89.9
	}
	return lat
}

func wrapLon(lon float64) float64 {
	for lon >= 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}

// Describe returns a short human-readable summary of a network.
func Describe(net *underlay.Network) string {
	nT, nL := 0, 0
	for _, as := range net.ASes() {
		if as.Kind == underlay.TransitISP {
			nT++
		} else {
			nL++
		}
	}
	nTr, nPe := 0, 0
	for _, l := range net.Links() {
		if l.Kind == underlay.Transit {
			nTr++
		} else {
			nPe++
		}
	}
	return fmt.Sprintf("%d ASes (%d transit, %d local), %d links (%d transit, %d peering), %d hosts",
		net.NumASes(), nT, nL, len(net.Links()), nTr, nPe, net.NumHosts())
}
