package topology

import (
	"testing"
	"testing/quick"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

func allReachable(net *underlay.Network) bool {
	for i := 0; i < net.NumASes(); i++ {
		for j := 0; j < net.NumASes(); j++ {
			if !net.Reachable(i, j) {
				return false
			}
		}
	}
	return true
}

func TestRing(t *testing.T) {
	net := Ring(5, DefaultConfig())
	if net.NumASes() != 5 || len(net.Links()) != 5 {
		t.Fatalf("ring: %s", Describe(net))
	}
	if !allReachable(net) {
		t.Fatal("ring not fully reachable")
	}
	// Opposite nodes are 2 hops apart on a 5-ring.
	if h := net.ASHops(0, 2); h != 2 {
		t.Fatalf("hops(0,2) = %d, want 2", h)
	}
	if h := net.ASHops(0, 4); h != 1 {
		t.Fatalf("hops(0,4) = %d, want 1 (wrap)", h)
	}
}

func TestStar(t *testing.T) {
	net := Star(5, DefaultConfig())
	if net.NumASes() != 5 || len(net.Links()) != 4 {
		t.Fatalf("star: %s", Describe(net))
	}
	if !allReachable(net) {
		t.Fatal("star not fully reachable")
	}
	// Leaf to leaf is always 2 hops via the hub.
	if h := net.ASHops(1, 2); h != 2 {
		t.Fatalf("hops(1,2) = %d, want 2", h)
	}
	if net.AS(0).Kind != underlay.TransitISP {
		t.Fatal("hub should be transit")
	}
}

func TestTree(t *testing.T) {
	net := Tree(7, 2, DefaultConfig())
	if net.NumASes() != 7 || len(net.Links()) != 6 {
		t.Fatalf("tree: %s", Describe(net))
	}
	if !allReachable(net) {
		t.Fatal("tree not fully reachable")
	}
	// Leaves 3 and 6 are in different subtrees: 3→1→0→2→6 = 4 hops.
	if h := net.ASHops(3, 6); h != 4 {
		t.Fatalf("hops(3,6) = %d, want 4", h)
	}
	// Interior vertices are transit, leaves local.
	if net.AS(0).Kind != underlay.TransitISP || net.AS(6).Kind != underlay.LocalISP {
		t.Fatal("tree roles wrong")
	}
}

func TestMesh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rand = sim.NewSource(1).Stream("mesh")
	net := Mesh(10, 3, cfg)
	if net.NumASes() != 10 {
		t.Fatalf("mesh: %s", Describe(net))
	}
	if !allReachable(net) {
		t.Fatal("mesh not fully reachable")
	}
	if len(net.Links()) < 9 {
		t.Fatalf("mesh has %d links, want ≥ spanning tree", len(net.Links()))
	}
}

func TestTransitStub(t *testing.T) {
	cfg := TransitStubConfig{
		Config:          Config{IntraDelay: 5, LinkDelay: 20, Rand: sim.NewSource(2).Stream("ts")},
		Transits:        3,
		Stubs:           12,
		MultihomeProb:   0.3,
		StubPeeringProb: 0.2,
	}
	net := TransitStub(cfg)
	if net.NumASes() != 15 {
		t.Fatalf("transit-stub: %s", Describe(net))
	}
	if !allReachable(net) {
		t.Fatal("transit-stub not fully reachable under valley-free")
	}
	// All transit-core links are peering; every stub has ≥1 transit link.
	for _, as := range net.ASes() {
		if as.Kind == underlay.LocalISP {
			hasTransit := false
			for _, l := range as.Links() {
				if l.Kind == underlay.Transit && l.A.ID == as.ID {
					hasTransit = true
				}
			}
			if !hasTransit {
				t.Fatalf("stub %d has no provider", as.ID)
			}
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rand = sim.NewSource(3).Stream("ba")
	net := BarabasiAlbert(30, 2, cfg)
	if net.NumASes() != 30 {
		t.Fatalf("ba: %s", Describe(net))
	}
	if !allReachable(net) {
		t.Fatal("BA graph not reachable")
	}
	// Scale-free shape: max degree should clearly exceed the mean.
	maxDeg, sumDeg := 0, 0
	for _, as := range net.ASes() {
		d := len(as.Links())
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sumDeg) / 30
	if float64(maxDeg) < 2*mean {
		t.Fatalf("BA max degree %d not hub-like vs mean %.1f", maxDeg, mean)
	}
}

func TestWaxman(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rand = sim.NewSource(4).Stream("waxman")
	net := Waxman(25, 0.4, 0.2, cfg)
	if net.NumASes() != 25 {
		t.Fatalf("waxman: %s", Describe(net))
	}
	if !allReachable(net) {
		t.Fatal("waxman graph not reachable after fix-up")
	}
}

func TestPlaceHosts(t *testing.T) {
	cfg := DefaultConfig()
	r := sim.NewSource(5).Stream("place")
	net := Star(4, cfg)
	hosts := PlaceHosts(net, 3, false, 2, 10, r)
	if len(hosts) != 9 { // 3 leaves × 3 hosts, hub excluded
		t.Fatalf("placed %d hosts, want 9", len(hosts))
	}
	for _, h := range hosts {
		if h.AccessDelay < 2 || h.AccessDelay >= 10 {
			t.Fatalf("access delay %v out of range", h.AccessDelay)
		}
		if h.Lat < -90 || h.Lat > 90 || h.Lon < -180 || h.Lon >= 180 {
			t.Fatalf("geo (%v,%v) out of range", h.Lat, h.Lon)
		}
		if h.AS.Kind == underlay.TransitISP {
			t.Fatal("host on transit AS despite includeTransit=false")
		}
	}
	// Hosts in the same AS should be geographically close (dispersion σ=1.5°).
	a := net.HostsInAS(1)
	if len(a) != 3 {
		t.Fatalf("AS1 has %d hosts", len(a))
	}
	hostsT := PlaceHosts(net, 1, true, 2, 2, r)
	if len(hostsT) != 4 {
		t.Fatalf("includeTransit placed %d, want 4", len(hostsT))
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { Ring(2, DefaultConfig()) },
		func() { Star(1, DefaultConfig()) },
		func() { Tree(0, 2, DefaultConfig()) },
		func() { Mesh(5, 2, DefaultConfig()) },                     // no Rand
		func() { BarabasiAlbert(3, 3, DefaultConfig()) },           // n < m+1
		func() { Waxman(1, 0.5, 0.5, DefaultConfig()) },            // n < 2
		func() { TransitStub(TransitStubConfig{}) },                // zero config
		func() { PlaceHosts(underlay.New(), 1, false, 0, 0, nil) }, // nil rand
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *underlay.Network {
		cfg := DefaultConfig()
		cfg.Rand = sim.NewSource(9).Stream("det")
		return Mesh(12, 3, cfg)
	}
	a, b := build(), build()
	if len(a.Links()) != len(b.Links()) {
		t.Fatal("mesh generation not deterministic")
	}
	for i := range a.Links() {
		la, lb := a.Links()[i], b.Links()[i]
		if la.A.ID != lb.A.ID || la.B.ID != lb.B.ID || la.DelayAB != lb.DelayAB {
			t.Fatalf("link %d differs between identical seeds", i)
		}
	}
}

// Property: every generated topology is fully reachable and hop counts
// satisfy the triangle inequality (hops(a,c) ≤ hops(a,b)+hops(b,c)) under
// shortest-path routing.
func TestQuickMeshTriangle(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 4
		cfg := DefaultConfig()
		cfg.Rand = sim.NewSource(seed).Stream("quick-mesh")
		net := Mesh(n, 2.5, cfg)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					if net.ASHops(a, c) > net.ASHops(a, b)+net.ASHops(b, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestWaxmanDelayTracksDistance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rand = sim.NewSource(6).Stream("waxman2")
	net := Waxman(30, 0.5, 0.3, cfg)
	// Link delays are distance-derived: they must vary (not all equal to
	// the base LinkDelay) and stay within [1, LinkDelay·√2+1].
	minD, maxD := sim.Forever, sim.Duration(0)
	for _, l := range net.Links() {
		if l.DelayAB < minD {
			minD = l.DelayAB
		}
		if l.DelayAB > maxD {
			maxD = l.DelayAB
		}
		if l.DelayAB < 1 || float64(l.DelayAB) > float64(cfg.LinkDelay)*1.42+1 {
			t.Fatalf("waxman delay %v out of range", l.DelayAB)
		}
	}
	if minD == maxD {
		t.Fatal("waxman delays suspiciously uniform")
	}
}

func TestTransitStubMultihoming(t *testing.T) {
	cfg := TransitStubConfig{
		Config:        Config{IntraDelay: 5, LinkDelay: 20, Rand: sim.NewSource(7).Stream("mh")},
		Transits:      3,
		Stubs:         30,
		MultihomeProb: 1.0, // force multihoming everywhere
	}
	net := TransitStub(cfg)
	for _, as := range net.ASes() {
		if as.Kind != underlay.LocalISP {
			continue
		}
		providers := 0
		for _, l := range as.Links() {
			if l.Kind == underlay.Transit && l.A.ID == as.ID {
				providers++
			}
		}
		if providers != 2 {
			t.Fatalf("stub %d has %d providers, want 2 under prob 1.0", as.ID, providers)
		}
	}
}
