package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// Edge-case coverage for the export surface the telemetry layer persists
// into run files: quantiles on degenerate histograms, and the snapshot
// round trip that run-file diffing depends on.

func TestHistogramEmptyQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty summary stats not zero: mean=%v min=%v max=%v",
			h.Mean(), h.Min(), h.Max())
	}
	s := h.Snapshot()
	if s.N != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty snapshot carries non-zero stats: %+v", s)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot Quantile(0.5) = %v, want 0", got)
	}
}

func TestHistogramSingleSampleQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(3)
	// With one sample, every quantile must collapse to it — no
	// interpolation toward a bucket bound the sample never reached.
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 3 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 3", q, got)
		}
	}
	if h.Min() != 3 || h.Max() != 3 || h.Mean() != 3 {
		t.Fatalf("single-sample stats: min=%v max=%v mean=%v, want all 3",
			h.Min(), h.Max(), h.Mean())
	}
}

func TestHistogramOverflowSample(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100) // beyond the last bound → overflow bucket
	counts := h.Counts()
	if counts[len(counts)-1] != 1 {
		t.Fatalf("overflow sample not in overflow bucket: %v", counts)
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("overflow-only Quantile(0.5) = %v, want 100 (clamped to max)", got)
	}
}

func TestHistogramSnapshotRoundTrip(t *testing.T) {
	h := NewLatencyHistogram()
	for _, v := range []float64{0.5, 1, 3, 3, 7, 42, 9000, 100000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	restored := HistogramFromSnapshot(s)
	if restored.N() != h.N() || restored.Sum() != h.Sum() ||
		restored.Min() != h.Min() || restored.Max() != h.Max() {
		t.Fatalf("round trip lost summary stats: got n=%d sum=%v min=%v max=%v",
			restored.N(), restored.Sum(), restored.Min(), restored.Max())
	}
	if !reflect.DeepEqual(restored.Counts(), h.Counts()) {
		t.Fatalf("round trip lost counts: %v vs %v", restored.Counts(), h.Counts())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if got, want := restored.Quantile(q), h.Quantile(q); got != want {
			t.Fatalf("round trip Quantile(%v) = %v, want %v", q, got, want)
		}
		if got, want := s.Quantile(q), h.Quantile(q); got != want {
			t.Fatalf("snapshot Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Two snapshots of identical state are value-equal — the property
	// run-file diffing relies on.
	if !reflect.DeepEqual(s, restored.Snapshot()) {
		t.Fatal("snapshot of restored histogram differs from original snapshot")
	}
}

func TestHistogramSnapshotJSONRoundTrip(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.25, 5, 5, 50, 500} {
		h.Observe(v)
	}
	data, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s HistogramSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, h.Snapshot()) {
		t.Fatalf("JSON round trip changed snapshot:\n got %+v\nwant %+v", s, h.Snapshot())
	}
	if got, want := s.Quantile(0.5), h.Quantile(0.5); got != want {
		t.Fatalf("JSON round trip Quantile(0.5) = %v, want %v", got, want)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%97) + 0.5)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile(%v) = %v; quantiles must be monotone",
				q, cur, q-0.05, prev)
		}
		prev = cur
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("quantile endpoints must clamp to min/max")
	}
}

func TestMatrixSnapshotRoundTrip(t *testing.T) {
	m := NewTrafficMatrix()
	m.Add(1, 1, 100)
	m.Add(1, 2, 40)
	m.Add(2, 1, 60)
	s := m.Snapshot()
	restored := MatrixFromSnapshot(s)
	if restored.Total() != m.Total() || restored.Intra() != m.Intra() {
		t.Fatalf("round trip totals: got (%d, %d), want (%d, %d)",
			restored.Total(), restored.Intra(), m.Total(), m.Intra())
	}
	if !reflect.DeepEqual(restored.Snapshot(), s) {
		t.Fatal("snapshot of restored matrix differs")
	}
	if got := s.IntraFraction(); got != 0.5 {
		t.Fatalf("IntraFraction = %v, want 0.5", got)
	}
	if (MatrixSnapshot{}).IntraFraction() != 0 {
		t.Fatal("empty matrix IntraFraction must be 0, not NaN")
	}
}
