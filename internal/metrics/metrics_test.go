package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := NewCounter("ping")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d, want 5", c.Value())
	}
	if c.Name() != "ping" {
		t.Fatalf("name = %q", c.Name())
	}
	if s := c.String(); s != "ping=5" {
		t.Fatalf("String = %q", s)
	}
}

func TestCounterSet(t *testing.T) {
	s := NewCounterSet()
	s.Get("b").Inc()
	s.Get("a").Add(2)
	s.Get("b").Inc()
	if s.Value("a") != 2 || s.Value("b") != 2 {
		t.Fatalf("a=%d b=%d", s.Value("a"), s.Value("b"))
	}
	if s.Value("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestDistBasic(t *testing.T) {
	d := NewDist()
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.Observe(v)
	}
	if d.N() != 5 {
		t.Fatalf("n = %d", d.N())
	}
	if d.Mean() != 3 {
		t.Fatalf("mean = %v", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Fatalf("min/max = %v/%v", d.Min(), d.Max())
	}
	if q := d.Quantile(0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := d.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := d.Quantile(1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if d.Sum() != 15 {
		t.Fatalf("sum = %v", d.Sum())
	}
}

func TestDistEmpty(t *testing.T) {
	d := NewDist()
	if d.Mean() != 0 || d.Quantile(0.5) != 0 || d.Min() != 0 || d.Max() != 0 || d.Stddev() != 0 {
		t.Fatal("empty dist should report zeros")
	}
}

func TestDistObserveAfterQuantile(t *testing.T) {
	d := NewDist()
	d.Observe(10)
	_ = d.Quantile(0.5)
	d.Observe(1) // must re-sort
	if d.Min() != 1 {
		t.Fatalf("min after late observe = %v", d.Min())
	}
}

func TestDistStddev(t *testing.T) {
	d := NewDist()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Observe(v)
	}
	if got := d.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func Test95thPercentileBillingSemantics(t *testing.T) {
	// 100 samples 1..100: the 95th percentile by nearest rank is 95 —
	// the "top 5% of peaks are free" billing rule.
	d := NewDist()
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if q := d.Quantile(0.95); q != 95 {
		t.Fatalf("p95 = %v, want 95", q)
	}
}

func TestQuickDistQuantileMonotone(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		d := NewDist()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			d.Observe(v)
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return d.Quantile(qa) <= d.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrafficMatrix(t *testing.T) {
	m := NewTrafficMatrix()
	m.Add(1, 1, 100)
	m.Add(1, 2, 300)
	m.Add(2, 2, 100)
	if m.Total() != 500 || m.Intra() != 200 || m.Inter() != 300 {
		t.Fatalf("total/intra/inter = %d/%d/%d", m.Total(), m.Intra(), m.Inter())
	}
	if f := m.IntraFraction(); f != 0.4 {
		t.Fatalf("intra fraction = %v", f)
	}
	if m.Pair(1, 2) != 300 || m.Pair(2, 1) != 0 {
		t.Fatal("pair lookup wrong (matrix must be directed)")
	}
	ps := m.Pairs()
	if len(ps) != 3 || ps[0] != (ASPair{1, 1}) || ps[2] != (ASPair{2, 2}) {
		t.Fatalf("pairs = %v", ps)
	}
}

func TestTrafficMatrixEmpty(t *testing.T) {
	m := NewTrafficMatrix()
	if m.IntraFraction() != 0 {
		t.Fatal("empty matrix fraction should be 0")
	}
	if !m.Conservation() {
		t.Fatal("empty matrix should conserve")
	}
}

func TestQuickTrafficConservation(t *testing.T) {
	f := func(flows []struct {
		Src, Dst uint8
		N        uint16
	}) bool {
		m := NewTrafficMatrix()
		for _, fl := range flows {
			m.Add(int(fl.Src), int(fl.Dst), uint64(fl.N))
		}
		return m.Conservation() && m.Intra()+m.Inter() == m.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntraASEdgeFraction(t *testing.T) {
	as := []int{0, 0, 1, 1}
	edges := []Edge{{0, 1}, {2, 3}, {0, 2}, {1, 3}}
	if f := IntraASEdgeFraction(edges, as); f != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", f)
	}
	if f := IntraASEdgeFraction(nil, as); f != 0 {
		t.Fatal("no edges should give 0")
	}
}

func TestModularityClusteredVsRandomShape(t *testing.T) {
	// Two communities of 4, fully intra-connected, one bridge: high Q.
	as := []int{0, 0, 0, 0, 1, 1, 1, 1}
	var clustered []Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			clustered = append(clustered, Edge{i, j}, Edge{i + 4, j + 4})
		}
	}
	clustered = append(clustered, Edge{0, 4})
	// Bipartite-ish graph that ignores communities: low/negative Q.
	var mixed []Edge
	for i := 0; i < 4; i++ {
		for j := 4; j < 8; j++ {
			mixed = append(mixed, Edge{i, j})
		}
	}
	qc, qm := Modularity(clustered, as), Modularity(mixed, as)
	if qc <= qm {
		t.Fatalf("clustered Q=%v should exceed mixed Q=%v", qc, qm)
	}
	if qc < 0.3 {
		t.Fatalf("clustered Q=%v unexpectedly low", qc)
	}
	if Modularity(nil, as) != 0 {
		t.Fatal("no edges → Q=0")
	}
}

func TestComponentCount(t *testing.T) {
	if c := ComponentCount(5, []Edge{{0, 1}, {1, 2}}); c != 3 {
		t.Fatalf("components = %d, want 3", c)
	}
	if c := ComponentCount(3, []Edge{{0, 1}, {1, 2}, {0, 2}}); c != 1 {
		t.Fatalf("components = %d, want 1", c)
	}
	if c := ComponentCount(4, nil); c != 4 {
		t.Fatalf("components = %d, want 4", c)
	}
}

func TestInterASEdgeCountAndMeanDegree(t *testing.T) {
	as := []int{0, 1, 1}
	edges := []Edge{{0, 1}, {1, 2}}
	if n := InterASEdgeCount(edges, as); n != 1 {
		t.Fatalf("inter edges = %d, want 1", n)
	}
	if d := MeanDegree(4, edges); d != 1 {
		t.Fatalf("mean degree = %v, want 1", d)
	}
	if MeanDegree(0, nil) != 0 {
		t.Fatal("zero nodes → degree 0")
	}
}

func TestQuickComponentCountBounds(t *testing.T) {
	f := func(rawEdges []struct{ A, B uint8 }, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		var edges []Edge
		for _, e := range rawEdges {
			edges = append(edges, Edge{int(e.A) % n, int(e.B) % n})
		}
		c := ComponentCount(n, edges)
		return c >= 1 && c <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestASHeatmap(t *testing.T) {
	as := []int{0, 0, 1, 1}
	clustered := []Edge{{0, 1}, {2, 3}}
	art := ASHeatmap(clustered, as)
	lines := strings.Split(strings.TrimSuffix(art, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 4 {
		t.Fatalf("heatmap shape wrong: %q", art)
	}
	// Diagonal cells darkest, off-diagonal blank.
	if lines[0][0] == ' ' || lines[1][2] == ' ' {
		t.Fatalf("diagonal not dark:\n%s", art)
	}
	if lines[0][2] != ' ' {
		t.Fatalf("off-diagonal not blank:\n%s", art)
	}
	if ASHeatmap(nil, as) != "(empty)\n" {
		t.Fatal("empty case wrong")
	}
}

func TestDiagonalDominance(t *testing.T) {
	as := []int{0, 0, 1, 1}
	if d := DiagonalDominance([]Edge{{0, 1}, {0, 2}}, as); d != 0.5 {
		t.Fatalf("dominance = %v", d)
	}
	if DiagonalDominance(nil, as) != 0 {
		t.Fatal("empty dominance should be 0")
	}
}
