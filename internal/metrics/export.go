package metrics

import (
	"math"
	"sort"
)

// This file holds the export surface of the metrics package: frozen,
// JSON-serializable snapshots of the live accumulators (CounterSet,
// Histogram, TrafficMatrix). Snapshots decouple observation from
// reporting — the telemetry layer persists them into run files and the
// Prometheus exporter renders them — and they are value types, so two
// snapshots of identical state compare equal with reflect.DeepEqual.

// Snapshot returns a frozen name → value view of every counter in the
// set, in no particular storage order (maps compare by content).
func (s *CounterSet) Snapshot() map[string]uint64 {
	m := *s.m.Load()
	out := make(map[string]uint64, len(m))
	for name, c := range m {
		out[name] = c.Value()
	}
	return out
}

// HistogramSnapshot is a frozen, serializable view of a Histogram.
// Bounds/Counts mirror the live histogram's buckets (Counts has one
// extra overflow entry); N, Sum, Min, Max reproduce the summary stats.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	N      uint64    `json:"n"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Snapshot freezes the histogram's current state. Under concurrent
// writers the count vector is copied atomically and N is derived from
// that copy, so a snapshot is always internally consistent (Sum may
// trail the counts by in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts, n := h.loadCounts()
	s := HistogramSnapshot{
		Bounds: h.Bounds(),
		Counts: counts,
		N:      n,
		Sum:    h.Sum(),
	}
	if n > 0 {
		s.Min, s.Max = h.Min(), h.Max()
	}
	return s
}

// HistogramFromSnapshot reconstructs a live histogram from a snapshot;
// the round trip h → Snapshot → HistogramFromSnapshot preserves every
// count, bound, and summary statistic (and therefore every quantile).
func HistogramFromSnapshot(s HistogramSnapshot) *Histogram {
	h := NewHistogram(s.Bounds)
	copy(h.counts, s.Counts)
	h.sum.Store(math.Float64bits(s.Sum))
	if s.N > 0 {
		h.min.Store(math.Float64bits(s.Min))
		h.max.Store(math.Float64bits(s.Max))
	}
	return h
}

// Quantile approximates the q-quantile directly on a snapshot, by
// reconstructing the histogram's interpolation. It matches the live
// histogram's Quantile for the same state.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return HistogramFromSnapshot(s).Quantile(q)
}

// Mean reports the snapshot's mean observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// PairBytes is one (src AS, dst AS, bytes) cell of a traffic-matrix
// snapshot.
type PairBytes struct {
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Bytes uint64 `json:"bytes"`
}

// MatrixSnapshot is a frozen, serializable view of a TrafficMatrix with
// cells in deterministic (src, dst) order.
type MatrixSnapshot struct {
	Total uint64      `json:"total"`
	Intra uint64      `json:"intra"`
	Pairs []PairBytes `json:"pairs,omitempty"`
}

// IntraFraction returns the intra-AS share of the snapshot's traffic.
func (s MatrixSnapshot) IntraFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Intra) / float64(s.Total)
}

// Snapshot freezes the matrix, cells sorted by (src, dst).
func (m *TrafficMatrix) Snapshot() MatrixSnapshot {
	s := MatrixSnapshot{Total: m.Total(), Intra: m.Intra()}
	for _, p := range m.Pairs() {
		s.Pairs = append(s.Pairs, PairBytes{Src: p.Src, Dst: p.Dst, Bytes: m.Pair(p.Src, p.Dst)})
	}
	return s
}

// MatrixFromSnapshot reconstructs a live matrix from a snapshot.
func MatrixFromSnapshot(s MatrixSnapshot) *TrafficMatrix {
	m := NewTrafficMatrix()
	for _, p := range s.Pairs {
		m.Add(p.Src, p.Dst, p.Bytes)
	}
	return m
}

// SortedKeys returns the keys of a snapshot map in sorted order — the
// iteration helper every deterministic exporter needs.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
