package metrics

// Clustering statistics over an overlay graph whose vertices are labelled
// with an AS id. These quantify the ISP-boundary clustering visible in
// Figures 5 and 6 of the paper: biased neighbor selection turns a uniform
// random graph into per-AS clusters joined by a minimal number of inter-AS
// edges.

// Edge is an undirected overlay edge between node indices.
type Edge struct {
	A, B int
}

// IntraASEdgeFraction returns the fraction of edges whose endpoints share
// an AS, given a node→AS labelling. Aggarwal et al. measured <5% of
// Gnutella peers picking same-AS neighbors; the oracle raises this sharply.
func IntraASEdgeFraction(edges []Edge, as []int) float64 {
	if len(edges) == 0 {
		return 0
	}
	intra := 0
	for _, e := range edges {
		if as[e.A] == as[e.B] {
			intra++
		}
	}
	return float64(intra) / float64(len(edges))
}

// Modularity computes the Newman modularity Q of the partition of the
// overlay graph induced by the AS labelling. Q near 0 means the overlay
// ignores AS boundaries; Q approaching 1 means strong per-AS clustering.
func Modularity(edges []Edge, as []int) float64 {
	m := float64(len(edges))
	if m == 0 {
		return 0
	}
	deg := make(map[int]float64, len(as))
	for _, e := range edges {
		deg[e.A]++
		deg[e.B]++
	}
	// Sum over communities c of (e_c/m - (d_c/2m)^2).
	intra := make(map[int]float64) // edges inside community
	dsum := make(map[int]float64)  // total degree of community
	for _, e := range edges {
		if as[e.A] == as[e.B] {
			intra[as[e.A]]++
		}
	}
	for i, a := range as {
		dsum[a] += deg[i]
	}
	var q float64
	for c, d := range dsum {
		q += intra[c]/m - (d/(2*m))*(d/(2*m))
	}
	return q
}

// ComponentCount returns the number of connected components of the overlay
// graph on n nodes. The paper's key caveat for biased selection is keeping
// the network connected ("a minimal number of inter-AS connections
// necessary to keep the network connected"); experiments assert this stays 1.
func ComponentCount(n int, edges []Edge) int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ra, rb := find(e.A), find(e.B)
		if ra != rb {
			parent[ra] = rb
		}
	}
	comps := 0
	for i := range parent {
		if find(i) == i {
			comps++
		}
	}
	return comps
}

// InterASEdgeCount returns the number of edges crossing AS boundaries.
func InterASEdgeCount(edges []Edge, as []int) int {
	n := 0
	for _, e := range edges {
		if as[e.A] != as[e.B] {
			n++
		}
	}
	return n
}

// MeanDegree returns the average vertex degree of the overlay graph.
func MeanDegree(n int, edges []Edge) float64 {
	if n == 0 {
		return 0
	}
	return 2 * float64(len(edges)) / float64(n)
}

// ASHeatmap renders the AS×AS overlay-edge density matrix as ASCII art —
// the textual equivalent of the overlay-topology visualizations in
// Figures 5 and 6: a biased overlay shows a dark diagonal (intra-AS
// clustering), an unbiased one a uniform haze.
func ASHeatmap(edges []Edge, as []int) string {
	maxAS := -1
	for _, a := range as {
		if a > maxAS {
			maxAS = a
		}
	}
	if maxAS < 0 || len(edges) == 0 {
		return "(empty)\n"
	}
	n := maxAS + 1
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	peak := 0
	for _, e := range edges {
		a, b := as[e.A], as[e.B]
		counts[a][b]++
		if a != b {
			counts[b][a]++
		}
		if counts[a][b] > peak {
			peak = counts[a][b]
		}
		if counts[b][a] > peak {
			peak = counts[b][a]
		}
	}
	shades := []byte(" .:-=+*#%@")
	var sb []byte
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			idx := 0
			if peak > 0 {
				idx = counts[i][j] * (len(shades) - 1) / peak
			}
			sb = append(sb, shades[idx], shades[idx])
		}
		sb = append(sb, '\n')
	}
	return string(sb)
}

// DiagonalDominance returns the share of the heatmap's mass on its
// diagonal — a scalar summary of the visual clustering.
func DiagonalDominance(edges []Edge, as []int) float64 {
	if len(edges) == 0 {
		return 0
	}
	diag := 0
	for _, e := range edges {
		if as[e.A] == as[e.B] {
			diag++
		}
	}
	return float64(diag) / float64(len(edges))
}
