package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram for high-volume observations such
// as per-message latencies. Unlike Dist it does not retain samples, so
// observing millions of values costs O(buckets) memory; the price is that
// quantiles are interpolated within bucket bounds rather than exact.
//
// A Histogram is safe for concurrent use. Every mutable field is updated
// atomically — bucket counts and n with plain atomic adds, the float
// accumulators (sum, min, max) with compare-and-swap on their bit
// patterns — so concurrent receive-loop writers never lose observations
// and live scrapes never race. Readers see each field atomically; a
// snapshot taken mid-observation may be ahead by the fields the writer
// has already stored (bounded by the in-flight observations), which is
// the usual monitoring contract.
type Histogram struct {
	bounds []float64     // ascending upper bounds; values > bounds[len-1] land in the overflow bucket
	counts []uint64      // len(bounds)+1, last is overflow; atomic access
	sum    atomic.Uint64 // math.Float64bits
	min    atomic.Uint64 // math.Float64bits
	max    atomic.Uint64 // math.Float64bits
}

// NewHistogram returns a histogram over the given ascending bucket upper
// bounds (an overflow bucket is added implicitly).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// NewLatencyHistogram returns a histogram with exponential bounds suited to
// simulated latencies in milliseconds: 1, 2, 4, … 16384 ms.
func NewLatencyHistogram() *Histogram {
	bounds := make([]float64, 15)
	for i := range bounds {
		bounds[i] = float64(uint64(1) << uint(i))
	}
	return NewHistogram(bounds)
}

// atomicAddFloat adds v to the float64 stored as bits in p.
func atomicAddFloat(p *atomic.Uint64, v float64) {
	for {
		old := p.Load()
		if p.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// atomicMinFloat lowers the float64 in p to v if v is smaller. The fast
// path is a plain load-and-compare: once the running minimum is below v
// no store (and no cache-line contention) happens at all.
func atomicMinFloat(p *atomic.Uint64, v float64) {
	for {
		old := p.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if p.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// atomicMaxFloat raises the float64 in p to v if v is larger.
func atomicMaxFloat(p *atomic.Uint64, v float64) {
	for {
		old := p.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if p.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Observe records one value. The observation count is carried entirely
// by the bucket vector (N sums it on read), so the write path is two
// atomic read-modify-writes plus the min/max fast-path loads.
func (h *Histogram) Observe(v float64) {
	atomic.AddUint64(&h.counts[h.bucket(v)], 1)
	atomicAddFloat(&h.sum, v)
	atomicMinFloat(&h.min, v)
	atomicMaxFloat(&h.max, v)
}

// bucket returns the index of the bucket containing v (binary search).
func (h *Histogram) bucket(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// N reports the number of observations (a sum over the bucket vector).
func (h *Histogram) N() uint64 {
	var n uint64
	for i := range h.counts {
		n += atomic.LoadUint64(&h.counts[i])
	}
	return n
}

// Sum reports the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean reports the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.N()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.N() == 0 {
		return 0
	}
	return math.Float64frombits(h.min.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.N() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// loadCounts copies the bucket counts atomically, returning the copy and
// its total — a self-consistent basis for quantile math even while
// writers are active.
func (h *Histogram) loadCounts() ([]uint64, uint64) {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = atomic.LoadUint64(&h.counts[i])
		total += counts[i]
	}
	return counts, total
}

// Quantile approximates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the target rank and interpolating linearly inside it.
func (h *Histogram) Quantile(q float64) float64 {
	counts, n := h.loadCounts()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	min, max := math.Float64frombits(h.min.Load()), math.Float64frombits(h.max.Load())
	rank := q * float64(n)
	var cum float64
	for i, c := range counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			// Interpolate inside the bucket, clamped to the observed
			// [min, max]: a bucket holding only the global min (or max)
			// must not yield values outside what was ever observed —
			// e.g. every quantile of a single-sample histogram is that
			// sample.
			lo := min
			if i > 0 && h.bounds[i-1] > lo {
				lo = h.bounds[i-1]
			}
			hi := max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if lo > hi {
				lo = hi
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.Max()
}

// Counts returns a copy of the bucket counts (last entry is overflow).
func (h *Histogram) Counts() []uint64 {
	counts, _ := h.loadCounts()
	return counts
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		h.N(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
	return b.String()
}
