package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram for high-volume observations such
// as per-message latencies. Unlike Dist it does not retain samples, so
// observing millions of values costs O(buckets) memory; the price is that
// quantiles are interpolated within bucket bounds rather than exact.
type Histogram struct {
	bounds []float64 // ascending upper bounds; values > bounds[len-1] land in the overflow bucket
	counts []uint64  // len(bounds)+1, last is overflow
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram over the given ascending bucket upper
// bounds (an overflow bucket is added implicitly).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// NewLatencyHistogram returns a histogram with exponential bounds suited to
// simulated latencies in milliseconds: 1, 2, 4, … 16384 ms.
func NewLatencyHistogram() *Histogram {
	bounds := make([]float64, 15)
	for i := range bounds {
		bounds[i] = float64(uint64(1) << uint(i))
	}
	return NewHistogram(bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucket(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// bucket returns the index of the bucket containing v (binary search).
func (h *Histogram) bucket(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// N reports the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Sum reports the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile approximates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the target rank and interpolating linearly inside it.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			// Interpolate inside the bucket, clamped to the observed
			// [min, max]: a bucket holding only the global min (or max)
			// must not yield values outside what was ever observed —
			// e.g. every quantile of a single-sample histogram is that
			// sample.
			lo := h.min
			if i > 0 && h.bounds[i-1] > lo {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if lo > hi {
				lo = hi
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.Max()
}

// Counts returns a copy of the bucket counts (last entry is overflow).
func (h *Histogram) Counts() []uint64 { return append([]uint64(nil), h.counts...) }

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		h.N(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
	return b.String()
}
