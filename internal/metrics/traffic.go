package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ASPair is a directed (source AS, destination AS) pair.
type ASPair struct {
	Src, Dst int
}

// TrafficMatrix accumulates bytes exchanged between AS pairs. It is the
// core locality measurement: the intra-AS fraction of this matrix is the
// number every biased-neighbor-selection experiment in the paper reports.
//
// A TrafficMatrix is safe for concurrent use. Like CounterSet, the cell
// index is an atomic copy-on-write map — the per-message Add is a plain
// map lookup plus atomic adds, and only the first touch of a new AS pair
// takes the write lock and clones the index. This matters because the
// underlay charges every single Send into its Traffic matrix.
type TrafficMatrix struct {
	mu    sync.Mutex // serializes index replacement on first-touch creation
	cells atomic.Pointer[map[ASPair]*atomic.Uint64]
	total atomic.Uint64
	intra atomic.Uint64
}

// NewTrafficMatrix returns an empty matrix.
func NewTrafficMatrix() *TrafficMatrix {
	m := &TrafficMatrix{}
	cells := make(map[ASPair]*atomic.Uint64)
	m.cells.Store(&cells)
	return m
}

// cell returns the accumulator for p, creating it on first use.
func (m *TrafficMatrix) cell(p ASPair) *atomic.Uint64 {
	if c, ok := (*m.cells.Load())[p]; ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := *m.cells.Load()
	if c, ok := cur[p]; ok { // lost the creation race
		return c
	}
	next := make(map[ASPair]*atomic.Uint64, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	c := new(atomic.Uint64)
	next[p] = c
	m.cells.Store(&next)
	return c
}

// Add records n bytes flowing from AS src to AS dst.
func (m *TrafficMatrix) Add(src, dst int, n uint64) {
	m.cell(ASPair{src, dst}).Add(n)
	m.total.Add(n)
	if src == dst {
		m.intra.Add(n)
	}
}

// Total returns all bytes recorded.
func (m *TrafficMatrix) Total() uint64 { return m.total.Load() }

// Intra returns bytes whose source and destination AS coincide.
func (m *TrafficMatrix) Intra() uint64 { return m.intra.Load() }

// Inter returns bytes that crossed an AS boundary.
func (m *TrafficMatrix) Inter() uint64 { return m.total.Load() - m.intra.Load() }

// IntraFraction returns the intra-AS share of traffic in [0,1]
// (0 for an empty matrix).
func (m *TrafficMatrix) IntraFraction() float64 {
	total := m.total.Load()
	if total == 0 {
		return 0
	}
	return float64(m.intra.Load()) / float64(total)
}

// Pair returns the bytes recorded for a specific AS pair.
func (m *TrafficMatrix) Pair(src, dst int) uint64 {
	if c, ok := (*m.cells.Load())[ASPair{src, dst}]; ok {
		return c.Load()
	}
	return 0
}

// Pairs returns all pairs with non-zero traffic, sorted for deterministic
// iteration.
func (m *TrafficMatrix) Pairs() []ASPair {
	cells := *m.cells.Load()
	ps := make([]ASPair, 0, len(cells))
	for p := range cells {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Src != ps[j].Src {
			return ps[i].Src < ps[j].Src
		}
		return ps[i].Dst < ps[j].Dst
	})
	return ps
}

func (m *TrafficMatrix) String() string {
	return fmt.Sprintf("traffic total=%dB intra=%.1f%%", m.Total(), 100*m.IntraFraction())
}

// Conservation checks the bookkeeping invariant intra+inter == total.
// It exists for property tests (which run it on quiescent matrices; with
// writers in flight the cell sum may transiently trail total).
func (m *TrafficMatrix) Conservation() bool {
	var sum uint64
	cells := *m.cells.Load()
	for _, c := range cells {
		sum += c.Load()
	}
	return sum == m.total.Load() && m.intra.Load() <= m.total.Load()
}
