package metrics

import (
	"fmt"
	"sort"
)

// ASPair is a directed (source AS, destination AS) pair.
type ASPair struct {
	Src, Dst int
}

// TrafficMatrix accumulates bytes exchanged between AS pairs. It is the
// core locality measurement: the intra-AS fraction of this matrix is the
// number every biased-neighbor-selection experiment in the paper reports.
type TrafficMatrix struct {
	bytes map[ASPair]uint64
	total uint64
	intra uint64
}

// NewTrafficMatrix returns an empty matrix.
func NewTrafficMatrix() *TrafficMatrix {
	return &TrafficMatrix{bytes: make(map[ASPair]uint64)}
}

// Add records n bytes flowing from AS src to AS dst.
func (m *TrafficMatrix) Add(src, dst int, n uint64) {
	m.bytes[ASPair{src, dst}] += n
	m.total += n
	if src == dst {
		m.intra += n
	}
}

// Total returns all bytes recorded.
func (m *TrafficMatrix) Total() uint64 { return m.total }

// Intra returns bytes whose source and destination AS coincide.
func (m *TrafficMatrix) Intra() uint64 { return m.intra }

// Inter returns bytes that crossed an AS boundary.
func (m *TrafficMatrix) Inter() uint64 { return m.total - m.intra }

// IntraFraction returns the intra-AS share of traffic in [0,1]
// (0 for an empty matrix).
func (m *TrafficMatrix) IntraFraction() float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.intra) / float64(m.total)
}

// Pair returns the bytes recorded for a specific AS pair.
func (m *TrafficMatrix) Pair(src, dst int) uint64 { return m.bytes[ASPair{src, dst}] }

// Pairs returns all pairs with non-zero traffic, sorted for deterministic
// iteration.
func (m *TrafficMatrix) Pairs() []ASPair {
	ps := make([]ASPair, 0, len(m.bytes))
	for p := range m.bytes {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Src != ps[j].Src {
			return ps[i].Src < ps[j].Src
		}
		return ps[i].Dst < ps[j].Dst
	})
	return ps
}

func (m *TrafficMatrix) String() string {
	return fmt.Sprintf("traffic total=%dB intra=%.1f%%", m.total, 100*m.IntraFraction())
}

// Conservation checks the bookkeeping invariant intra+inter == total.
// It exists for property tests.
func (m *TrafficMatrix) Conservation() bool {
	var sum uint64
	for _, b := range m.bytes {
		sum += b
	}
	return sum == m.total && m.intra <= m.total
}
