package metrics

import (
	"math"
	"sync"
	"testing"
)

// The accumulators feeding the real-socket transport's receive loop and
// the live /metrics scraper must tolerate concurrent writers and readers.
// These tests hammer each type from many goroutines while a reader
// snapshots it, and then check the totals are exact: under -race they
// pin the memory model, without it they pin that no increment is lost.

const (
	raceWriters   = 8
	racePerWriter = 10000
)

func TestCounterSetConcurrent(t *testing.T) {
	s := NewCounterSet()
	names := []string{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent scraper
		for {
			select {
			case <-stop:
				return
			default:
				s.Snapshot()
				s.Names()
			}
		}
	}()
	for w := 0; w < raceWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < racePerWriter; i++ {
				s.Get(names[(w+i)%len(names)]).Inc()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	var total uint64
	for _, n := range s.Names() {
		total += s.Value(n)
	}
	if want := uint64(raceWriters * racePerWriter); total != want {
		t.Fatalf("lost increments: total %d want %d", total, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
				h.Quantile(0.95)
				h.Mean()
			}
		}
	}()
	for w := 0; w < raceWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < racePerWriter; i++ {
				h.Observe(float64(1 + (w*racePerWriter+i)%1000))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if want := uint64(raceWriters * racePerWriter); h.N() != want {
		t.Fatalf("lost observations: n %d want %d", h.N(), want)
	}
	var fromBuckets uint64
	for _, c := range h.Counts() {
		fromBuckets += c
	}
	if fromBuckets != h.N() {
		t.Fatalf("bucket sum %d != n %d", fromBuckets, h.N())
	}
	// Every writer observes the same value multiset, so the sum is exact
	// up to float addition order; compare with a generous tolerance.
	var wantSum float64
	for i := 0; i < raceWriters*racePerWriter; i++ {
		wantSum += float64(1 + i%1000)
	}
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum drifted: %g want %g", h.Sum(), wantSum)
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %g/%g, want 1/1000", h.Min(), h.Max())
	}
}

func TestTrafficMatrixConcurrent(t *testing.T) {
	m := NewTrafficMatrix()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				m.Snapshot()
				m.IntraFraction()
			}
		}
	}()
	for w := 0; w < raceWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < racePerWriter; i++ {
				m.Add(w%3, i%3, 10)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if want := uint64(raceWriters * racePerWriter * 10); m.Total() != want {
		t.Fatalf("lost bytes: total %d want %d", m.Total(), want)
	}
	if !m.Conservation() {
		t.Fatal("conservation violated")
	}
}
