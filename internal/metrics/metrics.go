// Package metrics collects the measurements the unap2p experiments report:
// message counters, latency distributions, AS-pair traffic matrices, and
// overlay-clustering statistics used to quantify "locality of traffic".
//
// Counter, CounterSet, Histogram, and TrafficMatrix are safe for
// concurrent use: the simulation writes them from its single kernel
// goroutine, but the real-socket transport (internal/nettransport)
// updates them from its receive loop while telemetry.Serve scrapes them
// live, so every accumulator takes either an atomic or a mutex fast
// path. Dist retains raw samples and stays single-goroutine (it is an
// experiment-side aggregator, never written from a receive loop).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named monotone event counter, safe for concurrent use.
type Counter struct {
	name string
	n    atomic.Uint64
}

// NewCounter returns a counter with the given name.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Add increments the counter by d (d may be > 1 for batched events).
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

func (c *Counter) String() string { return fmt.Sprintf("%s=%d", c.name, c.n.Load()) }

// CounterSet groups named counters, creating them on first use. Reads
// (the per-message Get on the transport send path) go through an atomic
// copy-on-write map and cost the same as a plain map lookup; only the
// first touch of a new name takes the write lock and clones the map.
type CounterSet struct {
	mu sync.Mutex // serializes map replacement on first-touch creation
	m  atomic.Pointer[map[string]*Counter]
}

// NewCounterSet returns an empty set.
func NewCounterSet() *CounterSet {
	s := &CounterSet{}
	m := make(map[string]*Counter)
	s.m.Store(&m)
	return s
}

// Get returns the counter with the given name, creating it at zero.
func (s *CounterSet) Get(name string) *Counter {
	if c, ok := (*s.m.Load())[name]; ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.m.Load()
	if c, ok := cur[name]; ok { // lost the creation race
		return c
	}
	next := make(map[string]*Counter, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	c := NewCounter(name)
	next[name] = c
	s.m.Store(&next)
	return c
}

// Value returns the count for name (zero if never touched).
func (s *CounterSet) Value(name string) uint64 {
	if c, ok := (*s.m.Load())[name]; ok {
		return c.Value()
	}
	return 0
}

// Names returns all counter names in sorted order.
func (s *CounterSet) Names() []string {
	m := *s.m.Load()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dist accumulates a sample distribution with exact quantiles. Experiments
// are small enough (≤ a few million samples) that keeping the samples and
// sorting on demand is both simplest and exact. Unlike the fixed-footprint
// accumulators above, Dist is not goroutine-safe.
type Dist struct {
	samples []float64
	sorted  bool
	sum     float64
}

// NewDist returns an empty distribution.
func NewDist() *Dist { return &Dist{} }

// Observe records one sample.
func (d *Dist) Observe(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
	d.sum += v
}

// N reports the number of samples.
func (d *Dist) N() int { return len(d.samples) }

// Sum reports the sum of all samples.
func (d *Dist) Sum() float64 { return d.sum }

// Mean reports the sample mean (0 for an empty distribution).
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	return d.sum / float64(len(d.samples))
}

// Stddev reports the population standard deviation.
func (d *Dist) Stddev() float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	m := d.Mean()
	var ss float64
	for _, v := range d.samples {
		dv := v - m
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(n))
}

func (d *Dist) sortSamples() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using the nearest-rank
// method; q=0.95 gives the 95th percentile used in transit billing.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sortSamples()
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[len(d.samples)-1]
	}
	rank := int(math.Ceil(q*float64(len(d.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return d.samples[rank]
}

// Min returns the smallest sample (0 if empty).
func (d *Dist) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sortSamples()
	return d.samples[0]
}

// Max returns the largest sample (0 if empty).
func (d *Dist) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sortSamples()
	return d.samples[len(d.samples)-1]
}

func (d *Dist) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		d.N(), d.Mean(), d.Quantile(0.5), d.Quantile(0.95), d.Max())
}
