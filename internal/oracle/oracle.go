// Package oracle implements the ISP-hosted oracle of Aggarwal, Feldmann
// and Scheideler ("Can ISPs and P2P users cooperate for improved
// performance?", CCR 2007 — [1] in the paper): a service run by the ISP
// that, given a client and a list of candidate peers, returns the list
// ranked by proximity in the ISP metric space (AS-hop distance, same-AS
// first). P2P clients consult it when choosing neighbors (biased neighbor
// selection) and optionally again when choosing a download source among
// QueryHits (the file-exchange stage that raises intra-AS transfers from
// ~10% to ~40%).
package oracle

import (
	"sort"

	"unap2p/internal/underlay"
)

// Oracle is the ISP component. One instance serves all ASes in simulation;
// conceptually each ISP deploys its own, and ranking only needs the
// AS-hop distances the ISP already learns from BGP.
type Oracle struct {
	net *underlay.Network
	// MaxList caps the length of the ranked list the oracle returns
	// (the "list size 100 / 1000" knob in the testlab study). Zero means
	// unlimited.
	MaxList int
	// Down simulates an oracle outage: Rank returns the input order
	// unchanged, so clients degrade to unbiased behaviour (failure
	// injection for §6's ISP-cooperation caveat).
	Down bool
	// Queries counts ranking requests served.
	Queries uint64
}

// New returns an oracle over the given underlay.
func New(net *underlay.Network) *Oracle { return &Oracle{net: net} }

// Rank returns candidates ordered by increasing AS-hop distance from the
// client (same AS first), preserving the input order among equals so
// results are deterministic. Unreachable candidates sort last. The
// returned slice is newly allocated; the input is not modified.
func (o *Oracle) Rank(client *underlay.Host, candidates []underlay.HostID) []underlay.HostID {
	o.Queries++
	out := append([]underlay.HostID(nil), candidates...)
	if !o.Down {
		key := func(id underlay.HostID) int {
			h := o.net.Host(id)
			d := o.net.ASHops(client.AS.ID, h.AS.ID)
			if d < 0 {
				return 1 << 30
			}
			return d
		}
		sort.SliceStable(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	}
	if o.MaxList > 0 && len(out) > o.MaxList {
		out = out[:o.MaxList]
	}
	return out
}

// Best returns the closest candidate (or false when candidates is empty).
func (o *Oracle) Best(client *underlay.Host, candidates []underlay.HostID) (underlay.HostID, bool) {
	if len(candidates) == 0 {
		return 0, false
	}
	return o.Rank(client, candidates)[0], true
}

// SameAS filters candidates to those sharing the client's AS — the
// strictest locality bias.
func (o *Oracle) SameAS(client *underlay.Host, candidates []underlay.HostID) []underlay.HostID {
	var out []underlay.HostID
	for _, id := range candidates {
		if o.net.Host(id).AS.ID == client.AS.ID {
			out = append(out, id)
		}
	}
	return out
}
