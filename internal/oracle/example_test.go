package oracle_test

import (
	"fmt"

	"unap2p/internal/oracle"
	"unap2p/internal/topology"
	"unap2p/internal/underlay"
)

// The oracle ranks a client's candidate list by AS-hop distance: same-ISP
// peers first — biased neighbor selection's core primitive.
func ExampleOracle_Rank() {
	net := topology.Star(3, topology.DefaultConfig()) // hub + 2 leaf ISPs
	local := net.AddHost(net.AS(1), 2)
	nearby := net.AddHost(net.AS(1), 2)
	far := net.AddHost(net.AS(2), 2)

	o := oracle.New(net)
	ranked := o.Rank(local, []underlay.HostID{far.ID, nearby.ID})
	fmt.Println("first pick in same AS:", net.Host(ranked[0]).AS.ID == local.AS.ID)
	fmt.Println("queries served:", o.Queries)
	// Output:
	// first pick in same AS: true
	// queries served: 1
}
