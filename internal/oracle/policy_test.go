package oracle

import (
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// policyNet: client stub C with a peering link to P and a transit path to
// T's other customer X (both 1 AS hop under plain ranking... P is 1 hop
// via peering; X is 2 hops via transit core).
func policyNet() (*underlay.Network, *underlay.Host, *underlay.Host, *underlay.Host) {
	net := underlay.New()
	t0 := net.AddAS(underlay.TransitISP, 2)
	c := net.AddAS(underlay.LocalISP, 2)
	p := net.AddAS(underlay.LocalISP, 2)
	x := net.AddAS(underlay.LocalISP, 2)
	net.ConnectTransit(c, t0, 10)
	net.ConnectTransit(p, t0, 10)
	net.ConnectTransit(x, t0, 10)
	net.ConnectPeering(c, p, 3)
	hc := net.AddHost(c, 1)
	hp := net.AddHost(p, 1)
	hx := net.AddHost(x, 1)
	return net, hc, hp, hx
}

func TestPDistance(t *testing.T) {
	net, hc, hp, hx := policyNet()
	o := New(net)
	pol := DefaultPolicy()
	if d := o.PDistance(pol, hc.AS.ID, hc.AS.ID); d != 0 {
		t.Fatalf("same-AS pDistance = %v", d)
	}
	// C→P: one peering hop = 1.
	if d := o.PDistance(pol, hc.AS.ID, hp.AS.ID); d != 1 {
		t.Fatalf("peered pDistance = %v, want 1", d)
	}
	// C→X: two transit hops = 20.
	if d := o.PDistance(pol, hc.AS.ID, hx.AS.ID); d != 20 {
		t.Fatalf("transit pDistance = %v, want 20", d)
	}
	// Unreachable.
	iso := net.AddAS(underlay.LocalISP, 2)
	if d := o.PDistance(pol, hc.AS.ID, iso.ID); d != pol.UnreachableCost {
		t.Fatalf("unreachable pDistance = %v", d)
	}
}

func TestRankPolicyPrefersPeering(t *testing.T) {
	net, hc, hp, hx := policyNet()
	o := New(net)
	// Plain AS-hop ranking: P (1 hop) before X (2 hops) — same order
	// here, so craft the interesting case: make X reachable in 1 hop via
	// a *transit* link directly from C's AS.
	net.ConnectTransit(hc.AS, hx.AS, 5) // C buys transit from X's AS
	ranked := o.Rank(hc, []underlay.HostID{hx.ID, hp.ID})
	// Both are now 1 AS hop; plain ranking keeps input order (X first).
	if ranked[0] != hx.ID {
		t.Fatalf("plain rank = %v, want X first (stable ties)", ranked)
	}
	// Policy ranking puts the peered P first: peering(1) < transit(10).
	polRanked := o.RankPolicy(DefaultPolicy(), hc, []underlay.HostID{hx.ID, hp.ID})
	if polRanked[0] != hp.ID {
		t.Fatalf("policy rank = %v, want peered P first", polRanked)
	}
}

func TestRankPolicyDownAndMaxList(t *testing.T) {
	net, hc, hp, hx := policyNet()
	o := New(net)
	o.Down = true
	in := []underlay.HostID{hx.ID, hp.ID}
	out := o.RankPolicy(DefaultPolicy(), hc, in)
	if out[0] != hx.ID || out[1] != hp.ID {
		t.Fatal("down oracle must preserve input order")
	}
	o.Down = false
	o.MaxList = 1
	if got := o.RankPolicy(DefaultPolicy(), hc, in); len(got) != 1 {
		t.Fatalf("MaxList ignored: %v", got)
	}
}

func TestRankWithBehaviours(t *testing.T) {
	net, hc, _, _ := policyNet()
	// Add same-AS peers so proximity ordering is meaningful.
	local := net.AddHost(hc.AS, 1)
	far := net.Hosts()[2] // hx
	o := New(net)
	cands := []underlay.HostID{far.ID, local.ID}

	honest := o.RankWith(Honest, hc, cands)
	if honest[0] != local.ID {
		t.Fatalf("honest rank = %v, want local first", honest)
	}
	malicious := o.RankWith(Malicious, hc, cands)
	if malicious[0] != far.ID {
		t.Fatalf("malicious rank = %v, want far first", malicious)
	}
	selfServing := o.RankWith(SelfServing, hc, cands)
	if selfServing[0] != local.ID {
		t.Fatalf("self-serving rank = %v, want local (cheapest) first", selfServing)
	}
}

func TestBehavioursCountQueries(t *testing.T) {
	net, hc, hp, _ := policyNet()
	o := New(net)
	o.RankWith(Honest, hc, []underlay.HostID{hp.ID})
	o.RankWith(SelfServing, hc, []underlay.HostID{hp.ID})
	o.RankWith(Malicious, hc, []underlay.HostID{hp.ID})
	if o.Queries != 3 {
		t.Fatalf("queries = %d, want 3", o.Queries)
	}
}

func TestPolicyDeterminism(t *testing.T) {
	net, hc, hp, hx := policyNet()
	o := New(net)
	_ = sim.NewSource(1) // parity with other tests; ranking needs no RNG
	a := o.RankPolicy(DefaultPolicy(), hc, []underlay.HostID{hx.ID, hp.ID, hc.ID})
	b := o.RankPolicy(DefaultPolicy(), hc, []underlay.HostID{hx.ID, hp.ID, hc.ID})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("policy ranking not deterministic")
		}
	}
}
