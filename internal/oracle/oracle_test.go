package oracle

import (
	"testing"
	"testing/quick"

	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/underlay"
)

// buildNet: star of 1 hub + 4 leaves, 3 hosts per leaf AS.
func buildNet() *underlay.Network {
	net := topology.Star(5, topology.DefaultConfig())
	r := sim.NewSource(1).Stream("oracle-place")
	topology.PlaceHosts(net, 3, false, 1, 2, r)
	return net
}

func ids(hosts []*underlay.Host) []underlay.HostID {
	out := make([]underlay.HostID, len(hosts))
	for i, h := range hosts {
		out[i] = h.ID
	}
	return out
}

func TestRankSameASFirst(t *testing.T) {
	net := buildNet()
	o := New(net)
	client := net.Hosts()[0]
	ranked := o.Rank(client, ids(net.Hosts()))
	if len(ranked) != net.NumHosts() {
		t.Fatalf("ranked %d of %d", len(ranked), net.NumHosts())
	}
	// The first len(sameAS) entries must all share the client's AS.
	sameAS := len(net.HostsInAS(client.AS.ID))
	for i := 0; i < sameAS; i++ {
		if net.Host(ranked[i]).AS.ID != client.AS.ID {
			t.Fatalf("rank %d host is from AS%d, want client AS%d",
				i, net.Host(ranked[i]).AS.ID, client.AS.ID)
		}
	}
	// And distances must be nondecreasing.
	prev := -1
	for _, id := range ranked {
		d := net.ASHops(client.AS.ID, net.Host(id).AS.ID)
		if d < prev {
			t.Fatalf("ranking not monotone: %d after %d", d, prev)
		}
		prev = d
	}
	if o.Queries != 1 {
		t.Fatalf("queries = %d", o.Queries)
	}
}

func TestRankStableAmongEquals(t *testing.T) {
	net := buildNet()
	o := New(net)
	client := net.Hosts()[0]
	// All hosts of another AS are equidistant; their relative input order
	// must be preserved.
	other := net.HostsInAS(net.Hosts()[5].AS.ID)
	in := []underlay.HostID{other[2].ID, other[0].ID, other[1].ID}
	out := o.Rank(client, in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("order changed among equals: %v → %v", in, out)
		}
	}
}

func TestRankDoesNotMutateInput(t *testing.T) {
	net := buildNet()
	o := New(net)
	client := net.Hosts()[0]
	in := ids(net.Hosts())
	orig := append([]underlay.HostID(nil), in...)
	o.Rank(client, in)
	for i := range in {
		if in[i] != orig[i] {
			t.Fatal("Rank mutated its input")
		}
	}
}

func TestMaxList(t *testing.T) {
	net := buildNet()
	o := New(net)
	o.MaxList = 2
	out := o.Rank(net.Hosts()[0], ids(net.Hosts()))
	if len(out) != 2 {
		t.Fatalf("MaxList ignored: got %d", len(out))
	}
}

func TestOracleDownFallsBackToInputOrder(t *testing.T) {
	net := buildNet()
	o := New(net)
	o.Down = true
	client := net.Hosts()[0]
	in := ids(net.Hosts())
	// Put a far host first; a live oracle would move it back.
	in[0], in[len(in)-1] = in[len(in)-1], in[0]
	out := o.Rank(client, in)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("down oracle must preserve input order")
		}
	}
}

func TestBest(t *testing.T) {
	net := buildNet()
	o := New(net)
	client := net.Hosts()[0]
	best, ok := o.Best(client, ids(net.Hosts()[1:]))
	if !ok {
		t.Fatal("Best found nothing")
	}
	if net.Host(best).AS.ID != client.AS.ID {
		t.Fatalf("best is AS%d, want client's AS%d", net.Host(best).AS.ID, client.AS.ID)
	}
	if _, ok := o.Best(client, nil); ok {
		t.Fatal("Best of empty should be false")
	}
}

func TestSameAS(t *testing.T) {
	net := buildNet()
	o := New(net)
	client := net.Hosts()[0]
	local := o.SameAS(client, ids(net.Hosts()))
	if len(local) != 3 {
		t.Fatalf("SameAS = %d hosts, want 3", len(local))
	}
	for _, id := range local {
		if net.Host(id).AS.ID != client.AS.ID {
			t.Fatal("SameAS returned foreign host")
		}
	}
}

// Property: the oracle's ranking is a permutation of its input (modulo
// MaxList truncation).
func TestQuickRankIsPermutation(t *testing.T) {
	net := buildNet()
	o := New(net)
	all := ids(net.Hosts())
	f := func(pick []uint8, clientRaw uint8) bool {
		client := net.Hosts()[int(clientRaw)%net.NumHosts()]
		var in []underlay.HostID
		for _, p := range pick {
			in = append(in, all[int(p)%len(all)])
		}
		out := o.Rank(client, in)
		if len(out) != len(in) {
			return false
		}
		counts := map[underlay.HostID]int{}
		for _, id := range in {
			counts[id]++
		}
		for _, id := range out {
			counts[id]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
