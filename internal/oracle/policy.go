package oracle

import (
	"sort"

	"unap2p/internal/underlay"
)

// Policy weights let the ISP express traffic-engineering preferences in
// its ranking, beyond plain AS-hop distance — the P4P idea (Xie et al.,
// [29] in the paper): the provider portal ranks candidates by a "pDistance"
// that encodes what each path actually costs the ISP.
type Policy struct {
	// SameASCost is the pDistance of staying inside the AS (usually 0).
	SameASCost float64
	// PeeringHopCost is the pDistance of each settlement-free peering hop.
	PeeringHopCost float64
	// TransitHopCost is the pDistance of each paid transit hop — the
	// expensive resource the ISP wants off-loaded.
	TransitHopCost float64
	// UnreachableCost ranks unreachable candidates last.
	UnreachableCost float64
}

// DefaultPolicy charges transit hops 10× a peering hop: the Figure 2
// economics as ranking weights.
func DefaultPolicy() Policy {
	return Policy{SameASCost: 0, PeeringHopCost: 1, TransitHopCost: 10, UnreachableCost: 1e9}
}

// PDistance computes the policy cost of reaching dst's AS from src's AS:
// the sum of per-hop costs along the routed path.
func (o *Oracle) PDistance(p Policy, srcAS, dstAS int) float64 {
	if srcAS == dstAS {
		return p.SameASCost
	}
	path := o.net.ASPath(srcAS, dstAS)
	if path == nil {
		return p.UnreachableCost
	}
	var cost float64
	for i := 0; i+1 < len(path); i++ {
		as := o.net.AS(path[i])
		for _, l := range as.Links() {
			if l.Other(as.ID).ID == path[i+1] {
				if l.Kind == underlay.Transit {
					cost += p.TransitHopCost
				} else {
					cost += p.PeeringHopCost
				}
				break
			}
		}
	}
	return cost
}

// RankPolicy orders candidates by ascending pDistance from the client,
// preserving input order among equals. Unlike Rank (plain AS hops), a
// peered neighbor AS outranks an equally-near AS reached over transit.
func (o *Oracle) RankPolicy(p Policy, client *underlay.Host, candidates []underlay.HostID) []underlay.HostID {
	o.Queries++
	out := append([]underlay.HostID(nil), candidates...)
	if o.Down {
		return out
	}
	cost := make(map[underlay.HostID]float64, len(out))
	for _, id := range out {
		cost[id] = o.PDistance(p, client.AS.ID, o.net.Host(id).AS.ID)
	}
	sort.SliceStable(out, func(i, j int) bool { return cost[out[i]] < cost[out[j]] })
	if o.MaxList > 0 && len(out) > o.MaxList {
		out = out[:o.MaxList]
	}
	return out
}

// Behaviour models the trust problem of §6 ("ISP Internal Information"):
// clients cannot verify the oracle's answers, so a self-interested or
// compromised oracle can rank against the user's interest.
type Behaviour int

const (
	// Honest ranks by real proximity.
	Honest Behaviour = iota
	// SelfServing ranks to minimize the ISP's cost even when a farther
	// (for the user) peer results — it uses pDistance with extreme
	// transit weights regardless of user latency.
	SelfServing
	// Malicious inverts the ranking: the worst candidates first. A client
	// that blindly trusts it systematically picks the most distant peers.
	Malicious
)

// RankWith applies a behaviour. Honest == Rank; SelfServing == RankPolicy
// with transit-punishing weights; Malicious reverses the honest ranking.
func (o *Oracle) RankWith(b Behaviour, client *underlay.Host, candidates []underlay.HostID) []underlay.HostID {
	switch b {
	case SelfServing:
		return o.RankPolicy(Policy{PeeringHopCost: 0.1, TransitHopCost: 100, UnreachableCost: 1e9},
			client, candidates)
	case Malicious:
		ranked := o.Rank(client, candidates)
		for i, j := 0, len(ranked)-1; i < j; i, j = i+1, j-1 {
			ranked[i], ranked[j] = ranked[j], ranked[i]
		}
		return ranked
	default:
		return o.Rank(client, candidates)
	}
}
