// Package livenode is the per-process node runtime behind cmd/unapnode:
// it boots a nettransport.Net, joins a cluster through the hello/welcome
// handshake, runs the resilience failure detector against wall time, and
// hosts a compact live engine for one overlay (Kademlia, Chord or
// Gnutella).
//
// The live engines are deliberately not the simulation overlays. The sim
// packages hold a global view — a lookup walks other nodes' in-memory
// routing tables directly, which is exactly what a real deployment cannot
// do. Here every node only sees its own state, and every hop is a real
// datagram exchange through the nettransport RPC vocabulary
// (kad:find_node, chord:find_succ, gnu:query). What makes the engines
// compact is the keyspace convention below: a node's overlay key is a
// fixed hash of its cluster id, so any process can compute any member's
// key — and therefore the ground truth of any lookup — from the address
// book alone, with no key-exchange protocol. That is what lets an
// integration test assert a success rate instead of just "no crash".
package livenode

import (
	"sort"

	"unap2p/internal/underlay"
)

// NodeKey maps a cluster host id onto the 64-bit overlay keyspace with a
// splitmix64-style finalizer: deterministic, well spread, and computable
// by every process independently.
func NodeKey(id underlay.HostID) uint64 {
	return mix64(uint64(uint32(id)) + 0x9e3779b97f4a7c15)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// xorDist is the Kademlia metric.
func xorDist(a, b uint64) uint64 { return a ^ b }

// ClosestXor returns up to k member ids sorted by XOR distance of their
// NodeKey to target — the Kademlia notion of "closest".
func ClosestXor(members []underlay.HostID, target uint64, k int) []underlay.HostID {
	out := append([]underlay.HostID(nil), members...)
	sort.Slice(out, func(i, j int) bool {
		di, dj := xorDist(NodeKey(out[i]), target), xorDist(NodeKey(out[j]), target)
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// RingSuccessor returns the member owning target on the Chord ring: the
// member whose NodeKey is the smallest key ≥ target, wrapping to the
// smallest key overall. False when members is empty.
func RingSuccessor(members []underlay.HostID, target uint64) (underlay.HostID, bool) {
	var best, wrap underlay.HostID
	var bestKey, wrapKey uint64
	haveBest, haveWrap := false, false
	for _, id := range members {
		k := NodeKey(id)
		if k >= target && (!haveBest || k < bestKey || (k == bestKey && id < best)) {
			best, bestKey, haveBest = id, k, true
		}
		if !haveWrap || k < wrapKey || (k == wrapKey && id < wrap) {
			wrap, wrapKey, haveWrap = id, k, true
		}
	}
	if haveBest {
		return best, true
	}
	if haveWrap {
		return wrap, true
	}
	return 0, false
}

// inArc reports whether key lies in the half-open ring arc (from, to].
func inArc(key, from, to uint64) bool {
	if from < to {
		return key > from && key <= to
	}
	// Arc wraps through zero (or from == to: the full ring).
	return key > from || key <= to
}
