package livenode

import (
	"net"
	"strings"
	"testing"
	"time"

	"unap2p/internal/underlay"
)

// requireSockets skips the test with a reason when the environment
// forbids binding localhost UDP sockets (restricted sandboxes), instead
// of failing every live test with an opaque bind error.
func requireSockets(t *testing.T) {
	t.Helper()
	c, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("environment forbids UDP sockets: %v", err)
	}
	c.Close()
}

// waitBudget derives a polling deadline from the test's own -timeout
// budget (minus grace for teardown), falling back to def when none is
// set — bounded waits without a magic constant racing the harness.
func waitBudget(t *testing.T, def time.Duration) time.Time {
	t.Helper()
	if d, ok := t.Deadline(); ok {
		if budget := time.Until(d) - 5*time.Second; budget > 0 && budget < def {
			return time.Now().Add(budget)
		}
	}
	return time.Now().Add(def)
}

// bootCluster starts n nodes of one overlay in this process on ephemeral
// localhost ports, joins them all through node 0, and waits until every
// address book holds the full membership.
func bootCluster(t *testing.T, overlay string, n int) []*Node {
	t.Helper()
	requireSockets(t)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := StartRetry(Config{
			ID:           underlay.HostID(i),
			Overlay:      overlay,
			PingInterval: 100 * time.Millisecond,
			Timeout:      150 * time.Millisecond,
			Logf:         t.Logf,
		}, 5)
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
		if i > 0 {
			if err := node.Join(nodes[0].Net().LocalAddr().String()); err != nil {
				t.Fatalf("join node %d: %v", i, err)
			}
		}
	}
	awaitCluster(t, "full address books", func() bool {
		for _, node := range nodes {
			if node.Peers() != n {
				return false
			}
		}
		return true
	})
	return nodes
}

func awaitCluster(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := waitBudget(t, 10*time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterLookups is the in-process half of the ISSUE acceptance
// criterion: for each overlay, a 5-node cluster must complete ≥95% of
// verified lookups. (The same floor is enforced across OS processes by
// internal/integration's net-smoke test.)
func TestClusterLookups(t *testing.T) {
	const clusterSize, lookups = 5, 40
	for _, overlay := range []string{"kademlia", "chord", "gnutella"} {
		t.Run(overlay, func(t *testing.T) {
			t.Parallel()
			nodes := bootCluster(t, overlay, clusterSize)
			ok, total := 0, 0
			for _, node := range nodes {
				ok += node.RunLookups(lookups)
				total += lookups
			}
			if floor := total * 95 / 100; ok < floor {
				t.Fatalf("%s: %d/%d lookups verified, floor %d", overlay, ok, total, floor)
			}
			t.Logf("%s: %d/%d lookups verified", overlay, ok, total)
		})
	}
}

// TestClusterDetectsKill boots a kademlia cluster, kills one node, and
// requires every survivor's failure detector to suspect and then evict
// it — the real-socket version of the chaos-harness eviction test, with
// actual missed datagrams standing in for injected faults.
func TestClusterDetectsKill(t *testing.T) {
	nodes := bootCluster(t, "kademlia", 4)
	victim := nodes[len(nodes)-1]
	victimID := victim.Net().Self()

	// Detectors need at least one ping round against the live victim so
	// the watches exist before the kill.
	awaitCluster(t, "watches established", func() bool {
		for _, node := range nodes[:len(nodes)-1] {
			if node.Detector().Counters().Get("ping").Value() == 0 {
				return false
			}
		}
		return true
	})
	victim.Close()

	awaitCluster(t, "survivors evict the victim", func() bool {
		for _, node := range nodes[:len(nodes)-1] {
			if node.Detector().Counters().Get("evict").Value() == 0 {
				return false
			}
		}
		return true
	})
	for i, node := range nodes[:len(nodes)-1] {
		if node.Detector().Counters().Get("suspect").Value() == 0 {
			t.Errorf("node %d evicted without suspecting first", i)
		}
		if !node.Engine().(*kademlia).c.Dead(victimID) {
			t.Errorf("node %d: healer did not mark %d dead", i, victimID)
		}
		if _, still := node.Net().Book().Get(victimID); still {
			t.Errorf("node %d: victim still in the address book", i)
		}
		// The survivors' overlay must keep answering lookups.
		if ok := node.RunLookups(10); ok < 9 {
			t.Errorf("node %d: only %d/10 lookups verified after eviction", i, ok)
		}
	}
}

// TestClusterMetricsEndpoint boots one node with a live /metrics port
// and checks the resilience counters are exposed in Prometheus format.
func TestClusterMetricsEndpoint(t *testing.T) {
	nodes := bootCluster(t, "chord", 3)
	node, err := StartRetry(Config{
		ID:           7,
		Overlay:      "chord",
		MetricsAddr:  "127.0.0.1:0",
		PingInterval: 100 * time.Millisecond,
		Timeout:      150 * time.Millisecond,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	if err := node.Join(nodes[0].Net().LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	awaitCluster(t, "pings flowing", func() bool {
		return node.Detector().Counters().Get("ping").Value() > 0
	})

	snap := node.Registry().Snapshot()
	if snap.Counters["resilience:ping"] == 0 {
		t.Fatalf("snapshot has no resilience:ping counter: %v", snap.Counters)
	}
	if snap.Gauges["peers"] != 4 {
		t.Fatalf("peers gauge = %v, want 4", snap.Gauges["peers"])
	}
	text := snap.PrometheusText()
	for _, series := range []string{"unap2p_resilience_ping_total", "unap2p_peers", "unap2p_rtt_ms_bucket"} {
		if !strings.Contains(text, series) {
			t.Fatalf("prometheus text missing %s:\n%.400s", series, text)
		}
	}
	if node.MetricsAddr() == "" {
		t.Fatal("MetricsAddr empty with metrics enabled")
	}
}

func TestNodeRejectsUnknownOverlay(t *testing.T) {
	requireSockets(t)
	if _, err := Start(Config{ID: 0, Overlay: "pastry"}); err == nil {
		t.Fatal("Start accepted an unknown overlay")
	}
	if _, err := Start(Config{ID: 0, Overlay: "kademlia", SuspectAfter: 6, EvictAfter: 3}); err == nil {
		t.Fatal("Start accepted EvictAfter < SuspectAfter")
	}
}

func TestKeyHelpers(t *testing.T) {
	members := []underlay.HostID{0, 1, 2, 3, 4}
	// ClosestXor(…, key(id), 1) must return id itself.
	for _, id := range members {
		if got := ClosestXor(members, NodeKey(id), 1)[0]; got != id {
			t.Fatalf("ClosestXor(key(%d)) = %d", id, got)
		}
	}
	// RingSuccessor at a member's exact key is that member.
	for _, id := range members {
		got, ok := RingSuccessor(members, NodeKey(id))
		if !ok || got != id {
			t.Fatalf("RingSuccessor(key(%d)) = %d, %v", id, got, ok)
		}
	}
	// Past the largest key the ring wraps to the smallest.
	var maxID, minID underlay.HostID
	for _, id := range members {
		if NodeKey(id) > NodeKey(maxID) {
			maxID = id
		}
		if NodeKey(id) < NodeKey(minID) {
			minID = id
		}
	}
	if got, _ := RingSuccessor(members, NodeKey(maxID)+1); got != minID {
		t.Fatalf("wrap successor = %d, want %d", got, minID)
	}
	// Keys are distinct across a wide id range (the convention every
	// engine relies on).
	seen := map[uint64]underlay.HostID{}
	for id := underlay.HostID(0); id < 10000; id++ {
		k := NodeKey(id)
		if prev, dup := seen[k]; dup {
			t.Fatalf("NodeKey collision: ids %d and %d", prev, id)
		}
		seen[k] = id
	}
}
