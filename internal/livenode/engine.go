package livenode

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"unap2p/internal/metrics"
	"unap2p/internal/nettransport"
	"unap2p/internal/resilience"
	"unap2p/internal/underlay"
)

// Engine is one overlay protocol running live on a node: it installs its
// RPC handlers on the node's Net, answers queries from its own local
// view only, and repairs that view when the failure detector declares a
// peer dead (the resilience.Healer half).
type Engine interface {
	resilience.Healer
	// Name is the overlay's flag spelling: "kademlia", "chord", "gnutella".
	Name() string
	// Lookup resolves target through the overlay's own protocol — real
	// RPC hops, no global view — and reports the resolved member plus
	// whether it matches the ground truth computable from the node's
	// current membership (see NodeKey). A false verdict means the overlay
	// routed wrong or lost the race with membership change, not that the
	// call crashed.
	Lookup(target uint64) (underlay.HostID, bool)
}

// NewEngine builds the named engine on core. Unknown names return nil.
func NewEngine(name string, core *Core) Engine {
	switch name {
	case "kademlia":
		return newKademlia(core)
	case "chord":
		return newChord(core)
	case "gnutella":
		return newGnutella(core)
	}
	return nil
}

// Core is the node-local state every engine shares: the socket, the
// address book as the membership plane, and the eviction ledger. The
// book alone is not authoritative — a stale frame from an evicted peer
// would re-teach its address — so Core keeps its own dead set and
// members() filters through it.
type Core struct {
	Net  *nettransport.Net
	Self underlay.HostID
	Msgs *metrics.CounterSet

	mu      sync.Mutex
	dead    map[underlay.HostID]bool
	suspect map[underlay.HostID]bool
}

// NewCore wraps a Net for engine use.
func NewCore(n *nettransport.Net) *Core {
	return &Core{
		Net:     n,
		Self:    n.Self(),
		Msgs:    metrics.NewCounterSet(),
		dead:    make(map[underlay.HostID]bool),
		suspect: make(map[underlay.HostID]bool),
	}
}

// members returns the current membership view: every address-book id
// (self included — nodes hold their own entry) minus evicted peers.
func (c *Core) members() []underlay.HostID {
	ids := c.Net.Book().IDs()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := ids[:0]
	for _, id := range ids {
		if !c.dead[id] {
			out = append(out, id)
		}
	}
	return out
}

// Suspect implements the advisory half of resilience.Healer: the peer is
// flagged but keeps answering routing queries — suspicion can be
// recanted.
func (c *Core) Suspect(id underlay.HostID) {
	c.mu.Lock()
	c.suspect[id] = true
	c.mu.Unlock()
	c.Msgs.Get("heal_suspect").Inc()
}

// Recover recants a suspicion (wired to Detector.OnRecover).
func (c *Core) Recover(id underlay.HostID) {
	c.mu.Lock()
	delete(c.suspect, id)
	c.mu.Unlock()
	c.Msgs.Get("heal_recover").Inc()
}

// Evict implements the terminal half of resilience.Healer: the peer
// leaves the membership view permanently and its address is dropped.
func (c *Core) Evict(id underlay.HostID) {
	c.mu.Lock()
	c.dead[id] = true
	delete(c.suspect, id)
	c.mu.Unlock()
	c.Net.Book().Remove(id)
	c.Msgs.Get("heal_evict").Inc()
}

// Dead reports whether id has been evicted.
func (c *Core) Dead(id underlay.HostID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead[id]
}

func u64(p []byte) (uint64, bool) {
	if len(p) < 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(p), true
}

// --- Kademlia ---

const (
	kadK         = 8  // closest-set width returned per find_node
	kadMaxProbes = 16 // iterative-lookup query budget
)

// kademlia is the live Kademlia engine: iterative find_node lookups over
// the XOR metric. A queried node answers with a mini address book of the
// k closest members it knows, so the querier learns addresses as the
// lookup converges — the live analogue of learning contacts from
// FIND_NODE replies.
type kademlia struct{ c *Core }

func newKademlia(c *Core) *kademlia {
	e := &kademlia{c: c}
	c.Net.Handle("kad:find_node", func(from underlay.HostID, payload []byte) []byte {
		target, ok := u64(payload)
		if !ok {
			return nil
		}
		e.c.Msgs.Get("kad_served").Inc()
		closest := ClosestXor(e.c.members(), target, kadK)
		return e.c.Net.Book().EncodeIDs(closest)
	})
	return e
}

func (e *kademlia) Name() string               { return "kademlia" }
func (e *kademlia) Suspect(id underlay.HostID) { e.c.Suspect(id) }
func (e *kademlia) Evict(id underlay.HostID)   { e.c.Evict(id) }

func (e *kademlia) Lookup(target uint64) (underlay.HostID, bool) {
	e.c.Msgs.Get("kad_lookup").Inc()
	members := e.c.members()
	if len(members) == 0 {
		return 0, false
	}
	want := ClosestXor(members, target, 1)[0]

	var key [8]byte
	binary.BigEndian.PutUint64(key[:], target)
	// Iterative deepening: always query the closest not-yet-queried
	// candidate, merging every reply's contacts into the candidate set,
	// until the frontier is exhausted or the probe budget runs out.
	candidates := append([]underlay.HostID(nil), members...)
	queried := map[underlay.HostID]bool{e.c.Self: true}
	for probes := 0; probes < kadMaxProbes; probes++ {
		var next underlay.HostID = -1
		for _, id := range ClosestXor(candidates, target, len(candidates)) {
			if !queried[id] && !e.c.Dead(id) {
				next = id
				break
			}
		}
		if next < 0 {
			break
		}
		queried[next] = true
		resp, err := e.c.Net.Call(next, "kad:find_node", key[:])
		if err != nil {
			e.c.Msgs.Get("kad_rpc_fail").Inc()
			continue
		}
		peers, err := nettransport.DecodePeers(resp)
		if err != nil {
			e.c.Msgs.Get("kad_bad_resp").Inc()
			continue
		}
		for _, p := range peers {
			if e.c.Dead(p.ID) {
				continue
			}
			e.c.Net.Book().Set(p.ID, p.Addr)
			candidates = append(candidates, p.ID)
		}
	}
	got := ClosestXor(dedup(candidates), target, 1)[0]
	if got == want {
		e.c.Msgs.Get("kad_lookup_ok").Inc()
		return got, true
	}
	e.c.Msgs.Get("kad_lookup_fail").Inc()
	return got, false
}

func dedup(ids []underlay.HostID) []underlay.HostID {
	seen := make(map[underlay.HostID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// --- Chord ---

const chordMaxHops = 32

// chord is the live Chord engine: a find-successor walk on the NodeKey
// ring. Each hop asks one node, which answers either "done, the
// successor is X" (target in its successor arc) or "ask Y next" (its
// closest preceding member). Reply entries travel as mini address books
// so the querier can reach the next hop.
type chord struct{ c *Core }

func newChord(c *Core) *chord {
	e := &chord{c: c}
	c.Net.Handle("chord:find_succ", func(from underlay.HostID, payload []byte) []byte {
		target, ok := u64(payload)
		if !ok {
			return nil
		}
		e.c.Msgs.Get("chord_served").Inc()
		done, hop := e.step(target)
		flag := byte(0)
		if done {
			flag = 1
		}
		return append([]byte{flag}, e.c.Net.Book().EncodeIDs([]underlay.HostID{hop})...)
	})
	return e
}

func (e *chord) Name() string               { return "chord" }
func (e *chord) Suspect(id underlay.HostID) { e.c.Suspect(id) }
func (e *chord) Evict(id underlay.HostID)   { e.c.Evict(id) }

// step is one routing decision from this node's own view: done=true
// means hop owns target; done=false means hop is the next node to ask.
func (e *chord) step(target uint64) (done bool, hop underlay.HostID) {
	members := e.c.members()
	me := NodeKey(e.c.Self)
	// Successor of self on the ring (smallest key strictly after me,
	// wrapping); alone in the ring, self owns everything.
	succ, okSucc := RingSuccessor(removeID(members, e.c.Self), me+1)
	if !okSucc {
		return true, e.c.Self
	}
	if inArc(target, me, NodeKey(succ)) {
		return true, succ
	}
	// Closest preceding member in (me, target): the standard Chord hop,
	// computed over the membership view in place of a finger table.
	best, okBest := underlay.HostID(-1), false
	for _, id := range members {
		k := NodeKey(id)
		if id == e.c.Self || !inArc(k, me, target) {
			continue
		}
		if !okBest || ringGap(k, target) < ringGap(NodeKey(best), target) {
			best, okBest = id, true
		}
	}
	if !okBest {
		return true, succ
	}
	return false, best
}

// ringGap is the clockwise distance from key to target on the ring.
func ringGap(key, target uint64) uint64 { return target - key } // wraps correctly in uint64

func removeID(ids []underlay.HostID, drop underlay.HostID) []underlay.HostID {
	out := make([]underlay.HostID, 0, len(ids))
	for _, id := range ids {
		if id != drop {
			out = append(out, id)
		}
	}
	return out
}

func (e *chord) Lookup(target uint64) (underlay.HostID, bool) {
	e.c.Msgs.Get("chord_lookup").Inc()
	members := e.c.members()
	want, ok := RingSuccessor(members, target)
	if !ok {
		return 0, false
	}
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], target)
	done, hop := e.step(target)
	for i := 0; !done && i < chordMaxHops; i++ {
		resp, err := e.c.Net.Call(hop, "chord:find_succ", key[:])
		if err != nil || len(resp) < 1 {
			e.c.Msgs.Get("chord_rpc_fail").Inc()
			break
		}
		peers, perr := nettransport.DecodePeers(resp[1:])
		if perr != nil || len(peers) == 0 {
			e.c.Msgs.Get("chord_bad_resp").Inc()
			break
		}
		e.c.Net.Book().Set(peers[0].ID, peers[0].Addr)
		done, hop = resp[0] == 1, peers[0].ID
	}
	if done && hop == want {
		e.c.Msgs.Get("chord_lookup_ok").Inc()
		return hop, true
	}
	e.c.Msgs.Get("chord_lookup_fail").Inc()
	return hop, false
}

// --- Gnutella ---

const (
	gnuTTL     = 4
	gnuFanout  = 3
	gnuTimeout = 2 * time.Second
)

// gnutella is the live unstructured engine: a TTL-bounded flood. A query
// names an exact member; every receiver either answers with a direct
// gnu:hit to the origin (it is the target) or relays the query to up to
// gnuFanout other members. Duplicate query ids are dropped, which is
// what keeps the flood from echoing forever.
type gnutella struct {
	c   *Core
	qid atomic.Uint64

	mu      sync.Mutex
	seen    map[uint64]bool
	pending map[uint64]chan underlay.HostID
}

// gnu:query payload: qid(8) + target(4) + origin(4) + ttl(1).
const gnuQueryLen = 8 + 4 + 4 + 1

func newGnutella(c *Core) *gnutella {
	e := &gnutella{
		c:       c,
		seen:    make(map[uint64]bool),
		pending: make(map[uint64]chan underlay.HostID),
	}
	e.qid.Store(NodeKey(c.Self)) // disjoint qid streams per node
	c.Net.HandleData("gnu:query", e.onQuery)
	c.Net.HandleData("gnu:hit", e.onHit)
	return e
}

func (e *gnutella) Name() string               { return "gnutella" }
func (e *gnutella) Suspect(id underlay.HostID) { e.c.Suspect(id) }
func (e *gnutella) Evict(id underlay.HostID)   { e.c.Evict(id) }

func (e *gnutella) onQuery(from underlay.HostID, _ string, payload []byte) {
	if len(payload) < gnuQueryLen {
		return
	}
	qid := binary.BigEndian.Uint64(payload)
	target := underlay.HostID(int32(binary.BigEndian.Uint32(payload[8:])))
	origin := underlay.HostID(int32(binary.BigEndian.Uint32(payload[12:])))
	ttl := payload[16]

	e.mu.Lock()
	dup := e.seen[qid]
	e.seen[qid] = true
	e.mu.Unlock()
	if dup {
		e.c.Msgs.Get("gnu_dup").Inc()
		return
	}
	if target == e.c.Self {
		var hit [12]byte
		binary.BigEndian.PutUint64(hit[:], qid)
		binary.BigEndian.PutUint32(hit[8:], uint32(int32(e.c.Self)))
		e.c.Net.SendPayload(origin, "gnu:hit", hit[:], 0)
		e.c.Msgs.Get("gnu_answered").Inc()
		return
	}
	if ttl <= 1 {
		e.c.Msgs.Get("gnu_ttl_drop").Inc()
		return
	}
	fwd := append([]byte(nil), payload...)
	fwd[16] = ttl - 1
	e.flood(fwd, from, origin)
	e.c.Msgs.Get("gnu_forward").Inc()
}

// flood relays a query to up to gnuFanout members, skipping self, the
// frame's sender and the origin.
func (e *gnutella) flood(payload []byte, sender, origin underlay.HostID) {
	sent := 0
	for _, id := range e.c.members() {
		if id == e.c.Self || id == sender || id == origin {
			continue
		}
		e.c.Net.SendPayload(id, "gnu:query", payload, 0)
		if sent++; sent >= gnuFanout {
			break
		}
	}
}

func (e *gnutella) onHit(from underlay.HostID, _ string, payload []byte) {
	if len(payload) < 12 {
		return
	}
	qid := binary.BigEndian.Uint64(payload)
	who := underlay.HostID(int32(binary.BigEndian.Uint32(payload[8:])))
	e.mu.Lock()
	ch := e.pending[qid]
	e.mu.Unlock()
	if ch != nil {
		select {
		case ch <- who:
		default:
		}
	}
}

// Lookup floods a query for the member that target hashes onto and waits
// for its direct hit. Ground truth is trivial — the target either
// answers or it doesn't — which makes this the overlay whose success
// rate most directly measures flood reach (TTL × fanout vs cluster
// size).
func (e *gnutella) Lookup(target uint64) (underlay.HostID, bool) {
	e.c.Msgs.Get("gnu_lookup").Inc()
	members := e.c.members()
	if len(members) == 0 {
		return 0, false
	}
	want := members[target%uint64(len(members))]
	if want == e.c.Self {
		e.c.Msgs.Get("gnu_lookup_ok").Inc()
		return want, true
	}
	qid := e.qid.Add(1)
	ch := make(chan underlay.HostID, 1)
	e.mu.Lock()
	e.pending[qid] = ch
	e.seen[qid] = true // don't re-relay our own query when it echoes back
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, qid)
		e.mu.Unlock()
	}()

	var q [gnuQueryLen]byte
	binary.BigEndian.PutUint64(q[:], qid)
	binary.BigEndian.PutUint32(q[8:], uint32(int32(want)))
	binary.BigEndian.PutUint32(q[12:], uint32(int32(e.c.Self)))
	q[16] = gnuTTL
	e.flood(q[:], e.c.Self, e.c.Self)

	timer := time.NewTimer(gnuTimeout)
	defer timer.Stop()
	select {
	case who := <-ch:
		if who == want {
			e.c.Msgs.Get("gnu_lookup_ok").Inc()
			return who, true
		}
		e.c.Msgs.Get("gnu_lookup_fail").Inc()
		return who, false
	case <-timer.C:
		e.c.Msgs.Get("gnu_lookup_fail").Inc()
		return -1, false
	}
}
