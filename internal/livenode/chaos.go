package livenode

// chaos.go wires a Node into the live chaos plane (internal/chaos
// live.go): AS placement over the NodeKey space so Window.scoped
// survives the flat localhost underlay, drop-filter arming over the
// transport's SetDropRx hook, and Member — the restartable in-process
// cluster member the LiveInjector crashes and revives.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"syscall"
	"time"

	"unap2p/internal/chaos"
	"unap2p/internal/nettransport"
	"unap2p/internal/underlay"
)

// PlaceAS maps a host id onto one of numASes synthetic ASes. The
// placement is a pure function of the id (NodeKey modulo the AS count),
// so every process in a live cluster computes the same placement with
// no coordination — the same property NodeKey gives lookups their
// ground truth. numASes < 1 collapses everyone into AS 0.
func PlaceAS(id underlay.HostID, numASes int) int {
	if numASes < 1 {
		return 0
	}
	return int(NodeKey(id) % uint64(numASes))
}

// ASPlacement returns PlaceAS curried over numASes, in the shape
// chaos.LiveConfig.ASOf and NewLiveFilter want.
func ASPlacement(numASes int) func(underlay.HostID) int {
	return func(id underlay.HostID) int { return PlaceAS(id, numASes) }
}

// ArmChaos installs the schedule's partition and loss windows as this
// node's inbound drop filter, interpreted against wall time from epoch
// with AS scoping over ASPlacement(numASes). Every node of a campaign
// arms the same (schedule, epoch, numASes, seed) tuple; crash waves are
// the orchestrator's job (chaos.LiveInjector), not the filter's.
func (n *Node) ArmChaos(sched chaos.Schedule, epoch time.Time, numASes int, seed int64) error {
	if err := sched.Validate(); err != nil {
		return fmt.Errorf("livenode: chaos schedule: %w", err)
	}
	f := chaos.NewLiveFilter(sched, chaos.LiveClock{Epoch: epoch},
		n.cfg.ID, ASPlacement(numASes), seed)
	n.net.SetDropRx(func(fr *nettransport.Frame) bool { return f.Drop(fr.From) })
	return nil
}

// DisarmChaos removes the chaos drop filter.
func (n *Node) DisarmChaos() { n.net.SetDropRx(nil) }

// ChaosSubject adapts the node to the chaos.Subject the invariant
// checker runs against: Refs is the membership view the engines route
// over (minus self — a node referencing itself is not a routing hazard),
// Evicted is the failure detector's ledger.
func (n *Node) ChaosSubject() chaos.Subject { return liveSubject{n} }

type liveSubject struct{ n *Node }

func (s liveSubject) Refs() []underlay.HostID {
	refs := make([]underlay.HostID, 0, s.n.Peers())
	for _, id := range s.n.Members() {
		if id != s.n.cfg.ID {
			refs = append(refs, id)
		}
	}
	return refs
}

func (s liveSubject) Evicted() []underlay.HostID { return s.n.Evicted() }

// StartRetry is Start hardened against ephemeral-port collision: when
// the bind loses a :0 race (EADDRINUSE), it backs off briefly and tries
// again. Deterministic config errors fail immediately.
func StartRetry(cfg Config, attempts int) (*Node, error) {
	var err error
	for i := 0; i < attempts; i++ {
		var n *Node
		n, err = Start(cfg)
		if err == nil {
			return n, nil
		}
		if !addrInUse(err) {
			return nil, err
		}
		time.Sleep(time.Duration(i+1) * 20 * time.Millisecond)
	}
	return nil, fmt.Errorf("livenode: %d bind attempts failed: %w", attempts, err)
}

func addrInUse(err error) bool {
	return errors.Is(err, syscall.EADDRINUSE) ||
		strings.Contains(err.Error(), "address already in use")
}

// Member wraps a Node as a chaos.LiveMember + chaos.DropArmer: the
// in-process, race-detectable cluster member the live campaign tests
// drive. Kill closes the node — from every peer's perspective it just
// stops answering. Revive boots a replacement process-in-a-goroutine
// with the same id on a fresh ephemeral port and rejoins it through
// the normal hello/welcome path.
type Member struct {
	mu        sync.Mutex
	node      *Node
	cfg       Config
	bootstrap string
	drop      func(from underlay.HostID) bool
}

// NewMember wraps a started node. bootstrap is the address Revive
// rejoins through ("" for the cluster seed, which revives standalone).
func NewMember(n *Node, bootstrap string) *Member {
	return &Member{node: n, cfg: n.cfg, bootstrap: bootstrap}
}

// ID implements chaos.LiveMember.
func (m *Member) ID() underlay.HostID { return m.cfg.ID }

// Node returns the current underlying node (a new one after each
// Revive).
func (m *Member) Node() *Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.node
}

// Kill implements chaos.LiveMember by closing the node outright —
// detector stopped, socket gone, no goodbye to the cluster.
func (m *Member) Kill() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.node.Close()
}

// Revive restarts the member: same id and overlay, fresh ephemeral
// port (the old one may be taken), rejoin via the bootstrap. The drop
// filter armed on the old incarnation is re-armed on the new one —
// schedule windows outlive a crash.
func (m *Member) Revive() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cfg := m.cfg
	cfg.Listen = "" // never reclaim the old port; peers relearn from frames
	n, err := StartRetry(cfg, 5)
	if err != nil {
		return fmt.Errorf("livenode: revive %d: %w", m.cfg.ID, err)
	}
	if m.drop != nil {
		drop := m.drop
		n.net.SetDropRx(func(fr *nettransport.Frame) bool { return drop(fr.From) })
	}
	if m.bootstrap != "" {
		if err := n.Join(m.bootstrap); err != nil {
			n.Close()
			return fmt.Errorf("livenode: revive %d: %w", m.cfg.ID, err)
		}
	}
	m.node = n
	return nil
}

// ArmDrop implements chaos.DropArmer on the current incarnation and
// remembers the filter for re-arming after Revive.
func (m *Member) ArmDrop(fn func(from underlay.HostID) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drop = fn
	m.node.net.SetDropRx(func(fr *nettransport.Frame) bool { return fn(fr.From) })
}

// DisarmDrop implements chaos.DropArmer.
func (m *Member) DisarmDrop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drop = nil
	m.node.net.SetDropRx(nil)
}
