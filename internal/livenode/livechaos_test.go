package livenode

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"unap2p/internal/chaos"
	"unap2p/internal/underlay"
)

// liveSchedule is the campaign every overlay must survive: a correlated
// loss burst while the cluster is routing, then a two-node crash wave.
// The loss window (600 ms at ping 100 ms) is deliberately shorter than
// EvictAfter×PingInterval (800 ms), so a live peer cannot accumulate
// the miss streak a real crash does — the campaign must evict exactly
// the killed nodes, nothing else.
const (
	liveSchedule   = "loss 200 800 rate=0.25\ncrash 1100 n=2\n"
	liveNodes      = 6
	liveEvictAfter = 8
	liveASes       = 3
	liveSeed       = 7
)

// bootChaosCluster is bootCluster with the chaos detector tuning, each
// node wrapped as a restartable Member (node 0 seeds; the rest revive
// through its address).
func bootChaosCluster(t *testing.T, overlay string, n int) []*Member {
	t.Helper()
	requireSockets(t)
	members := make([]*Member, n)
	var bootstrap string
	for i := 0; i < n; i++ {
		node, err := StartRetry(Config{
			ID:           underlay.HostID(i),
			Overlay:      overlay,
			PingInterval: 100 * time.Millisecond,
			Timeout:      150 * time.Millisecond,
			SuspectAfter: 2,
			EvictAfter:   liveEvictAfter,
			Logf:         t.Logf,
		}, 5)
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		if i == 0 {
			bootstrap = node.Net().LocalAddr().String()
			members[i] = NewMember(node, "")
		} else {
			if err := node.Join(bootstrap); err != nil {
				t.Fatalf("join node %d: %v", i, err)
			}
			members[i] = NewMember(node, bootstrap)
		}
		m := members[i]
		t.Cleanup(func() { m.Kill() })
	}
	awaitCluster(t, "full address books", func() bool {
		for _, m := range members {
			if m.Node().Peers() != n {
				return false
			}
		}
		return true
	})
	return members
}

func clusterLookups(members []*Member, skip map[underlay.HostID]bool, perNode int) (ok, total int) {
	for _, m := range members {
		if skip[m.ID()] {
			continue
		}
		ok += m.Node().RunLookups(perNode)
		total += perNode
	}
	return ok, total
}

// TestLiveChaosCampaign is the tentpole acceptance test, in-process and
// race-detectable: for each overlay, a live cluster takes the shared
// loss-burst + crash-wave schedule, evicts exactly the planned victims,
// and reconverges to the ≥95% verified-lookup floor — with the same
// chaos.Check invariants the sim harness runs.
func TestLiveChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("live campaign needs multi-second wall-clock windows")
	}
	for _, overlay := range []string{"kademlia", "chord", "gnutella"} {
		overlay := overlay
		t.Run(overlay, func(t *testing.T) {
			t.Parallel()
			members := bootChaosCluster(t, overlay, liveNodes)

			// Pre-chaos baseline: the floor must hold before any faults, or
			// the reconvergence assertion below is meaningless.
			beforeOK, beforeTotal := clusterLookups(members, nil, 20)
			if beforeOK*100 < beforeTotal*95 {
				t.Fatalf("pre-chaos baseline %d/%d below 95%%", beforeOK, beforeTotal)
			}

			sched, err := chaos.Parse(liveSchedule)
			if err != nil {
				t.Fatal(err)
			}
			lm := make([]chaos.LiveMember, len(members))
			for i, m := range members {
				lm[i] = m
			}
			inj, err := chaos.NewLiveInjector(sched, lm, chaos.LiveConfig{
				Seed:    liveSeed,
				ASOf:    ASPlacement(liveASes),
				Protect: []underlay.HostID{0}, // the bootstrap stays up
			})
			if err != nil {
				t.Fatal(err)
			}
			waves := inj.Victims()
			if len(waves) != 1 || len(waves[0]) != 2 {
				t.Fatalf("planned victims %v, want one wave of 2", waves)
			}
			victims := waves[0]
			isVictim := map[underlay.HostID]bool{}
			for _, id := range victims {
				isVictim[id] = true
			}

			if err := inj.Start(time.Now()); err != nil {
				t.Fatal(err)
			}
			defer inj.Stop()
			inj.Wait()
			if err := inj.Err(); err != nil {
				t.Fatal(err)
			}
			if got := inj.Crashed(); !reflect.DeepEqual(got, victims) {
				t.Fatalf("Crashed() = %v, planned %v", got, victims)
			}

			// Every survivor must evict exactly the killed nodes — no more
			// (the loss burst must not cost a live peer), no less.
			awaitCluster(t, "survivors evict exactly the victims", func() bool {
				for _, m := range members {
					if isVictim[m.ID()] {
						continue
					}
					if !reflect.DeepEqual(m.Node().Evicted(), victims) {
						return false
					}
				}
				return true
			})
			ttr := time.Since(inj.WaveTimes()[0])

			// The universal invariant, per survivor: no routing references
			// to evicted peers.
			for _, m := range members {
				if isVictim[m.ID()] {
					continue
				}
				sub := m.Node().ChaosSubject()
				if err := chaos.Check(fmt.Sprintf("%s/live/node%d", overlay, m.ID()), sub).Err(); err != nil {
					t.Error(err)
				}
				if got := len(m.Node().Members()); got != liveNodes-len(victims) {
					t.Errorf("node %d: %d members after eviction, want %d",
						m.ID(), got, liveNodes-len(victims))
				}
			}

			// Post-recovery lookups across the survivors: the ≥95% floor and
			// reconvergence to the pre-fault rate.
			afterOK, afterTotal := clusterLookups(members, isVictim, 20)
			rep := &chaos.Report{Name: overlay + "/live"}
			rep.SuccessFloor("post-recovery lookups", afterOK, afterTotal, 0.95)
			rep.Reconverged("lookup success",
				float64(beforeOK)/float64(beforeTotal),
				float64(afterOK)/float64(afterTotal), 0.05)
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: time-to-recover %v after killing %v; lookups %d/%d before, %d/%d after",
				overlay, ttr.Round(time.Millisecond), victims,
				beforeOK, beforeTotal, afterOK, afterTotal)
		})
	}
}

// TestLiveReviveRejoins exercises the revive path end to end: a victim
// crashes and returns before the eviction streak completes, so the
// survivors suspect, recant on its return, and the cluster heals to
// full membership — no evictions anywhere.
func TestLiveReviveRejoins(t *testing.T) {
	if testing.Short() {
		t.Skip("live revive needs wall-clock windows")
	}
	members := bootChaosCluster(t, "kademlia", 3)

	sched, err := chaos.Parse("crash 100 n=1 revive=500\n")
	if err != nil {
		t.Fatal(err)
	}
	lm := []chaos.LiveMember{members[0], members[1], members[2]}
	inj, err := chaos.NewLiveInjector(sched, lm, chaos.LiveConfig{
		Seed: 3, Protect: []underlay.HostID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	victim := inj.Victims()[0][0]
	if err := inj.Start(time.Now()); err != nil {
		t.Fatal(err)
	}
	defer inj.Stop()
	inj.Wait()
	if err := inj.Err(); err != nil {
		t.Fatal(err)
	}

	// The revived incarnation rejoined through hello/welcome: every node
	// converges back to full membership on the victim's new address, and
	// nobody evicted anybody (400 ms down < 800 ms eviction streak).
	awaitCluster(t, "revived member rejoins everywhere", func() bool {
		for _, m := range members {
			if len(m.Node().Members()) != 3 {
				return false
			}
		}
		return true
	})
	for _, m := range members {
		if got := m.Node().Evicted(); len(got) != 0 {
			t.Errorf("node %d evicted %v during a sub-threshold outage", m.ID(), got)
		}
	}
	if ok := members[victim].Node().RunLookups(10); ok < 9 {
		t.Errorf("revived node: only %d/10 lookups verified after rejoin", ok)
	}
}

// TestDetectorRecantsUnderLiveLoss is the detector-over-real-sockets
// coverage: a total loss window scoped to one node's AS isolates it for
// ~600 ms. Its peers must suspect it (the streak passes SuspectAfter)
// and recant once the window ends — and with the eviction threshold out
// of reach, nobody gets evicted by loss alone.
func TestDetectorRecantsUnderLiveLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("live loss window needs wall-clock time")
	}
	requireSockets(t)

	// Pick an AS count that isolates node 2 in its own AS, so the burst
	// touches only traffic to/from node 2.
	numASes := 0
	for k := 2; k < 32; k++ {
		if PlaceAS(2, k) != PlaceAS(0, k) && PlaceAS(2, k) != PlaceAS(1, k) {
			numASes = k
			break
		}
	}
	if numASes == 0 {
		t.Fatal("no AS count isolates node 2 (NodeKey distribution broken?)")
	}

	nodes := make([]*Node, 3)
	var bootstrap string
	for i := range nodes {
		node, err := StartRetry(Config{
			ID:           underlay.HostID(i),
			Overlay:      "kademlia",
			PingInterval: 80 * time.Millisecond,
			Timeout:      120 * time.Millisecond,
			SuspectAfter: 2,
			EvictAfter:   100, // out of reach: loss must never evict here
			Logf:         t.Logf,
		}, 5)
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
		if i == 0 {
			bootstrap = node.Net().LocalAddr().String()
		} else if err := node.Join(bootstrap); err != nil {
			t.Fatalf("join node %d: %v", i, err)
		}
	}
	awaitCluster(t, "full address books", func() bool {
		for _, n := range nodes {
			if n.Peers() != 3 {
				return false
			}
		}
		return true
	})
	awaitCluster(t, "pings flowing", func() bool {
		for _, n := range nodes {
			if n.Detector().Counters().Get("ping").Value() == 0 {
				return false
			}
		}
		return true
	})

	text := fmt.Sprintf("loss 50 650 rate=1 as=%d\n", PlaceAS(2, numASes))
	sched, err := chaos.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Now()
	for _, n := range nodes {
		if err := n.ArmChaos(sched, epoch, numASes, 11); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 1: inside the window the isolated node's peers cross the
	// suspect threshold.
	awaitCluster(t, "peers suspect the isolated node", func() bool {
		return nodes[0].Detector().Counters().Get("suspect").Value() > 0 &&
			nodes[1].Detector().Counters().Get("suspect").Value() > 0
	})
	// Phase 2: the window ends, acks resume, suspicion is recanted.
	awaitCluster(t, "suspicion recanted after the window", func() bool {
		return nodes[0].Detector().Counters().Get("recover").Value() > 0 &&
			nodes[1].Detector().Counters().Get("recover").Value() > 0 &&
			len(nodes[0].Suspected()) == 0 && len(nodes[1].Suspected()) == 0
	})
	for i, n := range nodes {
		n.DisarmChaos()
		if got := n.Detector().Counters().Get("evict").Value(); got != 0 {
			t.Errorf("node %d evicted %d peers from loss alone", i, got)
		}
		if len(n.Members()) != 3 {
			t.Errorf("node %d: membership shrank to %v under loss", i, n.Members())
		}
	}
}
