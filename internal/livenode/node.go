package livenode

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"unap2p/internal/nettransport"
	"unap2p/internal/resilience"
	"unap2p/internal/sim"
	"unap2p/internal/telemetry"
	"unap2p/internal/underlay"
)

// Config tunes a Node.
type Config struct {
	// ID is this node's cluster-wide host id (unique per process).
	ID underlay.HostID
	// Overlay names the engine: "kademlia", "chord" or "gnutella".
	Overlay string
	// Listen is the UDP listen address; empty means 127.0.0.1:0.
	Listen string
	// MetricsAddr, when non-empty, serves /metrics and /debug/pprof there
	// (":0" works; Node.MetricsAddr reports the bound address).
	MetricsAddr string
	// Timeout is the per-RPC deadline (default 250 ms).
	Timeout time.Duration
	// PingInterval is the failure-detector probe period in wall time
	// (default 500 ms). Suspect fires after 2 missed acks, evict after 4,
	// exactly as in the simulated detector's default config.
	PingInterval time.Duration
	// SuspectAfter and EvictAfter override the detector's miss streaks
	// (0 keeps resilience.DefaultConfig's 2 and 4). Chaos campaigns
	// raise EvictAfter so a bounded loss burst cannot sustain the streak
	// a real crash does: with a flat ping interval, a burst shorter than
	// EvictAfter×PingInterval can never evict a live peer.
	SuspectAfter, EvictAfter int
	// Logf, when non-nil, receives diagnostic lines.
	Logf func(format string, args ...any)
}

// Node is one live overlay process: a real-socket transport, an overlay
// engine, the resilience failure detector paced against the wall clock,
// and an optional metrics endpoint. cmd/unapnode is a thin flag wrapper
// around this type; the in-process cluster tests boot several Nodes in
// one binary on ephemeral ports.
type Node struct {
	cfg    Config
	net    *nettransport.Net
	core   *Core
	engine Engine
	pacer  *nettransport.Pacer
	det    *resilience.Detector
	reg    *telemetry.Registry
	msrv   *telemetry.Server

	watchCancel func() // cancels the membership-scan tick (pacer side)

	closeOnce sync.Once
	closeErr  error
}

// Start boots a node: socket up, engine handlers installed, detector
// pacing, metrics serving. The node knows only itself until Join (or
// until joiners find it — a bootstrap node just Starts and waits).
func Start(cfg Config) (*Node, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	if cfg.PingInterval <= 0 {
		cfg.PingInterval = 500 * time.Millisecond
	}
	if cfg.SuspectAfter < 0 || cfg.EvictAfter < 0 ||
		(cfg.SuspectAfter > 0 && cfg.EvictAfter > 0 && cfg.EvictAfter < cfg.SuspectAfter) {
		return nil, fmt.Errorf("livenode: need 0 ≤ SuspectAfter (%d) ≤ EvictAfter (%d)",
			cfg.SuspectAfter, cfg.EvictAfter)
	}
	tr, err := nettransport.Listen(nettransport.Config{
		Self: cfg.ID, Listen: cfg.Listen, Timeout: cfg.Timeout, Logf: cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	// A node holds its own book entry: Encode therefore advertises self,
	// which is the whole join protocol's source of addresses.
	tr.Book().Set(cfg.ID, tr.LocalAddr())

	n := &Node{cfg: cfg, net: tr, core: NewCore(tr)}
	n.engine = NewEngine(cfg.Overlay, n.core)
	if n.engine == nil {
		tr.Close()
		return nil, fmt.Errorf("livenode: unknown overlay %q", cfg.Overlay)
	}

	// The join handshake: a hello request carries the joiner's book; the
	// welcome reply carries ours. Merging both ways plus the data-hello
	// announce below gives O(1)-round convergence on small clusters.
	tr.Handle("hello", func(from underlay.HostID, payload []byte) []byte {
		if _, err := tr.Book().Merge(payload); err != nil {
			n.logf("livenode: bad hello book from %d: %v", from, err)
		}
		return tr.Book().Encode()
	})
	tr.HandleData("hello", func(from underlay.HostID, _ string, payload []byte) {
		if _, err := tr.Book().Merge(payload); err != nil {
			n.logf("livenode: bad hello announce from %d: %v", from, err)
		}
	})

	// The failure detector runs unmodified from the simulation: a kernel
	// paced 1:1 against the wall clock (sim ms = wall ms), fd_ping round
	// trips that are now real datagrams with real deadlines.
	kernel := sim.NewKernel()
	tr.AttachKernel(kernel)
	n.pacer = nettransport.NewPacer(kernel)
	dcfg := resilience.DefaultConfig()
	dcfg.PingInterval = sim.Duration(float64(cfg.PingInterval) / float64(time.Millisecond))
	dcfg.Backoff = resilience.Backoff{} // flat interval; no RNG dependency
	if cfg.SuspectAfter > 0 {
		dcfg.SuspectAfter = cfg.SuspectAfter
	}
	if cfg.EvictAfter > 0 {
		dcfg.EvictAfter = cfg.EvictAfter
	}
	if dcfg.EvictAfter < dcfg.SuspectAfter {
		tr.Close()
		return nil, fmt.Errorf("livenode: need SuspectAfter (%d) ≤ EvictAfter (%d)",
			dcfg.SuspectAfter, dcfg.EvictAfter)
	}
	n.det = resilience.New(tr, dcfg)
	n.det.Heal(n.engine)
	n.det.OnRecover = n.core.Recover

	// Membership scan: every ping interval, watch any newly learned peer.
	// Runs as a kernel daemon event, i.e. on the pacer goroutine, which
	// is the only place detector calls are legal.
	watchTick := dcfg.PingInterval
	n.watchCancel = kernel.EveryDaemon(watchTick, func() {
		for _, id := range tr.Book().IDs() {
			if id != cfg.ID && !n.core.Dead(id) {
				n.det.Watch(tr.Host(cfg.ID), tr.Host(id))
			}
		}
	})
	n.pacer.Start()

	n.reg = telemetry.NewRegistry()
	n.reg.RegisterCounters("net", tr.Counters())
	n.reg.RegisterCounters("resilience", n.det.Counters())
	n.reg.RegisterCounters("overlay", n.core.Msgs)
	n.reg.RegisterHistogram("rtt_ms", tr.RTT())
	n.reg.RegisterGauge("peers", func() float64 { return float64(tr.Book().Len()) })
	if cfg.MetricsAddr != "" {
		srv, err := telemetry.ServeContext(context.Background(), cfg.MetricsAddr, n.reg.Snapshot)
		if err != nil {
			n.Close()
			return nil, err
		}
		n.msrv = srv
	}
	return n, nil
}

// Join dials a bootstrap node by UDP address, retrying briefly (the
// bootstrap process may still be binding its socket). On return the
// node holds the bootstrap's full address book and has announced itself
// to every member in it.
func (n *Node) Join(bootstrap string) error {
	addr, err := net.ResolveUDPAddr("udp", bootstrap)
	if err != nil {
		return fmt.Errorf("livenode: bad bootstrap address %q: %v", bootstrap, err)
	}
	var welcome []byte
	deadline := time.Now().Add(10 * time.Second)
	for {
		welcome, err = n.net.CallAt(addr, "hello", n.net.Book().Encode())
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("livenode: bootstrap %s unreachable: %v", bootstrap, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if _, err := n.net.Book().Merge(welcome); err != nil {
		return fmt.Errorf("livenode: bad welcome book: %v", err)
	}
	// Announce to everyone we just learned about, so the whole cluster
	// knows us without waiting to see one of our frames.
	book := n.net.Book().Encode()
	for _, id := range n.net.Book().IDs() {
		if id != n.cfg.ID {
			n.net.SendPayload(id, "hello", book, 0)
		}
	}
	return nil
}

// Net exposes the transport (tests inject loss through it).
func (n *Node) Net() *nettransport.Net { return n.net }

// Engine exposes the live overlay engine.
func (n *Node) Engine() Engine { return n.engine }

// Detector exposes the failure detector. Its methods must only be
// called from Pacer.Do; its Counters are safe anywhere.
func (n *Node) Detector() *resilience.Detector { return n.det }

// Pacer exposes the wall-clock kernel driver.
func (n *Node) Pacer() *nettransport.Pacer { return n.pacer }

// Registry exposes the node's metric registry (to add app metrics or
// snapshot in-process).
func (n *Node) Registry() *telemetry.Registry { return n.reg }

// Peers reports how many cluster members the node currently knows,
// itself included.
func (n *Node) Peers() int { return n.net.Book().Len() }

// Members returns the node's live membership view (book ids minus
// evicted peers, self included) — the reference set every engine routes
// over.
func (n *Node) Members() []underlay.HostID { return n.core.members() }

// Evicted returns the peers the failure detector has permanently
// evicted, sorted. Safe from any goroutine (the read runs on the pacer).
func (n *Node) Evicted() []underlay.HostID {
	var out []underlay.HostID
	n.pacer.Do(func() { out = n.det.Evicted() })
	return out
}

// Suspected returns the peers currently under suspicion, sorted. Safe
// from any goroutine.
func (n *Node) Suspected() []underlay.HostID {
	var out []underlay.HostID
	n.pacer.Do(func() { out = n.det.Suspected() })
	return out
}

// MetricsAddr reports the bound metrics address, or "" when disabled.
func (n *Node) MetricsAddr() string {
	if n.msrv == nil {
		return ""
	}
	return n.msrv.Addr()
}

// RunLookups performs count lookups with deterministic pseudo-random
// targets (derived from the node id, so each node exercises a different
// target stream) and reports how many verified successful.
func (n *Node) RunLookups(count int) (ok int) {
	seed := NodeKey(n.cfg.ID)
	for i := 0; i < count; i++ {
		target := mix64(seed + uint64(i)*0x9e3779b97f4a7c15)
		if _, good := n.engine.Lookup(target); good {
			ok++
		}
	}
	return ok
}

// Close tears the node down: detector stops ticking, metrics port
// closes, socket closes. Idempotent.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		if n.watchCancel != nil {
			n.pacer.Do(n.watchCancel)
		}
		n.pacer.Stop()
		if n.msrv != nil {
			n.msrv.Close()
		}
		n.closeErr = n.net.Close()
	})
	return n.closeErr
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}
