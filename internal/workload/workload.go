// Package workload generates content catalogs and query streams: Zipf
// content popularity and the locality-correlated interest model observed
// by Rasti et al. ([25] in the paper) — "users' searches, whose desired
// contents are located in the proximity" — which is precisely why
// ISP-locality biasing works.
package workload

import (
	"math"
	"math/rand"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// ItemID identifies a content item.
type ItemID int

// Catalog is the universe of shared content.
type Catalog struct {
	// NumItems is the catalog size.
	NumItems int
	// replicas maps item → hosts holding it.
	replicas map[ItemID][]underlay.HostID
	// holdings maps host → items held.
	holdings map[underlay.HostID][]ItemID
}

// NewCatalog returns an empty catalog of n items.
func NewCatalog(n int) *Catalog {
	return &Catalog{
		NumItems: n,
		replicas: make(map[ItemID][]underlay.HostID),
		holdings: make(map[underlay.HostID][]ItemID),
	}
}

// Place records that host h shares item it.
func (c *Catalog) Place(it ItemID, h underlay.HostID) {
	c.replicas[it] = append(c.replicas[it], h)
	c.holdings[h] = append(c.holdings[h], it)
}

// Replicas returns the hosts sharing an item.
func (c *Catalog) Replicas(it ItemID) []underlay.HostID { return c.replicas[it] }

// Holdings returns the items a host shares.
func (c *Catalog) Holdings(h underlay.HostID) []ItemID { return c.holdings[h] }

// Has reports whether host h shares item it.
func (c *Catalog) Has(h underlay.HostID, it ItemID) bool {
	for _, have := range c.holdings[h] {
		if have == it {
			return true
		}
	}
	return false
}

// PopulateZipf distributes items over hosts with Zipf popularity: item
// rank k receives a replica count proportional to 1/(k+1)^s, with at least
// one replica, placed on uniformly random hosts.
func PopulateZipf(c *Catalog, hosts []*underlay.Host, meanReplicas float64, s float64, r *rand.Rand) {
	if len(hosts) == 0 || c.NumItems == 0 {
		return
	}
	// Normalizing constant for the truncated zeta distribution.
	var z float64
	for k := 0; k < c.NumItems; k++ {
		z += 1 / math.Pow(float64(k+1), s)
	}
	total := meanReplicas * float64(c.NumItems)
	for k := 0; k < c.NumItems; k++ {
		share := total * (1 / math.Pow(float64(k+1), s)) / z
		n := int(share + 0.5)
		if n < 1 {
			n = 1
		}
		if n > len(hosts) {
			n = len(hosts)
		}
		seen := make(map[int]bool, n)
		for len(seen) < n {
			i := r.Intn(len(hosts))
			if !seen[i] {
				seen[i] = true
				c.Place(ItemID(k), hosts[i].ID)
			}
		}
	}
}

// PopulateLocal places items with AS-locality correlation: each item gets
// a "home" AS; a fraction localBias of its replicas land on hosts of that
// AS, the rest anywhere. This reproduces the Rasti et al. observation that
// desired content tends to exist in the requester's proximity.
func PopulateLocal(c *Catalog, net *underlay.Network, hosts []*underlay.Host,
	replicasPerItem int, localBias float64, r *rand.Rand) {
	if len(hosts) == 0 || c.NumItems == 0 {
		return
	}
	byAS := make(map[int][]*underlay.Host)
	var asIDs []int
	for _, h := range hosts {
		if len(byAS[h.AS.ID]) == 0 {
			asIDs = append(asIDs, h.AS.ID)
		}
		byAS[h.AS.ID] = append(byAS[h.AS.ID], h)
	}
	for k := 0; k < c.NumItems; k++ {
		home := asIDs[r.Intn(len(asIDs))]
		placed := make(map[underlay.HostID]bool)
		for n := 0; n < replicasPerItem; n++ {
			var pool []*underlay.Host
			if r.Float64() < localBias {
				pool = byAS[home]
			} else {
				pool = hosts
			}
			h := pool[r.Intn(len(pool))]
			if !placed[h.ID] {
				placed[h.ID] = true
				c.Place(ItemID(k), h.ID)
			}
		}
	}
}

// Query is one search request.
type Query struct {
	From underlay.HostID
	Item ItemID
	At   sim.Time
}

// QueryGen produces a query stream.
type QueryGen struct {
	Catalog *Catalog
	Hosts   []*underlay.Host
	// LocalInterestBias is the probability that a querying peer asks for
	// an item that already has a replica in its own AS (locality-
	// correlated interests); the rest are Zipf-popular picks.
	LocalInterestBias float64
	// Zipf drives the popularity of non-local picks.
	Zipf *sim.Zipf
	Rand *rand.Rand

	net *underlay.Network
	// localItems caches AS → items with a replica in that AS.
	localItems map[int][]ItemID
}

// NewQueryGen builds a generator over a populated catalog.
func NewQueryGen(net *underlay.Network, c *Catalog, hosts []*underlay.Host,
	localBias float64, zipfS float64, r *rand.Rand) *QueryGen {
	g := &QueryGen{
		Catalog:           c,
		Hosts:             hosts,
		LocalInterestBias: localBias,
		Zipf:              sim.NewZipf(r, zipfS, c.NumItems),
		Rand:              r,
		net:               net,
		localItems:        make(map[int][]ItemID),
	}
	for it, hs := range c.replicas {
		seen := make(map[int]bool)
		for _, hid := range hs {
			as := net.Host(hid).AS.ID
			if !seen[as] {
				seen[as] = true
				g.localItems[as] = append(g.localItems[as], it)
			}
		}
	}
	// Deterministic ordering of the cached lists.
	for as := range g.localItems {
		items := g.localItems[as]
		for i := 1; i < len(items); i++ {
			for j := i; j > 0 && items[j] < items[j-1]; j-- {
				items[j], items[j-1] = items[j-1], items[j]
			}
		}
	}
	return g
}

// Next draws one query at time t from a random online host.
func (g *QueryGen) Next(t sim.Time) (Query, bool) {
	var from *underlay.Host
	for tries := 0; tries < 4*len(g.Hosts); tries++ {
		h := g.Hosts[g.Rand.Intn(len(g.Hosts))]
		if h.Up {
			from = h
			break
		}
	}
	if from == nil {
		return Query{}, false
	}
	var item ItemID
	local := g.localItems[from.AS.ID]
	if len(local) > 0 && g.Rand.Float64() < g.LocalInterestBias {
		item = local[g.Rand.Intn(len(local))]
	} else {
		item = ItemID(g.Zipf.Next())
	}
	return Query{From: from.ID, Item: item, At: t}, true
}
