package workload

import (
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/underlay"
)

func buildNet() (*underlay.Network, []*underlay.Host) {
	net := topology.Star(5, topology.DefaultConfig())
	hosts := topology.PlaceHosts(net, 10, false, 1, 2, sim.NewSource(1).Stream("wl-place"))
	return net, hosts
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog(10)
	c.Place(3, 7)
	c.Place(3, 9)
	c.Place(5, 7)
	if len(c.Replicas(3)) != 2 || len(c.Replicas(4)) != 0 {
		t.Fatalf("replicas = %v", c.Replicas(3))
	}
	if len(c.Holdings(7)) != 2 {
		t.Fatalf("holdings = %v", c.Holdings(7))
	}
	if !c.Has(7, 5) || c.Has(9, 5) {
		t.Fatal("Has wrong")
	}
}

func TestPopulateZipf(t *testing.T) {
	_, hosts := buildNet()
	c := NewCatalog(100)
	PopulateZipf(c, hosts, 3, 1.0, sim.NewSource(2).Stream("zipf"))
	// Every item has at least one replica; popular items have more.
	for k := 0; k < 100; k++ {
		if len(c.Replicas(ItemID(k))) == 0 {
			t.Fatalf("item %d has no replica", k)
		}
	}
	if len(c.Replicas(0)) <= len(c.Replicas(99)) {
		t.Fatalf("rank 0 (%d) not more replicated than rank 99 (%d)",
			len(c.Replicas(0)), len(c.Replicas(99)))
	}
	// No duplicate replicas of an item on one host.
	for k := 0; k < 100; k++ {
		seen := map[underlay.HostID]bool{}
		for _, h := range c.Replicas(ItemID(k)) {
			if seen[h] {
				t.Fatalf("item %d duplicated on host %d", k, h)
			}
			seen[h] = true
		}
	}
}

func TestPopulateZipfEmptyInputs(t *testing.T) {
	c := NewCatalog(0)
	PopulateZipf(c, nil, 3, 1.0, sim.NewSource(1).Stream("z"))
	// Nothing placed, nothing panics.
	if len(c.Replicas(0)) != 0 {
		t.Fatal("phantom replicas")
	}
}

func TestPopulateLocalBias(t *testing.T) {
	net, hosts := buildNet()
	c := NewCatalog(200)
	PopulateLocal(c, net, hosts, 4, 0.8, sim.NewSource(3).Stream("local"))
	// With bias 0.8, most items should have ≥2 replicas inside one AS.
	concentrated := 0
	for k := 0; k < 200; k++ {
		perAS := map[int]int{}
		for _, h := range c.Replicas(ItemID(k)) {
			perAS[net.Host(h).AS.ID]++
		}
		for _, n := range perAS {
			if n >= 2 {
				concentrated++
				break
			}
		}
	}
	if concentrated < 100 {
		t.Fatalf("only %d/200 items AS-concentrated under bias 0.8", concentrated)
	}
}

func TestQueryGenLocalInterest(t *testing.T) {
	net, hosts := buildNet()
	c := NewCatalog(50)
	PopulateLocal(c, net, hosts, 3, 0.9, sim.NewSource(4).Stream("local2"))
	g := NewQueryGen(net, c, hosts, 1.0, 1.0, sim.NewSource(5).Stream("qg"))
	// With LocalInterestBias=1, every query's item must have a replica in
	// the querying host's AS.
	for i := 0; i < 500; i++ {
		q, ok := g.Next(0)
		if !ok {
			t.Fatal("no online host found")
		}
		from := net.Host(q.From)
		found := false
		for _, h := range c.Replicas(q.Item) {
			if net.Host(h).AS.ID == from.AS.ID {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("query %d: item %d has no replica in AS%d", i, q.Item, from.AS.ID)
		}
	}
}

func TestQueryGenZipfFallback(t *testing.T) {
	net, hosts := buildNet()
	c := NewCatalog(50)
	PopulateZipf(c, hosts, 2, 1.0, sim.NewSource(6).Stream("zipf2"))
	g := NewQueryGen(net, c, hosts, 0, 1.2, sim.NewSource(7).Stream("qg2"))
	counts := make([]int, 50)
	for i := 0; i < 5000; i++ {
		q, ok := g.Next(sim.Time(i))
		if !ok {
			t.Fatal("no host")
		}
		counts[q.Item]++
		if q.At != sim.Time(i) {
			t.Fatal("timestamp not propagated")
		}
	}
	if counts[0] <= counts[49] {
		t.Fatalf("zipf interest not skewed: %d vs %d", counts[0], counts[49])
	}
}

func TestQueryGenAllOffline(t *testing.T) {
	net, hosts := buildNet()
	for _, h := range hosts {
		h.Up = false
	}
	c := NewCatalog(10)
	PopulateZipf(c, hosts, 1, 1.0, sim.NewSource(8).Stream("z3"))
	g := NewQueryGen(net, c, hosts, 0, 1.0, sim.NewSource(9).Stream("qg3"))
	if _, ok := g.Next(0); ok {
		t.Fatal("query generated with all hosts offline")
	}
}
