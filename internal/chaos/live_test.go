package chaos

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"unap2p/internal/underlay"
)

// fakeMember is a controllable LiveMember + DropArmer for unit tests.
type fakeMember struct {
	id underlay.HostID

	mu      sync.Mutex
	up      bool
	kills   int
	revives int
	drop    func(from underlay.HostID) bool
	killErr error
}

func newFakeMember(id underlay.HostID) *fakeMember {
	return &fakeMember{id: id, up: true}
}

func (m *fakeMember) ID() underlay.HostID { return m.id }

func (m *fakeMember) Kill() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killErr != nil {
		return m.killErr
	}
	m.up = false
	m.kills++
	return nil
}

func (m *fakeMember) Revive() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.up = true
	m.revives++
	return nil
}

func (m *fakeMember) ArmDrop(fn func(from underlay.HostID) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drop = fn
}

func (m *fakeMember) DisarmDrop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drop = nil
}

func (m *fakeMember) snapshot() (up bool, kills, revives int, armed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.up, m.kills, m.revives, m.drop != nil
}

func fakeCluster(n int) ([]*fakeMember, []LiveMember) {
	fakes := make([]*fakeMember, n)
	members := make([]LiveMember, n)
	for i := range fakes {
		fakes[i] = newFakeMember(underlay.HostID(i))
		members[i] = fakes[i]
	}
	return fakes, members
}

func mustParse(t *testing.T, text string) Schedule {
	t.Helper()
	s, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return s
}

// TestLiveClock pins the wall→schedule time mapping: negative before
// the epoch (no window is ever active then), milliseconds after.
func TestLiveClock(t *testing.T) {
	c := LiveClock{Epoch: time.Now().Add(time.Hour)}
	if now := c.Now(); now >= 0 {
		t.Fatalf("clock before epoch should be negative, got %v", now)
	}
	c = LiveClock{Epoch: time.Now().Add(-time.Second)}
	if now := c.Now(); now < 900 || now > 30_000 {
		t.Fatalf("clock ~1s after epoch should be ~1000ms, got %v", now)
	}
	w := Window{Kind: LossBurst, Start: 0, End: 1000, Loss: 1}
	if w.active(LiveClock{Epoch: time.Now().Add(time.Hour)}.Now()) {
		t.Fatal("window active before the epoch")
	}
}

// TestLiveFilterPartition checks the cut semantics: only traffic
// crossing the partition boundary drops, and only while the window
// is active.
func TestLiveFilterPartition(t *testing.T) {
	sched := mustParse(t, "partition 0 100000 as=1\n")
	asOf := func(id underlay.HostID) int { return int(id) % 2 } // odd ids in AS 1
	clock := LiveClock{Epoch: time.Now()}

	inside := NewLiveFilter(sched, clock, 1, asOf, 42)  // self in AS 1
	outside := NewLiveFilter(sched, clock, 2, asOf, 42) // self in AS 0

	if !inside.Drop(2) {
		t.Fatal("cut-crossing frame (AS0→AS1) not dropped")
	}
	if inside.Drop(3) {
		t.Fatal("intra-AS1 frame dropped")
	}
	if !outside.Drop(1) {
		t.Fatal("cut-crossing frame (AS1→AS0) not dropped")
	}
	if outside.Drop(4) {
		t.Fatal("intra-AS0 frame dropped")
	}

	// An expired window must stop dropping.
	late := NewLiveFilter(sched, LiveClock{Epoch: time.Now().Add(-200 * time.Second)}, 1, asOf, 42)
	if late.Drop(2) {
		t.Fatal("expired partition still dropping")
	}
}

// TestLiveFilterLoss checks loss-burst statistics: rate 1 drops
// everything scoped, rate 0.5 drops roughly half, unscoped ASes are
// untouched, and nothing drops outside the window.
func TestLiveFilterLoss(t *testing.T) {
	asOf := func(id underlay.HostID) int { return int(id) % 2 }
	clock := LiveClock{Epoch: time.Now()}

	total := NewLiveFilter(mustParse(t, "loss 0 100000 rate=1 as=1\n"), clock, 0, asOf, 1)
	if !total.Drop(1) {
		t.Fatal("rate=1 frame from scoped AS survived")
	}
	if total.Drop(2) {
		t.Fatal("frame with neither endpoint scoped dropped")
	}

	half := NewLiveFilter(mustParse(t, "loss 0 100000 rate=0.5\n"), clock, 0, asOf, 1)
	drops := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if half.Drop(1) {
			drops++
		}
	}
	if drops < trials*35/100 || drops > trials*65/100 {
		t.Fatalf("rate=0.5 dropped %d/%d, far from half", drops, trials)
	}

	idle := NewLiveFilter(mustParse(t, "loss 50000 100000 rate=1\n"), clock, 0, asOf, 1)
	if idle.Drop(1) {
		t.Fatal("future window already dropping")
	}
}

// TestLiveFilterNilASOf: without a placement every node shares AS 0,
// so AS-scoped windows on other ASes never bite but unscoped ones do.
func TestLiveFilterNilASOf(t *testing.T) {
	clock := LiveClock{Epoch: time.Now()}
	scoped := NewLiveFilter(mustParse(t, "loss 0 100000 rate=1 as=7\n"), clock, 0, nil, 1)
	if scoped.Drop(1) {
		t.Fatal("AS-scoped window dropped with nil placement")
	}
	unscoped := NewLiveFilter(mustParse(t, "loss 0 100000 rate=1\n"), clock, 0, nil, 1)
	if !unscoped.Drop(1) {
		t.Fatal("unscoped window did not drop with nil placement")
	}
}

// TestLiveVictimPlanning pins the victim-selection discipline: a pure
// function of (seed, schedule, member set, protect) — same inputs, same
// victims; different seed, (almost surely) different victims; protected
// ids never chosen; revive returns victims to later waves' pools.
func TestLiveVictimPlanning(t *testing.T) {
	sched := mustParse(t, "crash 100 n=2\ncrash 200 n=2\n")
	_, members := fakeCluster(8)

	cfg := LiveConfig{Seed: 7, Protect: []underlay.HostID{0}}
	a, err := NewLiveInjector(sched, members, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLiveInjector(sched, members, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Victims(), b.Victims()) {
		t.Fatalf("same seed, different victims: %v vs %v", a.Victims(), b.Victims())
	}

	waves := a.Victims()
	if len(waves) != 2 || len(waves[0]) != 2 || len(waves[1]) != 2 {
		t.Fatalf("want 2 waves of 2 victims, got %v", waves)
	}
	seen := map[underlay.HostID]bool{}
	for _, wave := range waves {
		for _, id := range wave {
			if id == 0 {
				t.Fatalf("protected id 0 selected as victim: %v", waves)
			}
			if seen[id] {
				t.Fatalf("victim %d chosen twice without revive: %v", id, waves)
			}
			seen[id] = true
		}
	}

	// With revive before the second wave, first-wave victims are
	// eligible again.
	revSched := mustParse(t, "crash 100 n=2 revive=150\ncrash 200 n=6\n")
	c, err := NewLiveInjector(revSched, members, LiveConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Victims()[1]); got != 6 {
		t.Fatalf("post-revive wave should find 6 eligible victims, got %d", got)
	}

	// A wave larger than the pool takes everyone eligible, not more.
	big, err := NewLiveInjector(mustParse(t, "crash 100 n=50\n"), members, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(big.Victims()[0]); got != 7 {
		t.Fatalf("oversized wave should clamp to pool (7 unprotected), got %d", got)
	}
}

// TestLiveInjectorRequiresASOf: AS-scoped drop windows without a
// placement function are a configuration error, not a silent no-op.
func TestLiveInjectorRequiresASOf(t *testing.T) {
	_, members := fakeCluster(3)
	_, err := NewLiveInjector(mustParse(t, "partition 0 100 as=1\n"), members, LiveConfig{})
	if err == nil {
		t.Fatal("AS-scoped schedule accepted without ASOf")
	}
	if _, err := NewLiveInjector(mustParse(t, "loss 0 100 rate=0.5\n"), members, LiveConfig{}); err != nil {
		t.Fatalf("unscoped schedule rejected: %v", err)
	}
}

// TestLiveInjectorFires runs a compressed campaign against fake
// members: drop filters armed at Start, kills at the wave instant,
// revives at window end, Crashed tracking both transitions.
func TestLiveInjectorFires(t *testing.T) {
	fakes, members := fakeCluster(4)
	sched := mustParse(t, "loss 0 5000 rate=0.5\ncrash 20 n=2 revive=120\n")
	inj, err := NewLiveInjector(sched, members, LiveConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	victims := inj.Victims()[0]

	crashc := make(chan underlay.HostID, 4)
	inj.cfg.OnCrash = func(id underlay.HostID) { crashc <- id }

	if err := inj.Start(time.Now()); err != nil {
		t.Fatal(err)
	}
	defer inj.Stop()
	for _, f := range fakes {
		if _, _, _, armed := f.snapshot(); !armed {
			t.Fatalf("member %d drop filter not armed at Start", f.id)
		}
	}

	// First crash observed → victims down, Crashed matches the plan.
	select {
	case <-crashc:
	case <-time.After(5 * time.Second):
		t.Fatal("crash wave never fired")
	}
	<-crashc
	if got := inj.Crashed(); !reflect.DeepEqual(got, victims) {
		t.Fatalf("Crashed() = %v, planned victims %v", got, victims)
	}
	if len(inj.WaveTimes()) != 1 {
		t.Fatalf("want 1 wave time, got %v", inj.WaveTimes())
	}

	inj.Wait() // blocks until the revive timer fires too
	if got := inj.Crashed(); len(got) != 0 {
		t.Fatalf("Crashed() after revive = %v, want empty", got)
	}
	for _, id := range victims {
		up, kills, revives, _ := fakes[id].snapshot()
		if !up || kills != 1 || revives != 1 {
			t.Fatalf("victim %d: up=%v kills=%d revives=%d", id, up, kills, revives)
		}
	}
	if err := inj.Err(); err != nil {
		t.Fatalf("campaign errors: %v", err)
	}

	if err := inj.Start(time.Now()); err == nil {
		t.Fatal("second Start accepted")
	}
}

// TestLiveInjectorRecordsKillErrors: a member that refuses to die
// surfaces through Err instead of being silently marked crashed.
func TestLiveInjectorRecordsKillErrors(t *testing.T) {
	fakes, members := fakeCluster(3)
	for _, f := range fakes {
		f.killErr = fmt.Errorf("no permission")
	}
	inj, err := NewLiveInjector(mustParse(t, "crash 10 n=1\n"), members, LiveConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Start(time.Now()); err != nil {
		t.Fatal(err)
	}
	inj.Wait()
	if inj.Err() == nil {
		t.Fatal("kill failure not recorded")
	}
	if got := inj.Crashed(); len(got) != 0 {
		t.Fatalf("failed kill still counted as crashed: %v", got)
	}
}

// TestLiveInjectorStop: timers cancelled before firing release Wait.
func TestLiveInjectorStop(t *testing.T) {
	fakes, members := fakeCluster(3)
	inj, err := NewLiveInjector(mustParse(t, "crash 3600000 n=1\n"), members, LiveConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Start(time.Now()); err != nil {
		t.Fatal(err)
	}
	inj.Stop()
	done := make(chan struct{})
	go func() { inj.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after Stop")
	}
	for _, f := range fakes {
		if up, _, _, _ := f.snapshot(); !up {
			t.Fatalf("member %d killed by a cancelled wave", f.id)
		}
	}
}

// TestScrapeProm parses the Prometheus text format the live nodes
// serve, stripping labels and skipping comments.
func TestScrapeProm(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "# HELP unap2p_peers live peers")
		fmt.Fprintln(w, "# TYPE unap2p_peers gauge")
		fmt.Fprintln(w, "unap2p_peers 5")
		fmt.Fprintln(w, `unap2p_resilience_evict_total{node="3"} 2`)
		fmt.Fprintln(w, "not a metric line at all with words")
	}))
	defer srv.Close()

	m, err := ScrapeProm(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if m["unap2p_peers"] != 5 {
		t.Fatalf("unap2p_peers = %v, want 5", m["unap2p_peers"])
	}
	if m["unap2p_resilience_evict_total"] != 2 {
		t.Fatalf("evict_total = %v, want 2", m["unap2p_resilience_evict_total"])
	}

	if _, err := ScrapeProm(srv.URL + "/missing"); err == nil {
		t.Fatal("404 scrape did not error")
	}
}
