package chaos

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

func testWorld(seed int64) (*underlay.Network, []*underlay.Host, *sim.Kernel, *transport.Transport, *sim.Source) {
	src := sim.NewSource(seed)
	net := topology.TransitStub(topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 6,
	})
	hosts := topology.PlaceHosts(net, 4, false, 1, 5, src.Stream("place"))
	k := sim.NewKernel()
	tr := transport.New(net, k)
	return net, hosts, k, tr, src
}

func TestParseFormatRoundTrip(t *testing.T) {
	text := `
# campaign: split two stubs, then a correlated burst, then a wave
partition 1000 2500 as=3,5
loss 500 900 rate=0.35 as=4
loss 100 200 rate=0.1
crash 1500 n=3 revive=3000
crash 4000 n=1
`
	s, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(s.Windows) != 5 {
		t.Fatalf("parsed %d windows, want 5", len(s.Windows))
	}
	out := Format(s)
	s2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", out, err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip changed the schedule:\n%#v\n%#v", s, s2)
	}
	if w := s.Windows[0]; w.Kind != ASPartition || !reflect.DeepEqual(w.ASes, []int{3, 5}) {
		t.Fatalf("partition window parsed wrong: %#v", w)
	}
	if w := s.Windows[3]; w.Kind != CrashWave || !w.Revive || w.End != 3000 {
		t.Fatalf("revive wave parsed wrong: %#v", w)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown verb":      "explode 1 2",
		"partition no cut":  "partition 1 2",
		"partition bad as":  "partition 1 2 as=x",
		"partition neg":     "partition -1 2 as=1",
		"inverted interval": "partition 10 5 as=1",
		"loss no rate":      "loss 1 2 as=1",
		"loss rate high":    "loss 1 2 rate=1.5",
		"loss rate nan":     "loss 1 2 rate=NaN",
		"time inf":          "loss 1 Inf rate=0.5",
		"crash no n":        "crash 5",
		"crash zero":        "crash 5 n=0",
		"crash bad revive":  "crash 5 n=1 revive=x",
		"bad option":        "crash 5 n=1 bogus",
	}
	for name, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: Parse(%q) accepted malformed input", name, text)
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := GenConfig{
		Horizon:    60 * sim.Second,
		ASes:       []int{2, 3, 4, 5, 6, 7},
		Partitions: 2, Bursts: 3, Waves: 2,
	}
	a := Generate(rand.New(rand.NewSource(42)), cfg)
	b := Generate(rand.New(rand.NewSource(42)), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	if len(a.Windows) != 7 {
		t.Fatalf("generated %d windows, want 7", len(a.Windows))
	}
	// Round-trips through the line format too.
	s2, err := Parse(Format(a))
	if err != nil {
		t.Fatalf("generated schedule does not parse: %v", err)
	}
	if !reflect.DeepEqual(a, s2) {
		t.Fatal("generated schedule does not round-trip")
	}
	c := Generate(rand.New(rand.NewSource(43)), cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestInjectorPartition(t *testing.T) {
	_, hosts, k, tr, _ := testWorld(7)
	inside := hosts[0]
	cut := inside.AS.ID
	var peerInCut, outside *underlay.Host
	for _, h := range hosts[1:] {
		if h.AS.ID == cut && peerInCut == nil {
			peerInCut = h
		}
		if h.AS.ID != cut && outside == nil {
			outside = h
		}
	}
	if peerInCut == nil || outside == nil {
		t.Fatal("world too small for the scenario")
	}
	sched := Schedule{Windows: []Window{
		{Kind: ASPartition, Start: 100, End: 200, ASes: []int{cut}},
	}}
	inj := NewInjector(k, tr, sched, nil)
	if err := inj.Arm(); err != nil {
		t.Fatalf("arm: %v", err)
	}
	type probe struct {
		at       sim.Time
		from, to *underlay.Host
		wantOK   bool
	}
	probes := []probe{
		{50, inside, outside, true},    // before the window
		{150, inside, outside, false},  // across the cut
		{150, outside, inside, false},  // across, reverse direction
		{150, inside, peerInCut, true}, // inside the cut still flows
		{250, inside, outside, true},   // after the window
	}
	for i := range probes {
		p := &probes[i]
		k.At(p.at, func() {
			if got := tr.Send(p.from, p.to, 64, "probe").OK; got != p.wantOK {
				t.Errorf("t=%v %d→%d: OK=%v, want %v",
					p.at, p.from.ID, p.to.ID, got, p.wantOK)
			}
		})
	}
	k.Drain()
}

func TestInjectorLossBurst(t *testing.T) {
	_, hosts, k, tr, src := testWorld(8)
	a, b := hosts[0], hosts[len(hosts)-1]
	sched := Schedule{Windows: []Window{
		{Kind: LossBurst, Start: 100, End: 200, Loss: 1.0},
	}}
	inj := NewInjector(k, tr, sched, src.Stream("chaos"))
	if err := inj.Arm(); err != nil {
		t.Fatalf("arm: %v", err)
	}
	k.At(150, func() {
		if tr.Send(a, b, 64, "probe").OK {
			t.Error("send survived a rate-1.0 loss burst")
		}
	})
	k.At(250, func() {
		if !tr.Send(a, b, 64, "probe").OK {
			t.Error("send dropped outside the burst window")
		}
	})
	k.Drain()
}

func TestInjectorCrashWave(t *testing.T) {
	_, hosts, k, tr, src := testWorld(9)
	sched := Schedule{Windows: []Window{
		{Kind: CrashWave, Start: 100, End: 300, Crash: 3, Revive: true},
	}}
	inj := NewInjector(k, tr, sched, src.Stream("chaos"))
	inj.Eligible = hosts
	var crashedOrder, revivedOrder []underlay.HostID
	inj.OnCrash = func(h *underlay.Host) { crashedOrder = append(crashedOrder, h.ID) }
	inj.OnRevive = func(h *underlay.Host) { revivedOrder = append(revivedOrder, h.ID) }
	if err := inj.Arm(); err != nil {
		t.Fatalf("arm: %v", err)
	}
	k.Run(200)
	if got := inj.Crashed(); len(got) != 3 {
		t.Fatalf("crashed %v, want 3 victims", got)
	}
	down := 0
	for _, h := range hosts {
		if !h.Up {
			down++
		}
	}
	if down != 3 {
		t.Fatalf("%d hosts down, want 3", down)
	}
	k.Run(400)
	if got := inj.Crashed(); len(got) != 0 {
		t.Fatalf("still crashed after revive: %v", got)
	}
	for _, h := range hosts {
		if !h.Up {
			t.Fatalf("host %d still down after revive", h.ID)
		}
	}
	if !reflect.DeepEqual(crashedOrder, revivedOrder) {
		t.Fatalf("revive order %v != crash order %v", revivedOrder, crashedOrder)
	}
	for i := 1; i < len(crashedOrder); i++ {
		if crashedOrder[i-1] >= crashedOrder[i] {
			t.Fatalf("crash callbacks not in ascending id order: %v", crashedOrder)
		}
	}
	// Same seed, same victims.
	_, hosts2, k2, tr2, src2 := testWorld(9)
	inj2 := NewInjector(k2, tr2, sched, src2.Stream("chaos"))
	inj2.Eligible = hosts2
	var order2 []underlay.HostID
	inj2.OnCrash = func(h *underlay.Host) { order2 = append(order2, h.ID) }
	if err := inj2.Arm(); err != nil {
		t.Fatalf("arm: %v", err)
	}
	k2.Run(200)
	if !reflect.DeepEqual(crashedOrder, order2) {
		t.Fatalf("victim choice not deterministic: %v vs %v", crashedOrder, order2)
	}
}

// fakeSubject lets checker tests pin exact ref/evicted sets.
type fakeSubject struct {
	refs, evicted []underlay.HostID
}

func (f fakeSubject) Refs() []underlay.HostID    { return f.refs }
func (f fakeSubject) Evicted() []underlay.HostID { return f.evicted }

func TestCheckReport(t *testing.T) {
	clean := Check("clean", fakeSubject{
		refs:    []underlay.HostID{1, 2, 3},
		evicted: []underlay.HostID{9},
	})
	if !clean.Ok() || clean.Err() != nil {
		t.Fatalf("clean subject reported violations: %v", clean.Err())
	}
	dirty := Check("dirty", fakeSubject{
		refs:    []underlay.HostID{1, 2, 9},
		evicted: []underlay.HostID{9},
	})
	if dirty.Ok() {
		t.Fatal("dead ref not detected")
	}
	if err := dirty.Err(); err == nil || !strings.Contains(err.Error(), "evicted peer 9") {
		t.Fatalf("unhelpful violation: %v", err)
	}

	r := &Report{Name: "bounds"}
	r.SizeBounds("bucket", []int{3, 4, 5}, 1, 8)
	r.SuccessFloor("lookup", 9, 10, 0.8)
	r.Reconverged("success_rate", 0.95, 0.93, 0.05)
	if !r.Ok() {
		t.Fatalf("in-bounds metrics flagged: %v", r.Err())
	}
	r.SizeBounds("bucket", []int{0}, 1, 8)
	r.SuccessFloor("lookup", 1, 10, 0.8)
	r.Reconverged("success_rate", 0.95, 0.5, 0.05)
	if len(r.Violations) != 3 {
		t.Fatalf("want 3 violations, got %v", r.Violations)
	}
}
