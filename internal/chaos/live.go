package chaos

// live.go is the wall-clock half of the chaos plane. The same Schedule
// grammar the deterministic Injector arms against a sim kernel is
// interpreted here against a running cluster of socket-backed nodes:
//
//   - Partition and loss windows become inbound drop filters
//     (nettransport's SetDropRx hook) evaluated per received frame
//     against wall-clock window times. The drop plane is distributed:
//     every node arms the same schedule against the same epoch, so one
//     schedule means one cluster-wide fault pattern without any
//     coordination protocol. AS scoping survives the flat localhost
//     underlay through an injected placement function (livenode.PlaceAS
//     derives a synthetic AS from the NodeKey every process can
//     compute).
//   - Crash waves become wall-clock timers owned by one orchestrator —
//     the only party that can take a node down for real, whether that
//     is closing an in-process node's socket or SIGKILLing an unapnode
//     OS process. Victim selection is a seeded shuffle over the sorted
//     eligible pool, exactly like the sim Injector's, so the victim set
//     is precomputable (Victims) and a test can assert "evicted exactly
//     the killed nodes" before anything dies.
//
// Unlike the sim Injector there is no global purity: loss draws are
// per-node streams and wall time is real time. What is preserved is the
// schedule's *shape* — the same windows, the same scoping rules, the
// same victim-selection discipline — which is what the sim-vs-live
// conformance test leans on.

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// LiveClock maps wall time onto schedule time: sim.Time milliseconds
// elapsed since Epoch. Every process in a live campaign shares one
// epoch (the unapnode daemon takes it as a flag), so window boundaries
// land at the same wall instant cluster-wide.
type LiveClock struct{ Epoch time.Time }

// Now returns the current schedule time. It is negative before the
// epoch, which no valid window covers — arming a filter early is safe.
func (c LiveClock) Now() sim.Time {
	return sim.Time(float64(time.Since(c.Epoch)) / float64(time.Millisecond))
}

// LiveFilter evaluates a schedule's partition and loss windows against
// one node's inbound traffic. Drop is called from the transport's
// receive loop for every frame; partition windows drop frames crossing
// the cut, loss windows drop scoped frames with the window's
// probability from this node's private seeded stream.
type LiveFilter struct {
	sched Schedule
	clock LiveClock
	self  underlay.HostID
	asOf  func(underlay.HostID) int

	mu  sync.Mutex
	rng *rand.Rand
}

// NewLiveFilter builds the inbound drop filter for one node. asOf is
// the AS placement for window scoping (nil puts everyone in AS 0, so
// only unscoped windows bite); seed derives this node's private loss
// stream — disjoint per node, so a correlated window still draws
// independent per-frame losses, like the sim injector's per-send draws.
func NewLiveFilter(sched Schedule, clock LiveClock, self underlay.HostID,
	asOf func(underlay.HostID) int, seed int64) *LiveFilter {
	return &LiveFilter{
		sched: sched, clock: clock, self: self, asOf: asOf,
		rng: rand.New(rand.NewSource(seed ^ int64(self)*0x9e3779b9)),
	}
}

func (f *LiveFilter) as(id underlay.HostID) int {
	if f.asOf == nil {
		return 0
	}
	return f.asOf(id)
}

// Drop reports whether a frame from the given sender should be
// discarded right now. The semantics mirror Injector.drop: a partition
// drops traffic whose endpoints sit on opposite sides of the cut; a
// loss burst drops traffic touching a scoped AS with probability Loss.
func (f *LiveFilter) Drop(from underlay.HostID) bool {
	now := f.clock.Now()
	for _, w := range f.sched.Windows {
		if !w.active(now) {
			continue
		}
		switch w.Kind {
		case ASPartition:
			if w.scoped(f.as(from)) != w.scoped(f.as(f.self)) {
				return true
			}
		case LossBurst:
			if w.Loss > 0 && (w.scoped(f.as(from)) || w.scoped(f.as(f.self))) &&
				f.draw() < w.Loss {
				return true
			}
		}
	}
	return false
}

// draw serializes the rand stream: the receive loop is one goroutine,
// but a revived in-process node re-arms the same filter from a fresh
// loop, so the lock keeps the stream safe across that handoff.
func (f *LiveFilter) draw() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

// LiveMember is one controllable member of a running cluster: an
// in-process livenode node (livenode.Member) or an unapnode OS process
// the orchestrator can SIGKILL.
type LiveMember interface {
	ID() underlay.HostID
	// Kill crashes the member now. From every peer's perspective the
	// node simply stops answering — exactly what Host.Up=false means in
	// the simulation.
	Kill() error
	// Revive restarts the member and rejoins it through the normal
	// hello/welcome path. Members that cannot restart (external
	// processes) return an error, which the injector records.
	Revive() error
}

// DropArmer is the optional capability of members whose inbound filter
// the injector can arm directly (in-process nodes). OS-process members
// arm themselves instead: the unapnode daemon takes the schedule, the
// epoch, and the AS placement as flags and installs its own LiveFilter.
type DropArmer interface {
	ArmDrop(fn func(from underlay.HostID) bool)
	DisarmDrop()
}

// LiveConfig tunes a LiveInjector.
type LiveConfig struct {
	// Seed drives the victim shuffles and, for DropArmer members, the
	// per-member loss streams. The victim sets are a pure function of
	// (Seed, schedule, member ids, Protect).
	Seed int64
	// ASOf places members into synthetic ASes for window scoping
	// (livenode.ASPlacement over the NodeKey space is the standard
	// choice). Required when the schedule has partition or AS-scoped
	// loss windows.
	ASOf func(underlay.HostID) int
	// Protect lists members crash waves must never take down — the
	// bootstrap, metrics vantage points.
	Protect []underlay.HostID
	// OnCrash and OnRevive observe wave events after they happen, in
	// deterministic victim order (called from the wave timer goroutine).
	OnCrash, OnRevive func(id underlay.HostID)
}

// liveWave is one precomputed crash wave.
type liveWave struct {
	win     Window
	victims []underlay.HostID
}

// LiveInjector interprets a Schedule against wall-clock windows on a
// running cluster — the live counterpart of Injector. Construct with
// NewLiveInjector, inspect Victims, then Start against an epoch; Wait
// blocks until every wave (and revive) timer has fired.
type LiveInjector struct {
	sched   Schedule
	members []LiveMember
	byID    map[underlay.HostID]LiveMember
	cfg     LiveConfig
	waves   []liveWave

	mu        sync.Mutex
	started   bool
	crashed   map[underlay.HostID]bool
	waveTimes []time.Time
	timers    []*time.Timer
	errs      []error
	wg        sync.WaitGroup
}

// NewLiveInjector validates the schedule against the member set and
// precomputes every crash wave's victims.
func NewLiveInjector(sched Schedule, members []LiveMember, cfg LiveConfig) (*LiveInjector, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	scopedDrops := false
	for _, w := range sched.Windows {
		if (w.Kind == ASPartition || w.Kind == LossBurst) && len(w.ASes) > 0 {
			scopedDrops = true
		}
	}
	if scopedDrops && cfg.ASOf == nil {
		return nil, fmt.Errorf("chaos: schedule has AS-scoped windows but LiveConfig.ASOf is nil")
	}
	inj := &LiveInjector{
		sched:   sched,
		members: members,
		byID:    make(map[underlay.HostID]LiveMember, len(members)),
		cfg:     cfg,
		crashed: make(map[underlay.HostID]bool),
	}
	for _, m := range members {
		inj.byID[m.ID()] = m
	}
	inj.waves = planWaves(sched, members, cfg)
	return inj, nil
}

// planWaves replays the crash windows in start order against the
// eligible pool: victims are a seeded shuffle over the members alive at
// each wave's start (revived victims re-enter the pool once their
// window ends), the same discipline Injector.crash applies at runtime.
func planWaves(sched Schedule, members []LiveMember, cfg LiveConfig) []liveWave {
	protected := make(map[underlay.HostID]bool, len(cfg.Protect))
	for _, id := range cfg.Protect {
		protected[id] = true
	}
	pool := make([]underlay.HostID, 0, len(members))
	for _, m := range members {
		if !protected[m.ID()] {
			pool = append(pool, m.ID())
		}
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })

	var crashIdx []int
	for i, w := range sched.Windows {
		if w.Kind == CrashWave {
			crashIdx = append(crashIdx, i)
		}
	}
	sort.SliceStable(crashIdx, func(a, b int) bool {
		return sched.Windows[crashIdx[a]].Start < sched.Windows[crashIdx[b]].Start
	})

	rng := rand.New(rand.NewSource(cfg.Seed))
	forever := sim.Time(math.Inf(1))
	downUntil := make(map[underlay.HostID]sim.Time)
	waves := make([]liveWave, 0, len(crashIdx))
	for _, i := range crashIdx {
		w := sched.Windows[i]
		alive := make([]underlay.HostID, 0, len(pool))
		for _, id := range pool {
			if until, down := downUntil[id]; down && w.Start < until {
				continue
			}
			alive = append(alive, id)
		}
		rng.Shuffle(len(alive), func(a, b int) { alive[a], alive[b] = alive[b], alive[a] })
		n := w.Crash
		if n > len(alive) {
			n = len(alive)
		}
		victims := append([]underlay.HostID(nil), alive[:n]...)
		sort.Slice(victims, func(a, b int) bool { return victims[a] < victims[b] })
		for _, id := range victims {
			if w.Revive {
				downUntil[id] = w.End
			} else {
				downUntil[id] = forever
			}
		}
		waves = append(waves, liveWave{win: w, victims: victims})
	}
	return waves
}

// Victims returns the precomputed victim set of every crash wave, in
// wave order — known before Start, so a test can assert the cluster
// evicts exactly these ids.
func (inj *LiveInjector) Victims() [][]underlay.HostID {
	out := make([][]underlay.HostID, len(inj.waves))
	for i, w := range inj.waves {
		out[i] = append([]underlay.HostID(nil), w.victims...)
	}
	return out
}

// Start arms the campaign against the given epoch: drop filters on
// every DropArmer member immediately, one wall-clock timer per crash
// wave (plus one per revive). Windows whose times have already passed
// fire immediately. Call once.
func (inj *LiveInjector) Start(epoch time.Time) error {
	inj.mu.Lock()
	if inj.started {
		inj.mu.Unlock()
		return fmt.Errorf("chaos: live injector already started")
	}
	inj.started = true
	inj.mu.Unlock()

	clock := LiveClock{Epoch: epoch}
	hasDrops := false
	for _, w := range inj.sched.Windows {
		if w.Kind == ASPartition || w.Kind == LossBurst {
			hasDrops = true
			break
		}
	}
	if hasDrops {
		for _, m := range inj.members {
			if da, ok := m.(DropArmer); ok {
				f := NewLiveFilter(inj.sched, clock, m.ID(), inj.cfg.ASOf, inj.cfg.Seed)
				da.ArmDrop(f.Drop)
			}
		}
	}
	for wi := range inj.waves {
		wi := wi
		w := inj.waves[wi]
		inj.wg.Add(1)
		inj.addTimer(wallDelay(epoch, w.win.Start), func() {
			defer inj.wg.Done()
			inj.fireCrash(wi)
		})
		if w.win.Revive {
			inj.wg.Add(1)
			inj.addTimer(wallDelay(epoch, w.win.End), func() {
				defer inj.wg.Done()
				inj.fireRevive(wi)
			})
		}
	}
	return nil
}

// wallDelay converts a schedule time to a delay from now against epoch.
func wallDelay(epoch time.Time, t sim.Time) time.Duration {
	d := time.Until(epoch.Add(time.Duration(float64(t) * float64(time.Millisecond))))
	if d < 0 {
		d = 0
	}
	return d
}

func (inj *LiveInjector) addTimer(d time.Duration, fn func()) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.timers = append(inj.timers, time.AfterFunc(d, fn))
}

func (inj *LiveInjector) fireCrash(wi int) {
	w := inj.waves[wi]
	inj.mu.Lock()
	inj.waveTimes = append(inj.waveTimes, time.Now())
	inj.mu.Unlock()
	for _, id := range w.victims {
		if err := inj.byID[id].Kill(); err != nil {
			inj.recordErr(fmt.Errorf("chaos: kill %d: %w", id, err))
			continue
		}
		inj.mu.Lock()
		inj.crashed[id] = true
		inj.mu.Unlock()
		if inj.cfg.OnCrash != nil {
			inj.cfg.OnCrash(id)
		}
	}
}

func (inj *LiveInjector) fireRevive(wi int) {
	w := inj.waves[wi]
	for _, id := range w.victims {
		if err := inj.byID[id].Revive(); err != nil {
			inj.recordErr(fmt.Errorf("chaos: revive %d: %w", id, err))
			continue
		}
		inj.mu.Lock()
		delete(inj.crashed, id)
		inj.mu.Unlock()
		if inj.cfg.OnRevive != nil {
			inj.cfg.OnRevive(id)
		}
	}
}

func (inj *LiveInjector) recordErr(err error) {
	inj.mu.Lock()
	inj.errs = append(inj.errs, err)
	inj.mu.Unlock()
}

// Wait blocks until every armed wave and revive timer has fired.
func (inj *LiveInjector) Wait() { inj.wg.Wait() }

// Stop cancels timers that have not fired yet; Wait then returns once
// in-flight ones finish.
func (inj *LiveInjector) Stop() {
	inj.mu.Lock()
	timers := inj.timers
	inj.timers = nil
	inj.mu.Unlock()
	for _, t := range timers {
		if t.Stop() {
			inj.wg.Done()
		}
	}
}

// Err returns the first kill/revive failure, or nil.
func (inj *LiveInjector) Err() error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if len(inj.errs) == 0 {
		return nil
	}
	return inj.errs[0]
}

// Crashed returns the members currently down by injection, sorted.
func (inj *LiveInjector) Crashed() []underlay.HostID {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]underlay.HostID, 0, len(inj.crashed))
	for id := range inj.crashed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WaveTimes returns the wall instants at which crash waves fired so
// far — the zero point of every time-to-recover measurement.
func (inj *LiveInjector) WaveTimes() []time.Time {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]time.Time(nil), inj.waveTimes...)
}

// ScrapeProm fetches a Prometheus text endpoint — the /metrics every
// live node serves — and returns series name → sample value, labels
// stripped (a labeled series keeps its last sample). The live campaign
// checks drive the same chaos.Report invariants from these numbers
// that the sim harness drives from in-memory counters.
func ScrapeProm(url string) (map[string]float64, error) {
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("chaos: scrape %s: status %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out, nil
}
