package chaos

import (
	"reflect"
	"testing"
)

// FuzzParseSchedule drives the schedule parser with arbitrary input:
// malformed or extreme schedules must return errors, never panic, and
// anything accepted must survive a Format/Parse round trip unchanged —
// the property the chaos suite's pinned campaign files rely on.
func FuzzParseSchedule(f *testing.F) {
	f.Add("partition 1000 2500 as=3,5\nloss 500 900 rate=0.35 as=4\ncrash 1500 n=3 revive=3000\n")
	f.Add("# comment only\n\n")
	f.Add("crash 0 n=1")
	f.Add("loss 0 1e300 rate=1")
	f.Add("partition 1 2 as=0,0,0,4294967295")
	f.Add("crash 5 n=2147483647 revive=5")
	f.Add("loss -1 2 rate=0.5")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Parse accepted a schedule Validate rejects: %v", verr)
		}
		out := Format(s)
		s2, err := Parse(out)
		if err != nil {
			t.Fatalf("Format produced unparsable %q: %v", out, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed schedule:\n%#v\n%#v", s, s2)
		}
	})
}
