package chaos

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"unap2p/internal/sim"
)

// The schedule grammar now feeds two injectors (sim and live), so its
// algebraic properties get pinned here with testing/quick: generated
// schedules always validate and round-trip through Parse∘Format, and
// the window predicates behave at their boundaries for arbitrary
// inputs.

// TestPropertyGenerateValidRoundTrip: for any seed, Generate yields a
// schedule that (1) validates, (2) has exactly the requested window
// counts, (3) is sorted by start time, and (4) survives Format→Parse
// byte-exactly as a structure.
func TestPropertyGenerateValidRoundTrip(t *testing.T) {
	prop := func(seed int64, parts, bursts, waves uint8) bool {
		cfg := GenConfig{
			Horizon:    20_000,
			ASes:       []int{0, 1, 2, 3, 4},
			Partitions: int(parts % 5),
			Bursts:     int(bursts % 5),
			Waves:      int(waves % 5),
		}
		r := rand.New(rand.NewSource(seed))
		s := Generate(r, cfg)
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: generated schedule invalid: %v", seed, err)
			return false
		}
		counts := map[Kind]int{}
		for _, w := range s.Windows {
			counts[w.Kind]++
		}
		if counts[ASPartition] != cfg.Partitions ||
			counts[LossBurst] != cfg.Bursts ||
			counts[CrashWave] != cfg.Waves {
			t.Logf("seed %d: window counts %v != requested", seed, counts)
			return false
		}
		for i := 1; i < len(s.Windows); i++ {
			if s.Windows[i].Start < s.Windows[i-1].Start {
				t.Logf("seed %d: windows not sorted by start", seed)
				return false
			}
		}
		back, err := Parse(Format(s))
		if err != nil {
			t.Logf("seed %d: Parse(Format(s)): %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(normalize(s), normalize(back)) {
			t.Logf("seed %d: round trip changed the schedule\n got %#v\nwant %#v", seed, back, s)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps a schedule to a canonical form for comparison: Parse
// leaves a nil ASes slice where Generate may have produced an empty
// one, which DeepEqual distinguishes but the semantics do not.
func normalize(s Schedule) Schedule {
	out := Schedule{Windows: append([]Window(nil), s.Windows...)}
	for i := range out.Windows {
		if len(out.Windows[i].ASes) == 0 {
			out.Windows[i].ASes = nil
		}
	}
	return out
}

// TestPropertyWindowActive pins the half-open interval contract for
// arbitrary finite windows: active at Start iff the window is
// non-empty, never active at End or beyond, always active strictly
// inside.
func TestPropertyWindowActive(t *testing.T) {
	prop := func(startMs uint16, durMs uint16) bool {
		start := sim.Time(startMs)
		end := start + sim.Time(durMs)
		w := Window{Kind: LossBurst, Start: start, End: end, Loss: 0.5}
		if w.active(start - 1) {
			return false
		}
		if w.active(end) || w.active(end+1) {
			return false
		}
		nonEmpty := durMs > 0
		if w.active(start) != nonEmpty {
			return false
		}
		if nonEmpty {
			mid := start + sim.Time(float64(durMs)/2)
			if mid < end && !w.active(mid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWindowScoped: an empty scope matches every AS; a
// non-empty scope matches exactly its members.
func TestPropertyWindowScoped(t *testing.T) {
	prop := func(rawASes []uint8, probe uint8) bool {
		ases := make([]int, 0, len(rawASes))
		seen := map[int]bool{}
		for _, a := range rawASes {
			if !seen[int(a)] {
				seen[int(a)] = true
				ases = append(ases, int(a))
			}
		}
		w := Window{Kind: LossBurst, ASes: ases, Loss: 0.5}
		if len(ases) == 0 {
			return w.scoped(int(probe)) && w.scoped(1<<20)
		}
		for _, a := range ases {
			if !w.scoped(a) {
				return false
			}
		}
		return w.scoped(int(probe)) == seen[int(probe)] && !w.scoped(1<<20)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
