// Package chaos drives deterministic fault campaigns against the
// simulated underlay: seeded schedules of AS partitions, correlated
// per-AS loss bursts, and peer crash waves (schedule.go, inject.go),
// plus the invariant checker every overlay's integration test runs
// after the dust settles (check.go). Everything is pure with respect
// to the seed — the same schedule against the same world produces
// bit-identical runs, which is what lets the chaos suite pin run files
// byte-for-byte.
package chaos

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"unap2p/internal/sim"
)

// Kind discriminates fault windows.
type Kind int

const (
	// ASPartition cuts the listed ASes off from the rest of the
	// network for [Start, End): traffic crossing the cut is dropped,
	// traffic inside either side still flows.
	ASPartition Kind = iota
	// LossBurst drops messages touching the listed ASes (all traffic
	// when the list is empty) with probability Loss for [Start, End) —
	// the correlated per-AS loss of access-network congestion.
	LossBurst
	// CrashWave takes Crash peers down at Start; when Revive is set
	// they come back at End.
	CrashWave
)

// String returns the schedule-line verb for the kind.
func (k Kind) String() string {
	switch k {
	case ASPartition:
		return "partition"
	case LossBurst:
		return "loss"
	case CrashWave:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Window is one fault interval.
type Window struct {
	Kind       Kind
	Start, End sim.Time
	// ASes scopes partitions (the cut set, required) and loss bursts
	// (optional; empty = everywhere). Sorted and deduped.
	ASes []int
	// Loss is the burst drop probability in [0, 1].
	Loss float64
	// Crash is the wave size (peers taken down).
	Crash int
	// Revive brings the wave's victims back at End.
	Revive bool
}

// active reports whether the window covers t.
func (w Window) active(t sim.Time) bool { return t >= w.Start && t < w.End }

// scoped reports whether asID falls under the window's AS scope.
func (w Window) scoped(asID int) bool {
	if len(w.ASes) == 0 {
		return true
	}
	for _, a := range w.ASes {
		if a == asID {
			return true
		}
	}
	return false
}

// Schedule is an ordered fault campaign.
type Schedule struct {
	Windows []Window
}

// Validate rejects schedules an Injector cannot arm: non-finite or
// negative times, inverted intervals, out-of-range rates, empty
// partition cuts, non-positive wave sizes.
func (s Schedule) Validate() error {
	for i, w := range s.Windows {
		if err := w.validate(); err != nil {
			return fmt.Errorf("window %d: %w", i, err)
		}
	}
	return nil
}

func (w Window) validate() error {
	if !finite(w.Start) || !finite(w.End) {
		return fmt.Errorf("%s: non-finite or negative time", w.Kind)
	}
	if w.End < w.Start {
		return fmt.Errorf("%s: end %v before start %v", w.Kind, w.End, w.Start)
	}
	switch w.Kind {
	case ASPartition:
		if len(w.ASes) == 0 {
			return fmt.Errorf("partition: empty cut set")
		}
	case LossBurst:
		if math.IsNaN(w.Loss) || w.Loss < 0 || w.Loss > 1 {
			return fmt.Errorf("loss: rate %v outside [0,1]", w.Loss)
		}
	case CrashWave:
		if w.Crash < 1 {
			return fmt.Errorf("crash: wave size %d < 1", w.Crash)
		}
	default:
		return fmt.Errorf("unknown kind %d", int(w.Kind))
	}
	return nil
}

func finite(t sim.Time) bool {
	f := float64(t)
	return !math.IsNaN(f) && !math.IsInf(f, 0) && f >= 0
}

// Parse reads a schedule from its line format:
//
//	# comment
//	partition <start> <end> as=<id>[,<id>...]
//	loss <start> <end> rate=<p> [as=<id>[,<id>...]]
//	crash <at> n=<count> [revive=<time>]
//
// Times are sim-time milliseconds. Malformed input returns an error —
// never a panic (this is the fuzz contract).
func Parse(text string) (Schedule, error) {
	var s Schedule
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		var w Window
		var err error
		switch f[0] {
		case "partition":
			w, err = parsePartition(f[1:])
		case "loss":
			w, err = parseLoss(f[1:])
		case "crash":
			w, err = parseCrash(f[1:])
		default:
			err = fmt.Errorf("unknown verb %q", f[0])
		}
		if err != nil {
			return Schedule{}, fmt.Errorf("line %d: %w", ln, err)
		}
		if err := w.validate(); err != nil {
			return Schedule{}, fmt.Errorf("line %d: %w", ln, err)
		}
		s.Windows = append(s.Windows, w)
	}
	if err := sc.Err(); err != nil {
		return Schedule{}, fmt.Errorf("scan: %w", err)
	}
	return s, nil
}

func parsePartition(args []string) (Window, error) {
	w := Window{Kind: ASPartition}
	if len(args) < 3 {
		return w, fmt.Errorf("partition: want <start> <end> as=..., got %d args", len(args))
	}
	var err error
	if w.Start, err = parseTime(args[0]); err != nil {
		return w, err
	}
	if w.End, err = parseTime(args[1]); err != nil {
		return w, err
	}
	for _, kv := range args[2:] {
		key, val, err := splitKV(kv)
		if err != nil {
			return w, err
		}
		switch key {
		case "as":
			if w.ASes, err = parseASList(val); err != nil {
				return w, err
			}
		default:
			return w, fmt.Errorf("partition: unknown option %q", key)
		}
	}
	return w, nil
}

func parseLoss(args []string) (Window, error) {
	w := Window{Kind: LossBurst, Loss: -1}
	if len(args) < 3 {
		return w, fmt.Errorf("loss: want <start> <end> rate=..., got %d args", len(args))
	}
	var err error
	if w.Start, err = parseTime(args[0]); err != nil {
		return w, err
	}
	if w.End, err = parseTime(args[1]); err != nil {
		return w, err
	}
	for _, kv := range args[2:] {
		key, val, err := splitKV(kv)
		if err != nil {
			return w, err
		}
		switch key {
		case "rate":
			if w.Loss, err = strconv.ParseFloat(val, 64); err != nil {
				return w, fmt.Errorf("loss: bad rate %q", val)
			}
		case "as":
			if w.ASes, err = parseASList(val); err != nil {
				return w, err
			}
		default:
			return w, fmt.Errorf("loss: unknown option %q", key)
		}
	}
	if w.Loss < 0 {
		return w, fmt.Errorf("loss: rate= is required")
	}
	return w, nil
}

func parseCrash(args []string) (Window, error) {
	w := Window{Kind: CrashWave}
	if len(args) < 2 {
		return w, fmt.Errorf("crash: want <at> n=..., got %d args", len(args))
	}
	var err error
	if w.Start, err = parseTime(args[0]); err != nil {
		return w, err
	}
	w.End = w.Start
	for _, kv := range args[1:] {
		key, val, err := splitKV(kv)
		if err != nil {
			return w, err
		}
		switch key {
		case "n":
			if w.Crash, err = strconv.Atoi(val); err != nil {
				return w, fmt.Errorf("crash: bad count %q", val)
			}
		case "revive":
			if w.End, err = parseTime(val); err != nil {
				return w, err
			}
			w.Revive = true
		default:
			return w, fmt.Errorf("crash: unknown option %q", key)
		}
	}
	return w, nil
}

func parseTime(s string) (sim.Time, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return sim.Time(f), nil
}

func splitKV(s string) (key, val string, err error) {
	i := strings.IndexByte(s, '=')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("bad option %q (want key=value)", s)
	}
	return s[:i], s[i+1:], nil
}

func parseASList(val string) ([]int, error) {
	parts := strings.Split(val, ",")
	seen := make(map[int]bool, len(parts))
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(p)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad AS id %q", p)
		}
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Format renders the schedule back to its line format; Parse(Format(s))
// reproduces a parsed schedule exactly (the fuzz round-trip contract).
func Format(s Schedule) string {
	var b strings.Builder
	for _, w := range s.Windows {
		switch w.Kind {
		case ASPartition:
			fmt.Fprintf(&b, "partition %s %s as=%s\n",
				ftime(w.Start), ftime(w.End), asList(w.ASes))
		case LossBurst:
			fmt.Fprintf(&b, "loss %s %s rate=%s",
				ftime(w.Start), ftime(w.End),
				strconv.FormatFloat(w.Loss, 'g', -1, 64))
			if len(w.ASes) > 0 {
				fmt.Fprintf(&b, " as=%s", asList(w.ASes))
			}
			b.WriteByte('\n')
		case CrashWave:
			fmt.Fprintf(&b, "crash %s n=%d", ftime(w.Start), w.Crash)
			if w.Revive {
				fmt.Fprintf(&b, " revive=%s", ftime(w.End))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func ftime(t sim.Time) string { return strconv.FormatFloat(float64(t), 'g', -1, 64) }

func asList(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, ",")
}

// GenConfig tunes Generate.
type GenConfig struct {
	// Horizon bounds every window (required > 0).
	Horizon sim.Time
	// ASes is the pool partition cuts and scoped bursts draw from
	// (required when Partitions or Bursts > 0).
	ASes []int
	// Partitions, Bursts, Waves count windows of each kind.
	Partitions, Bursts, Waves int
	// MaxLoss caps burst rates (default 0.8).
	MaxLoss float64
	// MaxCrash caps wave sizes (default 3).
	MaxCrash int
}

// Generate draws a valid schedule from the seeded stream — the same
// stream state always produces the same campaign. Windows come out
// sorted by start time.
func Generate(r *rand.Rand, cfg GenConfig) Schedule {
	if cfg.Horizon <= 0 {
		panic("chaos: Generate needs a positive horizon")
	}
	if (cfg.Partitions > 0 || cfg.Bursts > 0) && len(cfg.ASes) == 0 {
		panic("chaos: Generate needs AS ids for partitions/bursts")
	}
	if cfg.MaxLoss <= 0 || cfg.MaxLoss > 1 {
		cfg.MaxLoss = 0.8
	}
	if cfg.MaxCrash < 1 {
		cfg.MaxCrash = 3
	}
	h := float64(cfg.Horizon)
	var s Schedule
	for i := 0; i < cfg.Partitions; i++ {
		start := r.Float64() * 0.6 * h
		dur := (0.05 + 0.25*r.Float64()) * h
		s.Windows = append(s.Windows, Window{
			Kind:  ASPartition,
			Start: sim.Time(start),
			End:   sim.Time(start + dur),
			ASes:  pickASes(r, cfg.ASes, 1+r.Intn(maxInt(1, len(cfg.ASes)/2))),
		})
	}
	for i := 0; i < cfg.Bursts; i++ {
		start := r.Float64() * 0.6 * h
		dur := (0.05 + 0.2*r.Float64()) * h
		w := Window{
			Kind:  LossBurst,
			Start: sim.Time(start),
			End:   sim.Time(start + dur),
			Loss:  0.1 + (cfg.MaxLoss-0.1)*r.Float64(),
		}
		if r.Float64() < 0.5 {
			w.ASes = pickASes(r, cfg.ASes, 1+r.Intn(maxInt(1, len(cfg.ASes)/2)))
		}
		s.Windows = append(s.Windows, w)
	}
	for i := 0; i < cfg.Waves; i++ {
		at := r.Float64() * 0.7 * h
		w := Window{
			Kind:  CrashWave,
			Start: sim.Time(at),
			End:   sim.Time(at),
			Crash: 1 + r.Intn(cfg.MaxCrash),
		}
		if r.Float64() < 0.5 {
			w.Revive = true
			w.End = sim.Time(at + (0.1+0.2*r.Float64())*h)
		}
		s.Windows = append(s.Windows, w)
	}
	sort.SliceStable(s.Windows, func(i, j int) bool {
		return s.Windows[i].Start < s.Windows[j].Start
	})
	return s
}

func pickASes(r *rand.Rand, pool []int, k int) []int {
	perm := r.Perm(len(pool))
	if k > len(pool) {
		k = len(pool)
	}
	out := make([]int, 0, k)
	for _, idx := range perm[:k] {
		out = append(out, pool[idx])
	}
	sort.Ints(out)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
