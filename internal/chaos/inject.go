package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Injector arms a schedule against a live world: partition and loss
// windows install a time-gated Faults.Drop hook on the transport;
// crash waves become kernel events that flip Host.Up. All randomness
// (loss draws, victim selection) flows from the single seeded stream,
// so a campaign is bit-identical per seed.
type Injector struct {
	K     *sim.Kernel
	T     *transport.Transport
	U     *underlay.Network
	Sched Schedule
	// Rand drives loss-burst draws and crash-victim shuffles. Required
	// when the schedule has loss bursts or crash waves.
	Rand *rand.Rand
	// Eligible is the pool crash waves pick victims from; nil means
	// every host in the underlay. Pinning the pool lets tests protect
	// vantage points and sources from the waves.
	Eligible []*underlay.Host
	// OnCrash and OnRevive observe wave events (after Up is flipped),
	// in deterministic victim order.
	OnCrash, OnRevive func(h *underlay.Host)

	crashed map[underlay.HostID]bool
	armed   bool
}

// NewInjector binds a schedule to a kernel and transport.
func NewInjector(k *sim.Kernel, tr *transport.Transport, sched Schedule, r *rand.Rand) *Injector {
	return &Injector{
		K:       k,
		T:       tr,
		U:       tr.Underlay(),
		Sched:   sched,
		Rand:    r,
		crashed: make(map[underlay.HostID]bool),
	}
}

// Arm validates the schedule, chains the drop hook, and schedules the
// crash waves. Call once, before Run.
func (inj *Injector) Arm() error {
	if inj.armed {
		return fmt.Errorf("chaos: injector already armed")
	}
	if err := inj.Sched.Validate(); err != nil {
		return err
	}
	needsRand := false
	hasDropWindows := false
	for _, w := range inj.Sched.Windows {
		switch w.Kind {
		case ASPartition:
			hasDropWindows = true
		case LossBurst:
			hasDropWindows = true
			if w.Loss > 0 {
				needsRand = true
			}
		case CrashWave:
			needsRand = true
		}
	}
	if needsRand && inj.Rand == nil {
		return fmt.Errorf("chaos: schedule needs a rand source")
	}
	inj.armed = true
	if hasDropWindows {
		prev := inj.T.Faults.Drop
		inj.T.Faults.Drop = func(from, to *underlay.Host) bool {
			if prev != nil && prev(from, to) {
				return true
			}
			return inj.drop(from, to)
		}
	}
	for _, w := range inj.Sched.Windows {
		if w.Kind != CrashWave {
			continue
		}
		w := w
		inj.K.At(w.Start, func() { inj.crash(w) })
	}
	return nil
}

// drop applies the active partition and loss windows to one send.
func (inj *Injector) drop(from, to *underlay.Host) bool {
	now := inj.K.Now()
	for _, w := range inj.Sched.Windows {
		if !w.active(now) {
			continue
		}
		switch w.Kind {
		case ASPartition:
			if w.scoped(from.AS.ID) != w.scoped(to.AS.ID) {
				return true
			}
		case LossBurst:
			if w.Loss > 0 && (w.scoped(from.AS.ID) || w.scoped(to.AS.ID)) &&
				inj.Rand.Float64() < w.Loss {
				return true
			}
		}
	}
	return false
}

// crash executes one wave: victims are the first Crash hosts of a
// seeded shuffle over the live eligible pool (id-sorted first, so the
// shuffle is deterministic), taken down together.
func (inj *Injector) crash(w Window) {
	pool := inj.Eligible
	if pool == nil {
		pool = inj.U.Hosts()
	}
	var alive []*underlay.Host
	for _, h := range pool {
		if h.Up && !inj.crashed[h.ID] {
			alive = append(alive, h)
		}
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].ID < alive[j].ID })
	inj.Rand.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	n := w.Crash
	if n > len(alive) {
		n = len(alive)
	}
	victims := alive[:n]
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	for _, h := range victims {
		h.Up = false
		inj.crashed[h.ID] = true
		if inj.OnCrash != nil {
			inj.OnCrash(h)
		}
	}
	if w.Revive {
		revived := victims
		inj.K.At(w.End, func() {
			for _, h := range revived {
				h.Up = true
				delete(inj.crashed, h.ID)
				if inj.OnRevive != nil {
					inj.OnRevive(h)
				}
			}
		})
	}
}

// Crashed returns the hosts currently down by injection, sorted.
func (inj *Injector) Crashed() []underlay.HostID {
	out := make([]underlay.HostID, 0, len(inj.crashed))
	for id := range inj.crashed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
