package chaos

import (
	"fmt"
	"strings"

	"unap2p/internal/underlay"
)

// Subject is what the checker needs from an overlay: the reference
// sweep and the eviction ledger every heal.go exports.
type Subject interface {
	// Refs returns every peer the overlay still references (routing
	// tables, neighbor sets, supervisor slots...), deduped and sorted.
	Refs() []underlay.HostID
	// Evicted returns the peers the resilience layer evicted, sorted.
	Evicted() []underlay.HostID
}

// Violation is one broken invariant.
type Violation struct {
	// Invariant names the rule ("dead-refs", "size-bound",
	// "success-floor", "reconverge").
	Invariant string
	// Detail says what was observed.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Report accumulates invariant checks for one overlay under one
// campaign.
type Report struct {
	// Name labels the overlay/scenario in failures.
	Name       string
	Violations []Violation
}

// Check runs the universal invariant — no routing to evicted peers —
// and returns a report the caller extends with overlay-specific
// bounds.
func Check(name string, s Subject) *Report {
	r := &Report{Name: name}
	r.NoDeadRefs(s)
	return r
}

// Add records a violation.
func (r *Report) Add(invariant, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Ok reports a clean run.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil on a clean run, or one error describing every
// violation.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	lines := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		lines[i] = v.String()
	}
	return fmt.Errorf("chaos: %s: %d invariant violations:\n  %s",
		r.Name, len(r.Violations), strings.Join(lines, "\n  "))
}

// NoDeadRefs asserts the overlay references no evicted peer — evicted
// state must never be routed to again.
func (r *Report) NoDeadRefs(s Subject) {
	evicted := make(map[underlay.HostID]bool)
	for _, id := range s.Evicted() {
		evicted[id] = true
	}
	for _, id := range s.Refs() {
		if evicted[id] {
			r.Add("dead-refs", "overlay still references evicted peer %d", id)
		}
	}
}

// SizeBounds asserts every per-peer set size sits in [min, max] —
// bucket occupancy, neighbor sets, parent counts.
func (r *Report) SizeBounds(what string, sizes []int, min, max int) {
	for i, n := range sizes {
		if n < min || n > max {
			r.Add("size-bound", "%s[%d] = %d outside [%d, %d]", what, i, n, min, max)
		}
	}
}

// SuccessFloor asserts ok/total ≥ floor — the post-fault lookup
// success requirement.
func (r *Report) SuccessFloor(what string, ok, total int, floor float64) {
	if total <= 0 {
		r.Add("success-floor", "%s: no attempts recorded", what)
		return
	}
	rate := float64(ok) / float64(total)
	if rate < floor {
		r.Add("success-floor", "%s: %d/%d = %.3f below floor %.3f",
			what, ok, total, rate, floor)
	}
}

// Reconverged asserts a post-recovery metric climbed back to within
// tolerance of its pre-fault value — eventual re-convergence.
func (r *Report) Reconverged(what string, before, after, tolerance float64) {
	if after < before-tolerance {
		r.Add("reconverge", "%s: recovered to %.3f, pre-fault %.3f (tolerance %.3f)",
			what, after, before, tolerance)
	}
}
