package mobility

import (
	"testing"

	"unap2p/internal/geo"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/underlay"
)

func buildPoints(t *testing.T) (*underlay.Network, []AttachmentPoint) {
	t.Helper()
	net := topology.Star(5, topology.DefaultConfig())
	var points []AttachmentPoint
	for i, as := range net.ASes() {
		if as.Kind != underlay.LocalISP {
			continue
		}
		points = append(points, AttachmentPoint{
			AS:          as,
			Pos:         geo.Coord{Lat: float64(10 * i), Lon: float64(10 * i)},
			AccessDelay: sim.Duration(5 * (i + 1)),
		})
	}
	return net, points
}

func TestAttachAppliesState(t *testing.T) {
	net, points := buildPoints(t)
	k := sim.NewKernel()
	m := NewModel(k, sim.NewSource(1).Stream("mob"), points, 100)
	h := net.AddHost(points[0].AS, 1)
	m.Attach(h, 1)
	if h.AS.ID != points[1].AS.ID || h.AccessDelay != points[1].AccessDelay {
		t.Fatal("Attach did not apply point state")
	}
	if h.Lat != points[1].Pos.Lat {
		t.Fatal("position not applied")
	}
	if cur, ok := m.Current(h.ID); !ok || cur != 1 {
		t.Fatal("Current wrong")
	}
}

func TestTrackMovesHosts(t *testing.T) {
	net, points := buildPoints(t)
	k := sim.NewKernel()
	m := NewModel(k, sim.NewSource(2).Stream("mob"), points, 50)
	h := net.AddHost(points[0].AS, 1)
	moves := 0
	m.OnMove = func(hh *underlay.Host, from, to AttachmentPoint) {
		moves++
		if from.AS.ID == to.AS.ID && from.Pos == to.Pos {
			t.Fatal("moved to the same point")
		}
		if hh.AS.ID != to.AS.ID {
			t.Fatal("host state not updated before OnMove")
		}
	}
	m.Attach(h, 0)
	m.Track(h)
	k.Run(1000)
	if moves == 0 || uint64(moves) != m.Moves {
		t.Fatalf("moves = %d (counter %d)", moves, m.Moves)
	}
	// Expected ≈ 1000/50 = 20 handovers.
	if moves < 5 || moves > 60 {
		t.Fatalf("move count %d implausible for residence 50/horizon 1000", moves)
	}
}

func TestTrackBeforeAttachPanics(t *testing.T) {
	net, points := buildPoints(t)
	k := sim.NewKernel()
	m := NewModel(k, sim.NewSource(3).Stream("mob"), points, 50)
	h := net.AddHost(points[0].AS, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Track(h)
}

func TestNewModelValidation(t *testing.T) {
	_, points := buildPoints(t)
	for i, fn := range []func(){
		func() { NewModel(sim.NewKernel(), nil, points[:1], 100) },
		func() { NewModel(sim.NewKernel(), nil, points, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSnapshotStaleness(t *testing.T) {
	net, points := buildPoints(t)
	k := sim.NewKernel()
	m := NewModel(k, sim.NewSource(4).Stream("mob"), points, 50)
	h := net.AddHost(points[0].AS, 1)
	m.Attach(h, 0)

	snap := Take(h, k.Now())
	// Fresh snapshot: nothing stale.
	st := snap.Check(h)
	if st.ASChanged || st.PositionErrorKm != 0 || st.AccessDelta != 0 {
		t.Fatalf("fresh snapshot stale: %+v", st)
	}
	// Move the host: everything goes stale.
	m.Attach(h, 2)
	st = snap.Check(h)
	if !st.ASChanged {
		t.Fatal("AS change not detected")
	}
	if st.PositionErrorKm <= 0 {
		t.Fatal("position error not detected")
	}
	if st.AccessDelta == 0 {
		t.Fatal("access delta not detected")
	}
}

func TestMobilityDeterminism(t *testing.T) {
	run := func() uint64 {
		net, points := buildPoints(t)
		k := sim.NewKernel()
		m := NewModel(k, sim.NewSource(5).Stream("mob"), points, 30)
		for i := 0; i < 10; i++ {
			h := net.AddHost(points[0].AS, 1)
			m.Attach(h, i%len(points))
			m.Track(h)
		}
		k.Run(2000)
		return m.Moves
	}
	if run() != run() {
		t.Fatal("mobility not deterministic")
	}
}
