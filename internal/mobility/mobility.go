// Package mobility models the §6 "Mobile Support" challenge: mobile peers
// change access network (and therefore ISP, IP, latency, and position)
// while the P2P system is running, so "some underlay provided information
// such as ISP-location and latency no longer apply because of continuous
// variation". The package moves hosts between attachment points and lets
// experiments quantify how stale each information kind becomes.
package mobility

import (
	"math/rand"

	"unap2p/internal/geo"
	"unap2p/internal/sim"
	"unap2p/internal/underlay"
)

// AttachmentPoint is a place a mobile host can connect from: an AS plus a
// geographic position and an access profile.
type AttachmentPoint struct {
	AS          *underlay.AS
	Pos         geo.Coord
	AccessDelay sim.Duration
}

// Model drives mobile hosts between attachment points.
type Model struct {
	Kernel *sim.Kernel
	Rand   *rand.Rand
	// Points are the candidate attachment points (cells, hotspots, home
	// networks); a move picks a random different one.
	Points []AttachmentPoint
	// MeanResidence is the mean time a mobile host stays attached before
	// moving (exponential).
	MeanResidence sim.Duration
	// OnMove, when non-nil, is invoked after a host has moved (new state
	// already applied) — the hook underlay-aware systems use to refresh
	// their information.
	OnMove func(h *underlay.Host, from, to AttachmentPoint)
	// Trace, when non-nil, observes every handover (after the move is
	// applied, before OnMove) — the telemetry layer's event source.
	Trace func(h *underlay.Host, from, to AttachmentPoint)
	// Moves counts handovers performed.
	Moves uint64

	current map[underlay.HostID]int
}

// NewModel validates and returns a mobility model.
func NewModel(k *sim.Kernel, r *rand.Rand, points []AttachmentPoint, meanResidence sim.Duration) *Model {
	if len(points) < 2 {
		panic("mobility: need at least two attachment points")
	}
	if meanResidence <= 0 {
		panic("mobility: non-positive residence time")
	}
	return &Model{
		Kernel:        k,
		Rand:          r,
		Points:        points,
		MeanResidence: meanResidence,
		current:       make(map[underlay.HostID]int),
	}
}

// Attach places a host at a given point immediately (initial placement).
func (m *Model) Attach(h *underlay.Host, point int) {
	p := m.Points[point]
	h.AS = p.AS
	h.AccessDelay = p.AccessDelay
	h.Lat, h.Lon = p.Pos.Lat, p.Pos.Lon
	m.current[h.ID] = point
}

// Track starts the residence/move cycle for a host. The host must have
// been Attach-ed first.
func (m *Model) Track(h *underlay.Host) {
	if _, ok := m.current[h.ID]; !ok {
		panic("mobility: Track before Attach")
	}
	m.scheduleMove(h)
}

func (m *Model) scheduleMove(h *underlay.Host) {
	m.Kernel.Schedule(sim.Exp(m.Rand, m.MeanResidence), func() {
		m.move(h)
		m.scheduleMove(h)
	})
}

func (m *Model) move(h *underlay.Host) {
	cur := m.current[h.ID]
	next := m.Rand.Intn(len(m.Points) - 1)
	if next >= cur {
		next++
	}
	from := m.Points[cur]
	m.Attach(h, next)
	m.Moves++
	if m.Trace != nil {
		m.Trace(h, from, m.Points[next])
	}
	if m.OnMove != nil {
		m.OnMove(h, from, m.Points[next])
	}
}

// Current returns the host's attachment point index.
func (m *Model) Current(h underlay.HostID) (int, bool) {
	p, ok := m.current[h]
	return p, ok
}

// Snapshot is a frozen view of a host's underlay information, as a
// non-refreshing aware system would cache it.
type Snapshot struct {
	ASID        int
	Pos         geo.Coord
	AccessDelay sim.Duration
	TakenAt     sim.Time
}

// Take records the host's current information.
func Take(h *underlay.Host, now sim.Time) Snapshot {
	return Snapshot{
		ASID:        h.AS.ID,
		Pos:         geo.Coord{Lat: h.Lat, Lon: h.Lon},
		AccessDelay: h.AccessDelay,
		TakenAt:     now,
	}
}

// Staleness compares a cached snapshot with the host's live state.
type Staleness struct {
	// ASChanged reports whether the cached ISP-location is wrong.
	ASChanged bool
	// PositionErrorKm is the geolocation error of the cached position.
	PositionErrorKm float64
	// AccessDelta is the latency-information error at the access link.
	AccessDelta sim.Duration
}

// Check measures how stale a snapshot is against the live host.
func (s Snapshot) Check(h *underlay.Host) Staleness {
	d := s.AccessDelay - h.AccessDelay
	if d < 0 {
		d = -d
	}
	return Staleness{
		ASChanged:       s.ASID != h.AS.ID,
		PositionErrorKm: geo.Haversine(s.Pos, geo.Coord{Lat: h.Lat, Lon: h.Lon}),
		AccessDelta:     d,
	}
}
