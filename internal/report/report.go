// Package report persists experiment results to disk: one text table and
// one JSON document per experiment, plus an index — so a full
// reproduction run leaves an auditable artifact trail.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"unap2p/internal/experiments"
)

// Writer saves results under a directory.
type Writer struct {
	Dir string

	written []string
}

// NewWriter creates (or reuses) the output directory.
func NewWriter(dir string) (*Writer, error) {
	if dir == "" {
		return nil, fmt.Errorf("report: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return &Writer{Dir: dir}, nil
}

// Save writes <id>.txt (rendered table) and <id>.json for one result.
func (w *Writer) Save(res experiments.Result) error {
	txt := filepath.Join(w.Dir, res.ID+".txt")
	if err := os.WriteFile(txt, []byte(res.Render()), 0o644); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	jsonPath := filepath.Join(w.Dir, res.ID+".json")
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	w.written = append(w.written, res.ID)
	return nil
}

// Finish writes an INDEX.txt listing every saved experiment and returns
// the number of results written.
func (w *Writer) Finish() (int, error) {
	ids := append([]string(nil), w.written...)
	sort.Strings(ids)
	var sb strings.Builder
	sb.WriteString("unap2p experiment results\n")
	sb.WriteString("=========================\n\n")
	for _, id := range ids {
		fmt.Fprintf(&sb, "%-24s %s\n", id, experiments.TitleOf(id))
	}
	if err := os.WriteFile(filepath.Join(w.Dir, "INDEX.txt"), []byte(sb.String()), 0o644); err != nil {
		return 0, fmt.Errorf("report: %w", err)
	}
	return len(ids), nil
}
