package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unap2p/internal/experiments"
)

func TestSaveAndFinish(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.Run("fig2-costs", experiments.RunConfig{Seed: 1, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Save(res); err != nil {
		t.Fatal(err)
	}
	n, err := w.Finish()
	if err != nil || n != 1 {
		t.Fatalf("finish: n=%d err=%v", n, err)
	}

	txt, err := os.ReadFile(filepath.Join(dir, "fig2-costs.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "fig2-costs") {
		t.Fatal("text artifact missing header")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "fig2-costs.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "fig2-costs" || len(back.Rows) == 0 {
		t.Fatalf("json artifact wrong: %+v", back)
	}
	idx, err := os.ReadFile(filepath.Join(dir, "INDEX.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(idx), "fig2-costs") {
		t.Fatal("index missing entry")
	}
}

func TestNewWriterValidation(t *testing.T) {
	if _, err := NewWriter(""); err == nil {
		t.Fatal("empty dir accepted")
	}
	// A path under an existing *file* must fail.
	f := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWriter(filepath.Join(f, "sub")); err == nil {
		t.Fatal("dir under file accepted")
	}
}
