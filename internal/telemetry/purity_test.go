// Purity acceptance test: telemetry is a pure observer. Running an
// experiment with a Recorder attached must produce bit-identical results
// to running it bare — same tables, same latencies, same counters — for
// experiments exercising every observed component kind (transport +
// kernel, churn, mobility).
package telemetry_test

import (
	"bytes"
	"reflect"
	"testing"

	"unap2p/internal/experiments"
	"unap2p/internal/telemetry"
)

func runBothWays(t *testing.T, id string, scale float64) (bare, observed experiments.Result, rec *telemetry.Recorder) {
	t.Helper()
	cfg := experiments.RunConfig{Seed: 1, Scale: scale}
	bare, err := experiments.Run(id, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec = telemetry.NewRecorder(telemetry.Config{
		Capacity: 1 << 14,
		Sink:     telemetry.NewRunWriter(&buf),
		Manifest: telemetry.Manifest{Name: id, Experiment: id, Seed: 1, Scale: scale},
	})
	cfg.Obs = rec
	observed, err = experiments.Run(id, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return bare, observed, rec
}

func TestRecorderIsPureObserver(t *testing.T) {
	cases := []struct {
		id    string
		scale float64
	}{
		{"exp-intra-as", 0.5},   // transport + kernel (Gnutella flood + file stage)
		{"exp-superpeer", 0.5},  // churn driver under a structured overlay
		{"exp-mobility", 0.5},   // mobility handovers
		{"exp-pns-kademlia", 1}, // kernel-less RPC overlay
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			bare, observed, rec := runBothWays(t, tc.id, tc.scale)
			if !reflect.DeepEqual(bare, observed) {
				t.Fatalf("attaching a recorder changed the result of %s:\nbare:\n%s\nobserved:\n%s",
					tc.id, bare.Render(), observed.Render())
			}
			if rec.Recorded() == 0 && len(rec.Summary().Metrics.Flatten()) == 0 {
				t.Fatalf("recorder observed nothing during %s; wiring is missing", tc.id)
			}
		})
	}
}

// TestRecordedRunsAreReproducible pins the stronger property the CLI
// relies on: two recordings of the same experiment and seed produce
// byte-identical run files, so `unapctl diff` on them is empty.
func TestRecordedRunsAreReproducible(t *testing.T) {
	record := func() []byte {
		var buf bytes.Buffer
		rec := telemetry.NewRecorder(telemetry.Config{
			Capacity: 1 << 14,
			Sink:     telemetry.NewRunWriter(&buf),
			Manifest: telemetry.Manifest{Name: "repro", Experiment: "exp-pns-kademlia", Seed: 3, Scale: 1},
		})
		if _, err := experiments.Run("exp-pns-kademlia", experiments.RunConfig{Seed: 3, Scale: 1, Obs: rec}); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := record(), record()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical-seed recordings produced different run files")
	}
	runA, err := telemetry.ReadRun(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	runB, err := telemetry.ReadRun(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if ds := telemetry.DiffRuns(runA, runB, 0); len(ds) != 0 {
		t.Fatalf("identical-seed runs diff: %+v", ds)
	}
}
