package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// A run file is JSON Lines with one typed record per line:
//
//	{"t":"manifest","manifest":{…}}   exactly once, first line
//	{"t":"event","event":{…}}         zero or more, in record order
//	{"t":"summary","summary":{…}}     exactly once, last line
//
// The format is append-only and stream-writable (the Recorder drains its
// ring here), deterministic (no wall-clock state), and self-describing
// (readers skip record types they don't know).
type lineRecord struct {
	T        string    `json:"t"`
	Manifest *Manifest `json:"manifest,omitempty"`
	Event    *Event    `json:"event,omitempty"`
	Summary  *Summary  `json:"summary,omitempty"`
}

// RunWriter streams a run file. Methods are not concurrency-safe; the
// Recorder serializes access through its own lock.
type RunWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewRunWriter returns a writer streaming to w.
func NewRunWriter(w io.Writer) *RunWriter {
	bw := bufio.NewWriter(w)
	return &RunWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// WriteManifest writes the opening manifest record.
func (w *RunWriter) WriteManifest(m Manifest) error {
	return w.enc.Encode(lineRecord{T: "manifest", Manifest: &m})
}

// WriteEvent writes one event record.
func (w *RunWriter) WriteEvent(e Event) error {
	return w.enc.Encode(lineRecord{T: "event", Event: &e})
}

// WriteSummary writes the closing summary record.
func (w *RunWriter) WriteSummary(s Summary) error {
	return w.enc.Encode(lineRecord{T: "summary", Summary: &s})
}

// Flush flushes buffered output to the underlying writer.
func (w *RunWriter) Flush() error { return w.bw.Flush() }

// Run is a fully parsed run file.
type Run struct {
	Manifest Manifest
	Events   []Event
	Summary  Summary
	// HasSummary reports whether a summary record was present (a run cut
	// short before Recorder.Close leaves none).
	HasSummary bool
}

// ReadRun parses a run file from r. Unknown record types are skipped so
// the format can grow.
func ReadRun(r io.Reader) (*Run, error) {
	run := &Run{}
	sawManifest := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec lineRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: run file line %d: %w", lineNo, err)
		}
		switch rec.T {
		case "manifest":
			if rec.Manifest != nil {
				run.Manifest = *rec.Manifest
				sawManifest = true
			}
		case "event":
			if rec.Event != nil {
				run.Events = append(run.Events, *rec.Event)
			}
		case "summary":
			if rec.Summary != nil {
				run.Summary = *rec.Summary
				run.HasSummary = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: run file: %w", err)
	}
	if !sawManifest {
		return nil, fmt.Errorf("telemetry: run file has no manifest record")
	}
	return run, nil
}

// ReadRunFile parses the run file at path.
func ReadRunFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	run, err := ReadRun(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return run, nil
}

// Delta is one metric whose value differs between two runs.
type Delta struct {
	// Metric is the flattened metric name (see MetricsSnapshot.Flatten).
	Metric string `json:"metric"`
	// A and B are the metric's values in each run (0 when missing —
	// see MissingIn).
	A float64 `json:"a"`
	B float64 `json:"b"`
	// Rel is |A-B| / max(|A|,|B|), the relative delta compared against
	// the threshold.
	Rel float64 `json:"rel"`
	// MissingIn is "a" or "b" when the metric exists in only one run.
	MissingIn string `json:"missing_in,omitempty"`
}

func relDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	// a != b implies max(|a|,|b|) > 0.
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// DiffRuns compares two runs' metric snapshots and returns every metric
// whose relative delta exceeds threshold (plus metrics present in only
// one run), sorted by descending relative delta then name. Two runs of
// the same experiment and seed diff empty at any threshold ≥ 0; two
// seeds of the same experiment surface exactly the metrics that moved —
// the seed-to-seed regression detector.
func DiffRuns(a, b *Run, threshold float64) []Delta {
	fa := a.Summary.Metrics.Flatten()
	fb := b.Summary.Metrics.Flatten()
	var out []Delta
	for name, va := range fa {
		vb, ok := fb[name]
		if !ok {
			out = append(out, Delta{Metric: name, A: va, Rel: 1, MissingIn: "b"})
			continue
		}
		if rel := relDelta(va, vb); rel > threshold {
			out = append(out, Delta{Metric: name, A: va, B: vb, Rel: rel})
		}
	}
	for name, vb := range fb {
		if _, ok := fa[name]; !ok {
			out = append(out, Delta{Metric: name, B: vb, Rel: 1, MissingIn: "a"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel > out[j].Rel
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
