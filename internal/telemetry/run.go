package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// A run file is JSON Lines with one typed record per line:
//
//	{"t":"manifest","manifest":{…}}   exactly once, first line
//	{"t":"event","event":{…}}         zero or more, in record order
//	{"t":"sample","sample":{…}}       zero or more, probe ticks in order
//	{"t":"summary","summary":{…}}     exactly once, last line
//
// The format is append-only and stream-writable (the Recorder drains its
// ring here), deterministic (no wall-clock state), and self-describing
// (readers skip record types they don't know). Sample records interleave
// with events in capture order: the Recorder drains buffered events
// before writing each sample, so a sample sits after every event it
// could have observed.
type lineRecord struct {
	T        string    `json:"t"`
	Manifest *Manifest `json:"manifest,omitempty"`
	Event    *Event    `json:"event,omitempty"`
	Sample   *Sample   `json:"sample,omitempty"`
	Summary  *Summary  `json:"summary,omitempty"`
}

// RunWriter streams a run file. Methods are not concurrency-safe; the
// Recorder serializes access through its own lock. The first write error
// sticks: later writes become no-ops returning it, so a full disk midway
// through a million-event run fails fast instead of grinding through the
// rest, and Recorder.Close surfaces the original cause.
type RunWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewRunWriter returns a writer streaming to w.
func NewRunWriter(w io.Writer) *RunWriter {
	bw := bufio.NewWriter(w)
	return &RunWriter{bw: bw, enc: json.NewEncoder(bw)}
}

func (w *RunWriter) encode(rec lineRecord) error {
	if w.err != nil {
		return w.err
	}
	if err := w.enc.Encode(rec); err != nil {
		w.err = err
	}
	return w.err
}

// WriteManifest writes the opening manifest record.
func (w *RunWriter) WriteManifest(m Manifest) error {
	return w.encode(lineRecord{T: "manifest", Manifest: &m})
}

// WriteEvent writes one event record.
func (w *RunWriter) WriteEvent(e Event) error {
	return w.encode(lineRecord{T: "event", Event: &e})
}

// WriteSample writes one probe sample record.
func (w *RunWriter) WriteSample(s Sample) error {
	return w.encode(lineRecord{T: "sample", Sample: &s})
}

// WriteSummary writes the closing summary record.
func (w *RunWriter) WriteSummary(s Summary) error {
	return w.encode(lineRecord{T: "summary", Summary: &s})
}

// Flush flushes buffered output to the underlying writer. Note that
// bufio defers underlying write errors until the buffer spills, so an
// error here may be the first sign the sink is broken.
func (w *RunWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
	}
	return w.err
}

// Err returns the sticky first write error, if any.
func (w *RunWriter) Err() error { return w.err }

// Run is a fully parsed run file.
type Run struct {
	Manifest Manifest
	Events   []Event
	// Samples holds the probe ticks in capture order (empty unless a
	// Probe was attached to the recording).
	Samples []Sample
	Summary Summary
	// HasSummary reports whether a summary record was present (a run cut
	// short before Recorder.Close leaves none).
	HasSummary bool
}

// ReadRun parses a run file from r. Unknown record types are skipped so
// the format can grow.
func ReadRun(r io.Reader) (*Run, error) {
	run := &Run{}
	sawManifest := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec lineRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: run file line %d: %w", lineNo, err)
		}
		switch rec.T {
		case "manifest":
			if rec.Manifest != nil {
				run.Manifest = *rec.Manifest
				sawManifest = true
			}
		case "event":
			if rec.Event != nil {
				run.Events = append(run.Events, *rec.Event)
			}
		case "sample":
			if rec.Sample != nil {
				run.Samples = append(run.Samples, *rec.Sample)
			}
		case "summary":
			if rec.Summary != nil {
				run.Summary = *rec.Summary
				run.HasSummary = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: run file: %w", err)
	}
	if !sawManifest {
		return nil, fmt.Errorf("telemetry: run file has no manifest record")
	}
	return run, nil
}

// ReadRunFile parses the run file at path.
func ReadRunFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	run, err := ReadRun(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return run, nil
}

// Delta is one metric whose value differs between two runs.
type Delta struct {
	// Metric is the flattened metric name (see MetricsSnapshot.Flatten).
	Metric string `json:"metric"`
	// A and B are the metric's values in each run (0 when missing —
	// see MissingIn).
	A float64 `json:"a"`
	B float64 `json:"b"`
	// Rel is |A-B| / max(|A|,|B|), the relative delta compared against
	// the threshold — except when either side is exactly 0, where it is
	// the absolute delta |A-B| (see relDelta): a zero baseline has no
	// scale, and reporting any epsilon as 100% drift buries real
	// regressions in noise.
	Rel float64 `json:"rel"`
	// MissingIn is "a" or "b" when the metric exists in only one run.
	MissingIn string `json:"missing_in,omitempty"`
}

func relDelta(a, b float64) float64 {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return 0 // 0→0 (or NaN→NaN) is no drift, not 0/0
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return 1 // number on one side, NaN on the other: fully drifted
	}
	if a == 0 || b == 0 {
		// Zero baseline (or comparison): there is no scale to divide
		// by, so report the absolute change. 0→0.01 is drift 0.01, not
		// an automatic 100%.
		return math.Abs(a - b)
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// DiffRuns compares two runs' metric snapshots and returns every metric
// whose relative delta exceeds threshold (plus metrics present in only
// one run), sorted by descending relative delta then name. Two runs of
// the same experiment and seed diff empty at any threshold ≥ 0; two
// seeds of the same experiment surface exactly the metrics that moved —
// the seed-to-seed regression detector.
func DiffRuns(a, b *Run, threshold float64) []Delta {
	fa := a.Summary.Metrics.Flatten()
	fb := b.Summary.Metrics.Flatten()
	var out []Delta
	for name, va := range fa {
		vb, ok := fb[name]
		if !ok {
			out = append(out, Delta{Metric: name, A: va, Rel: 1, MissingIn: "b"})
			continue
		}
		if rel := relDelta(va, vb); rel > threshold {
			out = append(out, Delta{Metric: name, A: va, B: vb, Rel: rel})
		}
	}
	for name, vb := range fb {
		if _, ok := fa[name]; !ok {
			out = append(out, Delta{Metric: name, B: vb, Rel: 1, MissingIn: "a"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel > out[j].Rel
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
