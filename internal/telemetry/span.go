package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"unap2p/internal/metrics"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Span is one timed operation on the simulated timeline, possibly with
// nested child spans — a Kademlia lookup is a span whose children are the
// per-hop RPC spans; a Gnutella flood is a span fanning out per branch.
type Span struct {
	// Name identifies the operation ("lookup", "send:ping", …).
	Name string
	// Start and End bound the span in simulated time.
	Start, End sim.Time
	// Note carries free-form detail ("h3→h17 64B", "dropped").
	Note string

	children []*Span
	open     bool
}

// Duration returns the span's total simulated duration.
func (s *Span) Duration() sim.Duration { return s.End - s.Start }

// SelfDuration returns the span's duration minus its children's — the
// time unaccounted for by nested operations.
func (s *Span) SelfDuration() sim.Duration {
	d := s.Duration()
	for _, c := range s.children {
		d -= c.Duration()
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Children returns the nested spans in start order.
func (s *Span) Children() []*Span { return s.children }

// SpanTracer builds span trees over simulated time. Spans nest by
// Begin/End pairing (a stack), so instrumented code reads like
// structured logging:
//
//	sp := tracer.Begin("lookup")
//	… nested operations open child spans …
//	tracer.End(sp)
//
// Because synchronous overlay code does not advance the kernel clock
// between its own sends, the tracer keeps a virtual offset advanced by
// Advance (the traced Messenger advances it by each operation's
// latency); spans therefore measure accumulated network latency — the
// "where did the latency go" answer — even on kernel-less transports.
type SpanTracer struct {
	clock  func() sim.Time
	offset sim.Duration
	roots  []*Span
	stack  []*Span
	count  int
}

// NewSpanTracer returns a tracer reading time from clock (typically
// sim.Kernel.Clock()); a nil clock starts from time 0 and advances only
// through Advance.
func NewSpanTracer(clock func() sim.Time) *SpanTracer {
	if clock == nil {
		clock = func() sim.Time { return 0 }
	}
	return &SpanTracer{clock: clock}
}

// Now returns the tracer's current time: the base clock plus the virtual
// offset.
func (t *SpanTracer) Now() sim.Time { return t.clock() + t.offset }

// Advance moves the virtual offset forward by d (negative d is ignored).
func (t *SpanTracer) Advance(d sim.Duration) {
	if d > 0 {
		t.offset += d
	}
}

// Begin opens a span as a child of the innermost open span (or a new
// root) and returns it.
func (t *SpanTracer) Begin(name string) *Span {
	s := &Span{Name: name, Start: t.Now(), open: true}
	if n := len(t.stack); n > 0 {
		p := t.stack[n-1]
		p.children = append(p.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.stack = append(t.stack, s)
	t.count++
	return s
}

// End closes span s, and any still-open descendants, at the current
// time. Ending a span that is not on the stack is a no-op.
func (t *SpanTracer) End(s *Span) {
	idx := -1
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	now := t.Now()
	for i := len(t.stack) - 1; i >= idx; i-- {
		t.stack[i].End = now
		t.stack[i].open = false
	}
	t.stack = t.stack[:idx]
}

// Roots returns the completed and in-progress top-level spans.
func (t *SpanTracer) Roots() []*Span { return t.roots }

// Count reports the number of spans begun.
func (t *SpanTracer) Count() int { return t.count }

// SpanStat aggregates spans sharing a name.
type SpanStat struct {
	Name  string
	Count int
	// Total sums span durations; Self sums durations net of children.
	Total, Self sim.Duration
}

// Breakdown aggregates every span by name, sorted by descending total
// duration (ties by name) — the per-query latency breakdown table.
func (t *SpanTracer) Breakdown() []SpanStat {
	acc := map[string]*SpanStat{}
	var walk func(*Span)
	walk = func(s *Span) {
		st, ok := acc[s.Name]
		if !ok {
			st = &SpanStat{Name: s.Name}
			acc[s.Name] = st
		}
		st.Count++
		st.Total += s.Duration()
		st.Self += s.SelfDuration()
		for _, c := range s.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	out := make([]SpanStat, 0, len(acc))
	for _, st := range acc {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Render formats the span forest as an indented tree with durations —
// the human-readable "where did the latency go" view.
func (t *SpanTracer) Render() string {
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		fmt.Fprintf(&b, "%s%s %.1fms", strings.Repeat("  ", depth), s.Name, float64(s.Duration()))
		if s.Note != "" {
			fmt.Fprintf(&b, " (%s)", s.Note)
		}
		b.WriteByte('\n')
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.roots {
		walk(r, 0)
	}
	return b.String()
}

// EmitTo records every completed span as a CatSpan event on rec, start-
// ordered depth-first, with Detail holding the parent path — so span
// trees persist into run files.
func (t *SpanTracer) EmitTo(rec *Recorder) {
	var walk func(s *Span, path string)
	walk = func(s *Span, path string) {
		if !s.open {
			rec.Record(Event{
				At: s.Start, Cat: CatSpan, Type: s.Name,
				From: -1, To: -1,
				Latency: s.Duration(), Detail: path,
			})
		}
		child := s.Name
		if path != "" {
			child = path + "/" + s.Name
		}
		for _, c := range s.children {
			walk(c, child)
		}
	}
	for _, r := range t.roots {
		walk(r, "")
	}
}

// tracedMessenger wraps a Messenger so every operation opens a span and
// advances the tracer's virtual clock by the operation's latency.
type tracedMessenger struct {
	inner  transport.Messenger
	tracer *SpanTracer
}

// TraceMessenger returns a Messenger that mirrors m while recording a
// span per Send/RoundTrip/Probe on tr. Handing it to an overlay yields
// per-query span trees without touching protocol code:
//
//	tr := telemetry.NewSpanTracer(nil)
//	d := kademlia.New(telemetry.TraceMessenger(msgr, tr), sel, cfg, rng)
//	sp := tr.Begin("lookup"); d.Lookup(…); tr.End(sp)
func TraceMessenger(m transport.Messenger, tr *SpanTracer) transport.Messenger {
	return &tracedMessenger{inner: m, tracer: tr}
}

func (t *tracedMessenger) Underlay() *underlay.Network { return t.inner.Underlay() }
func (t *tracedMessenger) Kernel() *sim.Kernel         { return t.inner.Kernel() }

func (t *tracedMessenger) span(name string, from, to *underlay.Host, bytes uint64,
	op func() transport.Result) transport.Result {
	sp := t.tracer.Begin(name)
	sp.Note = fmt.Sprintf("h%d→h%d %dB", hostID(from), hostID(to), bytes)
	res := op()
	if !res.OK {
		sp.Note += " dropped"
	}
	t.tracer.Advance(res.Latency)
	t.tracer.End(sp)
	return res
}

func (t *tracedMessenger) Send(from, to *underlay.Host, bytes uint64, msgType string) transport.Result {
	return t.span("send:"+msgType, from, to, bytes, func() transport.Result {
		return t.inner.Send(from, to, bytes, msgType)
	})
}

func (t *tracedMessenger) RoundTrip(from, to *underlay.Host, reqBytes, respBytes uint64,
	reqType, respType string) transport.Result {
	return t.span("rpc:"+reqType, from, to, reqBytes, func() transport.Result {
		return t.inner.RoundTrip(from, to, reqBytes, respBytes, reqType, respType)
	})
}

func (t *tracedMessenger) RoundTripWith(p transport.RetryPolicy, from, to *underlay.Host,
	reqBytes, respBytes uint64, reqType, respType string) transport.Result {
	return t.span("rpc:"+reqType, from, to, reqBytes, func() transport.Result {
		return t.inner.RoundTripWith(p, from, to, reqBytes, respBytes, reqType, respType)
	})
}

func (t *tracedMessenger) Probe(from, to *underlay.Host, bytes uint64) transport.Result {
	return t.span("probe", from, to, bytes, func() transport.Result {
		return t.inner.Probe(from, to, bytes)
	})
}

func (t *tracedMessenger) Counters() *metrics.CounterSet { return t.inner.Counters() }

func (t *tracedMessenger) MatrixFor(msgTypes ...string) *metrics.TrafficMatrix {
	return t.inner.MatrixFor(msgTypes...)
}
