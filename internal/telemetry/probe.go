package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"

	"unap2p/internal/churn"
	"unap2p/internal/mobility"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
)

// HealthReporter is the overlay-health introspection hook: a component
// exposes a flat map of gauges describing how healthy its structure is
// right now — routing-table fill and AS-hop locality for a DHT, ultrapeer
// fan-out and intra-AS neighbor share for Gnutella, piece completion for
// a swarm, median prediction error for a coordinate system. All unap2p
// overlays implement it. Keys must be stable across calls and values
// must be computed by pure reads in deterministic order, because the
// Probe samples them mid-run and a sampled run must stay bit-identical
// to an unsampled one.
type HealthReporter interface {
	HealthStats() map[string]float64
}

// Sample is one probe tick: everything the recorder can snapshot,
// flattened to scalars, plus the registered health sources, at one point
// in simulated time. Samples serialize into run files as the "sample"
// JSONL record type, between events and the summary.
type Sample struct {
	// Seq numbers samples from 0 in capture order — the x-axis for
	// experiments that drive overlays in rounds rather than on a kernel
	// (all their samples share At 0).
	Seq uint64 `json:"seq"`
	// At is the latest simulated time across the probe's observed
	// kernels when the sample was taken.
	At sim.Time `json:"at"`
	// Values maps flattened metric names (see MetricsSnapshot.Flatten)
	// and "health:<source>:<key>" gauges to their sampled values.
	// Non-finite values are dropped at capture time: JSON cannot carry
	// them and a NaN in a series poisons every aggregate downstream.
	Values map[string]float64 `json:"values"`
}

// Series is a bounded in-memory sample store. When full, the oldest
// sample is dropped and counted, so a long run keeps a sliding window
// instead of growing without bound.
type Series struct {
	mu      sync.Mutex
	cap     int
	samples []Sample
	dropped uint64
}

// NewSeries returns a series retaining at most capacity samples
// (default 4096 when capacity <= 0).
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Series{cap: capacity}
}

func (s *Series) add(smp Sample) {
	s.mu.Lock()
	if len(s.samples) == s.cap {
		copy(s.samples, s.samples[1:])
		s.samples = s.samples[:len(s.samples)-1]
		s.dropped++
	}
	s.samples = append(s.samples, smp)
	s.mu.Unlock()
}

// Samples returns a copy of the retained samples, oldest first.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// Len reports how many samples are retained.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Dropped reports how many samples retention has discarded.
func (s *Series) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Last returns the most recent sample, if any.
func (s *Series) Last() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// Values extracts one metric's series aligned with Samples(); ticks
// where the metric is absent yield NaN so the caller can tell "missing"
// from zero.
func (s *Series) Values(metric string) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sampleValues(s.samples, metric)
}

// ProbeConfig parameterizes a Probe.
type ProbeConfig struct {
	// Interval is the sim-time sampling period for observed kernels
	// (default 100 ms of simulated time).
	Interval sim.Duration
	// Retention bounds the in-memory Series (default 4096 samples).
	// Run-file sinks receive every sample regardless.
	Retention int
}

// Probe is the sim-time sampling plane over a Recorder. It implements
// the same observer surface as the Recorder (experiments attach it via
// RunConfig.Obs exactly like a bare Recorder) and additionally:
//
//   - schedules a daemon tick on every observed kernel at Interval,
//     snapshotting all registered metrics and health sources;
//   - accepts overlay HealthStats sources via ObserveHealth;
//   - appends each Sample to a bounded Series and streams it into the
//     recorder's run file as a "sample" record;
//   - caches the latest MetricsSnapshot for lock-free serving (see
//     Serve), at most one interval stale.
//
// Like the Recorder, the Probe is a pure observer: every sampling
// callback is a read, daemon ticks never extend a run (see
// sim.AtDaemon), and fixed-seed results are bit-identical with or
// without one attached. Sampling happens on the goroutine driving the
// simulation; a probe must not be shared across concurrent sweep
// workers (attach one per run, or fall back to a bare Recorder).
type Probe struct {
	rec      *Recorder
	interval sim.Duration
	series   *Series

	mu      sync.Mutex
	seq     uint64
	kernels []*sim.Kernel
	sharded []*sim.ShardedKernel
	cancels []func()
	health  []healthSource
	counts  map[string]int
	churns  []*churn.Driver
	latest  MetricsSnapshot
	hasSnap bool
}

type healthSource struct {
	name string
	fn   func() map[string]float64
}

// NewProbe returns a probe sampling rec. A nil rec gets a fresh
// sink-less recorder, for callers that only want live series.
func NewProbe(rec *Recorder, cfg ProbeConfig) *Probe {
	if rec == nil {
		rec = NewRecorder(Config{})
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * sim.Millisecond
	}
	return &Probe{
		rec:      rec,
		interval: cfg.Interval,
		series:   NewSeries(cfg.Retention),
		counts:   make(map[string]int),
	}
}

// Recorder returns the wrapped recorder.
func (p *Probe) Recorder() *Recorder { return p.rec }

// Series returns the in-memory sample store.
func (p *Probe) Series() *Series { return p.series }

// Interval returns the sim-time sampling period.
func (p *Probe) Interval() sim.Duration { return p.interval }

// ObserveTransport delegates to the recorder.
func (p *Probe) ObserveTransport(t *transport.Transport) { p.rec.ObserveTransport(t) }

// ObserveKernel delegates to the recorder and starts the sampling tick:
// a daemon event every Interval of that kernel's simulated time. Daemon
// scheduling means the tick fires throughout bounded runs but never
// keeps Drain alive on its own.
func (p *Probe) ObserveKernel(k *sim.Kernel) {
	if k == nil {
		return
	}
	p.rec.ObserveKernel(k)
	p.mu.Lock()
	for _, have := range p.kernels {
		if have == k {
			p.mu.Unlock()
			return
		}
	}
	p.kernels = append(p.kernels, k)
	p.mu.Unlock()
	cancel := k.EveryDaemon(p.interval, p.Sample)
	p.mu.Lock()
	p.cancels = append(p.cancels, cancel)
	p.mu.Unlock()
}

// ObserveShardedKernel delegates to the recorder and includes the
// kernel's time in sample stamps. Unlike ObserveKernel it installs no
// sampling tick of its own: in a sharded run, sampling is only safe at
// epoch barriers, so the experiment wires the kernel's OnBarrier hook to
// Sample (usually with a stride).
func (p *Probe) ObserveShardedKernel(sk *sim.ShardedKernel) {
	if sk == nil {
		return
	}
	p.rec.ObserveShardedKernel(sk)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, have := range p.sharded {
		if have == sk {
			return
		}
	}
	p.sharded = append(p.sharded, sk)
}

// ObserveChurn delegates to the recorder and samples the driver's live
// population as health:churn:online.
func (p *Probe) ObserveChurn(d *churn.Driver) {
	if d == nil {
		return
	}
	p.rec.ObserveChurn(d)
	p.mu.Lock()
	p.churns = append(p.churns, d)
	p.mu.Unlock()
}

// ObserveMobility delegates to the recorder.
func (p *Probe) ObserveMobility(m *mobility.Model) { p.rec.ObserveMobility(m) }

// ObserveHealth registers a health source sampled at every tick as
// "health:<name>:<key>" gauges. Registering the same name again
// auto-suffixes it (name, name2, …), so an experiment that builds the
// same overlay per variant keeps the curves separable. The parameter is
// a plain func so packages that must not import telemetry (notably
// internal/experiments) can feed it through a structural interface
// check; stats must be a pure deterministic read.
func (p *Probe) ObserveHealth(name string, stats func() map[string]float64) {
	if stats == nil {
		return
	}
	p.mu.Lock()
	n := p.counts[name]
	p.counts[name] = n + 1
	p.health = append(p.health, healthSource{name: prefixed(name, n), fn: stats})
	p.mu.Unlock()
}

// ObserveReporter is ObserveHealth for values satisfying HealthReporter.
func (p *Probe) ObserveReporter(name string, hr HealthReporter) {
	if hr == nil {
		return
	}
	p.ObserveHealth(name, hr.HealthStats)
}

// Sample takes one sample immediately: the recorder's full metrics
// snapshot flattened to scalars, every health source, and each churn
// driver's live population. Kernel-driven ticks call it automatically;
// experiments without a kernel call it manually at round boundaries.
// It must run on the goroutine driving the simulation (the recorder's
// quiescence contract).
func (p *Probe) Sample() {
	snap := p.rec.Snapshot()

	p.mu.Lock()
	seq := p.seq
	p.seq++
	var at sim.Time
	for _, k := range p.kernels {
		if now := k.Now(); now > at {
			at = now
		}
	}
	for _, sk := range p.sharded {
		if now := sk.Now(); now > at {
			at = now
		}
	}
	health := append([]healthSource(nil), p.health...)
	churns := append([]*churn.Driver(nil), p.churns...)
	p.mu.Unlock()

	values := snap.Flatten()
	for _, h := range health {
		for k, v := range h.fn() {
			values["health:"+h.name+":"+k] = v
		}
	}
	for i, d := range churns {
		values["health:"+prefixed("churn", i)+":online"] = float64(d.Online())
	}
	for k, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			delete(values, k)
		}
	}

	smp := Sample{Seq: seq, At: at, Values: values}
	p.series.add(smp)
	p.mu.Lock()
	p.latest = snap
	p.hasSnap = true
	p.mu.Unlock()
	p.rec.recordSample(smp)
}

// LatestSnapshot returns the metrics snapshot cached by the most recent
// sample (empty before the first tick). Unlike Recorder.Snapshot it is
// safe to call from any goroutine at any time — this is the source
// Serve renders /metrics from while the simulation is still running.
func (p *Probe) LatestSnapshot() MetricsSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.hasSnap {
		return newMetricsSnapshot()
	}
	return p.latest
}

// Stop cancels the kernel sampling ticks. Manual Sample calls still
// work; Stop exists for callers that attach a probe to a long-lived
// kernel and want sampling bounded to a phase.
func (p *Probe) Stop() {
	p.mu.Lock()
	cancels := p.cancels
	p.cancels = nil
	p.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// sampleValues extracts metric across samples, NaN where absent.
func sampleValues(samples []Sample, metric string) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		if v, ok := s.Values[metric]; ok {
			out[i] = v
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// SampleMetrics returns the sorted union of metric names across samples.
func SampleMetrics(samples []Sample) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range samples {
		for k := range s.Values {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a unicode block sparkline at most width
// cells wide (longer series are bucket-averaged down). Values are
// min-max normalized over the finite points; NaN cells render as
// spaces; a flat series renders as a line of low blocks. width <= 0
// means one cell per value.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if width > 0 && len(vals) > width {
		vals = downsample(vals, width)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		switch {
		case math.IsNaN(v):
			b.WriteRune(' ')
		case hi == lo:
			b.WriteRune(sparkRunes[0])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
			b.WriteRune(sparkRunes[idx])
		}
	}
	return b.String()
}

// downsample bucket-averages vals to width points, skipping NaNs; a
// bucket of only NaNs stays NaN.
func downsample(vals []float64, width int) []float64 {
	out := make([]float64, width)
	for i := range out {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum, n := 0.0, 0
		for _, v := range vals[lo:hi] {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		if n == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sum / float64(n)
		}
	}
	return out
}
