package telemetry

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"unap2p/internal/sim"
	"unap2p/internal/transport"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsAndPprof(t *testing.T) {
	net, hosts := testNet(1)
	k := sim.NewKernel()
	tr := transport.New(net, k)
	p := NewProbe(nil, ProbeConfig{Interval: 10})
	p.ObserveTransport(tr)
	p.ObserveKernel(k)

	srv, err := Serve("127.0.0.1:0", p.LatestSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Before the first tick the endpoint answers with an empty snapshot.
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d before first sample", code)
	}

	k.At(5, func() { tr.Send(hosts[0], hosts[1], 100, "ping") })
	k.At(15, func() {})
	k.Drain() // probe ticks at 10: snapshot now caches the ping

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "unap2p_") {
		t.Fatalf("/metrics has no unap2p_ series:\n%s", body)
	}
	if !strings.Contains(body, "ping") {
		t.Fatalf("/metrics does not include the observed ping counter:\n%s", body)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %.60q", code, body)
	}
}

// TestServeEphemeralPort pins the ":0" contract the in-process cluster
// harness depends on: the listener binds an ephemeral port, Addr reports
// the real one, and cancelling the context shuts the server down cleanly
// and releases it (a second bind of the same port succeeds).
func TestServeEphemeralPort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := ServeContext(ctx, ":0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		t.Fatalf("Addr %q is not host:port: %v", addr, err)
	}
	if port == "0" || port == "" {
		t.Fatalf("Addr %q did not resolve the ephemeral port", addr)
	}
	code, _ := get(t, "http://127.0.0.1:"+port+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d on ephemeral port", code)
	}

	cancel()
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("Close after cancel: %v", err)
	}
	// The port must be free again; retry briefly in case the kernel is
	// slow to tear the socket down.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			ln.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("port %s not released after shutdown: %v", port, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := http.Get("http://127.0.0.1:" + port + "/metrics"); err == nil {
		t.Fatal("server still answering after context cancellation")
	}
}

// TestServeCloseIdempotent pins that Close is safe to call repeatedly and
// concurrently with context cancellation.
func TestServeCloseIdempotent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := ServeContext(ctx, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	for i := 0; i < 3; i++ {
		srv.Close()
	}
}

func TestServeNilSource(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _ := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d with nil source", code)
	}
}
