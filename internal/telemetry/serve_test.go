package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/transport"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsAndPprof(t *testing.T) {
	net, hosts := testNet(1)
	k := sim.NewKernel()
	tr := transport.New(net, k)
	p := NewProbe(nil, ProbeConfig{Interval: 10})
	p.ObserveTransport(tr)
	p.ObserveKernel(k)

	srv, err := Serve("127.0.0.1:0", p.LatestSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Before the first tick the endpoint answers with an empty snapshot.
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d before first sample", code)
	}

	k.At(5, func() { tr.Send(hosts[0], hosts[1], 100, "ping") })
	k.At(15, func() {})
	k.Drain() // probe ticks at 10: snapshot now caches the ping

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "unap2p_") {
		t.Fatalf("/metrics has no unap2p_ series:\n%s", body)
	}
	if !strings.Contains(body, "ping") {
		t.Fatalf("/metrics does not include the observed ping counter:\n%s", body)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %.60q", code, body)
	}
}

func TestServeNilSource(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _ := get(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d with nil source", code)
	}
}
