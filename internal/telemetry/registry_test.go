package telemetry

import (
	"encoding/json"
	"strings"
	"testing"

	"unap2p/internal/metrics"
)

func TestSnapshotFlatten(t *testing.T) {
	s := newMetricsSnapshot()
	s.Counters["msgs"] = 10
	s.Gauges["g"] = 1.5
	h := metrics.NewLatencyHistogram()
	h.Observe(4)
	h.Observe(8)
	s.Histograms["lat"] = h.Snapshot()
	m := metrics.NewTrafficMatrix()
	m.Add(1, 1, 60)
	m.Add(1, 2, 40)
	s.Matrices["traffic"] = m.Snapshot()

	flat := s.Flatten()
	checks := map[string]float64{
		"msgs":                   10,
		"g":                      1.5,
		"lat.n":                  2,
		"lat.mean":               6,
		"lat.max":                8,
		"traffic.total":          100,
		"traffic.intra":          60,
		"traffic.intra_fraction": 0.6,
	}
	for k, want := range checks {
		if got, ok := flat[k]; !ok || got != want {
			t.Errorf("flat[%q] = %v (present %v), want %v", k, got, ok, want)
		}
	}
}

func TestPrometheusText(t *testing.T) {
	s := newMetricsSnapshot()
	s.Counters["transport:msgs:ping"] = 42
	s.Gauges["kernel:now_ms"] = 1234.5
	h := metrics.NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	s.Histograms["lat"] = h.Snapshot()
	m := metrics.NewTrafficMatrix()
	m.Add(1, 2, 100)
	s.Matrices["tm"] = m.Snapshot()

	text := s.PrometheusText()
	for _, want := range []string{
		"# TYPE unap2p_transport_msgs_ping_total counter",
		"unap2p_transport_msgs_ping_total 42",
		"# TYPE unap2p_kernel_now_ms gauge",
		"unap2p_kernel_now_ms 1234.5",
		"# TYPE unap2p_lat histogram",
		`unap2p_lat_bucket{le="1"} 1`,
		`unap2p_lat_bucket{le="10"} 2`,
		`unap2p_lat_bucket{le="+Inf"} 3`,
		"unap2p_lat_sum 55.5",
		"unap2p_lat_count 3",
		`unap2p_tm_bytes{scope="total"} 100`,
		`unap2p_tm_bytes{scope="intra"} 0`,
		`unap2p_tm_bytes{scope="inter"} 100`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q\n%s", want, text)
		}
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	s := newMetricsSnapshot()
	s.Counters["b"] = 2
	s.Counters["a"] = 1
	j1, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := s.JSON()
	if string(j1) != string(j2) {
		t.Fatal("JSON export is not deterministic")
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 1 || back.Counters["b"] != 2 {
		t.Fatalf("JSON round trip failed: %+v", back)
	}
}
