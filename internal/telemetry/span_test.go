package telemetry

import (
	"strings"
	"testing"

	"unap2p/internal/overlay/kademlia"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
)

func TestSpanNestingAndDurations(t *testing.T) {
	tr := NewSpanTracer(nil)
	root := tr.Begin("lookup")
	tr.Advance(10)
	hop1 := tr.Begin("rpc:find")
	tr.Advance(30)
	tr.End(hop1)
	hop2 := tr.Begin("rpc:find")
	tr.Advance(20)
	tr.End(hop2)
	tr.End(root)

	if len(tr.Roots()) != 1 {
		t.Fatalf("want 1 root, got %d", len(tr.Roots()))
	}
	if got := root.Duration(); got != 60 {
		t.Fatalf("root duration = %v, want 60", got)
	}
	if got := root.SelfDuration(); got != 10 {
		t.Fatalf("root self duration = %v, want 10", got)
	}
	if len(root.Children()) != 2 {
		t.Fatalf("want 2 children, got %d", len(root.Children()))
	}
	if hop1.Duration() != 30 || hop2.Duration() != 20 {
		t.Fatalf("hop durations = %v, %v", hop1.Duration(), hop2.Duration())
	}
}

func TestSpanEndClosesOpenDescendants(t *testing.T) {
	tr := NewSpanTracer(nil)
	root := tr.Begin("outer")
	tr.Begin("inner") // never explicitly ended
	tr.Advance(5)
	tr.End(root)
	if root.End != 5 || root.Children()[0].End != 5 {
		t.Fatalf("dangling child not closed with parent: %+v", root.Children()[0])
	}
	// Ending a span that is no longer on the stack is a no-op.
	tr.End(root)
}

func TestSpanBreakdownAggregates(t *testing.T) {
	tr := NewSpanTracer(nil)
	for i := 0; i < 3; i++ {
		s := tr.Begin("query")
		tr.Advance(10)
		tr.End(s)
	}
	b := tr.Breakdown()
	if len(b) != 1 || b[0].Name != "query" || b[0].Count != 3 || b[0].Total != 30 {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestSpanTracerKernelClock(t *testing.T) {
	k := sim.NewKernel()
	tr := NewSpanTracer(k.Clock())
	var sp *Span
	k.Schedule(100, func() { sp = tr.Begin("work") })
	k.Schedule(250, func() { tr.End(sp) })
	k.Drain()
	if sp.Start != 100 || sp.End != 250 {
		t.Fatalf("span [%v, %v], want [100, 250]", sp.Start, sp.End)
	}
}

// TestTracedMessengerKademliaLookup is the headline span-tracing use
// case: a Kademlia lookup through a traced Messenger yields a span tree
// of per-hop RPCs under one lookup span, answering "where did the
// latency go" without touching overlay code.
func TestTracedMessengerKademliaLookup(t *testing.T) {
	net, _ := testNet(9)
	src := sim.NewSource(9)
	tracer := NewSpanTracer(nil)
	msgr := TraceMessenger(transport.Over(net), tracer)
	d := kademlia.New(msgr, nil, kademlia.DefaultConfig(), src.Stream("dht"))
	hosts := net.Hosts()
	for _, h := range hosts {
		d.AddNode(h)
	}
	d.Bootstrap(4)

	before := tracer.Count()
	root := tracer.Begin("lookup")
	res := d.Lookup(hosts[0].ID, d.Nodes()[len(d.Nodes())-1].ID)
	tracer.End(root)

	if res.Hops == 0 {
		t.Fatal("lookup made no hops; test is vacuous")
	}
	rpcs := 0
	var total sim.Duration
	for _, c := range root.Children() {
		if !strings.HasPrefix(c.Name, "rpc:") {
			t.Fatalf("unexpected child span %q", c.Name)
		}
		rpcs++
		total += c.Duration()
	}
	if rpcs == 0 {
		t.Fatal("lookup produced no RPC child spans")
	}
	if tracer.Count() == before+1 {
		t.Fatal("traced messenger recorded no spans")
	}
	if root.Duration() != total {
		t.Fatalf("lookup span %v != sum of hop spans %v", root.Duration(), total)
	}
	if r := tracer.Render(); !strings.Contains(r, "lookup") || !strings.Contains(r, "rpc:") {
		t.Fatalf("render missing spans:\n%s", r)
	}
}

func TestSpanEmitTo(t *testing.T) {
	tr := NewSpanTracer(nil)
	root := tr.Begin("lookup")
	hop := tr.Begin("rpc:find")
	tr.Advance(25)
	tr.End(hop)
	tr.End(root)

	rec := NewRecorder(Config{Capacity: 16})
	tr.EmitTo(rec)
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("emitted %d events, want 2", len(evs))
	}
	if evs[0].Cat != CatSpan || evs[0].Type != "lookup" || evs[0].Latency != 25 {
		t.Fatalf("bad root span event %+v", evs[0])
	}
	if evs[1].Type != "rpc:find" || evs[1].Detail != "lookup" {
		t.Fatalf("bad child span event %+v", evs[1])
	}
}
