package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/transport"
)

func TestSeriesRetention(t *testing.T) {
	s := NewSeries(3)
	for i := 0; i < 5; i++ {
		s.add(Sample{Seq: uint64(i)})
	}
	if s.Len() != 3 {
		t.Fatalf("retained %d samples, want 3", s.Len())
	}
	if s.Dropped() != 2 {
		t.Fatalf("dropped %d samples, want 2", s.Dropped())
	}
	got := s.Samples()
	if got[0].Seq != 2 || got[len(got)-1].Seq != 4 {
		t.Fatalf("window holds seqs %d..%d, want 2..4", got[0].Seq, got[len(got)-1].Seq)
	}
	last, ok := s.Last()
	if !ok || last.Seq != 4 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
}

func TestProbeManualSampleHealthSources(t *testing.T) {
	p := NewProbe(nil, ProbeConfig{})
	p.ObserveHealth("ov", func() map[string]float64 {
		return map[string]float64{"x": 1, "bad": math.NaN(), "worse": math.Inf(1)}
	})
	// Same name again: auto-suffixed so both variants keep their curves.
	p.ObserveHealth("ov", func() map[string]float64 {
		return map[string]float64{"x": 2}
	})
	p.Sample()
	p.Sample()

	if p.Series().Len() != 2 {
		t.Fatalf("series holds %d samples, want 2", p.Series().Len())
	}
	smp, _ := p.Series().Last()
	if smp.Seq != 1 {
		t.Fatalf("second sample has seq %d, want 1", smp.Seq)
	}
	if got := smp.Values["health:ov:x"]; got != 1 {
		t.Fatalf("health:ov:x = %v, want 1", got)
	}
	if got := smp.Values["health:ov2:x"]; got != 2 {
		t.Fatalf("health:ov2:x = %v, want 2", got)
	}
	for _, k := range []string{"health:ov:bad", "health:ov:worse"} {
		if _, ok := smp.Values[k]; ok {
			t.Fatalf("non-finite value %s survived into the sample", k)
		}
	}
}

func TestProbeKernelTickSampling(t *testing.T) {
	net, hosts := testNet(1)
	k := sim.NewKernel()
	tr := transport.New(net, k)
	p := NewProbe(nil, ProbeConfig{Interval: 10})
	p.ObserveTransport(tr)
	p.ObserveKernel(k)
	p.ObserveKernel(k) // idempotent: must not double the tick rate

	for i := 0; i < 5; i++ {
		k.At(sim.Time(i*10+5), func() { tr.Send(hosts[0], hosts[1], 100, "ping") })
	}
	end := k.Drain()
	if end != 45 {
		t.Fatalf("Drain ended at %v, want 45 — the probe tick extended the run", end)
	}
	// Ticks at 10, 20, 30, 40 fall inside the run; the one at 50 must not
	// fire (daemon events cannot keep Drain alive).
	samples := p.Series().Samples()
	if len(samples) != 4 {
		t.Fatalf("captured %d samples, want 4", len(samples))
	}
	for i, s := range samples {
		wantAt := sim.Time((i + 1) * 10)
		if s.At != wantAt {
			t.Fatalf("sample %d at %v, want %v", i, s.At, wantAt)
		}
		if got := s.Values["transport:bytes:ping"]; got != float64((i+1)*100) {
			t.Fatalf("sample %d sees %v ping bytes, want %d", i, got, (i+1)*100)
		}
	}
	// The cached snapshot serves the live /metrics endpoint.
	if snap := p.LatestSnapshot(); snap.Counters["transport:bytes:ping"] != 400 {
		t.Fatalf("LatestSnapshot ping bytes = %v, want 400", snap.Counters["transport:bytes:ping"])
	}

	p.Stop()
	k.At(100, func() {})
	k.Drain()
	if got := p.Series().Len(); got != 4 {
		t.Fatalf("probe kept sampling after Stop: %d samples", got)
	}
}

func TestSampleRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	if err := w.WriteManifest(Manifest{Name: "s"}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent(Event{Cat: CatTransport, Type: "ping", Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	smp := Sample{Seq: 7, At: 125, Values: map[string]float64{"a": 1.5}}
	if err := w.WriteSample(smp); err != nil {
		t.Fatal(err)
	}
	sum := Summary{Events: 1, Samples: 1, Metrics: newMetricsSnapshot()}
	if err := w.WriteSummary(sum); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	run, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Samples) != 1 {
		t.Fatalf("read %d samples, want 1", len(run.Samples))
	}
	got := run.Samples[0]
	if got.Seq != 7 || got.At != 125 || got.Values["a"] != 1.5 {
		t.Fatalf("sample round-trip mangled: %+v", got)
	}
	if run.Summary.Samples != 1 {
		t.Fatalf("summary samples = %d, want 1", run.Summary.Samples)
	}
}

func TestRecorderCountsSamplesInSummary(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(Config{Sink: NewRunWriter(&buf), Manifest: Manifest{Name: "s"}})
	p := NewProbe(rec, ProbeConfig{})
	p.Sample()
	p.Sample()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Summary().Samples; got != 2 {
		t.Fatalf("summary counts %d samples, want 2", got)
	}
	run, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Samples) != 2 {
		t.Fatalf("run file holds %d samples, want 2", len(run.Samples))
	}
}

func TestSampleMetricsSortedUnion(t *testing.T) {
	samples := []Sample{
		{Values: map[string]float64{"b": 1}},
		{Values: map[string]float64{"a": 2, "b": 3}},
	}
	got := SampleMetrics(samples)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("SampleMetrics = %v, want [a b]", got)
	}
	vals := sampleValues(samples, "a")
	if !math.IsNaN(vals[0]) || vals[1] != 2 {
		t.Fatalf("sampleValues(a) = %v, want [NaN 2]", vals)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Fatalf("empty series renders %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3}, 0)
	if got != "▁▃▅█" {
		t.Fatalf("ramp renders %q, want ▁▃▅█", got)
	}
	if got := Sparkline([]float64{5, 5, 5}, 0); got != "▁▁▁" {
		t.Fatalf("flat series renders %q", got)
	}
	if got := Sparkline([]float64{math.NaN(), 1, 2}, 0); !strings.HasPrefix(got, " ") {
		t.Fatalf("NaN cell renders %q, want leading space", got)
	}
	// Longer than width: bucket-averaged down to exactly width cells.
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i)
	}
	if got := Sparkline(long, 10); len([]rune(got)) != 10 {
		t.Fatalf("downsampled width = %d, want 10", len([]rune(got)))
	}
}
