package telemetry

import (
	"fmt"
	"sync"

	"unap2p/internal/churn"
	"unap2p/internal/mobility"
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Config parameterizes a Recorder.
type Config struct {
	// Capacity is the event ring size (default 4096). When the ring
	// fills: with a Sink, the buffered events drain to it; without one,
	// the oldest event is overwritten and counted in Summary.Overwritten.
	Capacity int
	// Sink, when non-nil, receives the manifest, every drained event, and
	// the closing summary as a JSONL run file.
	Sink *RunWriter
	// Manifest identifies the run; it is written to the sink immediately
	// and embedded in the in-memory Run.
	Manifest Manifest
}

// Recorder is the telemetry event bus: a bounded ring of events fed by
// the components it observes (transports, kernels, churn drivers,
// mobility models), draining to a JSONL sink, with a metrics snapshot
// taken at Close. Parameter sweeps may feed one recorder from several
// goroutines: the shared ring is mutex-guarded and each transport's
// high-rate hook writes through its own single-goroutine staging buffer
// (see transportStage). Accessors (Events, Recorded, Snapshot, Close)
// drain those buffers and therefore must not run concurrently with
// in-flight sends — all simulation accessors run after the kernel or the
// sweep has finished, so this holds naturally. The recorder is strictly
// a pure observer: attaching it changes no simulated result.
type Recorder struct {
	mu sync.Mutex

	ring  []Event
	start int // index of oldest buffered event
	n     int // events currently buffered

	recorded    uint64
	overwritten uint64
	samples     uint64

	sink    *RunWriter
	sinkErr error

	manifest Manifest
	reg      *Registry

	transports []*transport.Transport
	kernels    []*sim.Kernel
	sharded    []*sim.ShardedKernel
	churns     []*churn.Driver
	mobilities []*mobility.Model
	stages     []*transportStage

	closed  bool
	summary Summary
}

// transportStage drains one transport's EventLog into the recorder.
// Transport messages are the only high-rate event source, so their hot
// path must stay at a handful of nanoseconds: Send fills the log ring in
// place (see transport.EventLog) with no callback, no lock, and no
// conversion. Locking and conversion to telemetry Events happen only
// here, when the log spills to the sink or an accessor drains it. Each
// log is written by exactly one goroutine (the sim kernel is
// single-threaded); accessors rely on the quiescence contract of
// drainStages.
type transportStage struct {
	r   *Recorder
	t   *transport.Transport // for resolving LogEntry type tags
	log *transport.EventLog
}

// drain moves every retained log event into the shared ring (and so to
// the sink, when one is attached) and folds the log's overwrite count
// into the recorder's accounting.
func (s *transportStage) drain() {
	s.r.mu.Lock()
	lost := s.log.Drain(func(e *transport.LogEntry) {
		if p := s.r.slotLocked(); p != nil {
			p.At = e.At
			p.Cat = CatTransport
			p.Type = s.t.TypeByID(e.Type)
			p.From = int(e.From)
			p.To = int(e.To)
			p.Bytes = e.Bytes
			p.Latency = e.Latency
			p.Dropped = e.Dropped
			p.Detail = ""
		}
	})
	if !s.r.closed {
		s.r.recorded += lost
		s.r.overwritten += lost
	}
	s.r.mu.Unlock()
}

// drainStages flushes every staging buffer into the ring. Callers must
// ensure no observed component is concurrently sending (all simulation
// accessors run after the kernel — or the seed sweep — has finished, so
// this holds naturally).
func (r *Recorder) drainStages() {
	r.mu.Lock()
	stages := append([]*transportStage(nil), r.stages...)
	r.mu.Unlock()
	for _, s := range stages {
		s.drain()
	}
}

// NewRecorder returns a recorder; the zero Config is usable (in-memory
// ring of 4096 events, no sink, empty manifest).
func NewRecorder(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	r := &Recorder{
		ring:     make([]Event, cfg.Capacity),
		sink:     cfg.Sink,
		manifest: cfg.Manifest,
		reg:      NewRegistry(),
	}
	if r.sink != nil {
		r.sinkErr = r.sink.WriteManifest(r.manifest)
	}
	return r
}

// Registry exposes the recorder's metric registry, so callers can
// register application-level counters, histograms, matrices, or gauges
// to be included in the closing snapshot.
func (r *Recorder) Registry() *Registry { return r.reg }

// Record appends one event to the ring (draining or overwriting on
// overflow, see Config.Capacity).
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	if p := r.slotLocked(); p != nil {
		*p = e
	}
	r.mu.Unlock()
}

// slotLocked claims the ring slot for the next event (draining or
// overwriting on overflow) and returns it, or nil when the recorder is
// closed. Returning the slot instead of copying an Event in keeps the
// staged drain path down to a single struct store. Caller holds mu.
func (r *Recorder) slotLocked() *Event {
	if r.closed {
		return nil
	}
	r.recorded++
	if r.n == len(r.ring) {
		if r.sink != nil {
			r.drainLocked()
		} else {
			r.start = (r.start + 1) % len(r.ring)
			r.n--
			r.overwritten++
		}
	}
	p := &r.ring[(r.start+r.n)%len(r.ring)]
	r.n++
	return p
}

// drainLocked flushes all buffered events to the sink. Caller holds mu.
func (r *Recorder) drainLocked() {
	for i := 0; i < r.n; i++ {
		e := r.ring[(r.start+i)%len(r.ring)]
		if err := r.sink.WriteEvent(e); err != nil && r.sinkErr == nil {
			r.sinkErr = err
		}
	}
	r.start, r.n = 0, 0
}

// recordSample streams one probe sample into the run file, preserving
// record order: buffered events drain to the sink first, so a sample
// always sits after every event it could have observed. Sink-less
// recorders just count it for the summary. Called by Probe.Sample.
func (r *Recorder) recordSample(s Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.samples++
	if r.sink == nil {
		return
	}
	r.drainLocked()
	if err := r.sink.WriteSample(s); err != nil && r.sinkErr == nil {
		r.sinkErr = err
	}
}

// Events returns the currently buffered events, oldest first. With a
// sink attached this is only the tail not yet drained.
func (r *Recorder) Events() []Event {
	r.drainStages()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.ring[(r.start+i)%len(r.ring)]
	}
	return out
}

// Recorded reports the total events seen (including drained and
// overwritten ones).
func (r *Recorder) Recorded() uint64 {
	r.drainStages()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}

// ObserveTransport attaches the recorder to a transport: every message
// (including drops) becomes a CatTransport event, and the transport's
// counters, per-type latency histograms and byte accounting, and traffic
// matrices are snapshotted into the closing summary.
func (r *Recorder) ObserveTransport(t *transport.Transport) {
	if t == nil {
		return
	}
	r.mu.Lock()
	r.transports = append(r.transports, t)
	sink := r.sink != nil
	if !sink {
		// Sink-less recording keeps only the last Capacity events, which
		// the transport's in-place event log provides at near-zero cost
		// per message.
		st := &transportStage{r: r, t: t, log: transport.NewEventLog(len(r.ring))}
		r.stages = append(r.stages, st)
		t.SetEventLog(st.log)
	}
	r.mu.Unlock()
	if sink {
		// With a sink every event must reach the run file in global
		// arrival order, so record through the (slower) trace callback —
		// per-event JSON encoding dominates that path anyway.
		t.AddTrace(func(e transport.Event) { r.Record(transportEvent(e)) })
	}
}

// ObserveKernel includes a kernel's run statistics (simulated end time,
// events processed, queue high-water mark) in the closing summary.
func (r *Recorder) ObserveKernel(k *sim.Kernel) {
	if k == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.kernels {
		if have == k {
			return
		}
	}
	r.kernels = append(r.kernels, k)
}

// ObserveShardedKernel includes a sharded kernel's run statistics in the
// closing summary: aggregate epoch/cross-shard counters plus per-shard
// processed / max-queue / cross-bytes gauges, so run files and /metrics
// show shard balance.
func (r *Recorder) ObserveShardedKernel(sk *sim.ShardedKernel) {
	if sk == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.sharded {
		if have == sk {
			return
		}
	}
	r.sharded = append(r.sharded, sk)
}

// ObserveChurn attaches to a churn driver: every join/leave becomes a
// CatChurn event and the final join/leave totals enter the summary.
func (r *Recorder) ObserveChurn(d *churn.Driver) {
	if d == nil {
		return
	}
	r.mu.Lock()
	r.churns = append(r.churns, d)
	r.mu.Unlock()
	prev := d.Trace
	d.Trace = func(h *underlay.Host, up bool) {
		if prev != nil {
			prev(h, up)
		}
		typ := "leave"
		if up {
			typ = "join"
		}
		r.Record(Event{At: d.Kernel.Now(), Cat: CatChurn, Type: typ, From: hostID(h), To: -1})
	}
}

// ObserveMobility attaches to a mobility model: every handover becomes a
// CatMobility event (Detail "as<from>→as<to>") and the final move total
// enters the summary.
func (r *Recorder) ObserveMobility(m *mobility.Model) {
	if m == nil {
		return
	}
	r.mu.Lock()
	r.mobilities = append(r.mobilities, m)
	r.mu.Unlock()
	prev := m.Trace
	m.Trace = func(h *underlay.Host, from, to mobility.AttachmentPoint) {
		if prev != nil {
			prev(h, from, to)
		}
		r.Record(Event{
			At: m.Kernel.Now(), Cat: CatMobility, Type: "move",
			From: hostID(h), To: -1,
			Detail: fmt.Sprintf("as%d→as%d", from.AS.ID, to.AS.ID),
		})
	}
}

// prefixed returns name for i==0 and name<i+1> after — "transport",
// "transport2", … — so multi-transport runs keep metrics separable while
// the common single-transport case stays clean.
func prefixed(name string, i int) string {
	if i == 0 {
		return name
	}
	return fmt.Sprintf("%s%d", name, i+1)
}

// Snapshot freezes everything the recorder observes — transports,
// kernels, churn, mobility, plus the user registry — into one
// MetricsSnapshot. It can be called mid-run; Close calls it one final
// time for the summary.
func (r *Recorder) Snapshot() MetricsSnapshot {
	r.drainStages()
	s := r.reg.Snapshot()
	r.mu.Lock()
	transports := append([]*transport.Transport(nil), r.transports...)
	kernels := append([]*sim.Kernel(nil), r.kernels...)
	sharded := append([]*sim.ShardedKernel(nil), r.sharded...)
	churns := append([]*churn.Driver(nil), r.churns...)
	mobilities := append([]*mobility.Model(nil), r.mobilities...)
	r.mu.Unlock()

	for i, t := range transports {
		p := prefixed("transport", i)
		for name, v := range t.Counters().Snapshot() {
			s.Counters[p+":msgs:"+name] = v
		}
		for _, st := range t.AllStats() {
			s.Counters[p+":bytes:"+st.Type] = st.Bytes
			s.Counters[p+":intra_bytes:"+st.Type] = st.IntraBytes
			if st.Dropped > 0 {
				s.Counters[p+":dropped:"+st.Type] = st.Dropped
			}
			s.Histograms[p+":latency:"+st.Type] = st.Latency.Snapshot()
		}
		for name, m := range t.TrafficMatrices() {
			s.Matrices[p+":matrix:"+name] = m.Snapshot()
		}
	}
	for i, k := range kernels {
		p := prefixed("kernel", i)
		st := k.Stats()
		s.Counters[p+":processed"] = st.Processed
		s.Gauges[p+":max_queue"] = float64(st.MaxQueue)
		s.Gauges[p+":now_ms"] = float64(st.Now)
	}
	for i, sk := range sharded {
		p := prefixed("kernel:sharded", i)
		st := sk.Stats()
		s.Counters[p+":processed"] = st.Processed
		s.Counters[p+":epochs"] = st.Epochs
		s.Counters[p+":cross_events"] = st.CrossEvents
		s.Counters[p+":cross_batches"] = st.CrossBatches
		s.Counters[p+":late_events"] = st.LateEvents
		s.Gauges[p+":now_ms"] = float64(st.Now)
		for _, sh := range st.Shards {
			pp := fmt.Sprintf("%s:shard%d", p, sh.Shard)
			s.Counters[pp+":processed"] = sh.Processed
			s.Counters[pp+":cross_bytes"] = sh.CrossBytes
			s.Gauges[pp+":max_queue"] = float64(sh.MaxQueue)
		}
	}
	for i, d := range churns {
		p := prefixed("churn", i)
		s.Counters[p+":joins"] = d.Joins
		s.Counters[p+":leaves"] = d.Leaves
	}
	for i, m := range mobilities {
		p := prefixed("mobility", i)
		s.Counters[p+":moves"] = m.Moves
	}
	return s
}

// Close drains the ring, takes the final metrics snapshot, writes the
// summary to the sink (when present), and returns the first sink error
// encountered. Further Record calls are ignored. Close is idempotent.
func (r *Recorder) Close() error {
	r.drainStages()
	r.mu.Lock()
	if r.closed {
		err := r.sinkErr
		r.mu.Unlock()
		return err
	}
	if r.sink != nil {
		r.drainLocked()
	}
	var finished sim.Time
	for _, k := range r.kernels {
		if now := k.Now(); now > finished {
			finished = now
		}
	}
	for _, sk := range r.sharded {
		if now := sk.Now(); now > finished {
			finished = now
		}
	}
	r.summary = Summary{
		FinishedAt:  finished,
		Events:      r.recorded,
		Overwritten: r.overwritten,
		Samples:     r.samples,
	}
	r.closed = true
	r.mu.Unlock()

	// Snapshot outside the lock: it re-enters r.mu and touches observed
	// components, and closed=true already freezes the event stream.
	r.summary.Metrics = r.Snapshot()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink != nil {
		if err := r.sink.WriteSummary(r.summary); err != nil && r.sinkErr == nil {
			r.sinkErr = err
		}
		if err := r.sink.Flush(); err != nil && r.sinkErr == nil {
			r.sinkErr = err
		}
	}
	return r.sinkErr
}

// Summary returns the closing summary; valid after Close.
func (r *Recorder) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.summary
}

// Manifest returns the run manifest the recorder was configured with.
func (r *Recorder) Manifest() Manifest { return r.manifest }
