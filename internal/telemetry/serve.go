package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server exposes live observability endpoints for a running simulation or
// a live unapnode daemon: Prometheus metrics text at /metrics and the
// net/http/pprof suite under /debug/pprof/. It exists for multi-minute
// sweeps, long underlaysim runs, and real-socket clusters, where "how far
// along is it and where is the CPU going" should not require waiting for
// the closing summary.
type Server struct {
	ln  net.Listener
	srv *http.Server
	err chan error

	closeOnce sync.Once
	closeErr  error
	// stop detaches the context watcher installed by ServeContext, so a
	// plain Close does not leak its goroutine.
	stop context.CancelFunc
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:0" or ":0" for an
// ephemeral port — Addr reports what was actually bound). Every /metrics
// request renders src() with MetricsSnapshot.PrometheusText; pass a
// Probe's LatestSnapshot for a probe-cached live view, or a
// Registry.Snapshot for a direct one (safe now that the metrics
// accumulators tolerate concurrent readers). A nil src serves an empty
// snapshot — pprof-only mode. The server runs on its own goroutine;
// Close shuts it down.
func Serve(addr string, src func() MetricsSnapshot) (*Server, error) {
	return ServeContext(context.Background(), addr, src)
}

// ServeContext is Serve bound to a context: when ctx is cancelled the
// server closes itself and releases the port, so callers can tie the
// metrics endpoint to a daemon's lifetime instead of tracking the Server
// handle. Close remains safe to call (before or after cancellation).
func ServeContext(ctx context.Context, addr string, src func() MetricsSnapshot) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		snap := newMetricsSnapshot()
		if src != nil {
			snap = src()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, snap.PrometheusText())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, err: make(chan error, 1)}
	go func() { s.err <- s.srv.Serve(ln) }()

	watchCtx, stop := context.WithCancel(ctx)
	s.stop = stop
	go func() {
		<-watchCtx.Done()
		s.Close()
	}()
	return s, nil
}

// Addr returns the listener's resolved address ("127.0.0.1:43125") —
// with ":0" this is where the ephemeral port shows up.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down and releases the port. It is idempotent
// and safe to call concurrently with (or after) context cancellation.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.stop()
		s.closeErr = s.srv.Close()
		<-s.err // wait for the serve goroutine to exit
	})
	return s.closeErr
}
