package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Server exposes live observability endpoints for a running simulation:
// Prometheus metrics text at /metrics and the net/http/pprof suite under
// /debug/pprof/. It exists for multi-minute sweeps and long underlaysim
// runs, where "how far along is it and where is the CPU going" should
// not require waiting for the closing summary.
type Server struct {
	ln  net.Listener
	srv *http.Server
	err chan error
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:0" for an
// ephemeral port). Every /metrics request renders src() with
// MetricsSnapshot.PrometheusText; pass a Probe's LatestSnapshot for a
// race-free live view (the sampler refreshes it each tick, so it is at
// most one probe interval stale). A nil src serves an empty snapshot —
// pprof-only mode. The server runs on its own goroutine; Close shuts it
// down.
func Serve(addr string, src func() MetricsSnapshot) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		snap := newMetricsSnapshot()
		if src != nil {
			snap = src()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, snap.PrometheusText())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}, err: make(chan error, 1)}
	go func() { s.err <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listener's resolved address ("127.0.0.1:43125").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down and releases the port.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.err // wait for the serve goroutine to exit
	return err
}
