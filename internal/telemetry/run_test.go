package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"unap2p/internal/metrics"
)

func writeTestRun(t *testing.T, man Manifest, events []Event, snap MetricsSnapshot) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	if err := w.WriteManifest(man); err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := w.WriteEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteSummary(Summary{Events: uint64(len(events)), Metrics: snap}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRunRoundTrip(t *testing.T) {
	man := Manifest{Name: "rt", Experiment: "exp-x", Seed: 5, Scale: 2,
		Params: map[string]string{"k": "v"}}
	events := []Event{
		{At: 1, Cat: CatTransport, Type: "ping", From: 0, To: 3, Bytes: 64, Latency: 12.5},
		{At: 2, Cat: CatChurn, Type: "leave", From: 1, To: -1},
	}
	snap := newMetricsSnapshot()
	snap.Counters["c"] = 7
	buf := writeTestRun(t, man, events, snap)

	run, err := ReadRun(buf)
	if err != nil {
		t.Fatal(err)
	}
	if run.Manifest.Experiment != "exp-x" || run.Manifest.Seed != 5 || run.Manifest.Params["k"] != "v" {
		t.Fatalf("manifest round trip failed: %+v", run.Manifest)
	}
	if len(run.Events) != 2 || run.Events[0].Latency != 12.5 || run.Events[1].Type != "leave" {
		t.Fatalf("events round trip failed: %+v", run.Events)
	}
	if !run.HasSummary || run.Summary.Metrics.Counters["c"] != 7 {
		t.Fatalf("summary round trip failed: %+v", run.Summary)
	}
}

func TestReadRunRejectsGarbage(t *testing.T) {
	if _, err := ReadRun(strings.NewReader("not json\n")); err == nil {
		t.Fatal("expected error on malformed line")
	}
	if _, err := ReadRun(strings.NewReader(`{"t":"event","event":{"cat":"x"}}` + "\n")); err == nil {
		t.Fatal("expected error on run without manifest")
	}
}

func snapWith(counters map[string]uint64) MetricsSnapshot {
	s := newMetricsSnapshot()
	for k, v := range counters {
		s.Counters[k] = v
	}
	return s
}

func runWith(counters map[string]uint64) *Run {
	return &Run{Summary: Summary{Metrics: snapWith(counters)}, HasSummary: true}
}

func TestDiffRunsIdentical(t *testing.T) {
	a := runWith(map[string]uint64{"x": 100, "y": 3})
	b := runWith(map[string]uint64{"x": 100, "y": 3})
	if ds := DiffRuns(a, b, 0); len(ds) != 0 {
		t.Fatalf("identical runs diff: %+v", ds)
	}
}

func TestDiffRunsThreshold(t *testing.T) {
	a := runWith(map[string]uint64{"x": 100, "y": 1000})
	b := runWith(map[string]uint64{"x": 103, "y": 1500})
	ds := DiffRuns(a, b, 0.05)
	if len(ds) != 1 || ds[0].Metric != "y" {
		t.Fatalf("want only y flagged at 5%%, got %+v", ds)
	}
	// Largest relative delta sorts first at threshold 0.
	ds = DiffRuns(a, b, 0)
	if len(ds) != 2 || ds[0].Metric != "y" || ds[1].Metric != "x" {
		t.Fatalf("want [y x], got %+v", ds)
	}
}

func TestDiffRunsMissingMetric(t *testing.T) {
	a := runWith(map[string]uint64{"x": 1, "only_a": 5})
	b := runWith(map[string]uint64{"x": 1, "only_b": 9})
	ds := DiffRuns(a, b, 0.5)
	if len(ds) != 2 {
		t.Fatalf("want both one-sided metrics flagged, got %+v", ds)
	}
	for _, d := range ds {
		if d.MissingIn == "" {
			t.Fatalf("delta %+v should be marked one-sided", d)
		}
	}
}

func TestDiffRunsHistogramStats(t *testing.T) {
	ha := metrics.NewLatencyHistogram()
	hb := metrics.NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		ha.Observe(10)
		hb.Observe(30)
	}
	sa, sb := newMetricsSnapshot(), newMetricsSnapshot()
	sa.Histograms["lat"] = ha.Snapshot()
	sb.Histograms["lat"] = hb.Snapshot()
	ds := DiffRuns(
		&Run{Summary: Summary{Metrics: sa}, HasSummary: true},
		&Run{Summary: Summary{Metrics: sb}, HasSummary: true}, 0.05)
	found := false
	for _, d := range ds {
		if d.Metric == "lat.mean" {
			found = true
		}
		if d.Metric == "lat.n" {
			t.Fatalf("sample counts are equal, must not be flagged: %+v", d)
		}
	}
	if !found {
		t.Fatalf("histogram mean shift not flagged: %+v", ds)
	}
}
