package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"unap2p/internal/churn"
	"unap2p/internal/geo"
	"unap2p/internal/mobility"
	"unap2p/internal/sim"
	"unap2p/internal/topology"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// testNet builds a small deterministic underlay for recorder tests.
func testNet(seed int64) (*underlay.Network, []*underlay.Host) {
	src := sim.NewSource(seed)
	net := topology.TransitStub(topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
		Transits: 2,
		Stubs:    4,
	})
	hosts := topology.PlaceHosts(net, 4, false, 1, 5, src.Stream("place"))
	return net, hosts
}

func TestRecorderObserveTransport(t *testing.T) {
	net, hosts := testNet(1)
	k := sim.NewKernel()
	tr := transport.New(net, k)
	rec := NewRecorder(Config{Capacity: 16})
	rec.ObserveTransport(tr)
	rec.ObserveKernel(k)

	tr.Send(hosts[0], hosts[1], 100, "ping")
	tr.Send(hosts[1], hosts[0], 40, "pong")

	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("recorded %d events, want 2", len(evs))
	}
	if evs[0].Cat != CatTransport || evs[0].Type != "ping" || evs[0].Bytes != 100 {
		t.Fatalf("bad first event: %+v", evs[0])
	}
	if evs[0].From != int(hosts[0].ID) || evs[0].To != int(hosts[1].ID) {
		t.Fatalf("bad endpoints: %+v", evs[0])
	}
	if evs[0].Latency <= 0 {
		t.Fatalf("expected positive latency, got %v", evs[0].Latency)
	}

	snap := rec.Snapshot()
	if snap.Counters["transport:msgs:ping"] != 1 || snap.Counters["transport:msgs:pong"] != 1 {
		t.Fatalf("counters missing from snapshot: %v", snap.Counters)
	}
	if snap.Counters["transport:bytes:ping"] != 100 {
		t.Fatalf("bytes counter wrong: %v", snap.Counters)
	}
	if h, ok := snap.Histograms["transport:latency:ping"]; !ok || h.N != 1 {
		t.Fatalf("latency histogram missing: %v", snap.Histograms)
	}
}

func TestRecorderChainsExistingTrace(t *testing.T) {
	net, hosts := testNet(1)
	tr := transport.Over(net)
	var prior int
	tr.Trace = func(transport.Event) { prior++ }
	rec := NewRecorder(Config{Capacity: 8})
	rec.ObserveTransport(tr)
	tr.Send(hosts[0], hosts[1], 10, "x")
	if prior != 1 {
		t.Fatalf("prior trace observer called %d times, want 1", prior)
	}
	if got := rec.Recorded(); got != 1 {
		t.Fatalf("recorder saw %d events, want 1", got)
	}
}

func TestRecorderRingOverwritesWithoutSink(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		rec.Record(Event{At: sim.Time(i), Cat: "test", Type: "e", From: -1, To: -1})
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Oldest six were overwritten; the survivors are 6..9 in order.
	for i, e := range evs {
		if e.At != sim.Time(6+i) {
			t.Fatalf("event %d at %v, want %v", i, e.At, sim.Time(6+i))
		}
	}
	rec.Close()
	sum := rec.Summary()
	if sum.Events != 10 || sum.Overwritten != 6 {
		t.Fatalf("summary = %+v, want 10 events / 6 overwritten", sum)
	}
}

func TestRecorderDrainsToSinkOnOverflow(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(Config{
		Capacity: 4,
		Sink:     NewRunWriter(&buf),
		Manifest: Manifest{Name: "overflow-test", Seed: 7, Scale: 1},
	})
	for i := 0; i < 10; i++ {
		rec.Record(Event{At: sim.Time(i), Cat: "test", Type: "e", From: -1, To: -1})
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Events) != 10 {
		t.Fatalf("sink got %d events, want all 10", len(run.Events))
	}
	for i, e := range run.Events {
		if e.At != sim.Time(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
	if run.Manifest.Name != "overflow-test" || run.Manifest.Seed != 7 {
		t.Fatalf("manifest mangled: %+v", run.Manifest)
	}
	if !run.HasSummary || run.Summary.Events != 10 || run.Summary.Overwritten != 0 {
		t.Fatalf("summary = %+v", run.Summary)
	}
}

func TestRecorderObserveChurn(t *testing.T) {
	_, hosts := testNet(3)
	k := sim.NewKernel()
	src := sim.NewSource(3)
	drv := &churn.Driver{
		Kernel: k,
		Model:  churn.Exponential{MeanOn: 2 * sim.Second, MeanOff: 1 * sim.Second},
		Rand:   src.Stream("churn"),
	}
	var external int
	drv.Trace = func(*underlay.Host, bool) { external++ }
	rec := NewRecorder(Config{Capacity: 1024})
	rec.ObserveChurn(drv)
	rec.ObserveKernel(k)
	drv.Start(hosts)
	k.Run(20 * sim.Second)

	joins, leaves := 0, 0
	for _, e := range rec.Events() {
		switch {
		case e.Cat == CatChurn && e.Type == "join":
			joins++
		case e.Cat == CatChurn && e.Type == "leave":
			leaves++
		default:
			t.Fatalf("unexpected event %+v", e)
		}
	}
	if uint64(joins) != drv.Joins || uint64(leaves) != drv.Leaves {
		t.Fatalf("events (%d joins, %d leaves) disagree with driver (%d, %d)",
			joins, leaves, drv.Joins, drv.Leaves)
	}
	if joins+leaves == 0 {
		t.Fatal("no churn happened; test is vacuous")
	}
	if external != joins+leaves {
		t.Fatalf("pre-existing Trace hook called %d times, want %d", external, joins+leaves)
	}
	snap := rec.Snapshot()
	if snap.Counters["churn:joins"] != drv.Joins || snap.Counters["churn:leaves"] != drv.Leaves {
		t.Fatalf("churn counters missing: %v", snap.Counters)
	}
}

func TestRecorderObserveMobility(t *testing.T) {
	net, hosts := testNet(4)
	k := sim.NewKernel()
	src := sim.NewSource(4)
	var points []mobility.AttachmentPoint
	for i, as := range net.ASes() {
		if as.Kind != underlay.LocalISP {
			continue
		}
		points = append(points, mobility.AttachmentPoint{
			AS:          as,
			Pos:         geo.Coord{Lat: float64(i), Lon: float64(2 * i)},
			AccessDelay: sim.Duration(5 + i),
		})
	}
	model := mobility.NewModel(k, src.Stream("mob"), points, 2*sim.Second)
	rec := NewRecorder(Config{Capacity: 1024})
	rec.ObserveMobility(model)
	model.Attach(hosts[0], 0)
	model.Track(hosts[0])
	k.Run(30 * sim.Second)

	if model.Moves == 0 {
		t.Fatal("no moves happened; test is vacuous")
	}
	evs := rec.Events()
	if uint64(len(evs)) != model.Moves {
		t.Fatalf("%d move events, want %d", len(evs), model.Moves)
	}
	for _, e := range evs {
		if e.Cat != CatMobility || e.Type != "move" || !strings.Contains(e.Detail, "→") {
			t.Fatalf("bad move event %+v", e)
		}
	}
	if snap := rec.Snapshot(); snap.Counters["mobility:moves"] != model.Moves {
		t.Fatalf("mobility counter missing: %v", snap.Counters)
	}
}

func TestRecorderCloseIdempotentAndFreezes(t *testing.T) {
	rec := NewRecorder(Config{Capacity: 4})
	rec.Record(Event{Cat: "test", Type: "a", From: -1, To: -1})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rec.Record(Event{Cat: "test", Type: "b", From: -1, To: -1}) // ignored
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Summary().Events; got != 1 {
		t.Fatalf("summary events = %d, want 1 (post-close records must be dropped)", got)
	}
}

func TestRegistryUserMetricsInSnapshot(t *testing.T) {
	rec := NewRecorder(Config{})
	rec.Registry().RegisterGauge("app:quality", func() float64 { return 0.75 })
	snap := rec.Snapshot()
	if snap.Gauges["app:quality"] != 0.75 {
		t.Fatalf("user gauge missing: %v", snap.Gauges)
	}
}

func TestRegistryDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r := NewRegistry()
	r.RegisterGauge("x", func() float64 { return 0 })
	r.RegisterGauge("x", func() float64 { return 1 })
}
