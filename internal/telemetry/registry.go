package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"unap2p/internal/metrics"
)

// MetricsSnapshot is the frozen, serializable view of every metric a run
// exported: flat counters and gauges plus named histogram and
// traffic-matrix snapshots. It is embedded in a run's Summary and is the
// unit `unapctl diff` compares.
type MetricsSnapshot struct {
	Counters   map[string]uint64                    `json:"counters,omitempty"`
	Gauges     map[string]float64                   `json:"gauges,omitempty"`
	Histograms map[string]metrics.HistogramSnapshot `json:"histograms,omitempty"`
	Matrices   map[string]metrics.MatrixSnapshot    `json:"matrices,omitempty"`
}

// newMetricsSnapshot returns an empty snapshot with all maps allocated.
func newMetricsSnapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]metrics.HistogramSnapshot{},
		Matrices:   map[string]metrics.MatrixSnapshot{},
	}
}

// JSON renders the snapshot as indented, key-sorted JSON (encoding/json
// sorts map keys, so output is deterministic).
func (s MetricsSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Flatten reduces the snapshot to scalar name → value pairs: counters and
// gauges verbatim, histograms as <name>.{n,mean,p50,p95,max}, matrices as
// <name>.{total,intra,intra_fraction} — the flat space `unapctl diff`
// compares run-to-run.
func (s MetricsSnapshot) Flatten() map[string]float64 {
	out := make(map[string]float64, len(s.Counters)+len(s.Gauges)+5*len(s.Histograms)+3*len(s.Matrices))
	for k, v := range s.Counters {
		out[k] = float64(v)
	}
	for k, v := range s.Gauges {
		out[k] = v
	}
	for k, h := range s.Histograms {
		out[k+".n"] = float64(h.N)
		out[k+".mean"] = h.Mean()
		out[k+".p50"] = h.Quantile(0.5)
		out[k+".p95"] = h.Quantile(0.95)
		out[k+".max"] = h.Max
	}
	for k, m := range s.Matrices {
		out[k+".total"] = float64(m.Total)
		out[k+".intra"] = float64(m.Intra)
		out[k+".intra_fraction"] = m.IntraFraction()
	}
	return out
}

// promName sanitizes a metric name into the Prometheus exporter charset
// [a-zA-Z0-9_] (colons are legal but reserved for recording rules),
// prefixed with the unap2p namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("unap2p_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PrometheusText renders the snapshot in the Prometheus text exposition
// format (v0.0.4): counters as <name>_total, gauges plain, histograms
// with cumulative le-labelled buckets plus _sum and _count, matrices as
// three gauges. Output is deterministic (name-sorted).
func (s MetricsSnapshot) PrometheusText() string {
	var b strings.Builder
	for _, name := range metrics.SortedKeys(s.Counters) {
		pn := promName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range metrics.SortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[name])
	}
	for _, name := range metrics.SortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%g\"} %d\n", pn, bound, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.N)
		fmt.Fprintf(&b, "%s_sum %g\n", pn, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.N)
	}
	for _, name := range metrics.SortedKeys(s.Matrices) {
		m := s.Matrices[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s_bytes gauge\n", pn)
		fmt.Fprintf(&b, "%s_bytes{scope=\"total\"} %d\n", pn, m.Total)
		fmt.Fprintf(&b, "%s_bytes{scope=\"intra\"} %d\n", pn, m.Intra)
		fmt.Fprintf(&b, "%s_bytes{scope=\"inter\"} %d\n", pn, m.Total-m.Intra)
	}
	return b.String()
}

// Registry tracks live metric sources by name and snapshots them on
// demand. The Recorder owns one (every component it observes registers
// its meters here), and callers may register extra application metrics
// through Recorder.Registry(). Registration of a name already taken
// panics — silent aliasing would corrupt diffs.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*metrics.CounterSet
	histograms map[string]*metrics.Histogram
	matrices   map[string]*metrics.TrafficMatrix
	gauges     map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*metrics.CounterSet{},
		histograms: map[string]*metrics.Histogram{},
		matrices:   map[string]*metrics.TrafficMatrix{},
		gauges:     map[string]func() float64{},
	}
}

func (r *Registry) checkFresh(name string) {
	if _, ok := r.counters[name]; ok {
		panic("telemetry: duplicate metric name " + name)
	}
	if _, ok := r.histograms[name]; ok {
		panic("telemetry: duplicate metric name " + name)
	}
	if _, ok := r.matrices[name]; ok {
		panic("telemetry: duplicate metric name " + name)
	}
	if _, ok := r.gauges[name]; ok {
		panic("telemetry: duplicate metric name " + name)
	}
}

// RegisterCounters registers a counter set; its counters snapshot as
// "<name>:<counter>".
func (r *Registry) RegisterCounters(name string, cs *metrics.CounterSet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFresh(name)
	r.counters[name] = cs
}

// RegisterHistogram registers a live histogram under name.
func (r *Registry) RegisterHistogram(name string, h *metrics.Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFresh(name)
	r.histograms[name] = h
}

// RegisterMatrix registers a live traffic matrix under name.
func (r *Registry) RegisterMatrix(name string, m *metrics.TrafficMatrix) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFresh(name)
	r.matrices[name] = m
}

// RegisterGauge registers a gauge function sampled at snapshot time.
func (r *Registry) RegisterGauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFresh(name)
	r.gauges[name] = fn
}

// Snapshot freezes every registered source into one MetricsSnapshot.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := newMetricsSnapshot()
	for name, cs := range r.counters {
		for cname, v := range cs.Snapshot() {
			s.Counters[name+":"+cname] = v
		}
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	for name, m := range r.matrices {
		s.Matrices[name] = m.Snapshot()
	}
	for name, fn := range r.gauges {
		s.Gauges[name] = fn()
	}
	return s
}
