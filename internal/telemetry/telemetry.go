// Package telemetry is the observability subsystem of unap2p: run
// recording, metrics export, and span tracing over simulated time.
//
// The paper's §3.2 and Table 2 insist that the *cost* of underlay
// awareness — probe traffic, oracle load, coordinate maintenance — be
// measured, not assumed. PR 1/2 put the meters in place (transport
// counters and histograms, selector overhead counters); this package
// makes them persistent and comparable:
//
//   - Recorder — a bounded-ring event bus fed by transport traces,
//     churn/mobility transitions, and span flushes, draining to a JSONL
//     run file together with a run Manifest (experiment, seed, scale)
//     and a closing metrics Summary (counter / histogram / traffic-matrix
//     snapshots, kernel statistics).
//   - Registry / MetricsSnapshot — freeze metrics.CounterSet, Histogram,
//     and TrafficMatrix into JSON and Prometheus text-format exports.
//   - SpanTracer — sim-time span trees for per-query latency breakdowns
//     (a Kademlia lookup as a tree of hop spans), with a Messenger
//     wrapper that spans every transport operation.
//
// Telemetry is strictly opt-in and a pure observer: it draws no
// randomness, perturbs no schedule, and mutates nothing it watches, so
// fixed-seed experiment results are bit-identical with or without a
// Recorder attached (asserted by TestRecorderIsPureObserver).
//
// The run-file format and the `unapctl record / report / diff` workflow
// are documented in EXPERIMENTS.md.
package telemetry

import (
	"unap2p/internal/sim"
	"unap2p/internal/transport"
	"unap2p/internal/underlay"
)

// Event categories emitted by the built-in observers.
const (
	CatTransport = "transport" // one overlay message (possibly dropped)
	CatChurn     = "churn"     // a session transition (type "join"/"leave")
	CatMobility  = "mobility"  // a handover (type "move")
	CatSpan      = "span"      // a flushed tracer span (type = span name)
)

// Event is one telemetry record on the run timeline.
type Event struct {
	// At is the simulated time of the event (0 for kernel-less sources).
	At sim.Time `json:"at"`
	// Cat is the event category (Cat* constants).
	Cat string `json:"cat"`
	// Type refines the category: the message type for transport events,
	// "join"/"leave" for churn, "move" for mobility, the span name for
	// spans.
	Type string `json:"type"`
	// From and To are host IDs (-1 when not applicable).
	From int `json:"from"`
	To   int `json:"to"`
	// Bytes is the payload size for transport events.
	Bytes uint64 `json:"bytes,omitempty"`
	// Latency is the one-way latency for transport events and the total
	// duration for span events, in simulated milliseconds.
	Latency sim.Duration `json:"latency_ms,omitempty"`
	// Dropped marks a message discarded by fault injection.
	Dropped bool `json:"dropped,omitempty"`
	// Detail carries free-form context (e.g. "as3→as7" for a handover or
	// the parent path for a span).
	Detail string `json:"detail,omitempty"`
}

// transportEvent converts a transport trace event into a telemetry event.
func transportEvent(e transport.Event) Event {
	var out Event
	fillTransportEvent(&out, &e)
	return out
}

// fillTransportEvent converts in place — the staged drain path writes
// straight into a ring slot, avoiding an intermediate Event copy.
func fillTransportEvent(dst *Event, e *transport.Event) {
	dst.At = e.At
	dst.Cat = CatTransport
	dst.Type = e.Type
	dst.From = hostID(e.From)
	dst.To = hostID(e.To)
	dst.Bytes = e.Bytes
	dst.Latency = e.Latency
	dst.Dropped = e.Dropped
	dst.Detail = ""
}

func hostID(h *underlay.Host) int {
	if h == nil {
		return -1
	}
	return int(h.ID)
}

// Manifest identifies a run: what was executed, under which seed and
// parameters. It is written as the first line of a run file, before any
// event, so readers can identify a run without scanning it. Manifests
// contain no wall-clock state — two runs of the same experiment and seed
// produce byte-identical run files.
type Manifest struct {
	// Name labels the run (defaults to the experiment id in unapctl).
	Name string `json:"name"`
	// Experiment is the experiment id executed (empty for ad-hoc runs).
	Experiment string `json:"experiment,omitempty"`
	// Seed and Scale mirror experiments.RunConfig.
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// Params records any further run parameters worth replaying.
	Params map[string]string `json:"params,omitempty"`
}

// Summary closes a run: end-of-run statistics plus the full metrics
// snapshot, written as the last line of a run file.
type Summary struct {
	// FinishedAt is the latest simulated time across observed kernels.
	FinishedAt sim.Time `json:"finished_at"`
	// Events counts events recorded; Overwritten counts those lost to
	// ring overflow (always 0 when a sink is attached).
	Events      uint64 `json:"events"`
	Overwritten uint64 `json:"overwritten,omitempty"`
	// Samples counts probe ticks recorded (0 when no Probe was
	// attached, and then omitted so probe-less run files are unchanged).
	Samples uint64 `json:"samples,omitempty"`
	// Metrics is the end-of-run snapshot of everything observed.
	Metrics MetricsSnapshot `json:"metrics"`
}
