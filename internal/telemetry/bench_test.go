package telemetry

import (
	"testing"

	"unap2p/internal/sim"
	"unap2p/internal/transport"
)

// The acceptance bar for the telemetry subsystem is that attaching a
// Recorder costs at most ~10% on the transport hot path. Run both
// benchmarks with -benchmem and compare ns/op.

func benchSend(b *testing.B, attach, accounted bool) {
	net, hosts := testNet(1)
	k := sim.NewKernel()
	tr := transport.New(net, k)
	if accounted {
		tr.MatrixFor("bench")
	}
	if attach {
		// A small ring stays L1-resident, which matters at this
		// per-event cost scale; capacity only bounds how much history
		// Events() can replay, not the metrics accounting.
		rec := NewRecorder(Config{Capacity: 64})
		rec.ObserveTransport(tr)
		rec.ObserveKernel(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i+1)%len(hosts)], 64, "bench")
	}
}

// Bare Send: per-type counters and latency histogram only — the
// cheapest possible configuration, so the least favorable denominator
// for relative recorder overhead.
func BenchmarkTransportSendDetached(b *testing.B) { benchSend(b, false, false) }
func BenchmarkTransportSendRecorded(b *testing.B) { benchSend(b, true, false) }

// Accounted Send: a traffic matrix is registered for the message type,
// as every experiment's AS-pair byte accounting does — the
// production-configured send path.
func BenchmarkTransportSendAccountedDetached(b *testing.B) { benchSend(b, false, true) }
func BenchmarkTransportSendAccountedRecorded(b *testing.B) { benchSend(b, true, true) }

// benchDeliver measures the full per-message path of kernel experiments:
// Send accounting plus delivery scheduling and dispatch — what one
// overlay message actually costs in a simulation.
func benchDeliver(b *testing.B, attach bool) {
	net, hosts := testNet(1)
	k := sim.NewKernel()
	tr := transport.New(net, k)
	if attach {
		rec := NewRecorder(Config{Capacity: 64})
		rec.ObserveTransport(tr)
		rec.ObserveKernel(k)
	}
	delivered := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Deliver(hosts[i%len(hosts)], hosts[(i+1)%len(hosts)], 64, "bench", func() { delivered++ })
		k.Drain()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

func BenchmarkTransportDeliverDetached(b *testing.B) { benchDeliver(b, false) }
func BenchmarkTransportDeliverRecorded(b *testing.B) { benchDeliver(b, true) }

// BenchmarkRecorderRecord isolates the cost of the ring write itself.
func BenchmarkRecorderRecord(b *testing.B) {
	rec := NewRecorder(Config{Capacity: 1 << 12})
	e := Event{At: 1, Cat: CatTransport, Type: "bench", From: 0, To: 1, Bytes: 64, Latency: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(e)
	}
}

// BenchmarkProbeSample measures one probe tick — a full metrics snapshot
// plus health-source reads — over a realistically loaded recorder. This
// is the probe plane's entire runtime cost: the Send/Deliver hot paths
// are untouched (the probe adds no per-message work, compare the
// Detached/Recorded pairs above), so total overhead is ticks × this.
func BenchmarkProbeSample(b *testing.B) {
	net, hosts := testNet(1)
	k := sim.NewKernel()
	tr := transport.New(net, k)
	tr.MatrixFor("bench")
	p := NewProbe(nil, ProbeConfig{Interval: 10, Retention: 256})
	p.ObserveTransport(tr)
	p.ObserveKernel(k)
	p.ObserveHealth("overlay", func() map[string]float64 {
		return map[string]float64{"a": 1, "b": 2, "c": 3}
	})
	for i := 0; i < 1000; i++ {
		tr.Send(hosts[i%len(hosts)], hosts[(i+1)%len(hosts)], 64, "bench")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sample()
	}
}
