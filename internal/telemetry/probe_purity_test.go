// Probe purity acceptance tests, the PR's headline invariant: a Probe is
// a pure observer, like the Recorder it wraps. Attaching one — daemon
// sampling ticks interleaving with the experiment's own events, health
// callbacks reading live overlay state mid-run — must leave fixed-seed
// results bit-identical, and two probed recordings of the same seed and
// interval must produce byte-identical run files, sample records
// included.
package telemetry_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"unap2p/internal/experiments"
	"unap2p/internal/sim"
	"unap2p/internal/telemetry"
)

func runProbed(t *testing.T, id string, scale float64, interval sim.Duration) (experiments.Result, *telemetry.Probe, []byte) {
	t.Helper()
	var buf bytes.Buffer
	rec := telemetry.NewRecorder(telemetry.Config{
		Capacity: 1 << 14,
		Sink:     telemetry.NewRunWriter(&buf),
		Manifest: telemetry.Manifest{Name: id, Experiment: id, Seed: 1, Scale: scale},
	})
	probe := telemetry.NewProbe(rec, telemetry.ProbeConfig{Interval: interval})
	res, err := experiments.Run(id, experiments.RunConfig{Seed: 1, Scale: scale, Obs: probe})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return res, probe, buf.Bytes()
}

func TestProbeIsPureObserver(t *testing.T) {
	cases := []struct {
		id    string
		scale float64
	}{
		{"exp-intra-as", 0.5},   // kernel-driven Gnutella: daemon ticks interleave
		{"exp-superpeer", 0.5},  // churn driver: live-population gauge
		{"exp-pns-kademlia", 1}, // kernel-less rounds: manual Sample calls
		{"exp-bns-swarm", 0.5},  // swarm OnRound hook
		{"abl-pns-metric", 0.5}, // Vivaldi convergence sampling
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			bare, err := experiments.Run(tc.id, experiments.RunConfig{Seed: 1, Scale: tc.scale})
			if err != nil {
				t.Fatal(err)
			}
			probed, probe, _ := runProbed(t, tc.id, tc.scale, 50)
			if !reflect.DeepEqual(bare, probed) {
				t.Fatalf("attaching a probe changed the result of %s:\nbare:\n%s\nprobed:\n%s",
					tc.id, bare.Render(), probed.Render())
			}
			if probe.Series().Len() == 0 {
				t.Fatalf("probe captured no samples during %s; sampling wiring is missing", tc.id)
			}
		})
	}
}

func TestProbedRunsAreByteIdentical(t *testing.T) {
	_, _, a := runProbed(t, "exp-pns-kademlia", 1, 50)
	_, _, b := runProbed(t, "exp-pns-kademlia", 1, 50)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical-seed probed recordings produced different run files")
	}
	if !strings.Contains(string(a), `"t":"sample"`) {
		t.Fatal("probed run file carries no sample records")
	}
}

// TestProbeCapturesOverlayHealthCurves pins the acceptance examples: the
// convergence curves the probe plane exists to expose are actually in
// the samples — coordinate embedding error, DHT routing-table locality,
// swarm completion.
func TestProbeCapturesOverlayHealthCurves(t *testing.T) {
	cases := []struct {
		id, metric string
		scale      float64
		decreasing bool
	}{
		{"abl-pns-metric", "health:vivaldi:median_rel_error", 0.5, true},
		{"exp-pns-kademlia", "health:kademlia-pns:rt_intra_as_fraction", 1, false},
		{"exp-bns-swarm", "health:swarm-biased:completion_mean", 0.5, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.metric, func(t *testing.T) {
			_, probe, _ := runProbed(t, tc.id, tc.scale, 50)
			vals := probe.Series().Values(tc.metric)
			var finite []float64
			for _, v := range vals {
				if v == v {
					finite = append(finite, v)
				}
			}
			if len(finite) < 2 {
				t.Fatalf("%s has %d finite points, want a curve", tc.metric, len(finite))
			}
			first, last := finite[0], finite[len(finite)-1]
			if tc.decreasing && last >= first {
				t.Fatalf("%s did not converge: %v → %v", tc.metric, first, last)
			}
			if !tc.decreasing && last <= first {
				t.Fatalf("%s did not grow: %v → %v", tc.metric, first, last)
			}
		})
	}
}
