package telemetry

import (
	"errors"
	"math"
	"testing"
)

// failWriter rejects every write — a full disk, reduced to its essence.
type failWriter struct{ err error }

func (w *failWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestRunWriterStickyError(t *testing.T) {
	boom := errors.New("disk full")
	w := NewRunWriter(&failWriter{err: boom})
	if err := w.WriteManifest(Manifest{Name: "x"}); err != nil {
		// bufio may absorb the first records; an early error is fine too.
		if !errors.Is(err, boom) {
			t.Fatalf("unexpected error %v", err)
		}
	}
	// Spill the 4KiB bufio buffer so the underlying failure must surface.
	for i := 0; i < 200; i++ {
		w.WriteEvent(Event{Cat: CatTransport, Type: "padding-padding-padding", Bytes: 1 << 20})
	}
	if err := w.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush = %v, want the underlying write error", err)
	}
	if err := w.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want sticky error", err)
	}
	// Once broken, every later write short-circuits with the same cause.
	if err := w.WriteSummary(Summary{}); !errors.Is(err, boom) {
		t.Fatalf("post-failure WriteSummary = %v, want sticky error", err)
	}
}

func TestRecorderCloseSurfacesSinkError(t *testing.T) {
	boom := errors.New("disk full")
	rec := NewRecorder(Config{
		Capacity: 4,
		Sink:     NewRunWriter(&failWriter{err: boom}),
		Manifest: Manifest{Name: "doomed"},
	})
	for i := 0; i < 400; i++ {
		rec.Record(Event{Cat: CatTransport, Type: "padding-padding-padding", Bytes: 1 << 20})
	}
	if err := rec.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want the first sink write error", err)
	}
	// Idempotent: a second Close reports the same failure.
	if err := rec.Close(); !errors.Is(err, boom) {
		t.Fatalf("second Close = %v, want the same error", err)
	}
}

// TestRelDeltaZeroBaseline pins the diff semantics at a zero baseline:
// 0→0 is no drift, 0→x drifts by the absolute delta (not an automatic
// 100%), and only NaN-vs-number is treated as fully drifted. Regression
// test for `unapctl diff` flagging every epsilon above a zero baseline.
func TestRelDeltaZeroBaseline(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{0, 0.01, 0.01},
		{0.01, 0, 0.01},
		{0, 5, 5},
		{10, 10, 0},
		{10, 12, 2.0 / 12},
		{-4, 4, 2}, // sign flip: |a-b| / max magnitude
		{math.NaN(), math.NaN(), 0},
		{math.NaN(), 1, 1},
		{1, math.NaN(), 1},
	}
	for _, tc := range cases {
		got := relDelta(tc.a, tc.b)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("relDelta(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	// The threshold contract: a tiny absolute change above zero stays
	// below any sane threshold instead of always exceeding it.
	if relDelta(0, 0.001) > 0.02 {
		t.Error("epsilon above a zero baseline exceeds a 2% diff threshold")
	}
}
