package linalg

import (
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition A = Q Λ Qᵀ of a symmetric
// matrix using the cyclic Jacobi rotation method. It returns eigenvalues
// and the matrix whose columns are the corresponding orthonormal
// eigenvectors, sorted by descending |λ| (the ordering PCA on a distance
// matrix needs, since D is indefinite and principal components correspond
// to the largest singular values |λ|).
func EigenSym(a *Matrix) (vals []float64, vecs *Matrix) {
	if !a.IsSymmetric(1e-9) {
		panic("linalg: EigenSym on non-symmetric matrix")
	}
	n := a.Rows
	s := a.Clone()
	q := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(s)
		if off < 1e-13*(1+s.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for r := p + 1; r < n; r++ {
				apq := s.At(p, r)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := s.At(p, p), s.At(r, r)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := t * c
				rotate(s, q, p, r, c, sn)
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = s.At(i, i)
	}
	// Sort by descending |λ|, carrying eigenvector columns along.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return math.Abs(vals[idx[i]]) > math.Abs(vals[idx[j]])
	})
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for row := 0; row < n; row++ {
			sortedVecs.Set(row, newCol, q.At(row, oldCol))
		}
	}
	return sortedVals, sortedVecs
}

// rotate applies the Jacobi rotation J(p,q,θ) to s (two-sided) and
// accumulates it into q.
func rotate(s, q *Matrix, p, r int, c, sn float64) {
	n := s.Rows
	for k := 0; k < n; k++ {
		skp, skr := s.At(k, p), s.At(k, r)
		s.Set(k, p, c*skp-sn*skr)
		s.Set(k, r, sn*skp+c*skr)
	}
	for k := 0; k < n; k++ {
		spk, srk := s.At(p, k), s.At(r, k)
		s.Set(p, k, c*spk-sn*srk)
		s.Set(r, k, sn*spk+c*srk)
	}
	for k := 0; k < n; k++ {
		qkp, qkr := q.At(k, p), q.At(k, r)
		q.Set(k, p, c*qkp-sn*qkr)
		q.Set(k, r, sn*qkp+c*qkr)
	}
}

func offDiagNorm(s *Matrix) float64 {
	var sum float64
	for i := 0; i < s.Rows; i++ {
		for j := 0; j < s.Cols; j++ {
			if i != j {
				sum += s.At(i, j) * s.At(i, j)
			}
		}
	}
	return math.Sqrt(sum)
}

// SVD computes the thin singular value decomposition A = U Σ Vᵀ of an
// m×n matrix (m ≥ n) by one-sided Jacobi orthogonalization. Singular
// values are returned in descending order; U is m×n with orthonormal
// columns and V is n×n orthogonal.
func SVD(a *Matrix) (u *Matrix, sigma []float64, v *Matrix) {
	m, n := a.Rows, a.Cols
	if m < n {
		// Decompose the transpose and swap factors: Aᵀ = U Σ Vᵀ ⇒ A = V Σ Uᵀ.
		ut, s, vt := SVD(a.T())
		return vt, s, ut
	}
	w := a.Clone() // working copy whose columns we orthogonalize
	vm := Identity(n)

	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for r := p + 1; r < n; r++ {
				// Compute the 2x2 Gram submatrix of columns p and r.
				var app, arr, apr float64
				for i := 0; i < m; i++ {
					wp, wr := w.At(i, p), w.At(i, r)
					app += wp * wp
					arr += wr * wr
					apr += wp * wr
				}
				if math.Abs(apr) <= 1e-15*math.Sqrt(app*arr) {
					continue
				}
				rotated = true
				tau := (arr - app) / (2 * apr)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := t * c
				for i := 0; i < m; i++ {
					wp, wr := w.At(i, p), w.At(i, r)
					w.Set(i, p, c*wp-sn*wr)
					w.Set(i, r, sn*wp+c*wr)
				}
				for i := 0; i < n; i++ {
					vp, vr := vm.At(i, p), vm.At(i, r)
					vm.Set(i, p, c*vp-sn*vr)
					vm.Set(i, r, sn*vp+c*vr)
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Column norms are the singular values; normalize columns for U.
	type sv struct {
		val float64
		col int
	}
	svs := make([]sv, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += w.At(i, j) * w.At(i, j)
		}
		svs[j] = sv{math.Sqrt(norm), j}
	}
	sort.SliceStable(svs, func(i, j int) bool { return svs[i].val > svs[j].val })

	sigma = make([]float64, n)
	u = NewMatrix(m, n)
	v = NewMatrix(n, n)
	for newCol, s := range svs {
		sigma[newCol] = s.val
		for i := 0; i < m; i++ {
			if s.val > 1e-300 {
				u.Set(i, newCol, w.At(i, s.col)/s.val)
			}
		}
		for i := 0; i < n; i++ {
			v.Set(i, newCol, vm.At(i, s.col))
		}
	}
	return u, sigma, v
}
