package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At = %v", m.At(1, 0))
	}
	m.Set(1, 0, 7)
	if m.At(1, 0) != 7 {
		t.Fatal("Set failed")
	}
	tr := m.T()
	if tr.At(0, 1) != 7 || tr.At(1, 0) != 2 {
		t.Fatalf("transpose wrong: %v", tr)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases data")
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := a.Mul(b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if c.Sub(want).FrobeniusNorm() > 1e-12 {
		t.Fatalf("Mul = %v", c)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := a.MulVec([]float64{5, 6})
	if v[0] != 17 || v[1] != 39 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	a.Mul(b)
}

func TestScaleColRowFirstCols(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	s := a.Scale(2)
	if s.At(1, 2) != 12 || a.At(1, 2) != 6 {
		t.Fatal("Scale must not mutate receiver")
	}
	col := a.Col(1)
	if col[0] != 2 || col[1] != 5 {
		t.Fatalf("Col = %v", col)
	}
	row := a.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row = %v", row)
	}
	fc := a.FirstCols(2)
	if fc.Cols != 2 || fc.At(1, 1) != 5 {
		t.Fatalf("FirstCols = %v", fc)
	}
}

func TestIdentityAndSymmetric(t *testing.T) {
	id := Identity(3)
	if !id.IsSymmetric(0) {
		t.Fatal("identity not symmetric")
	}
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if a.IsSymmetric(0.5) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(0) {
		t.Fatal("non-square matrix reported symmetric")
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if !almost(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
	if !almost(L2([]float64{0, 0}, []float64{3, 4}), 5, 1e-15) {
		t.Fatal("L2 wrong")
	}
}

// limExampleD is the beacon delay matrix implied by Examples 1/4 of
// Lim et al.: hosts 1,2 in one AS, hosts 3,4 in another; intra-AS delay 1,
// inter-AS delay 3.
func limExampleD() *Matrix {
	return FromRows([][]float64{
		{0, 1, 3, 3},
		{1, 0, 3, 3},
		{3, 3, 0, 1},
		{3, 3, 1, 0},
	})
}

func TestEigenSymLimMatrix(t *testing.T) {
	d := limExampleD()
	vals, vecs := EigenSym(d)
	// Analytical eigenvalues: 7 (on (1,1,1,1)), -5 (on (1,1,-1,-1)), -1, -1.
	want := []float64{7, -5, -1, -1}
	for i, w := range want {
		if !almost(vals[i], w, 1e-9) {
			t.Fatalf("eigenvalue[%d] = %v, want %v (all: %v)", i, vals[i], w, vals)
		}
	}
	// Reconstruction: D = Q Λ Qᵀ.
	lam := NewMatrix(4, 4)
	for i, v := range vals {
		lam.Set(i, i, v)
	}
	rec := vecs.Mul(lam).Mul(vecs.T())
	if rec.Sub(d).FrobeniusNorm() > 1e-9 {
		t.Fatalf("reconstruction error %v", rec.Sub(d).FrobeniusNorm())
	}
	// Orthonormality: QᵀQ = I.
	if vecs.T().Mul(vecs).Sub(Identity(4)).FrobeniusNorm() > 1e-9 {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestEigenSymRandomReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(9)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := EigenSym(a)
		lam := NewMatrix(n, n)
		for i, v := range vals {
			lam.Set(i, i, v)
		}
		rec := vecs.Mul(lam).Mul(vecs.T())
		if err := rec.Sub(a).FrobeniusNorm(); err > 1e-8*(1+a.FrobeniusNorm()) {
			t.Fatalf("n=%d reconstruction error %v", n, err)
		}
		for i := 1; i < n; i++ {
			if math.Abs(vals[i]) > math.Abs(vals[i-1])+1e-12 {
				t.Fatalf("eigenvalues not sorted by |λ|: %v", vals)
			}
		}
	}
}

func TestEigenSymPanicsOnAsymmetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EigenSym(FromRows([][]float64{{1, 2}, {3, 4}}))
}

func TestSVDRandomReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := 2 + r.Intn(10)
		n := 2 + r.Intn(10)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		u, sigma, v := SVD(a)
		// Rebuild A = U Σ Vᵀ.
		k := len(sigma)
		sm := NewMatrix(k, k)
		for i, s := range sigma {
			sm.Set(i, i, s)
		}
		rec := u.Mul(sm).Mul(v.T())
		if err := rec.Sub(a).FrobeniusNorm(); err > 1e-8*(1+a.FrobeniusNorm()) {
			t.Fatalf("%dx%d reconstruction error %v", m, n, err)
		}
		for i := 1; i < k; i++ {
			if sigma[i] > sigma[i-1]+1e-12 {
				t.Fatalf("singular values not sorted: %v", sigma)
			}
			if sigma[i] < 0 {
				t.Fatalf("negative singular value: %v", sigma)
			}
		}
	}
}

func TestSVDMatchesEigenForSymmetric(t *testing.T) {
	d := limExampleD()
	_, sigma, _ := SVD(d)
	want := []float64{7, 5, 1, 1}
	for i, w := range want {
		if !almost(sigma[i], w, 1e-8) {
			t.Fatalf("sigma[%d] = %v, want %v", i, sigma[i], w)
		}
	}
}

func TestPrincipalComponentsSignConvention(t *testing.T) {
	un := PrincipalComponents(limExampleD(), 2)
	// Lim et al. Example 4: u1 = -(.5,.5,.5,.5), u2 = (-.5,-.5,.5,.5).
	want := FromRows([][]float64{
		{-0.5, -0.5},
		{-0.5, -0.5},
		{-0.5, 0.5},
		{-0.5, 0.5},
	})
	if un.Sub(want).FrobeniusNorm() > 1e-9 {
		t.Fatalf("principal components =\n%v\nwant\n%v", un, want)
	}
}

func TestCumulativeVariationAndChooseDimension(t *testing.T) {
	sigma := []float64{7, 5, 1, 1}
	cv := CumulativeVariation(sigma)
	// total = 49+25+1+1 = 76.
	if !almost(cv[0], 49.0/76, 1e-12) || !almost(cv[1], 74.0/76, 1e-12) || !almost(cv[3], 1, 1e-12) {
		t.Fatalf("cv = %v", cv)
	}
	if d := ChooseDimension(sigma, 0.9); d != 2 {
		t.Fatalf("dimension at 0.9 = %d, want 2", d)
	}
	if d := ChooseDimension(sigma, 0.98); d != 3 {
		t.Fatalf("dimension at 0.98 = %d, want 3 (cv=%v)", d, cv)
	}
	if d := ChooseDimension(sigma, 0.999); d != 4 {
		t.Fatalf("dimension at 0.999 = %d, want 4", d)
	}
	if d := ChooseDimension(sigma, 0.5); d != 1 {
		t.Fatalf("dimension at 0.5 = %d, want 1", d)
	}
	if ChooseDimension(nil, 0.9) != 0 {
		t.Fatal("empty sigma should give 0")
	}
}

// Property: Jacobi eigendecomposition preserves the trace (Σλ = tr A) and
// Frobenius norm (Σλ² = ‖A‖²) of any symmetric matrix we feed it.
func TestQuickEigenInvariants(t *testing.T) {
	f := func(raw [6]int8) bool {
		a := NewMatrix(3, 3)
		k := 0
		for i := 0; i < 3; i++ {
			for j := i; j < 3; j++ {
				v := float64(raw[k]) / 8
				a.Set(i, j, v)
				a.Set(j, i, v)
				k++
			}
		}
		vals, _ := EigenSym(a)
		var trace, sumsq float64
		for i := 0; i < 3; i++ {
			trace += a.At(i, i)
		}
		var ltrace, lsumsq float64
		for _, v := range vals {
			ltrace += v
			lsumsq += v * v
		}
		fn := a.FrobeniusNorm()
		sumsq = fn * fn
		return almost(trace, ltrace, 1e-8) && almost(sumsq, lsumsq, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: L2 satisfies the triangle inequality and symmetry.
func TestQuickL2Metric(t *testing.T) {
	f := func(a, b, c [3]int8) bool {
		av := []float64{float64(a[0]), float64(a[1]), float64(a[2])}
		bv := []float64{float64(b[0]), float64(b[1]), float64(b[2])}
		cv := []float64{float64(c[0]), float64(c[1]), float64(c[2])}
		return almost(L2(av, bv), L2(bv, av), 1e-12) &&
			L2(av, cv) <= L2(av, bv)+L2(bv, cv)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
