// Package linalg provides the small dense linear-algebra kernel needed by
// the Internet Coordinate System of Lim et al. (Figure 4 of the paper):
// matrix products, symmetric eigendecomposition (cyclic Jacobi), one-sided
// Jacobi SVD, and PCA helpers. It is deliberately minimal — stdlib only —
// and tuned for the small (tens of beacons) matrices ICS uses.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m·v for a column vector v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %d-vec", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Scale returns c·m as a new matrix.
func (m *Matrix) Scale(c float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= c
	}
	return out
}

// Col returns column j as a new slice.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Row returns row i as a new slice.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Cols returns the submatrix of columns [0, n).
func (m *Matrix) FirstCols(n int) *Matrix {
	if n > m.Cols {
		panic("linalg: FirstCols beyond width")
	}
	out := NewMatrix(m.Rows, n)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*n:(i+1)*n], m.Data[i*m.Cols:i*m.Cols+n])
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// FrobeniusNorm returns sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sub returns m−b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Sub dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "%8.4f ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// L2 returns the Euclidean distance between equal-length points.
func L2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: L2 length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
