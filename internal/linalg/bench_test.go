package linalg

import (
	"math/rand"
	"testing"
)

func randomSym(n int, seed int64) *Matrix {
	r := rand.New(rand.NewSource(seed))
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// BenchmarkEigenSym measures the cyclic Jacobi eigendecomposition at the
// beacon-count scale ICS uses.
func BenchmarkEigenSym(b *testing.B) {
	a := randomSym(16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigenSym(a)
	}
}

// BenchmarkSVD measures the one-sided Jacobi SVD.
func BenchmarkSVD(b *testing.B) {
	a := randomSym(16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SVD(a)
	}
}

// BenchmarkMatMul measures the dense product.
func BenchmarkMatMul(b *testing.B) {
	x := randomSym(32, 3)
	y := randomSym(32, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}
