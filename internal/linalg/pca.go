package linalg

// PCA utilities for the Lim et al. Internet Coordinate System, which
// applies principal component analysis directly to the beacon distance
// matrix (no mean-centering — the "raw" PCA variant their Eq. (7) uses on
// the symmetric delay matrix).

// PrincipalComponents returns the first n principal directions of the
// symmetric matrix d — the eigenvectors of d ordered by descending |λ| —
// with a deterministic sign convention: each column is flipped so its
// first nonzero entry is negative. The convention is arbitrary
// mathematically (eigenvector sign is free) but matches the worked
// Examples 4–5 in Lim et al. so the unap2p test suite can assert their
// published coordinates digit-for-digit.
func PrincipalComponents(d *Matrix, n int) *Matrix {
	_, vecs := EigenSym(d)
	un := vecs.FirstCols(n)
	for j := 0; j < un.Cols; j++ {
		for i := 0; i < un.Rows; i++ {
			v := un.At(i, j)
			if v == 0 {
				continue
			}
			if v > 0 {
				for k := 0; k < un.Rows; k++ {
					un.Set(k, j, -un.At(k, j))
				}
			}
			break
		}
	}
	return un
}

// CumulativeVariation returns, for each k in 1..len(sigma), the cumulative
// percentage of variation captured by the first k singular values:
// Σ_{i<k} σᵢ² / Σ σᵢ². Lim et al. pick the coordinate dimension as the
// smallest k whose cumulative variation exceeds a threshold (their Eq. 9).
func CumulativeVariation(sigma []float64) []float64 {
	var total float64
	for _, s := range sigma {
		total += s * s
	}
	out := make([]float64, len(sigma))
	if total == 0 {
		return out
	}
	var run float64
	for i, s := range sigma {
		run += s * s
		out[i] = run / total
	}
	return out
}

// ChooseDimension returns the smallest dimension whose cumulative
// variation meets threshold (in (0,1]); it returns len(sigma) if the
// threshold is never met (numerically impossible for threshold ≤ 1, kept
// as a safe fallback).
func ChooseDimension(sigma []float64, threshold float64) int {
	cv := CumulativeVariation(sigma)
	for i, v := range cv {
		if v >= threshold {
			return i + 1
		}
	}
	return len(sigma)
}
