package underlay_test

import (
	"fmt"

	"unap2p/internal/underlay"
)

// A minimal Figure 1 Internet: one transit ISP selling connectivity to
// two local ISPs. Valley-free routing climbs to the provider and
// descends; the customer-side byte counters are what transit billing
// reads.
func ExampleNetwork() {
	net := underlay.New()
	transit := net.AddAS(underlay.TransitISP, 5)
	homeISP := net.AddAS(underlay.LocalISP, 2)
	workISP := net.AddAS(underlay.LocalISP, 2)
	net.ConnectTransit(homeISP, transit, 10)
	net.ConnectTransit(workISP, transit, 10)

	home := net.AddHost(homeISP, 3)
	work := net.AddHost(workISP, 3)

	fmt.Println("AS path:", net.ASPath(homeISP.ID, workISP.ID))
	fmt.Println("one-way latency:", net.Latency(home, work))
	net.Send(home, work, 1_000_000)
	fmt.Printf("intra-AS traffic share: %.0f%%\n", 100*net.Traffic.IntraFraction())
	// Output:
	// AS path: [1 0 2]
	// one-way latency: 28.000ms
	// intra-AS traffic share: 0%
}
