package underlay

import (
	"fmt"
	"sort"

	"unap2p/internal/sim"
)

// PeerID indexes a peer in a PeerTable. IDs are dense and assigned in
// AddPeer order, so they double as row indices into the table's parallel
// slices.
type PeerID uint32

// PeerTable is compact struct-of-arrays peer state for megascale runs:
// one row per peer, each attribute a parallel slice indexed by PeerID.
// It replaces per-peer *Host pointer structs on the hot path — a million
// peers fit in a handful of flat allocations with no pointer chasing and
// nothing for the garbage collector to trace.
//
// Sharded runs partition peers by AS (see PartitionASes); every mutable
// cell (liveness) is then owned by exactly one shard, and cells are
// byte-addressed (up is []bool, not a bitset) so neighbouring peers on
// different shards never share a word.
type PeerTable struct {
	asID   []int32        // owning AS, dense AS id
	access []float32      // last-mile one-way delay, ms
	up     []bool         // liveness; flipped by churn on the owning shard
	asOf   map[int32]int  // peers per AS, for partition weights
	net    *Network       // topology the peers attach to
	delay  []sim.Duration // cached per-AS intra-AS delay, indexed by AS id
}

// NewPeerTable returns an empty table over the given network with
// capacity for n peers. The network's routes must be computed
// (Network.ComputeRoutes) before the table is used from concurrent
// shards: route computation is lazy and must not first trigger inside a
// shard callback.
func NewPeerTable(n *Network, capacity int) *PeerTable {
	pt := &PeerTable{
		asID:   make([]int32, 0, capacity),
		access: make([]float32, 0, capacity),
		up:     make([]bool, 0, capacity),
		asOf:   make(map[int32]int),
		net:    n,
	}
	pt.delay = make([]sim.Duration, n.NumASes())
	for i, a := range n.ASes() {
		pt.delay[i] = a.IntraDelay
	}
	return pt
}

// AddPeer appends a peer in AS as with the given access delay, online.
func (pt *PeerTable) AddPeer(as int, access sim.Duration) PeerID {
	id := PeerID(len(pt.asID))
	pt.asID = append(pt.asID, int32(as))
	pt.access = append(pt.access, float32(access))
	pt.up = append(pt.up, true)
	pt.asOf[int32(as)]++
	return id
}

// Len reports the number of peers.
func (pt *PeerTable) Len() int { return len(pt.asID) }

// AS returns the peer's AS id.
func (pt *PeerTable) AS(p PeerID) int { return int(pt.asID[p]) }

// Access returns the peer's last-mile one-way delay.
func (pt *PeerTable) Access(p PeerID) sim.Duration { return sim.Duration(pt.access[p]) }

// Up reports whether the peer is online. During a sharded run this must
// only be read from the peer's owning shard (churn writes it there).
func (pt *PeerTable) Up(p PeerID) bool { return pt.up[p] }

// SetUp flips the peer's liveness; shard-owned during sharded runs.
func (pt *PeerTable) SetUp(p PeerID, up bool) { pt.up[p] = up }

// UpCount counts online peers. Only safe at barriers or after a run.
func (pt *PeerTable) UpCount() int {
	n := 0
	for _, u := range pt.up {
		if u {
			n++
		}
	}
	return n
}

// PeersPerAS returns the per-AS peer counts used as partition weights.
func (pt *PeerTable) PeersPerAS() map[int32]int { return pt.asOf }

// Latency returns the one-way delay between two peers using the same
// formula as Network.Latency, O(1) from the table's flat rows plus the
// precomputed AS route table.
func (pt *PeerTable) Latency(a, b PeerID) sim.Duration {
	if a == b {
		return 0
	}
	base := sim.Duration(pt.access[a]) + sim.Duration(pt.access[b])
	sa, sb := pt.asID[a], pt.asID[b]
	if sa == sb {
		return base + pt.delay[sa]
	}
	d := pt.net.ASDelay(int(sa), int(sb))
	if d < 0 {
		panic(fmt.Sprintf("underlay: peer %d (AS%d) cannot reach peer %d (AS%d)", a, sa, b, sb))
	}
	return base + pt.delay[sa]/2 + d + pt.delay[sb]/2
}

// Partition maps each AS (dense id index) to a shard.
type Partition struct {
	shardOfAS []int32
	shards    int
}

// NumShards reports the shard count.
func (p *Partition) NumShards() int { return p.shards }

// ShardOfAS returns the shard owning AS as.
func (p *Partition) ShardOfAS(as int) int { return int(p.shardOfAS[as]) }

// ShardOf returns the shard owning peer id.
func (p *Partition) ShardOf(pt *PeerTable, id PeerID) int {
	return int(p.shardOfAS[pt.asID[id]])
}

// PartitionASes assigns ASes to shards by greedy longest-processing-time
// bin packing on the given per-AS weights (peer counts): heaviest AS
// first into the lightest shard, ties broken by AS id then shard id, so
// the result is deterministic. Peers of one AS always share a shard —
// the partition boundary is the AS boundary, which is also where
// cross-peer latency has its AS-delay floor (the sharded kernel's
// lookahead).
//
// The requested shard count is a hint, clamped to [1, numASes]: an AS is
// the smallest ownership unit, so more shards than ASes would leave
// permanently empty shards (and a zero cross-shard latency floor), and a
// non-positive request means "don't shard". Callers must size the kernel
// from the returned Partition's NumShards, not the request.
func PartitionASes(numASes int, weight func(as int) int, shards int) *Partition {
	if shards < 1 {
		shards = 1
	}
	if numASes >= 1 && shards > numASes {
		shards = numASes
	}
	p := &Partition{shardOfAS: make([]int32, numASes), shards: shards}
	if shards == 1 {
		return p
	}
	order := make([]int, numASes)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		wi, wj := weight(order[i]), weight(order[j])
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	load := make([]int, shards)
	for _, as := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		p.shardOfAS[as] = int32(best)
		load[best] += weight(as)
	}
	return p
}

// MinCrossShardLatency returns the smallest one-way peer-to-peer latency
// that can cross a shard boundary under the partition — the conservative
// lookahead bound for the sharded kernel's epoch window. It scans AS
// pairs in different shards and combines the routed AS delay with each
// side's halved intra-AS delay and the smallest access delay of any peer
// in that AS.
//
// Fallback contract: it returns 0 whenever no event can ever cross a
// shard boundary — an empty table, a single AS, a single-shard
// partition, or unroutable cross-shard AS pairs. Zero is not a valid
// epoch window; callers must substitute a positive default (any value
// works, since with no cross-shard traffic the window only sets barrier
// granularity). Every in-tree caller uses `if window <= 0 { window = …}`.
func MinCrossShardLatency(pt *PeerTable, p *Partition) sim.Duration {
	nAS := pt.net.NumASes()
	// Cheapest access link per AS; ASes without peers never source events.
	minAccess := make([]sim.Duration, nAS)
	seen := make([]bool, nAS)
	for i, as := range pt.asID {
		a := sim.Duration(pt.access[i])
		if !seen[as] || a < minAccess[as] {
			minAccess[as], seen[as] = a, true
		}
	}
	best := sim.Duration(-1)
	for a := 0; a < nAS; a++ {
		if !seen[a] {
			continue
		}
		for b := 0; b < nAS; b++ {
			if !seen[b] || p.shardOfAS[a] == p.shardOfAS[b] {
				continue
			}
			d := pt.net.ASDelay(a, b)
			if d < 0 {
				continue
			}
			lat := minAccess[a] + minAccess[b] + pt.delay[a]/2 + d + pt.delay[b]/2
			if best < 0 || lat < best {
				best = lat
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
