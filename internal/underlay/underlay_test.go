package underlay

import (
	"testing"
	"testing/quick"

	"unap2p/internal/sim"
)

// hierarchy builds the Figure 1 topology: two transit ISPs peered with
// each other, each providing transit to two local ISPs; the local ISPs of
// transit 0 also peer with each other.
//
//	  T0 ===peer=== T1
//	 /  \          /  \
//	L0   L1      L2    L3
//	\\...peer.../       (L0–L1 peering)
func hierarchy() (*Network, []*AS) {
	n := New()
	t0 := n.AddAS(TransitISP, 5)
	t1 := n.AddAS(TransitISP, 5)
	l0 := n.AddAS(LocalISP, 2)
	l1 := n.AddAS(LocalISP, 2)
	l2 := n.AddAS(LocalISP, 2)
	l3 := n.AddAS(LocalISP, 2)
	n.ConnectPeering(t0, t1, 20)
	n.ConnectTransit(l0, t0, 10)
	n.ConnectTransit(l1, t0, 10)
	n.ConnectTransit(l2, t1, 10)
	n.ConnectTransit(l3, t1, 10)
	n.ConnectPeering(l0, l1, 3)
	return n, []*AS{t0, t1, l0, l1, l2, l3}
}

func TestValleyFreePrefersPeeringOverTransit(t *testing.T) {
	n, as := hierarchy()
	// L0→L1 should use the direct peering link (1 hop), not the path via T0.
	p := n.ASPath(as[2].ID, as[3].ID)
	if len(p) != 2 || p[0] != as[2].ID || p[1] != as[3].ID {
		t.Fatalf("L0→L1 path = %v, want direct peering", p)
	}
	if d := n.ASDelay(as[2].ID, as[3].ID); d != 3 {
		t.Fatalf("L0→L1 delay = %v, want 3", d)
	}
}

func TestValleyFreeUpPeerDown(t *testing.T) {
	n, as := hierarchy()
	// L0→L2 must climb to T0, cross the T0–T1 peering, descend to L2.
	p := n.ASPath(as[2].ID, as[4].ID)
	want := []int{as[2].ID, as[0].ID, as[1].ID, as[4].ID}
	if len(p) != len(want) {
		t.Fatalf("L0→L2 path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("L0→L2 path = %v, want %v", p, want)
		}
	}
	if d := n.ASDelay(as[2].ID, as[4].ID); d != 40 {
		t.Fatalf("L0→L2 delay = %v, want 40", d)
	}
}

func TestValleyFreeForbidsValley(t *testing.T) {
	// Two stubs sharing a provider chain cannot route *through* another
	// stub: L0–L1 with no peering and a common provider must go via T0,
	// and a customer must never transit its peers' traffic downhill-uphill.
	n := New()
	t0 := n.AddAS(TransitISP, 5)
	l0 := n.AddAS(LocalISP, 2)
	l1 := n.AddAS(LocalISP, 2)
	l2 := n.AddAS(LocalISP, 2)
	n.ConnectTransit(l0, t0, 10)
	n.ConnectTransit(l1, t0, 10)
	// l2 peers with l0 and l1: a "valley" l0→l2→l1 (peer,peer) is invalid.
	n.ConnectPeering(l0, l2, 1)
	n.ConnectPeering(l2, l1, 1)
	p := n.ASPath(l0.ID, l1.ID)
	// Valid valley-free options: up-down via T0 (2 hops). The 2-peering
	// path l0-l2-l1 has 2 hops as well but is NOT valley-free.
	if len(p) != 3 || p[1] != t0.ID {
		t.Fatalf("path = %v, want via T0 (valley-free)", p)
	}
}

func TestValleyFreeUnreachableWithoutExport(t *testing.T) {
	// Peer of my peer is unreachable when neither has a provider: p2p
	// routes are not exported to other peers.
	n := New()
	a := n.AddAS(LocalISP, 1)
	b := n.AddAS(LocalISP, 1)
	c := n.AddAS(LocalISP, 1)
	n.ConnectPeering(a, b, 1)
	n.ConnectPeering(b, c, 1)
	if n.Reachable(a.ID, c.ID) {
		t.Fatal("a should not reach c via two peering hops")
	}
	if n.ASHops(a.ID, c.ID) != -1 {
		t.Fatal("ASHops should be -1 for unreachable")
	}
	if n.ASPath(a.ID, c.ID) != nil {
		t.Fatal("ASPath should be nil for unreachable")
	}
}

func TestShortestDelayPolicyIgnoresEconomics(t *testing.T) {
	n := New()
	a := n.AddAS(LocalISP, 1)
	b := n.AddAS(LocalISP, 1)
	c := n.AddAS(LocalISP, 1)
	n.ConnectPeering(a, b, 1)
	n.ConnectPeering(b, c, 1)
	n.Policy = ShortestDelay
	if !n.Reachable(a.ID, c.ID) {
		t.Fatal("shortest-delay policy should reach c")
	}
	if d := n.ASDelay(a.ID, c.ID); d != 2 {
		t.Fatalf("delay = %v, want 2", d)
	}
}

func TestShortestDelayPrefersLowDelayOverFewHops(t *testing.T) {
	n := New()
	a := n.AddAS(LocalISP, 1)
	b := n.AddAS(LocalISP, 1)
	c := n.AddAS(LocalISP, 1)
	n.ConnectPeering(a, c, 100) // direct but slow
	n.ConnectPeering(a, b, 10)
	n.ConnectPeering(b, c, 10) // two hops but fast
	n.Policy = ShortestDelay
	p := n.ASPath(a.ID, c.ID)
	if len(p) != 3 {
		t.Fatalf("path = %v, want 2-hop low-delay path", p)
	}
	if d := n.ASDelay(a.ID, c.ID); d != 20 {
		t.Fatalf("delay = %v, want 20", d)
	}
}

func TestValleyFreePrefersFewerHops(t *testing.T) {
	// Valley-free keeps BGP semantics: fewer AS hops wins even if slower.
	n := New()
	a := n.AddAS(LocalISP, 1)
	b := n.AddAS(LocalISP, 1)
	c := n.AddAS(LocalISP, 1)
	n.ConnectPeering(a, c, 100)
	n.ConnectTransit(a, b, 10)
	n.ConnectTransit(c, b, 10)
	p := n.ASPath(a.ID, c.ID)
	if len(p) != 2 {
		t.Fatalf("path = %v, want direct 1-hop peering", p)
	}
}

func TestHostLatency(t *testing.T) {
	n, as := hierarchy()
	h1 := n.AddHost(as[2], 5) // L0
	h2 := n.AddHost(as[2], 5) // L0
	h3 := n.AddHost(as[4], 5) // L2

	if d := n.Latency(h1, h1); d != 0 {
		t.Fatalf("self latency = %v", d)
	}
	// Same AS: access + access + intra (2).
	if d := n.Latency(h1, h2); d != 12 {
		t.Fatalf("intra-AS latency = %v, want 12", d)
	}
	// Cross: 5+5 access + 1+1 half intra + 40 AS path = 52.
	if d := n.Latency(h1, h3); d != 52 {
		t.Fatalf("inter-AS latency = %v, want 52", d)
	}
	if rtt := n.RTT(h1, h3); rtt != 104 {
		t.Fatalf("rtt = %v, want 104", rtt)
	}
}

func TestSendAccountsTrafficAndLinks(t *testing.T) {
	n, as := hierarchy()
	h1 := n.AddHost(as[2], 5)
	h2 := n.AddHost(as[2], 5)
	h3 := n.AddHost(as[4], 5)

	n.Send(h1, h2, 1000) // intra
	n.Send(h1, h3, 500)  // L0→T0→T1→L2

	if n.Traffic.Intra() != 1000 || n.Traffic.Inter() != 500 {
		t.Fatalf("traffic intra/inter = %d/%d", n.Traffic.Intra(), n.Traffic.Inter())
	}
	// The L0–T0 transit link must have carried the 500 bytes uphill.
	var carried uint64
	for _, l := range n.Links() {
		if l.Kind == Transit && (l.A.ID == as[2].ID || l.B.ID == as[2].ID) {
			carried += l.Bytes()
		}
	}
	if carried != 500 {
		t.Fatalf("transit link carried %d, want 500", carried)
	}
	// Peering link T0–T1 carried it too.
	for _, l := range n.Links() {
		if l.Kind == Peering && l.A.Kind == TransitISP {
			if l.Bytes() != 500 {
				t.Fatalf("T0-T1 peering carried %d, want 500", l.Bytes())
			}
		}
	}
}

func TestAsymmetricDelays(t *testing.T) {
	n := New()
	t0 := n.AddAS(TransitISP, 0)
	l0 := n.AddAS(LocalISP, 0)
	n.ConnectTransitAsym(l0, t0, 10, 50)
	a := n.AddHost(l0, 0)
	b := n.AddHost(t0, 0)
	up := n.Latency(a, b)
	down := n.Latency(b, a)
	if up != 10 || down != 50 {
		t.Fatalf("up/down = %v/%v, want 10/50", up, down)
	}
	if n.RTT(a, b) != 60 || n.RTT(b, a) != 60 {
		t.Fatal("RTT must be direction-independent sum")
	}
}

func TestHostsInASAndAccessors(t *testing.T) {
	n, as := hierarchy()
	n.AddHost(as[2], 1)
	n.AddHost(as[3], 1)
	n.AddHost(as[2], 1)
	got := n.HostsInAS(as[2].ID)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 2 {
		t.Fatalf("HostsInAS = %v", got)
	}
	if n.NumHosts() != 3 || n.NumASes() != 6 {
		t.Fatalf("counts = %d hosts, %d ases", n.NumHosts(), n.NumASes())
	}
	if n.Host(1).AS.ID != as[3].ID {
		t.Fatal("Host accessor wrong")
	}
	if n.AS(0).Kind != TransitISP {
		t.Fatal("AS accessor wrong")
	}
	if as[0].Kind.String() != "transit" || as[2].Kind.String() != "local" {
		t.Fatal("ASKind.String wrong")
	}
}

func TestTopologyChangeInvalidatesRoutes(t *testing.T) {
	n := New()
	a := n.AddAS(LocalISP, 0)
	b := n.AddAS(LocalISP, 0)
	if n.Reachable(a.ID, b.ID) {
		t.Fatal("disconnected ASes should be unreachable")
	}
	n.ConnectPeering(a, b, 1)
	if !n.Reachable(a.ID, b.ID) {
		t.Fatal("adding a link must invalidate cached routes")
	}
}

// buildRandomHierarchy constructs a random transit-stub network that is
// always connected under valley-free routing: one transit core clique,
// every stub gets a provider in the core.
func buildRandomHierarchy(seedTransit, seedStubs []uint8) *Network {
	n := New()
	nT := int(len(seedTransit)%3) + 1
	var transits []*AS
	for i := 0; i < nT; i++ {
		transits = append(transits, n.AddAS(TransitISP, 1))
	}
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			n.ConnectPeering(transits[i], transits[j], sim.Duration(5+i+j))
		}
	}
	for i, s := range seedStubs {
		stub := n.AddAS(LocalISP, 1)
		prov := transits[int(s)%nT]
		n.ConnectTransit(stub, prov, sim.Duration(1+i%7))
	}
	return n
}

// Property: in a transit-stub hierarchy every AS pair is reachable, paths
// are valley-free by construction, and hop counts are symmetric when all
// links are symmetric.
func TestQuickHierarchyReachabilityAndSymmetry(t *testing.T) {
	f := func(seedTransit, seedStubs []uint8) bool {
		if len(seedStubs) > 40 {
			seedStubs = seedStubs[:40]
		}
		n := buildRandomHierarchy(seedTransit, seedStubs)
		for i := 0; i < n.NumASes(); i++ {
			for j := 0; j < n.NumASes(); j++ {
				if !n.Reachable(i, j) {
					return false
				}
				if n.ASHops(i, j) != n.ASHops(j, i) {
					return false
				}
				if n.ASDelay(i, j) != n.ASDelay(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a routed AS path never contains a repeated AS (loop-freedom).
func TestQuickLoopFreedom(t *testing.T) {
	f := func(seedTransit, seedStubs []uint8) bool {
		if len(seedStubs) > 30 {
			seedStubs = seedStubs[:30]
		}
		n := buildRandomHierarchy(seedTransit, seedStubs)
		for i := 0; i < n.NumASes(); i++ {
			for j := 0; j < n.NumASes(); j++ {
				p := n.ASPath(i, j)
				seen := map[int]bool{}
				for _, as := range p {
					if seen[as] {
						return false
					}
					seen[as] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
