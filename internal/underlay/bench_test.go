package underlay

import (
	"testing"

	"unap2p/internal/sim"
)

// benchNet builds a 3-transit / 40-stub hierarchy.
func benchNet() *Network {
	n := New()
	var transits []*AS
	for i := 0; i < 3; i++ {
		transits = append(transits, n.AddAS(TransitISP, 3))
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			n.ConnectPeering(transits[i], transits[j], 10)
		}
	}
	for i := 0; i < 40; i++ {
		s := n.AddAS(LocalISP, 2)
		n.ConnectTransit(s, transits[i%3], sim.Duration(10+i%7))
		n.AddHost(s, 3)
	}
	return n
}

// BenchmarkComputeRoutes measures the parallel valley-free APSP.
func BenchmarkComputeRoutes(b *testing.B) {
	n := benchNet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ComputeRoutes()
	}
}

// BenchmarkLatencyQuery measures a host-to-host latency lookup on warm
// routing tables — the inner loop of every overlay message.
func BenchmarkLatencyQuery(b *testing.B) {
	n := benchNet()
	hosts := n.Hosts()
	n.ComputeRoutes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Latency(hosts[i%len(hosts)], hosts[(i*7+1)%len(hosts)])
	}
}

// BenchmarkSend measures traffic accounting along a routed path.
func BenchmarkSend(b *testing.B) {
	n := benchNet()
	hosts := n.Hosts()
	n.ComputeRoutes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(hosts[i%len(hosts)], hosts[(i*11+3)%len(hosts)], 1000)
	}
}
