package underlay

import (
	"testing"
)

// TestMultihomedStubUsesShorterProvider verifies BGP-ish path choice: a
// stub with two providers routes each destination over the provider that
// yields the shorter AS path (tie-broken by delay).
func TestMultihomedStubUsesShorterProvider(t *testing.T) {
	n := New()
	t0 := n.AddAS(TransitISP, 1)
	t1 := n.AddAS(TransitISP, 1)
	n.ConnectPeering(t0, t1, 50)
	s := n.AddAS(LocalISP, 1) // multihomed
	n.ConnectTransit(s, t0, 10)
	n.ConnectTransit(s, t1, 40)
	d0 := n.AddAS(LocalISP, 1) // customer of t0
	d1 := n.AddAS(LocalISP, 1) // customer of t1
	n.ConnectTransit(d0, t0, 5)
	n.ConnectTransit(d1, t1, 5)

	// s→d0 must go via t0, s→d1 via t1 (both 2 hops; never 3 via the
	// transit peering).
	if p := n.ASPath(s.ID, d0.ID); len(p) != 3 || p[1] != t0.ID {
		t.Fatalf("s→d0 path %v, want via t0", p)
	}
	if p := n.ASPath(s.ID, d1.ID); len(p) != 3 || p[1] != t1.ID {
		t.Fatalf("s→d1 path %v, want via t1", p)
	}
}

// TestParallelLinksPickFaster verifies that when two links join the same
// AS pair, traffic accounting charges the lower-delay one (the one
// routing uses).
func TestParallelLinksPickFaster(t *testing.T) {
	n := New()
	a := n.AddAS(LocalISP, 1)
	b := n.AddAS(LocalISP, 1)
	slow := n.ConnectPeering(a, b, 50)
	fast := n.ConnectPeering(a, b, 5)
	ha := n.AddHost(a, 0)
	hb := n.AddHost(b, 0)
	n.Send(ha, hb, 1000)
	if fast.Bytes() != 1000 || slow.Bytes() != 0 {
		t.Fatalf("bytes fast=%d slow=%d; should use the faster link", fast.Bytes(), slow.Bytes())
	}
	if d := n.ASDelay(a.ID, b.ID); d != 5 {
		t.Fatalf("delay = %v, want 5", d)
	}
}

// TestLinkCarryDirections verifies per-direction byte accounting.
func TestLinkCarryDirections(t *testing.T) {
	n := New()
	a := n.AddAS(LocalISP, 0)
	b := n.AddAS(TransitISP, 0)
	l := n.ConnectTransit(a, b, 10)
	ha := n.AddHost(a, 0)
	hb := n.AddHost(b, 0)
	n.Send(ha, hb, 100)
	n.Send(hb, ha, 40)
	if l.BytesAB != 100 || l.BytesBA != 40 {
		t.Fatalf("AB=%d BA=%d", l.BytesAB, l.BytesBA)
	}
	if l.Delay(a.ID) != 10 || l.Delay(b.ID) != 10 {
		t.Fatal("Delay accessor wrong")
	}
	if l.Other(a.ID) != b || l.Other(b.ID) != a {
		t.Fatal("Other accessor wrong")
	}
}

// TestLatencyPanicsOnUnreachable documents the configuration-error panic.
func TestLatencyPanicsOnUnreachable(t *testing.T) {
	n := New()
	a := n.AddAS(LocalISP, 0)
	b := n.AddAS(LocalISP, 0)
	ha := n.AddHost(a, 0)
	hb := n.AddHost(b, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Latency(ha, hb)
}

// TestValleyFreeMultihomedNoTransitLeak: a multihomed stub must never
// provide transit between its two providers.
func TestValleyFreeMultihomedNoTransitLeak(t *testing.T) {
	n := New()
	t0 := n.AddAS(TransitISP, 1)
	t1 := n.AddAS(TransitISP, 1)
	s := n.AddAS(LocalISP, 1)
	n.ConnectTransit(s, t0, 5)
	n.ConnectTransit(s, t1, 5)
	// Without a transit-core link, t0 and t1 can only talk through s —
	// which valley-free forbids (customer does not transit providers).
	if n.Reachable(t0.ID, t1.ID) {
		t.Fatalf("customer leaked transit between its providers: %v", n.ASPath(t0.ID, t1.ID))
	}
}
