package underlay

import (
	"testing"

	"unap2p/internal/sim"
)

// buildStar returns a small transit+stubs topology: one transit AS
// peering nothing, three stubs buying transit from it.
func buildStar(t *testing.T) *Network {
	t.Helper()
	n := New()
	transit := n.AddAS(TransitISP, 2)
	for i := 0; i < 3; i++ {
		stub := n.AddAS(LocalISP, 4)
		n.ConnectTransit(stub, transit, sim.Duration(10+i))
	}
	n.ComputeRoutes()
	return n
}

func TestPeerTableLatencyMatchesHosts(t *testing.T) {
	n := buildStar(t)
	pt := NewPeerTable(n, 8)
	var hosts []*Host
	var peers []PeerID
	for i, as := range []int{1, 1, 2, 3} {
		acc := sim.Duration(5 + i)
		hosts = append(hosts, n.AddHost(n.AS(as), acc))
		peers = append(peers, pt.AddPeer(as, acc))
	}
	for i := range peers {
		for j := range peers {
			got := pt.Latency(peers[i], peers[j])
			want := n.Latency(hosts[i], hosts[j])
			if i == j {
				want = 0
			}
			if got != want {
				t.Fatalf("Latency(%d,%d) = %v, host formula %v", i, j, got, want)
			}
		}
	}
	if pt.Len() != 4 || pt.AS(peers[2]) != 2 || pt.Access(peers[3]) != 8 {
		t.Fatal("accessor mismatch")
	}
	if !pt.Up(peers[0]) {
		t.Fatal("new peer should be up")
	}
	pt.SetUp(peers[0], false)
	if pt.Up(peers[0]) || pt.UpCount() != 3 {
		t.Fatal("SetUp/UpCount mismatch")
	}
}

func TestPartitionASesBalanced(t *testing.T) {
	weights := []int{100, 1, 1, 1, 97, 1, 1, 1}
	part := PartitionASes(len(weights), func(as int) int { return weights[as] }, 2)
	load := [2]int{}
	for as, w := range weights {
		load[part.ShardOfAS(as)] += w
	}
	// LPT puts the two heavy ASes on different shards.
	if part.ShardOfAS(0) == part.ShardOfAS(4) {
		t.Fatalf("heavy ASes share shard: loads %v", load)
	}
	if diff := load[0] - load[1]; diff < -10 || diff > 10 {
		t.Fatalf("unbalanced: %v", load)
	}
	// Deterministic: same inputs, same mapping.
	again := PartitionASes(len(weights), func(as int) int { return weights[as] }, 2)
	for as := range weights {
		if part.ShardOfAS(as) != again.ShardOfAS(as) {
			t.Fatal("partition not deterministic")
		}
	}
	// K=1 trivially maps everything to shard 0.
	one := PartitionASes(len(weights), func(as int) int { return weights[as] }, 1)
	for as := range weights {
		if one.ShardOfAS(as) != 0 {
			t.Fatal("K=1 partition not all-zero")
		}
	}
}

func TestMinCrossShardLatency(t *testing.T) {
	n := buildStar(t)
	pt := NewPeerTable(n, 8)
	// Stub ASes 1..3 get peers; transit AS 0 has none.
	pt.AddPeer(1, 5)
	pt.AddPeer(1, 3) // cheapest access in AS1
	pt.AddPeer(2, 7)
	pt.AddPeer(3, 9)
	part := PartitionASes(n.NumASes(), func(as int) int { return pt.PeersPerAS()[int32(as)] }, 2)

	got := MinCrossShardLatency(pt, part)
	if got <= 0 {
		t.Fatalf("MinCrossShardLatency = %v, want > 0", got)
	}
	// Brute force over peer pairs must never beat the bound.
	for a := 0; a < pt.Len(); a++ {
		for b := 0; b < pt.Len(); b++ {
			pa, pb := PeerID(a), PeerID(b)
			if pa == pb || part.ShardOf(pt, pa) == part.ShardOf(pt, pb) {
				continue
			}
			if lat := pt.Latency(pa, pb); lat < got {
				t.Fatalf("pair (%d,%d) latency %v below bound %v", a, b, lat, got)
			}
		}
	}
	// Single shard: no crossing pairs, bound degenerates to 0.
	if one := MinCrossShardLatency(pt, PartitionASes(n.NumASes(), func(int) int { return 1 }, 1)); one != 0 {
		t.Fatalf("K=1 bound = %v, want 0", one)
	}
}

// TestPartitionASesClamped pins the shard-count clamp: the request is a
// hint bounded by the AS count (an AS is the smallest ownership unit)
// and floored at one shard.
func TestPartitionASesClamped(t *testing.T) {
	weights := []int{3, 2, 1}
	// More shards than ASes: clamp to one shard per AS, every shard used.
	over := PartitionASes(len(weights), func(as int) int { return weights[as] }, 16)
	if over.NumShards() != len(weights) {
		t.Fatalf("shards > ASes: NumShards %d, want %d", over.NumShards(), len(weights))
	}
	used := map[int]bool{}
	for as := range weights {
		used[over.ShardOfAS(as)] = true
	}
	if len(used) != len(weights) {
		t.Fatalf("clamped partition left empty shards: %v", used)
	}
	// Non-positive request degenerates to a single shard, not a panic.
	for _, k := range []int{0, -3} {
		p := PartitionASes(len(weights), func(as int) int { return weights[as] }, k)
		if p.NumShards() != 1 || p.ShardOfAS(2) != 0 {
			t.Fatalf("K=%d: want single-shard fallback, got %d shards", k, p.NumShards())
		}
	}
	// Single AS: everything collapses onto one shard regardless of request.
	single := PartitionASes(1, func(int) int { return 42 }, 8)
	if single.NumShards() != 1 || single.ShardOfAS(0) != 0 {
		t.Fatalf("single AS: want 1 shard, got %d", single.NumShards())
	}
	// Zero ASes (empty network): no panic, request floors at 1.
	empty := PartitionASes(0, func(int) int { return 0 }, 4)
	if empty.NumShards() < 1 {
		t.Fatalf("empty network: NumShards %d", empty.NumShards())
	}
}

// TestMinCrossShardLatencyDegenerate pins the documented 0-fallbacks: an
// empty peer table and a single populated AS have no crossing pairs.
func TestMinCrossShardLatencyDegenerate(t *testing.T) {
	n := buildStar(t)
	// Empty table: nothing can cross.
	empty := NewPeerTable(n, 0)
	part := PartitionASes(n.NumASes(), func(int) int { return 1 }, 2)
	if got := MinCrossShardLatency(empty, part); got != 0 {
		t.Fatalf("empty table bound = %v, want 0", got)
	}
	// Peers in a single AS: the AS is one ownership unit, so even a
	// multi-shard partition of the network yields no crossing peers.
	one := NewPeerTable(n, 4)
	one.AddPeer(1, 5)
	one.AddPeer(1, 6)
	if got := MinCrossShardLatency(one, part); got != 0 {
		t.Fatalf("single-AS bound = %v, want 0", got)
	}
}
