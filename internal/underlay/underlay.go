// Package underlay simulates the physical network beneath a P2P overlay at
// the Autonomous System level: local and transit ISPs (Figure 1 of the
// paper), customer/provider and peering links, valley-free inter-domain
// routing, end-host access links, end-to-end latency, and per-link /
// per-AS-pair traffic accounting.
//
// The underlay is the substrate "on which the overlay resides" (§2); every
// overlay implementation in unap2p sends its messages through a Network so
// that locality, latency, and cost effects are measured rather than assumed.
package underlay

import (
	"fmt"

	"unap2p/internal/metrics"
	"unap2p/internal/sim"
)

// ASKind distinguishes the two ISP roles of Figure 1.
type ASKind int

const (
	// LocalISP provides connectivity in a limited area (stub AS).
	LocalISP ASKind = iota
	// TransitISP acts on a global plane and supplies connectivity between
	// local ISPs.
	TransitISP
)

func (k ASKind) String() string {
	switch k {
	case LocalISP:
		return "local"
	case TransitISP:
		return "transit"
	default:
		return fmt.Sprintf("ASKind(%d)", int(k))
	}
}

// AS is an autonomous system / ISP.
type AS struct {
	ID   int
	Kind ASKind
	Name string
	// IntraDelay is the one-way delay between two hosts inside this AS,
	// excluding their access links.
	IntraDelay sim.Duration
	links      []*Link
}

// Links returns the inter-AS links attached to this AS.
func (a *AS) Links() []*Link { return a.links }

// LinkKind distinguishes paid transit links from settlement-free peering.
type LinkKind int

const (
	// Transit is a customer→provider link: the customer pays per Mbps
	// (95th percentile) for traffic in either direction.
	Transit LinkKind = iota
	// Peering is a settlement-free link between ISPs: flat maintenance
	// cost, no per-traffic charge.
	Peering
)

func (k LinkKind) String() string {
	if k == Peering {
		return "peering"
	}
	return "transit"
}

// Link is an inter-AS adjacency. For Transit links A is the customer and B
// the provider; for Peering links the roles are symmetric.
type Link struct {
	A, B *AS
	Kind LinkKind
	// DelayAB and DelayBA are the one-way delays in each direction;
	// asymmetric values model the asymmetric-path problem of §6.
	DelayAB, DelayBA sim.Duration
	// BytesAB and BytesBA account traffic carried in each direction.
	BytesAB, BytesBA uint64
}

// Delay returns the one-way delay from AS from to the opposite end.
func (l *Link) Delay(from int) sim.Duration {
	if from == l.A.ID {
		return l.DelayAB
	}
	return l.DelayBA
}

// Other returns the AS at the opposite end from id.
func (l *Link) Other(id int) *AS {
	if id == l.A.ID {
		return l.B
	}
	return l.A
}

// Carry accounts n bytes flowing out of AS from over this link.
func (l *Link) Carry(from int, n uint64) {
	if from == l.A.ID {
		l.BytesAB += n
	} else {
		l.BytesBA += n
	}
}

// Bytes returns the total bytes carried in both directions.
func (l *Link) Bytes() uint64 { return l.BytesAB + l.BytesBA }

// HostID identifies a host within a Network.
type HostID int

// Host is an end system attached to an AS.
type Host struct {
	ID HostID
	AS *AS
	// AccessDelay is the one-way last-mile delay of this host.
	AccessDelay sim.Duration
	// IP is the host's address, allocated from its AS's prefix by the
	// ipmap package.
	IP uint32
	// Lat, Lon is the ground-truth geolocation in degrees.
	Lat, Lon float64
	// Up reports whether the host is currently online (churn models flip
	// this).
	Up bool
}

// RoutingPolicy selects how inter-AS paths are computed.
type RoutingPolicy int

const (
	// ValleyFree routes follow Gao–Rexford export rules: zero or more
	// customer→provider hops, at most one peering hop, then zero or more
	// provider→customer hops; shortest such path by (hops, delay).
	ValleyFree RoutingPolicy = iota
	// ShortestDelay ignores economics and uses minimum-delay paths.
	ShortestDelay
)

// Network is the simulated underlay.
type Network struct {
	Policy RoutingPolicy

	ases  []*AS
	links []*Link
	hosts []*Host

	// Traffic accumulates the AS-pair traffic matrix for every Send.
	Traffic *metrics.TrafficMatrix

	routes *routeTable // computed lazily, invalidated on topology change
}

// New returns an empty network with valley-free routing.
func New() *Network {
	return &Network{Traffic: metrics.NewTrafficMatrix()}
}

// AddAS creates an AS. IDs are dense and assigned in creation order.
func (n *Network) AddAS(kind ASKind, intraDelay sim.Duration) *AS {
	a := &AS{ID: len(n.ases), Kind: kind, IntraDelay: intraDelay,
		Name: fmt.Sprintf("AS%d", len(n.ases))}
	n.ases = append(n.ases, a)
	n.routes = nil
	return a
}

// ASes returns all ASes in ID order.
func (n *Network) ASes() []*AS { return n.ases }

// AS returns the AS with the given id.
func (n *Network) AS(id int) *AS { return n.ases[id] }

// NumASes reports the number of ASes.
func (n *Network) NumASes() int { return len(n.ases) }

// Links returns all inter-AS links.
func (n *Network) Links() []*Link { return n.links }

func (n *Network) addLink(l *Link) *Link {
	n.links = append(n.links, l)
	l.A.links = append(l.A.links, l)
	l.B.links = append(l.B.links, l)
	n.routes = nil
	return l
}

// ConnectTransit links customer to provider with symmetric delay.
func (n *Network) ConnectTransit(customer, provider *AS, delay sim.Duration) *Link {
	return n.addLink(&Link{A: customer, B: provider, Kind: Transit,
		DelayAB: delay, DelayBA: delay})
}

// ConnectPeering links two ASes as settlement-free peers.
func (n *Network) ConnectPeering(a, b *AS, delay sim.Duration) *Link {
	return n.addLink(&Link{A: a, B: b, Kind: Peering,
		DelayAB: delay, DelayBA: delay})
}

// ConnectTransitAsym links customer to provider with per-direction delays,
// for asymmetric-path experiments (§6).
func (n *Network) ConnectTransitAsym(customer, provider *AS, up, down sim.Duration) *Link {
	return n.addLink(&Link{A: customer, B: provider, Kind: Transit,
		DelayAB: up, DelayBA: down})
}

// AddHost attaches a host to an AS.
func (n *Network) AddHost(a *AS, accessDelay sim.Duration) *Host {
	h := &Host{ID: HostID(len(n.hosts)), AS: a, AccessDelay: accessDelay, Up: true}
	n.hosts = append(n.hosts, h)
	return h
}

// Hosts returns all hosts in ID order.
func (n *Network) Hosts() []*Host { return n.hosts }

// Host returns the host with the given id.
func (n *Network) Host(id HostID) *Host { return n.hosts[id] }

// NumHosts reports the number of hosts.
func (n *Network) NumHosts() int { return len(n.hosts) }

// HostsInAS returns the hosts attached to AS id, in host-ID order.
func (n *Network) HostsInAS(id int) []*Host {
	var out []*Host
	for _, h := range n.hosts {
		if h.AS.ID == id {
			out = append(out, h)
		}
	}
	return out
}
