package underlay

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"

	"unap2p/internal/sim"
)

// route is one computed inter-AS path.
type route struct {
	path  []int // AS ids, src first, dst last; nil if unreachable
	delay sim.Duration
	hops  int // len(path)-1
}

type routeTable struct {
	n      int
	routes [][]route // [src][dst]
}

// ComputeRoutes builds the full AS-path table under the current policy.
// Sources are processed in parallel across GOMAXPROCS workers; the result
// is deterministic because each source's computation is independent.
func (n *Network) ComputeRoutes() {
	nAS := len(n.ases)
	rt := &routeTable{n: nAS, routes: make([][]route, nAS)}
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > nAS {
		workers = nAS
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for src := range next {
				rt.routes[src] = n.routesFrom(src)
			}
		}()
	}
	for src := 0; src < nAS; src++ {
		next <- src
	}
	close(next)
	wg.Wait()
	n.routes = rt
}

func (n *Network) ensureRoutes() *routeTable {
	if n.routes == nil || n.routes.n != len(n.ases) {
		n.ComputeRoutes()
	}
	return n.routes
}

// pqItem is a priority-queue entry for the layered Dijkstra. prio1/prio2
// encode the lexicographic cost under the active policy (hops,delay) for
// ValleyFree or (delay,hops) for ShortestDelay.
type pqItem struct {
	as           int
	phase        int // 0 = uphill still allowed, 1 = downhill only
	hops         int
	delay        sim.Duration
	prio1, prio2 float64
	idx          int
}

type pq []*pqItem

func (p pq) Len() int { return len(p) }
func (p pq) Less(i, j int) bool {
	if p[i].prio1 != p[j].prio1 {
		return p[i].prio1 < p[j].prio1
	}
	if p[i].prio2 != p[j].prio2 {
		return p[i].prio2 < p[j].prio2
	}
	// Final deterministic tie-break on (as, phase).
	if p[i].as != p[j].as {
		return p[i].as < p[j].as
	}
	return p[i].phase < p[j].phase
}
func (p pq) Swap(i, j int) {
	p[i], p[j] = p[j], p[i]
	p[i].idx = i
	p[j].idx = j
}
func (p *pq) Push(x any) {
	it := x.(*pqItem)
	it.idx = len(*p)
	*p = append(*p, it)
}
func (p *pq) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*p = old[:n-1]
	return it
}

// routesFrom computes routes from src to every AS.
//
// Under ValleyFree it runs Dijkstra on the layered graph of (AS, phase)
// states encoding the Gao–Rexford rule: a valley-free path is zero or more
// customer→provider (uphill) hops, at most one peering hop, then zero or
// more provider→customer (downhill) hops. Cost is lexicographic
// (AS hops, delay), matching BGP's shortest-AS-path preference with a
// latency tie-break.
//
// Under ShortestDelay it is plain Dijkstra on delay.
func (n *Network) routesFrom(src int) []route {
	nAS := len(n.ases)
	const phases = 2
	type state struct {
		hops  int
		delay sim.Duration
		// prev state for path reconstruction
		prevAS, prevPhase int
		visited           bool
		reached           bool
	}
	st := make([][phases]state, nAS)
	better := func(h1 int, d1 sim.Duration, h2 int, d2 sim.Duration) bool {
		if n.Policy == ShortestDelay {
			if d1 != d2 {
				return d1 < d2
			}
			return h1 < h2
		}
		if h1 != h2 {
			return h1 < h2
		}
		return d1 < d2
	}

	var q pq
	push := func(as, phase, hops int, delay sim.Duration, prevAS, prevPhase int) {
		s := &st[as][phase]
		if s.reached && !better(hops, delay, s.hops, s.delay) {
			return
		}
		s.hops, s.delay, s.prevAS, s.prevPhase, s.reached = hops, delay, prevAS, prevPhase, true
		it := &pqItem{as: as, phase: phase, hops: hops, delay: delay}
		if n.Policy == ShortestDelay {
			it.prio1, it.prio2 = float64(delay), float64(hops)
		} else {
			it.prio1, it.prio2 = float64(hops), float64(delay)
		}
		heap.Push(&q, it)
	}
	push(src, 0, 0, 0, -1, -1)

	for q.Len() > 0 {
		it := heap.Pop(&q).(*pqItem)
		s := &st[it.as][it.phase]
		if s.visited || better(s.hops, s.delay, it.hops, it.delay) {
			continue // stale entry
		}
		s.visited = true
		u := n.ases[it.as]
		for _, l := range u.links {
			v := l.Other(it.as)
			d := it.delay + l.Delay(it.as)
			h := it.hops + 1
			if n.Policy == ShortestDelay {
				// Single phase, all edges usable.
				push(v.ID, 0, h, d, it.as, 0)
				continue
			}
			switch {
			case l.Kind == Transit && l.A.ID == it.as:
				// uphill: customer → provider, only while in phase 0
				if it.phase == 0 {
					push(v.ID, 0, h, d, it.as, it.phase)
				}
			case l.Kind == Peering:
				// one peering hop flips to downhill-only
				if it.phase == 0 {
					push(v.ID, 1, h, d, it.as, it.phase)
				}
			case l.Kind == Transit && l.B.ID == it.as:
				// downhill: provider → customer, allowed from any phase
				push(v.ID, 1, h, d, it.as, it.phase)
			}
		}
	}

	out := make([]route, nAS)
	for dst := 0; dst < nAS; dst++ {
		// Best phase at dst.
		bestPhase := -1
		for ph := 0; ph < phases; ph++ {
			if !st[dst][ph].reached {
				continue
			}
			if bestPhase < 0 || better(st[dst][ph].hops, st[dst][ph].delay,
				st[dst][bestPhase].hops, st[dst][bestPhase].delay) {
				bestPhase = ph
			}
		}
		if bestPhase < 0 {
			continue // unreachable
		}
		s := st[dst][bestPhase]
		path := make([]int, 0, s.hops+1)
		as, ph := dst, bestPhase
		for as != -1 {
			path = append(path, as)
			as, ph = st[as][ph].prevAS, st[as][ph].prevPhase
		}
		// reverse
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		out[dst] = route{path: path, delay: s.delay, hops: s.hops}
	}
	return out
}

// ASPath returns the AS-level path from src to dst (both inclusive), or
// nil if dst is unreachable under the routing policy.
func (n *Network) ASPath(src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	return n.ensureRoutes().routes[src][dst].path
}

// ASHops returns the number of inter-AS hops between two ASes (0 if same
// AS, -1 if unreachable). This is the "AS hops distance" metric the oracle
// ranks by.
func (n *Network) ASHops(src, dst int) int {
	if src == dst {
		return 0
	}
	r := n.ensureRoutes().routes[src][dst]
	if r.path == nil {
		return -1
	}
	return r.hops
}

// ASDelay returns the one-way delay between two ASes over the routed path
// (excluding intra-AS and access components), or -1 if unreachable.
func (n *Network) ASDelay(src, dst int) sim.Duration {
	if src == dst {
		return 0
	}
	r := n.ensureRoutes().routes[src][dst]
	if r.path == nil {
		return -1
	}
	return r.delay
}

// Reachable reports whether dst is reachable from src under the policy.
func (n *Network) Reachable(src, dst int) bool {
	return src == dst || n.ensureRoutes().routes[src][dst].path != nil
}

// Latency returns the one-way host-to-host delay: access links at both
// ends, intra-AS delay when the ASes coincide, or the routed inter-AS
// delay plus each endpoint AS's internal delay otherwise. It panics if the
// hosts are in mutually unreachable ASes — a configuration error.
func (n *Network) Latency(a, b *Host) sim.Duration {
	if a.ID == b.ID {
		return 0
	}
	base := a.AccessDelay + b.AccessDelay
	if a.AS.ID == b.AS.ID {
		return base + a.AS.IntraDelay
	}
	d := n.ASDelay(a.AS.ID, b.AS.ID)
	if d < 0 {
		panic(fmt.Sprintf("underlay: host %d (AS%d) cannot reach host %d (AS%d)",
			a.ID, a.AS.ID, b.ID, b.AS.ID))
	}
	return base + a.AS.IntraDelay/2 + d + b.AS.IntraDelay/2
}

// RTT returns the round-trip time between two hosts. With asymmetric link
// delays the two directions differ; RTT sums them.
func (n *Network) RTT(a, b *Host) sim.Duration {
	return n.Latency(a, b) + n.Latency(b, a)
}

// Send accounts n bytes of traffic from host a to host b: every inter-AS
// link on the path carries the bytes, and the AS-pair traffic matrix is
// updated. It returns the one-way latency so callers can schedule message
// delivery.
func (n *Network) Send(a, b *Host, bytes uint64) sim.Duration {
	n.Traffic.Add(a.AS.ID, b.AS.ID, bytes)
	if a.AS.ID != b.AS.ID {
		path := n.ASPath(a.AS.ID, b.AS.ID)
		if path == nil {
			panic(fmt.Sprintf("underlay: no route AS%d→AS%d", a.AS.ID, b.AS.ID))
		}
		for i := 0; i+1 < len(path); i++ {
			l := n.linkBetween(path[i], path[i+1])
			l.Carry(path[i], bytes)
		}
	}
	return n.Latency(a, b)
}

// linkBetween returns the link joining two adjacent ASes on a routed path.
func (n *Network) linkBetween(a, b int) *Link {
	var best *Link
	for _, l := range n.ases[a].links {
		if l.Other(a).ID == b {
			if best == nil || l.Delay(a) < best.Delay(a) {
				best = l
			}
		}
	}
	if best == nil {
		panic(fmt.Sprintf("underlay: no link AS%d-AS%d", a, b))
	}
	return best
}
