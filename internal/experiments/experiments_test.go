package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// testCfg keeps experiment tests quick but statistically meaningful.
func testCfg() RunConfig { return RunConfig{Seed: 1, Scale: 0.5} }

// cell parses a numeric table cell ("25.06%", "1219.0", "42").
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	// Strip trailing annotations like "12/80 (15.00)".
	if i := strings.Index(s, " "); i > 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", s, err)
	}
	return v
}

func mustRun(t *testing.T, id string, cfg RunConfig) Result {
	t.Helper()
	r, err := Run(id, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != id || len(r.Rows) == 0 || len(r.Headers) == 0 {
		t.Fatalf("experiment %s returned empty result", id)
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Headers) {
			t.Fatalf("%s: row width %d != headers %d", id, len(row), len(r.Headers))
		}
	}
	if r.Render() == "" {
		t.Fatalf("%s: empty render", id)
	}
	return r
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 12 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range ids {
		if TitleOf(id) == "" {
			t.Fatalf("experiment %s has no title", id)
		}
	}
	if _, err := Run("no-such-exp", DefaultRunConfig()); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestFig1Hierarchy(t *testing.T) {
	r := mustRun(t, "fig1-hierarchy", testCfg())
	// The peering flow must be settlement-free; the cross flow must cross
	// the transit core with both locals paying.
	if !strings.Contains(r.Rows[0][3], "settlement-free") {
		t.Fatalf("peered flow payer = %q", r.Rows[0][3])
	}
	if !strings.Contains(r.Rows[1][2], "transit,peering,transit") {
		t.Fatalf("cross flow kinds = %q", r.Rows[1][2])
	}
}

func TestFig2CostShapes(t *testing.T) {
	r := mustRun(t, "fig2-costs", testCfg())
	for i := 1; i < len(r.Rows); i++ {
		if cell(t, r.Rows[i][1]) <= cell(t, r.Rows[i-1][1]) {
			t.Fatal("transit total must rise")
		}
		if cell(t, r.Rows[i][2]) != cell(t, r.Rows[i-1][2]) {
			t.Fatal("transit per-Mbps must be flat")
		}
		if cell(t, r.Rows[i][4]) >= cell(t, r.Rows[i-1][4]) {
			t.Fatal("peering per-Mbps must fall")
		}
	}
	// Crossover note present.
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "crossover") {
			found = true
		}
	}
	if !found {
		t.Fatal("no crossover note")
	}
}

func TestFig3TaxonomyComplete(t *testing.T) {
	r := mustRun(t, "fig3-taxonomy", testCfg())
	if len(r.Rows) < 8 {
		t.Fatalf("only %d estimator rows", len(r.Rows))
	}
	for _, n := range r.Notes {
		if strings.Contains(n, "8/8") {
			return
		}
	}
	t.Fatal("taxonomy coverage incomplete")
}

func TestFig4ICSMatchesPublished(t *testing.T) {
	r := mustRun(t, "fig4-ics", testCfg())
	byName := map[string][2]string{}
	for _, row := range r.Rows {
		byName[row[0]] = [2]string{row[1], row[2]}
	}
	if byName["α (n=2)"][0] != "0.60" {
		t.Fatalf("alpha = %q", byName["α (n=2)"][0])
	}
	if byName["α (n=4)"][0] != "0.5927" {
		t.Fatalf("alpha4 = %q", byName["α (n=4)"][0])
	}
	if byName["L2(c̄1,c̄2) (n=4)"][0] != "0.8383" {
		t.Fatalf("l12 = %q", byName["L2(c̄1,c̄2) (n=4)"][0])
	}
	if byName["host A coordinate"][0] != "[-3.00, 1.80]" {
		t.Fatalf("xa = %q", byName["host A coordinate"][0])
	}
}

func TestFig5BiasedClustering(t *testing.T) {
	r := mustRun(t, "fig5-overlay-viz", testCfg())
	unb, bia := r.Rows[0], r.Rows[1]
	if cell(t, bia[1]) <= cell(t, unb[1]) {
		t.Fatal("biased intra-AS edge share must exceed unbiased")
	}
	if cell(t, unb[1]) > 10 {
		t.Fatalf("unbiased intra-AS share %s too high (paper: <5%%)", unb[1])
	}
	if cell(t, bia[4]) != 1 || cell(t, unb[4]) != 1 {
		t.Fatal("overlay must stay connected")
	}
	if cell(t, bia[2]) <= cell(t, unb[2]) {
		t.Fatal("biased modularity must exceed unbiased")
	}
}

func TestTab1MessageCountsDecrease(t *testing.T) {
	r := mustRun(t, "tab1-gnutella-msgs", testCfg())
	for _, row := range r.Rows {
		u, b100, b1000 := cell(t, row[1]), cell(t, row[2]), cell(t, row[3])
		if !(u > b100 && b100 > b1000) {
			t.Fatalf("%s counts not decreasing: %v %v %v", row[0], u, b100, b1000)
		}
	}
	// Pong ≫ Ping.
	var ping, pong float64
	for _, row := range r.Rows {
		if row[0] == "Ping" {
			ping = cell(t, row[1])
		}
		if row[0] == "Pong" {
			pong = cell(t, row[1])
		}
	}
	if pong <= ping {
		t.Fatal("Pong must exceed Ping")
	}
}

func TestIntraASGradient(t *testing.T) {
	r := mustRun(t, "exp-intra-as", testCfg())
	prev := -1.0
	for i, row := range r.Rows {
		v := cell(t, row[1])
		if v <= prev {
			t.Fatalf("row %d intra-AS %v not above previous %v", i, v, prev)
		}
		prev = v
	}
	// The file-exchange-stage row dwarfs the unbiased one (paper: 6.5 → 40.57).
	if cell(t, r.Rows[3][1]) < 2.5*cell(t, r.Rows[0][1]) {
		t.Fatalf("file-exchange stage %s not ≫ unbiased %s", r.Rows[3][1], r.Rows[0][1])
	}
	// Search success stays usable everywhere.
	for _, row := range r.Rows {
		if cell(t, row[3]) < 70 {
			t.Fatalf("search success %s collapsed", row[3])
		}
	}
}

func TestTestlabNoExtraFailures(t *testing.T) {
	r := mustRun(t, "exp-testlab", testCfg())
	// Rows come in (unbiased, oracle) pairs per topology×scheme.
	for i := 0; i+1 < len(r.Rows); i += 2 {
		unb, orc := r.Rows[i], r.Rows[i+1]
		if unb[0] != orc[0] || unb[1] != orc[1] {
			t.Fatalf("row pairing broken at %d", i)
		}
		if cell(t, orc[5]) > cell(t, unb[5]) {
			t.Fatalf("%s/%s: oracle added search failures (%s vs %s)",
				unb[0], unb[1], orc[5], unb[5])
		}
	}
}

func TestTab2ImpactWinners(t *testing.T) {
	r := mustRun(t, "tab2-impact", testCfg())
	rowBy := func(param string) []string {
		for _, row := range r.Rows {
			if row[1] == param {
				return row
			}
		}
		t.Fatalf("row %q missing", param)
		return nil
	}
	rank := map[string]int{"o": 0, "+": 1, "++": 2}
	// Columns: 2=ISP-location, 3=latency, 4=geolocation, 5=peer-resources.
	dl := rowBy("Download time")
	if rank[dl[5]] < rank[dl[3]] || rank[dl[5]] < rank[dl[4]] {
		t.Fatalf("resources should lead download time: %v", dl)
	}
	delay := rowBy("Delay")
	if rank[delay[3]] < rank[delay[2]] || rank[delay[3]] < rank[delay[4]] || rank[delay[3]] < rank[delay[5]] {
		t.Fatalf("latency should lead delay: %v", delay)
	}
	costs := rowBy("ISP Costs")
	if rank[costs[2]] < rank[costs[3]] || rank[costs[2]] < rank[costs[4]] || rank[costs[2]] < rank[costs[5]] {
		t.Fatalf("ISP-location should lead costs: %v", costs)
	}
	apps := rowBy("New application areas (derived)")
	if apps[4] != "++" {
		t.Fatalf("geolocation should lead new applications: %v", apps)
	}
}

func TestChallengesNonTrivial(t *testing.T) {
	r := mustRun(t, "exp-challenges", testCfg())
	// Both asymmetry rates strictly positive; inversions exist.
	if cell(t, strings.Split(r.Rows[0][2], "/")[0]) == 0 {
		t.Fatal("no measurement asymmetry found")
	}
	if cell(t, strings.Split(r.Rows[1][2], "/")[0]) == 0 {
		t.Fatal("no selection asymmetry found")
	}
	if cell(t, strings.Split(r.Rows[2][2], "/")[0]) == 0 {
		t.Fatal("no long-hop inversions found")
	}
}

func TestBNSSwarmShape(t *testing.T) {
	r := mustRun(t, "exp-bns-swarm", testCfg())
	unb, bia := r.Rows[0], r.Rows[1]
	if cell(t, bia[1]) >= cell(t, unb[1]) {
		t.Fatal("biased inter-AS traffic must drop")
	}
	if cell(t, bia[3]) > 2*cell(t, unb[3]) {
		t.Fatalf("biased completion %s too slow vs %s", bia[3], unb[3])
	}
	if cell(t, bia[5]) <= cell(t, unb[5]) {
		t.Fatal("biased neighbor locality must rise")
	}
}

func TestPNSKademliaShape(t *testing.T) {
	r := mustRun(t, "exp-pns-kademlia", testCfg())
	plain, pns := r.Rows[0], r.Rows[1]
	if cell(t, pns[2]) >= cell(t, plain[2]) {
		t.Fatal("PNS lookup latency must drop")
	}
	if cell(t, pns[1]) > cell(t, plain[1])*1.2 {
		t.Fatal("PNS must not inflate hop count")
	}
}

func TestGeoSearchPruning(t *testing.T) {
	r := mustRun(t, "exp-geo-search", testCfg())
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if cell(t, first[2]) >= cell(t, first[4]) {
		t.Fatal("small-radius search should visit fewer zones than full scan")
	}
	if cell(t, last[1]) <= cell(t, first[1]) {
		t.Fatal("larger radius should find more peers")
	}
}

func TestSkyEyeLossless(t *testing.T) {
	r := mustRun(t, "exp-skyeye", testCfg())
	for _, row := range r.Rows {
		if strings.Contains(row[0], "view / truth") {
			parts := strings.Split(row[1], "/")
			if len(parts) != 2 || strings.TrimSpace(parts[0]) != strings.TrimSpace(parts[1]) {
				t.Fatalf("aggregate %q diverges from truth", row[1])
			}
		}
	}
}

func TestAblExternalLinks(t *testing.T) {
	r := mustRun(t, "abl-external-links", testCfg())
	// ext=0 partitions; ext≥1 single component; locality falls with ext.
	if cell(t, r.Rows[0][2]) <= 1 {
		t.Fatal("zero external links should partition the overlay")
	}
	for i := 1; i < len(r.Rows); i++ {
		if cell(t, r.Rows[i][2]) != 1 {
			t.Fatalf("ext=%s still partitioned", r.Rows[i][0])
		}
		if cell(t, r.Rows[i][1]) >= cell(t, r.Rows[i-1][1]) {
			t.Fatal("locality should fall as external budget grows")
		}
	}
}

func TestAblCoords(t *testing.T) {
	r := mustRun(t, "abl-coords", testCfg())
	if !strings.Contains(r.Rows[0][0], "explicit") || cell(t, r.Rows[0][1]) != 0 {
		t.Fatal("explicit measurement must have zero error")
	}
	// Prediction methods must beat ordinal bins' probe count ≥ explicit's.
	explicitProbes := cell(t, r.Rows[0][3])
	for i := 1; i < len(r.Rows); i++ {
		if strings.Contains(r.Rows[i][0], "ICS") || strings.Contains(r.Rows[i][0], "landmark") {
			if cell(t, r.Rows[i][3]) >= explicitProbes {
				t.Fatalf("%s probes should be below explicit's O(N²)", r.Rows[i][0])
			}
		}
	}
}

func TestAblICSDim(t *testing.T) {
	r := mustRun(t, "abl-ics-dim", testCfg())
	// Cumulative variation is nondecreasing; fit error at dim 8 below dim 1.
	for i := 1; i < len(r.Rows); i++ {
		if cell(t, r.Rows[i][1]) < cell(t, r.Rows[i-1][1]) {
			t.Fatal("cumulative variation must be nondecreasing")
		}
	}
	if cell(t, r.Rows[len(r.Rows)-1][2]) >= cell(t, r.Rows[0][2]) {
		t.Fatal("fit error should improve with dimension")
	}
}

func TestDeterministicResults(t *testing.T) {
	a := mustRun(t, "fig5-overlay-viz", testCfg())
	b := mustRun(t, "fig5-overlay-viz", testCfg())
	if a.Render() != b.Render() {
		t.Fatal("same seed produced different results")
	}
	c := mustRun(t, "fig5-overlay-viz", RunConfig{Seed: 2, Scale: 0.5})
	if a.Render() == c.Render() {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestMobilityStaleness(t *testing.T) {
	r := mustRun(t, "exp-mobility", testCfg())
	// Fresh snapshot row: everything zero.
	if cell(t, r.Rows[0][1]) != 0 || cell(t, r.Rows[0][2]) != 0 {
		t.Fatalf("fresh snapshot already stale: %v", r.Rows[0])
	}
	// Staleness grows from age 0 to age 30 and stays high.
	if cell(t, r.Rows[1][1]) <= 0 {
		t.Fatal("no ISP-location staleness after churn")
	}
	if cell(t, r.Rows[2][1]) < cell(t, r.Rows[1][1]) {
		t.Fatal("wrong-ISP fraction should not shrink early")
	}
	if cell(t, r.Rows[3][2]) <= 0 {
		t.Fatal("no geo drift at the horizon")
	}
}

func TestOracleTrustOrdering(t *testing.T) {
	r := mustRun(t, "exp-oracle-trust", testCfg())
	get := func(name string) []string {
		for _, row := range r.Rows {
			if strings.HasPrefix(row[0], name) {
				return row
			}
		}
		t.Fatalf("row %q missing", name)
		return nil
	}
	unb := get("no oracle")
	honest := get("honest")
	malicious := get("malicious")
	outage := get("outage")
	// Honest beats unbiased on both user metrics.
	if cell(t, honest[1]) <= cell(t, unb[1]) {
		t.Fatal("honest oracle should raise intra-AS share")
	}
	if cell(t, honest[2]) >= cell(t, unb[2]) {
		t.Fatal("honest oracle should lower RTT")
	}
	// Malicious is worse than no oracle at all — the §6 trust hazard.
	if cell(t, malicious[1]) >= cell(t, unb[1]) {
		t.Fatal("malicious oracle should hurt locality below unbiased")
	}
	if cell(t, malicious[2]) <= cell(t, unb[2]) {
		t.Fatal("malicious oracle should raise RTT above unbiased")
	}
	// Outage degrades to ≈ unbiased (within 30% relative).
	if ratio := cell(t, outage[2]) / cell(t, unb[2]); ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("outage RTT %v not close to unbiased %v", outage[2], unb[2])
	}
}

func TestPongCacheAblation(t *testing.T) {
	r := mustRun(t, "abl-pong-cache", testCfg())
	flood, cached := r.Rows[0], r.Rows[1]
	if cell(t, cached[1]) >= cell(t, flood[1]) {
		t.Fatal("caching should cut ping messages")
	}
	if cell(t, cached[2]) >= cell(t, flood[2]) {
		t.Fatal("caching should cut pong messages")
	}
	if cell(t, cached[3]) >= cell(t, flood[3]) {
		t.Fatal("caching should cut discovery bytes")
	}
	if cell(t, cached[4]) <= 0 {
		t.Fatal("caching should teach addresses")
	}
}

func TestGSHLeopardShape(t *testing.T) {
	r := mustRun(t, "exp-gsh-leopard", testCfg())
	global, scoped := r.Rows[0], r.Rows[1]
	// Hot-spot relief: scoped max registry load far below global's.
	if cell(t, scoped[4]) >= cell(t, global[4]) {
		t.Fatalf("no hot-spot relief: %s vs %s", scoped[4], global[4])
	}
	// Local resolutions only exist under scoping.
	if cell(t, global[3]) != 0 {
		t.Fatal("global rendezvous cannot resolve locally")
	}
	if cell(t, scoped[3]) < 30 {
		t.Fatalf("scoped local resolutions %s too low", scoped[3])
	}
}

func TestSuperPeerStability(t *testing.T) {
	r := mustRun(t, "exp-superpeer", testCfg())
	random, aware := r.Rows[0], r.Rows[1]
	if cell(t, aware[1]) >= cell(t, random[1]) {
		t.Fatal("aware election should cut ultrapeer failures")
	}
	if cell(t, aware[2]) >= cell(t, random[2]) {
		t.Fatal("aware election should cut leaf orphanings")
	}
	if cell(t, aware[4]) <= cell(t, random[4]) {
		t.Fatal("aware ultrapeers should be more capable")
	}
	// Search success must not collapse relative to random (within 15pp).
	if cell(t, aware[3]) < cell(t, random[3])-15 {
		t.Fatalf("aware election hurt search success: %s vs %s", aware[3], random[3])
	}
}

func TestPNSMetricOrdering(t *testing.T) {
	r := mustRun(t, "abl-pns-metric", testCfg())
	plain := cell(t, r.Rows[0][1])
	explicit := cell(t, r.Rows[1][1])
	if explicit >= plain {
		t.Fatal("explicit-RTT PNS should beat plain")
	}
	// Every PNS variant keeps hop counts within 20% of plain.
	plainHops := cell(t, r.Rows[0][2])
	for _, row := range r.Rows[1:] {
		if cell(t, row[2]) > plainHops*1.2 {
			t.Fatalf("%s inflated hops: %s vs %s", row[0], row[2], r.Rows[0][2])
		}
	}
}

func TestTopologyMatchingShape(t *testing.T) {
	r := mustRun(t, "exp-topology-matching", testCfg())
	start := r.Rows[0]
	var last []string
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], "after") {
			last = row
		}
	}
	if last == nil {
		t.Fatal("no adaptation rows")
	}
	if cell(t, last[1]) <= cell(t, start[1]) {
		t.Fatal("adaptation should raise intra-AS edges")
	}
	if cell(t, last[2]) >= cell(t, start[2]) {
		t.Fatal("adaptation should lower mean neighbor RTT")
	}
	// Connectivity never breaks.
	for _, row := range r.Rows {
		if cell(t, row[5]) != 1 {
			t.Fatalf("state %q fragmented", row[0])
		}
	}
	// Probe overhead is real and grows.
	if cell(t, last[4]) == 0 {
		t.Fatal("no probe overhead")
	}
}

func TestStreamingShape(t *testing.T) {
	r := mustRun(t, "exp-streaming", testCfg())
	random, aware := r.Rows[0], r.Rows[1]
	// Strictly better, unless both already saturate (small populations
	// can leave no starved tail to rescue).
	if cell(t, aware[2]) < cell(t, random[2]) ||
		(cell(t, aware[2]) == cell(t, random[2]) && cell(t, aware[2]) < 99) {
		t.Fatalf("aware worst-peer continuity %s did not improve on %s", aware[2], random[2])
	}
	if cell(t, aware[1]) < cell(t, random[1]) {
		t.Fatal("aware scheduling should not hurt mean continuity")
	}
	if cell(t, aware[3]) <= cell(t, random[3]) {
		t.Fatal("aware parents should have more capacity")
	}
}

func TestChordPNSShape(t *testing.T) {
	r := mustRun(t, "exp-chord-pns", testCfg())
	classic, pns := r.Rows[0], r.Rows[1]
	if cell(t, pns[2]) >= cell(t, classic[2]) {
		t.Fatal("PNS fingers should cut lookup latency")
	}
	if cell(t, pns[1]) > cell(t, classic[1])*1.35 {
		t.Fatal("PNS fingers should not inflate hops materially")
	}
	if cell(t, pns[3]) >= cell(t, classic[3]) {
		t.Fatal("per-hop latency should drop under PNS")
	}
}

func TestOverheadFrontier(t *testing.T) {
	r := mustRun(t, "exp-overhead", testCfg())
	if r.Rows[0][0] != "random (unaware)" {
		t.Fatal("baseline row missing")
	}
	randomRTT := cell(t, r.Rows[0][3])
	var explicitGain, vivaldiOps, explicitOps float64
	for _, row := range r.Rows[1:] {
		// Every technique must beat or match random on this workload
		// except the resource overlay (different objective).
		rtt := cell(t, row[3])
		if !strings.Contains(row[0], "information management") && rtt > randomRTT {
			t.Fatalf("%s picked worse than random: %s vs %.1f", row[0], row[3], randomRTT)
		}
		if strings.Contains(row[0], "explicit") {
			explicitGain = cell(t, row[4])
			explicitOps = cell(t, row[1])
			// Only explicit measurement generates probe bytes during the
			// workload.
			if cell(t, row[2]) == 0 {
				t.Fatal("explicit measurement sent no bytes")
			}
		}
		if strings.Contains(row[0], "Vivaldi") {
			vivaldiOps = cell(t, row[1])
		}
	}
	if explicitGain < 50 {
		t.Fatalf("explicit gain %.1f%% too small", explicitGain)
	}
	// Vivaldi's overhead is setup-only gossip, explicit pays per query —
	// both must be nonzero and distinct.
	if vivaldiOps == 0 || explicitOps == 0 {
		t.Fatal("overhead columns empty")
	}
}

func TestFig5HeatmapInNotes(t *testing.T) {
	r := mustRun(t, "fig5-overlay-viz", testCfg())
	found := 0
	for _, n := range r.Notes {
		if strings.Contains(n, "heatmap") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("expected 2 heatmap sections, found %d", found)
	}
}

// TestAllExperimentsDeterministic replays every registered experiment at
// a small scale and asserts bit-identical output — the reproducibility
// guarantee the README promises, enforced globally.
func TestAllExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full determinism sweep skipped in -short")
	}
	cfg := RunConfig{Seed: 3, Scale: 0.25}
	for _, id := range IDs() {
		a, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.Render() != b.Render() {
			t.Fatalf("%s is not deterministic", id)
		}
	}
}

func TestBrocadeShape(t *testing.T) {
	r := mustRun(t, "exp-brocade", testCfg())
	flat, lm := r.Rows[0], r.Rows[1]
	// The headline: landmark routing crosses the wide area exactly once.
	if cell(t, lm[2]) != 1 {
		t.Fatalf("landmark inter-AS crossings = %s, want 1.00", lm[2])
	}
	if cell(t, flat[2]) <= cell(t, lm[2]) {
		t.Fatal("flat walk should cross more")
	}
	if cell(t, lm[3]) >= cell(t, flat[3]) {
		t.Fatal("landmark latency should drop")
	}
	if cell(t, lm[4]) >= cell(t, flat[4]) {
		t.Fatal("landmark messages should drop")
	}
}

func TestResilienceShape(t *testing.T) {
	r := mustRun(t, "exp-resilience", testCfg())
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 crash victims, got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		crashed, suspected, evicted := cell(t, row[1]), cell(t, row[2]), cell(t, row[3])
		// The loss burst can raise a (recanted) suspicion before the
		// wave, so only the eviction must follow the crash.
		if suspected <= 0 || evicted <= crashed || evicted <= suspected {
			t.Fatalf("%s: timeline out of order: %v", row[0], row)
		}
		// Detection must beat the post-fault window by a wide margin.
		if detect := cell(t, row[4]); detect <= 0 || detect > 5000 {
			t.Fatalf("%s: detect latency %v ms outside (0, 5000]", row[0], detect)
		}
	}
}
