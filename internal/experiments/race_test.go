// Race acceptance test for shared-observer sweeps: RunSeeds runs its
// workers concurrently, and the documented supported configuration for
// observing a whole sweep is a single shared Recorder (a Probe samples
// one driving goroutine and is per-run only). Under -race this test is
// the proof the Recorder's locking actually covers the concurrent
// attach-and-record path; the count assertion proves no event is lost.
package experiments_test

import (
	"sync"
	"testing"

	"unap2p/internal/experiments"
	"unap2p/internal/telemetry"
	"unap2p/internal/transport"
)

// sweepObserver is a shared Recorder that additionally remembers every
// transport the sweep's workers attach, under its own lock.
type sweepObserver struct {
	*telemetry.Recorder
	mu         sync.Mutex
	transports []*transport.Transport
}

func (o *sweepObserver) ObserveTransport(t *transport.Transport) {
	o.mu.Lock()
	o.transports = append(o.transports, t)
	o.mu.Unlock()
	o.Recorder.ObserveTransport(t)
}

func TestConcurrentSweepSharedRecorder(t *testing.T) {
	obs := &sweepObserver{Recorder: telemetry.NewRecorder(telemetry.Config{Capacity: 1 << 12})}
	const seeds = 4
	cfg := experiments.RunConfig{Scale: 0.5, Obs: obs}
	if _, err := experiments.RunSeeds("exp-pns-kademlia", cfg, 1, seeds); err != nil {
		t.Fatal(err)
	}

	obs.mu.Lock()
	trs := append([]*transport.Transport(nil), obs.transports...)
	obs.mu.Unlock()
	if want := 2 * seeds; len(trs) != want { // two variants per run
		t.Fatalf("observed %d transports, want %d", len(trs), want)
	}
	var sent uint64
	for _, tr := range trs {
		for _, v := range tr.Counters().Snapshot() {
			sent += v
		}
	}
	if got := obs.Recorded(); got != sent {
		t.Fatalf("recorder saw %d events but transports sent %d — events lost in the concurrent sweep", got, sent)
	}
	if sent == 0 {
		t.Fatal("sweep sent no messages; the assertion is vacuous")
	}
}
