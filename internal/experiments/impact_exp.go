package experiments

import (
	"fmt"
	"math"

	"unap2p/internal/coords"
	"unap2p/internal/core"
	"unap2p/internal/geo"
	"unap2p/internal/metrics"
	"unap2p/internal/resources"
	"unap2p/internal/sim"
	"unap2p/internal/underlay"
	"unap2p/internal/workload"
)

func init() {
	register("tab2-impact",
		"Paper Table 2 — impact of each underlay-awareness kind on users and ISPs (++/+/o)",
		runImpact)
}

// impactMeasures are the quantities behind Table 2's rows.
type impactMeasures struct {
	// MedianDownloadMs is RTT + transfer time for the median completed
	// download (median, because heavy-tailed source bandwidth makes the
	// mean a statement about the single slowest peer).
	MedianDownloadMs float64
	// MeanNeighborRTT is the mean RTT to the strategy's top-ranked peers
	// out of a general candidate set (the neighbor-selection delay).
	MeanNeighborRTT float64
	// TransitBytes is data volume carried over paid transit links — the
	// actual cost driver (peering links are settlement-free, Figure 2).
	TransitBytes uint64
	// InterASFlows counts distinct cross-AS flows (OAM complexity proxy).
	InterASFlows int
	// SuccessRate is completed downloads / attempted, under churn.
	SuccessRate float64
}

// impactScenario is the shared workload all strategies run against. Its
// underlay is built to keep the four information kinds *distinguishable*:
//
//   - metros: ASes cluster into geographic metros; stubs of one metro
//     peer with each other over ~2 ms links, so crossing an AS boundary
//     inside a metro costs almost no latency (the §2.4 caveat: same
//     building, different ISPs);
//   - access-delay-dominated RTTs: last-mile delays of 5–30 ms dwarf the
//     intra-metro backbone, so latency awareness is NOT a synonym for
//     ISP locality;
//   - heavy-tailed peer resources and availability, so capability and
//     stability matter independently of where a peer sits.
type impactScenario struct {
	net     *underlay.Network
	hosts   []*underlay.Host
	catalog *workload.Catalog
	table   *resources.Table
	vs      *coords.VivaldiSystem
	vidx    map[underlay.HostID]int
	queries []workload.Query
	// availability[h] is the probability host h is online at any moment,
	// derived from its mean session length.
	availability map[underlay.HostID]float64
	fileMB       float64
}

func buildImpactScenario(cfg RunConfig) *impactScenario {
	src := sim.NewSource(cfg.Seed).Fork("impact")
	r := src.Stream("topo")
	net := underlay.New()

	const metros = 4
	const stubsPerMetro = 3
	var transits []*underlay.AS
	for i := 0; i < 3; i++ {
		transits = append(transits, net.AddAS(underlay.TransitISP, 3))
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			net.ConnectPeering(transits[i], transits[j], 8)
		}
	}
	metroCenters := []geo.Coord{
		{Lat: 50.1, Lon: 8.7}, {Lat: 52.5, Lon: 13.4},
		{Lat: 48.1, Lon: 11.6}, {Lat: 53.6, Lon: 10.0},
	}
	var stubs []*underlay.AS
	metroOf := map[int]int{}
	for m := 0; m < metros; m++ {
		var local []*underlay.AS
		for s := 0; s < stubsPerMetro; s++ {
			as := net.AddAS(underlay.LocalISP, 2)
			stubs = append(stubs, as)
			local = append(local, as)
			metroOf[as.ID] = m
			net.ConnectTransit(as, transits[r.Intn(3)], sim.Duration(5+r.Float64()*5))
		}
		// SOME same-metro ISPs peer over very short links — but not all:
		// geographic proximity does not guarantee ISP-level proximity
		// (the §2.4 caveat), so geolocation awareness cannot see which
		// neighbor is actually cheap to reach.
		net.ConnectPeering(local[0], local[1], 2)
	}

	// Two nationwide ISPs: one AS each, hosts in every metro, large
	// internal delay — being in the same AS does NOT mean being close,
	// which keeps ISP-location and latency awareness distinguishable.
	var nationwide []*underlay.AS
	for i := 0; i < 2; i++ {
		as := net.AddAS(underlay.LocalISP, 25)
		net.ConnectTransit(as, transits[i], sim.Duration(5+r.Float64()*5))
		net.ConnectTransit(as, transits[(i+1)%3], sim.Duration(5+r.Float64()*5))
		nationwide = append(nationwide, as)
	}

	place := src.Stream("place")
	var hosts []*underlay.Host
	perAS := cfg.scaled(15)
	for _, as := range stubs {
		c := metroCenters[metroOf[as.ID]]
		for i := 0; i < perAS; i++ {
			h := net.AddHost(as, sim.Duration(5+place.Float64()*75))
			h.Lat = c.Lat + place.NormFloat64()*0.15
			h.Lon = c.Lon + place.NormFloat64()*0.15
			hosts = append(hosts, h)
		}
	}
	for _, as := range nationwide {
		for i := 0; i < 2*perAS; i++ {
			c := metroCenters[i%len(metroCenters)]
			h := net.AddHost(as, sim.Duration(5+place.Float64()*75))
			h.Lat = c.Lat + place.NormFloat64()*0.15
			h.Lon = c.Lon + place.NormFloat64()*0.15
			hosts = append(hosts, h)
		}
	}

	catalog := workload.NewCatalog(cfg.scaled(150))
	workload.PopulateLocal(catalog, net, hosts, 6, 0.75, src.Stream("content"))
	table := resources.GenerateAll(net, src.Stream("res"))

	availability := map[underlay.HostID]float64{}
	for _, h := range hosts {
		on := table.Get(h.ID).MeanOnlineH
		availability[h.ID] = on / (on + 1.5) // mean offline period: 1.5 h
	}

	rtt := func(i, j int) float64 { return float64(net.RTT(hosts[i], hosts[j])) }
	vs := coords.NewVivaldiSystem(len(hosts), coords.DefaultVivaldiConfig(), rtt, src.Stream("vivaldi"))
	vs.Run(200)
	vidx := map[underlay.HostID]int{}
	for i, h := range hosts {
		vidx[h.ID] = i
	}

	gen := workload.NewQueryGen(net, catalog, hosts, 0.5, 1.0, src.Stream("queries"))
	var queries []workload.Query
	for i := 0; i < cfg.scaled(400); i++ {
		if q, ok := gen.Next(0); ok {
			queries = append(queries, q)
		}
	}
	return &impactScenario{
		net: net, hosts: hosts, catalog: catalog, table: table,
		vs: vs, vidx: vidx, queries: queries,
		availability: availability, fileMB: 4,
	}
}

// selectorFor returns the strategy's selector (nil = random order, i.e.
// the unaware baseline). Each kind is one of the framework's stock
// single-estimator selectors with the score cache enabled — the exact
// composition the overlays consume.
func (s *impactScenario) selectorFor(kind string) core.Selector {
	var es *core.EngineSelector
	switch kind {
	case "isp-location":
		es = core.ASHopSelector(s.net)
	case "latency":
		// Explicit measurement (§3.2): precise per-pair RTT at probe
		// cost. The Vivaldi field (s.vs) provides the cheap predictive
		// variant, compared against this in the ablation benches.
		es = core.RTTSelector(s.net)
	case "geolocation":
		es = core.GeoDistanceSelector(s.net)
	case "peer-resources":
		es = core.CapacitySelector(s.net, s.table)
	default:
		return nil
	}
	es.E.EnableCache(core.CacheConfig{Capacity: 8192})
	return es
}

// pathUsesTransit reports whether the routed path between two ASes
// crosses any paid transit link.
func (s *impactScenario) pathUsesTransit(a, b int) bool {
	if a == b {
		return false
	}
	path := s.net.ASPath(a, b)
	for i := 0; i+1 < len(path); i++ {
		x := s.net.AS(path[i])
		for _, l := range x.Links() {
			if l.Other(x.ID).ID == path[i+1] {
				if l.Kind == underlay.Transit {
					return true
				}
				break
			}
		}
	}
	return false
}

// transitBytes sums bytes carried on paid transit links so far.
func (s *impactScenario) transitBytes() uint64 {
	var total uint64
	for _, l := range s.net.Links() {
		if l.Kind == underlay.Transit {
			total += l.Bytes()
		}
	}
	return total
}

// run executes the workload under one strategy.
func (s *impactScenario) run(kind string, seed int64) impactMeasures {
	r := sim.NewSource(seed).Fork("impact-run-" + kind).Stream("churn")
	transitBefore := s.transitBytes()
	sel := s.selectorFor(kind)
	data := metrics.NewTrafficMatrix()
	var m impactMeasures
	dl := metrics.NewDist()
	var rttSum float64
	var rttN, attempts, successes int

	fileBits := s.fileMB * 8e6
	transferMs := func(src, dst *underlay.Host) float64 {
		up := s.table.Get(src.ID).UpKbps * 1000 // bits/s
		down := s.table.Get(dst.ID).DownKbps * 1000
		bw := math.Min(up, down)
		if bw <= 0 {
			bw = 64_000
		}
		// Congested interconnects throttle transfers: paths over loaded
		// transit links suffer most, settlement-free peering mildly — the
		// inter-domain congestion the paper attributes to unaware P2P.
		switch {
		case s.pathUsesTransit(src.AS.ID, dst.AS.ID):
			bw *= 0.4
		case src.AS.ID != dst.AS.ID:
			bw *= 0.85
		}
		return fileBits / bw * 1000
	}

	// Neighbor-selection delay: rank 40 random candidates, measure RTT to
	// the top 3 — independent of the download workload.
	candRand := sim.NewSource(seed).Fork("impact-cand-" + kind).Stream("cand")
	for trial := 0; trial < 60; trial++ {
		client := s.hosts[candRand.Intn(len(s.hosts))]
		var cands []underlay.HostID
		for len(cands) < 40 {
			p := s.hosts[candRand.Intn(len(s.hosts))]
			if p.ID != client.ID {
				cands = append(cands, p.ID)
			}
		}
		ranked := cands
		if sel != nil {
			if rr, ok := sel.Rank(client, cands); ok {
				ranked = rr
			}
		}
		for i := 0; i < 3; i++ {
			rttSum += float64(s.net.RTT(client, s.net.Host(ranked[i])))
			rttN++
		}
	}

	for _, q := range s.queries {
		client := s.net.Host(q.From)
		var holders []underlay.HostID
		for _, h := range s.catalog.Replicas(q.Item) {
			if h != q.From {
				holders = append(holders, h)
			}
		}
		if len(holders) == 0 {
			continue
		}
		// Shuffle before ranking: strategies pick randomly among equally
		// good peers (stable sort preserves the shuffled order within
		// cost ties), as deployed selectors do for load spreading.
		ranked := append([]underlay.HostID(nil), holders...)
		r.Shuffle(len(ranked), func(i, j int) { ranked[i], ranked[j] = ranked[j], ranked[i] })
		if sel != nil {
			if rr, ok := sel.Rank(client, ranked); ok {
				ranked = rr
			}
		}
		// Download with up to 3 attempts under availability churn: a
		// source may be offline when contacted (probability from its
		// session statistics); a failed attempt wastes a timeout and a
		// partial transfer.
		attempts++
		done := false
		var elapsed float64
		for try := 0; try < 3 && try < len(ranked); try++ {
			srcHost := s.net.Host(ranked[try])
			if r.Float64() > s.availability[srcHost.ID] {
				elapsed += 2000 // connection timeout
				continue
			}
			t := transferMs(srcHost, client)
			elapsed += float64(s.net.RTT(client, srcHost)) + t
			// Route the file through the underlay so paid transit links
			// are charged exactly where the bytes flow.
			s.net.Send(srcHost, client, uint64(s.fileMB*1e6))
			data.Add(srcHost.AS.ID, client.AS.ID, uint64(s.fileMB*1e6))
			done = true
			break
		}
		if done {
			successes++
			dl.Observe(elapsed)
		}
	}

	m.MedianDownloadMs = dl.Quantile(0.5)
	if rttN > 0 {
		m.MeanNeighborRTT = rttSum / float64(rttN)
	}
	if attempts > 0 {
		m.SuccessRate = float64(successes) / float64(attempts)
	}
	m.TransitBytes = s.transitBytes() - transitBefore
	for _, p := range data.Pairs() {
		if p.Src != p.Dst {
			m.InterASFlows++
		}
	}
	return m
}

// symbol maps a relative improvement to the paper's ++/+/o scale.
func symbol(improvement float64) string {
	switch {
	case improvement >= 0.25:
		return "++"
	case improvement >= 0.08:
		return "+"
	default:
		return "o"
	}
}

func runImpact(cfg RunConfig) Result {
	res := Result{
		ID:      "tab2-impact",
		Title:   "Measured impact of underlay awareness vs unaware baseline",
		Headers: []string{"impact on", "parameter", "ISP-location", "latency", "geolocation", "peer-resources"},
	}
	s := buildImpactScenario(cfg)
	kinds := []string{"isp-location", "latency", "geolocation", "peer-resources"}
	base := s.run("baseline", cfg.Seed)
	got := make(map[string]impactMeasures, len(kinds))
	for _, k := range kinds {
		got[k] = s.run(k, cfg.Seed)
	}

	row := func(scope, param string, better func(impactMeasures) float64) {
		cells := []string{scope, param}
		for _, k := range kinds {
			cells = append(cells, symbol(better(got[k])))
		}
		res.Rows = append(res.Rows, cells)
	}
	rel := func(baseV, v float64) float64 {
		if baseV <= 0 {
			return 0
		}
		return (baseV - v) / baseV
	}
	row("Users", "Download time", func(m impactMeasures) float64 {
		return rel(base.MedianDownloadMs, m.MedianDownloadMs)
	})
	row("Users", "Delay", func(m impactMeasures) float64 {
		return rel(base.MeanNeighborRTT, m.MeanNeighborRTT)
	})
	row("ISPs", "ISP OAM", func(m impactMeasures) float64 {
		return rel(float64(base.InterASFlows), float64(m.InterASFlows))
	})
	row("ISPs", "ISP Costs", func(m impactMeasures) float64 {
		return rel(float64(base.TransitBytes), float64(m.TransitBytes))
	})
	// "New application areas" is a capability property, not a workload
	// delta: geolocation enables location-based services (++), latency
	// enables real-time communication (+).
	res.Rows = append(res.Rows, []string{"Both", "New application areas (derived)", "o", "+", "++", "o"})
	row("Both", "Resilience", func(m impactMeasures) float64 {
		return (m.SuccessRate - base.SuccessRate) * 3 // scale pp to symbol bands
	})

	describe := func(name string, m impactMeasures) string {
		return fmt.Sprintf("%-14s download %.0f ms, neighbor RTT %.1f ms, transit %.0f MB, %d flows, success %.1f%%",
			name+":", m.MedianDownloadMs, m.MeanNeighborRTT, float64(m.TransitBytes)/1e6,
			m.InterASFlows, 100*m.SuccessRate)
	}
	res.Notes = append(res.Notes, describe("baseline", base))
	for _, k := range kinds {
		res.Notes = append(res.Notes, describe(k, got[k]))
	}
	res.Notes = append(res.Notes,
		"paper Table 2 reference: ISP-location ++ on download time/OAM/costs/resilience; latency ++ on",
		"delay and resilience; geolocation + on delay, ++ on new applications; resources ++ on download",
		"time, + on costs/resilience. Symbols are measured (++ ≥25%, + ≥8% improvement); the resilience",
		"row reflects source-availability churn, which favours resource awareness — the overlay-repair",
		"effects behind the paper's ++ for ISP-location/latency are outside this single workload.")
	return res
}
