package experiments

import (
	"fmt"

	"unap2p/internal/churn"
	"unap2p/internal/coords"
	"unap2p/internal/core"
	"unap2p/internal/overlay/gnutella"
	"unap2p/internal/overlay/gsh"
	"unap2p/internal/overlay/kademlia"
	"unap2p/internal/resources"
	"unap2p/internal/sim"
	"unap2p/internal/skyeye"
	"unap2p/internal/topology"
	"unap2p/internal/underlay"
	"unap2p/internal/workload"
)

func init() {
	register("exp-gsh-leopard",
		"Leopard-style Geographically Scoped Hashing — local resolution and the no-hot-spot property",
		runGSHLeopard)
	register("exp-superpeer",
		"§2.3 — resource-aware super-peer election vs random: stability under churn",
		runSuperPeer)
	register("abl-pns-metric",
		"Ablation — PNS proximity source: explicit RTT vs Vivaldi prediction vs geolocation",
		runAblPNSMetric)
}

func runGSHLeopard(cfg RunConfig) Result {
	res := Result{
		ID:      "exp-gsh-leopard",
		Title:   "Geographically scoped vs global rendezvous lookups",
		Headers: []string{"scheme", "mean lookup msgs", "mean latency (ms)", "local resolutions", "max registry load", "load mean"},
	}
	src := sim.NewSource(cfg.Seed).Fork("gsh")
	net := topology.Star(8, topology.DefaultConfig())
	hosts := topology.PlaceHosts(net, cfg.scaled(35), false, 1, 5, src.Stream("place"))
	o := gsh.New(cfg.newTransportOver(net), core.GeoSelector{}, gsh.DefaultConfig())
	for _, h := range hosts {
		o.Join(h)
	}
	cfg.observeHealth("gsh", o.HealthStats)
	// Every host publishes one item; one blockbuster item is published by
	// every 5th host (globally popular content).
	hot := gsh.HashKey("blockbuster")
	for i, h := range hosts {
		o.Publish(h, gsh.HashKey(fmt.Sprintf("item-%d", i)))
		if i%5 == 0 {
			o.Publish(h, hot)
		}
	}
	// Query workload: 70% of lookups target the blockbuster (available
	// nearby), the rest a random per-host item.
	type outcome struct {
		msgs, local, n int
		latency        sim.Duration
		maxLoad        uint64
		meanLoad       float64
	}
	runScheme := func(global bool) outcome {
		o.ResetLoad()
		q := src.Fork(fmt.Sprintf("queries-%v", global)).Stream("q")
		var out outcome
		nQueries := cfg.scaled(400)
		for i := 0; i < nQueries; i++ {
			req := hosts[q.Intn(len(hosts))]
			k := hot
			if q.Float64() > 0.7 {
				k = gsh.HashKey(fmt.Sprintf("item-%d", q.Intn(len(hosts))))
			}
			var st gsh.LookupStats
			if global {
				_, st = o.GlobalLookup(req, k)
			} else {
				_, st = o.Lookup(req, k)
			}
			out.n++
			out.msgs += st.Msgs
			out.latency += st.Latency
			if st.Level == o.Cfg.MaxLevel {
				out.local++
			}
			if (i+1)%50 == 0 {
				cfg.sampleObs() // registry-load curve for the probe plane
			}
		}
		out.maxLoad, out.meanLoad = o.MaxLoad()
		return out
	}
	for _, global := range []bool{true, false} {
		name := "global rendezvous (plain DHT)"
		if !global {
			name = "geographically scoped (GSH)"
		}
		oc := runScheme(global)
		res.Rows = append(res.Rows, []string{
			name,
			f2(float64(oc.msgs) / float64(oc.n)),
			f1(float64(oc.latency) / float64(oc.n)),
			pct(float64(oc.local) / float64(oc.n)),
			d(oc.maxLoad),
			f1(oc.meanLoad),
		})
	}
	res.Notes = append(res.Notes,
		"Leopard's claims: popular content resolves inside the requester's own zone (local",
		"resolutions high under GSH, impossible under a global rendezvous) and registry load",
		"spreads across zone owners instead of concentrating on one node (max load drops).")
	return res
}

func runSuperPeer(cfg RunConfig) Result {
	res := Result{
		ID:      "exp-superpeer",
		Title:   "Ultrapeer election policy vs overlay stability under churn",
		Headers: []string{"election", "ultrapeer failures", "leaf orphanings", "search success", "mean UP capacity score"},
	}
	type outcome struct {
		upFailures, orphanings int
		success                float64
		meanScore              float64
	}
	runPolicy := func(aware bool) outcome {
		src := sim.NewSource(cfg.Seed).Fork(fmt.Sprintf("superpeer-%v", aware))
		net := topology.TransitStub(topology.TransitStubConfig{
			Config:   topology.Config{IntraDelay: 5, LinkDelay: 20, Rand: src.Stream("topo")},
			Transits: 2, Stubs: 8,
		})
		hosts := topology.PlaceHosts(net, cfg.scaled(12), false, 1, 5, src.Stream("place"))
		table := resources.GenerateAll(net, src.Stream("res"))

		// Elect 20% of peers as ultrapeers: capability-aware via the
		// SkyEye view, or uniformly at random.
		ultra := map[underlay.HostID]bool{}
		if aware {
			se := skyeye.Build(net, table, hosts, skyeye.DefaultConfig())
			se.UpdateRound()
			for _, id := range resources.ElectSuperPeers(net, table, 0.2, 1) {
				ultra[id] = true
			}
		} else {
			pick := src.Stream("pick")
			for len(ultra) < len(hosts)/5 {
				ultra[hosts[pick.Intn(len(hosts))].ID] = true
			}
		}

		k := sim.NewKernel()
		gcfg := gnutella.DefaultConfig()
		ov := gnutella.New(cfg.newTransport(net, k), nil, gcfg, src.Stream("overlay"))
		ov.SettleTime = 2 * sim.Second
		for _, h := range hosts {
			ov.AddNode(h, ultra[h.ID])
		}
		ov.JoinAll()
		name := "random"
		if aware {
			name = "aware"
		}
		// Kernel-driven sampling catches election churn live: the probe's
		// sim-time tick sees ultras/online_fraction move as peers cycle.
		cfg.observeHealth("superpeer-"+name, ov.HealthStats)
		catalog := workload.NewCatalog(cfg.scaled(60))
		workload.PopulateZipf(catalog, hosts, 6, 1.0, src.Stream("content"))
		ov.Catalog = catalog

		// Churn sessions follow each peer's own MeanOnlineH (scaled down
		// to simulation time): capable peers are also the stable ones.
		var out outcome
		drv := &churn.Driver{
			Kernel: k,
			ModelFor: func(h *underlay.Host) churn.Model {
				// 1 hour of real uptime ≈ 2 s of simulated session.
				return churn.Exponential{
					MeanOn:  sim.Duration(table.Get(h.ID).MeanOnlineH) * 2 * sim.Second,
					MeanOff: 3 * sim.Second,
				}
			},
			Rand: src.Stream("churn"),
			OnLeave: func(h *underlay.Host) {
				n := ov.Node(h.ID)
				if n.Ultra {
					out.upFailures++
					out.orphanings += n.LeafCount()
				}
				ov.Leave(n)
			},
			OnJoin: func(h *underlay.Host) { ov.Join(ov.Node(h.ID)) },
		}
		cfg.observeChurn(drv)
		drv.Start(hosts)

		success, attempts := 0, 0
		q := src.Stream("queries")
		for round := 0; round < cfg.scaled(40); round++ {
			k.Run(k.Now() + sim.Second)
			from := hosts[q.Intn(len(hosts))]
			if !from.Up {
				continue
			}
			attempts++
			r := ov.RunSearch(from.ID, workload.ItemID(q.Intn(catalog.NumItems)))
			if len(r.Hits) > 0 {
				success++
			}
		}
		if attempts > 0 {
			out.success = float64(success) / float64(attempts)
		}
		var scoreSum float64
		n := 0
		for id := range ultra {
			scoreSum += table.Get(id).Score()
			n++
		}
		out.meanScore = scoreSum / float64(n)
		return out
	}
	for _, aware := range []bool{false, true} {
		name := "random"
		if aware {
			name = "resource-aware (SkyEye view)"
		}
		oc := runPolicy(aware)
		res.Rows = append(res.Rows, []string{
			name, di(oc.upFailures), di(oc.orphanings), pct(oc.success), f3(oc.meanScore),
		})
	}
	res.Notes = append(res.Notes,
		"§2.3: 'using peer resources information allows for a more accurate super-peer selection",
		"process, and therefore a more stable system' — aware election picks long-uptime peers, so",
		"ultrapeer failures and leaf orphanings drop and search success holds up under churn.")
	return res
}

func runAblPNSMetric(cfg RunConfig) Result {
	res := Result{
		ID:      "abl-pns-metric",
		Title:   "PNS routing tables filled by different proximity sources",
		Headers: []string{"proximity source", "mean lookup latency (ms)", "mean hops", "latency vs plain"},
	}
	src := sim.NewSource(cfg.Seed).Fork("pnsmetric")
	tcfg := topology.TransitStubConfig{
		Config:   topology.Config{IntraDelay: 5, LinkDelay: 25, Rand: src.Stream("topo")},
		Transits: 2, Stubs: 10,
	}
	net := topology.TransitStub(tcfg)
	hosts := topology.PlaceHosts(net, cfg.scaled(12), false, 1, 6, src.Stream("place"))

	// A converged Vivaldi system to serve as the predictive source. Run
	// it in sampled slices so a probe records the convergence curve —
	// the time series Dabek et al. judge coordinate systems by.
	rtt := func(i, j int) float64 { return float64(net.RTT(hosts[i], hosts[j])) }
	vs := coords.NewVivaldiSystem(len(hosts), coords.DefaultVivaldiConfig(), rtt, src.Stream("vivaldi"))
	cfg.observeHealth("vivaldi", vs.HealthStats)
	for r := 0; r < 150; r += 10 {
		vs.Run(10)
		cfg.sampleObs()
	}
	vidx := map[underlay.HostID]int{}
	for i, h := range hosts {
		vidx[h.ID] = i
	}

	run := func(name string, sel core.Selector) (float64, float64) {
		kcfg := kademlia.DefaultConfig()
		// Small buckets overflow often, so the replacement policy (where
		// PNS acts) decides most table entries.
		kcfg.K = 4
		d := kademlia.New(cfg.newTransportOver(net), sel, kcfg, sim.NewSource(cfg.Seed).Fork("dht-"+name).Stream("dht"))
		for _, h := range hosts {
			d.AddNode(h)
		}
		d.Bootstrap(4)
		cfg.observeHealth("kademlia-"+name, d.HealthStats)
		probe := sim.NewSource(99).Stream("probe")
		var lat, hops float64
		n := cfg.scaled(120)
		for i := 0; i < n; i++ {
			from := d.Nodes()[probe.Intn(len(d.Nodes()))].Host
			r := d.Lookup(from, kademlia.NodeID(probe.Uint64()))
			lat += float64(r.Latency)
			hops += float64(r.Hops)
			if (i+1)%30 == 0 {
				cfg.sampleObs()
			}
		}
		return lat / float64(n), hops / float64(n)
	}

	plainLat, plainHops := run("plain", nil)
	res.Rows = append(res.Rows, []string{"none (plain Kademlia)", f1(plainLat), f2(plainHops), "—"})
	variants := []struct {
		name string
		sel  *core.EngineSelector
	}{
		{"explicit RTT", core.RTTSelector(net)},
		{"Vivaldi prediction", core.FuncSelector(net, core.Latency, core.PredictionMethod,
			func(a, b *underlay.Host) (float64, bool) {
				return vs.Predict(vidx[a.ID], vidx[b.ID]), true
			})},
		{"geolocation distance", core.GeoDistanceSelector(net)},
	}
	for _, v := range variants {
		// Memoize the pure proximity scores; invisible to results, cheaper
		// on repeated pair lookups during bucket replacement.
		v.sel.E.EnableCache(core.CacheConfig{Capacity: 4096})
		lat, hops := run(v.name, v.sel)
		res.Rows = append(res.Rows, []string{
			v.name, f1(lat), f2(hops), pct((plainLat - lat) / plainLat),
		})
	}
	res.Notes = append(res.Notes,
		"the §3 collection techniques plugged into one §4 usage: explicit measurement gives PNS its",
		"full benefit; prediction-based sources (Vivaldi, geolocation) recover part of it with none",
		"of the per-pair probing, losing exactly their prediction error (§2.4's caveat for geo).")
	return res
}
