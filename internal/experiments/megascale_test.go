package experiments

import (
	"strings"
	"testing"
)

func megaCfg(peers, shards string) RunConfig {
	return RunConfig{Seed: 5, Scale: 1, Params: map[string]string{
		"peers": peers, "shards": shards,
	}}
}

// Column indices of the exp-megascale table.
const (
	mcOverlay = iota
	mcPeers
	mcEvents
	mcEpochs
	mcXBytes
	mcLate
	mcLookups
	mcExact
	mcHops
	mcSimEnd
	mcWall
	mcRSS
)

// TestMegascaleShape runs the scaling sweep at toy size and checks the
// table carries a full three-point curve with live lookups.
func TestMegascaleShape(t *testing.T) {
	r := mustRun(t, "exp-megascale", megaCfg("2000", "2"))
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 sweep points, got %d", len(r.Rows))
	}
	for i, row := range r.Rows {
		if row[mcOverlay] != "kademlia" {
			t.Fatalf("point %d overlay %q, want default kademlia", i, row[mcOverlay])
		}
		if cell(t, row[mcEvents]) <= 0 {
			t.Fatalf("point %d processed no events", i)
		}
		if cell(t, row[mcLate]) != 0 {
			t.Fatalf("point %d has late cross-shard events: %s", i, row[mcLate])
		}
		if cell(t, row[mcLookups]) <= 0 {
			t.Fatalf("point %d completed no lookups", i)
		}
	}
	// Event counts grow with population.
	if cell(t, r.Rows[2][mcEvents]) <= cell(t, r.Rows[0][mcEvents]) {
		t.Fatal("events should grow with peers")
	}
	// Lookups on the largest point mostly find the exact closest peer.
	if cell(t, r.Rows[2][mcExact]) < 80 {
		t.Fatalf("exact rate %s%% too low under churn", r.Rows[2][mcExact])
	}
	// Default run hides measured wall/RSS for determinism.
	if r.Rows[0][mcWall] != "-" || r.Rows[0][mcRSS] != "-" {
		t.Fatalf("wall/rss should be gated, got %q/%q", r.Rows[0][mcWall], r.Rows[0][mcRSS])
	}
}

// TestMegascaleShardCountInvariant checks the shard count is a pure
// performance knob: each K is bit-reproducible on its own, and the
// simulated outcomes agree across K up to timestamp-tie reordering
// (events at identical times merge in (time, shard, seq) order under
// K>1 versus global seq order under K=1, so raw event counts may drift
// by a hair while the workload-level results stay put).
func TestMegascaleShardCountInvariant(t *testing.T) {
	r1 := mustRun(t, "exp-megascale", megaCfg("1600", "1"))
	r4 := mustRun(t, "exp-megascale", megaCfg("1600", "4"))
	if mustRun(t, "exp-megascale", megaCfg("1600", "4")).Render() != r4.Render() {
		t.Fatal("K=4 run is not reproducible")
	}
	if len(r1.Rows) != len(r4.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r4.Rows))
	}
	for i := range r1.Rows {
		// Same sweep points, all issued lookups complete under both.
		if r1.Rows[i][mcPeers] != r4.Rows[i][mcPeers] {
			t.Fatalf("row %d peers: %q vs %q", i, r1.Rows[i][mcPeers], r4.Rows[i][mcPeers])
		}
		if r1.Rows[i][mcLookups] != r4.Rows[i][mcLookups] {
			t.Fatalf("row %d lookups: K=1 %q vs K=4 %q", i, r1.Rows[i][mcLookups], r4.Rows[i][mcLookups])
		}
		ev1, ev4 := cell(t, r1.Rows[i][mcEvents]), cell(t, r4.Rows[i][mcEvents])
		if diff := ev4 - ev1; diff > ev1/100 || diff < -ev1/100 {
			t.Fatalf("row %d events drift beyond 1%%: %v vs %v", i, ev1, ev4)
		}
		ex1, ex4 := cell(t, r1.Rows[i][mcExact]), cell(t, r4.Rows[i][mcExact])
		if diff := ex4 - ex1; diff > 5 || diff < -5 {
			t.Fatalf("row %d exact rate: %v%% vs %v%%", i, ex1, ex4)
		}
	}
	// K=1 has no cross-shard traffic; K=4 must have some.
	if cell(t, r1.Rows[2][mcXBytes]) != 0 {
		t.Fatal("K=1 recorded cross-shard bytes")
	}
	if cell(t, r4.Rows[2][mcXBytes]) == 0 {
		t.Fatal("K=4 recorded no cross-shard bytes")
	}
}

// TestMegascaleOverlayAxis sweeps all three compact overlays and checks
// each completes its workload with healthy ground-truth success on the
// same sharded substrate.
func TestMegascaleOverlayAxis(t *testing.T) {
	cfg := megaCfg("1600", "2")
	cfg.Params["overlay"] = "all"
	r := mustRun(t, "exp-megascale", cfg)
	if len(r.Rows) != 9 {
		t.Fatalf("want 3 overlays × 3 points, got %d rows", len(r.Rows))
	}
	want := map[string]float64{"kademlia": 80, "chord": 80, "gnutella": 50}
	seen := map[string]int{}
	for _, row := range r.Rows {
		name := row[mcOverlay]
		floor, known := want[name]
		if !known {
			t.Fatalf("unexpected overlay %q", name)
		}
		seen[name]++
		if cell(t, row[mcLate]) != 0 {
			t.Fatalf("%s has late cross-shard events", name)
		}
		if cell(t, row[mcLookups]) <= 0 {
			t.Fatalf("%s completed no requests", name)
		}
		if got := cell(t, row[mcExact]); got < floor {
			t.Fatalf("%s ground-truth success %.1f%% below floor %.0f%%", name, got, floor)
		}
	}
	for name, n := range seen {
		if n != 3 {
			t.Fatalf("%s has %d sweep points, want 3", name, n)
		}
	}
	// Chord vs Gnutella hop economics differ by construction: the flood's
	// first-hit hop count stays at TTL scale while the ring walk grows
	// with log n — both must be nonzero.
	for _, row := range r.Rows {
		if h := row[mcHops]; h == "0.00" {
			t.Fatalf("%s reports zero mean hops", row[mcOverlay])
		}
	}
	// A single-overlay run restricted by name matches the axis subset.
	cfg2 := megaCfg("1600", "2")
	cfg2.Params["overlay"] = "chord"
	r2 := mustRun(t, "exp-megascale", cfg2)
	if len(r2.Rows) != 3 || r2.Rows[0][mcOverlay] != "chord" {
		t.Fatalf("overlay=chord run malformed: %+v", r2.Rows)
	}
}

// TestMegascaleWallclockOptIn checks -param wallclock=1 surfaces the
// measured columns.
func TestMegascaleWallclockOptIn(t *testing.T) {
	cfg := megaCfg("800", "2")
	cfg.Params["wallclock"] = "1"
	r := mustRun(t, "exp-megascale", cfg)
	for _, row := range r.Rows {
		if row[mcWall] == "-" || row[mcRSS] == "-" {
			t.Fatalf("wallclock=1 should emit measured columns, got %q/%q", row[mcWall], row[mcRSS])
		}
		if !strings.HasSuffix(row[mcRSS], "MB") {
			t.Fatalf("rss cell %q not in MB", row[mcRSS])
		}
	}
}
