package experiments

import (
	"strings"
	"testing"
)

func megaCfg(peers, shards string) RunConfig {
	return RunConfig{Seed: 5, Scale: 1, Params: map[string]string{
		"peers": peers, "shards": shards,
	}}
}

// TestMegascaleShape runs the scaling sweep at toy size and checks the
// table carries a full three-point curve with live lookups.
func TestMegascaleShape(t *testing.T) {
	r := mustRun(t, "exp-megascale", megaCfg("2000", "2"))
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 sweep points, got %d", len(r.Rows))
	}
	for i, row := range r.Rows {
		if cell(t, row[1]) <= 0 {
			t.Fatalf("point %d processed no events", i)
		}
		if cell(t, row[4]) != 0 {
			t.Fatalf("point %d has late cross-shard events: %s", i, row[4])
		}
		if cell(t, row[5]) <= 0 {
			t.Fatalf("point %d completed no lookups", i)
		}
	}
	// Event counts grow with population.
	if cell(t, r.Rows[2][1]) <= cell(t, r.Rows[0][1]) {
		t.Fatal("events should grow with peers")
	}
	// Lookups on the largest point mostly find the exact closest peer.
	if cell(t, r.Rows[2][6]) < 80 {
		t.Fatalf("exact rate %s%% too low under churn", r.Rows[2][6])
	}
	// Default run hides measured wall/RSS for determinism.
	if r.Rows[0][9] != "-" || r.Rows[0][10] != "-" {
		t.Fatalf("wall/rss should be gated, got %q/%q", r.Rows[0][9], r.Rows[0][10])
	}
}

// TestMegascaleShardCountInvariant checks the shard count is a pure
// performance knob: each K is bit-reproducible on its own, and the
// simulated outcomes agree across K up to timestamp-tie reordering
// (events at identical times merge in (time, shard, seq) order under
// K>1 versus global seq order under K=1, so raw event counts may drift
// by a hair while the workload-level results stay put).
func TestMegascaleShardCountInvariant(t *testing.T) {
	r1 := mustRun(t, "exp-megascale", megaCfg("1600", "1"))
	r4 := mustRun(t, "exp-megascale", megaCfg("1600", "4"))
	if mustRun(t, "exp-megascale", megaCfg("1600", "4")).Render() != r4.Render() {
		t.Fatal("K=4 run is not reproducible")
	}
	if len(r1.Rows) != len(r4.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r4.Rows))
	}
	for i := range r1.Rows {
		// Same sweep points, all issued lookups complete under both.
		if r1.Rows[i][0] != r4.Rows[i][0] {
			t.Fatalf("row %d peers: %q vs %q", i, r1.Rows[i][0], r4.Rows[i][0])
		}
		if r1.Rows[i][5] != r4.Rows[i][5] {
			t.Fatalf("row %d lookups: K=1 %q vs K=4 %q", i, r1.Rows[i][5], r4.Rows[i][5])
		}
		ev1, ev4 := cell(t, r1.Rows[i][1]), cell(t, r4.Rows[i][1])
		if diff := ev4 - ev1; diff > ev1/100 || diff < -ev1/100 {
			t.Fatalf("row %d events drift beyond 1%%: %v vs %v", i, ev1, ev4)
		}
		ex1, ex4 := cell(t, r1.Rows[i][6]), cell(t, r4.Rows[i][6])
		if diff := ex4 - ex1; diff > 5 || diff < -5 {
			t.Fatalf("row %d exact rate: %v%% vs %v%%", i, ex1, ex4)
		}
	}
	// K=1 has no cross-shard traffic; K=4 must have some.
	if cell(t, r1.Rows[2][3]) != 0 {
		t.Fatal("K=1 recorded cross-shard bytes")
	}
	if cell(t, r4.Rows[2][3]) == 0 {
		t.Fatal("K=4 recorded no cross-shard bytes")
	}
}

// TestMegascaleWallclockOptIn checks -param wallclock=1 surfaces the
// measured columns.
func TestMegascaleWallclockOptIn(t *testing.T) {
	cfg := megaCfg("800", "2")
	cfg.Params["wallclock"] = "1"
	r := mustRun(t, "exp-megascale", cfg)
	for _, row := range r.Rows {
		if row[9] == "-" || row[10] == "-" {
			t.Fatalf("wallclock=1 should emit measured columns, got %q/%q", row[9], row[10])
		}
		if !strings.HasSuffix(row[10], "MB") {
			t.Fatalf("rss cell %q not in MB", row[10])
		}
	}
}
